//===- profile/Profile.cpp -------------------------------------------------===//

#include "profile/Profile.h"

#include <cassert>

using namespace balign;

ProcedureProfile ProcedureProfile::zeroed(const Procedure &Proc) {
  ProcedureProfile Profile;
  Profile.EdgeCounts.resize(Proc.numBlocks());
  Profile.BlockCounts.assign(Proc.numBlocks(), 0);
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id)
    Profile.EdgeCounts[Id].assign(Proc.successors(Id).size(), 0);
  return Profile;
}

uint64_t ProcedureProfile::executedBranches(const Procedure &Proc) const {
  uint64_t Sum = 0;
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
    TerminatorKind Kind = Proc.block(Id).Kind;
    if (Kind == TerminatorKind::Conditional ||
        Kind == TerminatorKind::Multiway)
      Sum += BlockCounts[Id];
  }
  return Sum;
}

size_t ProcedureProfile::branchSitesTouched(const Procedure &Proc) const {
  size_t Count = 0;
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
    TerminatorKind Kind = Proc.block(Id).Kind;
    if ((Kind == TerminatorKind::Conditional ||
         Kind == TerminatorKind::Multiway) &&
        BlockCounts[Id] > 0)
      ++Count;
  }
  return Count;
}

uint64_t ProcedureProfile::dynamicInstructions(const Procedure &Proc) const {
  uint64_t Sum = 0;
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id)
    Sum += BlockCounts[Id] * Proc.block(Id).InstrCount;
  return Sum;
}

size_t ProcedureProfile::hottestSuccessor(BlockId From) const {
  const std::vector<uint64_t> &Counts = EdgeCounts[From];
  assert(!Counts.empty() && "block has no successors");
  size_t Best = 0;
  for (size_t I = 1; I != Counts.size(); ++I)
    if (Counts[I] > Counts[Best])
      Best = I;
  return Best;
}

bool ProcedureProfile::isFlowConsistent(const Procedure &Proc) const {
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
    if (Proc.block(Id).Kind == TerminatorKind::Return)
      continue;
    uint64_t OutSum = 0;
    for (uint64_t Count : EdgeCounts[Id])
      OutSum += Count;
    if (OutSum != BlockCounts[Id])
      return false;
  }
  return true;
}

bool ProcedureProfile::shapeMatches(const Procedure &Proc) const {
  if (BlockCounts.size() != Proc.numBlocks() ||
      EdgeCounts.size() != Proc.numBlocks())
    return false;
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id)
    if (EdgeCounts[Id].size() != Proc.successors(Id).size())
      return false;
  return true;
}

uint64_t ProgramProfile::executedBranches(const Program &Prog) const {
  uint64_t Sum = 0;
  for (size_t I = 0; I != Procs.size(); ++I)
    Sum += Procs[I].executedBranches(Prog.proc(I));
  return Sum;
}

size_t ProgramProfile::branchSitesTouched(const Program &Prog) const {
  size_t Sum = 0;
  for (size_t I = 0; I != Procs.size(); ++I)
    Sum += Procs[I].branchSitesTouched(Prog.proc(I));
  return Sum;
}

uint64_t ProgramProfile::dynamicInstructions(const Program &Prog) const {
  uint64_t Sum = 0;
  for (size_t I = 0; I != Procs.size(); ++I)
    Sum += Procs[I].dynamicInstructions(Prog.proc(I));
  return Sum;
}
