//===- profile/Profile.h - Edge-frequency profiles ------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Edge-frequency profiles: the only information the branch-alignment
/// algorithms need from a program run. The paper instruments programs
/// with HALT and profiles a training input; we collect the identical data
/// (per-CFG-edge execution counts) from traces produced by the generator
/// in Trace.h.
///
/// Counts are stored parallel to Procedure successor lists:
/// EdgeCounts[B][I] is how many times execution followed the I-th
/// successor edge of block B.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_PROFILE_PROFILE_H
#define BALIGN_PROFILE_PROFILE_H

#include "ir/CFG.h"

#include <cstdint>
#include <vector>

namespace balign {

/// Per-procedure edge and block execution counts.
struct ProcedureProfile {
  /// EdgeCounts[B][I]: executions of the I-th successor edge of block B.
  std::vector<std::vector<uint64_t>> EdgeCounts;

  /// BlockCounts[B]: executions of block B (entries into the block).
  std::vector<uint64_t> BlockCounts;

  /// Creates a zeroed profile shaped like \p Proc.
  static ProcedureProfile zeroed(const Procedure &Proc);

  /// Total executions of conditional and multiway branch instructions
  /// (the paper's "executed branch instructions", Table 1).
  uint64_t executedBranches(const Procedure &Proc) const;

  /// Number of conditional/multiway blocks executed at least once (the
  /// paper's "branch sites touched", Table 1).
  size_t branchSitesTouched(const Procedure &Proc) const;

  /// Total dynamic instruction count (sum over blocks of
  /// BlockCounts[B] * InstrCount).
  uint64_t dynamicInstructions(const Procedure &Proc) const;

  /// Executions of block \p Id.
  uint64_t blockCount(BlockId Id) const { return BlockCounts[Id]; }

  /// Count of the edge \p From -> its \p SuccIndex-th successor.
  uint64_t edgeCount(BlockId From, size_t SuccIndex) const {
    return EdgeCounts[From][SuccIndex];
  }

  /// Index of the most frequently taken successor edge of \p From (ties
  /// broken toward the lower index so results are deterministic).
  /// Returns 0 for blocks with successors but no executions.
  size_t hottestSuccessor(BlockId From) const;

  /// Checks the internal consistency invariant: for every non-return
  /// block, the outgoing edge counts sum to the block count.
  bool isFlowConsistent(const Procedure &Proc) const;

  /// True if the profile's vectors are shaped exactly like \p Proc:
  /// one block count per block and one edge-count list per block whose
  /// length matches the block's successor list. Anything that walks
  /// EdgeCounts parallel to the CFG (penalty evaluation, fingerprinting)
  /// requires this; the pipeline rejects profiles that fail it.
  bool shapeMatches(const Procedure &Proc) const;
};

/// Whole-program profile: one ProcedureProfile per procedure, in program
/// order.
struct ProgramProfile {
  std::vector<ProcedureProfile> Procs;

  uint64_t executedBranches(const Program &Prog) const;
  size_t branchSitesTouched(const Program &Prog) const;
  uint64_t dynamicInstructions(const Program &Prog) const;
};

} // namespace balign

#endif // BALIGN_PROFILE_PROFILE_H
