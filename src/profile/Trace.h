//===- profile/Trace.h - Execution traces and their generation ------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Execution traces and the Markov-chain trace generator that substitutes
/// for running instrumented SPEC92 binaries (see DESIGN.md, Section 2).
///
/// A "data set" in the paper is a concrete program input; fixing the input
/// fixes the execution trace (paper Section 2). Here a data set is a
/// BranchBehavior — per-branch successor probabilities plus a branch
/// budget — and fixing (behavior, seed) fixes the trace the same way.
/// Distinct data sets for the same benchmark share the CFG but have
/// different biases, which is what makes the Figure 3 cross-validation
/// meaningful.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_PROFILE_TRACE_H
#define BALIGN_PROFILE_TRACE_H

#include "ir/CFG.h"
#include "profile/Profile.h"
#include "support/Random.h"

#include <cstdint>
#include <vector>

namespace balign {

/// A procedure-level execution trace: the concatenated block sequences of
/// every invocation of the procedure. An invocation starts at the entry
/// block and ends at a Return block, so invocation boundaries are
/// recoverable from the trace itself.
struct ExecutionTrace {
  std::vector<BlockId> Blocks;
  uint64_t Invocations = 0;

  bool empty() const { return Blocks.empty(); }
  size_t size() const { return Blocks.size(); }
};

/// Per-procedure branch behavior: for every block, a probability
/// distribution over its successor edges (parallel to the successor
/// lists; each row sums to 1 for blocks with successors).
struct BranchBehavior {
  std::vector<std::vector<double>> Probs;

  /// Uniform behavior for \p Proc (every successor equally likely).
  static BranchBehavior uniform(const Procedure &Proc);

  /// Validates shape and row sums (within tolerance).
  bool isValid(const Procedure &Proc) const;
};

/// Options for trace generation.
struct TraceGenOptions {
  /// Stop once at least this many conditional/multiway branch
  /// instructions have executed (compared at invocation granularity, so
  /// the result may slightly overshoot).
  uint64_t BranchBudget = 10000;

  /// Hard cap on blocks per invocation; guards against behaviors whose
  /// loops almost never exit. An invocation hitting the cap is abandoned
  /// mid-walk (its blocks so far stay in the trace).
  uint64_t MaxBlocksPerInvocation = 1u << 20;
};

/// Generates a trace of \p Proc by repeated random walks from the entry,
/// choosing successors according to \p Behavior.
ExecutionTrace generateTrace(const Procedure &Proc,
                             const BranchBehavior &Behavior, Rng &Rng,
                             const TraceGenOptions &Options);

/// Derives edge/block counts from a trace. Every adjacent pair in the
/// trace within one invocation contributes one edge count.
ProcedureProfile collectProfile(const Procedure &Proc,
                                const ExecutionTrace &Trace);

/// Builds a profile directly from expected edge frequencies without
/// materializing a trace: BlockCounts/EdgeCounts are the expected counts
/// of a random walk, computed by flow propagation from the entry with
/// \p Invocations entries. Useful for tests that need an exactly
/// flow-consistent profile.
ProcedureProfile expectedProfile(const Procedure &Proc,
                                 const BranchBehavior &Behavior,
                                 uint64_t Invocations, double LoopTolerance);

} // namespace balign

#endif // BALIGN_PROFILE_TRACE_H
