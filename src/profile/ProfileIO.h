//===- profile/ProfileIO.h - Textual profile serialization -----------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// A line-oriented text format for edge profiles, the on-disk analogue of
/// the HALT profile files the paper's toolchain exchanged between the
/// instrumented run and the optimizing rebuild. Grammar (comments start
/// with '#'):
///
/// \code
///   profile <program-name>
///   proc <name> {
///     <block>: <block-count> [-> <succ>:<count> ...]
///   }
/// \endcode
///
/// Blocks with no successors omit the arrow; blocks and successors are
/// referenced by their CFG names (or b<index> when unnamed). Parsing
/// validates against the program's CFG: every edge must exist and the
/// shape must match.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_PROFILE_PROFILEIO_H
#define BALIGN_PROFILE_PROFILEIO_H

#include "ir/CFG.h"
#include "profile/Profile.h"

#include <optional>
#include <string>

namespace balign {

/// Serializes \p Profile (which must match \p Prog's shape).
std::string printProgramProfile(const Program &Prog,
                                const ProgramProfile &Profile);

/// Parses a profile against \p Prog. On failure returns std::nullopt and
/// stores "line N: message" in \p Error if non-null. Blocks omitted from
/// a proc body default to zero counts; procs omitted entirely default to
/// zeroed profiles.
std::optional<ProgramProfile>
parseProgramProfile(const Program &Prog, const std::string &Text,
                    std::string *Error = nullptr);

} // namespace balign

#endif // BALIGN_PROFILE_PROFILEIO_H
