//===- profile/ProfileIO.cpp -------------------------------------------------------===//

#include "profile/ProfileIO.h"

#include "robust/FaultInjector.h"
#include "trace/Scope.h"

#include <cassert>
#include <map>
#include <sstream>

using namespace balign;

static std::string blockName(const Procedure &Proc, BlockId Id) {
  const BasicBlock &Block = Proc.block(Id);
  return Block.Name.empty() ? "b" + std::to_string(Id) : Block.Name;
}

std::string balign::printProgramProfile(const Program &Prog,
                                        const ProgramProfile &Profile) {
  assert(Profile.Procs.size() == Prog.numProcedures() &&
         "profile does not match program");
  std::ostringstream Out;
  Out << "profile " << Prog.getName() << "\n";
  for (size_t P = 0; P != Prog.numProcedures(); ++P) {
    const Procedure &Proc = Prog.proc(P);
    const ProcedureProfile &PP = Profile.Procs[P];
    Out << "proc " << Proc.getName() << " {\n";
    for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
      Out << "  " << blockName(Proc, Id) << ": " << PP.blockCount(Id);
      const std::vector<BlockId> &Succs = Proc.successors(Id);
      if (!Succs.empty()) {
        Out << " ->";
        for (size_t S = 0; S != Succs.size(); ++S)
          Out << " " << blockName(Proc, Succs[S]) << ":"
              << PP.edgeCount(Id, S);
      }
      Out << "\n";
    }
    Out << "}\n";
  }
  return Out.str();
}

namespace {

/// Minimal line-splitting parser state shared with the CFG parser idiom.
struct ProfileParser {
  std::istringstream In;
  std::string *Error;
  unsigned LineNo = 0;

  ProfileParser(const std::string &Text, std::string *Error)
      : In(Text), Error(Error) {}

  bool fail(const std::string &Message) {
    if (Error)
      *Error = "line " + std::to_string(LineNo) + ": " + Message;
    return false;
  }

  bool nextLine(std::vector<std::string> &Tokens) {
    std::string Line;
    while (std::getline(In, Line)) {
      ++LineNo;
      size_t Hash = Line.find('#');
      if (Hash != std::string::npos)
        Line.resize(Hash);
      std::istringstream LineIn(Line);
      Tokens.clear();
      std::string Token;
      while (LineIn >> Token)
        Tokens.push_back(Token);
      if (!Tokens.empty())
        return true;
    }
    return false;
  }
};

bool parseUInt(const std::string &Text, uint64_t &Out) {
  if (Text.empty() || Text.size() > 20)
    return false;
  Out = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    // Reject anything past 2^64-1 (profiles with saturated hardware
    // counters legitimately carry the UINT64_MAX sentinel itself, and
    // the lint saturation check wants to see it).
    if (Out > UINT64_MAX / 10 || Out * 10 > UINT64_MAX - Digit)
      return false;
    Out = Out * 10 + Digit;
  }
  return true;
}

} // namespace

std::optional<ProgramProfile>
balign::parseProgramProfile(const Program &Prog, const std::string &Text,
                            std::string *Error) {
  ScopedSpan ParseSpan("profile.parse", SpanCat::Io);
  ProfileParser P(Text, Error);
  // balign-shield fault site: a corrupt profile record manifests to
  // callers exactly like this injected failure — an error return through
  // the parser's normal channel, never an exception.
  if (FaultInjector::instance().shouldFail(FaultSite::ProfileParse)) {
    P.fail("injected fault at 'profile.parse'");
    return std::nullopt;
  }
  std::vector<std::string> Tokens;
  if (!P.nextLine(Tokens) || Tokens.size() != 2 || Tokens[0] != "profile") {
    P.fail("expected 'profile <name>' header");
    return std::nullopt;
  }

  // Name lookup tables.
  std::map<std::string, size_t> ProcOf;
  for (size_t I = 0; I != Prog.numProcedures(); ++I)
    ProcOf[Prog.proc(I).getName()] = I;

  ProgramProfile Profile;
  for (size_t I = 0; I != Prog.numProcedures(); ++I)
    Profile.Procs.push_back(ProcedureProfile::zeroed(Prog.proc(I)));

  std::vector<bool> ProcSeen(Prog.numProcedures(), false);
  while (P.nextLine(Tokens)) {
    if (Tokens.size() != 3 || Tokens[0] != "proc" || Tokens[2] != "{") {
      P.fail("expected 'proc <name> {'");
      return std::nullopt;
    }
    auto ProcIt = ProcOf.find(Tokens[1]);
    if (ProcIt == ProcOf.end()) {
      P.fail("unknown procedure '" + Tokens[1] + "'");
      return std::nullopt;
    }
    // A repeated section would silently overwrite the earlier counts —
    // the classic concatenated-profiles corruption.
    if (ProcSeen[ProcIt->second]) {
      P.fail("duplicate profile section for procedure '" + Tokens[1] + "'");
      return std::nullopt;
    }
    ProcSeen[ProcIt->second] = true;
    const Procedure &Proc = Prog.proc(ProcIt->second);
    ProcedureProfile &PP = Profile.Procs[ProcIt->second];

    std::map<std::string, BlockId> BlockOf;
    for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id)
      BlockOf[blockName(Proc, Id)] = Id;

    bool Closed = false;
    std::vector<bool> BlockSeen(Proc.numBlocks(), false);
    while (P.nextLine(Tokens)) {
      if (Tokens.size() == 1 && Tokens[0] == "}") {
        Closed = true;
        break;
      }
      if (Tokens.size() < 2 || Tokens[0].empty() ||
          Tokens[0].back() != ':') {
        P.fail("expected '<block>: <count> [-> succ:count ...]'");
        return std::nullopt;
      }
      std::string Name = Tokens[0].substr(0, Tokens[0].size() - 1);
      auto BlockIt = BlockOf.find(Name);
      if (BlockIt == BlockOf.end()) {
        P.fail("unknown block '" + Name + "'");
        return std::nullopt;
      }
      BlockId Id = BlockIt->second;
      if (BlockSeen[Id]) {
        P.fail("duplicate stats line for block '" + Name + "'");
        return std::nullopt;
      }
      BlockSeen[Id] = true;
      uint64_t Count = 0;
      if (!parseUInt(Tokens[1], Count)) {
        P.fail("bad block count '" + Tokens[1] + "'");
        return std::nullopt;
      }
      PP.BlockCounts[Id] = Count;

      const std::vector<BlockId> &Succs = Proc.successors(Id);
      std::vector<bool> EdgeSeen(Succs.size(), false);
      if (Tokens.size() == 2)
        continue;
      if (Tokens[2] != "->") {
        P.fail("expected '->' before edge counts");
        return std::nullopt;
      }
      for (size_t T = 3; T != Tokens.size(); ++T) {
        size_t Colon = Tokens[T].rfind(':');
        if (Colon == std::string::npos || Colon == 0 ||
            Colon + 1 == Tokens[T].size()) {
          P.fail("expected '<succ>:<count>', got '" + Tokens[T] + "'");
          return std::nullopt;
        }
        std::string SuccName = Tokens[T].substr(0, Colon);
        uint64_t EdgeCount = 0;
        if (!parseUInt(Tokens[T].substr(Colon + 1), EdgeCount)) {
          P.fail("bad edge count in '" + Tokens[T] + "'");
          return std::nullopt;
        }
        auto SuccIt = BlockOf.find(SuccName);
        if (SuccIt == BlockOf.end()) {
          P.fail("unknown successor '" + SuccName + "'");
          return std::nullopt;
        }
        bool Matched = false;
        for (size_t S = 0; S != Succs.size(); ++S) {
          if (Succs[S] == SuccIt->second) {
            if (EdgeSeen[S]) {
              P.fail("duplicate edge count for " + Name + " -> " + SuccName);
              return std::nullopt;
            }
            EdgeSeen[S] = true;
            PP.EdgeCounts[Id][S] = EdgeCount;
            Matched = true;
            break;
          }
        }
        if (!Matched) {
          P.fail("edge " + Name + " -> " + SuccName +
                 " does not exist in the CFG");
          return std::nullopt;
        }
      }
    }
    if (!Closed) {
      P.fail("unterminated proc '" + Proc.getName() + "'");
      return std::nullopt;
    }
  }
  return Profile;
}
