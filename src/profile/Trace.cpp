//===- profile/Trace.cpp ---------------------------------------------------===//

#include "profile/Trace.h"

#include <cassert>
#include <cmath>

using namespace balign;

BranchBehavior BranchBehavior::uniform(const Procedure &Proc) {
  BranchBehavior Behavior;
  Behavior.Probs.resize(Proc.numBlocks());
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
    size_t NumSuccs = Proc.successors(Id).size();
    if (NumSuccs != 0)
      Behavior.Probs[Id].assign(NumSuccs, 1.0 / static_cast<double>(NumSuccs));
  }
  return Behavior;
}

bool BranchBehavior::isValid(const Procedure &Proc) const {
  if (Probs.size() != Proc.numBlocks())
    return false;
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
    size_t NumSuccs = Proc.successors(Id).size();
    if (Probs[Id].size() != NumSuccs)
      return false;
    if (NumSuccs == 0)
      continue;
    double Sum = 0.0;
    for (double P : Probs[Id]) {
      if (P < 0.0 || P > 1.0)
        return false;
      Sum += P;
    }
    if (std::fabs(Sum - 1.0) > 1e-9)
      return false;
  }
  return true;
}

/// Samples a successor index from the distribution \p Probs.
static size_t sampleSuccessor(const std::vector<double> &Probs, Rng &Rng) {
  double Draw = Rng.nextDouble();
  double Cumulative = 0.0;
  for (size_t I = 0; I != Probs.size(); ++I) {
    Cumulative += Probs[I];
    if (Draw < Cumulative)
      return I;
  }
  return Probs.size() - 1; // Rounding slack lands on the last successor.
}

/// For every block, the successor index on a shortest path to a Return
/// block (so a walk can wind down quickly once its branch budget is
/// spent). Blocks that cannot reach a return get NoExit.
static constexpr size_t NoExit = ~static_cast<size_t>(0);

static std::vector<size_t> computeExitSuccessors(const Procedure &Proc) {
  size_t N = Proc.numBlocks();
  constexpr uint32_t Inf = ~static_cast<uint32_t>(0);
  std::vector<uint32_t> Dist(N, Inf);
  std::vector<size_t> ExitSucc(N, NoExit);

  // Reverse BFS from the return blocks (uniform edge weight).
  std::vector<std::vector<BlockId>> Preds = Proc.computePredecessors();
  std::vector<BlockId> Frontier;
  for (BlockId B = 0; B != N; ++B) {
    if (Proc.block(B).Kind == TerminatorKind::Return) {
      Dist[B] = 0;
      Frontier.push_back(B);
    }
  }
  for (size_t Head = 0; Head != Frontier.size(); ++Head) {
    BlockId B = Frontier[Head];
    for (BlockId P : Preds[B]) {
      if (Dist[P] != Inf)
        continue;
      Dist[P] = Dist[B] + 1;
      Frontier.push_back(P);
    }
  }
  for (BlockId B = 0; B != N; ++B) {
    const std::vector<BlockId> &Succs = Proc.successors(B);
    for (size_t S = 0; S != Succs.size(); ++S) {
      if (Dist[Succs[S]] == Inf)
        continue;
      if (ExitSucc[B] == NoExit ||
          Dist[Succs[S]] < Dist[Succs[ExitSucc[B]]])
        ExitSucc[B] = S;
    }
  }
  return ExitSucc;
}

ExecutionTrace balign::generateTrace(const Procedure &Proc,
                                     const BranchBehavior &Behavior,
                                     Rng &Rng,
                                     const TraceGenOptions &Options) {
  assert(Behavior.isValid(Proc) && "behavior does not match procedure");
  ExecutionTrace Trace;
  std::vector<size_t> ExitSucc = computeExitSuccessors(Proc);
  uint64_t BranchesExecuted = 0;
  while (BranchesExecuted < Options.BranchBudget) {
    ++Trace.Invocations;
    BlockId Current = Proc.entry();
    uint64_t Steps = 0;
    while (true) {
      Trace.Blocks.push_back(Current);
      const BasicBlock &Block = Proc.block(Current);
      if (Block.Kind == TerminatorKind::Conditional ||
          Block.Kind == TerminatorKind::Multiway)
        ++BranchesExecuted;
      if (Block.Kind == TerminatorKind::Return)
        break;
      if (++Steps > Options.MaxBlocksPerInvocation)
        break;
      size_t Choice;
      if (BranchesExecuted >= Options.BranchBudget &&
          ExitSucc[Current] != NoExit) {
        // Budget spent: wind the invocation down along a shortest path
        // to a return so the overshoot stays small and the trace still
        // ends at invocation granularity (keeping profiles
        // flow-consistent).
        Choice = ExitSucc[Current];
      } else {
        Choice = sampleSuccessor(Behavior.Probs[Current], Rng);
      }
      Current = Proc.successors(Current)[Choice];
    }
  }
  return Trace;
}

ProcedureProfile balign::collectProfile(const Procedure &Proc,
                                        const ExecutionTrace &Trace) {
  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  for (size_t I = 0; I != Trace.Blocks.size(); ++I) {
    BlockId Current = Trace.Blocks[I];
    ++Profile.BlockCounts[Current];
    if (Proc.block(Current).Kind == TerminatorKind::Return)
      continue; // Next trace element (if any) starts a new invocation.
    if (I + 1 == Trace.Blocks.size())
      continue; // Abandoned walk tail.
    BlockId Next = Trace.Blocks[I + 1];
    const std::vector<BlockId> &Succs = Proc.successors(Current);
    // A non-return block is always followed in-trace by one of its CFG
    // successors, except when a capped walk was abandoned and the next
    // element is a fresh invocation's entry; then no successor matches
    // and we record nothing.
    for (size_t S = 0; S != Succs.size(); ++S) {
      if (Succs[S] == Next) {
        ++Profile.EdgeCounts[Current][S];
        break;
      }
    }
  }
  return Profile;
}

ProcedureProfile balign::expectedProfile(const Procedure &Proc,
                                         const BranchBehavior &Behavior,
                                         uint64_t Invocations,
                                         double LoopTolerance) {
  assert(Behavior.isValid(Proc) && "behavior does not match procedure");
  size_t N = Proc.numBlocks();
  std::vector<double> Flow(N, 0.0);

  // Power iteration: repeatedly push the entry mass through the chain
  // until the residual change drops below tolerance.
  std::vector<double> In(N, 0.0);
  In[Proc.entry()] = static_cast<double>(Invocations);
  std::vector<double> Next(N, 0.0);
  for (unsigned Iter = 0; Iter != 100000; ++Iter) {
    double Moved = 0.0;
    std::fill(Next.begin(), Next.end(), 0.0);
    for (BlockId Id = 0; Id != N; ++Id) {
      double Mass = In[Id];
      if (Mass == 0.0)
        continue;
      Flow[Id] += Mass;
      const std::vector<BlockId> &Succs = Proc.successors(Id);
      for (size_t S = 0; S != Succs.size(); ++S) {
        double Push = Mass * Behavior.Probs[Id][S];
        Next[Succs[S]] += Push;
        Moved += Push;
      }
    }
    std::swap(In, Next);
    if (Moved < LoopTolerance)
      break;
  }

  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  for (BlockId Id = 0; Id != N; ++Id) {
    const std::vector<BlockId> &Succs = Proc.successors(Id);
    uint64_t OutSum = 0;
    for (size_t S = 0; S != Succs.size(); ++S) {
      uint64_t Count = static_cast<uint64_t>(
          std::llround(Flow[Id] * Behavior.Probs[Id][S]));
      Profile.EdgeCounts[Id][S] = Count;
      OutSum += Count;
    }
    // Keep the flow-consistency invariant exactly: a block executes as
    // often as its out-edges fire; returns execute per rounded inflow.
    Profile.BlockCounts[Id] =
        Succs.empty() ? static_cast<uint64_t>(std::llround(Flow[Id]))
                      : OutSum;
  }
  return Profile;
}
