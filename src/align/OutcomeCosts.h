//===- align/OutcomeCosts.h - Trace-driven prediction-outcome costs --------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 2.2 cost formula in full generality:
///
///   penalty(B, X) = C_{B,X} pNN + I_{B,X} pTN
///                 + sum_{B' != X} (C_{B,B'} pTT + I_{B,B'} pNT)
///
/// where C_{B,B'} counts transfers B -> B' the predictor got right and
/// I_{B,B'} the ones it got wrong. The main pipeline derives C and I
/// analytically from static most-common-successor prediction; this module
/// instead *measures* them by trace-driven simulation of the prediction
/// hardware (a bimodal table), which is exactly the refinement Section 6
/// proposes: "we could perform a trace-driven simulation of the branch
/// prediction hardware in the target machine to derive more accurate
/// frequencies of correct and incorrect predictions", with the caveat of
/// footnote 6 that table aliasing under the new layout makes the numbers
/// approximate.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ALIGN_OUTCOMECOSTS_H
#define BALIGN_ALIGN_OUTCOMECOSTS_H

#include "align/Layout.h"
#include "align/Reduction.h"
#include "ir/CFG.h"
#include "machine/MachineModel.h"
#include "profile/Trace.h"

#include <cstdint>
#include <vector>

namespace balign {

/// Measured per-edge prediction outcomes: for every CFG edge (B, S-th
/// successor), how many dynamic transfers the simulated predictor got
/// right (Correct) and wrong (Incorrect).
struct OutcomeCounts {
  std::vector<std::vector<uint64_t>> Correct;   ///< Parallel to succs.
  std::vector<std::vector<uint64_t>> Incorrect; ///< Parallel to succs.

  static OutcomeCounts zeroed(const Procedure &Proc);
};

/// Simulates a bimodal predictor (with \p PredictorEntries 2-bit
/// counters, branch addresses taken from \p Mat's block layout) over
/// \p Trace and tallies per-edge outcomes. Unconditional and return
/// blocks have no prediction: their transfers count as Correct.
OutcomeCounts collectOutcomeCounts(const Procedure &Proc,
                                   const MaterializedLayout &Mat,
                                   const ExecutionTrace &Trace,
                                   size_t PredictorEntries = 2048);

/// Builds the alignment DTSP from measured outcomes using the general
/// formula above, with per-kind penalties from \p Model (pNN =
/// CondFallThrough, pTT = CondTakenCorrect, pNT = pTN = CondMispredict
/// for conditionals; jumps and multiways use their Table 3 rows). The
/// entry is pinned exactly as in buildAlignmentTsp.
AlignmentTsp buildOutcomeTsp(const Procedure &Proc,
                             const OutcomeCounts &Outcomes,
                             const MachineModel &Model);

} // namespace balign

#endif // BALIGN_ALIGN_OUTCOMECOSTS_H
