//===- align/Layout.h - Forwarder to objective/Layout.h -------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Layout and its materializer moved into the objective subsystem (they are
/// the scoring substrate every ObjectiveFn builds on). This forwarder keeps
/// historical `align/Layout.h` includes compiling; new code should include
/// `objective/Layout.h` directly.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ALIGN_LAYOUT_FWD_H
#define BALIGN_ALIGN_LAYOUT_FWD_H

#include "objective/Layout.h"

#endif // BALIGN_ALIGN_LAYOUT_FWD_H
