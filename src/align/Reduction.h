//===- align/Reduction.h - Branch alignment as a DTSP ----------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The paper's central reduction (Section 2.2): build a complete directed
/// graph whose vertices are the procedure's basic blocks plus a dummy
/// block "representing the end of the layout"; the cost of edge (B, X) is
/// the number of penalty cycles that occur at B in a layout where X
/// succeeds B. A minimum-cost walk through this graph is a
/// minimum-penalty branch alignment.
///
/// Two engineering details beyond the paper's prose:
///  * Cities are blocks 0..N-1 plus dummy city N. Closing the tour
///    through the dummy turns walks into tours, so the standard cyclic
///    DTSP machinery applies.
///  * A procedure must be entered at its first instruction, so the entry
///    block is pinned first: the dummy's edge to the entry costs 0 and
///    its edges to every other block cost EntryPin, a constant larger
///    than any real layout's total penalty. Optimal (and in practice all
///    heuristic) tours therefore leave the dummy straight into the
///    entry; layoutFromTour asserts but also repairs the rare heuristic
///    violation.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ALIGN_REDUCTION_H
#define BALIGN_ALIGN_REDUCTION_H

#include "align/Layout.h"
#include "ir/CFG.h"
#include "machine/MachineModel.h"
#include "profile/Profile.h"
#include "tsp/Instance.h"

namespace balign {

/// A branch-alignment DTSP instance: city i (< numBlocks) is block i; the
/// last city is the dummy end-of-layout marker.
struct AlignmentTsp {
  DirectedTsp Tsp;
  City DummyCity = 0;
  int64_t EntryPin = 0;

  size_t numBlocks() const { return DummyCity; }
};

/// Builds the DTSP instance for \p Proc under \p Train and \p Model.
/// Edge costs call blockLayoutPenalty with Predict = Charge = Train, so a
/// tour's cost equals evaluateLayout of the corresponding layout on the
/// training profile (tested invariant).
AlignmentTsp buildAlignmentTsp(const Procedure &Proc,
                               const ProcedureProfile &Train,
                               const MachineModel &Model);

/// Converts a directed tour over \p Atsp back into a layout: rotates the
/// dummy city out and, if a heuristic tour did not leave the dummy into
/// the entry block, hoists the entry to the front.
Layout layoutFromTour(const Procedure &Proc, const AlignmentTsp &Atsp,
                      const std::vector<City> &Tour);

} // namespace balign

#endif // BALIGN_ALIGN_REDUCTION_H
