//===- align/Bounds.h - Provable lower bounds on control penalty ----------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// "Mathematically provable lower bounds on DTSP costs give us the lowest
/// control penalty that any branch alignment can hope to achieve"
/// (paper, Section 1). This module maps the Held-Karp and Assignment
/// bounds of the tsp library onto branch-alignment instances, removing
/// the entry-pin constant so reported bounds are in pure penalty cycles.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ALIGN_BOUNDS_H
#define BALIGN_ALIGN_BOUNDS_H

#include "align/Reduction.h"
#include "ir/CFG.h"
#include "machine/MachineModel.h"
#include "profile/Profile.h"
#include "tsp/HeldKarp.h"

namespace balign {

/// Lower bounds for one procedure's alignment instance.
struct PenaltyBounds {
  /// Held-Karp bound on the minimum achievable control penalty (cycles),
  /// clamped to be non-negative.
  double HeldKarp = 0.0;

  /// Assignment-problem bound (cycles); the weaker classical bound the
  /// appendix compares against. Clamped to be non-negative.
  int64_t Assignment = 0;

  /// Number of cycles in the optimal assignment cover (1 means the AP
  /// bound is attained by an actual tour and is therefore exact).
  size_t AssignmentCycles = 0;
};

/// Computes both bounds for \p Proc. \p UpperBound must be the penalty of
/// some feasible layout (e.g. the TSP aligner's result); it scales the
/// Held-Karp subgradient steps and caps the returned bound.
PenaltyBounds computePenaltyBounds(const Procedure &Proc,
                                   const ProcedureProfile &Train,
                                   const MachineModel &Model,
                                   uint64_t UpperBound,
                                   const HeldKarpOptions &Options = {});

} // namespace balign

#endif // BALIGN_ALIGN_BOUNDS_H
