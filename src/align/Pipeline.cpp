//===- align/Pipeline.cpp -----------------------------------------------------===//

#include "align/Pipeline.h"

#include "align/Penalty.h"
#include "analysis/Diagnostics.h"
#include "support/Timer.h"

using namespace balign;

// Arity mismatches between a program and its profiles are caller bugs
// that would otherwise surface as silent out-of-bounds reads; fail
// loudly in every build mode through the diagnostics core instead of a
// bare assert that release builds would have stripped in a conventional
// NDEBUG setup.
static void fatalArityMismatch(CheckId Check, const char *What, size_t Got,
                               size_t Want) {
  reportFatal(Diagnostic{Severity::Error, Check, "pipeline",
                         DiagLocation::program(),
                         std::string(What) + " has " + std::to_string(Got) +
                             " entries for a program with " +
                             std::to_string(Want) + " procedures"});
}

uint64_t ProgramAlignment::totalOriginalPenalty() const {
  uint64_t Sum = 0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.OriginalPenalty;
  return Sum;
}

uint64_t ProgramAlignment::totalGreedyPenalty() const {
  uint64_t Sum = 0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.GreedyPenalty;
  return Sum;
}

uint64_t ProgramAlignment::totalTspPenalty() const {
  uint64_t Sum = 0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.TspPenalty;
  return Sum;
}

double ProgramAlignment::totalHeldKarpBound() const {
  double Sum = 0.0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.Bounds.HeldKarp;
  return Sum;
}

int64_t ProgramAlignment::totalAssignmentBound() const {
  int64_t Sum = 0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.Bounds.Assignment;
  return Sum;
}

std::vector<Layout> ProgramAlignment::originalLayouts() const {
  std::vector<Layout> Result;
  Result.reserve(Procs.size());
  for (const ProcedureAlignment &P : Procs)
    Result.push_back(P.OriginalLayout);
  return Result;
}

std::vector<Layout> ProgramAlignment::greedyLayouts() const {
  std::vector<Layout> Result;
  Result.reserve(Procs.size());
  for (const ProcedureAlignment &P : Procs)
    Result.push_back(P.GreedyLayout);
  return Result;
}

std::vector<Layout> ProgramAlignment::tspLayouts() const {
  std::vector<Layout> Result;
  Result.reserve(Procs.size());
  for (const ProcedureAlignment &P : Procs)
    Result.push_back(P.TspLayout);
  return Result;
}

ProgramAlignment balign::alignProgram(const Program &Prog,
                                      const ProgramProfile &Train,
                                      const AlignmentOptions &Options) {
  if (Train.Procs.size() != Prog.numProcedures())
    fatalArityMismatch(CheckId::PipelineProfileArity, "training profile",
                       Train.Procs.size(), Prog.numProcedures());
  ProgramAlignment Result;
  Result.Procs.reserve(Prog.numProcedures());
  GreedyAligner Greedy;

  for (size_t I = 0; I != Prog.numProcedures(); ++I) {
    const Procedure &Proc = Prog.proc(I);
    const ProcedureProfile &Profile = Train.Procs[I];
    if (Profile.BlockCounts.size() != Proc.numBlocks())
      reportFatal(Diagnostic{
          Severity::Error, CheckId::PipelineProfileShape, "pipeline",
          DiagLocation::procedure(Proc.getName()),
          "profile covers " + std::to_string(Profile.BlockCounts.size()) +
              " blocks but the procedure has " +
              std::to_string(Proc.numBlocks())});
    ProcedureAlignment PA;

    PA.OriginalLayout = Layout::original(Proc);
    PA.OriginalPenalty = evaluateLayout(Proc, PA.OriginalLayout,
                                        Options.Model, Profile, Profile);

    // Unprofiled procedures are left alone, as a profile-guided compiler
    // leaves untouched code in place; rearranging on a zero-cost matrix
    // would pick an arbitrary (and, under a different input, possibly
    // terrible) permutation.
    if (Profile.executedBranches(Proc) == 0) {
      PA.GreedyLayout = PA.OriginalLayout;
      PA.TspLayout = PA.OriginalLayout;
      Result.Procs.push_back(std::move(PA));
      if (Options.Hooks.AfterProcedure)
        Options.Hooks.AfterProcedure(I, Proc, Profile, Result.Procs.back());
      continue;
    }

    Stopwatch GreedyTimer;
    PA.GreedyLayout = Greedy.align(Proc, Profile, Options.Model);
    Result.GreedySeconds += GreedyTimer.seconds();
    PA.GreedyPenalty = evaluateLayout(Proc, PA.GreedyLayout, Options.Model,
                                      Profile, Profile);

    Stopwatch MatrixTimer;
    AlignmentTsp Atsp = buildAlignmentTsp(Proc, Profile, Options.Model);
    Result.MatrixSeconds += MatrixTimer.seconds();
    if (Options.Hooks.AfterMatrix)
      Options.Hooks.AfterMatrix(I, Proc, Profile, Atsp);

    Stopwatch SolverTimer;
    // Give each procedure a solver stream derived from the root seed so
    // results do not depend on procedure processing order.
    IteratedOptOptions SolverOptions = Options.Solver;
    SolverOptions.Seed = Options.Solver.Seed + 0x9e3779b9u * (I + 1);
    DtspSolution Solution = solveDirectedTsp(Atsp.Tsp, SolverOptions);
    Result.SolverSeconds += SolverTimer.seconds();
    if (Options.Hooks.AfterSolve)
      Options.Hooks.AfterSolve(I, Proc, Profile, Atsp, Solution,
                               SolverOptions);

    PA.TspLayout = layoutFromTour(Proc, Atsp, Solution.Tour);
    PA.TspPenalty = evaluateLayout(Proc, PA.TspLayout, Options.Model,
                                   Profile, Profile);
    PA.SolverRuns = Solution.NumRuns;
    PA.RunsFindingBest = Solution.RunsFindingBest;

    if (Options.ComputeBounds) {
      Stopwatch BoundsTimer;
      PA.Bounds = computePenaltyBounds(Proc, Profile, Options.Model,
                                       PA.TspPenalty, Options.HeldKarp);
      Result.BoundsSeconds += BoundsTimer.seconds();
    }
    Result.Procs.push_back(std::move(PA));
    if (Options.Hooks.AfterProcedure)
      Options.Hooks.AfterProcedure(I, Proc, Profile, Result.Procs.back());
  }
  return Result;
}

uint64_t balign::evaluateProgramPenalty(const Program &Prog,
                                        const std::vector<Layout> &Layouts,
                                        const MachineModel &Model,
                                        const ProgramProfile &Predict,
                                        const ProgramProfile &Charge) {
  if (Layouts.size() != Prog.numProcedures())
    fatalArityMismatch(CheckId::PipelineLayoutArity, "layout list",
                       Layouts.size(), Prog.numProcedures());
  if (Predict.Procs.size() != Prog.numProcedures())
    fatalArityMismatch(CheckId::PipelineProfileArity, "prediction profile",
                       Predict.Procs.size(), Prog.numProcedures());
  if (Charge.Procs.size() != Prog.numProcedures())
    fatalArityMismatch(CheckId::PipelineProfileArity, "charge profile",
                       Charge.Procs.size(), Prog.numProcedures());
  uint64_t Sum = 0;
  for (size_t I = 0; I != Prog.numProcedures(); ++I)
    Sum += evaluateLayout(Prog.proc(I), Layouts[I], Model, Predict.Procs[I],
                          Charge.Procs[I]);
  return Sum;
}
