//===- align/Pipeline.cpp -----------------------------------------------------===//

#include "align/Pipeline.h"

#include "align/Penalty.h"
#include "analysis/Diagnostics.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

using namespace balign;

// Arity mismatches between a program and its profiles are caller bugs
// that would otherwise surface as silent out-of-bounds reads; fail
// loudly in every build mode through the diagnostics core instead of a
// bare assert that release builds would have stripped in a conventional
// NDEBUG setup.
static void fatalArityMismatch(CheckId Check, const char *What, size_t Got,
                               size_t Want) {
  reportFatal(Diagnostic{Severity::Error, Check, "pipeline",
                         DiagLocation::program(),
                         std::string(What) + " has " + std::to_string(Got) +
                             " entries for a program with " +
                             std::to_string(Want) + " procedures"});
}

uint64_t ProgramAlignment::totalOriginalPenalty() const {
  uint64_t Sum = 0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.OriginalPenalty;
  return Sum;
}

uint64_t ProgramAlignment::totalGreedyPenalty() const {
  uint64_t Sum = 0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.GreedyPenalty;
  return Sum;
}

uint64_t ProgramAlignment::totalTspPenalty() const {
  uint64_t Sum = 0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.TspPenalty;
  return Sum;
}

double ProgramAlignment::totalHeldKarpBound() const {
  double Sum = 0.0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.Bounds.HeldKarp;
  return Sum;
}

int64_t ProgramAlignment::totalAssignmentBound() const {
  int64_t Sum = 0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.Bounds.Assignment;
  return Sum;
}

std::vector<Layout> ProgramAlignment::originalLayouts() const {
  std::vector<Layout> Result;
  Result.reserve(Procs.size());
  for (const ProcedureAlignment &P : Procs)
    Result.push_back(P.OriginalLayout);
  return Result;
}

std::vector<Layout> ProgramAlignment::greedyLayouts() const {
  std::vector<Layout> Result;
  Result.reserve(Procs.size());
  for (const ProcedureAlignment &P : Procs)
    Result.push_back(P.GreedyLayout);
  return Result;
}

std::vector<Layout> ProgramAlignment::tspLayouts() const {
  std::vector<Layout> Result;
  Result.reserve(Procs.size());
  for (const ProcedureAlignment &P : Procs)
    Result.push_back(P.TspLayout);
  return Result;
}

namespace {

/// Everything one procedure's alignment produces, including the stage
/// artifacts the hooks observe and the per-stage CPU time the worker
/// spent on it. Kept per-procedure (not accumulated into shared state)
/// so parallel workers never write to the same location and the drain
/// loop can replay hooks and sum timers in program order.
struct ProcedureTask {
  ProcedureAlignment PA;

  double GreedySeconds = 0.0;
  double MatrixSeconds = 0.0;
  double SolverSeconds = 0.0;
  double BoundsSeconds = 0.0;

  /// Hook payloads; only retained (and only meaningful) for profiled
  /// procedures when some hook is installed.
  bool RanSolver = false;
  AlignmentTsp Atsp;
  DtspSolution Solution;
  IteratedOptOptions SolverOptions;
};

/// Runs every stage for procedure \p I. Pure function of its arguments:
/// reads only shared-immutable inputs, writes only the returned task
/// (and talks to the internally synchronized cache, when one is
/// attached), so any number of calls may run concurrently.
/// \p KeepArtifacts retains the matrix/solution for the hook drain — and
/// disables cache *lookups*, because a hit has no stage artifacts for
/// the AfterMatrix/AfterSolve hooks to observe; computed results are
/// still offered to the cache.
ProcedureTask alignOneProcedure(const Procedure &Proc,
                                const ProcedureProfile &Profile,
                                const AlignmentOptions &Options, size_t I,
                                bool KeepArtifacts) {
  ProcedureTask Task;
  ProcedureAlignment &PA = Task.PA;

  PA.OriginalLayout = Layout::original(Proc);
  PA.OriginalPenalty = evaluateLayout(Proc, PA.OriginalLayout, Options.Model,
                                      Profile, Profile);

  // Unprofiled procedures are left alone, as a profile-guided compiler
  // leaves untouched code in place; rearranging on a zero-cost matrix
  // would pick an arbitrary (and, under a different input, possibly
  // terrible) permutation. They also bypass the cache: the skip path is
  // cheaper than a fingerprint.
  if (Profile.executedBranches(Proc) == 0) {
    PA.GreedyLayout = PA.OriginalLayout;
    PA.TspLayout = PA.OriginalLayout;
    return Task;
  }

  ProcedureResultCache *Cache = Options.CacheImpl;
  if (Cache && !KeepArtifacts && Cache->lookup(Proc, Profile, Options, I, PA))
    return Task; // Validated hit; all stage timers stay at zero.

  CpuStopwatch GreedyTimer;
  PA.GreedyLayout = GreedyAligner().align(Proc, Profile, Options.Model);
  Task.GreedySeconds = GreedyTimer.seconds();
  PA.GreedyPenalty = evaluateLayout(Proc, PA.GreedyLayout, Options.Model,
                                    Profile, Profile);

  CpuStopwatch MatrixTimer;
  AlignmentTsp Atsp = buildAlignmentTsp(Proc, Profile, Options.Model);
  Task.MatrixSeconds = MatrixTimer.seconds();

  CpuStopwatch SolverTimer;
  // Give each procedure a solver stream derived from the root seed so
  // results do not depend on procedure processing order — this is what
  // makes parallel and serial runs bit-identical.
  IteratedOptOptions SolverOptions = Options.Solver;
  SolverOptions.Seed = derivedSolverSeed(Options.Solver.Seed, I);
  DtspSolution Solution = solveDirectedTsp(Atsp.Tsp, SolverOptions);
  Task.SolverSeconds = SolverTimer.seconds();

  PA.TspLayout = layoutFromTour(Proc, Atsp, Solution.Tour);
  PA.TspPenalty = evaluateLayout(Proc, PA.TspLayout, Options.Model, Profile,
                                 Profile);
  PA.SolverRuns = Solution.NumRuns;
  PA.RunsFindingBest = Solution.RunsFindingBest;

  if (Options.ComputeBounds) {
    CpuStopwatch BoundsTimer;
    PA.Bounds = computePenaltyBounds(Proc, Profile, Options.Model,
                                     PA.TspPenalty, Options.HeldKarp);
    Task.BoundsSeconds = BoundsTimer.seconds();
  }

  if (Cache)
    Cache->store(Proc, Profile, Options, I, PA);

  Task.RanSolver = true;
  if (KeepArtifacts) {
    Task.Atsp = std::move(Atsp);
    Task.Solution = std::move(Solution);
    Task.SolverOptions = SolverOptions;
  }
  return Task;
}

} // namespace

ProgramAlignment balign::alignProgram(const Program &Prog,
                                      const ProgramProfile &Train,
                                      const AlignmentOptions &Options) {
  if (Train.Procs.size() != Prog.numProcedures())
    fatalArityMismatch(CheckId::PipelineProfileArity, "training profile",
                       Train.Procs.size(), Prog.numProcedures());
  if (Options.Cache != CacheMode::Off && !Options.CacheImpl)
    reportFatal(Diagnostic{
        Severity::Error, CheckId::PipelineCacheNotAttached, "pipeline",
        DiagLocation::program(),
        "AlignmentOptions::Cache is enabled but no implementation is "
        "attached (construct a cache::CacheSession over these options)"});
  size_t NumProcs = Prog.numProcedures();
  // Shape-check every procedure up front (and on the calling thread, so
  // the fatal diagnostic never races a worker). Block *and* edge-count
  // shapes: penalty evaluation and cache fingerprinting both walk
  // EdgeCounts parallel to the successor lists.
  for (size_t I = 0; I != NumProcs; ++I) {
    const Procedure &Proc = Prog.proc(I);
    const ProcedureProfile &Profile = Train.Procs[I];
    if (!Profile.shapeMatches(Proc))
      reportFatal(Diagnostic{
          Severity::Error, CheckId::PipelineProfileShape, "pipeline",
          DiagLocation::procedure(Proc.getName()),
          "profile covers " + std::to_string(Profile.BlockCounts.size()) +
              " blocks / " + std::to_string(Profile.EdgeCounts.size()) +
              " edge lists but the procedure has " +
              std::to_string(Proc.numBlocks()) + " blocks"});
  }

  const PipelineStageHooks &Hooks = Options.Hooks;
  bool KeepArtifacts = static_cast<bool>(Hooks.AfterMatrix) ||
                       static_cast<bool>(Hooks.AfterSolve);
  std::vector<ProcedureTask> Tasks(NumProcs);

  unsigned Threads =
      Options.Threads == 0 ? ThreadPool::hardwareThreads() : Options.Threads;
  if (Threads <= 1 || NumProcs <= 1) {
    for (size_t I = 0; I != NumProcs; ++I)
      Tasks[I] = alignOneProcedure(Prog.proc(I), Train.Procs[I], Options, I,
                                   KeepArtifacts);
  } else {
    ThreadPool Pool(Threads);
    parallelFor(Pool, 0, NumProcs, [&](size_t I) {
      Tasks[I] = alignOneProcedure(Prog.proc(I), Train.Procs[I], Options, I,
                                   KeepArtifacts);
    });
  }

  // Drain in program order on the calling thread: aggregate the CPU-time
  // stage counters (fixed summation order, so the totals do not depend
  // on scheduling) and replay the stage hooks exactly as the serial
  // pipeline of one procedure would fire them.
  ProgramAlignment Result;
  Result.Procs.reserve(NumProcs);
  for (size_t I = 0; I != NumProcs; ++I) {
    ProcedureTask &Task = Tasks[I];
    Result.GreedySeconds += Task.GreedySeconds;
    Result.MatrixSeconds += Task.MatrixSeconds;
    Result.SolverSeconds += Task.SolverSeconds;
    Result.BoundsSeconds += Task.BoundsSeconds;
    if (Task.RanSolver && KeepArtifacts) {
      if (Hooks.AfterMatrix)
        Hooks.AfterMatrix(I, Prog.proc(I), Train.Procs[I], Task.Atsp);
      if (Hooks.AfterSolve)
        Hooks.AfterSolve(I, Prog.proc(I), Train.Procs[I], Task.Atsp,
                         Task.Solution, Task.SolverOptions);
    }
    Result.Procs.push_back(std::move(Task.PA));
    if (Hooks.AfterProcedure)
      Hooks.AfterProcedure(I, Prog.proc(I), Train.Procs[I],
                           Result.Procs.back());
  }
  return Result;
}

uint64_t balign::evaluateProgramPenalty(const Program &Prog,
                                        const std::vector<Layout> &Layouts,
                                        const MachineModel &Model,
                                        const ProgramProfile &Predict,
                                        const ProgramProfile &Charge) {
  if (Layouts.size() != Prog.numProcedures())
    fatalArityMismatch(CheckId::PipelineLayoutArity, "layout list",
                       Layouts.size(), Prog.numProcedures());
  if (Predict.Procs.size() != Prog.numProcedures())
    fatalArityMismatch(CheckId::PipelineProfileArity, "prediction profile",
                       Predict.Procs.size(), Prog.numProcedures());
  if (Charge.Procs.size() != Prog.numProcedures())
    fatalArityMismatch(CheckId::PipelineProfileArity, "charge profile",
                       Charge.Procs.size(), Prog.numProcedures());
  uint64_t Sum = 0;
  for (size_t I = 0; I != Prog.numProcedures(); ++I)
    Sum += evaluateLayout(Prog.proc(I), Layouts[I], Model, Predict.Procs[I],
                          Charge.Procs[I]);
  return Sum;
}
