//===- align/Pipeline.cpp -----------------------------------------------------===//

#include "align/Pipeline.h"

#include "align/Penalty.h"
#include "analysis/Diagnostics.h"
#include "objective/Displace.h"
#include "robust/CrashInjector.h"
#include "robust/FaultInjector.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "trace/Scope.h"

#include <optional>

using namespace balign;

AlignmentAborted::AlignmentAborted(ProcedureFailure F)
    : std::runtime_error(F.str()), Failure(std::move(F)) {}

const char *balign::primaryAlignerName(PrimaryAligner Primary) {
  switch (Primary) {
  case PrimaryAligner::Tsp:
    return "tsp";
  case PrimaryAligner::ExtTsp:
    return "exttsp";
  }
  return "unknown";
}

// Arity mismatches between a program and its profiles are caller bugs
// that would otherwise surface as silent out-of-bounds reads; fail
// loudly in every build mode through the diagnostics core instead of a
// bare assert that release builds would have stripped in a conventional
// NDEBUG setup.
static void fatalArityMismatch(CheckId Check, const char *What, size_t Got,
                               size_t Want) {
  reportFatal(Diagnostic{Severity::Error, Check, "pipeline",
                         DiagLocation::program(),
                         std::string(What) + " has " + std::to_string(Got) +
                             " entries for a program with " +
                             std::to_string(Want) + " procedures"});
}

uint64_t ProgramAlignment::totalOriginalPenalty() const {
  uint64_t Sum = 0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.OriginalPenalty;
  return Sum;
}

uint64_t ProgramAlignment::totalGreedyPenalty() const {
  uint64_t Sum = 0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.GreedyPenalty;
  return Sum;
}

uint64_t ProgramAlignment::totalTspPenalty() const {
  uint64_t Sum = 0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.TspPenalty;
  return Sum;
}

double ProgramAlignment::totalHeldKarpBound() const {
  double Sum = 0.0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.Bounds.HeldKarp;
  return Sum;
}

int64_t ProgramAlignment::totalAssignmentBound() const {
  int64_t Sum = 0;
  for (const ProcedureAlignment &P : Procs)
    Sum += P.Bounds.Assignment;
  return Sum;
}

std::vector<Layout> ProgramAlignment::originalLayouts() const {
  std::vector<Layout> Result;
  Result.reserve(Procs.size());
  for (const ProcedureAlignment &P : Procs)
    Result.push_back(P.OriginalLayout);
  return Result;
}

std::vector<Layout> ProgramAlignment::greedyLayouts() const {
  std::vector<Layout> Result;
  Result.reserve(Procs.size());
  for (const ProcedureAlignment &P : Procs)
    Result.push_back(P.GreedyLayout);
  return Result;
}

std::vector<Layout> ProgramAlignment::tspLayouts() const {
  std::vector<Layout> Result;
  Result.reserve(Procs.size());
  for (const ProcedureAlignment &P : Procs)
    Result.push_back(P.TspLayout);
  return Result;
}

namespace {

/// Everything one procedure's alignment produces, including the stage
/// artifacts the hooks observe and the per-stage CPU time the worker
/// spent on it. Kept per-procedure (not accumulated into shared state)
/// so parallel workers never write to the same location and the drain
/// loop can replay hooks and sum timers in program order.
struct ProcedureTask {
  ProcedureAlignment PA;

  double GreedySeconds = 0.0;
  double MatrixSeconds = 0.0;
  double SolverSeconds = 0.0;
  double BoundsSeconds = 0.0;

  /// Hook payloads; only retained (and only meaningful) for profiled
  /// procedures when some hook is installed.
  bool RanSolver = false;
  AlignmentTsp Atsp;
  DtspSolution Solution;
  IteratedOptOptions SolverOptions;

  /// Failure this procedure's isolation caught, if any (balign-shield);
  /// the drain loop appends these to the report in program order, or
  /// throws the first one under OnErrorPolicy::Abort.
  std::optional<ProcedureFailure> Failure;
};

/// Resource-cap trips on the DTSP reduction; caught at the procedure
/// boundary and mapped to FailureKind::ResourceCap.
class ResourceCapError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Runs every stage for procedure \p I. Pure function of its arguments:
/// reads only shared-immutable inputs, writes only the returned task
/// (and talks to the internally synchronized cache, when one is
/// attached), so any number of calls may run concurrently.
/// \p KeepArtifacts retains the matrix/solution for the hook drain — and
/// disables cache *lookups*, because a hit has no stage artifacts for
/// the AfterMatrix/AfterSolve hooks to observe; computed results are
/// still offered to the cache.
/// The full alignment path (greedy + DTSP solve + bounds) for a profiled
/// procedure. Throws on injected faults, deadline expiry, or any stage
/// failure; the shielded wrapper below catches at the procedure boundary.
void alignFullPath(const Procedure &Proc, const ProcedureProfile &Profile,
                   const AlignmentOptions &Options, size_t I,
                   bool KeepArtifacts, const Deadline *Budget,
                   ProcedureTask &Task) {
  ProcedureAlignment &PA = Task.PA;
  ProcedureResultCache *Cache = Options.CacheImpl;
  if (Cache && !KeepArtifacts && Cache->lookup(Proc, Profile, Options, I, PA))
    return; // Validated hit; all stage timers stay at zero.

  CpuStopwatch GreedyTimer;
  {
    ScopedSpan GreedySpan("stage.greedy", SpanCat::Stage);
    PA.GreedyLayout = GreedyAligner().align(Proc, Profile, Options.Model);
    Task.GreedySeconds = GreedyTimer.seconds();
    PA.GreedyPenalty = evaluateLayout(Proc, PA.GreedyLayout, Options.Model,
                                      Profile, Profile);
  }

  // Profile-guided effort (balign-lint): one pure decision, shared with
  // the cache fingerprint, picks this procedure's solver options. The
  // cold fast-path ships the greedy layout without ever building the
  // DTSP instance; such results are still cached — GreedyOnly is part
  // of the fingerprint, so they can never be confused with full solves.
  EffortDecision Effort =
      decideEffort(Proc, Profile, Options.Solver, Options.Effort);
  if (Effort.GreedyOnly) {
    PA.TspLayout = PA.GreedyLayout;
    PA.TspPenalty = PA.GreedyPenalty;
    scopeCounterAdd("effort.greedy-only");
    if (Cache)
      Cache->store(Proc, Profile, Options, I, PA);
    return;
  }

  // The Ext-TSP primary path: chain merging needs no DTSP instance, so
  // the matrix/solve stages (and their hooks) are skipped entirely; the
  // merger's time is charged to the solver stage, preserving Table 2's
  // "work per stage" meaning. Bounds are still meaningful — Held-Karp
  // lower-bounds *every* layout's penalty, including this one.
  if (Options.Primary == PrimaryAligner::ExtTsp) {
    CpuStopwatch ChainTimer;
    {
      ScopedSpan ChainSpan("stage.chain", SpanCat::Stage);
      PA.TspLayout =
          ExtTspAligner(Options.Objective).align(Proc, Profile, Options.Model);
    }
    Task.SolverSeconds = ChainTimer.seconds();
    PA.TspPenalty = evaluateLayout(Proc, PA.TspLayout, Options.Model, Profile,
                                   Profile);
    if (Options.ComputeBounds) {
      CpuStopwatch BoundsTimer;
      ScopedSpan BoundsSpan("stage.bounds", SpanCat::Stage);
      PA.Bounds = computePenaltyBounds(Proc, Profile, Options.Model,
                                       PA.TspPenalty, Options.HeldKarp);
      Task.BoundsSeconds = BoundsTimer.seconds();
    }
    if (Cache)
      Cache->store(Proc, Profile, Options, I, PA);
    return;
  }

  CpuStopwatch MatrixTimer;
  AlignmentTsp Atsp;
  {
    ScopedSpan MatrixSpan("stage.matrix", SpanCat::Stage);
    Atsp = buildAlignmentTsp(Proc, Profile, Options.Model);
  }
  Task.MatrixSeconds = MatrixTimer.seconds();

  CpuStopwatch SolverTimer;
  // Give each procedure a solver stream derived from the root seed so
  // results do not depend on procedure processing order — this is what
  // makes parallel and serial runs bit-identical.
  IteratedOptOptions SolverOptions = Effort.Solver;
  SolverOptions.Seed = derivedSolverSeed(Options.Solver.Seed, I);
  SolverOptions.Budget = Budget;
  DtspSolution Solution;
  {
    ScopedSpan SolveSpan("stage.solve", SpanCat::Stage);
    Solution = solveDirectedTsp(Atsp.Tsp, SolverOptions);
  }
  Task.SolverSeconds = SolverTimer.seconds();

  PA.TspLayout = layoutFromTour(Proc, Atsp, Solution.Tour);
  PA.TspPenalty = evaluateLayout(Proc, PA.TspLayout, Options.Model, Profile,
                                 Profile);
  PA.SolverRuns = Solution.NumRuns;
  PA.RunsFindingBest = Solution.RunsFindingBest;

  // balign-displace: the matrix above priced every branch short-form;
  // one refinement round re-solves with the observed long branches
  // surcharged and keeps the better layout. Charged to the solver stage
  // (it is a second, smaller solve) so Table 2 totals stay meaningful.
  if (Options.Model.Encoding == BranchEncoding::ShortLong) {
    CpuStopwatch DisplaceTimer;
    ScopedSpan DisplaceSpan("stage.displace", SpanCat::Stage);
    if (refineLayoutForEncoding(Proc, Profile, Options.Model, Atsp,
                                SolverOptions, PA.TspLayout, PA.TspPenalty))
      scopeCounterAdd("displace.refit-wins");
    scopeCounterAdd("displace.refits");
    Task.SolverSeconds += DisplaceTimer.seconds();
  }

  if (Options.ComputeBounds) {
    CpuStopwatch BoundsTimer;
    ScopedSpan BoundsSpan("stage.bounds", SpanCat::Stage);
    PA.Bounds = computePenaltyBounds(Proc, Profile, Options.Model,
                                     PA.TspPenalty, Options.HeldKarp);
    Task.BoundsSeconds = BoundsTimer.seconds();
  }

  // Only full-path results are cached: a degraded result is not what
  // recomputation of this fingerprint would produce, so the fallback
  // wrapper never reaches this store.
  if (Cache)
    Cache->store(Proc, Profile, Options, I, PA);

  Task.RanSolver = true;
  if (KeepArtifacts) {
    Task.Atsp = std::move(Atsp);
    Task.Solution = std::move(Solution);
    Task.SolverOptions = SolverOptions;
    // The budget points at the worker's stack frame; the drain loop
    // replays hooks long after it is gone, and a replayed solve must
    // not re-observe (or dangle on) the original run's deadline.
    Task.SolverOptions.Budget = nullptr;
  }
}

/// The degradation ladder (balign-shield): called after the full path
/// failed with \p Failure. Resets any partial full-path state, then
/// ships the greedy layout (retrying the greedy aligner — it may itself
/// be the failing stage) or, failing that, the original order, which is
/// always available. Under OnErrorPolicy::Skip the ladder is not walked.
void fallbackProcedure(const Procedure &Proc, const ProcedureProfile &Profile,
                       const AlignmentOptions &Options, ProcedureTask &Task,
                       ProcedureFailure Failure) {
  ProcedureAlignment &PA = Task.PA;
  PA.Bounds = PenaltyBounds();
  PA.SolverRuns = 0;
  PA.RunsFindingBest = 0;
  Task.RanSolver = false;

  bool TryGreedy = Options.OnError != OnErrorPolicy::Skip;
  Failure.Skipped = Options.OnError == OnErrorPolicy::Skip;
  if (TryGreedy) {
    try {
      PA.GreedyLayout = GreedyAligner().align(Proc, Profile, Options.Model);
      PA.GreedyPenalty = evaluateLayout(Proc, PA.GreedyLayout, Options.Model,
                                        Profile, Profile);
      PA.TspLayout = PA.GreedyLayout;
      PA.TspPenalty = PA.GreedyPenalty;
      PA.Rung = LadderRung::Greedy;
      Failure.Rung = LadderRung::Greedy;
      Task.Failure = std::move(Failure);
      return;
    } catch (const std::exception &) {
      // Fall through to the bottom rung.
    }
  }
  PA.GreedyLayout = PA.OriginalLayout;
  PA.GreedyPenalty = PA.OriginalPenalty;
  PA.TspLayout = PA.OriginalLayout;
  PA.TspPenalty = PA.OriginalPenalty;
  PA.Rung = LadderRung::Original;
  Failure.Rung = LadderRung::Original;
  Task.Failure = std::move(Failure);
}

ProcedureTask alignOneProcedure(const Procedure &Proc,
                                const ProcedureProfile &Profile,
                                const AlignmentOptions &Options, size_t I,
                                bool KeepArtifacts) {
  ProcedureTask Task;
  ProcedureAlignment &PA = Task.PA;

  PA.OriginalLayout = Layout::original(Proc);
  PA.OriginalPenalty = evaluateLayout(Proc, PA.OriginalLayout, Options.Model,
                                      Profile, Profile);

  // Unprofiled procedures are left alone, as a profile-guided compiler
  // leaves untouched code in place; rearranging on a zero-cost matrix
  // would pick an arbitrary (and, under a different input, possibly
  // terrible) permutation. They also bypass the cache and the shield:
  // keeping the original layout is the designed behavior, never a
  // failure, so no fault site fires for them.
  if (Profile.executedBranches(Proc) == 0) {
    PA.GreedyLayout = PA.OriginalLayout;
    PA.TspLayout = PA.OriginalLayout;
    scopeCounterAdd("pipeline.unprofiled");
    return Task;
  }

  FailureKind Kind;
  std::string What;
  try {
    // balign-shield fault site: the coarsest probe, standing in for any
    // failure of the per-procedure task itself. Placed inside the
    // isolation boundary (not in the thread pool, which knows nothing
    // of procedures) so a firing task degrades like any other failure.
    FaultInjector::instance().throwIfFault(FaultSite::PoolTask);
    // balign-sentinel crash site: die inside a per-procedure task — the
    // chaos harness proves a kill mid-batch loses only unjournaled
    // programs, never the cache or checkpoint already persisted.
    CrashInjector::instance().crashPoint(CrashSite::PoolTask);
    if (Options.RunDeadline)
      Options.RunDeadline->check("whole-run alignment");
    size_t Cities = Proc.numBlocks() + 1; // Blocks + the dummy city.
    if (Options.MaxTspCities && Cities > Options.MaxTspCities)
      throw ResourceCapError(
          "DTSP instance of " + std::to_string(Cities) +
          " cities exceeds the cap of " +
          std::to_string(Options.MaxTspCities));
    // The symmetric transform's 2N x 2N matrix of 8-byte costs is the
    // dominant allocation of the full path.
    size_t MatrixBytes = 4 * Cities * Cities * sizeof(int64_t);
    if (Options.MaxTspMatrixBytes && MatrixBytes > Options.MaxTspMatrixBytes)
      throw ResourceCapError(
          "symmetric transform of " + std::to_string(MatrixBytes) +
          " bytes exceeds the cap of " +
          std::to_string(Options.MaxTspMatrixBytes));
    Deadline ProcBudget(Options.ProcBudgetMs, Options.Clock,
                        Options.RunDeadline);
    const Deadline *Budget =
        (Options.ProcBudgetMs || Options.RunDeadline) ? &ProcBudget : nullptr;
    alignFullPath(Proc, Profile, Options, I, KeepArtifacts, Budget, Task);
    return Task;
  } catch (const FaultInjectedError &E) {
    Kind = FailureKind::Fault;
    What = E.what();
  } catch (const DeadlineExceeded &E) {
    Kind = FailureKind::Deadline;
    What = E.what();
  } catch (const ResourceCapError &E) {
    Kind = FailureKind::ResourceCap;
    What = E.what();
  } catch (const std::exception &E) {
    Kind = FailureKind::Exception;
    What = E.what();
  }

  ProcedureFailure Failure;
  Failure.ProcIndex = I;
  Failure.ProcName = Proc.getName();
  Failure.Kind = Kind;
  Failure.What = std::move(What);
  fallbackProcedure(Proc, Profile, Options, Task, std::move(Failure));
  return Task;
}

} // namespace

ProgramAlignment balign::alignProgram(const Program &Prog,
                                      const ProgramProfile &Train,
                                      const AlignmentOptions &Options) {
  if (Train.Procs.size() != Prog.numProcedures())
    fatalArityMismatch(CheckId::PipelineProfileArity, "training profile",
                       Train.Procs.size(), Prog.numProcedures());
  if (Options.Cache != CacheMode::Off && !Options.CacheImpl)
    reportFatal(Diagnostic{
        Severity::Error, CheckId::PipelineCacheNotAttached, "pipeline",
        DiagLocation::program(),
        "AlignmentOptions::Cache is enabled but no implementation is "
        "attached (construct a cache::CacheSession over these options)"});
  size_t NumProcs = Prog.numProcedures();
  // Shape-check every procedure up front (and on the calling thread, so
  // the fatal diagnostic never races a worker). Block *and* edge-count
  // shapes: penalty evaluation and cache fingerprinting both walk
  // EdgeCounts parallel to the successor lists.
  for (size_t I = 0; I != NumProcs; ++I) {
    const Procedure &Proc = Prog.proc(I);
    const ProcedureProfile &Profile = Train.Procs[I];
    if (!Profile.shapeMatches(Proc))
      reportFatal(Diagnostic{
          Severity::Error, CheckId::PipelineProfileShape, "pipeline",
          DiagLocation::procedure(Proc.getName()),
          "profile covers " + std::to_string(Profile.BlockCounts.size()) +
              " blocks / " + std::to_string(Profile.EdgeCounts.size()) +
              " edge lists but the procedure has " +
              std::to_string(Proc.numBlocks()) + " blocks"});
  }

  const PipelineStageHooks &Hooks = Options.Hooks;
  bool KeepArtifacts = static_cast<bool>(Hooks.AfterMatrix) ||
                       static_cast<bool>(Hooks.AfterSolve);
  std::vector<ProcedureTask> Tasks(NumProcs);

  ScopedSpan AlignSpan("pipeline.align", SpanCat::Pipeline);
  scopeCounterAdd("pipeline.procs", NumProcs);

  // Each per-procedure task runs under a TrackScope binding its spans
  // (the balign-scope drain key) to the procedure index, so the drained
  // trace is identical whether the task ran inline or on a pool worker.
  auto RunOne = [&](size_t I) {
    TrackScope Track(static_cast<int64_t>(I));
    ScopedSpan TaskSpan("proc.task", SpanCat::Pipeline);
    Tasks[I] = alignOneProcedure(Prog.proc(I), Train.Procs[I], Options, I,
                                 KeepArtifacts);
  };
  unsigned Threads =
      Options.Threads == 0 ? ThreadPool::hardwareThreads() : Options.Threads;
  if (Threads <= 1 || NumProcs <= 1) {
    for (size_t I = 0; I != NumProcs; ++I)
      RunOne(I);
  } else {
    ThreadPool Pool(Threads);
    parallelFor(Pool, 0, NumProcs, RunOne);
  }

  // Drain in program order on the calling thread: aggregate the CPU-time
  // stage counters (fixed summation order, so the totals do not depend
  // on scheduling) and replay the stage hooks exactly as the serial
  // pipeline of one procedure would fire them.
  ProgramAlignment Result;
  Result.Procs.reserve(NumProcs);
  ScopedSpan DrainSpan("pipeline.drain", SpanCat::Pipeline);
  for (size_t I = 0; I != NumProcs; ++I) {
    ProcedureTask &Task = Tasks[I];
    // Verify-hook spans replayed below belong to this procedure's track,
    // right after the spans its worker recorded.
    TrackScope Track(static_cast<int64_t>(I));
    // Shield policy first: under Abort the first failure in program
    // order throws — deterministic at any thread count, because workers
    // record failures privately and this loop runs in program order.
    if (Task.Failure && Options.OnError == OnErrorPolicy::Abort)
      throw AlignmentAborted(std::move(*Task.Failure));
    if (Task.Failure) {
      scopeCounterAdd(Task.Failure->Skipped ? "shield.skipped"
                                            : "shield.fallbacks");
      scopeCounterAdd(Task.Failure->Rung == LadderRung::Original
                          ? "shield.rung.original"
                          : "shield.rung.greedy");
      Result.Failures.Failures.push_back(std::move(*Task.Failure));
    }
    Result.GreedySeconds += Task.GreedySeconds;
    Result.MatrixSeconds += Task.MatrixSeconds;
    Result.SolverSeconds += Task.SolverSeconds;
    Result.BoundsSeconds += Task.BoundsSeconds;
    if (Task.RanSolver && KeepArtifacts) {
      if (Hooks.AfterMatrix)
        Hooks.AfterMatrix(I, Prog.proc(I), Train.Procs[I], Task.Atsp);
      if (Hooks.AfterSolve)
        Hooks.AfterSolve(I, Prog.proc(I), Train.Procs[I], Task.Atsp,
                         Task.Solution, Task.SolverOptions);
    }
    Result.Procs.push_back(std::move(Task.PA));
    if (Hooks.AfterProcedure)
      Hooks.AfterProcedure(I, Prog.proc(I), Train.Procs[I],
                           Result.Procs.back());
  }
  return Result;
}

bool balign::refineLayoutForEncoding(const Procedure &Proc,
                                     const ProcedureProfile &Train,
                                     const MachineModel &Model,
                                     const AlignmentTsp &Atsp,
                                     const IteratedOptOptions &SolverOptions,
                                     Layout &L, uint64_t &Penalty) {
  if (Model.Encoding != BranchEncoding::ShortLong)
    return false;
  MaterializedLayout Mat = materializeLayout(Proc, L, Train, Model);
  if (Mat.NumLongBranches == 0)
    return false; // All-short is exact: the matrix priced it correctly.
  uint64_t FirstTotal =
      Penalty + longBranchExtraPenalty(Proc, Mat, Train, Model);

  // Blocks owning a long branch; a long fixup jump charges the
  // conditional it belongs to (the preceding block item).
  std::vector<bool> LongBlock(Proc.numBlocks(), false);
  BlockId Owner = InvalidBlock;
  for (const LayoutItem &Item : Mat.Items) {
    if (!Item.isFixup())
      Owner = Item.Block;
    if (Item.LongForm)
      LongBlock[Owner] = true;
  }

  AlignmentTsp Refined = Atsp;
  City NumCities = static_cast<City>(Refined.Tsp.numCities());
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    if (!LongBlock[B])
      continue;
    for (City To = 0; To != NumCities; ++To) {
      if (To == B)
        continue;
      BlockId LayoutSucc =
          To == Refined.DummyCity ? InvalidBlock : static_cast<BlockId>(To);
      uint64_t Surcharge =
          longBranchEdgeSurcharge(Proc, Model, Train, Train, B, LayoutSucc);
      if (Surcharge != 0)
        Refined.Tsp.setCost(B, To,
                            Refined.Tsp.cost(B, To) +
                                static_cast<int64_t>(Surcharge));
    }
  }

  IteratedOptOptions RefitOptions = SolverOptions;
  RefitOptions.Seed = derivedSolverSeed(SolverOptions.Seed, 1);
  DtspSolution Refit = solveDirectedTsp(Refined.Tsp, RefitOptions);
  Layout RefitLayout = layoutFromTour(Proc, Refined, Refit.Tour);
  uint64_t RefitPenalty =
      evaluateLayout(Proc, RefitLayout, Model, Train, Train);
  MaterializedLayout RefitMat =
      materializeLayout(Proc, RefitLayout, Train, Model);
  uint64_t RefitTotal =
      RefitPenalty + longBranchExtraPenalty(Proc, RefitMat, Train, Model);
  if (RefitTotal >= FirstTotal)
    return false; // Ties keep round 1, whose matrix was not perturbed.
  L = std::move(RefitLayout);
  Penalty = RefitPenalty;
  return true;
}

uint64_t balign::evaluateProgramPenalty(const Program &Prog,
                                        const std::vector<Layout> &Layouts,
                                        const MachineModel &Model,
                                        const ProgramProfile &Predict,
                                        const ProgramProfile &Charge) {
  if (Layouts.size() != Prog.numProcedures())
    fatalArityMismatch(CheckId::PipelineLayoutArity, "layout list",
                       Layouts.size(), Prog.numProcedures());
  if (Predict.Procs.size() != Prog.numProcedures())
    fatalArityMismatch(CheckId::PipelineProfileArity, "prediction profile",
                       Predict.Procs.size(), Prog.numProcedures());
  if (Charge.Procs.size() != Prog.numProcedures())
    fatalArityMismatch(CheckId::PipelineProfileArity, "charge profile",
                       Charge.Procs.size(), Prog.numProcedures());
  uint64_t Sum = 0;
  for (size_t I = 0; I != Prog.numProcedures(); ++I)
    Sum += evaluateLayout(Prog.proc(I), Layouts[I], Model, Predict.Procs[I],
                          Charge.Procs[I]);
  return Sum;
}
