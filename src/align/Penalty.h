//===- align/Penalty.h - Forwarder to objective/Penalty.h -----------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The Section 2.2 penalty model moved into the objective subsystem, where
/// it backs FallthroughObjective. This forwarder keeps historical
/// `align/Penalty.h` includes compiling; new code should include
/// `objective/Penalty.h` directly.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ALIGN_PENALTY_FWD_H
#define BALIGN_ALIGN_PENALTY_FWD_H

#include "objective/Penalty.h"

#endif // BALIGN_ALIGN_PENALTY_FWD_H
