//===- align/OutcomeCosts.cpp ------------------------------------------------------===//

#include "align/OutcomeCosts.h"

#include "machine/Predictors.h"

#include <algorithm>
#include <cassert>

using namespace balign;

OutcomeCounts OutcomeCounts::zeroed(const Procedure &Proc) {
  OutcomeCounts Counts;
  Counts.Correct.resize(Proc.numBlocks());
  Counts.Incorrect.resize(Proc.numBlocks());
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    Counts.Correct[B].assign(Proc.successors(B).size(), 0);
    Counts.Incorrect[B].assign(Proc.successors(B).size(), 0);
  }
  return Counts;
}

OutcomeCounts balign::collectOutcomeCounts(const Procedure &Proc,
                                           const MaterializedLayout &Mat,
                                           const ExecutionTrace &Trace,
                                           size_t PredictorEntries) {
  OutcomeCounts Counts = OutcomeCounts::zeroed(Proc);
  BimodalPredictor Predictor(PredictorEntries);

  auto SuccIndexOf = [&](BlockId From, BlockId To) -> size_t {
    const std::vector<BlockId> &Succs = Proc.successors(From);
    for (size_t S = 0; S != Succs.size(); ++S)
      if (Succs[S] == To)
        return S;
    return Succs.size();
  };

  for (size_t I = 0; I + 1 < Trace.Blocks.size(); ++I) {
    BlockId Current = Trace.Blocks[I];
    const BasicBlock &Block = Proc.block(Current);
    if (Block.Kind == TerminatorKind::Return)
      continue;
    BlockId Next = Trace.Blocks[I + 1];
    size_t SuccIdx = SuccIndexOf(Current, Next);
    if (SuccIdx == Proc.successors(Current).size())
      continue; // Abandoned walk boundary.

    switch (Block.Kind) {
    case TerminatorKind::Return:
      break;
    case TerminatorKind::Unconditional:
      // No prediction needed; always "correct".
      ++Counts.Correct[Current][SuccIdx];
      break;
    case TerminatorKind::Conditional: {
      // Trace-driven bimodal outcome; branch addresses (and hence table
      // aliasing) come from the given layout — the footnote 6 caveat.
      const BranchArrangement &Arr = Mat.Arrangements[Current];
      uint64_t Addr = Mat.blockAddress(Current);
      bool ActualTaken = Next == Arr.TakenTarget;
      bool Correct = Predictor.predict(Addr) == ActualTaken;
      Predictor.update(Addr, ActualTaken);
      if (Correct)
        ++Counts.Correct[Current][SuccIdx];
      else
        ++Counts.Incorrect[Current][SuccIdx];
      break;
    }
    case TerminatorKind::Multiway: {
      // Tallied provisionally as Correct; fixed up below once the most
      // common (predicted) arm is known.
      ++Counts.Correct[Current][SuccIdx];
      break;
    }
    }
  }

  // Multiway fixup: the predicted arm is the most common one; all other
  // arms' transfers were mispredictions.
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    if (Proc.block(B).Kind != TerminatorKind::Multiway)
      continue;
    std::vector<uint64_t> &Correct = Counts.Correct[B];
    size_t Best = 0;
    for (size_t S = 1; S != Correct.size(); ++S)
      if (Correct[S] > Correct[Best])
        Best = S;
    for (size_t S = 0; S != Correct.size(); ++S) {
      if (S == Best)
        continue;
      Counts.Incorrect[B][S] = Correct[S];
      Correct[S] = 0;
    }
  }
  return Counts;
}

/// penalty(B, X) under the general formula; X == InvalidBlock means no
/// CFG-related block follows (end of layout or an unrelated block).
static uint64_t outcomePenalty(const Procedure &Proc,
                               const OutcomeCounts &Outcomes,
                               const MachineModel &Model, BlockId B,
                               BlockId X) {
  const std::vector<BlockId> &Succs = Proc.successors(B);
  switch (Proc.block(B).Kind) {
  case TerminatorKind::Return:
    return 0;

  case TerminatorKind::Unconditional: {
    if (X == Succs[0])
      return 0;
    return (Outcomes.Correct[B][0] + Outcomes.Incorrect[B][0]) *
           Model.UncondBranch;
  }

  case TerminatorKind::Conditional: {
    auto EdgeCost = [&](size_t S, bool FallsThrough, bool ViaFixup) {
      uint64_t C = Outcomes.Correct[B][S];
      uint64_t I = Outcomes.Incorrect[B][S];
      uint64_t Cost = FallsThrough
                          ? C * Model.CondFallThrough + I * Model.CondMispredict
                          : C * Model.CondTakenCorrect + I * Model.CondMispredict;
      if (ViaFixup)
        Cost += (C + I) * Model.UncondBranch;
      return Cost;
    };
    if (X == Succs[0])
      return EdgeCost(0, true, false) + EdgeCost(1, false, false);
    if (X == Succs[1])
      return EdgeCost(1, true, false) + EdgeCost(0, false, false);
    // Fixup: one edge leaves through a fall-through jump; pick the
    // cheaper orientation (the paper attaches the fixup cost to the
    // DTSP edge that required it).
    uint64_t TakeFirst = EdgeCost(0, false, false) + EdgeCost(1, true, true);
    uint64_t TakeSecond = EdgeCost(1, false, false) + EdgeCost(0, true, true);
    return std::min(TakeFirst, TakeSecond);
  }

  case TerminatorKind::Multiway: {
    uint64_t Sum = 0;
    for (size_t S = 0; S != Succs.size(); ++S)
      Sum += Outcomes.Correct[B][S] * Model.MultiwayPredicted +
             Outcomes.Incorrect[B][S] * Model.MultiwayMispredict;
    return Sum;
  }
  }
  assert(false && "unknown terminator kind");
  return 0;
}

AlignmentTsp balign::buildOutcomeTsp(const Procedure &Proc,
                                     const OutcomeCounts &Outcomes,
                                     const MachineModel &Model) {
  size_t N = Proc.numBlocks();
  AlignmentTsp Atsp;
  Atsp.DummyCity = static_cast<City>(N);
  Atsp.Tsp = DirectedTsp(N + 1);

  for (BlockId B = 0; B != N; ++B) {
    for (BlockId X = 0; X != N; ++X)
      if (B != X)
        Atsp.Tsp.setCost(B, X, static_cast<int64_t>(outcomePenalty(
                                   Proc, Outcomes, Model, B, X)));
    Atsp.Tsp.setCost(B, Atsp.DummyCity,
                     static_cast<int64_t>(outcomePenalty(
                         Proc, Outcomes, Model, B, InvalidBlock)));
  }

  int64_t WorstTotal = 0;
  for (BlockId B = 0; B != N; ++B) {
    int64_t Worst = 0;
    for (City X = 0; X != N + 1; ++X)
      if (X != B)
        Worst = std::max(Worst, Atsp.Tsp.cost(B, X));
    WorstTotal += Worst;
  }
  Atsp.EntryPin = WorstTotal + 1;
  for (BlockId B = 0; B != N; ++B)
    Atsp.Tsp.setCost(Atsp.DummyCity, B,
                     B == Proc.entry() ? 0 : Atsp.EntryPin);
  return Atsp;
}
