//===- align/Pipeline.h - Whole-program alignment driver -------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Drives the full toolchain over a program: for every procedure, builds
/// the original/greedy/TSP layouts, evaluates their control penalties on
/// the training profile, and (optionally) computes the Held-Karp and
/// Assignment lower bounds. Procedures are independent, so the driver
/// can farm them out to a work-stealing thread pool
/// (AlignmentOptions::Threads) with bit-identical results. Per-stage
/// CPU-seconds are recorded so the Table 2 harness can report the
/// compile-time cost of each phase the way the paper does.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ALIGN_PIPELINE_H
#define BALIGN_ALIGN_PIPELINE_H

#include "align/Aligners.h"
#include "align/Bounds.h"
#include "align/Layout.h"
#include "ir/CFG.h"
#include "machine/MachineModel.h"
#include "profile/Profile.h"
#include "robust/Deadline.h"
#include "robust/FailureReport.h"
#include "static/EffortPolicy.h"
#include "tsp/HeldKarp.h"
#include "tsp/IteratedOpt.h"

#include <functional>
#include <stdexcept>
#include <vector>

namespace balign {

struct ProcedureAlignment;

/// Observation points the pipeline exposes for verification
/// instrumentation (the -verify-each idea): each callback, when set,
/// fires after the named stage with the stage's inputs and freshly
/// produced artifact. The pipeline itself never inspects the callbacks'
/// behavior, so instrumentation cannot change results —
/// analysis/PipelineVerifier.h installs the balign-verify passes here
/// without the align library depending on them.
///
/// Serialization contract: callbacks always run on the thread that
/// called alignProgram, never concurrently, in program order, and the
/// three callbacks of one procedure fire consecutively
/// (AfterMatrix, AfterSolve, AfterProcedure). Under
/// AlignmentOptions::Threads > 1 the per-procedure stage artifacts are
/// buffered in a drain queue and replayed in that order once the
/// parallel region completes, so hooks written for the serial pipeline
/// (including stateful ones like PipelineVerifier's per-procedure
/// cache) work unchanged at any thread count.
struct PipelineStageHooks {
  /// After the DTSP instance of a profiled procedure is built.
  std::function<void(size_t ProcIndex, const Procedure &Proc,
                     const ProcedureProfile &Train,
                     const AlignmentTsp &Atsp)>
      AfterMatrix;

  /// After the solver returns; \p SolverOptions carries the derived
  /// per-procedure seed actually used.
  std::function<void(size_t ProcIndex, const Procedure &Proc,
                     const ProcedureProfile &Train,
                     const AlignmentTsp &Atsp, const DtspSolution &Solution,
                     const IteratedOptOptions &SolverOptions)>
      AfterSolve;

  /// After a procedure's alignment record is complete (also fires for
  /// unprofiled procedures that took the keep-original skip path).
  std::function<void(size_t ProcIndex, const Procedure &Proc,
                     const ProcedureProfile &Train,
                     const ProcedureAlignment &Result)>
      AfterProcedure;
};

struct AlignmentOptions;

/// Where alignProgram keeps per-procedure results between runs.
enum class CacheMode : uint8_t {
  Off,    ///< Every procedure is recomputed (the default).
  Memory, ///< Results cached in-process; dies with the cache object.
  Disk,   ///< Results persisted under AlignmentOptions::CachePath.
};

/// The pipeline's view of a result cache. The align library deliberately
/// knows nothing about fingerprints or storage: it hands the cache the
/// raw per-procedure inputs plus the procedure index (whose derived
/// solver seed is part of the key) and receives a validated
/// ProcedureAlignment back, or computes and offers the fresh result for
/// storage. The concrete implementation lives in cache/Store.h, which
/// may link the analysis library for hit validation — a dependency the
/// align library itself must not take.
///
/// Thread-safety contract: lookup and store may be called concurrently
/// from pipeline workers (AlignmentOptions::Threads > 1); the
/// implementation must synchronize internally.
class ProcedureResultCache {
public:
  virtual ~ProcedureResultCache() = default;

  /// On a validated hit, fills \p Out and returns true. A hit must be
  /// byte-identical to what recomputation would produce; anything the
  /// implementation cannot fully validate must be a miss.
  virtual bool lookup(const Procedure &Proc, const ProcedureProfile &Train,
                      const AlignmentOptions &Options, size_t ProcIndex,
                      ProcedureAlignment &Out) = 0;

  /// Offers a freshly computed result for caching.
  virtual void store(const Procedure &Proc, const ProcedureProfile &Train,
                     const AlignmentOptions &Options, size_t ProcIndex,
                     const ProcedureAlignment &Result) = 0;
};

/// What alignProgram does when a procedure's alignment fails — an
/// exception escapes a stage, a deadline expires, a resource cap trips
/// (balign-shield failure isolation).
enum class OnErrorPolicy : uint8_t {
  /// Propagate the first failure (program order) out of alignProgram as
  /// AlignmentAborted. The default: failures stay loud unless the
  /// caller opts into degradation.
  Abort,
  /// Walk the degradation ladder: retry with the greedy aligner, then
  /// fall back to the original layout. The run completes; every
  /// degraded procedure is recorded in ProgramAlignment::Failures.
  Fallback,
  /// Keep the failing procedure's original layout without retrying the
  /// ladder (recorded with Skipped set).
  Skip,
};

/// Thrown by alignProgram under OnErrorPolicy::Abort: carries the first
/// per-procedure failure in program order (deterministic at any thread
/// count).
class AlignmentAborted : public std::runtime_error {
public:
  explicit AlignmentAborted(ProcedureFailure F);

  const ProcedureFailure &failure() const { return Failure; }

private:
  ProcedureFailure Failure;
};

/// The solver-seed stream of procedure \p ProcIndex, derived from the
/// root seed so results do not depend on procedure processing order.
/// Shared between the pipeline (which solves with it) and the cache
/// fingerprint (which keys on it); the two must never disagree.
inline uint64_t derivedSolverSeed(uint64_t RootSeed, size_t ProcIndex) {
  return RootSeed + 0x9e3779b9u * (static_cast<uint64_t>(ProcIndex) + 1);
}

/// balign-displace: one bounded-error refinement round for a variable
/// branch encoding. The DTSP matrix prices every branch as short-form;
/// under BranchEncoding::ShortLong the solved layout may widen some
/// branches, whose long-form execution cost the solve never saw. This
/// routine materializes \p L, runs the displacement fixpoint, and — when
/// any branch went long — re-solves a copy of \p Atsp whose rows for the
/// long-observed blocks carry longBranchEdgeSurcharge, with a seed
/// derived from \p SolverOptions.Seed, then keeps whichever layout is
/// cheaper under the encoding-aware total (evaluateLayout plus
/// longBranchExtraPenalty). One round only: which branches go long is a
/// property of the whole layout, so the surcharge can overprice blocks
/// the re-solve brings back into short range, but the error is bounded
/// by the total surcharge added (DESIGN.md section 17). Replayed
/// verbatim by the determinism verify pass; must stay a pure function
/// of its arguments. Returns true when the refit layout replaced \p L
/// (updating \p Penalty, which excludes the long-branch surcharge, like
/// every reported penalty). A no-op under BranchEncoding::Fixed.
bool refineLayoutForEncoding(const Procedure &Proc,
                             const ProcedureProfile &Train,
                             const MachineModel &Model,
                             const AlignmentTsp &Atsp,
                             const IteratedOptOptions &SolverOptions,
                             Layout &L, uint64_t &Penalty);

/// Which algorithm produces the pipeline's primary layout
/// (ProcedureAlignment::TspLayout — the name is historical; greedy and
/// original are always computed alongside as baselines).
enum class PrimaryAligner : uint8_t {
  Tsp = 0,    ///< The paper's DTSP + iterated 3-Opt (the default).
  ExtTsp = 1, ///< ObjectiveFn-driven chain merging (ExtTspAligner).
};

/// Stable flag spelling ("tsp" / "exttsp").
const char *primaryAlignerName(PrimaryAligner Primary);

/// Configuration for alignProgram.
struct AlignmentOptions {
  MachineModel Model = MachineModel::alpha21164();
  IteratedOptOptions Solver;
  HeldKarpOptions HeldKarp;
  bool ComputeBounds = true;

  /// The algorithm behind the primary layout. ExtTsp skips the DTSP
  /// matrix/solve stages entirely (the AfterMatrix/AfterSolve hooks
  /// never fire — there are no artifacts to observe) and runs the
  /// chain merger under the solve-stage timer instead. Result-affecting,
  /// so the cache fingerprint keys on it.
  PrimaryAligner Primary = PrimaryAligner::Tsp;

  /// The objective the ExtTsp chain merger maximizes (ignored under
  /// PrimaryAligner::Tsp). ObjectiveKind::ExtTsp reads the windows and
  /// weights from Model; ObjectiveKind::Fallthrough chain-merges on the
  /// paper's penalty instead (a useful ablation). Result-affecting under
  /// ExtTsp, so the fingerprint keys on it and on the Model's Ext-TSP
  /// parameters.
  ObjectiveKind Objective = ObjectiveKind::ExtTsp;

  /// How solver effort is spread across procedures (balign-lint's
  /// profile-guided effort): Uniform runs Solver as-is everywhere;
  /// Scaled adjusts kicks per run by loop nesting and hotness;
  /// ScaledColdGreedy additionally ships the greedy layout for cold
  /// procedures without solving. decideEffort (static/EffortPolicy.h)
  /// is the single decision point, shared with the cache fingerprint —
  /// results stay bit-identical at any thread count for any policy.
  EffortPolicy Effort = EffortPolicy::Uniform;

  /// Result caching across runs. Off computes everything; Memory and
  /// Disk require a cache::CacheSession (or any ProcedureResultCache)
  /// attached via CacheImpl — enabling a mode without an implementation
  /// is a fatal usage error. Cached hits are bit-identical to
  /// recomputation at every thread count.
  CacheMode Cache = CacheMode::Off;

  /// Store directory for CacheMode::Disk (created on first flush).
  std::string CachePath;

  /// The cache implementation; installed by cache::CacheSession. Not
  /// owned. Lookups are skipped while AfterMatrix/AfterSolve hooks are
  /// present (verification wants to observe real solves), but freshly
  /// computed results are still stored, so `--verify --cache` warms a
  /// fully verified cache.
  ProcedureResultCache *CacheImpl = nullptr;

  /// Worker threads for the per-procedure stages (greedy, matrix build,
  /// DTSP solve, bounds): 1 runs everything on the calling thread, 0
  /// uses one worker per hardware thread, any other value that many
  /// workers. Results are bit-identical for every setting — each
  /// procedure's solver stream is derived from the root seed, not from
  /// scheduling — and hooks always fire on the calling thread, in
  /// program order (see PipelineStageHooks).
  unsigned Threads = 1;

  /// Verification instrumentation; empty (and free) by default.
  PipelineStageHooks Hooks;

  //===--- balign-shield failure isolation --------------------------------===//

  /// What to do when a procedure's alignment fails (see OnErrorPolicy).
  /// With no armed faults, no budgets, and no caps nothing ever fails,
  /// and every policy produces bit-identical results to the others.
  OnErrorPolicy OnError = OnErrorPolicy::Abort;

  /// Per-procedure wall-clock budget in milliseconds (0 = unlimited),
  /// polled cooperatively inside the iterated 3-Opt solver. A trip is a
  /// FailureKind::Deadline failure handled per OnError. Budget-tripped
  /// procedures are never cached.
  uint64_t ProcBudgetMs = 0;

  /// Whole-run deadline (not owned, may be null). Chained as the parent
  /// of every per-procedure budget and checked at procedure entry, so
  /// once it expires every remaining procedure degrades per OnError.
  const Deadline *RunDeadline = nullptr;

  /// Resource caps on the DTSP reduction (0 = unlimited): a procedure
  /// whose instance would exceed MaxTspCities cities (blocks + dummy) or
  /// whose symmetric transform would exceed MaxTspMatrixBytes is a
  /// FailureKind::ResourceCap failure handled per OnError.
  size_t MaxTspCities = 0;
  size_t MaxTspMatrixBytes = 0;

  /// Clock for per-procedure budgets; empty = steadyClockMs. Tests
  /// inject a ManualClock to drive deadline trips deterministically.
  ClockFn Clock;
};

/// Per-procedure outcome.
struct ProcedureAlignment {
  Layout OriginalLayout;
  Layout GreedyLayout;
  Layout TspLayout;

  uint64_t OriginalPenalty = 0;
  uint64_t GreedyPenalty = 0;
  uint64_t TspPenalty = 0;

  PenaltyBounds Bounds;
  unsigned SolverRuns = 0;
  unsigned RunsFindingBest = 0;

  /// Which degradation-ladder rung produced TspLayout: LadderRung::Tsp
  /// unless balign-shield isolated a failure and degraded this
  /// procedure (unprofiled keep-original procedures also stay at Tsp —
  /// keeping their layout is the designed behavior, not degradation).
  /// Not serialized by the cache: only full-path results are stored, so
  /// a decoded hit's default is always correct.
  LadderRung Rung = LadderRung::Tsp;
};

/// Whole-program outcome plus per-stage timing.
struct ProgramAlignment {
  std::vector<ProcedureAlignment> Procs;

  /// Per-stage timing, in CPU-seconds: the sum over procedures of the
  /// wall-clock time that procedure's stage took on whichever worker ran
  /// it, accumulated in program order. Under Threads == 1 this equals
  /// stage wall-clock time; under parallelism it keeps Table 2's "work
  /// per stage" meaning while wall-clock time shrinks with the worker
  /// count.
  double GreedySeconds = 0.0;
  double MatrixSeconds = 0.0;
  double SolverSeconds = 0.0;
  double BoundsSeconds = 0.0;

  /// Every per-procedure failure balign-shield isolated, in program
  /// order. Empty under OnErrorPolicy::Abort (the first failure throws
  /// instead) and whenever nothing failed.
  FailureReport Failures;

  uint64_t totalOriginalPenalty() const;
  uint64_t totalGreedyPenalty() const;
  uint64_t totalTspPenalty() const;
  double totalHeldKarpBound() const;
  int64_t totalAssignmentBound() const;

  /// Extracts one layout list (program order) for the simulator.
  std::vector<Layout> originalLayouts() const;
  std::vector<Layout> greedyLayouts() const;
  std::vector<Layout> tspLayouts() const;
};

/// Aligns every procedure of \p Prog with the greedy and TSP methods.
ProgramAlignment alignProgram(const Program &Prog,
                              const ProgramProfile &Train,
                              const AlignmentOptions &Options);

/// Sums evaluateLayout over all procedures: predictions/orientations come
/// from \p Predict, cycle charges from \p Charge (pass the same profile
/// twice for same-data-set evaluation).
uint64_t evaluateProgramPenalty(const Program &Prog,
                                const std::vector<Layout> &Layouts,
                                const MachineModel &Model,
                                const ProgramProfile &Predict,
                                const ProgramProfile &Charge);

} // namespace balign

#endif // BALIGN_ALIGN_PIPELINE_H
