//===- align/Aligners.cpp -----------------------------------------------------===//

#include "align/Aligners.h"

#include "align/Penalty.h"
#include "robust/FaultInjector.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace balign;

Aligner::~Aligner() = default;

Layout OriginalAligner::align(const Procedure &Proc,
                              const ProcedureProfile &Train,
                              const MachineModel &Model) const {
  (void)Train;
  (void)Model;
  return Layout::original(Proc);
}

namespace {

/// A prioritized CFG edge for the greedy aligners.
struct GreedyEdge {
  uint64_t Priority; ///< Frequency (PH) or modeled benefit (CG).
  BlockId From;
  BlockId To;

  bool operator<(const GreedyEdge &Other) const {
    if (Priority != Other.Priority)
      return Priority > Other.Priority; // Descending priority.
    if (From != Other.From)
      return From < Other.From; // Deterministic tie-breaks.
    return To < Other.To;
  }
};

/// Bottom-up chaining shared by GreedyAligner and CalderGrunwaldAligner:
/// accepts edges in priority order under the Pettis-Hansen feasibility
/// checks; returns the chains with the entry chain first.
class ChainBuilder {
public:
  ChainBuilder(const Procedure &Proc, std::vector<GreedyEdge> Edges)
      : Proc(Proc), Next(Proc.numBlocks(), InvalidBlock),
        Prev(Proc.numBlocks(), InvalidBlock), Leader(Proc.numBlocks()) {
    std::iota(Leader.begin(), Leader.end(), 0);
    std::sort(Edges.begin(), Edges.end());
    for (const GreedyEdge &E : Edges)
      tryAccept(E);
  }

  /// Returns the chains; Chains[0] starts with the entry block.
  std::vector<std::vector<BlockId>>
  chains(const ProcedureProfile &Weights) const {
    std::vector<std::vector<BlockId>> Result;
    size_t EntryChain = 0;
    for (BlockId Head = 0; Head != Proc.numBlocks(); ++Head) {
      if (Prev[Head] != InvalidBlock)
        continue;
      std::vector<BlockId> Chain;
      for (BlockId Walk = Head; Walk != InvalidBlock; Walk = Next[Walk])
        Chain.push_back(Walk);
      if (Chain.front() == Proc.entry())
        EntryChain = Result.size();
      Result.push_back(std::move(Chain));
    }
    std::swap(Result[0], Result[EntryChain]);

    // Order the remaining chains by falling total execution weight
    // (deterministic tie-break on the first block id).
    auto ChainWeight = [&](const std::vector<BlockId> &Chain) {
      uint64_t Sum = 0;
      for (BlockId B : Chain)
        Sum += Weights.blockCount(B);
      return Sum;
    };
    std::sort(Result.begin() + 1, Result.end(),
              [&](const std::vector<BlockId> &A,
                  const std::vector<BlockId> &B) {
                uint64_t WA = ChainWeight(A), WB = ChainWeight(B);
                if (WA != WB)
                  return WA > WB;
                return A.front() < B.front();
              });
    return Result;
  }

private:
  void tryAccept(const GreedyEdge &E) {
    if (E.From == E.To)
      return; // Self loops can never be layout edges.
    if (E.To == Proc.entry())
      return; // Nothing may precede the entry block.
    if (Next[E.From] != InvalidBlock || Prev[E.To] != InvalidBlock)
      return; // Endpoint already claimed.
    if (find(E.From) == find(E.To))
      return; // Would close a layout cycle.
    Next[E.From] = E.To;
    Prev[E.To] = E.From;
    Leader[find(E.From)] = find(E.To);
  }

  BlockId find(BlockId B) const {
    while (Leader[B] != B) {
      Leader[B] = Leader[Leader[B]];
      B = Leader[B];
    }
    return B;
  }

  const Procedure &Proc;
  std::vector<BlockId> Next;
  std::vector<BlockId> Prev;
  mutable std::vector<BlockId> Leader;
};

Layout concatenateChains(const Procedure &Proc,
                         const std::vector<std::vector<BlockId>> &Chains) {
  Layout L;
  L.Order.reserve(Proc.numBlocks());
  for (const std::vector<BlockId> &Chain : Chains)
    L.Order.insert(L.Order.end(), Chain.begin(), Chain.end());
  assert(L.isValid(Proc) && "chaining lost or duplicated a block");
  return L;
}

} // namespace

Layout GreedyAligner::align(const Procedure &Proc,
                            const ProcedureProfile &Train,
                            const MachineModel &Model) const {
  (void)Model; // Frequency-greedy ignores the machine model (paper 2.1).
  // balign-shield fault site: the greedy aligner is the middle rung of
  // the degradation ladder, so it needs its own probe to exercise the
  // fall-through to the original layout.
  FaultInjector::instance().throwIfFault(FaultSite::AlignGreedy);
  std::vector<GreedyEdge> Edges;
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    const std::vector<BlockId> &Succs = Proc.successors(B);
    for (size_t S = 0; S != Succs.size(); ++S)
      Edges.push_back({Train.edgeCount(B, S), B, Succs[S]});
  }
  ChainBuilder Builder(Proc, std::move(Edges));
  return concatenateChains(Proc, Builder.chains(Train));
}

Layout TspAligner::align(const Procedure &Proc, const ProcedureProfile &Train,
                         const MachineModel &Model) const {
  return alignWithStats(Proc, Train, Model).L;
}

TspAligner::Result TspAligner::alignWithStats(const Procedure &Proc,
                                              const ProcedureProfile &Train,
                                              const MachineModel &Model) const {
  AlignmentTsp Atsp = buildAlignmentTsp(Proc, Train, Model);
  DtspSolution Solution = solveDirectedTsp(Atsp.Tsp, Options);
  Result R;
  R.L = layoutFromTour(Proc, Atsp, Solution.Tour);
  R.TourCost = Solution.Cost;
  R.NumRuns = Solution.NumRuns;
  R.RunsFindingBest = Solution.RunsFindingBest;
  return R;
}

Layout CalderGrunwaldAligner::align(const Procedure &Proc,
                                    const ProcedureProfile &Train,
                                    const MachineModel &Model) const {
  // Priority = modeled penalty saved by making To the layout successor
  // of From, instead of laying From out next to nothing useful.
  std::vector<GreedyEdge> Edges;
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    const std::vector<BlockId> &Succs = Proc.successors(B);
    uint64_t Detached =
        blockLayoutPenalty(Proc, Model, Train, Train, B, InvalidBlock);
    for (size_t S = 0; S != Succs.size(); ++S) {
      uint64_t Adjacent =
          blockLayoutPenalty(Proc, Model, Train, Train, B, Succs[S]);
      uint64_t Benefit = Detached >= Adjacent ? Detached - Adjacent : 0;
      Edges.push_back({Benefit, B, Succs[S]});
    }
  }
  ChainBuilder Builder(Proc, std::move(Edges));
  std::vector<std::vector<BlockId>> Chains = Builder.chains(Train);

  // Exhaustively order the hottest few non-entry chains; evaluate each
  // candidate layout under the training profile.
  size_t Permutable =
      std::min<size_t>(MaxExhaustiveChains,
                       Chains.size() > 1 ? Chains.size() - 1 : 0);
  if (Permutable < 2)
    return concatenateChains(Proc, Chains);

  std::vector<size_t> Perm(Permutable);
  std::iota(Perm.begin(), Perm.end(), 1);
  uint64_t BestPenalty = ~static_cast<uint64_t>(0);
  Layout Best;
  do {
    std::vector<std::vector<BlockId>> Candidate;
    Candidate.push_back(Chains[0]);
    for (size_t Index : Perm)
      Candidate.push_back(Chains[Index]);
    for (size_t I = 1 + Permutable; I < Chains.size(); ++I)
      Candidate.push_back(Chains[I]);
    Layout L = concatenateChains(Proc, Candidate);
    uint64_t Penalty = evaluateLayout(Proc, L, Model, Train, Train);
    if (Penalty < BestPenalty) {
      BestPenalty = Penalty;
      Best = std::move(L);
    }
  } while (std::next_permutation(Perm.begin(), Perm.end()));
  return Best;
}
