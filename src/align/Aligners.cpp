//===- align/Aligners.cpp -----------------------------------------------------===//

#include "align/Aligners.h"

#include "align/Penalty.h"
#include "robust/FaultInjector.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace balign;

Aligner::~Aligner() = default;

Layout OriginalAligner::align(const Procedure &Proc,
                              const ProcedureProfile &Train,
                              const MachineModel &Model) const {
  (void)Train;
  (void)Model;
  return Layout::original(Proc);
}

namespace {

/// A prioritized CFG edge for the greedy aligners.
struct GreedyEdge {
  uint64_t Priority; ///< Frequency (PH) or modeled benefit (CG).
  BlockId From;
  BlockId To;

  bool operator<(const GreedyEdge &Other) const {
    if (Priority != Other.Priority)
      return Priority > Other.Priority; // Descending priority.
    if (From != Other.From)
      return From < Other.From; // Deterministic tie-breaks.
    return To < Other.To;
  }
};

/// Bottom-up chaining shared by GreedyAligner and CalderGrunwaldAligner:
/// accepts edges in priority order under the Pettis-Hansen feasibility
/// checks; returns the chains with the entry chain first.
class ChainBuilder {
public:
  ChainBuilder(const Procedure &Proc, std::vector<GreedyEdge> Edges)
      : Proc(Proc), Next(Proc.numBlocks(), InvalidBlock),
        Prev(Proc.numBlocks(), InvalidBlock), Leader(Proc.numBlocks()) {
    std::iota(Leader.begin(), Leader.end(), 0);
    std::sort(Edges.begin(), Edges.end());
    for (const GreedyEdge &E : Edges)
      tryAccept(E);
  }

  /// Returns the chains; Chains[0] starts with the entry block.
  std::vector<std::vector<BlockId>>
  chains(const ProcedureProfile &Weights) const {
    std::vector<std::vector<BlockId>> Result;
    size_t EntryChain = 0;
    for (BlockId Head = 0; Head != Proc.numBlocks(); ++Head) {
      if (Prev[Head] != InvalidBlock)
        continue;
      std::vector<BlockId> Chain;
      for (BlockId Walk = Head; Walk != InvalidBlock; Walk = Next[Walk])
        Chain.push_back(Walk);
      if (Chain.front() == Proc.entry())
        EntryChain = Result.size();
      Result.push_back(std::move(Chain));
    }
    std::swap(Result[0], Result[EntryChain]);

    // Order the remaining chains by falling total execution weight
    // (deterministic tie-break on the first block id).
    auto ChainWeight = [&](const std::vector<BlockId> &Chain) {
      uint64_t Sum = 0;
      for (BlockId B : Chain)
        Sum += Weights.blockCount(B);
      return Sum;
    };
    std::sort(Result.begin() + 1, Result.end(),
              [&](const std::vector<BlockId> &A,
                  const std::vector<BlockId> &B) {
                uint64_t WA = ChainWeight(A), WB = ChainWeight(B);
                if (WA != WB)
                  return WA > WB;
                return A.front() < B.front();
              });
    return Result;
  }

private:
  void tryAccept(const GreedyEdge &E) {
    if (E.From == E.To)
      return; // Self loops can never be layout edges.
    if (E.To == Proc.entry())
      return; // Nothing may precede the entry block.
    if (Next[E.From] != InvalidBlock || Prev[E.To] != InvalidBlock)
      return; // Endpoint already claimed.
    if (find(E.From) == find(E.To))
      return; // Would close a layout cycle.
    Next[E.From] = E.To;
    Prev[E.To] = E.From;
    Leader[find(E.From)] = find(E.To);
  }

  BlockId find(BlockId B) const {
    while (Leader[B] != B) {
      Leader[B] = Leader[Leader[B]];
      B = Leader[B];
    }
    return B;
  }

  const Procedure &Proc;
  std::vector<BlockId> Next;
  std::vector<BlockId> Prev;
  mutable std::vector<BlockId> Leader;
};

Layout concatenateChains(const Procedure &Proc,
                         const std::vector<std::vector<BlockId>> &Chains) {
  Layout L;
  L.Order.reserve(Proc.numBlocks());
  for (const std::vector<BlockId> &Chain : Chains)
    L.Order.insert(L.Order.end(), Chain.begin(), Chain.end());
  assert(L.isValid(Proc) && "chaining lost or duplicated a block");
  return L;
}

} // namespace

Layout GreedyAligner::align(const Procedure &Proc,
                            const ProcedureProfile &Train,
                            const MachineModel &Model) const {
  (void)Model; // Frequency-greedy ignores the machine model (paper 2.1).
  // balign-shield fault site: the greedy aligner is the middle rung of
  // the degradation ladder, so it needs its own probe to exercise the
  // fall-through to the original layout.
  FaultInjector::instance().throwIfFault(FaultSite::AlignGreedy);
  std::vector<GreedyEdge> Edges;
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    const std::vector<BlockId> &Succs = Proc.successors(B);
    for (size_t S = 0; S != Succs.size(); ++S)
      Edges.push_back({Train.edgeCount(B, S), B, Succs[S]});
  }
  ChainBuilder Builder(Proc, std::move(Edges));
  return concatenateChains(Proc, Builder.chains(Train));
}

Layout TspAligner::align(const Procedure &Proc, const ProcedureProfile &Train,
                         const MachineModel &Model) const {
  return alignWithStats(Proc, Train, Model).L;
}

TspAligner::Result TspAligner::alignWithStats(const Procedure &Proc,
                                              const ProcedureProfile &Train,
                                              const MachineModel &Model) const {
  AlignmentTsp Atsp = buildAlignmentTsp(Proc, Train, Model);
  DtspSolution Solution = solveDirectedTsp(Atsp.Tsp, Options);
  Result R;
  R.L = layoutFromTour(Proc, Atsp, Solution.Tour);
  R.TourCost = Solution.Cost;
  R.NumRuns = Solution.NumRuns;
  R.RunsFindingBest = Solution.RunsFindingBest;
  return R;
}

Layout CalderGrunwaldAligner::align(const Procedure &Proc,
                                    const ProcedureProfile &Train,
                                    const MachineModel &Model) const {
  // Priority = modeled penalty saved by making To the layout successor
  // of From, instead of laying From out next to nothing useful.
  std::vector<GreedyEdge> Edges;
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    const std::vector<BlockId> &Succs = Proc.successors(B);
    uint64_t Detached =
        blockLayoutPenalty(Proc, Model, Train, Train, B, InvalidBlock);
    for (size_t S = 0; S != Succs.size(); ++S) {
      uint64_t Adjacent =
          blockLayoutPenalty(Proc, Model, Train, Train, B, Succs[S]);
      uint64_t Benefit = Detached >= Adjacent ? Detached - Adjacent : 0;
      Edges.push_back({Benefit, B, Succs[S]});
    }
  }
  ChainBuilder Builder(Proc, std::move(Edges));
  std::vector<std::vector<BlockId>> Chains = Builder.chains(Train);

  // Exhaustively order the hottest few non-entry chains; evaluate each
  // candidate layout under the training profile.
  size_t Permutable =
      std::min<size_t>(MaxExhaustiveChains,
                       Chains.size() > 1 ? Chains.size() - 1 : 0);
  if (Permutable < 2)
    return concatenateChains(Proc, Chains);

  std::vector<size_t> Perm(Permutable);
  std::iota(Perm.begin(), Perm.end(), 1);
  uint64_t BestPenalty = ~static_cast<uint64_t>(0);
  Layout Best;
  do {
    std::vector<std::vector<BlockId>> Candidate;
    Candidate.push_back(Chains[0]);
    for (size_t Index : Perm)
      Candidate.push_back(Chains[Index]);
    for (size_t I = 1 + Permutable; I < Chains.size(); ++I)
      Candidate.push_back(Chains[I]);
    Layout L = concatenateChains(Proc, Candidate);
    uint64_t Penalty = evaluateLayout(Proc, L, Model, Train, Train);
    if (Penalty < BestPenalty) {
      BestPenalty = Penalty;
      Best = std::move(L);
    }
  } while (std::next_permutation(Perm.begin(), Perm.end()));
  return Best;
}

namespace {

/// Chain-merge working state: chain blocks, cached objective score, and
/// cached execution weight (sum of member block counts).
struct MergeChain {
  std::vector<BlockId> Blocks;
  double Score = 0.0;
  uint64_t Weight = 0;
  bool Alive = true;
};

/// Procedures above this size skip the O(N^3) refinement sweep; the
/// greedy-chains floor below still bounds the result from below.
constexpr size_t RefineMaxBlocks = 320;

/// Objective-guided local refinement: repeatedly relocate each length-1
/// and length-2 segment to its best-scoring position (entry pinned
/// first), to a fixpoint or a bounded pass count. Best-delta chain
/// merging is myopic — merging the chain pair with the largest
/// immediate gain can permanently lock a block behind a slightly hotter
/// edge's source and forfeit a hotter fall through elsewhere — and this
/// sweep is exactly the move (pull one misplaced block or pair back out)
/// that repairs those decisions. Deterministic: fixed scan order, strict
/// improvement only.
void refineSequence(const Procedure &Proc, const ProcedureProfile &Train,
                    const ObjectiveFn &Obj, std::vector<BlockId> &Order,
                    unsigned MaxPasses = 4) {
  size_t N = Order.size();
  if (N < 3 || N > RefineMaxBlocks)
    return;
  double Current = Obj.scoreSequence(Proc, Train, Order);
  std::vector<BlockId> Rest, Candidate, BestCandidate;
  bool Improved = true;
  for (unsigned Pass = 0; Improved && Pass != MaxPasses; ++Pass) {
    Improved = false;
    for (size_t Len = 1; Len <= 2; ++Len) {
      for (size_t I = 1; I + Len <= N; ++I) {
        Rest.clear();
        Rest.insert(Rest.end(), Order.begin(), Order.begin() + I);
        Rest.insert(Rest.end(), Order.begin() + I + Len, Order.end());
        double BestScore = Current;
        bool Found = false;
        for (size_t J = 1; J <= Rest.size(); ++J) {
          if (J == I)
            continue; // Reinserting in place reproduces Order.
          Candidate.clear();
          Candidate.insert(Candidate.end(), Rest.begin(), Rest.begin() + J);
          Candidate.insert(Candidate.end(), Order.begin() + I,
                           Order.begin() + I + Len);
          Candidate.insert(Candidate.end(), Rest.begin() + J, Rest.end());
          double Score = Obj.scoreSequence(Proc, Train, Candidate);
          if (Score > BestScore + 1e-9) {
            BestScore = Score;
            BestCandidate = Candidate;
            Found = true;
          }
        }
        if (Found) {
          Order = BestCandidate;
          Current = BestScore;
          Improved = true;
        }
      }
    }
  }
}

/// The greedy frequency chains (paper 2.1) as a raw block order —
/// shared floor for the chain merger, built without the align.greedy
/// fault probe (a fault injected at the greedy rung must not take the
/// chain rung down with it).
std::vector<BlockId> greedyChainOrder(const Procedure &Proc,
                                      const ProcedureProfile &Train) {
  std::vector<GreedyEdge> Edges;
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    const std::vector<BlockId> &Succs = Proc.successors(B);
    for (size_t S = 0; S != Succs.size(); ++S)
      Edges.push_back({Train.edgeCount(B, S), B, Succs[S]});
  }
  ChainBuilder Builder(Proc, std::move(Edges));
  std::vector<BlockId> Order;
  Order.reserve(Proc.numBlocks());
  for (const std::vector<BlockId> &Chain : Builder.chains(Train))
    Order.insert(Order.end(), Chain.begin(), Chain.end());
  return Order;
}

} // namespace

Layout ExtTspAligner::align(const Procedure &Proc,
                            const ProcedureProfile &Train,
                            const MachineModel &Model) const {
  // balign-shield fault site: like align.greedy, the chain merger is a
  // pipeline rung and every recovery path below it must be drivable.
  FaultInjector::instance().throwIfFault(FaultSite::AlignChain);
  if (Proc.numBlocks() <= 1)
    return Layout::original(Proc);

  std::unique_ptr<ObjectiveFn> Obj = makeObjective(Objective, Model);
  std::vector<MergeChain> Chains(Proc.numBlocks());
  std::vector<uint32_t> ChainOf(Proc.numBlocks());
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    Chains[B].Blocks = {B};
    Chains[B].Score = Obj->scoreSequence(Proc, Train, Chains[B].Blocks);
    Chains[B].Weight = Train.blockCount(B);
    ChainOf[B] = B;
  }
  const uint32_t EntryChain = ChainOf[Proc.entry()];

  // Candidate merged sequences for the ordered chain pair (X, Y): plain
  // concatenation X+Y always; when X is short and at least as hot as Y,
  // also every interior split X[0..K) + Y + X[K..). The entry chain may
  // only grow at its tail (K >= 1 keeps the entry block first).
  std::vector<BlockId> Merged, BestMerged;
  auto tryCandidates = [&](uint32_t X, uint32_t Y, double &BestDelta,
                           uint32_t &BestX, uint32_t &BestY) {
    const MergeChain &CX = Chains[X], &CY = Chains[Y];
    double Before = CX.Score + CY.Score;
    size_t FirstSplit = CX.Blocks.size(); // Concatenation only by default.
    if (CX.Blocks.size() <= MaxSplitBlocks && CX.Weight >= CY.Weight)
      FirstSplit = X == EntryChain ? 1 : 0;
    for (size_t K = FirstSplit; K <= CX.Blocks.size(); ++K) {
      Merged.clear();
      Merged.insert(Merged.end(), CX.Blocks.begin(), CX.Blocks.begin() + K);
      Merged.insert(Merged.end(), CY.Blocks.begin(), CY.Blocks.end());
      Merged.insert(Merged.end(), CX.Blocks.begin() + K, CX.Blocks.end());
      double Delta = Obj->scoreSequence(Proc, Train, Merged) - Before;
      if (Delta > BestDelta) {
        BestDelta = Delta;
        BestX = X;
        BestY = Y;
        BestMerged = Merged;
      }
    }
  };

  // Merge the best-scoring pair until no merge strictly improves the
  // score. Each round rebuilds the connected-pair list from the executed
  // CFG edges (cheap: edge count is linear in the CFG).
  std::vector<std::pair<uint32_t, uint32_t>> Pairs;
  while (true) {
    Pairs.clear();
    for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
      const std::vector<BlockId> &Succs = Proc.successors(B);
      for (size_t S = 0; S != Succs.size(); ++S) {
        if (Train.edgeCount(B, S) == 0)
          continue;
        uint32_t CA = ChainOf[B], CB = ChainOf[Succs[S]];
        if (CA != CB)
          Pairs.emplace_back(std::min(CA, CB), std::max(CA, CB));
      }
    }
    std::sort(Pairs.begin(), Pairs.end());
    Pairs.erase(std::unique(Pairs.begin(), Pairs.end()), Pairs.end());

    double BestDelta = 0.0;
    uint32_t BestX = 0, BestY = 0;
    for (const auto &[CA, CB] : Pairs) {
      if (CB != EntryChain)
        tryCandidates(CA, CB, BestDelta, BestX, BestY);
      if (CA != EntryChain)
        tryCandidates(CB, CA, BestDelta, BestX, BestY);
    }
    if (BestDelta <= 0.0)
      break;

    MergeChain &CX = Chains[BestX];
    MergeChain &CY = Chains[BestY];
    CX.Blocks = BestMerged;
    CX.Score = Obj->scoreSequence(Proc, Train, CX.Blocks);
    CX.Weight += CY.Weight;
    CY.Alive = false;
    CY.Blocks.clear();
    for (BlockId B : CX.Blocks)
      ChainOf[B] = BestX;
  }

  // Entry chain first, then falling weight with a front-block tie-break —
  // the same final order rule the greedy chainers use.
  std::vector<uint32_t> Order;
  for (uint32_t I = 0; I != Chains.size(); ++I)
    if (Chains[I].Alive && I != EntryChain)
      Order.push_back(I);
  std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    if (Chains[A].Weight != Chains[B].Weight)
      return Chains[A].Weight > Chains[B].Weight;
    return Chains[A].Blocks.front() < Chains[B].Blocks.front();
  });

  std::vector<std::vector<BlockId>> Final;
  Final.push_back(std::move(Chains[EntryChain].Blocks));
  for (uint32_t I : Order)
    Final.push_back(std::move(Chains[I].Blocks));
  Layout Result = concatenateChains(Proc, Final);

  // Floor the merge result at the greedy frequency chains under our own
  // objective, then locally refine whichever start is better. The floor
  // guarantees the chain rung never ships a layout the cheaper greedy
  // rung beats on the very metric this aligner optimises.
  std::vector<BlockId> GreedyOrder = greedyChainOrder(Proc, Train);
  if (Obj->scoreSequence(Proc, Train, GreedyOrder) >
      Obj->scoreSequence(Proc, Train, Result.Order) + 1e-9)
    Result.Order = std::move(GreedyOrder);
  refineSequence(Proc, Train, *Obj, Result.Order);
  return Result;
}
