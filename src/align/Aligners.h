//===- align/Aligners.h - The three layout algorithms compared -------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The layout algorithms the paper evaluates:
///
///  * OriginalAligner — the identity layout ("original" bars; the
///    normalization baseline of Figures 2 and 3).
///  * GreedyAligner — Pettis-Hansen-style bottom-up chaining: consider
///    CFG edges in decreasing execution-frequency order; accept an edge
///    when its head has no layout successor yet, its tail no layout
///    predecessor, and accepting closes no cycle; finally concatenate the
///    chains (entry chain first, remaining chains by falling execution
///    weight).
///  * TspAligner — the paper's contribution: reduce to a DTSP
///    (Reduction.h) and solve with iterated 3-Opt on the pair-locked
///    symmetric transformation.
///  * CalderGrunwaldAligner — the related-work refinement of Section 5:
///    greedy driven by *cost-model benefit* rather than raw frequency,
///    followed by an exhaustive search over the orders of the hottest
///    few chains (our bounded adaptation of their "all orders of the
///    blocks touched by the 15 hottest edges" search).
///  * ExtTspAligner — the 2020s-era baseline: Newell/Pupyrev-style chain
///    merging driven by an ObjectiveFn score delta (objective/), with a
///    bounded split-point search when inserting into short hot chains.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ALIGN_ALIGNERS_H
#define BALIGN_ALIGN_ALIGNERS_H

#include "align/Reduction.h"
#include "ir/CFG.h"
#include "machine/MachineModel.h"
#include "objective/Layout.h"
#include "objective/Objective.h"
#include "profile/Profile.h"
#include "tsp/IteratedOpt.h"

#include <string>

namespace balign {

/// Interface shared by every layout algorithm.
class Aligner {
public:
  virtual ~Aligner();

  /// Short stable identifier ("original", "greedy", "tsp", "cg").
  virtual std::string name() const = 0;

  /// Computes a layout of \p Proc from the training profile.
  virtual Layout align(const Procedure &Proc, const ProcedureProfile &Train,
                       const MachineModel &Model) const = 0;
};

/// Identity layout.
class OriginalAligner : public Aligner {
public:
  std::string name() const override { return "original"; }
  Layout align(const Procedure &Proc, const ProcedureProfile &Train,
               const MachineModel &Model) const override;
};

/// Pettis-Hansen-style frequency-greedy chaining.
class GreedyAligner : public Aligner {
public:
  std::string name() const override { return "greedy"; }
  Layout align(const Procedure &Proc, const ProcedureProfile &Train,
               const MachineModel &Model) const override;
};

/// The DTSP-based aligner (the paper's method).
class TspAligner : public Aligner {
public:
  explicit TspAligner(IteratedOptOptions Options = {})
      : Options(Options) {}

  std::string name() const override { return "tsp"; }
  Layout align(const Procedure &Proc, const ProcedureProfile &Train,
               const MachineModel &Model) const override;

  /// Like align() but also reports solver statistics (tour cost, number
  /// of runs that tied the best — the appendix's reproducibility stat).
  struct Result {
    Layout L;
    int64_t TourCost = 0;
    unsigned NumRuns = 0;
    unsigned RunsFindingBest = 0;
  };
  Result alignWithStats(const Procedure &Proc, const ProcedureProfile &Train,
                        const MachineModel &Model) const;

  const IteratedOptOptions &options() const { return Options; }

private:
  IteratedOptOptions Options;
};

/// Cost-model greedy with bounded exhaustive chain-order search.
class CalderGrunwaldAligner : public Aligner {
public:
  /// \p MaxExhaustiveChains chains (beyond the entry chain) participate
  /// in the exhaustive order search; the rest keep the greedy order.
  explicit CalderGrunwaldAligner(unsigned MaxExhaustiveChains = 6)
      : MaxExhaustiveChains(MaxExhaustiveChains) {}

  std::string name() const override { return "cg"; }
  Layout align(const Procedure &Proc, const ProcedureProfile &Train,
               const MachineModel &Model) const override;

private:
  unsigned MaxExhaustiveChains;
};

/// Newell/Pupyrev-style chain merging ("Improved Basic Block Reordering"):
/// every block starts as its own chain; the pair of chains connected by an
/// executed CFG edge whose merge improves the objective score the most is
/// merged, repeatedly, until no merge improves the score. Besides plain
/// concatenation X+Y, a bounded split-point search inserts Y at every
/// interior position of X when X is short (<= MaxSplitBlocks) and at
/// least as hot as Y — the adaptation of the paper's split merges that
/// keeps each round linear in chain length. Leftover chains concatenate
/// entry-first, then by falling execution weight. Fully deterministic:
/// candidate pairs are enumerated in chain-index order and ties keep the
/// first candidate.
class ExtTspAligner : public Aligner {
public:
  explicit ExtTspAligner(ObjectiveKind Objective = ObjectiveKind::ExtTsp,
                         unsigned MaxSplitBlocks = 16)
      : Objective(Objective), MaxSplitBlocks(MaxSplitBlocks) {}

  std::string name() const override { return "exttsp"; }
  Layout align(const Procedure &Proc, const ProcedureProfile &Train,
               const MachineModel &Model) const override;

  ObjectiveKind objective() const { return Objective; }

private:
  ObjectiveKind Objective;
  unsigned MaxSplitBlocks;
};

} // namespace balign

#endif // BALIGN_ALIGN_ALIGNERS_H
