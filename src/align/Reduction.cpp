//===- align/Reduction.cpp ----------------------------------------------------===//

#include "align/Reduction.h"

#include "align/Penalty.h"

#include <algorithm>
#include <cassert>

using namespace balign;

AlignmentTsp balign::buildAlignmentTsp(const Procedure &Proc,
                                       const ProcedureProfile &Train,
                                       const MachineModel &Model) {
  size_t N = Proc.numBlocks();
  AlignmentTsp Atsp;
  Atsp.DummyCity = static_cast<City>(N);
  Atsp.Tsp = DirectedTsp(N + 1);

  // Real edge costs, including block -> dummy ("B ends the layout"),
  // which shares the neither-successor-follows formula via InvalidBlock.
  for (BlockId B = 0; B != N; ++B) {
    for (BlockId X = 0; X != N; ++X) {
      if (B == X)
        continue;
      Atsp.Tsp.setCost(B, X, static_cast<int64_t>(blockLayoutPenalty(
                                 Proc, Model, Train, Train, B, X)));
    }
    Atsp.Tsp.setCost(B, Atsp.DummyCity,
                     static_cast<int64_t>(blockLayoutPenalty(
                         Proc, Model, Train, Train, B, InvalidBlock)));
  }

  // Pin the entry block first: the dummy may only be left into the
  // entry. EntryPin exceeds any real layout's total penalty (the sum of
  // every block's worst-case edge cost).
  int64_t WorstTotal = 0;
  for (BlockId B = 0; B != N; ++B) {
    int64_t Worst = 0;
    for (City X = 0; X != N + 1; ++X)
      if (X != B)
        Worst = std::max(Worst, Atsp.Tsp.cost(B, X));
    WorstTotal += Worst;
  }
  Atsp.EntryPin = WorstTotal + 1;
  for (BlockId B = 0; B != N; ++B)
    Atsp.Tsp.setCost(Atsp.DummyCity, B,
                     B == Proc.entry() ? 0 : Atsp.EntryPin);
  return Atsp;
}

Layout balign::layoutFromTour(const Procedure &Proc,
                              const AlignmentTsp &Atsp,
                              const std::vector<City> &Tour) {
  assert(isValidTour(Tour, Atsp.Tsp.numCities()) && "invalid tour");
  size_t N = Atsp.numBlocks();
  assert(N == Proc.numBlocks() && "instance does not match procedure");

  // Rotate so the dummy leads; the walk is everything after it.
  size_t DummyPos = 0;
  while (Tour[DummyPos] != Atsp.DummyCity)
    ++DummyPos;
  Layout L;
  L.Order.reserve(N);
  for (size_t I = 1; I <= N; ++I)
    L.Order.push_back(static_cast<BlockId>(Tour[(DummyPos + I) % (N + 1)]));

  // Safety net for heuristic tours that paid the pin: hoist the entry.
  if (L.Order.front() != Proc.entry()) {
    auto It = std::find(L.Order.begin(), L.Order.end(), Proc.entry());
    assert(It != L.Order.end() && "entry missing from tour");
    std::rotate(L.Order.begin(), It, It + 1);
  }
  assert(L.isValid(Proc) && "tour produced an invalid layout");
  return L;
}
