//===- align/Bounds.cpp -------------------------------------------------------===//

#include "align/Bounds.h"

#include "tsp/Assignment.h"
#include "trace/Scope.h"

#include <algorithm>

using namespace balign;

PenaltyBounds balign::computePenaltyBounds(const Procedure &Proc,
                                           const ProcedureProfile &Train,
                                           const MachineModel &Model,
                                           uint64_t UpperBound,
                                           const HeldKarpOptions &Options) {
  AlignmentTsp Atsp = buildAlignmentTsp(Proc, Train, Model);
  PenaltyBounds Bounds;

  // The entry-pinned instance gives every feasible layout (= tour) a cost
  // equal to its penalty: the dummy->entry edge costs 0. Lower bounds on
  // tour cost are therefore lower bounds on penalty directly.
  double Hk;
  {
    ScopedSpan HkSpan("bounds.held-karp", SpanCat::Solver);
    Hk = heldKarpBoundDirected(Atsp.Tsp, static_cast<int64_t>(UpperBound),
                               Options);
  }
  Bounds.HeldKarp = std::clamp(Hk, 0.0, static_cast<double>(UpperBound));

  AssignmentResult Ap;
  {
    ScopedSpan ApSpan("bounds.assignment", SpanCat::Solver);
    Ap = assignmentBound(Atsp.Tsp);
  }
  Bounds.Assignment =
      std::clamp<int64_t>(Ap.Cost, 0, static_cast<int64_t>(UpperBound));
  Bounds.AssignmentCycles = Ap.NumCycles;
  return Bounds;
}
