//===- cache/Fingerprint.h - Content fingerprints for cached alignments ---===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Content-addressed keys for the balign-cache subsystem: a streaming
/// two-lane FNV-style hasher producing 128-bit digests, plus visitors
/// that feed it the canonicalized per-procedure alignment inputs — CFG
/// structure, profile edge counts, machine-model penalties, the
/// result-affecting AlignmentOptions fields, and the derived solver
/// seed. Two procedure instances receive the same fingerprint iff
/// recomputing their alignment would produce bit-identical results, so
/// a fingerprint match is a safe cache key (modulo the 128-bit collision
/// probability, and backstopped by hit validation in the store).
///
/// Deliberately *not* keyed (DESIGN.md §10 records the rationale):
/// procedure/block/program names, AlignmentOptions::Threads, the hook
/// set, the cache configuration itself, and HeldKarpOptions when
/// ComputeBounds is off — none of them affect the cached artifact.
///
/// The absorption schema is fixed-width and little-endian, and is
/// versioned by CacheFormatVersion: any change to what or how we hash
/// must bump it, which atomically invalidates every existing store.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_CACHE_FINGERPRINT_H
#define BALIGN_CACHE_FINGERPRINT_H

#include "align/Pipeline.h"
#include "ir/CFG.h"
#include "machine/MachineModel.h"
#include "profile/Profile.h"
#include "tsp/HeldKarp.h"
#include "tsp/IteratedOpt.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace balign {

/// Version of the fingerprint schema *and* the on-disk store format.
/// Bump on any change to either; old stores then invalidate wholesale.
/// v2: the effort-policy decision (effective solver options plus the
/// greedy-only routing bit) joined the absorbed inputs.
/// v3: the primary-aligner choice joined the absorbed inputs; under
/// PrimaryAligner::ExtTsp the objective kind and the model's Ext-TSP
/// windows/weights are keyed and the (irrelevant) solver options are
/// not.
/// v4: under a variable branch encoding (balign-displace) the encoding
/// kind, short range, long-branch growth, and long-branch penalty are
/// keyed; BranchEncoding::Fixed absorbs nothing extra, so fixed-encoding
/// keys stay stable across the encoding knobs.
inline constexpr uint32_t CacheFormatVersion = 4;

/// A 128-bit content fingerprint.
struct Fingerprint {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const Fingerprint &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const Fingerprint &O) const { return !(*this == O); }

  /// "0123456789abcdef:fedcba9876543210" rendering for stats/debugging.
  std::string str() const;
};

/// Hash functor so Fingerprint can key unordered containers.
struct FingerprintHasher {
  size_t operator()(const Fingerprint &F) const {
    // The digest is already avalanched; fold the lanes.
    return static_cast<size_t>(F.Hi ^ (F.Lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Streaming hasher: two independent 64-bit FNV-1a-style lanes over the
/// same byte stream, finalized with a SplitMix64-style avalanche and a
/// length stamp. Byte order is explicit little-endian, so digests (and
/// therefore on-disk stores) are portable across hosts.
class Hasher {
public:
  /// Absorbs \p Size raw bytes.
  void bytes(const void *Data, size_t Size);

  void u8(uint8_t V) { bytes(&V, 1); }
  void u32(uint32_t V);
  void u64(uint64_t V);
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }

  /// Absorbs the IEEE-754 bit pattern (doubles in options are config
  /// values, never computed, so bit equality is the right notion).
  void f64(double V);

  /// Length-prefixed, so ("ab","c") never collides with ("a","bc").
  void str(const std::string &S);

  /// Finalizes a copy of the state; the hasher itself remains usable.
  Fingerprint digest() const;

private:
  // FNV-1a 64-bit offset/prime for lane A; lane B runs an add-multiply
  // variant from a different offset so the lanes decorrelate.
  uint64_t LaneA = 0xcbf29ce484222325ULL;
  uint64_t LaneB = 0x6c62272e07bb0143ULL;
  uint64_t Length = 0;
};

/// Absorbs the structural content of \p Proc: block count, per-block
/// instruction counts and terminator kinds, and the successor lists in
/// canonical forEachEdge order. Names are excluded on purpose.
void hashProcedure(Hasher &H, const Procedure &Proc);

/// Absorbs \p Profile's block and edge counts. The caller must have
/// shape-checked the profile against its procedure (the pipeline does).
void hashProfile(Hasher &H, const ProcedureProfile &Profile);

/// Absorbs the six penalty fields (not the model's display name).
void hashMachineModel(Hasher &H, const MachineModel &Model);

/// Absorbs every solver option, including the seed — pass the *derived*
/// per-procedure seed, not the root.
void hashSolverOptions(Hasher &H, const IteratedOptOptions &Solver);

/// Absorbs the Held-Karp bound options.
void hashHeldKarpOptions(Hasher &H, const HeldKarpOptions &HK);

/// The full cache key for procedure \p ProcIndex of a program aligned
/// under \p Options: format version, CFG, profile, machine model,
/// solver options with the derived seed, and the bounds configuration
/// (only when bounds are computed).
Fingerprint fingerprintProcedureInputs(const Procedure &Proc,
                                       const ProcedureProfile &Train,
                                       const AlignmentOptions &Options,
                                       size_t ProcIndex);

} // namespace balign

#endif // BALIGN_CACHE_FINGERPRINT_H
