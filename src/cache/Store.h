//===- cache/Store.h - Persistent content-addressed alignment cache ------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The balign-cache store: maps input fingerprints (cache/Fingerprint.h)
/// to serialized ProcedureAlignment results, in memory with an optional
/// on-disk mirror. In a realistic build loop most procedures are
/// byte-identical between runs, so a warm cache removes the iterated
/// 3-Opt and Held-Karp work that dominates Table 2 entirely.
///
/// Trust model: *never trust, always validate*. Every disk entry carries
/// a checksum over key + payload; corrupt, truncated, or
/// version-mismatched data is dropped at load (counted as an
/// invalidation), never served. A checksum-clean hit is still
/// re-validated semantically before use — layout legality via the
/// balign-verify layout-check pass and penalty agreement via
/// re-evaluation — so even an adversarially patched store can only
/// cause a recompute, not a wrong result.
///
/// On-disk format (little-endian, atomically replaced on flush via
/// write-to-tmp-then-rename):
///
///   [8]  magic "BALNCACH"
///   [u32] CacheFormatVersion
///   [u32] reserved (0)
///   entry*:
///     [u64] key hi   [u64] key lo
///     [u32] payload size in bytes
///     [payload]      serialized ProcedureAlignment
///     [u64] checksum over key + payload (entryChecksum)
///
/// Entries appear oldest-first, so reloading preserves LRU order. The
/// store is LRU-bounded by entry count and payload bytes; flushing
/// after eviction compacts the file.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_CACHE_STORE_H
#define BALIGN_CACHE_STORE_H

#include "align/Pipeline.h"
#include "cache/Fingerprint.h"
#include "robust/Durability.h"
#include "robust/Retry.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace balign {

/// Counters and timings the cache exposes; align_tool --cache-stats
/// prints the summary() line to stderr.
struct CacheStats {
  uint64_t Hits = 0;          ///< Lookups served from the cache.
  uint64_t Misses = 0;        ///< Lookups that fell through to compute.
  uint64_t Stores = 0;        ///< Fresh results inserted or refreshed.
  uint64_t Evictions = 0;     ///< Entries dropped by the LRU bound.
  uint64_t Invalidations = 0; ///< Corrupt/mismatched entries rejected.
  uint64_t Entries = 0;       ///< Entries currently resident.
  uint64_t PayloadBytes = 0;  ///< Their total payload size.
  uint64_t BytesWritten = 0;  ///< Bytes flushed to disk so far.
  uint64_t Retries = 0;       ///< Disk attempts repeated after a failure.
  uint64_t LoadFailures = 0;  ///< Store reads that failed even with retry.
  uint64_t FlushFailures = 0; ///< Store writes that failed even with retry.
  double LookupSeconds = 0.0; ///< CPU time spent in lookup().
  double StoreSeconds = 0.0;  ///< CPU time spent in store() + flush().

  /// "hits=12 misses=3 ..." one-line rendering (stable key=value form,
  /// greppable by CI).
  std::string summary() const;
};

/// Tuning for AlignmentCache.
struct AlignmentCacheConfig {
  size_t MaxEntries = size_t(1) << 20;       ///< LRU bound on entries.
  size_t MaxPayloadBytes = size_t(256) << 20;///< LRU bound on bytes.

  /// Re-validate hits semantically (layout-check + penalty
  /// re-evaluation). Only tests that measure raw lookup cost turn this
  /// off.
  bool ValidateHits = true;

  /// Disk mode: flush automatically after every N stores (0 = only on
  /// explicit flush / session teardown). Long-lived owners — the
  /// balign-serve server, whose CacheSession may never destruct if the
  /// process is killed — set this so a crash loses at most N results.
  size_t FlushEveryStores = 0;

  /// balign-sentinel: Full fsyncs the tmp file before the rename and
  /// the cache directory after it, so a flush that returned true
  /// survives kill -9 / power loss. Relaxed keeps the old
  /// atomic-against-readers-only behavior for throwaway stores.
  Durability Durable = Durability::Full;

  /// balign-shield: disk reads and writes retry transient failures with
  /// bounded exponential backoff before giving up.
  RetryPolicy DiskRetry;

  /// Clock injection for the backoff sleeps; null means really sleep.
  /// Tests pass a recording stub so retry runs take no wall time.
  SleepFn RetrySleep;
};

/// Checksum guarding one store entry: a fingerprint-hash over the key
/// words and the payload bytes. Exposed so tests (and external tooling)
/// can craft or audit entries.
uint64_t entryChecksum(uint64_t KeyHi, uint64_t KeyLo, const void *Payload,
                       size_t Size);

/// The concrete ProcedureResultCache: an LRU map from input fingerprint
/// to serialized ProcedureAlignment, optionally mirrored to
/// `<Dir>/balign.cache`. All public methods are thread-safe; pipeline
/// workers call lookup/store concurrently under Threads > 1.
class AlignmentCache final : public ProcedureResultCache {
public:
  /// Name of the store file inside the cache directory.
  static constexpr const char *StoreFileName = "balign.cache";

  /// Memory-only cache.
  explicit AlignmentCache(AlignmentCacheConfig Config = {});

  /// Disk-backed cache over directory \p Dir: loads every salvageable
  /// entry of an existing store (corruption is counted, skipped, and
  /// repaired away by the next flush); flush() persists atomically.
  explicit AlignmentCache(std::string Dir, AlignmentCacheConfig Config = {});

  bool lookup(const Procedure &Proc, const ProcedureProfile &Train,
              const AlignmentOptions &Options, size_t ProcIndex,
              ProcedureAlignment &Out) override;

  void store(const Procedure &Proc, const ProcedureProfile &Train,
             const AlignmentOptions &Options, size_t ProcIndex,
             const ProcedureAlignment &Result) override;

  /// Writes the store file (disk mode; a no-op returning true in memory
  /// mode): serializes to `balign.cache.tmp.<pid>` in the cache
  /// directory, then renames over the store, so readers never observe a
  /// partial file. Under Durability::Full the tmp file is fsync'd before
  /// the rename and the directory after it, so success means the store
  /// survives kill -9. Returns false and fills \p Error on I/O failure.
  bool flush(std::string *Error = nullptr);

  /// Snapshot of the counters.
  CacheStats stats() const;

  /// Entries currently resident.
  size_t size() const;

  /// False in memory mode, and after a persistent flush failure
  /// downgraded the cache to memory-only (balign-shield graceful
  /// degradation: alignment results stay correct, only persistence is
  /// lost).
  bool isDiskBacked() const { return !Dir.empty() && !DiskDisabled; }

private:
  struct Entry {
    std::vector<uint8_t> Payload;
    std::list<Fingerprint>::iterator LruPos;
  };

  void loadFromDisk();
  void insertLocked(const Fingerprint &Key, std::vector<uint8_t> Payload);
  void touchLocked(Entry &E, const Fingerprint &Key);
  void evictLocked();

  mutable std::mutex Mutex;
  std::string Dir; ///< Empty for memory-only mode.
  bool DiskDisabled = false; ///< Set after a persistent flush failure.
  size_t StoresSinceFlush = 0; ///< Drives FlushEveryStores.
  AlignmentCacheConfig Config;
  CacheStats Stats;

  /// LRU order, least recent at the front; Entries point back into it.
  std::list<Fingerprint> Lru;
  std::unordered_map<Fingerprint, Entry, FingerprintHasher> Entries;
};

/// RAII glue between AlignmentOptions and the cache: reads
/// Options.Cache/CachePath, constructs the matching AlignmentCache, and
/// installs it as Options.CacheImpl for the session's lifetime. The
/// destructor flushes (best effort) and detaches. With
/// CacheMode::Off the session is an inert shell, so callers need no
/// branching.
class CacheSession {
public:
  explicit CacheSession(AlignmentOptions &Options,
                        AlignmentCacheConfig Config = {});
  ~CacheSession();

  CacheSession(const CacheSession &) = delete;
  CacheSession &operator=(const CacheSession &) = delete;

  /// The owned cache; null when the session is Off.
  AlignmentCache *cache() { return Impl.get(); }

  /// Explicit flush with error reporting (the destructor can only be
  /// best-effort). No-op when Off or memory-only.
  bool flush(std::string *Error = nullptr);

  /// Zeroed stats when Off.
  CacheStats stats() const;

private:
  AlignmentOptions *Options;
  std::unique_ptr<AlignmentCache> Impl;
};

} // namespace balign

#endif // BALIGN_CACHE_STORE_H
