//===- cache/Fingerprint.cpp ----------------------------------------------===//

#include "cache/Fingerprint.h"

#include "static/EffortPolicy.h"

#include <cstdio>
#include <cstring>

using namespace balign;

namespace {

/// SplitMix64's finalizer: full avalanche in three multiply-xor rounds.
uint64_t avalanche(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

} // namespace

std::string Fingerprint::str() const {
  char Buffer[2 * 16 + 2];
  std::snprintf(Buffer, sizeof(Buffer), "%016llx:%016llx",
                static_cast<unsigned long long>(Hi),
                static_cast<unsigned long long>(Lo));
  return Buffer;
}

void Hasher::bytes(const void *Data, size_t Size) {
  const auto *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Size; ++I) {
    LaneA = (LaneA ^ P[I]) * 0x100000001b3ULL;
    LaneB = (LaneB + P[I] + 1) * 0x9e3779b97f4a7c15ULL;
  }
  Length += Size;
}

void Hasher::u32(uint32_t V) {
  unsigned char Buffer[4];
  for (int I = 0; I != 4; ++I)
    Buffer[I] = static_cast<unsigned char>(V >> (8 * I));
  bytes(Buffer, sizeof(Buffer));
}

void Hasher::u64(uint64_t V) {
  unsigned char Buffer[8];
  for (int I = 0; I != 8; ++I)
    Buffer[I] = static_cast<unsigned char>(V >> (8 * I));
  bytes(Buffer, sizeof(Buffer));
}

void Hasher::f64(double V) {
  static_assert(sizeof(double) == sizeof(uint64_t));
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  u64(Bits);
}

void Hasher::str(const std::string &S) {
  u64(S.size());
  bytes(S.data(), S.size());
}

Fingerprint Hasher::digest() const {
  // Stamp the length and cross-mix the lanes so each output word
  // depends on both, then avalanche each word independently.
  uint64_t A = LaneA ^ (Length * 0xff51afd7ed558ccdULL);
  uint64_t B = LaneB + Length;
  Fingerprint F;
  F.Hi = avalanche(A + 0x2545f4914f6cdd1dULL * B);
  F.Lo = avalanche(B ^ (A >> 17) ^ 0x94d049bb133111ebULL);
  return F;
}

void balign::hashProcedure(Hasher &H, const Procedure &Proc) {
  H.u64(Proc.numBlocks());
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
    const BasicBlock &Block = Proc.block(Id);
    H.u32(Block.InstrCount);
    H.u8(static_cast<uint8_t>(Block.Kind));
    H.u64(Proc.successors(Id).size());
  }
  Proc.forEachEdge(
      [&H](BlockId From, size_t SuccIndex, BlockId To) {
        H.u32(From);
        H.u64(SuccIndex);
        H.u32(To);
      });
}

void balign::hashProfile(Hasher &H, const ProcedureProfile &Profile) {
  H.u64(Profile.BlockCounts.size());
  for (uint64_t Count : Profile.BlockCounts)
    H.u64(Count);
  H.u64(Profile.EdgeCounts.size());
  for (const std::vector<uint64_t> &Edges : Profile.EdgeCounts) {
    H.u64(Edges.size());
    for (uint64_t Count : Edges)
      H.u64(Count);
  }
}

void balign::hashMachineModel(Hasher &H, const MachineModel &Model) {
  H.u32(Model.CondFallThrough);
  H.u32(Model.CondTakenCorrect);
  H.u32(Model.CondMispredict);
  H.u32(Model.UncondBranch);
  H.u32(Model.MultiwayPredicted);
  H.u32(Model.MultiwayMispredict);
}

void balign::hashSolverOptions(Hasher &H, const IteratedOptOptions &Solver) {
  H.u32(Solver.GreedyStarts);
  H.u32(Solver.NearestNeighborStarts);
  H.u8(Solver.CanonicalStart ? 1 : 0);
  H.f64(Solver.IterationsFactor);
  H.u32(Solver.MinIterationsPerRun);
  H.u32(Solver.MaxIterationsPerRun);
  H.u32(Solver.NeighborListSize);
  H.u64(Solver.Seed);
}

void balign::hashHeldKarpOptions(Hasher &H, const HeldKarpOptions &HK) {
  H.u32(HK.Iterations);
  H.f64(HK.InitialAlpha);
  H.f64(HK.RelativeGapStop);
  H.f64(HK.AbsoluteGapStop);
}

Fingerprint
balign::fingerprintProcedureInputs(const Procedure &Proc,
                                   const ProcedureProfile &Train,
                                   const AlignmentOptions &Options,
                                   size_t ProcIndex) {
  Hasher H;
  H.u32(CacheFormatVersion);
  hashProcedure(H, Proc);
  hashProfile(H, Train);
  hashMachineModel(H, Options.Model);
  // Which algorithm produced the primary layout is result-affecting;
  // under ExtTsp so are the objective kind and the model's Ext-TSP
  // parameters (which hashMachineModel deliberately leaves out — they
  // must not churn the keys of DTSP results they cannot affect).
  H.u8(static_cast<uint8_t>(Options.Primary));
  if (Options.Primary == PrimaryAligner::ExtTsp) {
    H.u8(static_cast<uint8_t>(Options.Objective));
    H.u32(Options.Model.ExtTspForwardWindow);
    H.u32(Options.Model.ExtTspBackwardWindow);
    H.f64(Options.Model.ExtTspForwardWeight);
    H.f64(Options.Model.ExtTspBackwardWeight);
  }
  // The branch encoding reshapes addresses and triggers the refit
  // round, so its parameters are result-affecting — but only under a
  // variable encoding. Fixed absorbs nothing, keeping fixed-encoding
  // keys independent of knobs that cannot affect them.
  if (Options.Model.Encoding != BranchEncoding::Fixed) {
    H.u8(static_cast<uint8_t>(Options.Model.Encoding));
    H.u64(Options.Model.ShortBranchRange);
    H.u32(Options.Model.LongBranchExtraInstrs);
    H.u32(Options.Model.LongBranchPenalty);
  }
  // The effort decision is result-affecting: it rewrites the solver
  // options and may route the procedure to the greedy-only fast path.
  // Hash the *effective* options (after decideEffort — the same pure
  // function the pipeline calls) rather than the policy name, so
  // policies that coincide on a procedure share cache entries.
  EffortDecision Effort =
      decideEffort(Proc, Train, Options.Solver, Options.Effort);
  H.u8(Effort.GreedyOnly ? 1 : 0);
  // The solver options (including the derived per-procedure seed) can
  // only matter on the DTSP path: chain-merged results are
  // seed-independent, so leaving the options out lets
  // differently-seeded ExtTsp runs share entries.
  if (Options.Primary == PrimaryAligner::Tsp) {
    IteratedOptOptions Derived = Effort.Solver;
    Derived.Seed = derivedSolverSeed(Options.Solver.Seed, ProcIndex);
    hashSolverOptions(H, Derived);
  }
  H.u8(Options.ComputeBounds ? 1 : 0);
  if (Options.ComputeBounds)
    hashHeldKarpOptions(H, Options.HeldKarp);
  return H.digest();
}
