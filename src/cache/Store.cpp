//===- cache/Store.cpp ----------------------------------------------------===//

#include "cache/Store.h"

#include "align/Penalty.h"
#include "analysis/Verifier.h"
#include "robust/CrashInjector.h"
#include "robust/Durability.h"
#include "robust/FaultInjector.h"
#include "support/Timer.h"
#include "trace/Scope.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include <fcntl.h>
#include <unistd.h>

using namespace balign;

namespace {

constexpr char StoreMagic[8] = {'B', 'A', 'L', 'N', 'C', 'A', 'C', 'H'};
constexpr size_t HeaderBytes = sizeof(StoreMagic) + 2 * sizeof(uint32_t);
/// Key (2 x u64) + payload size (u32) before the payload, checksum
/// (u64) after it.
constexpr size_t EntryOverheadBytes = 2 * sizeof(uint64_t) +
                                      sizeof(uint32_t) + sizeof(uint64_t);
/// No legitimate payload is remotely this large (a layout entry is a
/// few bytes per block); larger sizes mean a corrupted length field.
constexpr uint32_t MaxReasonablePayload = 64u << 20;

//===--------------------------------------------------------------------===//
// Little-endian byte (de)serialization of ProcedureAlignment payloads.
//===--------------------------------------------------------------------===//

/// write(2) all of it, absorbing EINTR and short writes.
bool writeAll(int Fd, const uint8_t *Data, size_t Size) {
  while (Size != 0) {
    ssize_t N = ::write(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putLayout(std::vector<uint8_t> &Out, const Layout &L) {
  putU32(Out, static_cast<uint32_t>(L.Order.size()));
  for (BlockId Id : L.Order)
    putU32(Out, Id);
}

std::vector<uint8_t> encodeAlignment(const ProcedureAlignment &PA) {
  std::vector<uint8_t> Out;
  putLayout(Out, PA.OriginalLayout);
  putLayout(Out, PA.GreedyLayout);
  putLayout(Out, PA.TspLayout);
  putU64(Out, PA.OriginalPenalty);
  putU64(Out, PA.GreedyPenalty);
  putU64(Out, PA.TspPenalty);
  uint64_t HkBits;
  static_assert(sizeof(HkBits) == sizeof(PA.Bounds.HeldKarp));
  std::memcpy(&HkBits, &PA.Bounds.HeldKarp, sizeof(HkBits));
  putU64(Out, HkBits);
  putU64(Out, static_cast<uint64_t>(PA.Bounds.Assignment));
  putU64(Out, PA.Bounds.AssignmentCycles);
  putU32(Out, PA.SolverRuns);
  putU32(Out, PA.RunsFindingBest);
  return Out;
}

/// Bounds-checked reader over a byte span; any out-of-range read sets
/// Failed and sticks.
struct ByteReader {
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;

  uint32_t u32() {
    if (Failed || Size - Pos < 4) {
      Failed = true;
      return 0;
    }
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }

  uint64_t u64() {
    if (Failed || Size - Pos < 8) {
      Failed = true;
      return 0;
    }
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return V;
  }
};

bool decodeLayout(ByteReader &R, Layout &L) {
  uint32_t Len = R.u32();
  if (R.Failed || static_cast<size_t>(Len) * 4 > R.Size - R.Pos)
    return false;
  L.Order.clear();
  L.Order.reserve(Len);
  for (uint32_t I = 0; I != Len; ++I)
    L.Order.push_back(R.u32());
  return !R.Failed;
}

bool decodeAlignment(const std::vector<uint8_t> &Payload,
                     ProcedureAlignment &PA) {
  ByteReader R{Payload.data(), Payload.size()};
  if (!decodeLayout(R, PA.OriginalLayout) ||
      !decodeLayout(R, PA.GreedyLayout) || !decodeLayout(R, PA.TspLayout))
    return false;
  PA.OriginalPenalty = R.u64();
  PA.GreedyPenalty = R.u64();
  PA.TspPenalty = R.u64();
  uint64_t HkBits = R.u64();
  std::memcpy(&PA.Bounds.HeldKarp, &HkBits, sizeof(HkBits));
  PA.Bounds.Assignment = static_cast<int64_t>(R.u64());
  PA.Bounds.AssignmentCycles = static_cast<size_t>(R.u64());
  PA.SolverRuns = R.u32();
  PA.RunsFindingBest = R.u32();
  // Trailing bytes mean the payload is not what the encoder produced.
  return !R.Failed && R.Pos == R.Size;
}

/// Semantic hit validation: the decoded result must be something
/// recomputation could have produced for these exact inputs. Layout
/// legality runs through the balign-verify layout-check pass; stored
/// penalties must match re-evaluation bit-for-bit; bounds must obey the
/// bound-ordering invariant.
bool validateHit(const Procedure &Proc, const ProcedureProfile &Train,
                 const MachineModel &Model, const ProcedureAlignment &PA) {
  for (const Layout *L :
       {&PA.OriginalLayout, &PA.GreedyLayout, &PA.TspLayout})
    if (!L->isValid(Proc))
      return false;
  if (PA.OriginalLayout.Order != Layout::original(Proc).Order)
    return false;
  DiagnosticEngine Scratch;
  checkLayout(Proc, PA.OriginalLayout, Train, Model, Scratch);
  checkLayout(Proc, PA.GreedyLayout, Train, Model, Scratch);
  checkLayout(Proc, PA.TspLayout, Train, Model, Scratch);
  checkBounds(Proc, PA.Bounds, PA.TspPenalty, Scratch);
  if (Scratch.hasErrors())
    return false;
  return PA.OriginalPenalty ==
             evaluateLayout(Proc, PA.OriginalLayout, Model, Train, Train) &&
         PA.GreedyPenalty ==
             evaluateLayout(Proc, PA.GreedyLayout, Model, Train, Train) &&
         PA.TspPenalty ==
             evaluateLayout(Proc, PA.TspLayout, Model, Train, Train);
}

} // namespace

std::string CacheStats::summary() const {
  char Buffer[384];
  std::snprintf(Buffer, sizeof(Buffer),
                "hits=%llu misses=%llu stores=%llu evictions=%llu "
                "invalidations=%llu entries=%llu payload-bytes=%llu "
                "written-bytes=%llu retries=%llu load-failures=%llu "
                "flush-failures=%llu lookup-s=%.3f store-s=%.3f",
                static_cast<unsigned long long>(Hits),
                static_cast<unsigned long long>(Misses),
                static_cast<unsigned long long>(Stores),
                static_cast<unsigned long long>(Evictions),
                static_cast<unsigned long long>(Invalidations),
                static_cast<unsigned long long>(Entries),
                static_cast<unsigned long long>(PayloadBytes),
                static_cast<unsigned long long>(BytesWritten),
                static_cast<unsigned long long>(Retries),
                static_cast<unsigned long long>(LoadFailures),
                static_cast<unsigned long long>(FlushFailures),
                LookupSeconds, StoreSeconds);
  return Buffer;
}

uint64_t balign::entryChecksum(uint64_t KeyHi, uint64_t KeyLo,
                               const void *Payload, size_t Size) {
  Hasher H;
  H.u64(KeyHi);
  H.u64(KeyLo);
  H.bytes(Payload, Size);
  Fingerprint F = H.digest();
  return F.Hi ^ (F.Lo * 0x9e3779b97f4a7c15ULL);
}

AlignmentCache::AlignmentCache(AlignmentCacheConfig Config)
    : Config(Config) {}

AlignmentCache::AlignmentCache(std::string Dir, AlignmentCacheConfig Config)
    : Dir(std::move(Dir)), Config(Config) {
  loadFromDisk();
}

void AlignmentCache::loadFromDisk() {
  ScopedSpan LoadSpan("cache.load", SpanCat::Cache);
  std::string Path = Dir + "/" + StoreFileName;
  std::vector<uint8_t> File;
  bool Exists = false;
  RetryOutcome Outcome = retryWithBackoff(
      Config.DiskRetry,
      [&](std::string *Error) {
        // balign-shield fault site: a transient read failure on the
        // store file, retried with bounded backoff.
        if (FaultInjector::instance().shouldFail(FaultSite::CacheLoad)) {
          if (Error)
            *Error = "injected fault at 'cache.load'";
          return false;
        }
        std::ifstream In(Path, std::ios::binary);
        if (!In) {
          Exists = false; // No store yet: a cold cache, not an error.
          return true;
        }
        File.assign((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
        Exists = true;
        return true;
      },
      nullptr, Config.RetrySleep);
  if (Outcome.Attempts > 1) {
    Stats.Retries += Outcome.Attempts - 1;
    scopeGaugeAdd("cache.retries", Outcome.Attempts - 1);
  }
  if (!Outcome.Succeeded) {
    // Persistent read failure: degrade to a cold cache. Every lookup
    // recomputes (correct, just slower), and the next flush rebuilds
    // the store from scratch.
    ++Stats.LoadFailures;
    scopeCounterAdd("cache.load-failures");
    return;
  }
  if (!Exists)
    return;

  // Corruption taxonomy for everything below: a *truncated* store (a
  // crash or full disk cut the file short) is a partial-load failure —
  // every complete preceding entry is salvaged and exactly one
  // load-failures increment is reported, never double-counted through
  // the retry wrapper above (truncation is not transient, so it is not
  // retried at all). Content that is the wrong *shape* (foreign magic,
  // old version, an absurd length field, a checksum mismatch) is
  // invalidation: the store was read fine but its content is discarded.
  if (File.size() < HeaderBytes) {
    if (std::memcmp(File.data(), StoreMagic,
                    std::min(File.size(), sizeof(StoreMagic))) == 0) {
      ++Stats.LoadFailures; // Our store, cut off mid-header.
      scopeCounterAdd("cache.load-failures");
    } else {
      ++Stats.Invalidations; // Not our file at all.
      scopeCounterAdd("cache.invalidations");
    }
    return;
  }
  if (std::memcmp(File.data(), StoreMagic, sizeof(StoreMagic)) != 0) {
    ++Stats.Invalidations; // Not ours.
    scopeCounterAdd("cache.invalidations");
    return;
  }
  uint32_t Version = 0;
  std::memcpy(&Version, File.data() + sizeof(StoreMagic), sizeof(Version));
  if (Version != CacheFormatVersion) {
    ++Stats.Invalidations; // Old format: discard wholesale.
    scopeCounterAdd("cache.invalidations");
    return;
  }

  uint64_t Salvaged = 0;
  bool SawCorruption = false;
  size_t Pos = HeaderBytes;
  while (Pos < File.size()) {
    if (File.size() - Pos < EntryOverheadBytes) {
      ++Stats.LoadFailures; // Truncated mid-entry: partial load.
      scopeCounterAdd("cache.load-failures");
      SawCorruption = true;
      break;
    }
    ByteReader R{File.data() + Pos, File.size() - Pos};
    Fingerprint Key;
    Key.Hi = R.u64();
    Key.Lo = R.u64();
    uint32_t PayloadSize = R.u32();
    if (PayloadSize > MaxReasonablePayload) {
      ++Stats.Invalidations; // Corrupt length field; cannot resync.
      scopeCounterAdd("cache.invalidations");
      SawCorruption = true;
      break;
    }
    if (File.size() - Pos - R.Pos < PayloadSize + sizeof(uint64_t)) {
      ++Stats.LoadFailures; // Truncated mid-payload: partial load.
      scopeCounterAdd("cache.load-failures");
      SawCorruption = true;
      break;
    }
    std::vector<uint8_t> Payload(File.data() + Pos + R.Pos,
                                 File.data() + Pos + R.Pos + PayloadSize);
    R.Pos += PayloadSize;
    uint64_t Checksum = R.u64();
    Pos += R.Pos;
    if (Checksum !=
        entryChecksum(Key.Hi, Key.Lo, Payload.data(), Payload.size())) {
      ++Stats.Invalidations; // Bit rot; sizes were plausible, so the
      scopeCounterAdd("cache.invalidations");
      SawCorruption = true;
      continue;              // stream stays aligned — keep salvaging.
    }
    ++Salvaged;
    insertLocked(Key, std::move(Payload)); // Ctor context: single thread.
  }
  scopeCounterAdd("cache.loaded-entries", Salvaged);
  if (SawCorruption)
    scopeCounterAdd("cache.salvaged-entries", Salvaged);
}

void AlignmentCache::touchLocked(Entry &E, const Fingerprint &Key) {
  Lru.erase(E.LruPos);
  Lru.push_back(Key);
  E.LruPos = std::prev(Lru.end());
}

void AlignmentCache::insertLocked(const Fingerprint &Key,
                                  std::vector<uint8_t> Payload) {
  auto It = Entries.find(Key);
  if (It != Entries.end()) {
    Stats.PayloadBytes -= It->second.Payload.size();
    Stats.PayloadBytes += Payload.size();
    It->second.Payload = std::move(Payload);
    touchLocked(It->second, Key);
  } else {
    Lru.push_back(Key);
    Entry E;
    E.Payload = std::move(Payload);
    E.LruPos = std::prev(Lru.end());
    Stats.PayloadBytes += E.Payload.size();
    Entries.emplace(Key, std::move(E));
  }
  Stats.Entries = Entries.size();
  evictLocked();
}

void AlignmentCache::evictLocked() {
  while (!Lru.empty() && (Entries.size() > Config.MaxEntries ||
                          Stats.PayloadBytes > Config.MaxPayloadBytes)) {
    auto It = Entries.find(Lru.front());
    Stats.PayloadBytes -= It->second.Payload.size();
    Entries.erase(It);
    Lru.pop_front();
    ++Stats.Evictions;
    scopeCounterAdd("cache.evictions");
  }
  Stats.Entries = Entries.size();
}

bool AlignmentCache::lookup(const Procedure &Proc,
                            const ProcedureProfile &Train,
                            const AlignmentOptions &Options, size_t ProcIndex,
                            ProcedureAlignment &Out) {
  ScopedSpan LookupSpan("cache.lookup", SpanCat::Cache);
  CpuStopwatch Timer;
  Fingerprint Key = fingerprintProcedureInputs(Proc, Train, Options,
                                               ProcIndex);
  // Copy the payload out under the lock; the expensive decode and
  // validation run unlocked so parallel workers do not serialize.
  std::vector<uint8_t> Payload;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(Key);
    if (It == Entries.end()) {
      ++Stats.Misses;
      Stats.LookupSeconds += Timer.seconds();
      scopeCounterAdd("cache.misses");
      return false;
    }
    Payload = It->second.Payload;
    touchLocked(It->second, Key);
  }

  ProcedureAlignment PA;
  bool Valid = decodeAlignment(Payload, PA) &&
               (!Config.ValidateHits ||
                validateHit(Proc, Train, Options.Model, PA));
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Valid) {
    // Checksum-clean but semantically wrong (tampered store, or a
    // fingerprint collision): drop it and recompute.
    auto It = Entries.find(Key);
    if (It != Entries.end()) {
      Stats.PayloadBytes -= It->second.Payload.size();
      Lru.erase(It->second.LruPos);
      Entries.erase(It);
      Stats.Entries = Entries.size();
    }
    ++Stats.Invalidations;
    ++Stats.Misses;
    Stats.LookupSeconds += Timer.seconds();
    scopeCounterAdd("cache.invalidations");
    scopeCounterAdd("cache.misses");
    return false;
  }
  Out = std::move(PA);
  ++Stats.Hits;
  Stats.LookupSeconds += Timer.seconds();
  scopeCounterAdd("cache.hits");
  return true;
}

void AlignmentCache::store(const Procedure &Proc,
                           const ProcedureProfile &Train,
                           const AlignmentOptions &Options, size_t ProcIndex,
                           const ProcedureAlignment &Result) {
  ScopedSpan StoreSpan("cache.store", SpanCat::Cache);
  CpuStopwatch Timer;
  Fingerprint Key = fingerprintProcedureInputs(Proc, Train, Options,
                                               ProcIndex);
  std::vector<uint8_t> Payload = encodeAlignment(Result);
  // FlushEveryStores must trigger the flush *outside* the lock (flush
  // retakes it); the flag decided under the lock keeps the counter
  // race-free across concurrent pipeline workers.
  bool NeedFlush = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    insertLocked(Key, std::move(Payload));
    ++Stats.Stores;
    Stats.StoreSeconds += Timer.seconds();
    if (Config.FlushEveryStores != 0 && !Dir.empty() && !DiskDisabled &&
        ++StoresSinceFlush >= Config.FlushEveryStores) {
      StoresSinceFlush = 0;
      NeedFlush = true;
    }
  }
  scopeCounterAdd("cache.stores");
  if (NeedFlush)
    flush(); // Best effort: a failure counts and downgrades as usual.
}

bool AlignmentCache::flush(std::string *Error) {
  ScopedSpan FlushSpan("cache.flush", SpanCat::Cache);
  CpuStopwatch Timer;
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Dir.empty())
    return true;
  if (DiskDisabled)
    return true; // Downgraded to memory-only; nothing left to persist.

  std::vector<uint8_t> File;
  File.reserve(HeaderBytes);
  for (char C : StoreMagic)
    File.push_back(static_cast<uint8_t>(C));
  putU32(File, CacheFormatVersion);
  putU32(File, 0); // Reserved.
  for (const Fingerprint &Key : Lru) { // Oldest first: reload keeps LRU.
    const Entry &E = Entries.at(Key);
    putU64(File, Key.Hi);
    putU64(File, Key.Lo);
    putU32(File, static_cast<uint32_t>(E.Payload.size()));
    File.insert(File.end(), E.Payload.begin(), E.Payload.end());
    putU64(File,
           entryChecksum(Key.Hi, Key.Lo, E.Payload.data(), E.Payload.size()));
  }

  std::string TmpPath =
      Dir + "/" + StoreFileName + ".tmp." + std::to_string(::getpid());
  std::string FlushError;
  RetryOutcome Outcome = retryWithBackoff(
      Config.DiskRetry,
      [&](std::string *AttemptError) {
        // balign-shield fault site: a transient write failure anywhere
        // in the atomic tmp-write-then-rename, retried with bounded
        // backoff.
        if (FaultInjector::instance().shouldFail(FaultSite::CacheFlush)) {
          if (AttemptError)
            *AttemptError = "injected fault at 'cache.flush'";
          return false;
        }
        std::error_code Ec;
        std::filesystem::create_directories(Dir, Ec);
        if (Ec) {
          if (AttemptError)
            *AttemptError = "cannot create cache directory '" + Dir +
                            "': " + Ec.message();
          return false;
        }
        int TmpFd = ::open(TmpPath.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
        if (TmpFd < 0) {
          if (AttemptError)
            *AttemptError = "cannot open '" + TmpPath + "': " +
                            std::strerror(errno);
          return false;
        }
        // balign-sentinel crash site: die with the tmp file half written.
        // The half-file carries the tmp suffix, so the live store under
        // the final name is untouched and the next run ignores the husk.
        size_t Half = File.size() / 2;
        bool Written = writeAll(TmpFd, File.data(), Half);
        if (Written)
          CrashInjector::instance().crashPoint(CrashSite::CacheTmpWrite);
        Written = Written &&
                  writeAll(TmpFd, File.data() + Half, File.size() - Half);
        // fsync before rename: without it the rename can land while the
        // tmp file's data is still only in the page cache, and a power
        // cut then leaves a torn file under the *final* name.
        if (Written && Config.Durable == Durability::Full)
          Written = fsyncFd(TmpFd);
        ::close(TmpFd);
        if (!Written) {
          std::filesystem::remove(TmpPath, Ec);
          if (AttemptError)
            *AttemptError = "cannot write '" + TmpPath + "': " +
                            std::strerror(errno);
          return false;
        }
        // balign-sentinel crash site: tmp file durable, rename not yet
        // issued — the old store (if any) must still load cleanly.
        CrashInjector::instance().crashPoint(CrashSite::CachePreRename);
        std::filesystem::rename(TmpPath, Dir + "/" + StoreFileName, Ec);
        if (Ec) {
          std::filesystem::remove(TmpPath, Ec);
          if (AttemptError)
            *AttemptError = "cannot replace store file in '" + Dir +
                            "': " + Ec.message();
          return false;
        }
        // balign-sentinel crash site: rename issued but the directory
        // not yet fsync'd — either the old or the new store is visible,
        // both complete.
        CrashInjector::instance().crashPoint(CrashSite::CachePostRename);
        if (Config.Durable == Durability::Full)
          fsyncParentDirectory(Dir + "/" + StoreFileName); // Best effort.
        return true;
      },
      &FlushError, Config.RetrySleep);
  if (Outcome.Attempts > 1) {
    Stats.Retries += Outcome.Attempts - 1;
    scopeGaugeAdd("cache.retries", Outcome.Attempts - 1);
  }
  Stats.StoreSeconds += Timer.seconds();
  if (!Outcome.Succeeded) {
    // Persistent write failure: downgrade to a memory-only cache so the
    // rest of the run neither blocks on a broken disk nor loses
    // correctness — only warm-start persistence is sacrificed.
    ++Stats.FlushFailures;
    scopeCounterAdd("cache.flush-failures");
    DiskDisabled = true;
    if (Error)
      *Error = FlushError + " (cache downgraded to memory-only)";
    return false;
  }
  Stats.BytesWritten += File.size();
  scopeCounterAdd("cache.bytes-written", File.size());
  return true;
}

CacheStats AlignmentCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}

size_t AlignmentCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

CacheSession::CacheSession(AlignmentOptions &Options,
                           AlignmentCacheConfig Config)
    : Options(&Options) {
  switch (Options.Cache) {
  case CacheMode::Off:
    break;
  case CacheMode::Memory:
    Impl = std::make_unique<AlignmentCache>(Config);
    break;
  case CacheMode::Disk:
    Impl = std::make_unique<AlignmentCache>(
        Options.CachePath.empty() ? std::string(".") : Options.CachePath,
        Config);
    break;
  }
  if (Impl)
    Options.CacheImpl = Impl.get();
}

CacheSession::~CacheSession() {
  if (Impl) {
    std::string FlushError;
    if (!Impl->flush(&FlushError))
      std::cerr << "balign: warning: cache flush failed: " << FlushError
                << "\n";
    if (Options->CacheImpl == Impl.get())
      Options->CacheImpl = nullptr;
  }
}

bool CacheSession::flush(std::string *Error) {
  return Impl ? Impl->flush(Error) : true;
}

CacheStats CacheSession::stats() const {
  return Impl ? Impl->stats() : CacheStats();
}
