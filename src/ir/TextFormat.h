//===- ir/TextFormat.h - Textual CFG serialization ------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// A line-oriented text format for programs, used by the align_tool
/// example and by round-trip tests. Grammar (comments start with '#'):
///
/// \code
///   program <name>
///   proc <name> {
///     <block>: size <n> ret
///     <block>: size <n> jump -> <succ>
///     <block>: size <n> cond -> <taken> <fallthrough>
///     <block>: size <n> multi -> <succ> <succ> ...
///   }
/// \endcode
///
/// Blocks are numbered in declaration order; the first block of a proc is
/// its entry. Successor references may be forward.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_IR_TEXTFORMAT_H
#define BALIGN_IR_TEXTFORMAT_H

#include "ir/CFG.h"

#include <optional>
#include <string>

namespace balign {

/// Serializes \p Prog in the text format above.
std::string printProgram(const Program &Prog);

/// Parses a program; on failure returns std::nullopt and stores a
/// diagnostic ("line N: message") in \p Error if non-null. The parsed
/// program is verified before being returned.
std::optional<Program> parseProgram(const std::string &Text,
                                    std::string *Error = nullptr);

} // namespace balign

#endif // BALIGN_IR_TEXTFORMAT_H
