//===- ir/TextFormat.cpp --------------------------------------------------===//

#include "ir/TextFormat.h"

#include <cassert>
#include <map>
#include <sstream>
#include <vector>

using namespace balign;

std::string balign::printProgram(const Program &Prog) {
  std::ostringstream Out;
  Out << "program " << Prog.getName() << "\n";
  for (const Procedure &Proc : Prog.procedures()) {
    Out << "proc " << Proc.getName() << " {\n";
    for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
      const BasicBlock &Block = Proc.block(Id);
      std::string Name =
          Block.Name.empty() ? "b" + std::to_string(Id) : Block.Name;
      Out << "  " << Name << ": size " << Block.InstrCount << " "
          << terminatorKindName(Block.Kind);
      const std::vector<BlockId> &Succs = Proc.successors(Id);
      if (!Succs.empty()) {
        Out << " ->";
        for (BlockId Succ : Succs) {
          const BasicBlock &Target = Proc.block(Succ);
          std::string SuccName = Target.Name;
          if (SuccName.empty()) {
            SuccName = "b";
            SuccName += std::to_string(Succ);
          }
          Out << " " << SuccName;
        }
      }
      Out << "\n";
    }
    Out << "}\n";
  }
  return Out.str();
}

namespace {

/// Pull-based tokenizer state for one parse.
struct Parser {
  std::istringstream In;
  std::string *Error;
  unsigned LineNo = 0;

  Parser(const std::string &Text, std::string *Error)
      : In(Text), Error(Error) {}

  bool fail(const std::string &Message) {
    if (Error)
      *Error = "line " + std::to_string(LineNo) + ": " + Message;
    return false;
  }

  /// Reads the next non-empty, non-comment line into \p Tokens.
  /// Returns false at end of input.
  bool nextLine(std::vector<std::string> &Tokens) {
    std::string Line;
    while (std::getline(In, Line)) {
      ++LineNo;
      size_t Hash = Line.find('#');
      if (Hash != std::string::npos)
        Line.resize(Hash);
      std::istringstream LineIn(Line);
      Tokens.clear();
      std::string Token;
      while (LineIn >> Token)
        Tokens.push_back(Token);
      if (!Tokens.empty())
        return true;
    }
    return false;
  }
};

/// A block line awaiting successor-name resolution.
struct PendingBlock {
  std::string Name;
  uint32_t Size;
  TerminatorKind Kind;
  std::vector<std::string> SuccNames;
  unsigned LineNo;
};

} // namespace

static std::optional<TerminatorKind> parseKind(const std::string &Word) {
  if (Word == "jump")
    return TerminatorKind::Unconditional;
  if (Word == "cond")
    return TerminatorKind::Conditional;
  if (Word == "multi")
    return TerminatorKind::Multiway;
  if (Word == "ret")
    return TerminatorKind::Return;
  return std::nullopt;
}

/// Parses one "name: size N kind [-> succs...]" token list.
static bool parseBlockLine(Parser &P, const std::vector<std::string> &Tokens,
                           PendingBlock &Out) {
  if (Tokens.size() < 4)
    return P.fail("expected '<name>: size <n> <kind> [-> succs]'");
  std::string Name = Tokens[0];
  if (Name.empty() || Name.back() != ':')
    return P.fail("block name must end in ':'");
  Name.pop_back();
  if (Name.empty())
    return P.fail("empty block name");
  if (Tokens[1] != "size")
    return P.fail("expected 'size'");
  uint64_t Size = 0;
  bool SizeOk = !Tokens[2].empty() && Tokens[2].size() <= 9;
  for (char C : Tokens[2]) {
    if (C < '0' || C > '9') {
      SizeOk = false;
      break;
    }
    Size = Size * 10 + static_cast<uint64_t>(C - '0');
  }
  if (!SizeOk || Size < 1)
    return P.fail("block size must be a positive integer");
  // Bound the size so address assignment (InstrCount * BytesPerInstr,
  // summed over items) can never wrap a uint64_t — a crafted file with
  // huge blocks must fail here, not corrupt addresses downstream.
  if (Size > MaxBlockInstrCount)
    return P.fail("block size " + Tokens[2] + " exceeds the limit of " +
                  std::to_string(MaxBlockInstrCount) + " instructions");
  std::optional<TerminatorKind> Kind = parseKind(Tokens[3]);
  if (!Kind)
    return P.fail("unknown terminator kind '" + Tokens[3] + "'");

  Out.Name = Name;
  Out.Size = static_cast<uint32_t>(Size);
  Out.Kind = *Kind;
  Out.LineNo = P.LineNo;
  Out.SuccNames.clear();
  if (Tokens.size() == 4)
    return true;
  if (Tokens[4] != "->")
    return P.fail("expected '->' before successor list");
  for (size_t I = 5; I != Tokens.size(); ++I)
    Out.SuccNames.push_back(Tokens[I]);
  if (Out.SuccNames.empty())
    return P.fail("'->' requires at least one successor");
  return true;
}

/// Resolves pending blocks into \p Prog; returns false on error.
static bool finishProc(Parser &P, const std::string &ProcName,
                       std::vector<PendingBlock> &Pending, Program &Prog) {
  Procedure Proc(ProcName);
  std::map<std::string, BlockId> Ids;
  for (const PendingBlock &PB : Pending) {
    if (Ids.contains(PB.Name)) {
      P.LineNo = PB.LineNo;
      return P.fail("duplicate block name '" + PB.Name + "'");
    }
    BasicBlock Block;
    Block.Name = PB.Name;
    Block.InstrCount = PB.Size;
    Block.Kind = PB.Kind;
    Ids[PB.Name] = Proc.addBlock(std::move(Block));
  }
  for (const PendingBlock &PB : Pending) {
    for (const std::string &Succ : PB.SuccNames) {
      auto It = Ids.find(Succ);
      if (It == Ids.end()) {
        P.LineNo = PB.LineNo;
        return P.fail("unknown successor '" + Succ + "'");
      }
      Proc.addEdge(Ids[PB.Name], It->second);
    }
  }
  std::string VerifyError;
  if (!Proc.verify(&VerifyError))
    return P.fail(VerifyError);
  Prog.addProcedure(std::move(Proc));
  Pending.clear();
  return true;
}

std::optional<Program> balign::parseProgram(const std::string &Text,
                                            std::string *Error) {
  Parser P(Text, Error);
  std::vector<std::string> Tokens;
  if (!P.nextLine(Tokens) || Tokens.size() != 2 || Tokens[0] != "program") {
    P.fail("expected 'program <name>' header");
    return std::nullopt;
  }
  Program Prog(Tokens[1]);

  while (P.nextLine(Tokens)) {
    if (Tokens.size() != 3 || Tokens[0] != "proc" || Tokens[2] != "{") {
      P.fail("expected 'proc <name> {'");
      return std::nullopt;
    }
    std::string ProcName = Tokens[1];
    for (size_t I = 0; I != Prog.numProcedures(); ++I)
      if (Prog.proc(I).getName() == ProcName) {
        P.fail("duplicate procedure '" + ProcName + "'");
        return std::nullopt;
      }
    std::vector<PendingBlock> Pending;
    bool Closed = false;
    while (P.nextLine(Tokens)) {
      if (Tokens.size() == 1 && Tokens[0] == "}") {
        Closed = true;
        break;
      }
      PendingBlock PB;
      if (!parseBlockLine(P, Tokens, PB))
        return std::nullopt;
      Pending.push_back(std::move(PB));
    }
    if (!Closed) {
      P.fail("unterminated proc '" + ProcName + "'");
      return std::nullopt;
    }
    if (Pending.empty()) {
      P.fail("proc '" + ProcName + "' has no blocks");
      return std::nullopt;
    }
    if (!finishProc(P, ProcName, Pending, Prog))
      return std::nullopt;
  }
  if (Prog.numProcedures() == 0) {
    P.fail("program has no procedures");
    return std::nullopt;
  }
  return Prog;
}
