//===- ir/CFGBuilder.cpp --------------------------------------------------===//

#include "ir/CFGBuilder.h"

#include <cassert>

using namespace balign;

BlockId CFGBuilder::block(TerminatorKind Kind, uint32_t InstrCount,
                          std::string Name) {
  BasicBlock Block;
  Block.Kind = Kind;
  Block.InstrCount = InstrCount;
  Block.Name = std::move(Name);
  return Proc.addBlock(std::move(Block));
}

BlockId CFGBuilder::jump(uint32_t InstrCount, std::string Name) {
  return block(TerminatorKind::Unconditional, InstrCount, std::move(Name));
}

BlockId CFGBuilder::cond(uint32_t InstrCount, std::string Name) {
  return block(TerminatorKind::Conditional, InstrCount, std::move(Name));
}

BlockId CFGBuilder::multi(uint32_t InstrCount, std::string Name) {
  return block(TerminatorKind::Multiway, InstrCount, std::move(Name));
}

BlockId CFGBuilder::ret(uint32_t InstrCount, std::string Name) {
  return block(TerminatorKind::Return, InstrCount, std::move(Name));
}

CFGBuilder &CFGBuilder::edge(BlockId From, BlockId To) {
  Proc.addEdge(From, To);
  return *this;
}

CFGBuilder &CFGBuilder::branches(BlockId From, BlockId Taken,
                                 BlockId FallThrough) {
  assert(Proc.block(From).Kind == TerminatorKind::Conditional &&
         "branches() is for conditional blocks");
  Proc.addEdge(From, Taken);
  Proc.addEdge(From, FallThrough);
  return *this;
}

Procedure CFGBuilder::take() {
  std::string Error;
  bool Ok = Proc.verify(&Error);
  (void)Ok;
  assert(Ok && "CFGBuilder produced an invalid procedure");
  return std::move(Proc);
}
