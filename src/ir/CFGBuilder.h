//===- ir/CFGBuilder.h - Convenience builder for procedures --------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// A small fluent helper for constructing verified procedures in tests,
/// examples, and the synthetic workload generators. Blocks are declared
/// first (fixing ids), edges added afterwards, and take() verifies the
/// result.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_IR_CFGBUILDER_H
#define BALIGN_IR_CFGBUILDER_H

#include "ir/CFG.h"

namespace balign {

/// Builds a Procedure block-by-block; asserts validity on take().
class CFGBuilder {
public:
  explicit CFGBuilder(std::string Name) : Proc(std::move(Name)) {}

  /// Adds a block of kind \p Kind with \p InstrCount instructions.
  BlockId block(TerminatorKind Kind, uint32_t InstrCount = 4,
                std::string Name = "");

  /// Shorthands for each terminator kind.
  BlockId jump(uint32_t InstrCount = 4, std::string Name = "");
  BlockId cond(uint32_t InstrCount = 4, std::string Name = "");
  BlockId multi(uint32_t InstrCount = 4, std::string Name = "");
  BlockId ret(uint32_t InstrCount = 4, std::string Name = "");

  /// Adds the CFG edge From -> To (ordering is significant, see
  /// Procedure::addEdge).
  CFGBuilder &edge(BlockId From, BlockId To);

  /// Adds From -> {Taken, FallThrough} for a conditional block.
  CFGBuilder &branches(BlockId From, BlockId Taken, BlockId FallThrough);

  /// Finishes construction; asserts the procedure verifies.
  Procedure take();

private:
  Procedure Proc;
};

} // namespace balign

#endif // BALIGN_IR_CFGBUILDER_H
