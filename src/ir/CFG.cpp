//===- ir/CFG.cpp ---------------------------------------------------------===//

#include "ir/CFG.h"

#include <cassert>

using namespace balign;

const char *balign::terminatorKindName(TerminatorKind Kind) {
  switch (Kind) {
  case TerminatorKind::Unconditional:
    return "jump";
  case TerminatorKind::Conditional:
    return "cond";
  case TerminatorKind::Multiway:
    return "multi";
  case TerminatorKind::Return:
    return "ret";
  }
  assert(false && "unknown terminator kind");
  return "?";
}

BlockId Procedure::addBlock(BasicBlock Block) {
  assert(Block.InstrCount >= 1 && "blocks contain at least one instruction");
  Blocks.push_back(std::move(Block));
  Successors.emplace_back();
  return static_cast<BlockId>(Blocks.size() - 1);
}

void Procedure::addEdge(BlockId From, BlockId To) {
  assert(From < Blocks.size() && To < Blocks.size() && "edge out of range");
  Successors[From].push_back(To);
}

std::vector<std::vector<BlockId>> Procedure::computePredecessors() const {
  std::vector<std::vector<BlockId>> Preds(Blocks.size());
  for (BlockId From = 0; From != Blocks.size(); ++From)
    for (BlockId To : Successors[From])
      Preds[To].push_back(From);
  return Preds;
}

uint64_t Procedure::totalInstructions() const {
  uint64_t Sum = 0;
  for (const BasicBlock &Block : Blocks)
    Sum += Block.InstrCount;
  return Sum;
}

size_t Procedure::numBranchSites() const {
  size_t Count = 0;
  for (const BasicBlock &Block : Blocks)
    if (Block.Kind == TerminatorKind::Conditional ||
        Block.Kind == TerminatorKind::Multiway)
      ++Count;
  return Count;
}

static bool fail(std::string *Error, std::string Message) {
  if (Error)
    *Error = std::move(Message);
  return false;
}

bool Procedure::verify(std::string *Error) const {
  if (Blocks.empty())
    return fail(Error, "procedure '" + Name + "' has no blocks");

  for (BlockId Id = 0; Id != Blocks.size(); ++Id) {
    const BasicBlock &Block = Blocks[Id];
    const std::vector<BlockId> &Succs = Successors[Id];
    std::string Where =
        "procedure '" + Name + "' block " + std::to_string(Id);
    for (BlockId Succ : Succs)
      if (Succ >= Blocks.size())
        return fail(Error, Where + ": successor out of range");
    if (Block.InstrCount == 0)
      return fail(Error, Where + ": empty block");
    switch (Block.Kind) {
    case TerminatorKind::Unconditional:
      if (Succs.size() != 1)
        return fail(Error, Where + ": jump needs exactly 1 successor");
      break;
    case TerminatorKind::Conditional:
      if (Succs.size() != 2)
        return fail(Error, Where + ": cond needs exactly 2 successors");
      if (Succs[0] == Succs[1])
        return fail(Error, Where + ": cond successors must differ");
      break;
    case TerminatorKind::Multiway:
      if (Succs.size() < 2)
        return fail(Error, Where + ": multi needs >= 2 successors");
      for (size_t I = 0; I != Succs.size(); ++I)
        for (size_t J = I + 1; J != Succs.size(); ++J)
          if (Succs[I] == Succs[J])
            return fail(Error, Where + ": duplicate multiway successor");
      break;
    case TerminatorKind::Return:
      if (!Succs.empty())
        return fail(Error, Where + ": ret must have no successors");
      break;
    }
  }

  // Reachability from the entry block.
  std::vector<bool> Seen(Blocks.size(), false);
  std::vector<BlockId> Work = {entry()};
  Seen[entry()] = true;
  while (!Work.empty()) {
    BlockId Id = Work.back();
    Work.pop_back();
    for (BlockId Succ : Successors[Id]) {
      if (Seen[Succ])
        continue;
      Seen[Succ] = true;
      Work.push_back(Succ);
    }
  }
  for (BlockId Id = 0; Id != Blocks.size(); ++Id)
    if (!Seen[Id])
      return fail(Error, "procedure '" + Name + "' block " +
                             std::to_string(Id) + " unreachable from entry");
  return true;
}

size_t Program::addProcedure(Procedure Proc) {
  Procs.push_back(std::move(Proc));
  return Procs.size() - 1;
}

bool Program::verify(std::string *Error) const {
  for (const Procedure &Proc : Procs)
    if (!Proc.verify(Error))
      return false;
  return true;
}
