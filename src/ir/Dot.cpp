//===- ir/Dot.cpp ----------------------------------------------------------===//

#include "ir/Dot.h"

#include <cassert>
#include <sstream>

using namespace balign;

std::string
balign::printDot(const Procedure &Proc,
                 const std::vector<std::vector<uint64_t>> *EdgeCounts) {
  std::ostringstream Out;
  Out << "digraph \"" << Proc.getName() << "\" {\n";
  Out << "  node [shape=box fontname=\"monospace\"];\n";
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
    const BasicBlock &Block = Proc.block(Id);
    std::string Name = Block.Name;
    if (Name.empty()) {
      Name = "b";
      Name += std::to_string(Id);
    }
    Out << "  n" << Id << " [label=\"" << Name << "\\n"
        << terminatorKindName(Block.Kind) << " size=" << Block.InstrCount
        << "\"];\n";
  }
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
    const std::vector<BlockId> &Succs = Proc.successors(Id);
    for (size_t I = 0; I != Succs.size(); ++I) {
      Out << "  n" << Id << " -> n" << Succs[I];
      if (EdgeCounts) {
        assert(Id < EdgeCounts->size() && I < (*EdgeCounts)[Id].size() &&
               "edge counts not parallel to successor lists");
        Out << " [label=\"" << (*EdgeCounts)[Id][I] << "\"]";
      }
      Out << ";\n";
    }
  }
  Out << "}\n";
  return Out.str();
}
