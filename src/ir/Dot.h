//===- ir/Dot.h - Graphviz export ------------------------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Graphviz (dot) export of a procedure's CFG, optionally annotated with
/// edge execution counts; handy when debugging workload generators and
/// layouts.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_IR_DOT_H
#define BALIGN_IR_DOT_H

#include "ir/CFG.h"

#include <cstdint>
#include <string>
#include <vector>

namespace balign {

/// Renders \p Proc as a dot digraph. If \p EdgeCounts is non-null it must
/// be parallel to the successor lists (EdgeCounts[B][I] is the count of
/// the I-th successor edge of block B) and is printed as edge labels.
std::string
printDot(const Procedure &Proc,
         const std::vector<std::vector<uint64_t>> *EdgeCounts = nullptr);

} // namespace balign

#endif // BALIGN_IR_DOT_H
