//===- ir/CFG.h - Basic blocks, procedures, and programs -----------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The minimal compiler IR the branch-alignment algorithms consume: a
/// program is a list of procedures; a procedure is a control-flow graph of
/// basic blocks; each block carries an instruction count (for address
/// assignment and cycle accounting) and a terminator kind that determines
/// which rows of the paper's Table 3 apply to it.
///
/// Terminator kinds:
///  * Unconditional - exactly one CFG successor. Whether any branch
///    instruction exists is a property of the *layout*: if the successor
///    is the layout successor the block simply falls through (0 cycles,
///    the paper's "no branch" row); otherwise an unconditional branch is
///    required (2 cycles on the 21164 model).
///  * Conditional   - exactly two distinct CFG successors; the layout
///    decides which one (if either) is the fall-through.
///  * Multiway      - a register/indirect jump with two or more possible
///    targets (e.g. a switch dispatch); it never falls through.
///  * Return        - procedure exit; no CFG successors.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_IR_CFG_H
#define BALIGN_IR_CFG_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace balign {

/// Index of a basic block within its procedure.
using BlockId = uint32_t;

/// Sentinel for "no block".
inline constexpr BlockId InvalidBlock = ~static_cast<BlockId>(0);

/// Classification of the control-transfer instruction ending a block.
enum class TerminatorKind : uint8_t {
  Unconditional, ///< One successor; branch only if layout demands it.
  Conditional,   ///< Two successors; direction chosen at runtime.
  Multiway,      ///< Indirect jump; >= 2 successors, never falls through.
  Return,        ///< Procedure exit; no successors.
};

/// Returns a stable lowercase mnemonic ("jump", "cond", "multi", "ret").
const char *terminatorKindName(TerminatorKind Kind);

/// Largest InstrCount a single block may carry (2^28 instructions = 1 GiB
/// of code at 4 bytes each — far beyond any real procedure). The text
/// parser rejects larger sizes, so downstream address assignment can sum
/// per-item byte sizes into a uint64_t without overflow checks on every
/// add: even 2^32 maximal blocks total less than 2^62 bytes.
inline constexpr uint32_t MaxBlockInstrCount = 1u << 28;

/// A basic block: a run of straight-line instructions plus a terminator.
/// Successor edges live in the owning Procedure.
struct BasicBlock {
  /// Number of instructions in the block, *including* its terminator when
  /// one is present in the original code. Used for address assignment in
  /// the layout materializer and for base-cycle accounting in the
  /// pipeline simulator. Always >= 1.
  uint32_t InstrCount = 1;

  /// Which Table 3 rows govern this block's layout penalties.
  TerminatorKind Kind = TerminatorKind::Return;

  /// Optional symbolic name; empty means "b<index>".
  std::string Name;
};

/// A procedure: blocks plus CFG successor edges. Block 0 is the entry.
class Procedure {
public:
  explicit Procedure(std::string Name = "proc") : Name(std::move(Name)) {}

  /// Appends a block; returns its id. Successors start empty.
  BlockId addBlock(BasicBlock Block);

  /// Appends the CFG edge From -> To. Order matters for conditionals:
  /// successor 0 is the original taken target, successor 1 the original
  /// fall-through (layout may invert them).
  void addEdge(BlockId From, BlockId To);

  const std::string &getName() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  size_t numBlocks() const { return Blocks.size(); }
  const BasicBlock &block(BlockId Id) const { return Blocks[Id]; }
  BasicBlock &block(BlockId Id) { return Blocks[Id]; }
  const std::vector<BasicBlock> &blocks() const { return Blocks; }

  const std::vector<BlockId> &successors(BlockId Id) const {
    return Successors[Id];
  }

  /// Calls Fn(From, SuccIndex, To) for every CFG edge, in canonical order
  /// (blocks ascending, successor lists in declaration order). This order
  /// is part of the cache-fingerprint contract: two procedures hash equal
  /// iff this enumeration yields the same sequence.
  template <typename FnT> void forEachEdge(FnT &&Fn) const {
    for (BlockId From = 0; From != Blocks.size(); ++From)
      for (size_t I = 0; I != Successors[From].size(); ++I)
        Fn(From, I, Successors[From][I]);
  }

  /// Predecessor lists, computed on demand (invalidated by addEdge).
  std::vector<std::vector<BlockId>> computePredecessors() const;

  /// The entry block; always block 0.
  BlockId entry() const { return 0; }

  /// Total instruction count over all blocks.
  uint64_t totalInstructions() const;

  /// Number of blocks ending in a conditional or multiway branch; the
  /// paper's "branch sites" unit (Table 1 counts executed sites).
  size_t numBranchSites() const;

  /// Checks structural invariants; on failure returns false and stores a
  /// diagnostic in \p Error (may be null). Invariants: at least one
  /// block; successor counts match terminator kinds; conditional
  /// successors are distinct; edges in range; every block reachable from
  /// the entry.
  bool verify(std::string *Error = nullptr) const;

private:
  std::string Name;
  std::vector<BasicBlock> Blocks;
  std::vector<std::vector<BlockId>> Successors;
};

/// A whole program: procedures aligned independently (the problem is
/// intraprocedural) but simulated together (shared instruction cache).
class Program {
public:
  explicit Program(std::string Name = "program") : Name(std::move(Name)) {}

  size_t addProcedure(Procedure Proc);

  const std::string &getName() const { return Name; }
  size_t numProcedures() const { return Procs.size(); }
  const Procedure &proc(size_t Index) const { return Procs[Index]; }
  Procedure &proc(size_t Index) { return Procs[Index]; }
  const std::vector<Procedure> &procedures() const { return Procs; }

  /// Verifies every procedure; stops at the first failure.
  bool verify(std::string *Error = nullptr) const;

private:
  std::string Name;
  std::vector<Procedure> Procs;
};

} // namespace balign

#endif // BALIGN_IR_CFG_H
