//===- sim/ICache.h - Direct-mapped instruction cache ----------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// A direct-mapped instruction cache model. The paper found (via IPROBE)
/// that "good branch alignments also appear to be good for caching" —
/// cache effects the control-penalty model does not capture explain why
/// the TSP layout beats greedy in measured time more than in computed
/// penalties. The pipeline simulator uses this cache to let the same
/// effect emerge: blocks adjacent in layout share lines, so layouts with
/// more fall-throughs touch fewer lines per loop iteration.
///
/// Defaults follow the Alpha 21164 L1 instruction cache: 8 KB,
/// direct-mapped, 32-byte lines.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SIM_ICACHE_H
#define BALIGN_SIM_ICACHE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace balign {

/// Geometry of the instruction cache.
struct ICacheConfig {
  uint64_t SizeBytes = 8192;
  uint64_t LineBytes = 32;

  uint64_t numLines() const { return SizeBytes / LineBytes; }
};

/// Direct-mapped cache of line tags.
class ICache {
public:
  explicit ICache(ICacheConfig Config = {});

  /// Touches the line containing \p Addr; returns true on hit.
  bool access(uint64_t Addr);

  /// Touches every line overlapping [Addr, Addr + Bytes); returns the
  /// number of misses.
  uint64_t accessRange(uint64_t Addr, uint64_t Bytes);

  /// Invalidates the whole cache.
  void reset();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t accesses() const { return Hits + Misses; }

  const ICacheConfig &config() const { return Config; }

private:
  ICacheConfig Config;
  std::vector<uint64_t> Tags;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace balign

#endif // BALIGN_SIM_ICACHE_H
