//===- sim/Simulator.h - Trace-driven frontend simulator -------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// A trace-driven pipeline-frontend simulator standing in for the paper's
/// AlphaStation wall-clock measurements (DESIGN.md, Section 2). Cycle
/// accounting per executed block:
///
///   cycles = instructions (CPI 1)
///          + Table 3 control penalty of the block's actual transfer
///          + fixup-jump execution where the layout inserted one
///          + CacheMissPenalty per instruction-cache line miss.
///
/// The control-penalty component uses the same arrangement/prediction
/// data the materializer recorded from the *training* profile, so
/// replaying the *testing* trace reproduces the paper's cross-validation
/// setup end to end; with the training trace it totals exactly the
/// evaluator's computed penalty (tested invariant).
///
/// The BTFNT option replaces profile-based prediction with
/// backward-taken/forward-not-taken hardware prediction — the scheme the
/// paper's footnote 3 excludes from the DTSP model because the penalty
/// then depends on the target *address*, not just the successor; the
/// ablation bench uses it to quantify that modeling gap.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SIM_SIMULATOR_H
#define BALIGN_SIM_SIMULATOR_H

#include "align/Layout.h"
#include "ir/CFG.h"
#include "machine/MachineModel.h"
#include "profile/Trace.h"
#include "machine/Predictors.h"
#include "sim/ICache.h"

#include <vector>

namespace balign {

/// Simulator configuration.
struct SimConfig {
  MachineModel Model = MachineModel::alpha21164();
  ICacheConfig Cache;
  /// Cycles to fill one instruction-cache line from the next level.
  uint32_t CacheMissPenalty = 10;
  /// Conditional-branch prediction hardware (ablations; the paper's
  /// model assumes ProfileStatic).
  PredictorKind Predictor = PredictorKind::ProfileStatic;
  /// Bimodal table entries (power of two); small tables alias more.
  size_t PredictorEntries = 2048;

  /// Model a branch target buffer: correctly-predicted redirects whose
  /// (branch, target) pair hits the BTB skip the misfetch bubble
  /// (ablation; the paper's Table 3 machine has no BTB).
  bool UseBtb = false;

  /// BTB entries (power of two).
  size_t BtbEntries = 512;
};

/// Aggregated simulation outcome.
struct SimResult {
  uint64_t Cycles = 0;             ///< Total.
  uint64_t BaseCycles = 0;         ///< One per executed instruction.
  uint64_t ControlPenaltyCycles = 0;
  uint64_t CacheMissCycles = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheAccesses = 0;
  uint64_t FixupsExecuted = 0;
};

/// Lays the materialized procedures out consecutively in one address
/// space (each aligned to a cache-line boundary); returns each
/// procedure's base address.
std::vector<uint64_t>
assignProcedureBases(const std::vector<MaterializedLayout> &Layouts,
                     uint64_t LineBytes);

/// Replays \p Traces (one per procedure, program order) over the
/// materialized \p Layouts with a shared instruction cache.
SimResult simulateProgram(const Program &Prog,
                          const std::vector<MaterializedLayout> &Layouts,
                          const std::vector<ExecutionTrace> &Traces,
                          const SimConfig &Config);

} // namespace balign

#endif // BALIGN_SIM_SIMULATOR_H
