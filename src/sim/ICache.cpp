//===- sim/ICache.cpp ----------------------------------------------------------===//

#include "sim/ICache.h"

#include <cassert>

using namespace balign;

static constexpr uint64_t EmptyTag = ~static_cast<uint64_t>(0);

ICache::ICache(ICacheConfig Config) : Config(Config) {
  assert(Config.LineBytes != 0 && Config.SizeBytes % Config.LineBytes == 0 &&
         "cache size must be a multiple of the line size");
  Tags.assign(Config.numLines(), EmptyTag);
}

bool ICache::access(uint64_t Addr) {
  uint64_t Line = Addr / Config.LineBytes;
  uint64_t Index = Line % Config.numLines();
  if (Tags[Index] == Line) {
    ++Hits;
    return true;
  }
  Tags[Index] = Line;
  ++Misses;
  return false;
}

uint64_t ICache::accessRange(uint64_t Addr, uint64_t Bytes) {
  assert(Bytes != 0 && "empty fetch range");
  uint64_t FirstLine = Addr / Config.LineBytes;
  uint64_t LastLine = (Addr + Bytes - 1) / Config.LineBytes;
  uint64_t MissesHere = 0;
  for (uint64_t Line = FirstLine; Line <= LastLine; ++Line)
    if (!access(Line * Config.LineBytes))
      ++MissesHere;
  return MissesHere;
}

void ICache::reset() { Tags.assign(Config.numLines(), EmptyTag); }
