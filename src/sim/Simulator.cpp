//===- sim/Simulator.cpp --------------------------------------------------------===//

#include "sim/Simulator.h"

#include "objective/Displace.h"
#include "sim/Replayer.h"

#include <cassert>

using namespace balign;

std::vector<uint64_t> balign::assignProcedureBases(
    const std::vector<MaterializedLayout> &Layouts, uint64_t LineBytes) {
  std::vector<uint64_t> Bases;
  Bases.reserve(Layouts.size());
  uint64_t Address = 0;
  for (const MaterializedLayout &Mat : Layouts) {
    Bases.push_back(Address);
    Address += Mat.TotalBytes;
    // Procedures start on a fresh cache line, as linkers align them.
    Address = (Address + LineBytes - 1) / LineBytes * LineBytes;
  }
  return Bases;
}

void TraceReplayer::replayRange(const ExecutionTrace &Trace, size_t Begin,
                                size_t End) {
  assert(End <= Trace.Blocks.size() && Begin <= End && "bad slice");
  for (size_t I = Begin; I != End; ++I) {
    BlockId Current = Trace.Blocks[I];
    executeBlock(Current);
    if (Proc.block(Current).Kind == TerminatorKind::Return)
      continue; // Next element starts a new invocation.
    if (I + 1 == End)
      continue; // Slice ends mid-invocation (abandoned walk).
    BlockId Next = Trace.Blocks[I + 1];
    if (!isSuccessor(Current, Next))
      continue; // Abandoned walk followed by a fresh invocation.
    chargeTransfer(Current, Next);
  }
}

bool TraceReplayer::isSuccessor(BlockId From, BlockId To) const {
  for (BlockId Succ : Proc.successors(From))
    if (Succ == To)
      return true;
  return false;
}

void TraceReplayer::fetchItem(const LayoutItem &Item) {
  // The fetch footprint includes long-form branch growth, so encoding
  // bloat shows up as I-cache pressure the same way it does on hardware.
  uint64_t Misses =
      Cache.accessRange(Base + Item.Address, itemBytes(Item, Config.Model));
  Result.CacheMisses += Misses;
  Result.CacheMissCycles += Misses * Config.CacheMissPenalty;
}

void TraceReplayer::executeBlock(BlockId B) {
  const LayoutItem &Item = Mat.Items[Mat.ItemOfBlock[B]];
  fetchItem(Item);
  Result.BaseCycles += Item.SizeInstrs;
}

void TraceReplayer::executeFixup(BlockId B) {
  const LayoutItem &Fixup = Mat.Items[Mat.ItemOfBlock[B] + 1];
  assert(Fixup.isFixup() && "conditional lost its fixup item");
  fetchItem(Fixup);
  Result.BaseCycles += Fixup.SizeInstrs;
  chargeRedirect(Base + Fixup.Address,
                 Base + Mat.blockAddress(Fixup.FixupTarget),
                 Config.Model.UncondBranch);
  ++Result.FixupsExecuted;
}

void TraceReplayer::chargeRedirect(uint64_t BranchAddr, uint64_t TargetAddr,
                                   uint32_t FullPenalty) {
  if (Config.UseBtb) {
    uint32_t Misfetch = Config.Model.CondTakenCorrect;
    if (TargetBuffer.hit(BranchAddr, TargetAddr) && FullPenalty >= Misfetch)
      FullPenalty -= Misfetch; // The bubble is hidden by the BTB.
    TargetBuffer.update(BranchAddr, TargetAddr);
  }
  Result.ControlPenaltyCycles += FullPenalty;
}

void TraceReplayer::chargeTransfer(BlockId From, BlockId To) {
  const MachineModel &Model = Config.Model;
  switch (Proc.block(From).Kind) {
  case TerminatorKind::Return:
    return;

  case TerminatorKind::Unconditional: {
    // Falls through iff its successor is the next layout item.
    size_t ItemIdx = Mat.ItemOfBlock[From];
    bool FallsThrough =
        ItemIdx + 1 != Mat.Items.size() &&
        Mat.Items[ItemIdx + 1].Block == Proc.successors(From)[0];
    if (!FallsThrough)
      chargeRedirect(Base + Mat.blockAddress(From),
                     Base + Mat.blockAddress(To), Model.UncondBranch);
    return;
  }

  case TerminatorKind::Conditional: {
    const BranchArrangement &Arr = Mat.Arrangements[From];
    bool PredictTaken = Arr.PredictTaken;
    uint64_t BranchAddr = Base + Mat.blockAddress(From);
    switch (Config.Predictor) {
    case PredictorKind::ProfileStatic:
      break;
    case PredictorKind::Btfnt:
      // Hardware backward-taken/forward-not-taken prediction: the
      // penalty now depends on target addresses, which is exactly the
      // situation the paper's DTSP model excludes (footnote 3).
      PredictTaken =
          Mat.blockAddress(Arr.TakenTarget) <= Mat.blockAddress(From);
      break;
    case PredictorKind::Bimodal2Bit:
      // Dynamic 2-bit counters with layout-dependent aliasing
      // (Section 6 / footnote 6).
      PredictTaken = Bimodal.predict(BranchAddr);
      Bimodal.update(BranchAddr, To == Arr.TakenTarget);
      break;
    }
    if (To == Arr.TakenTarget) {
      if (PredictTaken)
        chargeRedirect(BranchAddr, Base + Mat.blockAddress(To),
                       Model.CondTakenCorrect);
      else
        Result.ControlPenaltyCycles += Model.CondMispredict;
      return;
    }
    assert(To == Arr.FallThroughTarget &&
           "trace successor matches neither branch target");
    Result.ControlPenaltyCycles +=
        PredictTaken ? Model.CondMispredict : Model.CondFallThrough;
    if (Arr.FallThroughViaFixup)
      executeFixup(From);
    return;
  }

  case TerminatorKind::Multiway: {
    BlockId Predicted = Proc.successors(From)[Mat.MultiwayPrediction[From]];
    if (To == Predicted)
      chargeRedirect(Base + Mat.blockAddress(From),
                     Base + Mat.blockAddress(To), Model.MultiwayPredicted);
    else
      Result.ControlPenaltyCycles += Model.MultiwayMispredict;
    return;
  }
  }
  assert(false && "unknown terminator kind");
}

std::vector<std::pair<size_t, size_t>>
balign::invocationSlices(const Procedure &Proc, const ExecutionTrace &Trace) {
  std::vector<std::pair<size_t, size_t>> Slices;
  size_t Begin = 0;
  for (size_t I = 0; I != Trace.Blocks.size(); ++I) {
    if (Proc.block(Trace.Blocks[I]).Kind == TerminatorKind::Return) {
      Slices.push_back({Begin, I + 1});
      Begin = I + 1;
    }
  }
  if (Begin != Trace.Blocks.size())
    Slices.push_back({Begin, Trace.Blocks.size()});
  return Slices;
}

SimResult balign::simulateProgram(
    const Program &Prog, const std::vector<MaterializedLayout> &Layouts,
    const std::vector<ExecutionTrace> &Traces, const SimConfig &Config) {
  assert(Layouts.size() == Prog.numProcedures() &&
         Traces.size() == Prog.numProcedures() && "arity mismatch");
  SimState State(Config);
  std::vector<uint64_t> Bases =
      assignProcedureBases(Layouts, Config.Cache.LineBytes);
  for (size_t I = 0; I != Prog.numProcedures(); ++I) {
    TraceReplayer Sim(Prog.proc(I), Layouts[I], Bases[I], Config, State);
    Sim.replay(Traces[I]);
  }
  State.Result.CacheAccesses = State.Cache.accesses();
  State.Result.Cycles = State.Result.BaseCycles +
                        State.Result.ControlPenaltyCycles +
                        State.Result.CacheMissCycles;
  return State.Result;
}
