//===- sim/Replayer.h - Per-procedure trace replay --------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The per-procedure replay engine behind simulateProgram, exposed so the
/// interprocedural placement simulator can interleave invocation slices
/// of different procedures over one shared cache and predictor state.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SIM_REPLAYER_H
#define BALIGN_SIM_REPLAYER_H

#include "align/Layout.h"
#include "ir/CFG.h"
#include "profile/Trace.h"
#include "machine/Btb.h"
#include "machine/Predictors.h"
#include "sim/ICache.h"
#include "sim/Simulator.h"

#include <utility>
#include <vector>

namespace balign {

/// The machine state shared by every procedure's replayer: one cache,
/// one prediction table, one BTB, one accumulating result.
struct SimState {
  ICache Cache;
  BimodalPredictor Bimodal;
  Btb TargetBuffer;
  SimResult Result;

  explicit SimState(const SimConfig &Config)
      : Cache(Config.Cache), Bimodal(Config.PredictorEntries),
        TargetBuffer(Config.BtbEntries) {}
};

/// Replays trace slices of one procedure, charging cycles into a shared
/// SimResult. Cache, predictor, and BTB are shared across replayers so
/// cross-procedure conflicts and aliasing are modeled.
class TraceReplayer {
public:
  TraceReplayer(const Procedure &Proc, const MaterializedLayout &Mat,
                uint64_t Base, const SimConfig &Config, SimState &State)
      : Proc(Proc), Mat(Mat), Base(Base), Config(Config),
        Cache(State.Cache), Bimodal(State.Bimodal),
        TargetBuffer(State.TargetBuffer), Result(State.Result) {}

  /// Replays the whole trace.
  void replay(const ExecutionTrace &Trace) {
    replayRange(Trace, 0, Trace.Blocks.size());
  }

  /// Replays trace positions [Begin, End).
  void replayRange(const ExecutionTrace &Trace, size_t Begin, size_t End);

private:
  const Procedure &Proc;
  const MaterializedLayout &Mat;
  uint64_t Base;
  const SimConfig &Config;
  ICache &Cache;
  BimodalPredictor &Bimodal;
  Btb &TargetBuffer;
  SimResult &Result;

  bool isSuccessor(BlockId From, BlockId To) const;
  /// Charges a correctly-handled redirect's misfetch-bearing penalty,
  /// consulting/updating the BTB when enabled.
  void chargeRedirect(uint64_t BranchAddr, uint64_t TargetAddr,
                      uint32_t FullPenalty);
  void fetchItem(const LayoutItem &Item);
  void executeBlock(BlockId B);
  void executeFixup(BlockId B);
  void chargeTransfer(BlockId From, BlockId To);
};

/// Splits \p Trace into invocation slices: [begin, end) index pairs, one
/// per Return-terminated walk (a trailing abandoned walk forms a final
/// slice of its own).
std::vector<std::pair<size_t, size_t>>
invocationSlices(const Procedure &Proc, const ExecutionTrace &Trace);

} // namespace balign

#endif // BALIGN_SIM_REPLAYER_H
