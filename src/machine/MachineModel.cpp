//===- machine/MachineModel.cpp --------------------------------------------===//

#include "machine/MachineModel.h"

using namespace balign;

const char *balign::branchEncodingName(BranchEncoding Encoding) {
  switch (Encoding) {
  case BranchEncoding::Fixed:
    return "fixed";
  case BranchEncoding::ShortLong:
    return "short-long";
  }
  return "unknown";
}

bool balign::parseBranchEncoding(const std::string &Name,
                                 BranchEncoding &Out) {
  if (Name == "fixed") {
    Out = BranchEncoding::Fixed;
    return true;
  }
  if (Name == "short-long") {
    Out = BranchEncoding::ShortLong;
    return true;
  }
  return false;
}

MachineModel MachineModel::alpha21164() {
  MachineModel Model;
  Model.Name = "alpha21164";
  Model.CondFallThrough = 0;
  Model.CondTakenCorrect = 1;
  Model.CondMispredict = 5;
  Model.UncondBranch = 2;
  Model.MultiwayPredicted = 1;
  Model.MultiwayMispredict = 3;
  return Model;
}

MachineModel MachineModel::deepPipeline() {
  MachineModel Model;
  Model.Name = "deep-pipeline";
  Model.CondFallThrough = 0;
  Model.CondTakenCorrect = 3;
  Model.CondMispredict = 20;
  Model.UncondBranch = 4;
  Model.MultiwayPredicted = 3;
  Model.MultiwayMispredict = 12;
  return Model;
}

MachineModel MachineModel::cheapBranch() {
  MachineModel Model;
  Model.Name = "cheap-branch";
  Model.CondFallThrough = 0;
  Model.CondTakenCorrect = 0;
  Model.CondMispredict = 2;
  Model.UncondBranch = 0;
  Model.MultiwayPredicted = 0;
  Model.MultiwayMispredict = 2;
  return Model;
}
