//===- machine/Predictors.h - Hardware branch-prediction models ----------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Hardware prediction schemes beyond the paper's profile-trained static
/// predictor. Section 6 proposes "a trace-driven simulation of the branch
/// prediction hardware in the target machine to derive more accurate
/// frequencies of correct and incorrect predictions", noting (footnote 6)
/// that aliasing effects would change under a new layout. The bimodal
/// table here models exactly that: 2-bit saturating counters indexed by
/// branch address bits, so two branches can collide in the table and the
/// collision pattern depends on the layout.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_MACHINE_PREDICTORS_H
#define BALIGN_MACHINE_PREDICTORS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace balign {

/// Which hardware predicts conditional branches in the simulator.
enum class PredictorKind : uint8_t {
  /// Profile-trained static prediction (the paper's assumption).
  ProfileStatic,
  /// Backward-taken / forward-not-taken static hardware prediction.
  Btfnt,
  /// Bimodal table of 2-bit saturating counters indexed by branch
  /// address (classic Smith predictor; models BHT aliasing).
  Bimodal2Bit,
};

/// A table of 2-bit saturating counters indexed by branch address.
class BimodalPredictor {
public:
  /// \p Entries must be a power of two.
  explicit BimodalPredictor(size_t Entries = 2048);

  /// Predicts the branch at byte address \p Addr; true = taken.
  bool predict(uint64_t Addr) const;

  /// Trains the counter for \p Addr with the actual outcome.
  void update(uint64_t Addr, bool Taken);

  /// Resets all counters to weakly-not-taken.
  void reset();

  size_t numEntries() const { return Counters.size(); }

private:
  size_t indexOf(uint64_t Addr) const;

  std::vector<uint8_t> Counters; ///< 0..3; >= 2 predicts taken.
};

} // namespace balign

#endif // BALIGN_MACHINE_PREDICTORS_H
