//===- machine/MachineModel.h - Control-penalty machine models ------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Machine models assigning penalty cycles to block-ending control events,
/// generalizing the paper's pTT/pTN/pNT/pNN scheme per terminator kind
/// (Section 2.2 notes the penalties may depend on the branch kind; Table 3
/// gives the Alpha 21164 instantiation used throughout the evaluation).
///
/// Table 3 (Alpha 21164):
///   block-ending control    event                                penalty
///   no branch               fall through                         0 (pNN)
///   unconditional branch    always taken                         2 (pTT)
///   conditional branch      fall through to common successor     0 (pNN)
///   conditional branch      taken branch to common successor     1 (pTT)
///   conditional branch      mispredicted (any layout)            5 (pTN/pNT)
///   register branch         branch to common (predicted) target  1 (pTT)
///   register branch         branch to any other CFG successor    3 (pNT/pTN)
///
/// "No branch" vs "unconditional branch" is a layout property of a
/// single-successor block: falling through costs 0; a required jump costs
/// 2 (one cycle to issue the jump plus the one-cycle misfetch). The same
/// 2-cycle figure prices the fixup jumps the aligner inserts, which the
/// paper counts as separate basic blocks whose penalty is attached to the
/// DTSP edge that created them.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_MACHINE_MACHINEMODEL_H
#define BALIGN_MACHINE_MACHINEMODEL_H

#include <cstdint>
#include <string>

namespace balign {

/// Bytes per instruction used for address assignment (Alpha: fixed
/// 4-byte encoding).
inline constexpr uint64_t BytesPerInstr = 4;

/// Instruction index of byte address \p Addr — the unit the BTB and the
/// bimodal predictor hash by. Long-form branch growth (see BranchEncoding
/// below) is whole instructions, so this stays exact under every
/// encoding.
inline constexpr uint64_t instructionIndex(uint64_t Addr) {
  return Addr / BytesPerInstr;
}

/// How block-ending branches are encoded. The paper's Alpha model uses
/// one fixed-size encoding; real ISAs pick a short or long form from the
/// branch's displacement — which itself depends on which forms every
/// other branch picked. Boender & Sacerdoti Coen ("On the correctness of
/// a branch displacement algorithm") formalize the resulting fixpoint;
/// objective/Displace.h implements it.
enum class BranchEncoding : uint8_t {
  /// Every branch is one instruction regardless of distance (the Alpha
  /// 21164 model of Table 3; the repo-wide default).
  Fixed = 0,

  /// A branch within ShortBranchRange bytes of its target keeps the
  /// one-instruction short form; a farther one grows by
  /// LongBranchExtraInstrs instructions and pays LongBranchPenalty extra
  /// cycles per taken execution.
  ShortLong = 1,
};

/// Stable flag spelling ("fixed" / "short-long").
const char *branchEncodingName(BranchEncoding Encoding);

/// Parses a branchEncodingName spelling; returns false on unknown names.
bool parseBranchEncoding(const std::string &Name, BranchEncoding &Out);

/// Penalty cycles for every block-ending control event, per terminator
/// kind. All values are per dynamic execution of the event.
struct MachineModel {
  std::string Name = "custom";

  /// Conditional branch, predicted direction, not taken (fall through to
  /// the layout successor). Table 3's pNN row: 0 on the 21164.
  uint32_t CondFallThrough = 0;

  /// Conditional branch, predicted direction, taken. Pays the misfetch:
  /// 1 cycle on the 21164 (pTT).
  uint32_t CondTakenCorrect = 1;

  /// Conditional branch, mispredicted, either direction, any layout:
  /// 5 cycles on the 21164 (pTN / pNT).
  uint32_t CondMispredict = 5;

  /// Unconditional branch (including aligner-inserted fixup jumps):
  /// 2 cycles on the 21164 (pTT for jumps).
  uint32_t UncondBranch = 2;

  /// Multiway (register) branch to its most common (predicted) target:
  /// 1 cycle (pTT); the target buffer supplies the address but the
  /// redirect still misfetches.
  uint32_t MultiwayPredicted = 1;

  /// Multiway branch to any other CFG successor: 3 cycles (pNT/pTN).
  uint32_t MultiwayMispredict = 3;

  /// Ext-TSP objective parameters (Newell/Pupyrev, "Improved Basic Block
  /// Reordering"). A branch whose target lands within the forward window
  /// of the branch site still scores — linearly decaying with distance —
  /// because the target line is likely already fetched. Distances are in
  /// bytes from the end of the source block to the start of the target
  /// block; a distance of zero is a fall through and scores the full
  /// (implicit) weight of 1.0 per execution. Defaults follow the BOLT
  /// CodeLayout constants (1024/640-byte windows, 0.1/0.1 weights).
  uint32_t ExtTspForwardWindow = 1024;
  uint32_t ExtTspBackwardWindow = 640;
  double ExtTspForwardWeight = 0.1;
  double ExtTspBackwardWeight = 0.1;

  /// Branch-encoding table. Under the default Fixed encoding everything
  /// below is inert and addresses are exactly InstrCount * BytesPerInstr
  /// — existing goldens and cache entries depend on that. Under
  /// ShortLong, objective/Displace.h runs the grow-until-fixpoint
  /// displacement algorithm over these parameters.
  BranchEncoding Encoding = BranchEncoding::Fixed;

  /// Maximum byte displacement (|target - branch end|) a short-form
  /// branch can span. 32 KiB matches a 16-bit signed word-displacement
  /// field at 4-byte granularity. A range of 0 forces every taken branch
  /// long (the degenerate case the tests pin).
  uint64_t ShortBranchRange = 32768;

  /// Instructions a long-form branch adds over the short form (the
  /// classic sequence is an inverted short branch over an absolute
  /// jump: one extra instruction).
  uint32_t LongBranchExtraInstrs = 1;

  /// Extra penalty cycles a long-form branch pays per taken execution
  /// (the extra issue slot of the jump in the inverted-branch sequence).
  uint32_t LongBranchPenalty = 1;

  /// The Alpha 21164 model of Table 3 (misfetch 1, cond mispredict 5).
  static MachineModel alpha21164();

  /// A deeper speculative pipeline (ablation): misfetch 3, mispredict 20,
  /// jumps 4, multiway 3/12. Models the Section 6 "other machine models"
  /// future-work direction.
  static MachineModel deepPipeline();

  /// Nearly-free branches (ablation): only mispredicts cost anything.
  static MachineModel cheapBranch();
};

} // namespace balign

#endif // BALIGN_MACHINE_MACHINEMODEL_H
