//===- machine/Predictors.cpp ---------------------------------------------------===//

#include "machine/Predictors.h"

#include "machine/MachineModel.h" // instructionIndex

#include <cassert>

using namespace balign;

BimodalPredictor::BimodalPredictor(size_t Entries) {
  assert(Entries != 0 && (Entries & (Entries - 1)) == 0 &&
         "entry count must be a power of two");
  Counters.assign(Entries, 1); // Weakly not-taken.
}

size_t BimodalPredictor::indexOf(uint64_t Addr) const {
  // Branches are instruction-aligned; drop the byte-offset bits so
  // consecutive instructions map to consecutive counters.
  return static_cast<size_t>(instructionIndex(Addr) &
                             (Counters.size() - 1));
}

bool BimodalPredictor::predict(uint64_t Addr) const {
  return Counters[indexOf(Addr)] >= 2;
}

void BimodalPredictor::update(uint64_t Addr, bool Taken) {
  uint8_t &Counter = Counters[indexOf(Addr)];
  if (Taken) {
    if (Counter < 3)
      ++Counter;
  } else if (Counter > 0) {
    --Counter;
  }
}

void BimodalPredictor::reset() {
  Counters.assign(Counters.size(), 1);
}
