//===- machine/Btb.cpp ---------------------------------------------------------------===//

#include "machine/Btb.h"

#include "machine/MachineModel.h" // instructionIndex

#include <cassert>

using namespace balign;

static constexpr uint64_t EmptyTag = ~static_cast<uint64_t>(0);

Btb::Btb(size_t Entries) {
  assert(Entries != 0 && (Entries & (Entries - 1)) == 0 &&
         "entry count must be a power of two");
  Tags.assign(Entries, EmptyTag);
  Targets.assign(Entries, 0);
}

size_t Btb::indexOf(uint64_t Addr) const {
  return static_cast<size_t>(instructionIndex(Addr) & (Tags.size() - 1));
}

bool Btb::hit(uint64_t Addr, uint64_t Target) const {
  ++Lookups;
  size_t Index = indexOf(Addr);
  if (Tags[Index] == Addr && Targets[Index] == Target) {
    ++Hits;
    return true;
  }
  return false;
}

void Btb::update(uint64_t Addr, uint64_t Target) {
  size_t Index = indexOf(Addr);
  Tags[Index] = Addr;
  Targets[Index] = Target;
}

void Btb::reset() {
  Tags.assign(Tags.size(), EmptyTag);
  Targets.assign(Targets.size(), 0);
}
