//===- machine/Btb.h - Branch target buffer model --------------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// A direct-mapped branch target buffer (Lee & Smith, the paper's
/// reference [16]). The paper lists BTBs among the hardware techniques
/// that reduce misfetch penalties — the same penalties branch alignment
/// removes in software — so the natural ablation is: how much of the
/// alignment benefit survives when the frontend has a BTB? On a BTB hit
/// the target of a correctly-predicted redirect is available in time and
/// the misfetch bubble disappears; mispredict penalties are unaffected.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_MACHINE_BTB_H
#define BALIGN_MACHINE_BTB_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace balign {

/// Direct-mapped BTB of (tag, target) entries indexed by branch address.
class Btb {
public:
  /// \p Entries must be a power of two.
  explicit Btb(size_t Entries = 512);

  /// True if the buffer holds the correct \p Target for the branch at
  /// \p Addr (a hit removes the misfetch bubble).
  bool hit(uint64_t Addr, uint64_t Target) const;

  /// Installs/updates the entry for \p Addr.
  void update(uint64_t Addr, uint64_t Target);

  /// Invalidates everything.
  void reset();

  size_t numEntries() const { return Tags.size(); }
  uint64_t hits() const { return Hits; }
  uint64_t lookups() const { return Lookups; }

private:
  size_t indexOf(uint64_t Addr) const;

  std::vector<uint64_t> Tags;    ///< Branch addresses; EmptyTag = invalid.
  std::vector<uint64_t> Targets;
  mutable uint64_t Hits = 0;
  mutable uint64_t Lookups = 0;
};

} // namespace balign

#endif // BALIGN_MACHINE_BTB_H
