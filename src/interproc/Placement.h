//===- interproc/Placement.h - Interprocedural placement simulation --------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Evaluates a procedure placement: materialized procedures are laid out
/// in the given order in one address space and the whole-program call
/// sequence is replayed invocation-by-invocation over a shared
/// instruction cache. Procedure order changes which procedures' lines
/// conflict in the direct-mapped cache, so orders that keep temporally
/// affine procedures adjacent (Pettis-Hansen, TSP) fetch fewer lines
/// twice.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_INTERPROC_PLACEMENT_H
#define BALIGN_INTERPROC_PLACEMENT_H

#include "align/Layout.h"
#include "interproc/Interleave.h"
#include "interproc/ProcOrder.h"
#include "ir/CFG.h"
#include "profile/Trace.h"
#include "sim/Simulator.h"

#include <vector>

namespace balign {

/// Per-procedure base addresses for the placement \p Order (order names
/// procedure indices; the returned vector is indexed by procedure).
std::vector<uint64_t>
placementBases(const std::vector<MaterializedLayout> &Layouts,
               const ProcOrder &Order, uint64_t LineBytes);

/// Replays \p Sequence over the placement: the K-th entry consumes the
/// next unconsumed invocation slice of that procedure's trace. Entries
/// for procedures whose slices are exhausted are skipped (the sequence
/// generator normally consumes each trace exactly).
SimResult simulatePlacement(const Program &Prog,
                            const std::vector<MaterializedLayout> &Layouts,
                            const std::vector<ExecutionTrace> &Traces,
                            const CallSequence &Sequence,
                            const ProcOrder &Order, const SimConfig &Config);

/// Convenience: invocation counts per procedure derived from the traces
/// (the input generateCallSequence needs).
std::vector<uint64_t>
invocationCounts(const Program &Prog,
                 const std::vector<ExecutionTrace> &Traces);

} // namespace balign

#endif // BALIGN_INTERPROC_PLACEMENT_H
