//===- interproc/ProcOrder.h - Procedure-ordering algorithms ---------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Procedure-ordering algorithms over a temporal-affinity graph,
/// realizing the paper's interprocedural future-work direction
/// (Section 6) with the same two algorithmic families the
/// intraprocedural problem uses:
///
///  * pettisHansenOrder — the classic greedy chain merging from Pettis &
///    Hansen's "Profile Guided Code Positioning" (the paper's reference
///    [23]): repeatedly merge the two chains joined by the heaviest
///    remaining affinity edge, orienting the merge to keep the heavy
///    endpoints adjacent.
///  * tspOrder — reduce to a (symmetric-cost) TSP: adjacency of A and B
///    in the placement saves Affinity[A][B] "contention units", so a
///    minimum-cost tour under cost(A,B) = MaxAffinity - Affinity[A][B]
///    maximizes total adjacent affinity. Solved with the same iterated
///    3-Opt machinery as branch alignment.
///
/// Plus original/random baselines for the placement bench.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_INTERPROC_PROCORDER_H
#define BALIGN_INTERPROC_PROCORDER_H

#include "support/Random.h"
#include "tsp/IteratedOpt.h"

#include <cstdint>
#include <vector>

namespace balign {

/// A placement order: ProcOrder[K] is the index of the procedure placed
/// K-th in the address space.
using ProcOrder = std::vector<size_t>;

/// Identity order 0..N-1.
ProcOrder originalProcOrder(size_t NumProcs);

/// Seeded random permutation (the pessimal-ish baseline).
ProcOrder randomProcOrder(size_t NumProcs, uint64_t Seed);

/// Pettis-Hansen greedy chain merging on \p Affinity.
ProcOrder
pettisHansenOrder(const std::vector<std::vector<uint64_t>> &Affinity);

/// TSP-based ordering on \p Affinity using iterated 3-Opt.
ProcOrder tspOrder(const std::vector<std::vector<uint64_t>> &Affinity,
                   const IteratedOptOptions &Options = {});

/// Total affinity weight between procedures adjacent in \p Order — the
/// objective both nontrivial orderers maximize.
uint64_t
adjacentAffinity(const ProcOrder &Order,
                 const std::vector<std::vector<uint64_t>> &Affinity);

} // namespace balign

#endif // BALIGN_INTERPROC_PROCORDER_H
