//===- interproc/Interleave.h - Whole-program call interleavings -----------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The paper closes with "we would like to try to generalize our method
/// to the interprocedural code placement problem" (Section 6). This
/// module provides the substrate that makes procedure *order* matter: a
/// call sequence interleaving the invocations of every procedure, and an
/// affinity graph derived from it.
///
/// The per-procedure traces of a workload record each procedure's
/// invocations back-to-back; a CallSequence says in which global order
/// those invocations actually happened. Procedures whose invocations
/// alternate rapidly contend for instruction-cache sets unless the
/// linker places them apart-but-non-conflicting — which is exactly what
/// Pettis-Hansen procedure ordering optimizes with call-graph weights.
/// We use temporal co-occurrence weights (how often two procedures run
/// within a small window of each other), the cache-relevant
/// generalization of call-edge counts.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_INTERPROC_INTERLEAVE_H
#define BALIGN_INTERPROC_INTERLEAVE_H

#include "support/Random.h"

#include <cstdint>
#include <vector>

namespace balign {

/// A whole-program invocation order: element K names the procedure whose
/// next (so-far-unconsumed) invocation runs K-th.
using CallSequence = std::vector<size_t>;

/// Options for synthesizing a call sequence.
struct InterleaveOptions {
  /// Expected run length of consecutive invocations of the same
  /// procedure (phase behavior); 1 = fully random interleaving.
  double BurstLength = 4.0;

  /// Number of "phase cluster" groups; procedures in the same cluster
  /// tend to run near each other in time (modeling call locality).
  unsigned NumClusters = 4;

  uint64_t Seed = 0x1e11ULL;
};

/// Builds a call sequence consuming exactly \p InvocationCounts[P]
/// invocations of every procedure P, with bursty, clustered phase
/// behavior.
CallSequence generateCallSequence(const std::vector<uint64_t> &InvocationCounts,
                                  const InterleaveOptions &Options);

/// Symmetric temporal-affinity weights: Affinity[A][B] counts how often
/// procedures A and B appear within \p Window positions of each other in
/// \p Sequence (A != B). This is the interprocedural analogue of CFG
/// edge counts.
std::vector<std::vector<uint64_t>>
computeAffinity(const CallSequence &Sequence, size_t NumProcs,
                size_t Window = 4);

} // namespace balign

#endif // BALIGN_INTERPROC_INTERLEAVE_H
