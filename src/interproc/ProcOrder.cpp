//===- interproc/ProcOrder.cpp ----------------------------------------------------===//

#include "interproc/ProcOrder.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <numeric>

using namespace balign;

ProcOrder balign::originalProcOrder(size_t NumProcs) {
  ProcOrder Order(NumProcs);
  std::iota(Order.begin(), Order.end(), 0);
  return Order;
}

ProcOrder balign::randomProcOrder(size_t NumProcs, uint64_t Seed) {
  ProcOrder Order = originalProcOrder(NumProcs);
  Rng Rand(Seed);
  Rand.shuffle(Order);
  return Order;
}

namespace {

/// One weighted affinity edge for the greedy merger.
struct AffinityEdge {
  uint64_t Weight;
  size_t A;
  size_t B;

  bool operator<(const AffinityEdge &Other) const {
    if (Weight != Other.Weight)
      return Weight > Other.Weight; // Heaviest first.
    if (A != Other.A)
      return A < Other.A;
    return B < Other.B;
  }
};

} // namespace

ProcOrder balign::pettisHansenOrder(
    const std::vector<std::vector<uint64_t>> &Affinity) {
  size_t N = Affinity.size();
  if (N == 0)
    return {};

  std::vector<AffinityEdge> Edges;
  for (size_t A = 0; A != N; ++A)
    for (size_t B = A + 1; B != N; ++B)
      if (Affinity[A][B] != 0)
        Edges.push_back({Affinity[A][B], A, B});
  std::sort(Edges.begin(), Edges.end());

  // Chains as deques; ChainOf maps a procedure to its chain id.
  std::vector<std::deque<size_t>> Chains(N);
  std::vector<size_t> ChainOf(N);
  for (size_t P = 0; P != N; ++P) {
    Chains[P] = {P};
    ChainOf[P] = P;
  }

  auto mergeInto = [&](size_t Keep, std::deque<size_t> &&Tail) {
    for (size_t P : Tail) {
      Chains[Keep].push_back(P);
      ChainOf[P] = Keep;
    }
  };

  for (const AffinityEdge &E : Edges) {
    size_t CA = ChainOf[E.A], CB = ChainOf[E.B];
    if (CA == CB)
      continue;
    std::deque<size_t> &A = Chains[CA];
    std::deque<size_t> &B = Chains[CB];
    // Orient both chains so E.A sits at A's back and E.B at B's front;
    // reversing a chain is free (affinity is symmetric). If either
    // endpoint is interior, Pettis-Hansen simply concatenates.
    if (A.front() == E.A)
      std::reverse(A.begin(), A.end());
    if (B.back() == E.B)
      std::reverse(B.begin(), B.end());
    mergeInto(CA, std::move(B));
    B.clear();
  }

  // Emit surviving chains by falling total internal weight (heaviest
  // working sets first), deterministic tie-break on the first member.
  std::vector<size_t> Survivors;
  for (size_t C = 0; C != N; ++C)
    if (!Chains[C].empty())
      Survivors.push_back(C);
  auto ChainWeight = [&](size_t C) {
    uint64_t Sum = 0;
    const std::deque<size_t> &Chain = Chains[C];
    for (size_t I = 0; I + 1 < Chain.size(); ++I)
      Sum += Affinity[Chain[I]][Chain[I + 1]];
    return Sum;
  };
  std::sort(Survivors.begin(), Survivors.end(), [&](size_t X, size_t Y) {
    uint64_t WX = ChainWeight(X), WY = ChainWeight(Y);
    if (WX != WY)
      return WX > WY;
    return Chains[X].front() < Chains[Y].front();
  });

  ProcOrder Order;
  Order.reserve(N);
  for (size_t C : Survivors)
    Order.insert(Order.end(), Chains[C].begin(), Chains[C].end());
  assert(Order.size() == N && "PH merge lost a procedure");
  return Order;
}

ProcOrder
balign::tspOrder(const std::vector<std::vector<uint64_t>> &Affinity,
                 const IteratedOptOptions &Options) {
  size_t N = Affinity.size();
  if (N <= 1)
    return originalProcOrder(N);

  uint64_t MaxW = 0;
  for (size_t A = 0; A != N; ++A)
    for (size_t B = 0; B != N; ++B)
      MaxW = std::max(MaxW, Affinity[A][B]);

  DirectedTsp Tsp(N);
  for (size_t A = 0; A != N; ++A)
    for (size_t B = 0; B != N; ++B)
      if (A != B)
        Tsp.setCost(static_cast<City>(A), static_cast<City>(B),
                    static_cast<int64_t>(MaxW - Affinity[A][B]));

  DtspSolution Solution = solveDirectedTsp(Tsp, Options);

  // A tour is cyclic; a placement is linear. Cut the tour at its
  // lightest-affinity adjacency so the break costs the least.
  size_t CutAfter = 0;
  uint64_t CutWeight = ~static_cast<uint64_t>(0);
  for (size_t I = 0; I != N; ++I) {
    size_t A = Solution.Tour[I];
    size_t B = Solution.Tour[(I + 1) % N];
    if (Affinity[A][B] < CutWeight) {
      CutWeight = Affinity[A][B];
      CutAfter = I;
    }
  }
  ProcOrder Order;
  Order.reserve(N);
  for (size_t I = 1; I <= N; ++I)
    Order.push_back(Solution.Tour[(CutAfter + I) % N]);
  return Order;
}

uint64_t balign::adjacentAffinity(
    const ProcOrder &Order,
    const std::vector<std::vector<uint64_t>> &Affinity) {
  uint64_t Sum = 0;
  for (size_t I = 0; I + 1 < Order.size(); ++I)
    Sum += Affinity[Order[I]][Order[I + 1]];
  return Sum;
}
