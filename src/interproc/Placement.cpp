//===- interproc/Placement.cpp ------------------------------------------------------===//

#include "interproc/Placement.h"

#include "sim/Replayer.h"

#include <cassert>
#include <memory>

using namespace balign;

std::vector<uint64_t>
balign::placementBases(const std::vector<MaterializedLayout> &Layouts,
                       const ProcOrder &Order, uint64_t LineBytes) {
  assert(Order.size() == Layouts.size() && "order arity mismatch");
  std::vector<uint64_t> Bases(Layouts.size(), 0);
  uint64_t Address = 0;
  for (size_t Position = 0; Position != Order.size(); ++Position) {
    size_t Proc = Order[Position];
    Bases[Proc] = Address;
    Address += Layouts[Proc].TotalBytes;
    Address = (Address + LineBytes - 1) / LineBytes * LineBytes;
  }
  return Bases;
}

SimResult balign::simulatePlacement(
    const Program &Prog, const std::vector<MaterializedLayout> &Layouts,
    const std::vector<ExecutionTrace> &Traces, const CallSequence &Sequence,
    const ProcOrder &Order, const SimConfig &Config) {
  size_t N = Prog.numProcedures();
  assert(Layouts.size() == N && Traces.size() == N && Order.size() == N &&
         "arity mismatch");

  SimState State(Config);
  std::vector<uint64_t> Bases =
      placementBases(Layouts, Order, Config.Cache.LineBytes);

  std::vector<std::vector<std::pair<size_t, size_t>>> Slices(N);
  std::vector<size_t> NextSlice(N, 0);
  std::vector<std::unique_ptr<TraceReplayer>> Replayers(N);
  for (size_t P = 0; P != N; ++P) {
    Slices[P] = invocationSlices(Prog.proc(P), Traces[P]);
    Replayers[P] = std::make_unique<TraceReplayer>(
        Prog.proc(P), Layouts[P], Bases[P], Config, State);
  }

  for (size_t ProcIdx : Sequence) {
    assert(ProcIdx < N && "call sequence names an unknown procedure");
    if (NextSlice[ProcIdx] >= Slices[ProcIdx].size())
      continue; // Trace exhausted; tolerated for hand-built sequences.
    auto [Begin, End] = Slices[ProcIdx][NextSlice[ProcIdx]++];
    Replayers[ProcIdx]->replayRange(Traces[ProcIdx], Begin, End);
  }

  State.Result.CacheAccesses = State.Cache.accesses();
  State.Result.Cycles = State.Result.BaseCycles +
                        State.Result.ControlPenaltyCycles +
                        State.Result.CacheMissCycles;
  return State.Result;
}

std::vector<uint64_t>
balign::invocationCounts(const Program &Prog,
                         const std::vector<ExecutionTrace> &Traces) {
  std::vector<uint64_t> Counts;
  Counts.reserve(Traces.size());
  for (size_t P = 0; P != Traces.size(); ++P)
    Counts.push_back(invocationSlices(Prog.proc(P), Traces[P]).size());
  return Counts;
}
