//===- interproc/Interleave.cpp -------------------------------------------------===//

#include "interproc/Interleave.h"

#include <algorithm>
#include <cassert>

using namespace balign;

CallSequence
balign::generateCallSequence(const std::vector<uint64_t> &InvocationCounts,
                             const InterleaveOptions &Options) {
  size_t NumProcs = InvocationCounts.size();
  Rng Rand(Options.Seed);

  // Assign procedures to phase clusters.
  unsigned NumClusters = std::max(1u, Options.NumClusters);
  std::vector<unsigned> ClusterOf(NumProcs);
  for (size_t P = 0; P != NumProcs; ++P)
    ClusterOf[P] = static_cast<unsigned>(Rand.nextBelow(NumClusters));

  std::vector<uint64_t> Remaining = InvocationCounts;
  uint64_t TotalRemaining = 0;
  for (uint64_t C : Remaining)
    TotalRemaining += C;

  CallSequence Sequence;
  Sequence.reserve(TotalRemaining);

  // Draw a procedure weighted by its remaining invocations, preferring
  // the current cluster; emit a geometric burst of its invocations.
  double ContinueBurst =
      Options.BurstLength > 1.0 ? 1.0 - 1.0 / Options.BurstLength : 0.0;
  unsigned CurrentCluster = 0;
  while (TotalRemaining != 0) {
    // Occasionally switch phase cluster.
    if (Rand.nextBool(0.1))
      CurrentCluster = static_cast<unsigned>(Rand.nextBelow(NumClusters));

    // Weighted pick: remaining invocations, x4 within the cluster.
    uint64_t WeightSum = 0;
    for (size_t P = 0; P != NumProcs; ++P)
      WeightSum += Remaining[P] * (ClusterOf[P] == CurrentCluster ? 4 : 1);
    if (WeightSum == 0)
      break;
    uint64_t Draw = Rand.nextBelow(WeightSum);
    size_t Pick = 0;
    for (size_t P = 0; P != NumProcs; ++P) {
      uint64_t W = Remaining[P] * (ClusterOf[P] == CurrentCluster ? 4 : 1);
      if (Draw < W) {
        Pick = P;
        break;
      }
      Draw -= W;
    }

    // Burst of invocations of the picked procedure.
    do {
      Sequence.push_back(Pick);
      --Remaining[Pick];
      --TotalRemaining;
    } while (Remaining[Pick] != 0 && Rand.nextBool(ContinueBurst));
  }

  assert(Sequence.size() ==
             [&] {
               uint64_t Sum = 0;
               for (uint64_t C : InvocationCounts)
                 Sum += C;
               return Sum;
             }() &&
         "call sequence must consume every invocation");
  return Sequence;
}

std::vector<std::vector<uint64_t>>
balign::computeAffinity(const CallSequence &Sequence, size_t NumProcs,
                        size_t Window) {
  std::vector<std::vector<uint64_t>> Affinity(
      NumProcs, std::vector<uint64_t>(NumProcs, 0));
  for (size_t I = 0; I != Sequence.size(); ++I) {
    size_t A = Sequence[I];
    assert(A < NumProcs && "call sequence names an unknown procedure");
    size_t End = std::min(Sequence.size(), I + 1 + Window);
    for (size_t J = I + 1; J != End; ++J) {
      size_t B = Sequence[J];
      if (A == B)
        continue;
      ++Affinity[A][B];
      ++Affinity[B][A];
    }
  }
  return Affinity;
}
