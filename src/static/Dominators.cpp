//===- static/Dominators.cpp ----------------------------------------------===//

#include "static/Dominators.h"

#include <algorithm>
#include <cassert>
#include <utility>

using namespace balign;

namespace {

/// Iterative postorder DFS from the entry. Recursion is off the table:
/// generated CFGs nest arbitrarily deep and lint must survive adversarial
/// inputs without blowing the stack.
std::vector<BlockId> postOrder(const Procedure &Proc) {
  std::vector<BlockId> Order;
  if (Proc.numBlocks() == 0)
    return Order;
  std::vector<uint8_t> Visited(Proc.numBlocks(), 0);
  // Each frame is (block, next successor index to explore).
  std::vector<std::pair<BlockId, size_t>> Stack;
  Stack.push_back({Proc.entry(), 0});
  Visited[Proc.entry()] = 1;
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    const std::vector<BlockId> &Succs = Proc.successors(Block);
    if (NextSucc < Succs.size()) {
      BlockId To = Succs[NextSucc++];
      if (!Visited[To]) {
        Visited[To] = 1;
        Stack.push_back({To, 0});
      }
    } else {
      Order.push_back(Block);
      Stack.pop_back();
    }
  }
  return Order;
}

} // namespace

DominatorTree DominatorTree::compute(const Procedure &Proc) {
  DominatorTree Tree;
  size_t N = Proc.numBlocks();
  Tree.Entry = Proc.entry();
  Tree.Idom.assign(N, InvalidBlock);
  Tree.Depth.assign(N, 0);
  Tree.RpoIndex.assign(N, 0);
  if (N == 0)
    return Tree;

  // Reverse postorder over the reachable subgraph.
  Tree.Rpo = postOrder(Proc);
  std::reverse(Tree.Rpo.begin(), Tree.Rpo.end());
  for (unsigned I = 0; I != Tree.Rpo.size(); ++I)
    Tree.RpoIndex[Tree.Rpo[I]] = I;

  // Predecessor lists restricted to reachable blocks (an unreachable
  // predecessor has no dominator information to intersect).
  std::vector<uint8_t> Reach(N, 0);
  for (BlockId B : Tree.Rpo)
    Reach[B] = 1;
  std::vector<std::vector<BlockId>> Preds(N);
  for (BlockId B : Tree.Rpo)
    for (BlockId To : Proc.successors(B))
      if (Reach[To])
        Preds[To].push_back(B);

  // CHK: initialize idom(entry) = entry, iterate intersection in RPO
  // until nothing changes. The "two-finger" intersect climbs the
  // partially built tree using RPO numbers as the ordering.
  Tree.Idom[Tree.Entry] = Tree.Entry;
  auto intersect = [&](BlockId A, BlockId B) {
    while (A != B) {
      while (Tree.RpoIndex[A] > Tree.RpoIndex[B])
        A = Tree.Idom[A];
      while (Tree.RpoIndex[B] > Tree.RpoIndex[A])
        B = Tree.Idom[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : Tree.Rpo) {
      if (B == Tree.Entry)
        continue;
      BlockId NewIdom = InvalidBlock;
      for (BlockId P : Preds[B]) {
        if (Tree.Idom[P] == InvalidBlock)
          continue; // Not yet processed this sweep.
        NewIdom = NewIdom == InvalidBlock ? P : intersect(P, NewIdom);
      }
      // Every reachable non-entry block has a reachable predecessor, and
      // in RPO at least one predecessor precedes B, so the first sweep
      // already finds a candidate.
      assert(NewIdom != InvalidBlock && "reachable block with no idom");
      if (Tree.Idom[B] != NewIdom) {
        Tree.Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }

  // The entry's self-idom was scaffolding for intersect(); the public
  // contract is "no immediate dominator".
  Tree.Idom[Tree.Entry] = InvalidBlock;

  // Depths, in RPO so a block's idom is always numbered first.
  for (BlockId B : Tree.Rpo)
    if (B != Tree.Entry)
      Tree.Depth[B] = Tree.Depth[Tree.Idom[B]] + 1;
  return Tree;
}

bool DominatorTree::dominates(BlockId A, BlockId B) const {
  if (!reachable(B) || !reachable(A))
    return false;
  // Climb B's idom chain to A's depth; equality there decides.
  while (Depth[B] > Depth[A])
    B = Idom[B];
  return A == B;
}
