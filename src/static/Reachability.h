//===- static/Reachability.h - Forward/backward CFG reachability ----------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Forward reachability (from the entry) and backward reachability (to
/// any Return block) over a Procedure. The two bit-vectors partition the
/// blocks into the live core (both), dead code (neither / not forward),
/// and trapped regions (forward-reachable but unable to exit — the
/// infinite-loop smell lint reports). Pure and allocation-light; used by
/// the lint checks and by tests as the brute-force-comparable baseline.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_STATIC_REACHABILITY_H
#define BALIGN_STATIC_REACHABILITY_H

#include "ir/CFG.h"

#include <vector>

namespace balign {

/// Reachability facts for one procedure.
struct Reachability {
  /// FromEntry[B]: a CFG path entry ->* B exists.
  std::vector<bool> FromEntry;

  /// ToExit[B]: a CFG path B ->* some Return block exists.
  std::vector<bool> ToExit;

  /// True when the block is live: reachable from the entry and able to
  /// reach an exit.
  bool live(BlockId B) const { return FromEntry[B] && ToExit[B]; }
};

/// Computes both directions for \p Proc.
Reachability computeReachability(const Procedure &Proc);

} // namespace balign

#endif // BALIGN_STATIC_REACHABILITY_H
