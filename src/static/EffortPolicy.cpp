//===- static/EffortPolicy.cpp --------------------------------------------===//

#include "static/EffortPolicy.h"

#include "static/Dominators.h"
#include "static/Loops.h"

#include <algorithm>

using namespace balign;

const char *balign::effortPolicyName(EffortPolicy Policy) {
  switch (Policy) {
  case EffortPolicy::Uniform:
    return "uniform";
  case EffortPolicy::Scaled:
    return "scaled";
  case EffortPolicy::ScaledColdGreedy:
    return "scaled-cold-greedy";
  }
  return "?";
}

bool balign::parseEffortPolicy(const std::string &Name, EffortPolicy &Out) {
  if (Name == "uniform")
    Out = EffortPolicy::Uniform;
  else if (Name == "scaled")
    Out = EffortPolicy::Scaled;
  else if (Name == "scaled-cold-greedy")
    Out = EffortPolicy::ScaledColdGreedy;
  else
    return false;
  return true;
}

EffortDecision balign::decideEffort(const Procedure &Proc,
                                    const ProcedureProfile &Profile,
                                    const IteratedOptOptions &Base,
                                    EffortPolicy Policy) {
  EffortDecision Decision;
  Decision.Solver = Base;
  if (Policy == EffortPolicy::Uniform)
    return Decision;

  uint64_t Branches = Profile.executedBranches(Proc);
  DominatorTree Dom = DominatorTree::compute(Proc);
  unsigned Depth = LoopInfo::compute(Proc, Dom).maxDepth();

  // Kicks per run scale with where the penalty mass lives: loop-free
  // procedures have little to gain past local search, deep hot nests
  // repay extra exploration. MinIterationsPerRun still floors tiny
  // instances, so halving can never starve them.
  if (Depth == 0)
    Decision.Solver.IterationsFactor = Base.IterationsFactor / 2.0;
  else if (Depth >= 2 && Branches >= HotProcBranchThreshold)
    Decision.Solver.IterationsFactor =
        Base.IterationsFactor * std::min(Depth, 4u);

  if (Policy == EffortPolicy::ScaledColdGreedy &&
      Branches < ColdProcBranchThreshold)
    Decision.GreedyOnly = true;
  return Decision;
}
