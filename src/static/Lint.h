//===- static/Lint.h - The balign-lint check driver -----------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// balign-lint: static analysis of alignment *inputs*, run before any
/// alignment work. Where balign-verify checks that the pipeline's own
/// artifacts are right, lint checks that the program and profile handed
/// to the pipeline deserve to be trusted — dead blocks, profiles that
/// cannot have come from a real run, irreducible or degenerate CFG
/// shapes, and machine models configured inside-out.
///
/// Findings reuse the balign-verify diagnostic substrate: structured
/// Diagnostic records under the stable `lint.*` check IDs of
/// analysis/Diagnostics.h, collected in a DiagnosticEngine, rendered as
/// text or JSON. The severity taxonomy is part of the contract:
///
///   Error   — the profile lies: no real execution produces this data
///             (hot unreachable blocks, saturated or overflow-suspicious
///             counters, flow-conservation violations).
///   Warning — structural anomalies the aligner tolerates but a build
///             system should see (unreachable blocks, irreducible loops,
///             extreme nesting, exit-less loops, self-loop anomalies,
///             suspicious machine models).
///   Note    — advisory (nothing to align in a branch-free procedure;
///             suggested flow repairs).
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_STATIC_LINT_H
#define BALIGN_STATIC_LINT_H

#include "analysis/Diagnostics.h"
#include "ir/CFG.h"
#include "machine/MachineModel.h"
#include "profile/Profile.h"
#include "static/FlowSolver.h"

#include <cstdint>
#include <string>
#include <vector>

namespace balign {

/// Tuning for the lint checks. Defaults are calibrated so every corpus
/// the workload generator emits (and every profile the trace generator
/// collects from one) lints clean.
struct LintOptions {
  /// Counts above this are overflow-suspicious (lint.counter-overflow);
  /// matches balign-verify's penalty-arithmetic headroom screen.
  uint64_t OverflowLimit = 1ull << 56;

  /// Loop nests at least this deep draw lint.deep-nest.
  unsigned DeepNestDepth = 8;
};

/// Everything one lint run produced.
struct LintResult {
  /// The findings, in deterministic program/procedure/check order.
  DiagnosticEngine Diags;

  /// Individual check evaluations performed (the lint.checks counter).
  size_t ChecksRun = 0;

  /// True when a profile was supplied and the profile checks ran.
  bool Profiled = false;

  /// Per-procedure flow verdicts, parallel to the program's procedure
  /// list; empty unless Profiled.
  std::vector<ProfileClass> ProcClasses;

  /// Procedure names, parallel to ProcClasses (for report rendering).
  std::vector<std::string> ProcNames;

  /// True when any finding is at least as severe as \p Min — the
  /// --lint=err exit-code predicate.
  bool failedAt(Severity Min) const;

  /// Worst flow verdict over all procedures (Consistent when unprofiled).
  ProfileClass worstClass() const;
};

/// Lints one procedure (with \p Profile null, structural checks only)
/// into \p Diags. Returns the number of check evaluations performed.
/// \p ProcClass, when non-null, receives the flow verdict (Consistent
/// when no profile was supplied).
size_t lintProcedure(const Procedure &Proc, const ProcedureProfile *Profile,
                     const LintOptions &Opts, DiagnosticEngine &Diags,
                     ProfileClass *ProcClass = nullptr);

/// Lints a whole program: every procedure, plus the machine-model screen
/// when \p Model is non-null. \p Profile may be null (structural checks
/// only). Deterministic: byte-identical reports for identical inputs,
/// independent of thread count (lint itself is single-threaded and runs
/// before the parallel pipeline).
LintResult lintProgram(const Program &Prog, const ProgramProfile *Profile,
                       const MachineModel *Model,
                       const LintOptions &Opts = LintOptions());

/// Renders \p Result as one JSON object (schema documented in DESIGN.md
/// §13): {"version", "summary", "classes", "findings"}. Stable field
/// order; byte-identical for identical results.
std::string lintReportJson(const LintResult &Result);

} // namespace balign

#endif // BALIGN_STATIC_LINT_H
