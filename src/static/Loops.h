//===- static/Loops.h - Natural loops, nesting, irreducibility ------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection over the dominator tree: a back edge is an edge
/// u -> h whose target dominates its source; its natural loop is h plus
/// every block that reaches u without passing through h. Loops sharing a
/// header are merged (one Loop per header, like LLVM's LoopInfo), nesting
/// is derived from body containment, and per-block nesting depth feeds
/// the profile-guided effort policy (hot deep loops deserve the full
/// solver protocol; flat cold code does not).
///
/// Irreducibility is detected separately: a DFS retreating edge whose
/// target does *not* dominate its source closes a cycle with multiple
/// entry points. The 1997 reduction itself is indifferent, but both the
/// greedy aligner's loop heuristics and any future hot/cold splitting
/// assume reducible regions, so lint surfaces them.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_STATIC_LOOPS_H
#define BALIGN_STATIC_LOOPS_H

#include "ir/CFG.h"
#include "static/Dominators.h"

#include <utility>
#include <vector>

namespace balign {

/// One natural loop (all back edges sharing one header, merged).
struct Loop {
  BlockId Header = InvalidBlock;

  /// Member blocks including the header, sorted ascending.
  std::vector<BlockId> Blocks;

  /// The back edges (latch -> header) defining the loop, in canonical
  /// edge-enumeration order.
  std::vector<std::pair<BlockId, BlockId>> BackEdges;

  /// Nesting depth: 1 for outermost loops.
  unsigned Depth = 1;

  /// Index of the innermost enclosing loop in LoopInfo::Loops, or -1.
  int Parent = -1;

  /// True when some member block has a successor outside the loop.
  bool HasExit = false;

  bool contains(BlockId B) const;
};

/// All loops of one procedure plus per-block nesting facts.
struct LoopInfo {
  /// Loops ordered by header RPO index (outer loops before the loops
  /// they contain); deterministic for a given CFG.
  std::vector<Loop> Loops;

  /// Per block: index into Loops of the innermost containing loop, -1
  /// when the block is in no loop.
  std::vector<int> InnermostLoop;

  /// Per block: number of loops containing it (0 = straight-line code).
  std::vector<unsigned> LoopDepth;

  /// Retreating DFS edges whose target does not dominate their source:
  /// each one certifies an irreducible (multi-entry) cycle. Empty for
  /// the structured CFGs the workload generator emits.
  std::vector<std::pair<BlockId, BlockId>> IrreducibleEdges;

  /// Computes loops for \p Proc given its dominator tree.
  static LoopInfo compute(const Procedure &Proc, const DominatorTree &Dom);

  /// Deepest nesting depth over all blocks (0 when loop-free).
  unsigned maxDepth() const;
};

} // namespace balign

#endif // BALIGN_STATIC_LOOPS_H
