//===- static/Loops.cpp ---------------------------------------------------===//

#include "static/Loops.h"

#include <algorithm>
#include <map>

using namespace balign;

bool Loop::contains(BlockId B) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), B);
}

unsigned LoopInfo::maxDepth() const {
  unsigned Max = 0;
  for (unsigned D : LoopDepth)
    Max = std::max(Max, D);
  return Max;
}

namespace {

/// Classifies every edge of the reachable subgraph with one iterative
/// DFS: an edge u -> v explored while v is still on the DFS stack is
/// retreating (it closes a cycle).
std::vector<std::pair<BlockId, BlockId>>
retreatingEdges(const Procedure &Proc) {
  std::vector<std::pair<BlockId, BlockId>> Result;
  size_t N = Proc.numBlocks();
  if (N == 0)
    return Result;
  enum : uint8_t { White, OnStack, Done };
  std::vector<uint8_t> Color(N, White);
  std::vector<std::pair<BlockId, size_t>> Stack;
  Stack.push_back({Proc.entry(), 0});
  Color[Proc.entry()] = OnStack;
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    const std::vector<BlockId> &Succs = Proc.successors(Block);
    if (NextSucc < Succs.size()) {
      BlockId To = Succs[NextSucc++];
      if (Color[To] == White) {
        Color[To] = OnStack;
        Stack.push_back({To, 0});
      } else if (Color[To] == OnStack) {
        Result.push_back({Block, To});
      }
    } else {
      Color[Block] = Done;
      Stack.pop_back();
    }
  }
  // Canonical order regardless of DFS discovery order.
  std::sort(Result.begin(), Result.end());
  return Result;
}

} // namespace

LoopInfo LoopInfo::compute(const Procedure &Proc, const DominatorTree &Dom) {
  LoopInfo Info;
  size_t N = Proc.numBlocks();
  Info.InnermostLoop.assign(N, -1);
  Info.LoopDepth.assign(N, 0);
  if (N == 0)
    return Info;

  std::vector<std::vector<BlockId>> Preds = Proc.computePredecessors();

  // Split the retreating edges: target-dominates-source ones are natural
  // back edges, the rest certify irreducibility. Using retreating edges
  // (rather than scanning all edges for the dominance test) keeps a
  // forward edge into an already-visited block from being misread.
  std::map<BlockId, Loop> ByHeader; // Header -> loop under construction.
  for (auto [U, H] : retreatingEdges(Proc)) {
    if (!Dom.dominates(H, U)) {
      Info.IrreducibleEdges.push_back({U, H});
      continue;
    }
    Loop &L = ByHeader[H];
    L.Header = H;
    L.BackEdges.push_back({U, H});
  }

  // Natural-loop body: backward closure from every latch, stopping at
  // the header.
  for (auto &[Header, L] : ByHeader) {
    std::vector<uint8_t> InLoop(N, 0);
    InLoop[Header] = 1;
    std::vector<BlockId> Worklist;
    for (auto [Latch, H] : L.BackEdges) {
      (void)H;
      if (!InLoop[Latch]) {
        InLoop[Latch] = 1;
        Worklist.push_back(Latch);
      }
    }
    while (!Worklist.empty()) {
      BlockId B = Worklist.back();
      Worklist.pop_back();
      for (BlockId P : Preds[B])
        if (Dom.reachable(P) && !InLoop[P]) {
          InLoop[P] = 1;
          Worklist.push_back(P);
        }
    }
    for (BlockId B = 0; B != N; ++B)
      if (InLoop[B])
        L.Blocks.push_back(B);
    for (BlockId B : L.Blocks)
      for (BlockId To : Proc.successors(B))
        if (!InLoop[To])
          L.HasExit = true;
  }

  // Emit loops ordered by header RPO index: dominator-tree ancestors
  // come first in RPO, so an outer loop always precedes the loops its
  // body contains, and parent links below can search backward.
  Info.Loops.reserve(ByHeader.size());
  for (auto &[Header, L] : ByHeader) {
    (void)Header;
    Info.Loops.push_back(std::move(L));
  }
  std::sort(Info.Loops.begin(), Info.Loops.end(),
            [&Dom](const Loop &A, const Loop &B) {
              return Dom.rpoIndex(A.Header) < Dom.rpoIndex(B.Header);
            });

  // Nesting: loop A contains loop B iff A holds B's header (natural
  // loops with distinct headers either nest or are disjoint). The
  // innermost container is the latest preceding loop holding the header.
  for (size_t I = 0; I != Info.Loops.size(); ++I) {
    Loop &L = Info.Loops[I];
    for (size_t J = I; J-- != 0;) {
      if (Info.Loops[J].contains(L.Header)) {
        L.Parent = static_cast<int>(J);
        L.Depth = Info.Loops[J].Depth + 1;
        break;
      }
    }
  }

  // Per-block facts: the innermost loop of B is the deepest loop holding
  // it; its depth is that loop's depth.
  for (size_t I = 0; I != Info.Loops.size(); ++I)
    for (BlockId B : Info.Loops[I].Blocks)
      if (Info.InnermostLoop[B] < 0 ||
          Info.Loops[Info.InnermostLoop[B]].Depth <= Info.Loops[I].Depth) {
        Info.InnermostLoop[B] = static_cast<int>(I);
        Info.LoopDepth[B] = Info.Loops[I].Depth;
      }
  return Info;
}
