//===- static/FlowSolver.cpp ----------------------------------------------===//

#include "static/FlowSolver.h"

#include <string>

using namespace balign;

const char *balign::profileClassName(ProfileClass C) {
  switch (C) {
  case ProfileClass::Consistent:
    return "consistent";
  case ProfileClass::Repairable:
    return "repairable";
  case ProfileClass::Contradictory:
    return "contradictory";
  }
  return "?";
}

namespace {

// Sums of many uint64 counts can exceed 64 bits before the contradiction
// is noticed; accumulate wider so wrap-around cannot fake a balance.
using WideSum = unsigned __int128;

/// One conservation equation: the counts of Edges must sum to Target
/// (or stay <= Target for the entry-inflow inequality).
struct Equation {
  BlockId Block = InvalidBlock;
  bool Inflow = false;
  bool UpperBoundOnly = false; ///< Entry inflow: <= instead of ==.
  uint64_t Target = 0;
  std::vector<size_t> Edges; ///< Flat edge indices, canonical order.
};

std::string edgeName(const Procedure &Proc, BlockId From, size_t Succ) {
  return "edge " + std::to_string(From) + "->" +
         std::to_string(Proc.successors(From)[Succ]);
}

} // namespace

FlowAnalysis balign::analyzeFlow(const Procedure &Proc,
                                 const ProcedureProfile &Profile,
                                 const EdgeMask *Known) {
  FlowAnalysis Result;
  Result.Repaired = Profile;
  if (!Profile.shapeMatches(Proc)) {
    Result.Class = ProfileClass::Contradictory;
    Result.Contradiction = "profile shape does not match the procedure";
    return Result;
  }
  size_t N = Proc.numBlocks();

  // Flatten (From, SuccIndex) into one edge index space.
  std::vector<size_t> EdgeBase(N + 1, 0);
  for (BlockId B = 0; B != N; ++B)
    EdgeBase[B + 1] = EdgeBase[B] + Proc.successors(B).size();
  size_t NumEdges = EdgeBase[N];
  auto edgeFrom = [&](size_t E) {
    BlockId B = 0;
    while (EdgeBase[B + 1] <= E)
      ++B;
    return B;
  };

  // Which edges are variables, and the working value of every edge.
  std::vector<uint8_t> IsUnknown(NumEdges, 0);
  std::vector<uint8_t> IsSet(NumEdges, 0);
  std::vector<uint64_t> Value(NumEdges, 0);
  for (BlockId B = 0; B != N; ++B)
    for (size_t S = 0; S != Proc.successors(B).size(); ++S) {
      size_t E = EdgeBase[B] + S;
      uint64_t Given = Profile.EdgeCounts[B][S];
      bool Unknown;
      if (Known)
        Unknown = !(*Known)[B][S];
      else
        Unknown = Given == 0 && Profile.BlockCounts[B] != 0 &&
                  Profile.BlockCounts[Proc.successors(B)[S]] != 0;
      IsUnknown[E] = Unknown;
      IsSet[E] = !Unknown;
      Value[E] = Unknown ? 0 : Given;
    }

  // Violations of the profile exactly as given (mirrors the strict form
  // of balign-verify's profile-flow pass; outflow deficits are reported
  // too, since lint has no truncation-slack escape hatch).
  {
    std::vector<WideSum> Inflow(N, 0);
    for (BlockId B = 0; B != N; ++B)
      for (size_t S = 0; S != Proc.successors(B).size(); ++S)
        Inflow[Proc.successors(B)[S]] += Profile.EdgeCounts[B][S];
    for (BlockId B = 0; B != N; ++B) {
      uint64_t Count = Profile.BlockCounts[B];
      bool EntryOk = B == Proc.entry() && Inflow[B] <= Count;
      if (!EntryOk && Inflow[B] != Count)
        Result.Violations.push_back(
            {B, /*Inflow=*/true,
             static_cast<uint64_t>(Inflow[B] > (~WideSum(0) >> 64)
                                       ? ~uint64_t(0)
                                       : Inflow[B]),
             Count});
      if (Proc.block(B).Kind == TerminatorKind::Return)
        continue;
      WideSum Out = 0;
      for (uint64_t EC : Profile.EdgeCounts[B])
        Out += EC;
      if (Out != Count)
        Result.Violations.push_back(
            {B, /*Inflow=*/false,
             static_cast<uint64_t>(Out > (~WideSum(0) >> 64) ? ~uint64_t(0)
                                                             : Out),
             Count});
    }
  }

  // Build the equation system: one OUT equation per non-Return block, one
  // IN equation per block (the entry's is an upper bound only).
  std::vector<Equation> Eqs;
  for (BlockId B = 0; B != N; ++B) {
    if (Proc.block(B).Kind != TerminatorKind::Return) {
      Equation Out;
      Out.Block = B;
      Out.Target = Profile.BlockCounts[B];
      for (size_t S = 0; S != Proc.successors(B).size(); ++S)
        Out.Edges.push_back(EdgeBase[B] + S);
      Eqs.push_back(std::move(Out));
    }
  }
  {
    std::vector<std::vector<size_t>> InEdges(N);
    for (BlockId B = 0; B != N; ++B)
      for (size_t S = 0; S != Proc.successors(B).size(); ++S)
        InEdges[Proc.successors(B)[S]].push_back(EdgeBase[B] + S);
    for (BlockId B = 0; B != N; ++B) {
      Equation In;
      In.Block = B;
      In.Inflow = true;
      In.UpperBoundOnly = B == Proc.entry();
      In.Target = Profile.BlockCounts[B];
      In.Edges = std::move(InEdges[B]);
      Eqs.push_back(std::move(In));
    }
  }

  auto contradict = [&](const std::string &Msg) {
    Result.Class = ProfileClass::Contradictory;
    if (Result.Contradiction.empty())
      Result.Contradiction = Msg;
  };

  // Single-unknown propagation to a fixpoint: any equality with exactly
  // one unset edge determines it. Round-based ascending scans keep the
  // result independent of discovery order.
  auto propagate = [&]() {
    bool Changed = true;
    while (Changed && Result.Class != ProfileClass::Contradictory) {
      Changed = false;
      for (const Equation &Eq : Eqs) {
        if (Eq.UpperBoundOnly)
          continue;
        WideSum KnownSum = 0;
        size_t Unset = 0, Last = 0;
        for (size_t E : Eq.Edges) {
          if (IsSet[E])
            KnownSum += Value[E];
          else {
            ++Unset;
            Last = E;
          }
        }
        if (Unset == 1) {
          if (KnownSum > Eq.Target) {
            contradict((Eq.Inflow ? "inflow of block " : "outflow of block ") +
                       std::to_string(Eq.Block) + " already exceeds count " +
                       std::to_string(Eq.Target) +
                       "; no value for the missing " +
                       edgeName(Proc, edgeFrom(Last), Last - EdgeBase[edgeFrom(Last)]) +
                       " can balance it");
            return;
          }
          IsSet[Last] = 1;
          Value[Last] = static_cast<uint64_t>(Eq.Target - KnownSum);
          Changed = true;
        }
      }
    }
  };

  propagate();

  // Underdetermined residue: hand each still-open OUT equation its full
  // residual on the lowest-numbered open edge, zero its siblings, then
  // re-propagate. Every unknown edge leaves a non-Return block, so this
  // pass settles all of them.
  for (size_t I = 0; I != Eqs.size() &&
                     Result.Class != ProfileClass::Contradictory;
       ++I) {
    const Equation &Eq = Eqs[I];
    if (Eq.Inflow)
      continue;
    WideSum KnownSum = 0;
    size_t First = NumEdges;
    bool Any = false;
    for (size_t E : Eq.Edges) {
      if (IsSet[E])
        KnownSum += Value[E];
      else {
        Any = true;
        if (E < First)
          First = E;
      }
    }
    if (!Any)
      continue;
    if (KnownSum > Eq.Target) {
      contradict("outflow of block " + std::to_string(Eq.Block) +
                 " already exceeds count " + std::to_string(Eq.Target));
      break;
    }
    for (size_t E : Eq.Edges)
      if (!IsSet[E]) {
        IsSet[E] = 1;
        Value[E] = E == First ? static_cast<uint64_t>(Eq.Target - KnownSum) : 0;
      }
    propagate();
  }

  // Final audit: with everything assigned, every equation must hold.
  if (Result.Class != ProfileClass::Contradictory)
    for (const Equation &Eq : Eqs) {
      WideSum Sum = 0;
      for (size_t E : Eq.Edges)
        Sum += Value[E];
      bool Ok = Eq.UpperBoundOnly ? Sum <= Eq.Target : Sum == Eq.Target;
      if (!Ok) {
        contradict((Eq.Inflow ? "inflow " : "outflow ") +
                   std::to_string(static_cast<uint64_t>(
                       Sum > (~WideSum(0) >> 64) ? ~uint64_t(0) : Sum)) +
                   (Eq.UpperBoundOnly ? " exceeds count " : " != count ") +
                   std::to_string(Eq.Target) + " at block " +
                   std::to_string(Eq.Block) +
                   " under every assignment of the missing counts");
        break;
      }
    }

  // Repairs: unknown edges whose reconstructed value differs from the
  // given count. A consistent profile reconstructs to itself.
  for (BlockId B = 0; B != N; ++B)
    for (size_t S = 0; S != Proc.successors(B).size(); ++S) {
      size_t E = EdgeBase[B] + S;
      if (!IsUnknown[E])
        continue;
      Result.Repaired.EdgeCounts[B][S] = Value[E];
      if (Value[E] != Profile.EdgeCounts[B][S])
        Result.Repairs.push_back({B, S, Proc.successors(B)[S], Value[E]});
    }

  if (Result.Class != ProfileClass::Contradictory)
    Result.Class = Result.Violations.empty() ? ProfileClass::Consistent
                                             : ProfileClass::Repairable;
  return Result;
}
