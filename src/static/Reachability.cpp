//===- static/Reachability.cpp --------------------------------------------===//

#include "static/Reachability.h"

using namespace balign;

Reachability balign::computeReachability(const Procedure &Proc) {
  size_t N = Proc.numBlocks();
  Reachability R;
  R.FromEntry.assign(N, false);
  R.ToExit.assign(N, false);
  if (N == 0)
    return R;

  // Forward: worklist BFS from the entry.
  std::vector<BlockId> Worklist;
  R.FromEntry[Proc.entry()] = true;
  Worklist.push_back(Proc.entry());
  while (!Worklist.empty()) {
    BlockId B = Worklist.back();
    Worklist.pop_back();
    for (BlockId To : Proc.successors(B))
      if (!R.FromEntry[To]) {
        R.FromEntry[To] = true;
        Worklist.push_back(To);
      }
  }

  // Backward: BFS over reversed edges seeded at every Return block.
  std::vector<std::vector<BlockId>> Preds = Proc.computePredecessors();
  for (BlockId B = 0; B != N; ++B)
    if (Proc.block(B).Kind == TerminatorKind::Return) {
      R.ToExit[B] = true;
      Worklist.push_back(B);
    }
  while (!Worklist.empty()) {
    BlockId B = Worklist.back();
    Worklist.pop_back();
    for (BlockId From : Preds[B])
      if (!R.ToExit[From]) {
        R.ToExit[From] = true;
        Worklist.push_back(From);
      }
  }
  return R;
}
