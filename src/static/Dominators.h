//===- static/Dominators.h - CHK dominator tree ---------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The dominator tree of a Procedure's CFG, computed with the
/// Cooper-Harvey-Kennedy iterative algorithm ("A Simple, Fast Dominance
/// Algorithm"): number the blocks in reverse postorder, then iterate
/// two-finger idom intersection to a fixpoint. On the small, shallow
/// CFGs the alignment pipeline sees this beats Lengauer-Tarjan on both
/// code size and constant factor, and the RPO numbering it produces is
/// reused by the loop and flow analyses.
///
/// This is the foundation layer of balign-lint (src/static): every
/// analysis here runs *before* alignment, never mutates its inputs, and
/// is a pure function of the Procedure — so lint runs cannot perturb
/// alignment results by construction.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_STATIC_DOMINATORS_H
#define BALIGN_STATIC_DOMINATORS_H

#include "ir/CFG.h"

#include <vector>

namespace balign {

/// Immediate-dominator tree over a procedure's CFG. Blocks unreachable
/// from the entry have no dominator information (reachable() is false
/// and idom() is InvalidBlock); callers that care run reachability or
/// lint first.
class DominatorTree {
public:
  /// Computes the tree for \p Proc. Always succeeds; unreachable blocks
  /// simply stay outside the tree.
  static DominatorTree compute(const Procedure &Proc);

  /// The immediate dominator of \p B, or InvalidBlock for the entry and
  /// for unreachable blocks.
  BlockId idom(BlockId B) const { return Idom[B]; }

  /// True when \p B is reachable from the entry (equivalently: in the
  /// dominator tree).
  bool reachable(BlockId B) const {
    return B == Entry || Idom[B] != InvalidBlock;
  }

  /// True when \p A dominates \p B (reflexively: every block dominates
  /// itself). False whenever \p B is unreachable.
  bool dominates(BlockId A, BlockId B) const;

  /// True when \p A strictly dominates \p B.
  bool strictlyDominates(BlockId A, BlockId B) const {
    return A != B && dominates(A, B);
  }

  /// Depth of \p B in the dominator tree (entry = 0); 0 for unreachable
  /// blocks, which are not in the tree.
  unsigned depth(BlockId B) const { return Depth[B]; }

  /// The blocks reachable from the entry in reverse postorder. The
  /// entry is always first; this is the canonical iteration order for
  /// the forward dataflow analyses built on top.
  const std::vector<BlockId> &reversePostOrder() const { return Rpo; }

  /// Position of \p B in reversePostOrder(); undefined for unreachable
  /// blocks.
  unsigned rpoIndex(BlockId B) const { return RpoIndex[B]; }

private:
  BlockId Entry = 0;
  std::vector<BlockId> Idom;      ///< Per block; InvalidBlock = none.
  std::vector<unsigned> Depth;    ///< Tree depth; entry and unreachable 0.
  std::vector<BlockId> Rpo;       ///< Reachable blocks, reverse postorder.
  std::vector<unsigned> RpoIndex; ///< Block -> position in Rpo.
};

} // namespace balign

#endif // BALIGN_STATIC_DOMINATORS_H
