//===- static/FlowSolver.h - Profile flow reconstruction ------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The profile dataflow analysis of balign-lint: given a procedure and
/// an edge profile, reconstruct missing edge counts from Kirchhoff flow
/// conservation and classify the profile as consistent, repairable, or
/// contradictory.
///
/// The conservation law is the one the trace model fixes (and that
/// balign-verify's profile-flow pass checks post-hoc): an invocation
/// enters at the entry and leaves through a Return, so for every block B
///
///   sum of in-edge counts  == BlockCounts[B]   (B != entry; the entry
///                                               absorbs one external
///                                               arrival per invocation,
///                                               so inflow <= count)
///   sum of out-edge counts == BlockCounts[B]   (non-Return B)
///
/// Unknown edges — those an explicit mask marks missing, or (by default)
/// those recorded as zero while their endpoints executed — are treated
/// as variables and solved by single-unknown propagation: any equation
/// with exactly one unknown determines it; solved values enable further
/// equations, to a fixpoint. Residuals that no unknown can absorb, a
/// derived negative value, or two equations disagreeing about one edge
/// prove the profile contradictory. Underdetermined residual is assigned
/// greedily to the lowest-numbered unknown of its equation, so the
/// reconstruction is total and deterministic — lint's "suggested repair"
/// must not depend on hash order or scheduling.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_STATIC_FLOWSOLVER_H
#define BALIGN_STATIC_FLOWSOLVER_H

#include "ir/CFG.h"
#include "profile/Profile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace balign {

/// Verdict of the flow analysis on one procedure's profile.
enum class ProfileClass : uint8_t {
  Consistent,    ///< Conservation holds everywhere as given.
  Repairable,    ///< Violations exist but a non-negative assignment of
                 ///< the unknown edges restores conservation.
  Contradictory, ///< No assignment of the unknowns can balance the flow.
};

/// Returns "consistent", "repairable", or "contradictory".
const char *profileClassName(ProfileClass C);

/// One reconstructed edge count: the suggested repair for the edge
/// From -> its SuccIndex-th successor.
struct FlowRepair {
  BlockId From = InvalidBlock;
  size_t SuccIndex = 0;
  BlockId To = InvalidBlock;
  uint64_t Count = 0; ///< The value restoring conservation.
};

/// One conservation violation in the profile as given.
struct FlowViolation {
  BlockId Block = InvalidBlock;
  bool Inflow = false; ///< True: in-edge side; false: out-edge side.
  uint64_t Have = 0;   ///< Sum of the given edge counts.
  uint64_t Want = 0;   ///< The block count the sum must meet.
};

/// The full result of analyzing one procedure's profile.
struct FlowAnalysis {
  ProfileClass Class = ProfileClass::Consistent;

  /// Conservation violations of the profile exactly as given (before
  /// reconstruction), in ascending block order.
  std::vector<FlowViolation> Violations;

  /// Deterministic assignments to unknown edges that restore (or move
  /// toward) conservation. Meaningful unless Class is Contradictory.
  std::vector<FlowRepair> Repairs;

  /// The profile with Repairs applied. Flow-consistent when Class is
  /// Consistent or Repairable; best-effort otherwise.
  ProcedureProfile Repaired;

  /// Human-readable account of the first contradiction, empty otherwise.
  std::string Contradiction;
};

/// Per-edge known/unknown mask, shaped like ProcedureProfile::EdgeCounts.
using EdgeMask = std::vector<std::vector<bool>>;

/// Analyzes \p Profile against \p Proc. With \p Known null, an edge is
/// unknown iff its count is zero while both endpoints have nonzero block
/// counts (the stale-profile signature); with a mask, exactly the edges
/// it marks false are unknown (their given counts are ignored). The
/// profile must be shaped like the procedure (callers screen shape
/// first; LintEngine does).
FlowAnalysis analyzeFlow(const Procedure &Proc,
                         const ProcedureProfile &Profile,
                         const EdgeMask *Known = nullptr);

} // namespace balign

#endif // BALIGN_STATIC_FLOWSOLVER_H
