//===- static/Lint.cpp ----------------------------------------------------===//

#include "static/Lint.h"

#include "objective/Displace.h"
#include "static/Dominators.h"
#include "static/Loops.h"
#include "static/Reachability.h"
#include "trace/Scope.h"

#include <cstdio>
#include <limits>
#include <sstream>

using namespace balign;

static const char PassName[] = "lint";

bool LintResult::failedAt(Severity Min) const {
  switch (Min) {
  case Severity::Error:
    return Diags.errorCount() != 0;
  case Severity::Warning:
    return Diags.errorCount() != 0 || Diags.warningCount() != 0;
  case Severity::Note:
    return !Diags.diagnostics().empty();
  }
  return false;
}

ProfileClass LintResult::worstClass() const {
  ProfileClass Worst = ProfileClass::Consistent;
  for (ProfileClass C : ProcClasses)
    if (static_cast<uint8_t>(C) > static_cast<uint8_t>(Worst))
      Worst = C;
  return Worst;
}

namespace {

/// Structural checks: reachability, loop shape, CFG degeneracies.
/// Returns the number of check evaluations.
size_t lintStructure(const Procedure &Proc, const Reachability &Reach,
                     const LoopInfo &Loops, const LintOptions &Opts,
                     DiagnosticEngine &Diags) {
  const std::string &Name = Proc.getName();
  size_t N = Proc.numBlocks();

  // lint.unreachable-block: dead code distorts the DTSP instance (the
  // dummy-city tour must still place it) for no dynamic benefit.
  for (BlockId B = 0; B != N; ++B)
    if (!Reach.FromEntry[B])
      Diags.report(Severity::Warning, CheckId::LintUnreachableBlock, PassName,
                   DiagLocation::block(Name, B),
                   "block is unreachable from the entry");

  // lint.irreducible-loop: a retreating edge into a cycle the edge's
  // target does not dominate — a second entry into the loop.
  for (auto [U, H] : Loops.IrreducibleEdges)
    Diags.report(Severity::Warning, CheckId::LintIrreducibleLoop, PassName,
                 DiagLocation::edge(Name, U, H),
                 "retreating edge closes an irreducible (multi-entry) "
                 "cycle: " +
                     std::to_string(H) + " does not dominate " +
                     std::to_string(U));

  // lint.deep-nest: one finding per procedure, at the deepest header.
  unsigned MaxDepth = Loops.maxDepth();
  if (MaxDepth >= Opts.DeepNestDepth)
    for (const Loop &L : Loops.Loops)
      if (L.Depth == MaxDepth) {
        Diags.report(Severity::Warning, CheckId::LintDeepNest, PassName,
                     DiagLocation::block(Name, L.Header),
                     "loop nest reaches depth " + std::to_string(MaxDepth) +
                         " (threshold " + std::to_string(Opts.DeepNestDepth) +
                         ")");
        break;
      }

  // lint.no-loop-exit: a loop no member block can leave traps execution.
  for (const Loop &L : Loops.Loops)
    if (!L.HasExit)
      Diags.report(Severity::Warning, CheckId::LintNoLoopExit, PassName,
                   DiagLocation::block(Name, L.Header),
                   "loop with header " + std::to_string(L.Header) + " (" +
                       std::to_string(L.Blocks.size()) +
                       " blocks) has no exit edge");

  // lint.self-loop (structural half): an unconditional block whose only
  // successor is itself can never terminate once entered.
  for (BlockId B = 0; B != N; ++B) {
    const std::vector<BlockId> &Succs = Proc.successors(B);
    if (Succs.size() == 1 && Succs[0] == B)
      Diags.report(Severity::Warning, CheckId::LintSelfLoop, PassName,
                   DiagLocation::block(Name, B),
                   "unconditional self-loop: the block's only successor "
                   "is itself");
  }

  // lint.linear-cfg: nothing for branch alignment to improve.
  bool AnyBranch = false;
  for (BlockId B = 0; B != N && !AnyBranch; ++B)
    AnyBranch = Proc.block(B).Kind == TerminatorKind::Conditional ||
                Proc.block(B).Kind == TerminatorKind::Multiway;
  if (!AnyBranch)
    Diags.report(Severity::Note, CheckId::LintLinearCfg, PassName,
                 DiagLocation::procedure(Name),
                 "procedure has no conditional or multiway branch; "
                 "alignment cannot change its penalty");

  return 6;
}

/// Profile checks: counter sanity, dead-but-hot blocks, flow
/// conservation with suggested repairs. Returns check evaluations.
size_t lintProfile(const Procedure &Proc, const ProcedureProfile &Profile,
                   const Reachability &Reach, const LintOptions &Opts,
                   DiagnosticEngine &Diags, ProfileClass &Class) {
  const std::string &Name = Proc.getName();
  size_t N = Proc.numBlocks();

  if (!Profile.shapeMatches(Proc)) {
    Class = ProfileClass::Contradictory;
    Diags.report(Severity::Error, CheckId::LintFlowContradictory, PassName,
                 DiagLocation::procedure(Name),
                 "profile shape does not match the procedure; no flow "
                 "analysis is possible");
    return 1;
  }

  constexpr uint64_t Saturated = std::numeric_limits<uint64_t>::max();
  auto checkCount = [&](uint64_t Count, DiagLocation Loc, const char *What) {
    // lint.counter-saturated: the all-ones signature of a wrapped or
    // clamped hardware counter; lint.counter-overflow: magnitudes the
    // penalty arithmetic has no headroom for.
    if (Count == Saturated)
      Diags.report(Severity::Error, CheckId::LintCounterSaturated, PassName,
                   std::move(Loc),
                   std::string(What) + " count is saturated (2^64-1)");
    else if (Count > Opts.OverflowLimit)
      Diags.report(Severity::Error, CheckId::LintCounterOverflow, PassName,
                   std::move(Loc),
                   std::string(What) + " count " + std::to_string(Count) +
                       " exceeds the overflow screen of 2^56");
  };
  for (BlockId B = 0; B != N; ++B) {
    checkCount(Profile.BlockCounts[B], DiagLocation::block(Name, B), "block");
    for (size_t S = 0; S != Profile.EdgeCounts[B].size(); ++S)
      checkCount(Profile.EdgeCounts[B][S],
                 DiagLocation::edge(Name, B, Proc.successors(B)[S]), "edge");
  }

  // lint.unreachable-hot: a counted block no CFG path reaches — the
  // profile describes a different program (stale profile).
  for (BlockId B = 0; B != N; ++B)
    if (!Reach.FromEntry[B] && Profile.BlockCounts[B] != 0)
      Diags.report(Severity::Error, CheckId::LintUnreachableHot, PassName,
                   DiagLocation::block(Name, B),
                   "unreachable block carries count " +
                       std::to_string(Profile.BlockCounts[B]) +
                       "; the profile cannot come from this CFG");

  // lint.self-loop (profile half): a self-loop taken on every execution
  // of its block never exits, yet the profile claims the run finished.
  for (BlockId B = 0; B != N; ++B) {
    const std::vector<BlockId> &Succs = Proc.successors(B);
    for (size_t S = 0; S != Succs.size(); ++S)
      if (Succs[S] == B && Succs.size() > 1 && Profile.BlockCounts[B] != 0 &&
          Profile.EdgeCounts[B][S] == Profile.BlockCounts[B])
        Diags.report(Severity::Warning, CheckId::LintSelfLoop, PassName,
                     DiagLocation::block(Name, B),
                     "self-loop edge is taken on all " +
                         std::to_string(Profile.BlockCounts[B]) +
                         " executions; the block can never have exited");
  }

  // Flow conservation: violations, verdict, suggested repairs.
  FlowAnalysis Flow = analyzeFlow(Proc, Profile);
  Class = Flow.Class;
  for (const FlowViolation &V : Flow.Violations)
    Diags.report(Severity::Error, CheckId::LintFlowImbalance, PassName,
                 DiagLocation::block(Name, V.Block),
                 std::string(V.Inflow ? "inflow " : "outflow ") +
                     std::to_string(V.Have) +
                     (V.Have > V.Want ? " exceeds" : " falls short of") +
                     " block count " + std::to_string(V.Want));
  if (Flow.Class == ProfileClass::Contradictory) {
    Diags.report(Severity::Error, CheckId::LintFlowContradictory, PassName,
                 DiagLocation::procedure(Name),
                 "profile is contradictory: " + Flow.Contradiction);
  } else if (Flow.Class == ProfileClass::Repairable) {
    for (const FlowRepair &R : Flow.Repairs)
      Diags.report(Severity::Note, CheckId::LintFlowRepair, PassName,
                   DiagLocation::edge(Name, R.From, R.To),
                   "setting this edge count to " + std::to_string(R.Count) +
                       " restores flow conservation");
    scopeCounterAdd("static.repairs", Flow.Repairs.size());
  }

  return 4;
}

/// lint.objective.window: the Ext-TSP objective hands out near-maximal
/// credit whenever the executed blocks land within one forward window
/// of each other. When a procedure's hot path already fits the window
/// while the procedure as a whole does not, essentially any layout that
/// groups the hot blocks ties on Ext-TSP score — the windowed objective
/// has little left to discriminate, and the paper's fall-through
/// objective is the sharper tool there. Advisory only (a Note): the
/// layout is still correct, just the objective choice is questionable.
/// Returns the number of check evaluations (always 1).
size_t lintObjectiveWindow(const Procedure &Proc,
                           const ProcedureProfile &Profile,
                           const MachineModel &Model,
                           DiagnosticEngine &Diags) {
  uint64_t TotalBytes = 0, HotBytes = 0, HotBlocks = 0;
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    uint64_t Bytes = blockBytes(Proc, B);
    TotalBytes += Bytes;
    if (Profile.BlockCounts[B] != 0) {
      HotBytes += Bytes;
      ++HotBlocks;
    }
  }
  // Fire only when the note is informative: some blocks are hot, the
  // procedure itself overflows the window (so there is layout freedom
  // the window cannot see), yet the hot span fits inside it.
  if (HotBlocks != 0 && TotalBytes > Model.ExtTspForwardWindow &&
      HotBytes <= Model.ExtTspForwardWindow)
    Diags.report(Severity::Note, CheckId::LintObjectiveWindow, PassName,
                 DiagLocation::procedure(Proc.getName()),
                 "hot path spans " + std::to_string(HotBytes) +
                     " bytes and fits one Ext-TSP forward window (" +
                     std::to_string(Model.ExtTspForwardWindow) +
                     " bytes) while the procedure spans " +
                     std::to_string(TotalBytes) +
                     "; the windowed objective barely discriminates "
                     "between layouts here");
  return 1;
}

/// Machine-model screen: penalties configured inside-out make every
/// layout comparison meaningless even on a perfect profile.
size_t lintModel(const MachineModel &Model, DiagnosticEngine &Diags) {
  if (Model.CondMispredict < Model.CondTakenCorrect)
    Diags.report(Severity::Warning, CheckId::LintModelSuspicious, PassName,
                 DiagLocation::program(),
                 "model '" + Model.Name + "': conditional mispredict (" +
                     std::to_string(Model.CondMispredict) +
                     ") is cheaper than a correctly predicted taken "
                     "branch (" +
                     std::to_string(Model.CondTakenCorrect) + ")");
  if (Model.MultiwayMispredict < Model.MultiwayPredicted)
    Diags.report(Severity::Warning, CheckId::LintModelSuspicious, PassName,
                 DiagLocation::program(),
                 "model '" + Model.Name + "': multiway mispredict (" +
                     std::to_string(Model.MultiwayMispredict) +
                     ") is cheaper than the predicted target (" +
                     std::to_string(Model.MultiwayPredicted) + ")");
  if (Model.CondFallThrough == 0 && Model.CondTakenCorrect == 0 &&
      Model.CondMispredict == 0 && Model.UncondBranch == 0 &&
      Model.MultiwayPredicted == 0 && Model.MultiwayMispredict == 0)
    Diags.report(Severity::Warning, CheckId::LintModelSuspicious, PassName,
                 DiagLocation::program(),
                 "model '" + Model.Name +
                     "': every penalty is zero; all layouts tie and "
                     "alignment is vacuous");
  return 1;
}

void appendJsonEscaped(std::ostringstream &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out << "\\\"";
      break;
    case '\\':
      Out << "\\\\";
      break;
    case '\n':
      Out << "\\n";
      break;
    case '\t':
      Out << "\\t";
      break;
    case '\r':
      Out << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out << Buffer;
      } else {
        Out << C;
      }
    }
  }
}

} // namespace

size_t balign::lintProcedure(const Procedure &Proc,
                             const ProcedureProfile *Profile,
                             const LintOptions &Opts, DiagnosticEngine &Diags,
                             ProfileClass *ProcClass) {
  ScopedSpan Span("lint.proc", SpanCat::Lint);
  Reachability Reach = computeReachability(Proc);
  DominatorTree Dom = DominatorTree::compute(Proc);
  LoopInfo Loops = LoopInfo::compute(Proc, Dom);
  scopeCounterAdd("static.loops", Loops.Loops.size());

  size_t Checks = lintStructure(Proc, Reach, Loops, Opts, Diags);
  ProfileClass Class = ProfileClass::Consistent;
  if (Profile)
    Checks += lintProfile(Proc, *Profile, Reach, Opts, Diags, Class);
  if (ProcClass)
    *ProcClass = Class;
  return Checks;
}

LintResult balign::lintProgram(const Program &Prog,
                               const ProgramProfile *Profile,
                               const MachineModel *Model,
                               const LintOptions &Opts) {
  ScopedSpan Span("lint.program", SpanCat::Lint);
  LintResult Result;
  Result.Profiled = Profile != nullptr;
  for (size_t I = 0; I != Prog.numProcedures(); ++I) {
    const ProcedureProfile *ProcProfile =
        Profile && I < Profile->Procs.size() ? &Profile->Procs[I] : nullptr;
    ProfileClass Class = ProfileClass::Consistent;
    Result.ChecksRun +=
        lintProcedure(Prog.proc(I), ProcProfile, Opts, Result.Diags, &Class);
    // The objective-window advisory needs the profile (to find the hot
    // span) and the model (for the window), so it lives at the program
    // driver where both meet.
    if (ProcProfile && Model && ProcProfile->shapeMatches(Prog.proc(I)))
      Result.ChecksRun += lintObjectiveWindow(Prog.proc(I), *ProcProfile,
                                              *Model, Result.Diags);
    if (Result.Profiled) {
      Result.ProcClasses.push_back(Class);
      Result.ProcNames.push_back(Prog.proc(I).getName());
    }
  }
  if (Model)
    Result.ChecksRun += lintModel(*Model, Result.Diags);
  scopeCounterAdd("lint.checks", Result.ChecksRun);
  scopeCounterAdd("lint.findings", Result.Diags.diagnostics().size());
  return Result;
}

std::string balign::lintReportJson(const LintResult &Result) {
  std::ostringstream Out;
  Out << "{\"version\":1,\"summary\":{\"errors\":" << Result.Diags.errorCount()
      << ",\"warnings\":" << Result.Diags.warningCount()
      << ",\"notes\":" << Result.Diags.noteCount()
      << ",\"checks\":" << Result.ChecksRun << ",\"profiled\":"
      << (Result.Profiled ? "true" : "false") << "},\"classes\":[";
  for (size_t I = 0; I != Result.ProcClasses.size(); ++I) {
    if (I)
      Out << ",";
    Out << "{\"proc\":\"";
    appendJsonEscaped(Out, Result.ProcNames[I]);
    Out << "\",\"class\":\"" << profileClassName(Result.ProcClasses[I])
        << "\"}";
  }
  Out << "],\"findings\":[";
  const std::vector<Diagnostic> &Diags = Result.Diags.diagnostics();
  for (size_t I = 0; I != Diags.size(); ++I) {
    const Diagnostic &D = Diags[I];
    if (I)
      Out << ",";
    Out << "{\"severity\":\"" << severityName(D.Sev) << "\",\"check\":\""
        << checkIdName(D.Check) << "\",\"proc\":\"";
    appendJsonEscaped(Out, D.Loc.Proc);
    Out << "\"";
    if (D.Loc.Block != InvalidBlock)
      Out << ",\"block\":" << D.Loc.Block;
    if (D.Loc.EdgeTo != InvalidBlock)
      Out << ",\"edge_to\":" << D.Loc.EdgeTo;
    Out << ",\"message\":\"";
    appendJsonEscaped(Out, D.Message);
    Out << "\"}";
  }
  Out << "]}";
  return Out.str();
}
