//===- static/EffortPolicy.h - Profile-guided solver effort ---------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The forward-feeding half of balign-lint: the static analyses
/// (dominators, loop nesting) combine with profile hotness to decide how
/// much solver effort each procedure deserves. The paper runs one fixed
/// protocol everywhere; this policy spends that protocol where it pays —
/// deep hot loop nests get more kicks per run, loop-free procedures get
/// fewer, and (under the most aggressive policy) cold procedures skip
/// the DTSP solve entirely and ship the greedy layout.
///
/// decideEffort is a pure function of (procedure, profile, base solver
/// options, policy). That purity is load-bearing: the alignment pipeline
/// calls it to pick the options it solves with, and the cache fingerprint
/// calls it to key what it stores — the two must agree bit-for-bit or a
/// policy change could serve stale hits. Anything result-affecting the
/// decision reads must come through those four arguments.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_STATIC_EFFORTPOLICY_H
#define BALIGN_STATIC_EFFORTPOLICY_H

#include "ir/CFG.h"
#include "profile/Profile.h"
#include "tsp/IteratedOpt.h"

#include <cstdint>
#include <string>

namespace balign {

/// How the pipeline spends solver effort across procedures.
enum class EffortPolicy : uint8_t {
  /// The paper's protocol: identical solver options everywhere.
  Uniform,
  /// Scale kicks per run by loop-nest depth and hotness: loop-free
  /// procedures run half the base iterations, hot nests of depth >= 2
  /// run depth-times the base (capped at 4x).
  Scaled,
  /// Scaled, plus: procedures whose profile executed fewer than
  /// ColdProcBranchThreshold branches skip the DTSP solve and ship the
  /// greedy layout.
  ScaledColdGreedy,
};

/// Below this many executed branches a procedure is cold enough that the
/// greedy layout's gap to optimal costs less than the solve (the paper's
/// Table 1 tail: most procedures execute almost no branches).
inline constexpr uint64_t ColdProcBranchThreshold = 32;

/// At or above this many executed branches a procedure is hot enough to
/// justify extra kicks when its loops nest.
inline constexpr uint64_t HotProcBranchThreshold = 1024;

/// What decideEffort settled on for one procedure.
struct EffortDecision {
  /// The solver options to use, derived from the base. Seed and Budget
  /// are copied through untouched — the pipeline derives the
  /// per-procedure seed and attaches the deadline after the decision.
  IteratedOptOptions Solver;

  /// True: skip matrix build, DTSP solve, and bounds; the TSP layout is
  /// the greedy layout (ScaledColdGreedy on a cold procedure).
  bool GreedyOnly = false;
};

/// Decides the effort for one procedure. Pure and deterministic; see the
/// file comment for why that matters.
EffortDecision decideEffort(const Procedure &Proc,
                            const ProcedureProfile &Profile,
                            const IteratedOptOptions &Base,
                            EffortPolicy Policy);

/// Returns "uniform", "scaled", or "scaled-cold-greedy".
const char *effortPolicyName(EffortPolicy Policy);

/// Parses the names effortPolicyName produces. Returns false (leaving
/// \p Out alone) on anything else.
bool parseEffortPolicy(const std::string &Name, EffortPolicy &Out);

} // namespace balign

#endif // BALIGN_STATIC_EFFORTPOLICY_H
