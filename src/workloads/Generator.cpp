//===- workloads/Generator.cpp -------------------------------------------------===//

#include "workloads/Generator.h"

#include <cassert>

using namespace balign;

namespace {

/// Recursive region builder. A region is a single-entry subgraph under
/// construction whose control flow leaves through "open" blocks that
/// still need one successor edge (unconditional blocks with no successor
/// yet, or conditional loop headers whose exit edge is pending).
class RegionBuilder {
public:
  RegionBuilder(const GenParams &Params, Rng &Rand)
      : Params(Params), Rand(Rand) {}

  /// A region: entry block plus the open blocks to wire onward.
  struct Region {
    BlockId Entry = InvalidBlock;
    std::vector<BlockId> Exits;
  };

  /// Builds a whole procedure.
  GeneratedProcedure buildProcedure(std::string Name) {
    Gen.Proc.setName(std::move(Name));
    unsigned Budget = Params.TargetBranchSites;
    // Chain top-level regions until the branch budget is consumed; every
    // top-level region with budget available spends at least one site.
    Region Body = genOne(Budget, /*Depth=*/0);
    while (Budget > 0) {
      Region NextPart = genOne(Budget, /*Depth=*/0);
      for (BlockId Open : Body.Exits)
        addPendingEdge(Open, NextPart.Entry);
      Body.Exits = std::move(NextPart.Exits);
    }
    BlockId Exit = newBlock(TerminatorKind::Return);
    for (BlockId Open : Body.Exits)
      addPendingEdge(Open, Exit);
    Gen.LoopStayIndex.resize(Gen.Proc.numBlocks(), -1);
    for (const auto &[Header, Index] : LoopHeaders)
      Gen.LoopStayIndex[Header] = Index;
    std::string Error;
    bool Ok = Gen.Proc.verify(&Error);
    (void)Ok;
    assert(Ok && "generator produced an invalid procedure");
    return std::move(Gen);
  }

private:
  const GenParams &Params;
  Rng &Rand;
  GeneratedProcedure Gen;
  std::vector<std::pair<BlockId, int8_t>> LoopHeaders;

  uint32_t pickSize() {
    return Params.BlockSizeMin +
           static_cast<uint32_t>(Rand.nextBelow(
               Params.BlockSizeMax - Params.BlockSizeMin + 1));
  }

  BlockId newBlock(TerminatorKind Kind) {
    BasicBlock Block;
    Block.Kind = Kind;
    Block.InstrCount = pickSize();
    return Gen.Proc.addBlock(std::move(Block));
  }

  /// Adds the deferred successor edge of an open block.
  void addPendingEdge(BlockId Open, BlockId Target) {
    Gen.Proc.addEdge(Open, Target);
  }

  /// A single straight-line block.
  Region genStraight() {
    BlockId B = newBlock(TerminatorKind::Unconditional);
    return {B, {B}};
  }

  /// Sequential composition of 1..MaxParts sub-regions.
  Region genSeq(unsigned &Budget, unsigned Depth, unsigned MinParts,
                unsigned MaxParts) {
    unsigned Parts =
        MinParts + static_cast<unsigned>(Rand.nextBelow(
                       MaxParts - MinParts + 1));
    Region Seq = genOne(Budget, Depth);
    for (unsigned P = 1; P < Parts; ++P) {
      Region NextPart = genOne(Budget, Depth);
      for (BlockId Open : Seq.Exits)
        addPendingEdge(Open, NextPart.Entry);
      Seq.Exits = std::move(NextPart.Exits);
    }
    return Seq;
  }

  /// Picks one region kind given the remaining branch budget.
  Region genOne(unsigned &Budget, unsigned Depth) {
    if (Budget == 0 || Depth >= Params.MaxDepth)
      return genStraight();
    double Draw = Rand.nextDouble();
    if (Draw < Params.MultiwayFraction)
      return genSwitch(Budget, Depth);
    Draw = Rand.nextDouble();
    if (Draw < Params.LoopFraction)
      return genLoop(Budget, Depth);
    return genIf(Budget, Depth);
  }

  /// if-then[-else] with a join block; the then-arm may early-return when
  /// the join stays reachable through the other edge.
  Region genIf(unsigned &Budget, unsigned Depth) {
    assert(Budget > 0 && "genIf needs budget");
    --Budget;
    BlockId Cond = newBlock(TerminatorKind::Conditional);
    // Then-arm blocks are created immediately after the conditional, so
    // successor 0 is the adjacent block in the original layout.
    Region Then = genSeq(Budget, Depth + 1, 1, 2);
    bool HasElse = Budget > 0 && Rand.nextBool(Params.ElseFraction);
    Region Else;
    if (HasElse)
      Else = genSeq(Budget, Depth + 1, 1, 2);

    Gen.Proc.addEdge(Cond, Then.Entry);
    BlockId Join = newBlock(TerminatorKind::Unconditional);
    Gen.Proc.addEdge(Cond, HasElse ? Else.Entry : Join);

    // The join is reachable via the else edge (or else-region), so the
    // then-arm may safely divert to an early return.
    if (Rand.nextBool(Params.EarlyReturnProb)) {
      BlockId Early = newBlock(TerminatorKind::Return);
      for (BlockId Open : Then.Exits)
        addPendingEdge(Open, Early);
    } else {
      for (BlockId Open : Then.Exits)
        addPendingEdge(Open, Join);
    }
    for (BlockId Open : Else.Exits)
      addPendingEdge(Open, Join);
    return {Cond, {Join}};
  }

  /// Natural loop; bottom-tested (do-while latch) by default,
  /// top-tested (while header) with probability TopTestedLoopFraction.
  Region genLoop(unsigned &Budget, unsigned Depth) {
    assert(Budget > 0 && "genLoop needs budget");
    --Budget;
    if (Rand.nextBool(Params.TopTestedLoopFraction)) {
      // while-style: conditional header, unconditional back edge.
      BlockId Header = newBlock(TerminatorKind::Conditional);
      Region Body = genSeq(Budget, Depth + 1, 1, 2);
      Gen.Proc.addEdge(Header, Body.Entry); // Successor 0: stay in loop.
      for (BlockId Open : Body.Exits)
        addPendingEdge(Open, Header); // Back edges.
      LoopHeaders.push_back({Header, 0});
      // Successor 1 (the loop exit) is this region's open edge.
      return {Header, {Header}};
    }
    // do-while-style: the body runs first; a conditional latch tests at
    // the bottom and takes the back edge while iterating. In source
    // order the back edge is a backward taken branch and the exit falls
    // through — the shape compilers emit.
    Region Body = genSeq(Budget, Depth + 1, 1, 2);
    BlockId Latch = newBlock(TerminatorKind::Conditional);
    for (BlockId Open : Body.Exits)
      addPendingEdge(Open, Latch);
    Gen.Proc.addEdge(Latch, Body.Entry); // Successor 0: back edge (hot).
    LoopHeaders.push_back({Latch, 0});
    // Successor 1 (the loop exit) is this region's open edge.
    return {Body.Entry, {Latch}};
  }

  /// Multiway dispatch over 3..K arms with a common join.
  Region genSwitch(unsigned &Budget, unsigned Depth) {
    assert(Budget > 0 && "genSwitch needs budget");
    --Budget;
    BlockId Switch = newBlock(TerminatorKind::Multiway);
    unsigned Arms =
        Params.MultiwayArmsMin +
        static_cast<unsigned>(Rand.nextBelow(
            Params.MultiwayArmsMax - Params.MultiwayArmsMin + 1));
    std::vector<Region> ArmRegions;
    ArmRegions.reserve(Arms);
    for (unsigned A = 0; A != Arms; ++A) {
      ArmRegions.push_back(genSeq(Budget, Depth + 1, 1, 1));
      Gen.Proc.addEdge(Switch, ArmRegions.back().Entry);
    }
    BlockId Join = newBlock(TerminatorKind::Unconditional);
    for (Region &Arm : ArmRegions)
      for (BlockId Open : Arm.Exits)
        addPendingEdge(Open, Join);
    return {Switch, {Join}};
  }
};

} // namespace

GeneratedProcedure balign::generateProcedure(std::string Name,
                                             const GenParams &Params,
                                             Rng &Rng) {
  RegionBuilder Builder(Params, Rng);
  return Builder.buildProcedure(std::move(Name));
}
