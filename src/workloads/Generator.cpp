//===- workloads/Generator.cpp -------------------------------------------------===//

#include "workloads/Generator.h"

#include <cassert>

using namespace balign;

namespace {

/// Recursive region builder. A region is a single-entry subgraph under
/// construction whose control flow leaves through "open" blocks that
/// still need one successor edge (unconditional blocks with no successor
/// yet, or conditional loop headers whose exit edge is pending).
class RegionBuilder {
public:
  RegionBuilder(const GenParams &Params, Rng &Rand)
      : Params(Params), Rand(Rand) {}

  /// A region: entry block plus the open blocks to wire onward.
  struct Region {
    BlockId Entry = InvalidBlock;
    std::vector<BlockId> Exits;
  };

  /// Builds a whole procedure.
  GeneratedProcedure buildProcedure(std::string Name) {
    Gen.Proc.setName(std::move(Name));
    unsigned Budget = Params.TargetBranchSites;
    // Chain top-level regions until the branch budget is consumed; every
    // top-level region with budget available spends at least one site.
    Region Body = genOne(Budget, /*Depth=*/0);
    while (Budget > 0) {
      Region NextPart = genOne(Budget, /*Depth=*/0);
      for (BlockId Open : Body.Exits)
        addPendingEdge(Open, NextPart.Entry);
      Body.Exits = std::move(NextPart.Exits);
    }
    BlockId Exit = newBlock(TerminatorKind::Return);
    for (BlockId Open : Body.Exits)
      addPendingEdge(Open, Exit);
    Gen.LoopStayIndex.resize(Gen.Proc.numBlocks(), -1);
    for (const auto &[Header, Index] : LoopHeaders)
      Gen.LoopStayIndex[Header] = Index;
    std::string Error;
    bool Ok = Gen.Proc.verify(&Error);
    (void)Ok;
    assert(Ok && "generator produced an invalid procedure");
    return std::move(Gen);
  }

private:
  const GenParams &Params;
  Rng &Rand;
  GeneratedProcedure Gen;
  std::vector<std::pair<BlockId, int8_t>> LoopHeaders;

  uint32_t pickSize() {
    return Params.BlockSizeMin +
           static_cast<uint32_t>(Rand.nextBelow(
               Params.BlockSizeMax - Params.BlockSizeMin + 1));
  }

  BlockId newBlock(TerminatorKind Kind) {
    BasicBlock Block;
    Block.Kind = Kind;
    Block.InstrCount = pickSize();
    return Gen.Proc.addBlock(std::move(Block));
  }

  /// Adds the deferred successor edge of an open block.
  void addPendingEdge(BlockId Open, BlockId Target) {
    Gen.Proc.addEdge(Open, Target);
  }

  /// A single straight-line block.
  Region genStraight() {
    BlockId B = newBlock(TerminatorKind::Unconditional);
    return {B, {B}};
  }

  /// Sequential composition of 1..MaxParts sub-regions.
  Region genSeq(unsigned &Budget, unsigned Depth, unsigned MinParts,
                unsigned MaxParts) {
    unsigned Parts =
        MinParts + static_cast<unsigned>(Rand.nextBelow(
                       MaxParts - MinParts + 1));
    Region Seq = genOne(Budget, Depth);
    for (unsigned P = 1; P < Parts; ++P) {
      Region NextPart = genOne(Budget, Depth);
      for (BlockId Open : Seq.Exits)
        addPendingEdge(Open, NextPart.Entry);
      Seq.Exits = std::move(NextPart.Exits);
    }
    return Seq;
  }

  /// Picks one region kind given the remaining branch budget.
  Region genOne(unsigned &Budget, unsigned Depth) {
    if (Budget == 0 || Depth >= Params.MaxDepth)
      return genStraight();
    double Draw = Rand.nextDouble();
    if (Draw < Params.MultiwayFraction)
      return genSwitch(Budget, Depth);
    Draw = Rand.nextDouble();
    if (Draw < Params.LoopFraction)
      return genLoop(Budget, Depth);
    return genIf(Budget, Depth);
  }

  /// if-then[-else] with a join block; the then-arm may early-return when
  /// the join stays reachable through the other edge.
  Region genIf(unsigned &Budget, unsigned Depth) {
    assert(Budget > 0 && "genIf needs budget");
    --Budget;
    BlockId Cond = newBlock(TerminatorKind::Conditional);
    // Then-arm blocks are created immediately after the conditional, so
    // successor 0 is the adjacent block in the original layout.
    Region Then = genSeq(Budget, Depth + 1, 1, 2);
    bool HasElse = Budget > 0 && Rand.nextBool(Params.ElseFraction);
    Region Else;
    if (HasElse)
      Else = genSeq(Budget, Depth + 1, 1, 2);

    Gen.Proc.addEdge(Cond, Then.Entry);
    BlockId Join = newBlock(TerminatorKind::Unconditional);
    Gen.Proc.addEdge(Cond, HasElse ? Else.Entry : Join);

    // The join is reachable via the else edge (or else-region), so the
    // then-arm may safely divert to an early return.
    if (Rand.nextBool(Params.EarlyReturnProb)) {
      BlockId Early = newBlock(TerminatorKind::Return);
      for (BlockId Open : Then.Exits)
        addPendingEdge(Open, Early);
    } else {
      for (BlockId Open : Then.Exits)
        addPendingEdge(Open, Join);
    }
    for (BlockId Open : Else.Exits)
      addPendingEdge(Open, Join);
    return {Cond, {Join}};
  }

  /// Natural loop; bottom-tested (do-while latch) by default,
  /// top-tested (while header) with probability TopTestedLoopFraction.
  Region genLoop(unsigned &Budget, unsigned Depth) {
    assert(Budget > 0 && "genLoop needs budget");
    --Budget;
    if (Rand.nextBool(Params.TopTestedLoopFraction)) {
      // while-style: conditional header, unconditional back edge.
      BlockId Header = newBlock(TerminatorKind::Conditional);
      Region Body = genSeq(Budget, Depth + 1, 1, 2);
      Gen.Proc.addEdge(Header, Body.Entry); // Successor 0: stay in loop.
      for (BlockId Open : Body.Exits)
        addPendingEdge(Open, Header); // Back edges.
      LoopHeaders.push_back({Header, 0});
      // Successor 1 (the loop exit) is this region's open edge.
      return {Header, {Header}};
    }
    // do-while-style: the body runs first; a conditional latch tests at
    // the bottom and takes the back edge while iterating. In source
    // order the back edge is a backward taken branch and the exit falls
    // through — the shape compilers emit.
    Region Body = genSeq(Budget, Depth + 1, 1, 2);
    BlockId Latch = newBlock(TerminatorKind::Conditional);
    for (BlockId Open : Body.Exits)
      addPendingEdge(Open, Latch);
    Gen.Proc.addEdge(Latch, Body.Entry); // Successor 0: back edge (hot).
    LoopHeaders.push_back({Latch, 0});
    // Successor 1 (the loop exit) is this region's open edge.
    return {Body.Entry, {Latch}};
  }

  /// Multiway dispatch over 3..K arms with a common join.
  Region genSwitch(unsigned &Budget, unsigned Depth) {
    assert(Budget > 0 && "genSwitch needs budget");
    --Budget;
    BlockId Switch = newBlock(TerminatorKind::Multiway);
    unsigned Arms =
        Params.MultiwayArmsMin +
        static_cast<unsigned>(Rand.nextBelow(
            Params.MultiwayArmsMax - Params.MultiwayArmsMin + 1));
    std::vector<Region> ArmRegions;
    ArmRegions.reserve(Arms);
    for (unsigned A = 0; A != Arms; ++A) {
      ArmRegions.push_back(genSeq(Budget, Depth + 1, 1, 1));
      Gen.Proc.addEdge(Switch, ArmRegions.back().Entry);
    }
    BlockId Join = newBlock(TerminatorKind::Unconditional);
    for (Region &Arm : ArmRegions)
      for (BlockId Open : Arm.Exits)
        addPendingEdge(Open, Join);
    return {Switch, {Join}};
  }
};

} // namespace

GeneratedProcedure balign::generateProcedure(std::string Name,
                                             const GenParams &Params,
                                             Rng &Rng) {
  RegionBuilder Builder(Params, Rng);
  return Builder.buildProcedure(std::move(Name));
}

//===--------------------------------------------------------------------===//
// Seeded defects (the balign-lint true-positive corpus)
//===--------------------------------------------------------------------===//

namespace {

/// Unconditional blocks whose single successor is some *other* block.
/// These can be promoted to conditionals by adding a second, distinct
/// out-edge without breaking Procedure::verify()'s arity invariants.
std::vector<BlockId> promotableBlocks(const Procedure &Proc) {
  std::vector<BlockId> Out;
  for (BlockId B = 0; B != Proc.numBlocks(); ++B)
    if (Proc.block(B).Kind == TerminatorKind::Unconditional &&
        Proc.successors(B)[0] != B)
      Out.push_back(B);
  return Out;
}

/// Appends the two-block cycle X <-> Y and routes each block in
/// \p Entries into it (block I enters at cycle block I % 2) by
/// promoting it from unconditional to conditional. Extends \p Profile
/// with all-zero counts so it stays shape-matched and flow-consistent.
void spliceCycle(Procedure &Proc, ProcedureProfile &Profile,
                 const std::vector<BlockId> &Entries) {
  BlockId X = Proc.addBlock({1, TerminatorKind::Unconditional, "cyc0"});
  BlockId Y = Proc.addBlock({1, TerminatorKind::Unconditional, "cyc1"});
  Proc.addEdge(X, Y);
  Proc.addEdge(Y, X);
  for (size_t I = 0; I != Entries.size(); ++I) {
    Proc.block(Entries[I]).Kind = TerminatorKind::Conditional;
    Proc.addEdge(Entries[I], I % 2 == 0 ? X : Y);
    Profile.EdgeCounts[Entries[I]].push_back(0);
  }
  Profile.BlockCounts.push_back(0); // X
  Profile.BlockCounts.push_back(0); // Y
  Profile.EdgeCounts.push_back({0}); // X -> Y
  Profile.EdgeCounts.push_back({0}); // Y -> X
}

/// Picks a block with a nonzero execution count, uniformly.
BlockId pickHotBlock(const ProcedureProfile &Profile, Rng &Rng) {
  std::vector<BlockId> Hot;
  for (BlockId B = 0; B != Profile.BlockCounts.size(); ++B)
    if (Profile.BlockCounts[B] > 0)
      Hot.push_back(B);
  assert(!Hot.empty() && "defect seeding needs a nonzero profile");
  return Hot[Rng.nextIndex(Hot.size())];
}

} // namespace

const char *balign::defectKindName(DefectKind Kind) {
  switch (Kind) {
  case DefectKind::IrreducibleLoop:
    return "irreducible-loop";
  case DefectKind::NoExitLoop:
    return "no-exit-loop";
  case DefectKind::SelfLoopSpin:
    return "self-loop-spin";
  case DefectKind::UnreachableHot:
    return "unreachable-hot";
  case DefectKind::StaleProfile:
    return "stale-profile";
  case DefectKind::ContradictoryProfile:
    return "contradictory-profile";
  case DefectKind::SaturatedCounter:
    return "saturated-counter";
  case DefectKind::OverflowCounter:
    return "overflow-counter";
  }
  return "unknown";
}

CheckId balign::seedDefect(DefectKind Kind, Procedure &Proc,
                           ProcedureProfile &Profile, Rng &Rng) {
  assert(Profile.shapeMatches(Proc) &&
         "defects are seeded into shape-matched pairs");
  switch (Kind) {
  case DefectKind::IrreducibleLoop: {
    // Two distinct entries into the appended cycle make it irreducible:
    // neither cycle block dominates the other, so the DFS retreating
    // edge closing the cycle is not a back edge.
    std::vector<BlockId> Cands = promotableBlocks(Proc);
    assert(Cands.size() >= 2 && "need two promotable blocks");
    size_t I = Rng.nextIndex(Cands.size());
    size_t J = Rng.nextIndex(Cands.size() - 1);
    if (J >= I)
      ++J;
    spliceCycle(Proc, Profile, {Cands[I], Cands[J]});
    return CheckId::LintIrreducibleLoop;
  }

  case DefectKind::NoExitLoop: {
    // A single entry keeps the cycle reducible — it becomes a natural
    // loop — but nothing inside it can reach a return.
    std::vector<BlockId> Cands = promotableBlocks(Proc);
    assert(!Cands.empty() && "need a promotable block");
    spliceCycle(Proc, Profile, {Cands[Rng.nextIndex(Cands.size())]});
    return CheckId::LintNoLoopExit;
  }

  case DefectKind::SelfLoopSpin: {
    std::vector<BlockId> Cands;
    for (BlockId B : promotableBlocks(Proc))
      if (Profile.BlockCounts[B] > 0)
        Cands.push_back(B);
    assert(!Cands.empty() && "need a hot promotable block");
    BlockId A = Cands[Rng.nextIndex(Cands.size())];
    Proc.block(A).Kind = TerminatorKind::Conditional;
    Proc.addEdge(A, A);
    // Claim the self-edge accounts for every execution of the block —
    // i.e. the block never leaves itself, which its positive original
    // out-edge count contradicts.
    Profile.EdgeCounts[A].push_back(Profile.BlockCounts[A]);
    return CheckId::LintSelfLoop;
  }

  case DefectKind::UnreachableHot: {
    Proc.addBlock({4, TerminatorKind::Return, "orphan"});
    Profile.BlockCounts.push_back(1 + Rng.nextBelow(1u << 20));
    Profile.EdgeCounts.push_back({});
    return CheckId::LintUnreachableHot;
  }

  case DefectKind::StaleProfile: {
    // Zero one hot edge. Both endpoints keep nonzero block counts, so
    // flow reconstruction treats the edge as unknown and re-derives it:
    // the profile is repairable, not contradictory.
    struct Site {
      BlockId From;
      size_t Succ;
    };
    std::vector<Site> Sites;
    for (BlockId From = 0; From != Proc.numBlocks(); ++From)
      for (size_t S = 0; S != Proc.successors(From).size(); ++S)
        if (Profile.EdgeCounts[From][S] > 0 &&
            Proc.successors(From)[S] != From)
          Sites.push_back({From, S});
    assert(!Sites.empty() && "defect seeding needs a hot edge");
    const Site &Hit = Sites[Rng.nextIndex(Sites.size())];
    Profile.EdgeCounts[Hit.From][Hit.Succ] = 0;
    return CheckId::LintFlowImbalance;
  }

  case DefectKind::ContradictoryProfile: {
    // Push one edge count above its source block's execution count. The
    // outflow equation's known sum then exceeds its target, which no
    // assignment to the (non-negative) unknowns can fix.
    std::vector<BlockId> Cands;
    for (BlockId B = 0; B != Proc.numBlocks(); ++B)
      if (Profile.BlockCounts[B] > 0 && !Proc.successors(B).empty())
        Cands.push_back(B);
    assert(!Cands.empty() && "need a hot non-return block");
    BlockId From = Cands[Rng.nextIndex(Cands.size())];
    size_t Succ = Rng.nextIndex(Proc.successors(From).size());
    Profile.EdgeCounts[From][Succ] =
        Profile.BlockCounts[From] + 1 + Rng.nextBelow(1000);
    return CheckId::LintFlowContradictory;
  }

  case DefectKind::SaturatedCounter: {
    Profile.BlockCounts[pickHotBlock(Profile, Rng)] = UINT64_MAX;
    return CheckId::LintCounterSaturated;
  }

  case DefectKind::OverflowCounter: {
    // Far past the default lint overflow limit (2^56) yet not pinned at
    // the saturation sentinel.
    Profile.BlockCounts[pickHotBlock(Profile, Rng)] = uint64_t(1) << 60;
    return CheckId::LintCounterOverflow;
  }
  }
  assert(false && "unknown defect kind");
  return CheckId::LintFlowContradictory;
}
