//===- workloads/Generator.h - Structured random CFG construction ---------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Builds procedures with compiler-shaped control flow: nested
/// if-then-else regions, natural loops, multiway dispatch, and early
/// returns, emitted in source order (which therefore *is* the "original"
/// layout the paper normalizes against). The generator records which
/// conditional blocks are loop headers so the behavior models can give
/// them realistic trip-count-driven biases.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_WORKLOADS_GENERATOR_H
#define BALIGN_WORKLOADS_GENERATOR_H

#include "analysis/Diagnostics.h"
#include "ir/CFG.h"
#include "profile/Profile.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace balign {

/// Shape parameters for one procedure.
struct GenParams {
  /// Approximate number of branch sites (conditional + multiway blocks).
  unsigned TargetBranchSites = 8;

  /// Fraction of branch sites realized as multiway dispatch.
  double MultiwayFraction = 0.05;

  /// Multiway arm count range.
  unsigned MultiwayArmsMin = 3;
  unsigned MultiwayArmsMax = 8;

  /// Probability that a conditional region is a loop rather than an if.
  double LoopFraction = 0.3;

  /// Fraction of loops emitted top-tested (while-style: conditional
  /// header + unconditional back edge). The rest are bottom-tested
  /// (do-while-style latch), which is what optimizing compilers emit and
  /// what keeps the original layout's loop-wrap cost at one
  /// correctly-predicted taken branch per iteration.
  double TopTestedLoopFraction = 0.25;

  /// Probability that an if-arm ends in an early return.
  double EarlyReturnProb = 0.1;

  /// Probability that an if region has an else arm. Else arms matter for
  /// alignment: whichever arm is hot, the original layout wastes cycles
  /// (a taken branch into a hot else, or a hot then-arm jumping over the
  /// else to the join), so higher values mean more removable penalty.
  double ElseFraction = 0.6;

  /// Straight-line block size range (instructions).
  uint32_t BlockSizeMin = 3;
  uint32_t BlockSizeMax = 12;

  /// Maximum region nesting depth.
  unsigned MaxDepth = 6;
};

/// A generated procedure plus the structural tags the behavior models
/// need.
struct GeneratedProcedure {
  Procedure Proc{"gen"};

  /// Per block: the successor index that stays inside the loop if the
  /// block is a loop header, -1 otherwise.
  std::vector<int8_t> LoopStayIndex;
};

/// Generates one verified procedure. Deterministic in (\p Params, \p Rng
/// state).
GeneratedProcedure generateProcedure(std::string Name,
                                     const GenParams &Params, Rng &Rng);

/// Seeded defect kinds for the balign-lint true-positive corpus. Each
/// kind mutates a (procedure, profile) pair so that one specific lint
/// check is guaranteed to fire. Flow defects cascade (a profile lie in
/// one counter usually breaks several conservation equations), so tests
/// should assert the returned check is *present*, not *exclusive*.
enum class DefectKind : uint8_t {
  /// Appends a two-entry cycle (the textbook irreducible region). The
  /// CFG stays verify()-legal and the extended profile stays
  /// flow-consistent, so this is a purely structural finding.
  IrreducibleLoop,

  /// Appends a single-entry natural loop with no exit edge. Also
  /// verify()-legal and flow-consistent.
  NoExitLoop,

  /// Adds a conditional self-edge to a hot block and claims it is
  /// always taken (the "spinning" profile shape retargeting bugs
  /// produce).
  SelfLoopSpin,

  /// Appends a block with no in-edges but a nonzero execution count —
  /// the signature of a profile collected against a stale CFG. The
  /// mutated procedure no longer passes Procedure::verify() (and the
  /// text parser would reject it), so this kind exists for in-memory
  /// lint corpora only.
  UnreachableHot,

  /// Zeroes one hot edge count. Flow reconstruction can re-derive the
  /// missing value, so the profile classifies as repairable.
  StaleProfile,

  /// Raises one edge count above its source block's execution count;
  /// no assignment to the remaining unknowns can balance that, so the
  /// profile classifies as contradictory.
  ContradictoryProfile,

  /// Pins one hot block count at UINT64_MAX (a wrapped/clamped
  /// hardware counter).
  SaturatedCounter,

  /// Raises one hot block count beyond the lint overflow limit while
  /// staying below saturation.
  OverflowCounter,
};

inline constexpr size_t NumDefectKinds = 8;

/// Stable lowercase name ("irreducible-loop", "stale-profile", ...).
const char *defectKindName(DefectKind Kind);

/// Injects \p Kind into \p Proc / \p Profile (which must shape-match)
/// and returns the CheckId balign-lint must report for it. Mutation
/// sites (a hot block, a promotable unconditional block) are chosen
/// deterministically via \p Rng; the profile is re-shaped alongside any
/// structural edit so shapeMatches() keeps holding afterwards.
CheckId seedDefect(DefectKind Kind, Procedure &Proc,
                   ProcedureProfile &Profile, Rng &Rng);

} // namespace balign

#endif // BALIGN_WORKLOADS_GENERATOR_H
