//===- workloads/Workloads.cpp ---------------------------------------------------===//

#include "workloads/Workloads.h"

#include "analysis/Verifier.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace balign;

/// Mixes a root seed with a salt and stream index into a fresh seed.
static uint64_t mixSeed(uint64_t Root, uint64_t Salt, uint64_t Index) {
  uint64_t State = Root ^ (Salt * 0x9e3779b97f4a7c15ULL) ^
                   ((Index + 1) * 0xbf58476d1ce4e5b9ULL);
  return splitMix64(State);
}

namespace {

/// Benchmark-common branch personality of one block, drawn once per
/// procedure from the structure-seeded stream and then perturbed per
/// data set.
struct CommonBlockBias {
  double CondBias = 0.8;     ///< P(favored successor) for conditionals.
  size_t FavoredIndex = 0;   ///< Which successor is favored.
  double TripCount = 10.0;   ///< Loop headers only.
  std::vector<double> MultiwayWeights; ///< Multiway blocks only.
};

} // namespace

/// Draws the benchmark-common biases for every block of \p Gen.
static std::vector<CommonBlockBias>
drawCommonBiases(const WorkloadSpec &Spec, const GeneratedProcedure &Gen,
                 Rng &Common) {
  const Procedure &Proc = Gen.Proc;
  std::vector<CommonBlockBias> Biases(Proc.numBlocks());
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    const std::vector<BlockId> &Succs = Proc.successors(B);
    CommonBlockBias &Bias = Biases[B];
    switch (Proc.block(B).Kind) {
    case TerminatorKind::Return:
    case TerminatorKind::Unconditional:
      break;
    case TerminatorKind::Conditional:
      if (Gen.LoopStayIndex[B] >= 0) {
        Bias.TripCount = Spec.TripCountMin +
                         Common.nextDouble() *
                             (Spec.TripCountMax - Spec.TripCountMin);
        Bias.FavoredIndex = static_cast<size_t>(Gen.LoopStayIndex[B]);
        Bias.CondBias = Bias.TripCount / (Bias.TripCount + 1.0);
      } else {
        Bias.CondBias = Spec.CondBiasMin +
                        (Spec.CondBiasMax - Spec.CondBiasMin) *
                            Common.nextDouble();
        // Friendly code favors the source-order-adjacent successor
        // (index 0 by generator construction).
        Bias.FavoredIndex =
            Common.nextBool(Spec.LayoutFriendliness) ? 0 : 1;
      }
      break;
    case TerminatorKind::Multiway: {
      Bias.MultiwayWeights.resize(Succs.size());
      for (double &W : Bias.MultiwayWeights)
        W = 0.05 - std::log(1.0 - Common.nextDouble());
      Bias.FavoredIndex = Common.nextIndex(Succs.size());
      Bias.MultiwayWeights[Bias.FavoredIndex] *= 4.0;
      break;
    }
    }
  }
  return Biases;
}

/// Perturbs common biases into one data set's concrete behavior.
static BranchBehavior
makeBehavior(const GeneratedProcedure &Gen,
             const std::vector<CommonBlockBias> &Common, double Divergence,
             Rng &Ds) {
  const Procedure &Proc = Gen.Proc;
  BranchBehavior Behavior;
  Behavior.Probs.resize(Proc.numBlocks());
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    const std::vector<BlockId> &Succs = Proc.successors(B);
    if (Succs.empty())
      continue;
    std::vector<double> &Probs = Behavior.Probs[B];
    Probs.assign(Succs.size(), 0.0);
    const CommonBlockBias &Bias = Common[B];
    switch (Proc.block(B).Kind) {
    case TerminatorKind::Return:
      break;
    case TerminatorKind::Unconditional:
      Probs[0] = 1.0;
      break;
    case TerminatorKind::Conditional: {
      double P;
      size_t Favored = Bias.FavoredIndex;
      if (Gen.LoopStayIndex[B] >= 0) {
        double Trip = Bias.TripCount *
                      (1.0 + Divergence * (Ds.nextDouble() * 2.0 - 1.0) * 0.3);
        Trip = std::max(1.5, Trip);
        P = Trip / (Trip + 1.0);
      } else {
        P = Bias.CondBias +
            Divergence * (Ds.nextDouble() * 2.0 - 1.0) * 0.2;
        P = std::clamp(P, 0.52, 0.99);
        // Only weakly-biased branches flip direction between inputs;
        // strongly-biased ones encode algorithmic invariants that hold
        // for every data set.
        if (Bias.CondBias < 0.82 && Ds.nextBool(Divergence * 0.12))
          Favored = 1 - Favored;
      }
      Probs[Favored] = P;
      Probs[1 - Favored] = 1.0 - P;
      break;
    }
    case TerminatorKind::Multiway: {
      double Sum = 0.0;
      for (size_t S = 0; S != Succs.size(); ++S) {
        double W = Bias.MultiwayWeights[S] *
                   (1.0 + Divergence * (Ds.nextDouble() * 2.0 - 1.0) * 0.3);
        Probs[S] = std::max(W, 1e-4);
        Sum += Probs[S];
      }
      for (double &P : Probs)
        P /= Sum;
      break;
    }
    }
  }
  assert(Behavior.isValid(Proc) && "generated behavior invalid");
  return Behavior;
}

/// Splits a data set's branch budget over procedures with a Zipf-like
/// skew; the hot-procedure ranking is benchmark-common with per-data-set
/// transpositions so the two data sets mostly (not entirely) agree on
/// what is hot.
static std::vector<uint64_t> splitBudget(const WorkloadSpec &Spec,
                                         uint64_t Budget, double Divergence,
                                         Rng &Common, Rng &Ds) {
  size_t N = Spec.NumProcs;
  std::vector<size_t> Rank(N);
  for (size_t I = 0; I != N; ++I)
    Rank[I] = I;
  Common.shuffle(Rank);
  size_t Swaps = static_cast<size_t>(Divergence * 0.15 * static_cast<double>(N));
  for (size_t S = 0; S != Swaps; ++S)
    std::swap(Rank[Ds.nextIndex(N)], Rank[Ds.nextIndex(N)]);

  std::vector<double> Weight(N);
  double Sum = 0.0;
  for (size_t I = 0; I != N; ++I) {
    Weight[I] =
        1.0 / std::pow(static_cast<double>(Rank[I]) + 1.0, Spec.ProcSkew);
    Sum += Weight[I];
  }
  // Every procedure gets a small floor (when the budget allows) so cold
  // procedures are exercised a little, as linked-in library code is in
  // real profiles; the Zipf head still dominates.
  uint64_t Floor = Budget / (20 * N);
  std::vector<uint64_t> Result(N);
  for (size_t I = 0; I != N; ++I)
    Result[I] = std::max(Floor,
                         static_cast<uint64_t>(static_cast<double>(Budget) *
                                               Weight[I] / Sum));
  return Result;
}

WorkloadInstance balign::buildWorkload(const WorkloadSpec &Spec) {
  assert(Spec.DataSets.size() == 2 && "benchmarks carry two data sets");
  WorkloadInstance Instance;
  Instance.Spec = Spec;
  Instance.Prog = Program(Spec.Benchmark);

  // Structure: per-procedure branch-site targets jittered around the
  // mean so procedures differ in size.
  Rng Structure(mixSeed(Spec.StructureSeed, /*Salt=*/1, 0));
  double MeanSites = static_cast<double>(Spec.TotalBranchSites) /
                     static_cast<double>(Spec.NumProcs);
  for (unsigned P = 0; P != Spec.NumProcs; ++P) {
    GenParams Shape = Spec.Shape;
    double Jitter = 0.5 + Structure.nextDouble(); // [0.5, 1.5)
    Shape.TargetBranchSites = std::max(
        1u, static_cast<unsigned>(std::llround(MeanSites * Jitter)));
    Rng ProcRng(mixSeed(Spec.StructureSeed, /*Salt=*/2, P));
    Instance.Generated.push_back(generateProcedure(
        Spec.Benchmark + "_p" + std::to_string(P), Shape, ProcRng));
    Instance.Prog.addProcedure(Instance.Generated.back().Proc);
  }

  // Benchmark-common biases (shared by both data sets).
  std::vector<std::vector<CommonBlockBias>> Common;
  for (unsigned P = 0; P != Spec.NumProcs; ++P) {
    Rng CommonRng(mixSeed(Spec.StructureSeed, /*Salt=*/3, P));
    Common.push_back(
        drawCommonBiases(Spec, Instance.Generated[P], CommonRng));
  }

  for (const DataSetSpec &DsSpec : Spec.DataSets) {
    WorkloadDataSet Ds;
    Ds.Name = DsSpec.Name;
    Ds.BranchBudget = DsSpec.BranchBudget;

    Rng CommonBudget(mixSeed(Spec.StructureSeed, /*Salt=*/4, 0));
    Rng DsBudget(mixSeed(DsSpec.Seed, /*Salt=*/5, 0));
    std::vector<uint64_t> Budgets = splitBudget(
        Spec, DsSpec.BranchBudget, DsSpec.Divergence, CommonBudget, DsBudget);

    for (unsigned P = 0; P != Spec.NumProcs; ++P) {
      Rng BehaviorRng(mixSeed(DsSpec.Seed, /*Salt=*/6, P));
      Ds.Behaviors.push_back(makeBehavior(Instance.Generated[P], Common[P],
                                          DsSpec.Divergence, BehaviorRng));
      Rng TraceRng(mixSeed(DsSpec.Seed, /*Salt=*/7, P));
      TraceGenOptions TraceOptions;
      TraceOptions.BranchBudget = Budgets[P];
      ExecutionTrace Trace =
          Budgets[P] == 0
              ? ExecutionTrace()
              : generateTrace(Instance.Prog.proc(P), Ds.Behaviors.back(),
                              TraceRng, TraceOptions);
      Ds.Profile.Procs.push_back(
          collectProfile(Instance.Prog.proc(P), Trace));
      Ds.Traces.push_back(std::move(Trace));
    }
    Instance.DataSets.push_back(std::move(Ds));
  }

  // Self-check through balign-verify: a generated program and its
  // profiles must satisfy the same invariants the verifier enforces on
  // external inputs. A generator bug aborts here, at the source, rather
  // than surfacing as a mysterious downstream alignment failure.
  DiagnosticEngine Diags;
  checkCfg(Instance.Prog, Diags);
  for (const WorkloadDataSet &Ds : Instance.DataSets)
    checkProfileFlow(Instance.Prog, Ds.Profile, Diags, VerifyOptions());
  std::string What = "workload generator self-check (" + Spec.Benchmark + ")";
  reportFatalIfErrors(Diags, What.c_str());
  return Instance;
}

const std::vector<WorkloadSpec> &balign::benchmarkSuite() {
  static const std::vector<WorkloadSpec> Suite = [] {
    std::vector<WorkloadSpec> S;

    { // 026.compress: Lempel-Ziv compressor; tight hashing loops.
      WorkloadSpec W;
      W.Benchmark = "com";
      W.Description = "Lempel-Ziv compressor";
      W.StructureSeed = 0xC0117e55ULL;
      W.NumProcs = 6;
      W.TotalBranchSites = 70;
      W.Shape.MultiwayFraction = 0.02;
      W.Shape.LoopFraction = 0.45;
      W.Shape.BlockSizeMin = 3;
      W.Shape.BlockSizeMax = 10;
      W.LayoutFriendliness = 0.3;
      W.Shape.TopTestedLoopFraction = 0.2;
      W.TripCountMin = 8;
      W.TripCountMax = 100;
      W.ProcSkew = 1.2;
      W.DataSets = {{"in", 0xD5071ULL, 11800, 0.3},
                    {"st", 0xD5072ULL, 135400, 0.3}};
      S.push_back(std::move(W));
    }

    { // 015.doduc: nuclear reactor thermohydraulics; deep FP nests.
      WorkloadSpec W;
      W.Benchmark = "dod";
      W.Description = "nuclear reactor thermohydraulic simulation";
      W.StructureSeed = 0xD0D0CULL;
      W.NumProcs = 42;
      W.TotalBranchSites = 700;
      W.Shape.MultiwayFraction = 0.01;
      W.Shape.LoopFraction = 0.18;
      W.Shape.MaxDepth = 7;
      W.Shape.ElseFraction = 0.75;
      W.Shape.BlockSizeMin = 6;
      W.Shape.BlockSizeMax = 20;
      W.LayoutFriendliness = 0.08;
      W.Shape.TopTestedLoopFraction = 0.35;
      W.CondBiasMin = 0.90;
      W.CondBiasMax = 0.99;
      W.TripCountMin = 4;
      W.TripCountMax = 12;
      W.ProcSkew = 1.1;
      W.DataSets = {{"re", 0xD0D1ULL, 77600, 0.15},
                    {"sm", 0xD0D2ULL, 13400, 0.15}};
      S.push_back(std::move(W));
    }

    { // 023.eqntott: boolean equations to truth tables; dominant loops.
      WorkloadSpec W;
      W.Benchmark = "eqn";
      W.Description = "translates boolean equations to truth tables";
      W.StructureSeed = 0xE1707ULL;
      W.NumProcs = 14;
      W.TotalBranchSites = 330;
      W.Shape.MultiwayFraction = 0.02;
      W.Shape.LoopFraction = 0.4;
      W.Shape.BlockSizeMin = 3;
      W.Shape.BlockSizeMax = 9;
      W.LayoutFriendliness = 0.25;
      W.Shape.TopTestedLoopFraction = 0.0;
      W.CondBiasMin = 0.80;
      W.CondBiasMax = 0.98;
      W.TripCountMin = 16;
      W.TripCountMax = 128;
      W.ProcSkew = 1.6;
      W.DataSets = {{"fx", 0xE1701ULL, 46500, 0.3},
                    {"ip", 0xE1702ULL, 335800, 0.3}};
      S.push_back(std::move(W));
    }

    { // 008.espresso: boolean function minimizer; many small procedures.
      WorkloadSpec W;
      W.Benchmark = "esp";
      W.Description = "boolean function minimizer";
      W.StructureSeed = 0xE59e550ULL;
      W.NumProcs = 179;
      W.TotalBranchSites = 1550;
      W.Shape.MultiwayFraction = 0.04;
      W.Shape.LoopFraction = 0.3;
      W.Shape.BlockSizeMin = 3;
      W.Shape.BlockSizeMax = 12;
      W.LayoutFriendliness = 0.3;
      W.Shape.TopTestedLoopFraction = 0.25;
      W.TripCountMin = 4;
      W.TripCountMax = 40;
      W.ProcSkew = 0.9;
      W.DataSets = {{"ti", 0xE5901ULL, 87000, 0.25},
                    {"tl", 0xE5902ULL, 157200, 0.25}};
      S.push_back(std::move(W));
    }

    { // 089.su2cor: statistical mechanics; huge predictable FP loops.
      WorkloadSpec W;
      W.Benchmark = "su2";
      W.Description = "statistical mechanics calculation";
      W.StructureSeed = 0x52C08ULL;
      W.NumProcs = 20;
      W.TotalBranchSites = 340;
      W.Shape.MultiwayFraction = 0.01;
      W.Shape.LoopFraction = 0.55;
      W.Shape.ElseFraction = 0.2;
      W.Shape.BlockSizeMin = 10;
      W.Shape.BlockSizeMax = 40;
      W.LayoutFriendliness = 0.85;
      W.Shape.TopTestedLoopFraction = 0.02;
      W.TripCountMin = 24;
      W.TripCountMax = 200;
      W.ProcSkew = 1.3;
      W.DataSets = {{"re", 0x52C01ULL, 168300, 0.2},
                    {"sh", 0x52C02ULL, 13100, 0.2}};
      S.push_back(std::move(W));
    }

    { // 022.li: Lisp interpreter; multiway dispatch everywhere.
      WorkloadSpec W;
      W.Benchmark = "xli";
      W.Description = "Lisp interpreter";
      W.StructureSeed = 0x115BULL;
      W.NumProcs = 26;
      W.TotalBranchSites = 400;
      W.Shape.MultiwayFraction = 0.12;
      W.Shape.MultiwayArmsMin = 6;
      W.Shape.MultiwayArmsMax = 24;
      W.Shape.LoopFraction = 0.3;
      W.Shape.BlockSizeMin = 3;
      W.Shape.BlockSizeMax = 10;
      W.LayoutFriendliness = 0.3;
      W.Shape.TopTestedLoopFraction = 0.25;
      W.TripCountMin = 4;
      W.TripCountMax = 32;
      W.ProcSkew = 1.0;
      W.DataSets = {{"ne", 0x115B1ULL, 100, 0.2},
                    {"q7", 0x115B2ULL, 42000, 0.2}};
      S.push_back(std::move(W));
    }
    return S;
  }();
  return Suite;
}

WorkloadInstance balign::buildWorkloadByName(const std::string &Benchmark) {
  for (const WorkloadSpec &Spec : benchmarkSuite())
    if (Spec.Benchmark == Benchmark)
      return buildWorkload(Spec);
  assert(false && "unknown benchmark name");
  return WorkloadInstance();
}
