//===- workloads/Workloads.h - The synthetic SPEC92-like suite -------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The six-benchmark, twelve-data-set suite standing in for the paper's
/// SPEC92 subset (Table 1). Each benchmark is a deterministic synthetic
/// program whose shape parameters (procedure count, branch sites, loop /
/// multiway mix, block sizes) mimic the original's personality, and each
/// carries two "data sets": branch-behavior models plus a branch budget
/// scaled to 1/1000 of Table 1's executed branch instructions.
///
/// The two data sets of a benchmark share most branch biases (drawn from
/// a benchmark-common stream) but differ in bias magnitude, occasional
/// direction flips, trip counts, and which procedures are hot — giving
/// the realistic train/test divergence the Figure 3 cross-validation
/// study needs.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_WORKLOADS_WORKLOADS_H
#define BALIGN_WORKLOADS_WORKLOADS_H

#include "ir/CFG.h"
#include "profile/Profile.h"
#include "profile/Trace.h"
#include "workloads/Generator.h"

#include <string>
#include <vector>

namespace balign {

/// Parameters of one data set (one "input" to the benchmark).
struct DataSetSpec {
  std::string Name;      ///< e.g. "in", "st".
  uint64_t Seed = 1;     ///< Data-set-specific random stream.
  uint64_t BranchBudget = 10000; ///< Executed branches (Table 1 / 1000).
  /// How strongly this data set's biases may deviate from the
  /// benchmark-common biases (0 = identical twins, 1 = independent).
  double Divergence = 0.25;
};

/// Parameters of one benchmark.
struct WorkloadSpec {
  std::string Benchmark;   ///< e.g. "com".
  std::string Description; ///< Table 1's description column.
  uint64_t StructureSeed = 1;

  unsigned NumProcs = 10;
  unsigned TotalBranchSites = 100; ///< Static sites across all procedures.
  GenParams Shape;

  /// Probability that a non-loop conditional is biased toward its
  /// source-order-adjacent successor; high values model code whose
  /// original layout is already branch-friendly (su2cor), low values
  /// model code with lots of taken branches to fix (doduc).
  double LayoutFriendliness = 0.5;

  /// Typical loop trip-count range (uniform draw per loop header).
  double TripCountMin = 4.0;
  double TripCountMax = 48.0;

  /// Bias range for non-loop conditionals (probability of the favored
  /// successor). Real branch profiles are heavily skewed; benchmarks
  /// with near-deterministic checks (doduc's convergence tests) push
  /// this toward 1, which raises the removable share of their penalty.
  double CondBiasMin = 0.76;
  double CondBiasMax = 0.98;

  /// Zipf exponent controlling how skewed the per-procedure execution
  /// budget distribution is (0 = uniform).
  double ProcSkew = 1.1;

  std::vector<DataSetSpec> DataSets; ///< Exactly two.
};

/// One fully-built data set: behaviors, traces, and collected profiles.
struct WorkloadDataSet {
  std::string Name;
  std::vector<BranchBehavior> Behaviors; ///< Per procedure.
  std::vector<ExecutionTrace> Traces;    ///< Per procedure.
  ProgramProfile Profile;                ///< Collected from Traces.
  uint64_t BranchBudget = 0;
};

/// A built benchmark: the program plus both data sets.
struct WorkloadInstance {
  WorkloadSpec Spec;
  Program Prog;
  std::vector<GeneratedProcedure> Generated; ///< Structural tags.
  std::vector<WorkloadDataSet> DataSets;

  /// Qualified name "bench.dataset" as used in the paper's figures.
  std::string dataSetLabel(size_t Index) const {
    return Spec.Benchmark + "." + DataSets[Index].Name;
  }
};

/// The six benchmark specs (com, dod, eqn, esp, su2, xli) with the
/// Table 1 data-set pairs.
const std::vector<WorkloadSpec> &benchmarkSuite();

/// Builds a benchmark: generates the program and both data sets.
/// Deterministic in the spec's seeds.
WorkloadInstance buildWorkload(const WorkloadSpec &Spec);

/// Convenience: finds a suite spec by benchmark name and builds it.
/// Asserts the name exists.
WorkloadInstance buildWorkloadByName(const std::string &Benchmark);

} // namespace balign

#endif // BALIGN_WORKLOADS_WORKLOADS_H
