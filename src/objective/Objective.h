//===- objective/Objective.h - Layout scoring objectives ------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Objective functions over block layouts. The 1997 paper optimizes pure
/// fall-through adjacency (every taken branch pays, position is otherwise
/// irrelevant); the Ext-TSP line of work (Mestre/Pupyrev/Umboh, "On the
/// Extended TSP Problem"; Newell/Pupyrev, "Improved Basic Block
/// Reordering") scores *near* jumps too: a branch whose target lands
/// within an I-cache window of the branch site is almost as good as a
/// fall through, with credit decaying linearly in byte distance.
///
/// ObjectiveFn abstracts "how good is this arrangement of blocks" so the
/// chain-merging aligner can optimize either objective, and studies can
/// score any layout under both. Scores are *maximized* (higher = better),
/// the opposite sign convention from penalty cycles.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_OBJECTIVE_OBJECTIVE_H
#define BALIGN_OBJECTIVE_OBJECTIVE_H

#include "ir/CFG.h"
#include "machine/MachineModel.h"
#include "objective/Layout.h"
#include "profile/Profile.h"

#include <memory>
#include <string>
#include <vector>

namespace balign {

/// Which objective an Ext-TSP-style aligner maximizes.
enum class ObjectiveKind : uint8_t {
  Fallthrough = 0, ///< Negated Section 2.2 penalty (the paper's objective).
  ExtTsp = 1,      ///< Windowed locality score (Newell/Pupyrev).
};

/// Stable flag spelling ("fallthrough" / "exttsp").
const char *objectiveKindName(ObjectiveKind Kind);

/// Parses an objectiveKindName spelling; returns false on unknown names.
bool parseObjectiveKind(const std::string &Name, ObjectiveKind &Out);

/// A score over arrangements of basic blocks; higher is better.
class ObjectiveFn {
public:
  virtual ~ObjectiveFn();

  /// Short stable identifier ("fallthrough", "exttsp").
  virtual std::string name() const = 0;

  /// Scores \p Seq — distinct blocks of \p Proc laid out consecutively,
  /// possibly a strict subset (a chain). Only score attributable to the
  /// blocks *in* Seq is counted: edges between Seq members score by their
  /// in-sequence placement, and blocks outside Seq contribute nothing.
  /// Summing scoreSequence over the chains of a partition therefore
  /// under-approximates the score of any concatenation of those chains,
  /// and on a full layout's Order it is the exact layout score.
  virtual double scoreSequence(const Procedure &Proc,
                               const ProcedureProfile &Profile,
                               const std::vector<BlockId> &Seq) const = 0;

  /// Scores a complete (valid) layout of \p Proc.
  double scoreLayout(const Procedure &Proc, const ProcedureProfile &Profile,
                     const Layout &L) const;
};

/// The paper's objective: the negated Section 2.2 control penalty, so
/// that maximizing this objective minimizes penalty cycles. Wraps
/// blockLayoutPenalty — on a full layout, scoreLayout is exactly
/// -evaluateLayout(Proc, L, Model, Profile, Profile) (penalties are
/// integers, so the double is exact below 2^53 cycles). On a chain, each
/// member is charged with its in-chain successor (the last with the
/// detached end-of-layout term).
class FallthroughObjective : public ObjectiveFn {
public:
  explicit FallthroughObjective(MachineModel Model) : Model(std::move(Model)) {}

  std::string name() const override { return "fallthrough"; }
  double scoreSequence(const Procedure &Proc, const ProcedureProfile &Profile,
                       const std::vector<BlockId> &Seq) const override;

private:
  MachineModel Model;
};

/// The Ext-TSP objective. Every executed CFG edge (From -> To) with both
/// endpoints placed scores, per execution:
///   * 1.0 when To starts exactly at From's end (fall through);
///   * ExtTspForwardWeight * (1 - d/ForwardWindow) when To lies d bytes
///     (0 < d < ForwardWindow) past From's end;
///   * ExtTspBackwardWeight * (1 - d/BackwardWindow) when To lies d bytes
///     (0 < d <= BackwardWindow) before From's end;
///   * 0 otherwise.
/// Block addresses come from InstrCount * BytesPerInstr, with no fixup
/// jumps modeled (the objective scores the permutation itself, as in the
/// Ext-TSP literature). With windows of 1, only fall throughs score and
/// the objective degenerates to weighted adjacency — the classical
/// objective the paper's DTSP maximizes (see DESIGN.md §15).
class ExtTspObjective : public ObjectiveFn {
public:
  explicit ExtTspObjective(MachineModel Model) : Model(std::move(Model)) {}

  std::string name() const override { return "exttsp"; }
  double scoreSequence(const Procedure &Proc, const ProcedureProfile &Profile,
                       const std::vector<BlockId> &Seq) const override;

private:
  MachineModel Model;
};

/// Factory over ObjectiveKind; \p Model supplies penalties (fallthrough)
/// or windows and weights (exttsp).
std::unique_ptr<ObjectiveFn> makeObjective(ObjectiveKind Kind,
                                           const MachineModel &Model);

} // namespace balign

#endif // BALIGN_OBJECTIVE_OBJECTIVE_H
