//===- objective/Penalty.h - Layout penalty model (paper Section 2.2) ---------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The penalty model of Section 2.2 / Table 3, implemented once and shared
/// by the DTSP cost-matrix builder, the layout evaluator, and the layout
/// materializer so that "DTSP walk cost" and "evaluated layout penalty"
/// agree by construction.
///
/// Every function takes *two* profiles:
///  * \p Predict fixes the compile-time decisions — the static prediction
///    (most common CFG successor) and the fixup-jump orientation. This is
///    always the training profile.
///  * \p Charge supplies the edge frequencies penalties are charged
///    against. Same-data-set evaluation passes Charge = Predict;
///    cross-validation (paper Section 4.2) passes the testing profile,
///    which is how a branch whose majority direction flips between data
///    sets ends up paying mispredicts on its new majority path.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_OBJECTIVE_PENALTY_H
#define BALIGN_OBJECTIVE_PENALTY_H

#include "objective/Layout.h"
#include "ir/CFG.h"
#include "machine/MachineModel.h"
#include "profile/Profile.h"

namespace balign {

/// Penalty cycles accrued at block \p B in any layout where \p LayoutSucc
/// (InvalidBlock = end of layout / unrelated block follows) succeeds B.
///
/// Cases (Alpha 21164 values in parentheses):
///  * Return: 0.
///  * Unconditional: 0 if the successor follows in layout, else an
///    unconditional branch per execution (2).
///  * Conditional, predicted successor laid out next: mispredicts only
///    (5 x other-edge count).
///  * Conditional, other successor laid out next: correctly predicted
///    taken branches pay the misfetch (1 x predicted-edge count) plus
///    mispredicts (5 x other).
///  * Conditional, neither laid out next: a fixup jump is required; the
///    cheaper orientation under \p Predict is charged (see
///    fixupTakenToPredicted).
///  * Multiway: layout-independent — predicted-target executions pay the
///    misfetch (1), every other target pays the indirect-branch penalty
///    (3).
uint64_t blockLayoutPenalty(const Procedure &Proc, const MachineModel &Model,
                            const ProcedureProfile &Predict,
                            const ProcedureProfile &Charge, BlockId B,
                            BlockId LayoutSucc);

/// Decides the fixup orientation for conditional block \p B when neither
/// successor is its layout successor: returns true if the conditional
/// branch should target the predicted successor directly (predict-taken;
/// the fixup jump then realizes the unlikely edge), false if the branch
/// should be inverted so the predicted successor is reached through the
/// fall-through fixup jump (predict-not-taken). Chooses whichever is
/// cheaper under \p Predict, breaking ties toward predict-taken.
bool fixupTakenToPredicted(const Procedure &Proc, const MachineModel &Model,
                           const ProcedureProfile &Predict, BlockId B);

/// Total penalty of \p Layout: the sum of blockLayoutPenalty over
/// consecutive layout pairs plus the final block's end-of-layout term.
/// With Charge == Predict this equals the cost of the corresponding DTSP
/// walk (tested invariant).
uint64_t evaluateLayout(const Procedure &Proc, const Layout &Layout,
                        const MachineModel &Model,
                        const ProcedureProfile &Predict,
                        const ProcedureProfile &Charge);

} // namespace balign

#endif // BALIGN_OBJECTIVE_PENALTY_H
