//===- objective/Penalty.cpp ------------------------------------------------===//

#include "objective/Penalty.h"

#include <cassert>

using namespace balign;

bool balign::fixupTakenToPredicted(const Procedure &Proc,
                                   const MachineModel &Model,
                                   const ProcedureProfile &Predict,
                                   BlockId B) {
  assert(Proc.block(B).Kind == TerminatorKind::Conditional &&
         "fixup orientation is a conditional-branch question");
  size_t P = Predict.hottestSuccessor(B);
  uint64_t FreqP = Predict.edgeCount(B, P);
  uint64_t FreqO = Predict.edgeCount(B, 1 - P);
  // (a) Branch targets the predicted successor (predict taken); the
  //     unlikely edge leaves through a fall-through fixup jump.
  uint64_t TakenToPredicted =
      FreqP * Model.CondTakenCorrect +
      FreqO * (Model.CondMispredict + Model.UncondBranch);
  // (b) Branch inverted: predicted successor reached by falling through
  //     to a fixup jump (predict not-taken); the unlikely edge is the
  //     taken target.
  uint64_t FallThroughToPredicted =
      FreqP * (Model.CondFallThrough + Model.UncondBranch) +
      FreqO * Model.CondMispredict;
  return TakenToPredicted <= FallThroughToPredicted;
}

uint64_t balign::blockLayoutPenalty(const Procedure &Proc,
                                    const MachineModel &Model,
                                    const ProcedureProfile &Predict,
                                    const ProcedureProfile &Charge, BlockId B,
                                    BlockId LayoutSucc) {
  const std::vector<BlockId> &Succs = Proc.successors(B);
  switch (Proc.block(B).Kind) {
  case TerminatorKind::Return:
    return 0;

  case TerminatorKind::Unconditional: {
    if (LayoutSucc == Succs[0])
      return 0; // Plain fall-through: the paper's "no branch" row.
    return Charge.edgeCount(B, 0) * Model.UncondBranch;
  }

  case TerminatorKind::Conditional: {
    size_t P = Predict.hottestSuccessor(B);
    size_t O = 1 - P;
    uint64_t ChargeP = Charge.edgeCount(B, P);
    uint64_t ChargeO = Charge.edgeCount(B, O);
    if (LayoutSucc == Succs[P]) {
      // Predicted successor falls through; only the unlikely edge
      // mispredicts.
      return ChargeP * Model.CondFallThrough + ChargeO * Model.CondMispredict;
    }
    if (LayoutSucc == Succs[O]) {
      // Branch (correctly predicted taken) reaches the predicted
      // successor; the unlikely edge falls through but mispredicts.
      return ChargeP * Model.CondTakenCorrect + ChargeO * Model.CondMispredict;
    }
    // Neither successor follows: one edge needs a fixup jump. The
    // orientation is a compile-time decision made with Predict; cycles
    // are charged with Charge.
    if (fixupTakenToPredicted(Proc, Model, Predict, B))
      return ChargeP * Model.CondTakenCorrect +
             ChargeO * (Model.CondMispredict + Model.UncondBranch);
    return ChargeP * (Model.CondFallThrough + Model.UncondBranch) +
           ChargeO * Model.CondMispredict;
  }

  case TerminatorKind::Multiway: {
    // Layout-independent: a register branch never falls through, so the
    // same penalties accrue no matter which block succeeds it.
    size_t P = Predict.hottestSuccessor(B);
    uint64_t Sum = 0;
    for (size_t S = 0; S != Succs.size(); ++S)
      Sum += Charge.edgeCount(B, S) * (S == P ? Model.MultiwayPredicted
                                              : Model.MultiwayMispredict);
    return Sum;
  }
  }
  assert(false && "unknown terminator kind");
  return 0;
}

uint64_t balign::evaluateLayout(const Procedure &Proc, const Layout &Layout,
                                const MachineModel &Model,
                                const ProcedureProfile &Predict,
                                const ProcedureProfile &Charge) {
  assert(Layout.isValid(Proc) && "evaluating an invalid layout");
  uint64_t Total = 0;
  for (size_t I = 0; I != Layout.Order.size(); ++I) {
    BlockId B = Layout.Order[I];
    BlockId Next =
        I + 1 != Layout.Order.size() ? Layout.Order[I + 1] : InvalidBlock;
    Total += blockLayoutPenalty(Proc, Model, Predict, Charge, B, Next);
  }
  return Total;
}
