//===- objective/Layout.h - Block layouts and their materialization -----------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// A branch alignment is "essentially a permutation of the basic blocks of
/// each procedure, implemented with the appropriate inversions of
/// conditional branches and insertions or deletions of unconditional
/// jumps to ensure that program semantics are maintained" (paper,
/// Section 2.1). Layout holds the permutation; materializeLayout performs
/// the inversions and fixup insertions, assigns addresses, and records the
/// static prediction of every branch (most common CFG successor on the
/// *training* profile, per Section 3.3).
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_OBJECTIVE_LAYOUT_H
#define BALIGN_OBJECTIVE_LAYOUT_H

#include "ir/CFG.h"
#include "machine/MachineModel.h"
#include "profile/Profile.h"

#include <vector>

namespace balign {

/// A permutation of a procedure's blocks; Order[0] must be the entry.
struct Layout {
  std::vector<BlockId> Order;

  /// The identity ("original") layout of \p Proc.
  static Layout original(const Procedure &Proc);

  /// True if Order is a permutation of the blocks starting at the entry.
  bool isValid(const Procedure &Proc) const;
};

/// One emitted unit in a materialized layout: an original block or an
/// inserted fixup jump.
struct LayoutItem {
  /// Original block id, or InvalidBlock for an inserted fixup jump.
  BlockId Block = InvalidBlock;

  /// For fixup jumps: the CFG block the jump transfers to.
  BlockId FixupTarget = InvalidBlock;

  /// Start address in bytes from the procedure base.
  uint64_t Address = 0;

  /// Size in instructions (fixup jumps are a single instruction),
  /// excluding any long-form branch growth (see LongForm).
  uint32_t SizeInstrs = 1;

  /// Under MachineModel::Encoding == ShortLong: true when the item's
  /// branch had to take the long form because its short-form displacement
  /// could not reach the target. Adds LongBranchExtraInstrs instructions
  /// to the item's emitted size (itemBytes in objective/Displace.h).
  /// Always false under the default Fixed encoding.
  bool LongForm = false;

  bool isFixup() const { return Block == InvalidBlock; }
};

/// How a conditional block was arranged by the materializer.
struct BranchArrangement {
  /// Successor reached when the conditional branch is taken.
  BlockId TakenTarget = InvalidBlock;

  /// Successor ultimately reached on fall-through (possibly via a fixup
  /// jump placed directly after the block).
  BlockId FallThroughTarget = InvalidBlock;

  /// Static prediction: true = predict taken. Derived from the training
  /// profile (predict the most common CFG successor).
  bool PredictTaken = false;

  /// True if a fixup jump was inserted after the block to realize the
  /// fall-through edge.
  bool FallThroughViaFixup = false;
};

/// The executable form of a layout.
struct MaterializedLayout {
  std::vector<LayoutItem> Items;

  /// Indexed by original block id: position of that block in Items.
  std::vector<size_t> ItemOfBlock;

  /// Indexed by original block id; meaningful for Conditional blocks.
  std::vector<BranchArrangement> Arrangements;

  /// Indexed by original block id; for Multiway blocks: the successor
  /// index predicted by the (training-profile) static predictor.
  std::vector<size_t> MultiwayPrediction;

  /// Total size in bytes.
  uint64_t TotalBytes = 0;

  /// Number of inserted fixup jumps.
  size_t NumFixups = 0;

  /// Number of items whose branch took the long form (0 under Fixed).
  size_t NumLongBranches = 0;

  /// Address of original block \p Id.
  uint64_t blockAddress(BlockId Id) const {
    return Items[ItemOfBlock[Id]].Address;
  }
};

/// Knobs for materializeLayout.
struct MaterializeOptions {
  /// Delete the trailing jump instruction of unconditional blocks whose
  /// successor is their layout successor, as real compilers and linkers
  /// do. Shrinks fall-through-heavy (i.e. well-aligned) code, improving
  /// its instruction-cache footprint. Off by default so block sizes stay
  /// layout-independent (the paper's accounting, where the jump's cost
  /// lives entirely in the 2-cycle penalty).
  bool DeleteFallThroughJumps = false;
};

/// Materializes \p Layout for \p Proc: chooses branch directions and
/// static predictions from \p Train (most common CFG successor), inserts
/// fixup jumps where neither successor of a conditional — or the single
/// successor of an unconditional — can fall through, and assigns byte
/// addresses. For conditionals whose both successors are laid out
/// elsewhere, the cheaper of the two fixup orientations under \p Model
/// and \p Train is chosen (the same rule the cost matrix uses, so
/// materialized penalties equal DTSP edge costs).
MaterializedLayout materializeLayout(const Procedure &Proc,
                                     const Layout &Layout,
                                     const ProcedureProfile &Train,
                                     const MachineModel &Model,
                                     const MaterializeOptions &Options = {});

} // namespace balign

#endif // BALIGN_OBJECTIVE_LAYOUT_H
