//===- objective/Displace.cpp ---------------------------------------------===//

#include "objective/Displace.h"

#include "robust/FaultInjector.h"

#include <cassert>

using namespace balign;

uint64_t balign::assignItemAddresses(std::vector<LayoutItem> &Items,
                                     const MachineModel &Model) {
  uint64_t Address = 0;
  for (LayoutItem &Item : Items) {
    Item.Address = Address;
    uint64_t Bytes = itemBytes(Item, Model);
    assert(Address <= UINT64_MAX - Bytes &&
           "layout size overflows byte addressing");
    Address += Bytes;
  }
  return Address;
}

std::vector<BranchSite>
balign::collectBranchSites(const Procedure &Proc,
                           const MaterializedLayout &Mat) {
  std::vector<BranchSite> Sites;
  for (size_t I = 0; I != Mat.Items.size(); ++I) {
    const LayoutItem &Item = Mat.Items[I];
    if (Item.isFixup()) {
      Sites.push_back({I, Item.FixupTarget});
      continue;
    }
    BlockId B = Item.Block;
    switch (Proc.block(B).Kind) {
    case TerminatorKind::Return:
    case TerminatorKind::Multiway:
      // No displacement field: returns leave the procedure, a multiway's
      // register branch reaches any address.
      break;

    case TerminatorKind::Unconditional: {
      // The terminator is a real jump only when the successor is not the
      // next emitted block (fall throughs need no reach at all).
      const LayoutItem *Next =
          I + 1 != Mat.Items.size() ? &Mat.Items[I + 1] : nullptr;
      BlockId Succ = Proc.successors(B)[0];
      if (!Next || Next->isFixup() || Next->Block != Succ)
        Sites.push_back({I, Succ});
      break;
    }

    case TerminatorKind::Conditional:
      // The taken direction is always an emitted branch; the
      // fall-through side either needs no reach or is the following
      // fixup jump, which enumerates itself.
      Sites.push_back({I, Mat.Arrangements[B].TakenTarget});
      break;
    }
  }
  return Sites;
}

uint64_t balign::branchDisplacement(const MaterializedLayout &Mat,
                                    const MachineModel &Model,
                                    size_t ItemIndex, BlockId Target) {
  const LayoutItem &Item = Mat.Items[ItemIndex];
  uint64_t BranchEnd = Item.Address + itemBytes(Item, Model);
  uint64_t TargetAddr = Mat.blockAddress(Target);
  return TargetAddr >= BranchEnd ? TargetAddr - BranchEnd
                                 : BranchEnd - TargetAddr;
}

DisplaceStats balign::solveDisplacement(const Procedure &Proc,
                                        MaterializedLayout &Mat,
                                        const MachineModel &Model) {
  DisplaceStats Stats;
  if (Model.Encoding != BranchEncoding::ShortLong)
    return Stats;
  // balign-shield fault site: any failure inside the fixpoint (e.g. an
  // allocation failure on a pathological procedure) surfaces here for
  // the pipeline to isolate and degrade like any other stage fault.
  FaultInjector::instance().throwIfFault(FaultSite::DisplaceFixpoint);

  std::vector<BranchSite> Sites = collectBranchSites(Proc, Mat);
  for (LayoutItem &Item : Mat.Items)
    Item.LongForm = false;
  Mat.TotalBytes = assignItemAddresses(Mat.Items, Model);

  // Grow until fixpoint: widen every out-of-range branch, reassign,
  // repeat. Widening only adds bytes, so a branch in range of a *larger*
  // code span was already widened or stays in range — encodings never
  // shrink back, and each round either widens at least one of the
  // |Sites| branches or terminates.
  bool Changed = !Sites.empty();
  while (Changed) {
    ++Stats.Iterations;
    assert(Stats.Iterations <= Sites.size() + 1 &&
           "displacement fixpoint failed to converge");
    Changed = false;
    for (const BranchSite &Site : Sites) {
      LayoutItem &Item = Mat.Items[Site.ItemIndex];
      if (Item.LongForm)
        continue;
      if (branchDisplacement(Mat, Model, Site.ItemIndex, Site.Target) >
          Model.ShortBranchRange) {
        Item.LongForm = true;
        Changed = true;
      }
    }
    if (Changed)
      Mat.TotalBytes = assignItemAddresses(Mat.Items, Model);
  }

  for (const LayoutItem &Item : Mat.Items)
    if (Item.LongForm)
      ++Stats.NumLongBranches;
  Mat.NumLongBranches = Stats.NumLongBranches;
  return Stats;
}

uint64_t balign::longBranchExtraPenalty(const Procedure &Proc,
                                        const MaterializedLayout &Mat,
                                        const ProcedureProfile &Charge,
                                        const MachineModel &Model) {
  uint64_t Extra = 0;
  auto TakenCount = [&](BlockId B, BlockId Target) -> uint64_t {
    const std::vector<BlockId> &Succs = Proc.successors(B);
    for (size_t S = 0; S != Succs.size(); ++S)
      if (Succs[S] == Target)
        return Charge.edgeCount(B, S);
    return 0;
  };
  BlockId LastBlock = InvalidBlock;
  for (const LayoutItem &Item : Mat.Items) {
    if (!Item.isFixup())
      LastBlock = Item.Block;
    if (!Item.LongForm)
      continue;
    if (Item.isFixup()) {
      // A fixup jump executes once per traversal of the edge it
      // realizes; its owning conditional is the block item before it.
      assert(LastBlock != InvalidBlock && "fixup jump with no owner");
      Extra += Model.LongBranchPenalty * TakenCount(LastBlock, Item.FixupTarget);
    } else if (Proc.block(Item.Block).Kind == TerminatorKind::Unconditional) {
      Extra += Model.LongBranchPenalty * Charge.edgeCount(Item.Block, 0);
    } else {
      assert(Proc.block(Item.Block).Kind == TerminatorKind::Conditional &&
             "only branches with displacement fields can be long");
      Extra += Model.LongBranchPenalty *
               TakenCount(Item.Block, Mat.Arrangements[Item.Block].TakenTarget);
    }
  }
  return Extra;
}

uint64_t balign::longBranchEdgeSurcharge(const Procedure &Proc,
                                         const MachineModel &Model,
                                         const ProcedureProfile &Predict,
                                         const ProcedureProfile &Charge,
                                         BlockId B, BlockId LayoutSucc) {
  const std::vector<BlockId> &Succs = Proc.successors(B);
  switch (Proc.block(B).Kind) {
  case TerminatorKind::Return:
  case TerminatorKind::Multiway:
    return 0;

  case TerminatorKind::Unconditional:
    if (LayoutSucc == Succs[0])
      return 0; // Fall through: no branch to widen.
    return Charge.edgeCount(B, 0) * Model.LongBranchPenalty;

  case TerminatorKind::Conditional: {
    size_t P = Predict.hottestSuccessor(B);
    size_t O = 1 - P;
    uint64_t ChargeP = Charge.edgeCount(B, P);
    uint64_t ChargeO = Charge.edgeCount(B, O);
    if (LayoutSucc == Succs[P])
      return ChargeO * Model.LongBranchPenalty; // Unlikely edge is taken.
    if (LayoutSucc == Succs[O])
      return ChargeP * Model.LongBranchPenalty; // Likely edge is taken.
    // Fixup arrangement: one side leaves through the taken branch, the
    // other through the fixup jump — both are emitted branches.
    return (ChargeP + ChargeO) * Model.LongBranchPenalty;
  }
  }
  assert(false && "unknown terminator kind");
  return 0;
}
