//===- objective/Layout.cpp -------------------------------------------------===//

#include "objective/Layout.h"

#include "objective/Displace.h"
#include "objective/Penalty.h"

#include <cassert>
#include <numeric>

using namespace balign;

Layout Layout::original(const Procedure &Proc) {
  Layout L;
  L.Order.resize(Proc.numBlocks());
  std::iota(L.Order.begin(), L.Order.end(), 0);
  return L;
}

bool Layout::isValid(const Procedure &Proc) const {
  if (Order.size() != Proc.numBlocks())
    return false;
  if (Order.empty() || Order.front() != Proc.entry())
    return false;
  std::vector<bool> Seen(Proc.numBlocks(), false);
  for (BlockId Id : Order) {
    if (Id >= Proc.numBlocks() || Seen[Id])
      return false;
    Seen[Id] = true;
  }
  return true;
}

MaterializedLayout balign::materializeLayout(const Procedure &Proc,
                                             const Layout &Layout,
                                             const ProcedureProfile &Train,
                                             const MachineModel &Model,
                                             const MaterializeOptions &Options) {
  assert(Layout.isValid(Proc) && "materializing an invalid layout");
  MaterializedLayout Mat;
  Mat.ItemOfBlock.assign(Proc.numBlocks(), 0);
  Mat.Arrangements.assign(Proc.numBlocks(), BranchArrangement());
  Mat.MultiwayPrediction.assign(Proc.numBlocks(), 0);

  for (size_t I = 0; I != Layout.Order.size(); ++I) {
    BlockId B = Layout.Order[I];
    BlockId Next =
        I + 1 != Layout.Order.size() ? Layout.Order[I + 1] : InvalidBlock;

    LayoutItem Item;
    Item.Block = B;
    Item.SizeInstrs = Proc.block(B).InstrCount;
    Mat.ItemOfBlock[B] = Mat.Items.size();
    Mat.Items.push_back(Item);

    switch (Proc.block(B).Kind) {
    case TerminatorKind::Return:
      break;

    case TerminatorKind::Unconditional:
      // Falls through when possible; otherwise its own terminator is the
      // jump (no extra block needed). Optionally the redundant jump of a
      // fall-through block is deleted, shrinking the emitted code.
      if (Options.DeleteFallThroughJumps &&
          Next == Proc.successors(B)[0] && Proc.block(B).InstrCount > 1)
        --Mat.Items.back().SizeInstrs;
      break;

    case TerminatorKind::Multiway:
      Mat.MultiwayPrediction[B] = Train.hottestSuccessor(B);
      break;

    case TerminatorKind::Conditional: {
      const std::vector<BlockId> &Succs = Proc.successors(B);
      size_t P = Train.hottestSuccessor(B);
      size_t O = 1 - P;
      BranchArrangement &Arr = Mat.Arrangements[B];
      if (Next == Succs[P]) {
        // Predicted successor falls through; branch targets the other.
        Arr.TakenTarget = Succs[O];
        Arr.FallThroughTarget = Succs[P];
        Arr.PredictTaken = false;
      } else if (Next == Succs[O]) {
        Arr.TakenTarget = Succs[P];
        Arr.FallThroughTarget = Succs[O];
        Arr.PredictTaken = true;
      } else {
        // Neither successor follows: insert a fixup jump, oriented by
        // the same rule the penalty model uses.
        bool TakenToPredicted =
            fixupTakenToPredicted(Proc, Model, Train, B);
        BlockId TakenSucc = TakenToPredicted ? Succs[P] : Succs[O];
        BlockId FixupSucc = TakenToPredicted ? Succs[O] : Succs[P];
        Arr.TakenTarget = TakenSucc;
        Arr.FallThroughTarget = FixupSucc;
        Arr.PredictTaken = TakenToPredicted;
        Arr.FallThroughViaFixup = true;
        LayoutItem Fixup;
        Fixup.Block = InvalidBlock;
        Fixup.FixupTarget = FixupSucc;
        Fixup.SizeInstrs = 1;
        Mat.Items.push_back(Fixup);
        ++Mat.NumFixups;
      }
      break;
    }
    }
  }

  Mat.TotalBytes = assignItemAddresses(Mat.Items, Model);
  // Under a variable encoding the addresses above are only the starting
  // point: widening any out-of-range branch moves everything after it,
  // so the displacement fixpoint reassigns until every branch's chosen
  // form reaches its target (no-op under Fixed).
  solveDisplacement(Proc, Mat, Model);
  return Mat;
}
