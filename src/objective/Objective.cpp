//===- objective/Objective.cpp ----------------------------------------------===//

#include "objective/Objective.h"

#include "objective/Displace.h"
#include "objective/Penalty.h"

#include <cassert>
#include <limits>

using namespace balign;

ObjectiveFn::~ObjectiveFn() = default;

const char *balign::objectiveKindName(ObjectiveKind Kind) {
  switch (Kind) {
  case ObjectiveKind::Fallthrough:
    return "fallthrough";
  case ObjectiveKind::ExtTsp:
    return "exttsp";
  }
  return "unknown";
}

bool balign::parseObjectiveKind(const std::string &Name, ObjectiveKind &Out) {
  if (Name == "fallthrough") {
    Out = ObjectiveKind::Fallthrough;
    return true;
  }
  if (Name == "exttsp") {
    Out = ObjectiveKind::ExtTsp;
    return true;
  }
  return false;
}

double ObjectiveFn::scoreLayout(const Procedure &Proc,
                                const ProcedureProfile &Profile,
                                const Layout &L) const {
  assert(L.isValid(Proc) && "scoring an invalid layout");
  return scoreSequence(Proc, Profile, L.Order);
}

double FallthroughObjective::scoreSequence(
    const Procedure &Proc, const ProcedureProfile &Profile,
    const std::vector<BlockId> &Seq) const {
  uint64_t Penalty = 0;
  for (size_t I = 0; I != Seq.size(); ++I) {
    BlockId Next = I + 1 != Seq.size() ? Seq[I + 1] : InvalidBlock;
    Penalty += blockLayoutPenalty(Proc, Model, Profile, Profile, Seq[I], Next);
  }
  return -static_cast<double>(Penalty);
}

double ExtTspObjective::scoreSequence(const Procedure &Proc,
                                      const ProcedureProfile &Profile,
                                      const std::vector<BlockId> &Seq) const {
  // Byte address of each placed block; blocks outside Seq stay unplaced.
  constexpr uint64_t NotPlaced = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> Start(Proc.numBlocks(), NotPlaced);
  uint64_t Address = 0;
  for (BlockId B : Seq) {
    assert(Start[B] == NotPlaced && "sequence repeats a block");
    Start[B] = Address;
    Address += blockBytes(Proc, B);
  }

  double Score = 0.0;
  for (BlockId B : Seq) {
    uint64_t SrcEnd = Start[B] + blockBytes(Proc, B);
    const std::vector<BlockId> &Succs = Proc.successors(B);
    for (size_t S = 0; S != Succs.size(); ++S) {
      if (Start[Succs[S]] == NotPlaced)
        continue;
      uint64_t Count = Profile.edgeCount(B, S);
      if (Count == 0)
        continue;
      uint64_t Dst = Start[Succs[S]];
      if (Dst >= SrcEnd) {
        uint64_t Dist = Dst - SrcEnd;
        if (Dist == 0)
          Score += static_cast<double>(Count);
        else if (Dist < Model.ExtTspForwardWindow)
          Score += static_cast<double>(Count) * Model.ExtTspForwardWeight *
                   (1.0 - static_cast<double>(Dist) /
                              static_cast<double>(Model.ExtTspForwardWindow));
      } else {
        uint64_t Dist = SrcEnd - Dst;
        if (Dist <= Model.ExtTspBackwardWindow)
          Score += static_cast<double>(Count) * Model.ExtTspBackwardWeight *
                   (1.0 - static_cast<double>(Dist) /
                              static_cast<double>(Model.ExtTspBackwardWindow));
      }
    }
  }
  return Score;
}

std::unique_ptr<ObjectiveFn> balign::makeObjective(ObjectiveKind Kind,
                                                   const MachineModel &Model) {
  switch (Kind) {
  case ObjectiveKind::Fallthrough:
    return std::make_unique<FallthroughObjective>(Model);
  case ObjectiveKind::ExtTsp:
    break;
  }
  return std::make_unique<ExtTspObjective>(Model);
}
