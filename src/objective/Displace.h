//===- objective/Displace.h - Addresses and branch displacement -----------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The one place block and item addresses are computed. Seven call sites
/// used to hand-roll `InstrCount * BytesPerInstr` loops (objective
/// scoring, layout materialization, layout verification, the simulator,
/// lint, and the BTB/bimodal index hashes); they now share the checked
/// helpers below, so a change to the encoding model cannot leave two of
/// them silently disagreeing.
///
/// On top of the shared address assignment sits the branch displacement
/// fixpoint (Boender & Sacerdoti Coen, "On the correctness of a branch
/// displacement algorithm"): under MachineModel::Encoding == ShortLong a
/// branch within ShortBranchRange bytes of its target keeps the short
/// one-instruction form, a farther one grows by LongBranchExtraInstrs —
/// which moves every later address, which can push further branches out
/// of range. solveDisplacement starts all-short and widens out-of-range
/// branches until nothing changes; growth is monotone (a widened branch
/// never shrinks back), so the iteration terminates in at most
/// #branch-sites rounds and lands on the least fixpoint: no layout with
/// fewer long forms has every branch in range. The paper this mirrors
/// exists because real assemblers got exactly this loop wrong, so
/// analysis/DisplaceCheck.cpp re-proves reachability at final addresses
/// (`verify.displace.reachable`).
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_OBJECTIVE_DISPLACE_H
#define BALIGN_OBJECTIVE_DISPLACE_H

#include "ir/CFG.h"
#include "machine/MachineModel.h"
#include "objective/Layout.h"
#include "profile/Profile.h"

#include <cassert>
#include <vector>

namespace balign {

/// Byte size of a straight-line run of \p Instrs instructions. Asserts
/// the multiply cannot wrap (the text parser's MaxBlockInstrCount bound
/// makes an overflowing count unreachable from parsed input).
inline uint64_t instrBytes(uint64_t Instrs) {
  assert(Instrs <= UINT64_MAX / BytesPerInstr &&
         "instruction count overflows byte addressing");
  return Instrs * BytesPerInstr;
}

/// Byte size of block \p B under the fixed encoding (no long-form
/// growth); the unit every permutation-only scorer measures distance in.
inline uint64_t blockBytes(const Procedure &Proc, BlockId B) {
  return instrBytes(Proc.block(B).InstrCount);
}

/// Emitted byte size of \p Item: SizeInstrs plus the long-form growth of
/// \p Model when the item's branch was widened by solveDisplacement.
inline uint64_t itemBytes(const LayoutItem &Item, const MachineModel &Model) {
  uint64_t Instrs = Item.SizeInstrs;
  if (Item.LongForm)
    Instrs += Model.LongBranchExtraInstrs;
  return instrBytes(Instrs);
}

/// Assigns Items[i].Address sequentially from 0 using itemBytes and
/// returns the total size. Asserts the running sum never wraps.
uint64_t assignItemAddresses(std::vector<LayoutItem> &Items,
                             const MachineModel &Model);

/// One branch whose reach depends on addresses: the item carrying it and
/// the CFG block it transfers to. Enumerated sites are: a conditional
/// block's taken target, an inserted fixup jump's target, and the
/// terminator jump of an unconditional block that does not fall through.
/// Returns and multiway (register) branches carry no displacement.
struct BranchSite {
  size_t ItemIndex = 0;
  BlockId Target = InvalidBlock;
};

/// Enumerates the displacement-bearing branches of \p Mat in item order.
std::vector<BranchSite> collectBranchSites(const Procedure &Proc,
                                           const MaterializedLayout &Mat);

/// Byte displacement of the branch ending Items[\p ItemIndex] to the
/// start of \p Target: |target address - item end|, the span a
/// PC-relative offset field must cover.
uint64_t branchDisplacement(const MaterializedLayout &Mat,
                            const MachineModel &Model, size_t ItemIndex,
                            BlockId Target);

/// What solveDisplacement did, for logging and the property tests.
struct DisplaceStats {
  /// Widening rounds until nothing changed (>= 1 when any site exists).
  size_t Iterations = 0;

  /// Branches in long form at the fixpoint.
  size_t NumLongBranches = 0;
};

/// Runs the grow-until-fixpoint displacement algorithm over \p Mat under
/// \p Model: every branch starts short, any branch whose displacement at
/// current addresses exceeds ShortBranchRange is widened, addresses are
/// reassigned, and the sweep repeats until no branch widens. No-op under
/// the Fixed encoding. Deterministic: the result is a pure function of
/// (Proc, Mat, Model). balign-shield fault site `displace.fixpoint`.
DisplaceStats solveDisplacement(const Procedure &Proc, MaterializedLayout &Mat,
                                const MachineModel &Model);

/// Extra penalty cycles the long-form branches of \p Mat cost beyond the
/// encoding-blind evaluateLayout total: LongBranchPenalty per execution
/// that actually takes a widened branch (charged with \p Charge, like
/// every other penalty).
uint64_t longBranchExtraPenalty(const Procedure &Proc,
                                const MaterializedLayout &Mat,
                                const ProcedureProfile &Charge,
                                const MachineModel &Model);

/// Pairwise cost-matrix surcharge for the encoding-aware re-solve: the
/// extra cycles DTSP edge (\p B -> \p LayoutSucc) would pay if B's
/// branch needs the long form — LongBranchPenalty times the executions
/// that leave B through an emitted branch in that arrangement, mirroring
/// the case analysis of blockLayoutPenalty. Whether the branch *does* go
/// long depends on the whole layout, so the pipeline applies this only
/// to blocks observed long in the first solve's materialization; the
/// re-solve is then a standard one-round alternation with error bounded
/// by the total surcharge applied (DESIGN.md §17).
uint64_t longBranchEdgeSurcharge(const Procedure &Proc,
                                 const MachineModel &Model,
                                 const ProcedureProfile &Predict,
                                 const ProcedureProfile &Charge, BlockId B,
                                 BlockId LayoutSucc);

} // namespace balign

#endif // BALIGN_OBJECTIVE_DISPLACE_H
