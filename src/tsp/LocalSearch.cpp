//===- tsp/LocalSearch.cpp --------------------------------------------------===//

#include "tsp/LocalSearch.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace balign;

NeighborLists::NeighborLists(const SymmetricTsp &Sym, unsigned K) {
  size_t N = Sym.numCities();
  Lists.resize(N);
  size_t Keep = std::min<size_t>(K, N > 0 ? N - 1 : 0);
  std::vector<City> All(N);
  std::iota(All.begin(), All.end(), 0);
  for (City C = 0; C != N; ++C) {
    std::vector<City> Others;
    Others.reserve(N - 1);
    for (City O : All)
      if (O != C)
        Others.push_back(O);
    std::partial_sort(Others.begin(), Others.begin() + Keep, Others.end(),
                      [&](City A, City B) {
                        int64_t DA = Sym.dist(C, A);
                        int64_t DB = Sym.dist(C, B);
                        return DA != DB ? DA < DB : A < B;
                      });
    Others.resize(Keep);
    Lists[C] = std::move(Others);
  }
}

namespace {

/// Array-based tour with position index and don't-look bits.
class TourState {
public:
  TourState(const SymmetricTsp &Sym, const NeighborLists &Neighbors,
            std::vector<City> &Tour, const std::vector<City> *Seeds)
      : Sym(Sym), Neighbors(Neighbors), Order(Tour), Pos(Tour.size()) {
    for (size_t P = 0; P != Order.size(); ++P)
      Pos[Order[P]] = static_cast<uint32_t>(P);
    Queue.reserve(Order.size());
    if (Seeds) {
      for (City C : *Seeds)
        pushActive(C);
    } else {
      for (City C = 0; C != Order.size(); ++C)
        pushActive(C);
    }
  }

  /// Runs to exhaustion; Order holds the local optimum afterwards.
  void run() {
    while (!Queue.empty()) {
      City C = Queue.back();
      Queue.pop_back();
      InQueue[C] = false;
      // Retry the same city until it yields nothing; each success may
      // enable further moves around it.
      while (improveCity(C)) {
      }
    }
  }

private:
  const SymmetricTsp &Sym;
  const NeighborLists &Neighbors;
  std::vector<City> &Order;
  std::vector<uint32_t> Pos;
  std::vector<City> Queue;
  std::vector<bool> InQueue = std::vector<bool>(Order.size(), false);

  size_t size() const { return Order.size(); }

  City succ(City C) const { return Order[(Pos[C] + 1) % size()]; }
  City pred(City C) const { return Order[(Pos[C] + size() - 1) % size()]; }

  void pushActive(City C) {
    if (InQueue[C])
      return;
    InQueue[C] = true;
    Queue.push_back(C);
  }

  /// Reverses the tour segment running forward from city B to city C
  /// (inclusive); reverses whichever representation side is contiguous.
  void reverseSegment(City B, City C) {
    uint32_t I = Pos[B], J = Pos[C];
    size_t SegLen = (J + size() - I) % size() + 1;
    if (SegLen * 2 > size()) {
      // Reversing the complement yields the same cyclic tour.
      std::swap(I, J);
      I = (I + 1) % size();
      J = (J + size() - 1) % size();
    }
    // Reverse positions I..J walking inward cyclically.
    size_t Len = (J + size() - I) % size() + 1;
    for (size_t S = 0; S < Len / 2; ++S) {
      uint32_t A = (I + S) % size();
      uint32_t Z = (J + size() - S) % size();
      std::swap(Order[A], Order[Z]);
      Pos[Order[A]] = A;
      Pos[Order[Z]] = Z;
    }
  }

  bool improveCity(City A) {
    if (tryTwoOpt(A, /*Forward=*/true) || tryTwoOpt(A, /*Forward=*/false))
      return true;
    unsigned MaxSegment = std::min<unsigned>(MaxOrOptSegment,
                                             static_cast<unsigned>(size() / 2));
    for (unsigned L = 1; L <= MaxSegment; ++L)
      if (tryOrOpt(A, L))
        return true;
    return false;
  }

  /// Longest segment Or-opt relocates. Length-1..3 moves are the classic
  /// Or-opt; longer lengths realize the remaining 3-opt segment
  /// relocations, which matter here because chains of locked city pairs
  /// (= runs of basic blocks) want to move as units.
  static constexpr unsigned MaxOrOptSegment = 12;

  /// 2-opt: removes (A, B) where B = succ(A) (or pred for the backward
  /// direction) and (C, D); adds (A, C) and (B, D).
  bool tryTwoOpt(City A, bool Forward) {
    City B = Forward ? succ(A) : pred(A);
    int64_t DistAB = Sym.dist(A, B);
    for (City C : Neighbors.neighbors(A)) {
      int64_t DistAC = Sym.dist(A, C);
      if (DistAC >= DistAB)
        break; // Sorted list: no closer candidate remains.
      if (C == B)
        continue;
      City D = Forward ? succ(C) : pred(C);
      if (D == A)
        continue;
      int64_t Delta = DistAC + Sym.dist(B, D) - DistAB - Sym.dist(C, D);
      if (Delta >= 0)
        continue;
      // In forward orientation the reversed run is B..C; in backward
      // orientation the tour reads ...B A...D C... and reversing the
      // forward run A..D realizes the same reconnection.
      if (Forward)
        reverseSegment(B, C);
      else
        reverseSegment(A, D);
      pushActive(A);
      pushActive(B);
      pushActive(C);
      pushActive(D);
      return true;
    }
    return false;
  }

  /// Or-opt: moves the length-L segment starting at A to sit after some
  /// candidate city C elsewhere in the tour, in either orientation.
  bool tryOrOpt(City A, unsigned L) {
    if (size() < L + 3)
      return false;
    // Segment A = S0 .. SLast, with P before it and N after it.
    City Seg[MaxOrOptSegment];
    Seg[0] = A;
    for (unsigned I = 1; I < L; ++I)
      Seg[I] = succ(Seg[I - 1]);
    City SLast = Seg[L - 1];
    City P = pred(A);
    City Next = succ(SLast);
    if (Next == P)
      return false; // Segment plus endpoints is the whole tour.
    int64_t RemoveGain =
        Sym.dist(P, A) + Sym.dist(SLast, Next) - Sym.dist(P, Next);

    auto InSegment = [&](City X) {
      for (unsigned I = 0; I != L; ++I)
        if (Seg[I] == X)
          return true;
      return false;
    };

    // Candidate insertion points: after C, where C is near either
    // endpoint of the segment.
    for (unsigned EndIdx = 0; EndIdx != 2; ++EndIdx) {
      City Endpoint = EndIdx == 0 ? A : SLast;
      if (EndIdx == 1 && L == 1)
        break; // Same endpoint twice.
      for (City C : Neighbors.neighbors(Endpoint)) {
        if (InSegment(C) || C == P)
          continue;
        City D = succ(C);
        if (InSegment(D))
          continue;
        int64_t Base = Sym.dist(C, D);
        // Forward: C -> S0 ... SLast -> D. Reversed: C -> SLast ... S0 -> D.
        int64_t AddForward = Sym.dist(C, A) + Sym.dist(SLast, D);
        int64_t AddReversed = Sym.dist(C, SLast) + Sym.dist(A, D);
        bool Reversed = AddReversed < AddForward;
        int64_t Add = Reversed ? AddReversed : AddForward;
        int64_t Delta = Add - Base - RemoveGain;
        if (Delta >= 0)
          continue;
        applyOrOpt(Seg, L, C, Reversed);
        pushActive(A);
        pushActive(SLast);
        pushActive(P);
        pushActive(Next);
        pushActive(C);
        pushActive(D);
        return true;
      }
    }
    return false;
  }

  /// Rebuilds the order with segment \p Seg (length \p L) removed and
  /// reinserted directly after city \p C.
  void applyOrOpt(const City *Seg, unsigned L, City C, bool Reversed) {
    std::vector<City> NewOrder;
    NewOrder.reserve(size());
    std::vector<bool> InSeg(size(), false);
    for (unsigned I = 0; I != L; ++I)
      InSeg[Seg[I]] = true;
    for (City X : Order) {
      if (InSeg[X])
        continue;
      NewOrder.push_back(X);
      if (X == C) {
        for (unsigned I = 0; I != L; ++I)
          NewOrder.push_back(Reversed ? Seg[L - 1 - I] : Seg[I]);
      }
    }
    assert(NewOrder.size() == size() && "or-opt lost a city");
    Order = std::move(NewOrder);
    for (size_t Position = 0; Position != Order.size(); ++Position)
      Pos[Order[Position]] = static_cast<uint32_t>(Position);
  }
};

} // namespace

int64_t balign::localSearchSymmetric(const SymmetricTsp &Sym,
                                     const NeighborLists &Neighbors,
                                     std::vector<City> &Tour,
                                     const std::vector<City> *Seeds) {
  assert(isValidTour(Tour, Sym.numCities()) && "invalid input tour");
  if (Tour.size() >= 5) {
    TourState State(Sym, Neighbors, Tour, Seeds);
    State.run();
  }
  assert(isValidTour(Tour, Sym.numCities()) && "local search broke the tour");
  return Sym.tourCost(Tour);
}
