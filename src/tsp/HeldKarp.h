//===- tsp/HeldKarp.h - Held-Karp 1-tree lower bound ------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The Held-Karp lower bound on symmetric TSP tour length (Held & Karp
/// 1970/1971, the paper's references [6, 7]), computed by Lagrangian
/// ascent over 1-trees with a subgradient step schedule. The paper uses
/// this bound — via the same DTSP-to-STSP transformation used for
/// solving — to prove that its tours, and hence its branch alignments,
/// are within 0.3% of optimal on average.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_TSP_HELDKARP_H
#define BALIGN_TSP_HELDKARP_H

#include "tsp/Instance.h"

namespace balign {

/// Tuning for the subgradient ascent.
struct HeldKarpOptions {
  /// Total subgradient iterations; 0 selects an instance-size-scaled
  /// default (clamped to [2000, 30000]). Branch-alignment instances
  /// usually converge to the tour value well before the cap thanks to
  /// the relative-gap early stop.
  unsigned Iterations = 0;

  /// Initial step-size multiplier (the classical alpha, halved on
  /// stagnation).
  double InitialAlpha = 2.0;

  /// Stop once the bound is within this fraction of the incumbent tour
  /// (the bound cannot exceed it anyway). heldKarpBoundDirected converts
  /// this to an absolute tolerance on the *directed* cost scale before
  /// invoking the symmetric ascent (whose own upper bound is shifted by
  /// the huge pair-lock offset and useless for relative comparisons).
  double RelativeGapStop = 1e-4;

  /// Absolute early-stop tolerance in cost units; 0 disables. Set
  /// automatically by heldKarpBoundDirected from RelativeGapStop.
  double AbsoluteGapStop = 0.0;
};

/// Computes the Held-Karp lower bound for the symmetric instance
/// \p Sym. \p UpperBound must be the cost of some feasible tour (used
/// only to scale subgradient steps). The returned value never exceeds
/// the optimal tour cost.
double heldKarpBoundSymmetric(const SymmetricTsp &Sym, int64_t UpperBound,
                              const HeldKarpOptions &Options = {});

/// Held-Karp bound for a directed instance: transforms to the pair-locked
/// symmetric instance, bounds it, and maps the result back to directed
/// scale. \p UpperBound is the cost of some feasible *directed* tour.
double heldKarpBoundDirected(const DirectedTsp &Dtsp, int64_t UpperBound,
                             const HeldKarpOptions &Options = {});

} // namespace balign

#endif // BALIGN_TSP_HELDKARP_H
