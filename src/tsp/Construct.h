//===- tsp/Construct.h - Randomized tour construction ----------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Starting-tour construction for the iterated 3-Opt protocol. The paper
/// runs "5 times using randomized Greedy starts, 4 times using randomized
/// Nearest Neighbor starts, and once using the original ordering given by
/// the compiler". Both heuristics work directly on the directed instance
/// (the symmetric expansion is mechanical).
///
/// Randomization follows Johnson-McGeoch: instead of always taking the
/// single best candidate, choose uniformly among the best few.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_TSP_CONSTRUCT_H
#define BALIGN_TSP_CONSTRUCT_H

#include "support/Random.h"
#include "tsp/Instance.h"

namespace balign {

/// Randomized nearest-neighbor construction: start at a random city and
/// repeatedly move to one of the \p CandidateWindow nearest unvisited
/// cities (window 1 = classic deterministic NN from a random start).
std::vector<City> nearestNeighborTour(const DirectedTsp &Dtsp, Rng &Rng,
                                      unsigned CandidateWindow = 3);

/// Randomized greedy-edge construction: consider directed arcs in cost
/// order (with light randomized tie-jitter), accept an arc when its tail
/// has no successor yet, its head has no predecessor yet, and it closes
/// no premature cycle; finally stitch the resulting path fragments
/// together in arbitrary order.
std::vector<City> greedyEdgeTour(const DirectedTsp &Dtsp, Rng &Rng);

/// The canonical identity tour 0, 1, ..., N-1 ("the original ordering
/// given by the compiler" once the alignment layer maps blocks in program
/// order).
std::vector<City> canonicalTour(size_t N);

} // namespace balign

#endif // BALIGN_TSP_CONSTRUCT_H
