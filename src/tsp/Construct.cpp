//===- tsp/Construct.cpp ----------------------------------------------------===//

#include "tsp/Construct.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace balign;

std::vector<City> balign::nearestNeighborTour(const DirectedTsp &Dtsp,
                                              Rng &Rng,
                                              unsigned CandidateWindow) {
  size_t N = Dtsp.numCities();
  assert(N >= 1 && "empty instance");
  std::vector<City> Tour;
  Tour.reserve(N);
  std::vector<bool> Visited(N, false);

  City Current = static_cast<City>(Rng.nextIndex(N));
  Tour.push_back(Current);
  Visited[Current] = true;

  std::vector<City> Candidates;
  while (Tour.size() != N) {
    // Gather the best `CandidateWindow` unvisited continuations.
    Candidates.clear();
    for (City Next = 0; Next != N; ++Next) {
      if (Visited[Next])
        continue;
      Candidates.push_back(Next);
    }
    size_t Window = std::min<size_t>(std::max(1u, CandidateWindow),
                                     Candidates.size());
    std::partial_sort(Candidates.begin(), Candidates.begin() + Window,
                      Candidates.end(), [&](City A, City B) {
                        int64_t CA = Dtsp.cost(Current, A);
                        int64_t CB = Dtsp.cost(Current, B);
                        return CA != CB ? CA < CB : A < B;
                      });
    Current = Candidates[Rng.nextIndex(Window)];
    Tour.push_back(Current);
    Visited[Current] = true;
  }
  return Tour;
}

namespace {

/// An arc candidate for greedy-edge construction.
struct Arc {
  int64_t Cost;
  uint64_t Jitter; // Randomized tie-break.
  City From;
  City To;

  bool operator<(const Arc &Other) const {
    if (Cost != Other.Cost)
      return Cost < Other.Cost;
    return Jitter < Other.Jitter;
  }
};

} // namespace

std::vector<City> balign::greedyEdgeTour(const DirectedTsp &Dtsp, Rng &Rng) {
  size_t N = Dtsp.numCities();
  assert(N >= 1 && "empty instance");
  if (N == 1)
    return {0};

  std::vector<Arc> Arcs;
  Arcs.reserve(N * (N - 1));
  for (City From = 0; From != N; ++From)
    for (City To = 0; To != N; ++To)
      if (From != To)
        Arcs.push_back({Dtsp.cost(From, To), Rng.next(), From, To});
  std::sort(Arcs.begin(), Arcs.end());

  std::vector<City> Succ(N, InvalidCity);
  std::vector<City> Pred(N, InvalidCity);
  // Fragment tracking via union-find so accepting an arc never closes a
  // premature cycle (only the final arc may close the full tour).
  std::vector<City> Leader(N);
  std::iota(Leader.begin(), Leader.end(), 0);
  auto Find = [&](City X) {
    while (Leader[X] != X) {
      Leader[X] = Leader[Leader[X]];
      X = Leader[X];
    }
    return X;
  };

  size_t Accepted = 0;
  for (const Arc &A : Arcs) {
    if (Accepted == N - 1)
      break;
    if (Succ[A.From] != InvalidCity || Pred[A.To] != InvalidCity)
      continue;
    if (Find(A.From) == Find(A.To))
      continue;
    Succ[A.From] = A.To;
    Pred[A.To] = A.From;
    Leader[Find(A.From)] = Find(A.To);
    ++Accepted;
  }

  // Stitch remaining fragments: follow each path from its head; append
  // heads in index order (the arcs connecting fragments are whatever the
  // costs dictate once local search runs).
  std::vector<City> Tour;
  Tour.reserve(N);
  for (City Head = 0; Head != N; ++Head) {
    if (Pred[Head] != InvalidCity)
      continue;
    for (City Walk = Head; Walk != InvalidCity; Walk = Succ[Walk])
      Tour.push_back(Walk);
  }
  assert(isValidTour(Tour, N) && "greedy construction broke the tour");
  return Tour;
}

std::vector<City> balign::canonicalTour(size_t N) {
  std::vector<City> Tour(N);
  std::iota(Tour.begin(), Tour.end(), 0);
  return Tour;
}
