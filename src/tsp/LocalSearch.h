//===- tsp/LocalSearch.h - Symmetric-TSP local search ----------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Neighbor-list-driven local search on symmetric instances, in the style
/// of Johnson & McGeoch's TSP case study (the paper's reference [10]).
/// Two move classes are searched to exhaustion with don't-look bits:
///
///  * 2-opt edge exchanges, and
///  * segment insertions (Or-opt) of length 1-3 in both orientations,
///    which are exactly the 3-opt reconnections reachable without a full
///    sequential depth-3 search.
///
/// On the pair-locked symmetric transformation of a directed instance,
/// improving moves can never break a locked pair edge (doing so would add
/// at least one forbidden edge, and the lock bonus exceeds the total
/// absolute real cost), so tours stay collapsible to directed tours.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_TSP_LOCALSEARCH_H
#define BALIGN_TSP_LOCALSEARCH_H

#include "tsp/Instance.h"

#include <vector>

namespace balign {

/// Precomputed K-nearest-neighbor candidate lists for a symmetric
/// instance; shared across all local-search invocations on it.
class NeighborLists {
public:
  NeighborLists() = default;
  NeighborLists(const SymmetricTsp &Sym, unsigned K);

  const std::vector<City> &neighbors(City C) const { return Lists[C]; }

private:
  std::vector<std::vector<City>> Lists;
};

/// Runs 2-opt + Or-opt local search to exhaustion on \p Tour (modified in
/// place); returns the final tour cost. If \p Seeds is non-null, only the
/// listed cities start active (the standard iterated-local-search trick
/// after a kick: everything far from the perturbed edges is already
/// locally optimal); otherwise every city starts active.
int64_t localSearchSymmetric(const SymmetricTsp &Sym,
                             const NeighborLists &Neighbors,
                             std::vector<City> &Tour,
                             const std::vector<City> *Seeds = nullptr);

} // namespace balign

#endif // BALIGN_TSP_LOCALSEARCH_H
