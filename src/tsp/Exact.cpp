//===- tsp/Exact.cpp ------------------------------------------------------------===//

#include "tsp/Exact.h"

#include <cassert>
#include <limits>
#include <vector>

using namespace balign;

int64_t balign::solveExactDirected(const DirectedTsp &Dtsp,
                                   std::vector<City> *Tour) {
  size_t N = Dtsp.numCities();
  assert(N >= 1 && N <= MaxExactCities && "instance size out of range");
  if (N == 1) {
    if (Tour)
      *Tour = {0};
    return 0;
  }

  // dp[Mask][J]: cheapest path from city 0 visiting exactly the cities of
  // Mask (over cities 1..N-1) and ending at city J (1-based index J+1).
  size_t M = N - 1;
  size_t NumMasks = static_cast<size_t>(1) << M;
  const int64_t Inf = std::numeric_limits<int64_t>::max() / 4;
  std::vector<int64_t> Dp(NumMasks * M, Inf);
  std::vector<uint8_t> Parent(NumMasks * M, 0xff);

  for (size_t J = 0; J != M; ++J)
    Dp[(static_cast<size_t>(1) << J) * M + J] =
        Dtsp.cost(0, static_cast<City>(J + 1));

  for (size_t Mask = 1; Mask != NumMasks; ++Mask) {
    for (size_t J = 0; J != M; ++J) {
      if (!(Mask & (static_cast<size_t>(1) << J)))
        continue;
      int64_t Here = Dp[Mask * M + J];
      if (Here >= Inf)
        continue;
      for (size_t K = 0; K != M; ++K) {
        if (Mask & (static_cast<size_t>(1) << K))
          continue;
        size_t NextMask = Mask | (static_cast<size_t>(1) << K);
        int64_t Candidate =
            Here + Dtsp.cost(static_cast<City>(J + 1),
                             static_cast<City>(K + 1));
        if (Candidate < Dp[NextMask * M + K]) {
          Dp[NextMask * M + K] = Candidate;
          Parent[NextMask * M + K] = static_cast<uint8_t>(J);
        }
      }
    }
  }

  size_t FullMask = NumMasks - 1;
  int64_t Best = Inf;
  size_t BestEnd = 0;
  for (size_t J = 0; J != M; ++J) {
    int64_t Candidate =
        Dp[FullMask * M + J] + Dtsp.cost(static_cast<City>(J + 1), 0);
    if (Candidate < Best) {
      Best = Candidate;
      BestEnd = J;
    }
  }
  assert(Best < Inf && "complete instance must have a tour");

  if (Tour) {
    std::vector<City> Reversed;
    size_t Mask = FullMask;
    size_t End = BestEnd;
    while (Mask != 0) {
      Reversed.push_back(static_cast<City>(End + 1));
      uint8_t Prev = Parent[Mask * M + End];
      Mask &= ~(static_cast<size_t>(1) << End);
      if (Prev == 0xff)
        break;
      End = Prev;
    }
    Tour->clear();
    Tour->push_back(0);
    for (size_t I = Reversed.size(); I != 0; --I)
      Tour->push_back(Reversed[I - 1]);
    assert(isValidTour(*Tour, N) && "reconstructed tour invalid");
  }
  return Best;
}
