//===- tsp/Transform.h - DTSP to STSP 2-city transformation ---------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The standard NP-completeness transformation from the directed to the
/// symmetric TSP that the paper's appendix uses: "Our DTSP to STSP
/// transformation replaces each city by a pair of cities, with the edge
/// between them locked into the tour."
///
/// City i of the directed instance becomes an *in* city (index i) and an
/// *out* city (index i + N). Distances:
///   d(i_in,  i_out) = -LockBonus    (the locked pair edge)
///   d(i_out, j_in ) = c(i, j)       for i != j (a real directed arc)
///   everything else = +Forbidden    (never profitable)
///
/// Any finite-cost symmetric tour alternates in/out and therefore encodes
/// a directed tour; its symmetric cost equals the directed cost minus
/// N * LockBonus, which the conversion helpers account for.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_TSP_TRANSFORM_H
#define BALIGN_TSP_TRANSFORM_H

#include "tsp/Instance.h"

namespace balign {

/// A directed instance together with its symmetric transformation.
struct SymmetricTransform {
  SymmetricTsp Sym;

  /// Number of cities in the original directed instance.
  size_t DirectedN = 0;

  /// Magnitude of the locked pair-edge bonus; also the forbidden-edge
  /// cost. Chosen larger than the total absolute cost of the directed
  /// instance so no finite improvement ever breaks a pair.
  int64_t LockBonus = 0;

  /// Expands a directed tour into the corresponding symmetric tour
  /// (i -> i_in, i_out).
  std::vector<City> toSymmetricTour(const std::vector<City> &Directed) const;

  /// Collapses an alternating symmetric tour back into a directed tour.
  /// Asserts the tour is alternating (every pair edge present).
  std::vector<City> toDirectedTour(const std::vector<City> &Symmetric) const;

  /// Converts a symmetric tour cost into the directed tour cost.
  int64_t toDirectedCost(int64_t SymCost) const {
    return SymCost + static_cast<int64_t>(DirectedN) * LockBonus;
  }

  /// True if the symmetric edge (A, B) is a locked pair edge.
  bool isPairEdge(City A, City B) const {
    size_t N = DirectedN;
    return A % N == B % N && A != B;
  }
};

/// Builds the symmetric transformation of \p Dtsp.
SymmetricTransform transformToSymmetric(const DirectedTsp &Dtsp);

} // namespace balign

#endif // BALIGN_TSP_TRANSFORM_H
