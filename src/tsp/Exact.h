//===- tsp/Exact.h - Exact directed-TSP oracle --------------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Exact Held-Karp dynamic programming over subsets for small directed
/// instances. This is the test oracle that lets us verify, on every small
/// procedure, that iterated 3-Opt actually reaches the optimum and that
/// the Held-Karp Lagrangian bound never exceeds it.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_TSP_EXACT_H
#define BALIGN_TSP_EXACT_H

#include "tsp/Instance.h"

namespace balign {

/// Maximum instance size solveExactDirected accepts (memory: 2^(N-1) * N
/// 64-bit entries).
inline constexpr size_t MaxExactCities = 18;

/// Solves \p Dtsp exactly; returns the optimal directed tour cost and, if
/// \p Tour is non-null, stores an optimal tour starting at city 0.
/// Requires 1 <= numCities() <= MaxExactCities.
int64_t solveExactDirected(const DirectedTsp &Dtsp,
                           std::vector<City> *Tour = nullptr);

} // namespace balign

#endif // BALIGN_TSP_EXACT_H
