//===- tsp/Transform.cpp ---------------------------------------------------===//

#include "tsp/Transform.h"

#include "robust/FaultInjector.h"
#include "trace/Scope.h"

#include <cassert>

using namespace balign;

SymmetricTransform balign::transformToSymmetric(const DirectedTsp &Dtsp) {
  ScopedSpan Span("tsp.transform", SpanCat::Solver);
  // balign-shield fault site: stands in for any failure while building
  // the O(N^2) symmetric instance (e.g. allocation failure on a
  // pathological procedure).
  FaultInjector::instance().throwIfFault(FaultSite::TspTransform);
  size_t N = Dtsp.numCities();
  assert(N >= 2 && "transformation needs at least two cities");
  SymmetricTransform Result;
  Result.DirectedN = N;
  Result.LockBonus = Dtsp.totalAbsCost() + 1;
  Result.Sym = SymmetricTsp(2 * N);

  int64_t Forbidden = Result.LockBonus;
  for (City A = 0; A != 2 * N; ++A)
    for (City B = A + 1; B != 2 * N; ++B)
      Result.Sym.setDist(A, B, Forbidden);
  for (City I = 0; I != N; ++I)
    Result.Sym.setDist(I, I + N, -Result.LockBonus);
  for (City I = 0; I != N; ++I)
    for (City J = 0; J != N; ++J)
      if (I != J)
        Result.Sym.setDist(I + N, J, Dtsp.cost(I, J));
  return Result;
}

std::vector<City> SymmetricTransform::toSymmetricTour(
    const std::vector<City> &Directed) const {
  assert(isValidTour(Directed, DirectedN) && "invalid directed tour");
  std::vector<City> Sym;
  Sym.reserve(2 * Directed.size());
  for (City I : Directed) {
    Sym.push_back(I);                                    // i_in
    Sym.push_back(I + static_cast<City>(DirectedN));     // i_out
  }
  return Sym;
}

std::vector<City> SymmetricTransform::toDirectedTour(
    const std::vector<City> &Symmetric) const {
  assert(isValidTour(Symmetric, 2 * DirectedN) && "invalid symmetric tour");
  size_t N = DirectedN;
  size_t Size = Symmetric.size();
  std::vector<City> Directed;
  Directed.reserve(N);

  std::vector<size_t> Pos(Size);
  for (size_t P = 0; P != Size; ++P)
    Pos[Symmetric[P]] = P;

  // Walk the cycle in the direction where each in-city is immediately
  // followed by its own out-city; probe the orientation at city 0.
  size_t InPos = Pos[0];
  size_t OutPos = Pos[N]; // City 0's out twin.
  size_t Dir;
  if ((InPos + 1) % Size == OutPos) {
    Dir = 1;
  } else {
    assert((OutPos + 1) % Size == InPos &&
           "symmetric tour does not keep the pair edge of city 0");
    Dir = Size - 1; // Step backwards modulo Size.
  }
  size_t P = InPos;
  for (size_t Step = 0; Step != N; ++Step) {
    City InCity = Symmetric[P];
    assert(InCity < N && "expected an in-city at this parity");
    [[maybe_unused]] City OutCity = Symmetric[(P + Dir) % Size];
    assert(OutCity == InCity + N && "symmetric tour breaks a pair edge");
    Directed.push_back(InCity);
    P = (P + 2 * Dir) % Size;
  }
  assert(isValidTour(Directed, N) && "collapse produced an invalid tour");
  return Directed;
}
