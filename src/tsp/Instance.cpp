//===- tsp/Instance.cpp ----------------------------------------------------===//

#include "tsp/Instance.h"

using namespace balign;

int64_t DirectedTsp::tourCost(const std::vector<City> &Tour) const {
  assert(Tour.size() == N && "tour must visit every city");
  int64_t Sum = 0;
  for (size_t I = 0; I != Tour.size(); ++I)
    Sum += cost(Tour[I], Tour[(I + 1) % Tour.size()]);
  return Sum;
}

int64_t DirectedTsp::walkCost(const std::vector<City> &Walk) const {
  int64_t Sum = 0;
  for (size_t I = 0; I + 1 < Walk.size(); ++I)
    Sum += cost(Walk[I], Walk[I + 1]);
  return Sum;
}

int64_t DirectedTsp::totalAbsCost() const {
  int64_t Sum = 0;
  for (City From = 0; From != N; ++From)
    for (City To = 0; To != N; ++To)
      if (From != To) {
        int64_t C = cost(From, To);
        Sum += C < 0 ? -C : C;
      }
  return Sum;
}

int64_t SymmetricTsp::tourCost(const std::vector<City> &Tour) const {
  assert(Tour.size() == N && "tour must visit every city");
  int64_t Sum = 0;
  for (size_t I = 0; I != Tour.size(); ++I)
    Sum += dist(Tour[I], Tour[(I + 1) % Tour.size()]);
  return Sum;
}

bool balign::isValidTour(const std::vector<City> &Tour, size_t N) {
  if (Tour.size() != N)
    return false;
  std::vector<bool> Seen(N, false);
  for (City C : Tour) {
    if (C >= N || Seen[C])
      return false;
    Seen[C] = true;
  }
  return true;
}
