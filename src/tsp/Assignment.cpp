//===- tsp/Assignment.cpp ------------------------------------------------------===//

#include "tsp/Assignment.h"

#include <cassert>
#include <limits>
#include <vector>

using namespace balign;

/// Classic O(n^3) Hungarian algorithm with row/column potentials
/// (shortest augmenting paths). Rows are "from" cities, columns are "to"
/// cities; the diagonal is forbidden with a large finite cost that can
/// never be selected when n >= 2 (every row has n-1 cheaper entries and
/// a perfect matching avoiding the diagonal always exists).
AssignmentResult balign::assignmentBound(const DirectedTsp &Dtsp) {
  size_t N = Dtsp.numCities();
  assert(N >= 2 && "assignment bound needs at least two cities");

  // Large-but-safe forbidden cost: any assignment using a diagonal entry
  // costs at least Forbidden - totalAbs > totalAbs >= any diagonal-free
  // assignment, even with negative entries present.
  const int64_t Forbidden = 2 * Dtsp.totalAbsCost() + 1;
  auto CostOf = [&](size_t From, size_t To) {
    return From == To ? Forbidden : Dtsp.cost(static_cast<City>(From),
                                              static_cast<City>(To));
  };

  const int64_t Inf = std::numeric_limits<int64_t>::max() / 4;
  // 1-based arrays per the standard potentials formulation.
  std::vector<int64_t> U(N + 1, 0), V(N + 1, 0);
  std::vector<size_t> MatchedRow(N + 1, 0); // Column -> row.
  std::vector<size_t> Way(N + 1, 0);

  for (size_t Row = 1; Row <= N; ++Row) {
    MatchedRow[0] = Row;
    size_t FreeCol = 0;
    std::vector<int64_t> MinSlack(N + 1, Inf);
    std::vector<bool> Used(N + 1, false);
    do {
      Used[FreeCol] = true;
      size_t RowHere = MatchedRow[FreeCol];
      int64_t Delta = Inf;
      size_t NextCol = 0;
      for (size_t Col = 1; Col <= N; ++Col) {
        if (Used[Col])
          continue;
        int64_t Slack =
            CostOf(RowHere - 1, Col - 1) - U[RowHere] - V[Col];
        if (Slack < MinSlack[Col]) {
          MinSlack[Col] = Slack;
          Way[Col] = FreeCol;
        }
        if (MinSlack[Col] < Delta) {
          Delta = MinSlack[Col];
          NextCol = Col;
        }
      }
      for (size_t Col = 0; Col <= N; ++Col) {
        if (Used[Col]) {
          U[MatchedRow[Col]] += Delta;
          V[Col] -= Delta;
        } else {
          MinSlack[Col] -= Delta;
        }
      }
      FreeCol = NextCol;
    } while (MatchedRow[FreeCol] != 0);
    // Augment along the alternating path.
    do {
      size_t PrevCol = Way[FreeCol];
      MatchedRow[FreeCol] = MatchedRow[PrevCol];
      FreeCol = PrevCol;
    } while (FreeCol != 0);
  }

  AssignmentResult Result;
  Result.Successor.assign(N, InvalidCity);
  for (size_t Col = 1; Col <= N; ++Col) {
    size_t Row = MatchedRow[Col];
    assert(Row >= 1 && Row <= N && "unmatched column after Hungarian");
    Result.Successor[Row - 1] = static_cast<City>(Col - 1);
    assert(Row != Col && "forbidden diagonal entry selected");
    Result.Cost += Dtsp.cost(static_cast<City>(Row - 1),
                             static_cast<City>(Col - 1));
  }

  // Count the cycles of the successor permutation.
  std::vector<bool> Seen(N, false);
  for (size_t Start = 0; Start != N; ++Start) {
    if (Seen[Start])
      continue;
    ++Result.NumCycles;
    for (size_t Walk = Start; !Seen[Walk]; Walk = Result.Successor[Walk])
      Seen[Walk] = true;
  }
  return Result;
}
