//===- tsp/Instance.h - Directed and symmetric TSP instances --------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Instance types for the traveling salesman solvers. The alignment layer
/// produces *directed* instances (edge cost = penalty cycles if city B
/// succeeds city A in the layout); the solvers follow the paper and work
/// on a *symmetric* transformation (see Transform.h). Costs are int64
/// penalty-cycle counts; "forbidden" structure in the symmetric
/// transformation is encoded with large finite values so every tour has a
/// well-defined cost.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_TSP_INSTANCE_H
#define BALIGN_TSP_INSTANCE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace balign {

/// City index within a TSP instance.
using City = uint32_t;

/// Sentinel for "no city".
inline constexpr City InvalidCity = ~static_cast<City>(0);

/// A complete directed TSP instance over N cities (asymmetric costs).
/// Tours are cyclic permutations; the alignment layer adds a dummy city
/// so that minimum-cost *walks* (the paper's layouts) become minimum-cost
/// tours.
class DirectedTsp {
public:
  DirectedTsp() = default;

  /// Creates an instance with all costs zero.
  explicit DirectedTsp(size_t NumCities)
      : N(NumCities), Costs(NumCities * NumCities, 0) {}

  size_t numCities() const { return N; }

  int64_t cost(City From, City To) const {
    assert(From < N && To < N && "city out of range");
    return Costs[From * N + To];
  }

  void setCost(City From, City To, int64_t Cost) {
    assert(From < N && To < N && "city out of range");
    Costs[From * N + To] = Cost;
  }

  /// Cost of the cyclic tour visiting \p Tour in order (including the
  /// closing edge back to Tour.front()).
  int64_t tourCost(const std::vector<City> &Tour) const;

  /// Cost of the open walk visiting \p Walk in order (no closing edge).
  int64_t walkCost(const std::vector<City> &Walk) const;

  /// Sum of |cost| over all off-diagonal entries; used to size the
  /// big-M constants of the symmetric transformation.
  int64_t totalAbsCost() const;

private:
  size_t N = 0;
  std::vector<int64_t> Costs;
};

/// A symmetric TSP instance over N cities, stored as a full matrix for
/// O(1) lookups during local search.
class SymmetricTsp {
public:
  SymmetricTsp() = default;

  explicit SymmetricTsp(size_t NumCities)
      : N(NumCities), Dists(NumCities * NumCities, 0) {}

  size_t numCities() const { return N; }

  int64_t dist(City A, City B) const {
    assert(A < N && B < N && "city out of range");
    return Dists[A * N + B];
  }

  /// Sets both (A,B) and (B,A).
  void setDist(City A, City B, int64_t Dist) {
    assert(A < N && B < N && "city out of range");
    Dists[A * N + B] = Dist;
    Dists[B * N + A] = Dist;
  }

  /// Cost of the cyclic tour visiting \p Tour in order.
  int64_t tourCost(const std::vector<City> &Tour) const;

private:
  size_t N = 0;
  std::vector<int64_t> Dists;
};

/// Returns true if \p Tour is a permutation of 0..N-1.
bool isValidTour(const std::vector<City> &Tour, size_t N);

} // namespace balign

#endif // BALIGN_TSP_INSTANCE_H
