//===- tsp/IteratedOpt.cpp ---------------------------------------------------===//

#include "tsp/IteratedOpt.h"

#include "robust/FaultInjector.h"
#include "tsp/Construct.h"
#include "tsp/LocalSearch.h"
#include "tsp/Transform.h"
#include "trace/Scope.h"

#include <algorithm>
#include <cassert>

using namespace balign;

void balign::doubleBridge(std::vector<City> &Tour, Rng &Rng,
                          std::vector<City> *Touched) {
  size_t N = Tour.size();
  if (N < 4)
    return;
  // Three distinct interior cut points 0 < P1 < P2 < P3 < N.
  size_t Cuts[3];
  Cuts[0] = 1 + Rng.nextIndex(N - 3);
  Cuts[1] = 1 + Rng.nextIndex(N - 3);
  Cuts[2] = 1 + Rng.nextIndex(N - 3);
  std::sort(std::begin(Cuts), std::end(Cuts));
  size_t P1 = Cuts[0], P2 = Cuts[1] + 1, P3 = Cuts[2] + 2;
  assert(P1 < P2 && P2 < P3 && P3 < N && "bad double-bridge cuts");

  std::vector<City> Kicked;
  Kicked.reserve(N);
  Kicked.insert(Kicked.end(), Tour.begin(), Tour.begin() + P1);
  Kicked.insert(Kicked.end(), Tour.begin() + P2, Tour.begin() + P3);
  Kicked.insert(Kicked.end(), Tour.begin() + P1, Tour.begin() + P2);
  Kicked.insert(Kicked.end(), Tour.begin() + P3, Tour.end());
  if (Touched) {
    Touched->clear();
    for (size_t Pos : {size_t(0), P1 - 1, P1, P2 - 1, P2, P3 - 1, P3, N - 1})
      Touched->push_back(Kicked[std::min(Pos, N - 1)]);
  }
  Tour = std::move(Kicked);
}

namespace {

/// Shared state for one solver invocation.
struct Solver {
  const DirectedTsp &Dtsp;
  const IteratedOptOptions &Options;
  SymmetricTransform Transform;
  NeighborLists Neighbors;

  Solver(const DirectedTsp &Dtsp, const IteratedOptOptions &Options)
      : Dtsp(Dtsp), Options(Options),
        Transform(transformToSymmetric(Dtsp)),
        Neighbors(Transform.Sym, Options.NeighborListSize) {}

  /// Local-search the directed tour via the symmetric space; returns the
  /// directed cost of the improved tour. When \p TouchedDirected is
  /// non-null, only those cities (both their in and out twins) seed the
  /// search — the iterated-local-search restart trick after a kick.
  int64_t optimize(std::vector<City> &Directed,
                   const std::vector<City> *TouchedDirected = nullptr) {
    std::vector<City> Sym = Transform.toSymmetricTour(Directed);
    if (TouchedDirected) {
      std::vector<City> Seeds;
      Seeds.reserve(2 * TouchedDirected->size());
      for (City C : *TouchedDirected) {
        Seeds.push_back(C);
        Seeds.push_back(C + static_cast<City>(Transform.DirectedN));
      }
      localSearchSymmetric(Transform.Sym, Neighbors, Sym, &Seeds);
    } else {
      localSearchSymmetric(Transform.Sym, Neighbors, Sym);
    }
    Directed = Transform.toDirectedTour(Sym);
    return Dtsp.tourCost(Directed);
  }

  /// Batches the solver's inner-loop metrics into two counter
  /// publications per run (its destructor), so tracing costs the hot
  /// loop two additions instead of two registry locks per iteration.
  /// Flushing from a destructor also keeps budget-tripped runs counted.
  struct RunCounters {
    uint64_t Iterations = 0;
    uint64_t Kicks = 0;
    ~RunCounters() {
      if (Iterations)
        scopeCounterAdd("solver.iterations", Iterations);
      if (Kicks)
        scopeCounterAdd("solver.kicks", Kicks);
    }
  };

  /// One iterated-3-Opt run from the given start tour.
  std::pair<std::vector<City>, int64_t> run(std::vector<City> Start,
                                            Rng &Rng) {
    ScopedSpan RunSpan("solver.run", SpanCat::Solver);
    RunCounters Counters;
    std::vector<City> Best = std::move(Start);
    int64_t BestCost = optimize(Best);
    size_t Iterations = std::min<size_t>(
        Options.MaxIterationsPerRun,
        std::max<size_t>(Options.MinIterationsPerRun,
                         static_cast<size_t>(
                             Options.IterationsFactor *
                             static_cast<double>(Dtsp.numCities()))));
    std::vector<City> Touched;
    for (size_t Iter = 0; Iter != Iterations; ++Iter) {
      if (Options.Budget)
        Options.Budget->check("iterated 3-Opt");
      ++Counters.Iterations;
      std::vector<City> Candidate = Best;
      doubleBridge(Candidate, Rng, &Touched);
      if (!Touched.empty())
        ++Counters.Kicks;
      int64_t Cost = optimize(Candidate, Touched.empty() ? nullptr
                                                         : &Touched);
      if (Cost < BestCost) {
        Best = std::move(Candidate);
        BestCost = Cost;
      }
    }
    return {std::move(Best), BestCost};
  }
};

} // namespace

DtspSolution balign::solveDirectedTsp(const DirectedTsp &Dtsp,
                                      const IteratedOptOptions &Options) {
  // balign-shield fault site: any solver failure (and, via Budget below,
  // any deadline expiry) surfaces here for the pipeline to isolate.
  FaultInjector::instance().throwIfFault(FaultSite::TspSolve);
  size_t N = Dtsp.numCities();
  DtspSolution Solution;
  // Degenerate instances solve trivially and never consult the budget:
  // an empty instance has the empty tour, and for N <= 3 all (or both)
  // cyclic orders are enumerated directly.
  if (N == 0)
    return Solution;
  if (N <= 3) {
    // All cyclic orders of <= 3 cities are equivalent up to rotation for
    // a directed cycle only when N <= 2; for N == 3 compare both orders.
    std::vector<City> Tour = canonicalTour(N);
    int64_t Cost = Dtsp.tourCost(Tour);
    if (N == 3) {
      std::vector<City> Alt = {0, 2, 1};
      int64_t AltCost = Dtsp.tourCost(Alt);
      if (AltCost < Cost) {
        Tour = Alt;
        Cost = AltCost;
      }
    }
    Solution.Tour = std::move(Tour);
    Solution.Cost = Cost;
    Solution.NumRuns = 1;
    Solution.RunsFindingBest = 1;
    return Solution;
  }

  Rng Root(Options.Seed);
  Solver S(Dtsp, Options);

  std::vector<int64_t> RunCosts;
  int64_t BestCost = 0;
  std::vector<City> BestTour;

  auto doRun = [&](std::vector<City> Start) {
    Rng RunRng = Root.fork();
    auto [Tour, Cost] = S.run(std::move(Start), RunRng);
    RunCosts.push_back(Cost);
    if (BestTour.empty() || Cost < BestCost) {
      BestTour = std::move(Tour);
      BestCost = Cost;
    }
  };

  // The canonical (compiler-order) start runs first so that on
  // all-ties instances — e.g. procedures whose profile is almost empty —
  // the original order wins and the layout stays put.
  if (Options.CanonicalStart)
    doRun(canonicalTour(N));
  for (unsigned I = 0; I != Options.GreedyStarts; ++I) {
    Rng ConstructRng = Root.fork();
    doRun(greedyEdgeTour(Dtsp, ConstructRng));
  }
  for (unsigned I = 0; I != Options.NearestNeighborStarts; ++I) {
    Rng ConstructRng = Root.fork();
    doRun(nearestNeighborTour(Dtsp, ConstructRng));
  }

  assert(!RunCosts.empty() && "solver performed no runs");
  scopeCounterAdd("solver.runs", RunCosts.size());
  Solution.Tour = std::move(BestTour);
  Solution.Cost = BestCost;
  Solution.NumRuns = static_cast<unsigned>(RunCosts.size());
  for (int64_t Cost : RunCosts)
    if (Cost == BestCost)
      ++Solution.RunsFindingBest;
  return Solution;
}
