//===- tsp/IteratedOpt.h - Iterated local search for the DTSP --------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The paper's solution procedure: transform the directed instance to a
/// pair-locked symmetric one and run iterated 3-Opt (Martin-Otto-Felten
/// large-step Markov chains): each iteration runs local search to
/// exhaustion and then applies a random double-bridge 4-opt kick to the
/// best tour found so far.
///
/// Protocol defaults copy the paper: "we ran it 10 times on each
/// instance, 5 times using randomized Greedy starts, 4 times using
/// randomized Nearest Neighbor starts, and once using the original
/// ordering given by the compiler. Each run consists of 2N iterations,
/// where N is the number of cities in the original DTSP."
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_TSP_ITERATEDOPT_H
#define BALIGN_TSP_ITERATEDOPT_H

#include "robust/Deadline.h"
#include "support/Random.h"
#include "tsp/Instance.h"

namespace balign {

/// Tuning knobs for solveDirectedTsp. The defaults reproduce the paper's
/// protocol; benches that sweep solver effort adjust them.
struct IteratedOptOptions {
  unsigned GreedyStarts = 5;         ///< Randomized greedy-edge starts.
  unsigned NearestNeighborStarts = 4;///< Randomized nearest-neighbor starts.
  bool CanonicalStart = true;        ///< One run from the compiler order.
  double IterationsFactor = 2.0;     ///< Kicks per run = Factor * N.
  unsigned MinIterationsPerRun = 30; ///< Floor so tiny instances explore.
  unsigned MaxIterationsPerRun = 1u << 16; ///< Safety cap on kicks.
  unsigned NeighborListSize = 12;    ///< Candidate-list width.
  uint64_t Seed = 0x7357u;           ///< Root seed (runs fork from it).

  /// Cooperative wall-clock budget (balign-shield): polled between runs
  /// and at kick boundaries; on expiry the solver throws
  /// DeadlineExceeded, which the pipeline's per-procedure isolation
  /// turns into a degradation-ladder fallback. Not owned, may be null
  /// (no budget), and deliberately NOT part of the cache fingerprint —
  /// budget-tripped results are never cached.
  const Deadline *Budget = nullptr;
};

/// Result of solving one directed instance.
struct DtspSolution {
  std::vector<City> Tour; ///< Best directed tour found.
  int64_t Cost = 0;       ///< Its directed cost.
  unsigned NumRuns = 0;   ///< Total independent runs performed.
  /// How many runs independently reached Cost; the appendix reports that
  /// on 128 of esp.tl's 179 procedures all 10 runs tied.
  unsigned RunsFindingBest = 0;
};

/// Applies a random double-bridge move to \p Tour (a directed tour; all
/// segments keep their direction). No-op for tours shorter than 4. If
/// \p Touched is non-null it receives the cities adjacent to the four
/// reconnected edges (the natural restart seeds for local search).
void doubleBridge(std::vector<City> &Tour, Rng &Rng,
                  std::vector<City> *Touched = nullptr);

/// Solves \p Dtsp with the iterated 3-Opt protocol above.
DtspSolution solveDirectedTsp(const DirectedTsp &Dtsp,
                              const IteratedOptOptions &Options);

} // namespace balign

#endif // BALIGN_TSP_ITERATEDOPT_H
