//===- tsp/Assignment.h - Assignment-problem lower bound --------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The Assignment Problem (AP) relaxation of the directed TSP: the
/// minimum-cost collection of disjoint directed cycles covering all
/// cities, computed exactly with the Hungarian algorithm. A Hamiltonian
/// cycle is one such cover, so AP <= DTSP optimum. The paper's appendix
/// shows this classical bound is weak on branch-alignment instances
/// (median gap 30% on the esp.tl procedures where it is not tight),
/// motivating the Held-Karp bound instead; bench/appendix_bounds
/// reproduces that comparison.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_TSP_ASSIGNMENT_H
#define BALIGN_TSP_ASSIGNMENT_H

#include "tsp/Instance.h"

namespace balign {

/// Result of the AP relaxation.
struct AssignmentResult {
  int64_t Cost = 0;              ///< Minimum cycle-cover cost.
  std::vector<City> Successor;   ///< Successor[i] = city after i.
  size_t NumCycles = 0;          ///< Cycles in the optimal cover.
};

/// Solves the assignment relaxation of \p Dtsp (self-loops forbidden).
/// Requires at least 2 cities.
AssignmentResult assignmentBound(const DirectedTsp &Dtsp);

} // namespace balign

#endif // BALIGN_TSP_ASSIGNMENT_H
