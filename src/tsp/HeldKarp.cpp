//===- tsp/HeldKarp.cpp -------------------------------------------------------===//

#include "tsp/HeldKarp.h"

#include "tsp/Transform.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

using namespace balign;

namespace {

/// One minimum 1-tree computation under node potentials Pi.
struct OneTree {
  double Cost = 0.0;              ///< Total reweighted tree cost.
  std::vector<unsigned> Degree;   ///< Degree of every city in the 1-tree.
};

} // namespace

/// Builds the minimum 1-tree: an MST over cities 1..N-1 (Prim) plus the
/// two cheapest edges incident to city 0, all under weights
/// w(i,j) = d(i,j) + Pi[i] + Pi[j].
static OneTree minimumOneTree(const SymmetricTsp &Sym,
                              const std::vector<double> &Pi) {
  size_t N = Sym.numCities();
  assert(N >= 3 && "1-tree needs at least three cities");
  OneTree Tree;
  Tree.Degree.assign(N, 0);

  auto Weight = [&](City A, City B) {
    return static_cast<double>(Sym.dist(A, B)) + Pi[A] + Pi[B];
  };

  // Prim over cities 1..N-1.
  constexpr double Inf = std::numeric_limits<double>::infinity();
  std::vector<double> Best(N, Inf);
  std::vector<City> Parent(N, InvalidCity);
  std::vector<bool> InTree(N, false);
  Best[1] = 0.0;
  for (size_t Added = 1; Added != N; ++Added) {
    City Next = InvalidCity;
    double NextWeight = Inf;
    for (City C = 1; C != N; ++C) {
      if (InTree[C] || Best[C] >= NextWeight)
        continue;
      Next = C;
      NextWeight = Best[C];
    }
    assert(Next != InvalidCity && "graph is complete; Prim cannot stall");
    InTree[Next] = true;
    if (Parent[Next] != InvalidCity) {
      Tree.Cost += Weight(Next, Parent[Next]);
      ++Tree.Degree[Next];
      ++Tree.Degree[Parent[Next]];
    }
    for (City C = 1; C != N; ++C) {
      if (InTree[C])
        continue;
      double W = Weight(Next, C);
      if (W < Best[C]) {
        Best[C] = W;
        Parent[C] = Next;
      }
    }
  }

  // Attach city 0 with its two cheapest edges.
  double First = Inf, Second = Inf;
  City FirstCity = InvalidCity, SecondCity = InvalidCity;
  for (City C = 1; C != N; ++C) {
    double W = Weight(0, C);
    if (W < First) {
      Second = First;
      SecondCity = FirstCity;
      First = W;
      FirstCity = C;
    } else if (W < Second) {
      Second = W;
      SecondCity = C;
    }
  }
  Tree.Cost += First + Second;
  Tree.Degree[0] += 2;
  ++Tree.Degree[FirstCity];
  ++Tree.Degree[SecondCity];
  return Tree;
}

double balign::heldKarpBoundSymmetric(const SymmetricTsp &Sym,
                                      int64_t UpperBound,
                                      const HeldKarpOptions &Options) {
  size_t N = Sym.numCities();
  if (N < 3) {
    // Degenerate tours: cost is fixed.
    if (N == 2)
      return static_cast<double>(2 * Sym.dist(0, 1));
    return 0.0;
  }

  unsigned Iterations = Options.Iterations;
  if (Iterations == 0)
    Iterations =
        std::clamp<unsigned>(static_cast<unsigned>(200 * N), 2000, 30000);

  std::vector<double> Pi(N, 0.0);
  double Alpha = Options.InitialAlpha;
  double BestBound = -std::numeric_limits<double>::infinity();
  unsigned SinceImprove = 0;
  // Plateaus on the pair-locked transformed instances routinely last
  // hundreds of iterations; halve the step only on long stagnation.
  const unsigned StagnationWindow = std::max(50u, Iterations / 25);

  for (unsigned Iter = 0; Iter != Iterations; ++Iter) {
    OneTree Tree = minimumOneTree(Sym, Pi);
    double PiSum = 0.0;
    for (double P : Pi)
      PiSum += P;
    double Bound = Tree.Cost - 2.0 * PiSum;
    if (Bound > BestBound) {
      BestBound = Bound;
      SinceImprove = 0;
    } else if (++SinceImprove >= StagnationWindow) {
      Alpha *= 0.5;
      SinceImprove = 0;
      if (Alpha < 1e-9)
        break;
    }

    double Norm = 0.0;
    for (unsigned D : Tree.Degree) {
      double G = static_cast<double>(D) - 2.0;
      Norm += G * G;
    }
    if (Norm == 0.0)
      break; // The 1-tree is a tour: the bound is exact.

    double Gap = static_cast<double>(UpperBound) - Bound;
    double BestGap = static_cast<double>(UpperBound) - BestBound;
    if (Gap <= 0.0 || (Options.AbsoluteGapStop > 0.0 &&
                       BestGap <= Options.AbsoluteGapStop))
      break; // Bound (nearly) met the incumbent; stop early.
    double Step = Alpha * Gap / Norm;
    for (City C = 0; C != N; ++C)
      Pi[C] += Step * (static_cast<double>(Tree.Degree[C]) - 2.0);
  }
  // The bound is valid at every iteration; return the best seen (never
  // above the incumbent tour, which is feasible).
  return std::min(BestBound, static_cast<double>(UpperBound));
}

double balign::heldKarpBoundDirected(const DirectedTsp &Dtsp,
                                     int64_t UpperBound,
                                     const HeldKarpOptions &Options) {
  size_t N = Dtsp.numCities();
  if (N <= 2) {
    // 1-city tours cost 0; 2-city tours are forced.
    if (N == 2)
      return static_cast<double>(Dtsp.cost(0, 1) + Dtsp.cost(1, 0));
    return 0.0;
  }
  SymmetricTransform Transform = transformToSymmetric(Dtsp);
  int64_t Offset = static_cast<int64_t>(N) * Transform.LockBonus;
  HeldKarpOptions SymOptions = Options;
  if (SymOptions.AbsoluteGapStop == 0.0)
    SymOptions.AbsoluteGapStop =
        Options.RelativeGapStop *
        std::max(1.0, std::fabs(static_cast<double>(UpperBound)));
  double SymBound = heldKarpBoundSymmetric(Transform.Sym,
                                           UpperBound - Offset, SymOptions);
  return SymBound + static_cast<double>(Offset);
}
