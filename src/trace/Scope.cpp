//===- trace/Scope.cpp ----------------------------------------------------===//

#include "trace/Scope.h"

#include <algorithm>
#include <cassert>

using namespace balign;

std::atomic<TraceSession *> TraceSession::ActiveSession{nullptr};

namespace {

/// The calling thread's current track; TrackScope stacks bindings.
thread_local int64_t CurrentTrack = ProgramTrack;

/// Count of open traced spans on this thread. Begin/end pairs are RAII,
/// so the counter is balanced whenever no ScopedSpan is alive.
thread_local uint32_t CurrentDepth = 0;

/// Per-thread cache of the session-local thread id, keyed by session
/// epoch so a later session never inherits a stale id.
thread_local uint64_t CachedIdEpoch = 0;
thread_local uint32_t CachedThreadId = 0;

std::atomic<uint64_t> NextEpoch{1};

} // namespace

const char *balign::spanCatName(SpanCat Cat) {
  switch (Cat) {
  case SpanCat::Pipeline:
    return "pipeline";
  case SpanCat::Stage:
    return "stage";
  case SpanCat::Solver:
    return "solver";
  case SpanCat::Cache:
    return "cache";
  case SpanCat::Verify:
    return "verify";
  case SpanCat::Io:
    return "io";
  case SpanCat::Lint:
    return "lint";
  }
  return "?";
}

//===--------------------------------------------------------------------===//
// MetricRegistry
//===--------------------------------------------------------------------===//

void MetricRegistry::counterAdd(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters[Name] += Delta;
}

void MetricRegistry::gaugeAdd(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Gauges[Name] += Delta;
}

void MetricRegistry::gaugeMax(const std::string &Name, uint64_t Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t &Slot = Gauges[Name];
  if (Value > Slot)
    Slot = Value;
}

uint64_t MetricRegistry::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  return It != Counters.end() ? It->second : 0;
}

uint64_t MetricRegistry::gauge(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Gauges.find(Name);
  return It != Gauges.end() ? It->second : 0;
}

std::map<std::string, uint64_t> MetricRegistry::counters() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

std::map<std::string, uint64_t> MetricRegistry::gauges() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Gauges;
}

//===--------------------------------------------------------------------===//
// TraceSession
//===--------------------------------------------------------------------===//

TraceSession::TraceSession()
    : Epoch(NextEpoch.fetch_add(1, std::memory_order_relaxed)),
      Start(std::chrono::steady_clock::now()) {}

TraceSession::~TraceSession() { uninstall(); }

void TraceSession::install() {
  TraceSession *Expected = nullptr;
  bool Installed = ActiveSession.compare_exchange_strong(Expected, this);
  assert(Installed && "another TraceSession is already installed");
  (void)Installed;
}

void TraceSession::uninstall() {
  TraceSession *Expected = this;
  ActiveSession.compare_exchange_strong(Expected, nullptr);
}

uint64_t TraceSession::nowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

uint32_t TraceSession::threadId() {
  if (CachedIdEpoch != Epoch) {
    std::lock_guard<std::mutex> Lock(Mutex);
    CachedThreadId = NextThreadId++;
    CachedIdEpoch = Epoch;
  }
  return CachedThreadId;
}

TraceSession::SpanToken TraceSession::beginSpan() {
  SpanToken Token;
  Token.StartNs = nowNs();
  Token.Track = CurrentTrack;
  Token.Depth = CurrentDepth++;
  Token.ThreadId = threadId();
  std::lock_guard<std::mutex> Lock(Mutex);
  Token.Seq = NextSeq[Token.Track]++;
  return Token;
}

void TraceSession::endSpan(const SpanToken &Token, const char *Name,
                           SpanCat Cat) {
  uint64_t End = nowNs();
  if (CurrentDepth > 0)
    --CurrentDepth;
  TraceSpan Span;
  Span.Name = Name;
  Span.Cat = Cat;
  Span.Track = Token.Track;
  Span.Seq = Token.Seq;
  Span.Depth = Token.Depth;
  Span.ThreadId = Token.ThreadId;
  Span.StartNs = Token.StartNs;
  Span.EndNs = End;
  std::lock_guard<std::mutex> Lock(Mutex);
  Spans.push_back(Span);
}

size_t TraceSession::numSpans() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Spans.size();
}

std::vector<TraceSpan> TraceSession::drainSpans() const {
  std::vector<TraceSpan> Drained;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Drained = Spans;
  }
  std::sort(Drained.begin(), Drained.end(),
            [](const TraceSpan &A, const TraceSpan &B) {
              if (A.Track != B.Track)
                return A.Track < B.Track;
              return A.Seq < B.Seq;
            });
  return Drained;
}

//===--------------------------------------------------------------------===//
// TrackScope
//===--------------------------------------------------------------------===//

TrackScope::TrackScope(int64_t Track) : Saved(CurrentTrack) {
  CurrentTrack = Track;
}

TrackScope::~TrackScope() { CurrentTrack = Saved; }
