//===- trace/Export.cpp - balign-scope exporters --------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The three TraceSession exporters:
///
///  - chromeTraceJson: the Chrome trace_event format (one complete "X"
///    event per span, microsecond timestamps), loadable in
///    chrome://tracing and Perfetto. Events appear in drain order and
///    carry track/seq/depth in "args", so a checker can validate the
///    deterministic drain without touching timestamps.
///  - metricsJson: a machine-readable counter/gauge dump consumed by
///    bench/trace_overhead.cpp and the CI round-trip step.
///  - metricsSummary: the human text form behind `align_tool --metrics`.
///
//===--------------------------------------------------------------------===//

#include "trace/Scope.h"

#include <cstdio>
#include <sstream>

using namespace balign;

namespace {

/// Minimal JSON string escaping; span and metric names are identifiers,
/// but the exporter must stay valid for any input.
void appendEscaped(std::string &Out, const char *Text) {
  for (const char *P = Text; *P; ++P) {
    char C = *P;
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buffer[8];
      std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(C)));
      Out += Buffer;
    } else {
      Out += C;
    }
  }
}

void appendMetricMap(std::string &Out,
                     const std::map<std::string, uint64_t> &Metrics) {
  bool First = true;
  Out += '{';
  for (const auto &[Name, Value] : Metrics) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    appendEscaped(Out, Name.c_str());
    Out += "\":";
    Out += std::to_string(Value);
  }
  Out += '}';
}

} // namespace

std::string TraceSession::chromeTraceJson() const {
  std::vector<TraceSpan> Drained = drainSpans();
  std::string Out;
  Out.reserve(128 + Drained.size() * 160);
  Out += "{\"traceEvents\":[\n";
  char Buffer[256];
  for (size_t I = 0; I != Drained.size(); ++I) {
    const TraceSpan &Span = Drained[I];
    Out += "{\"name\":\"";
    appendEscaped(Out, Span.Name);
    Out += "\",\"cat\":\"";
    Out += spanCatName(Span.Cat);
    // trace_event wants microseconds; keep nanosecond precision in the
    // fraction so adjacent spans never collapse to one timestamp.
    std::snprintf(Buffer, sizeof(Buffer),
                  "\",\"ph\":\"X\",\"ts\":%llu.%03u,\"dur\":%llu.%03u,"
                  "\"pid\":1,\"tid\":%u,\"args\":{\"track\":%lld,"
                  "\"seq\":%llu,\"depth\":%u}}",
                  static_cast<unsigned long long>(Span.StartNs / 1000),
                  static_cast<unsigned>(Span.StartNs % 1000),
                  static_cast<unsigned long long>(
                      (Span.EndNs - Span.StartNs) / 1000),
                  static_cast<unsigned>((Span.EndNs - Span.StartNs) % 1000),
                  Span.ThreadId, static_cast<long long>(Span.Track),
                  static_cast<unsigned long long>(Span.Seq), Span.Depth);
    Out += Buffer;
    if (I + 1 != Drained.size())
      Out += ',';
    Out += '\n';
  }
  Out += "],\"displayTimeUnit\":\"ms\",\"otherData\":"
         "{\"tool\":\"balign-scope\"}}\n";
  return Out;
}

std::string balign::renderMetricsJson(
    const std::map<std::string, uint64_t> &Counters,
    const std::map<std::string, uint64_t> &Gauges, size_t NumSpans) {
  std::string Out = "{\"counters\":";
  appendMetricMap(Out, Counters);
  Out += ",\"gauges\":";
  appendMetricMap(Out, Gauges);
  Out += ",\"spans\":";
  Out += std::to_string(NumSpans);
  Out += "}\n";
  return Out;
}

std::string TraceSession::metricsJson() const {
  return renderMetricsJson(Metrics.counters(), Metrics.gauges(), numSpans());
}

std::string TraceSession::metricsSummary() const {
  std::map<std::string, uint64_t> Counters = Metrics.counters();
  std::map<std::string, uint64_t> Gauges = Metrics.gauges();
  std::ostringstream Out;
  Out << "scope: counters (deterministic at every thread count)\n";
  for (const auto &[Name, Value] : Counters)
    Out << "  " << Name << " = " << Value << "\n";
  if (Counters.empty())
    Out << "  (none)\n";
  Out << "scope: gauges (scheduling-dependent)\n";
  for (const auto &[Name, Value] : Gauges)
    Out << "  " << Name << " = " << Value << "\n";
  if (Gauges.empty())
    Out << "  (none)\n";
  Out << "scope: spans = " << numSpans() << "\n";
  return Out.str();
}
