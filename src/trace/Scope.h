//===- trace/Scope.h - balign-scope structured tracing & metrics ----------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// balign-scope: a zero-overhead-when-off tracing and metrics layer for
/// the whole alignment pipeline. One TraceSession, when installed as the
/// process-active session, collects
///
///  - spans: begin/end intervals with monotonic timestamps, the
///    recording thread, and a *track* (the procedure index being
///    aligned, or -1 for program-scope work), recorded by RAII
///    ScopedSpan probes at every stage boundary — profile parse, the
///    DTSP reduction, the STSP transform, each 3-Opt run, the HK/AP
///    bounds, the greedy aligner, cache load/lookup/store/flush, verify
///    passes, and per-procedure task execution;
///
///  - metrics: named counters and gauges published by the subsystems
///    (cache hits/misses/salvages, shield retries/faults/rungs, pool
///    steals/queue depth, solver iterations/kicks).
///
/// Determinism contract (the same discipline as verify hooks and
/// FailureReports): spans are *drained in program order* — sorted by
/// (track, per-track begin sequence) — so the drained span list, with
/// timestamps and thread ids masked out, is identical at every thread
/// count. Everything published as a *counter* must likewise be a pure
/// function of the inputs (sums of per-procedure work, never scheduling
/// artifacts); scheduling-dependent quantities (steals, queue depths,
/// retry totals under real transients) go into *gauges*, which make no
/// cross-thread-count promise. CI diffs the counter map between
/// Threads=1 and Threads=8 runs to enforce the split.
///
/// Zero overhead when off: every probe starts with one relaxed atomic
/// load of the active-session pointer and does nothing else when no
/// session is installed. bench/trace_overhead.cpp measures the probe
/// and asserts the a-priori bound stays below run-to-run noise.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_TRACE_SCOPE_H
#define BALIGN_TRACE_SCOPE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace balign {

/// Span categories; exported as the Chrome trace_event "cat" field so
/// viewers can filter by pipeline layer.
enum class SpanCat : uint8_t {
  Pipeline, ///< Whole-program driver work (align, drain).
  Stage,    ///< One per-procedure pipeline stage.
  Solver,   ///< Inside the TSP solver (transform, 3-Opt runs, bounds).
  Cache,    ///< balign-cache store operations.
  Verify,   ///< balign-verify passes.
  Io,       ///< Input parsing and other file I/O.
  Lint,     ///< balign-lint static CFG/profile analysis.
};

/// Returns the stable printable category name, e.g. "stage".
const char *spanCatName(SpanCat Cat);

/// The track every span not inside a per-procedure scope lands on.
inline constexpr int64_t ProgramTrack = -1;

/// One completed span. StartNs/EndNs are monotonic nanoseconds relative
/// to the session's construction; Seq is the span's begin order within
/// its track; Depth is the count of enclosing traced spans on the
/// recording thread at begin time.
struct TraceSpan {
  const char *Name = "";
  SpanCat Cat = SpanCat::Pipeline;
  int64_t Track = ProgramTrack;
  uint64_t Seq = 0;
  uint32_t Depth = 0;
  uint32_t ThreadId = 0;
  uint64_t StartNs = 0;
  uint64_t EndNs = 0;
};

/// Named counters and gauges. Counters are add-only (monotone within a
/// session) and must be thread-count-deterministic; gauges accept both
/// add and max aggregation and carry no determinism promise. All
/// methods are thread-safe.
class MetricRegistry {
public:
  /// Adds \p Delta to counter \p Name (creating it at zero).
  void counterAdd(const std::string &Name, uint64_t Delta);

  /// Adds \p Delta to gauge \p Name (creating it at zero).
  void gaugeAdd(const std::string &Name, uint64_t Delta);

  /// Raises gauge \p Name to at least \p Value.
  void gaugeMax(const std::string &Name, uint64_t Value);

  /// Current value of a counter / gauge; 0 when never published.
  uint64_t counter(const std::string &Name) const;
  uint64_t gauge(const std::string &Name) const;

  /// Snapshots, sorted by name (std::map), for export and diffing.
  std::map<std::string, uint64_t> counters() const;
  std::map<std::string, uint64_t> gauges() const;

private:
  mutable std::mutex Mutex;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, uint64_t> Gauges;
};

/// One tracing session. Construct, install() to make it the
/// process-active session (probes everywhere start recording into it),
/// run the pipeline, then export. The destructor uninstalls.
///
/// Only one session may be installed at a time; sessions are intended
/// to bracket whole runs, not nest.
class TraceSession {
public:
  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession &) = delete;
  TraceSession &operator=(const TraceSession &) = delete;

  /// Makes this the process-active session. Aborts (assert) if another
  /// session is already installed.
  void install();

  /// Uninstalls this session if it is the active one. Idempotent.
  void uninstall();

  /// The process-active session, or nullptr when tracing is off. One
  /// relaxed atomic load: this is the whole cost of a probe when off.
  static TraceSession *active() {
    return ActiveSession.load(std::memory_order_relaxed);
  }

  MetricRegistry &metrics() { return Metrics; }
  const MetricRegistry &metrics() const { return Metrics; }

  /// Begin-side state a ScopedSpan carries between begin and end.
  struct SpanToken {
    uint64_t StartNs = 0;
    uint64_t Seq = 0;
    int64_t Track = ProgramTrack;
    uint32_t Depth = 0;
    uint32_t ThreadId = 0;
  };

  /// Records the begin side of a span on the calling thread's current
  /// track. Paired with endSpan via ScopedSpan.
  SpanToken beginSpan();

  /// Records the completed span. \p Name must outlive the session
  /// (ScopedSpan passes string literals).
  void endSpan(const SpanToken &Token, const char *Name, SpanCat Cat);

  /// Number of completed spans recorded so far.
  size_t numSpans() const;

  /// The program-order drain: all completed spans sorted by
  /// (Track, Seq), ProgramTrack first. With timestamps and thread ids
  /// masked, this list is identical at every thread count.
  std::vector<TraceSpan> drainSpans() const;

  /// Chrome trace_event JSON (one complete "X" event per drained span),
  /// loadable in chrome://tracing or Perfetto.
  std::string chromeTraceJson() const;

  /// Machine-readable metrics dump: {"counters":{...},"gauges":{...},
  /// "spans":N}, keys sorted.
  std::string metricsJson() const;

  /// Human-readable metrics summary for stderr: one "name = value" line
  /// per metric under greppable "scope:" headers.
  std::string metricsSummary() const;

  /// Nanoseconds since session construction (monotonic clock).
  uint64_t nowNs() const;

  /// Session-local id of the calling thread (assigned on first use).
  uint32_t threadId();

private:
  static std::atomic<TraceSession *> ActiveSession;

  /// Distinguishes sessions for the thread-local id cache even when a
  /// later session reuses a dead one's address.
  uint64_t Epoch;

  std::chrono::steady_clock::time_point Start;
  MetricRegistry Metrics;

  mutable std::mutex Mutex;
  std::vector<TraceSpan> Spans;
  std::map<int64_t, uint64_t> NextSeq;
  uint32_t NextThreadId = 0;
};

/// RAII span probe. When no session is installed, construction is one
/// relaxed atomic load and destruction a null check. The name must be a
/// string literal (or otherwise outlive the session).
class ScopedSpan {
public:
  ScopedSpan(const char *Name, SpanCat Cat)
      : Session(TraceSession::active()), Name(Name), Cat(Cat) {
    if (Session)
      Token = Session->beginSpan();
  }
  ~ScopedSpan() {
    if (Session)
      Session->endSpan(Token, Name, Cat);
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

private:
  TraceSession *Session;
  const char *Name;
  SpanCat Cat;
  TraceSession::SpanToken Token;
};

/// RAII track binding: spans recorded on this thread while the scope is
/// alive land on \p Track (the pipeline binds the procedure index
/// around each per-procedure task and around its drain step). Restores
/// the previous binding on exit; always cheap, session or not.
class TrackScope {
public:
  explicit TrackScope(int64_t Track);
  ~TrackScope();
  TrackScope(const TrackScope &) = delete;
  TrackScope &operator=(const TrackScope &) = delete;

private:
  int64_t Saved;
};

/// Renders a counter/gauge snapshot in the exact `--metrics-json` shape
/// ({"counters":{...},"gauges":{...},"spans":N}, keys sorted, trailing
/// newline). TraceSession::metricsJson delegates here; balign-serve uses
/// it directly over its own MetricRegistry, so the live metrics endpoint
/// and the CLI dump can never drift apart.
std::string renderMetricsJson(const std::map<std::string, uint64_t> &Counters,
                              const std::map<std::string, uint64_t> &Gauges,
                              size_t NumSpans);

/// Counter/gauge probes for instrumented subsystems: one relaxed atomic
/// load when tracing is off.
inline void scopeCounterAdd(const char *Name, uint64_t Delta = 1) {
  if (TraceSession *S = TraceSession::active())
    S->metrics().counterAdd(Name, Delta);
}

inline void scopeGaugeAdd(const char *Name, uint64_t Delta = 1) {
  if (TraceSession *S = TraceSession::active())
    S->metrics().gaugeAdd(Name, Delta);
}

inline void scopeGaugeMax(const char *Name, uint64_t Value) {
  if (TraceSession *S = TraceSession::active())
    S->metrics().gaugeMax(Name, Value);
}

} // namespace balign

#endif // BALIGN_TRACE_SCOPE_H
