//===- analysis/Diagnostics.h - Structured verifier diagnostics -----------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The diagnostic substrate of the balign-verify subsystem: every verifier
/// pass reports findings as structured Diagnostic records — severity, the
/// emitting pass, a stable machine-readable check ID, and a location
/// expressed in pipeline terms (procedure / block / edge) — collected by a
/// DiagnosticEngine that counts, filters, and renders them.
///
/// Stable check IDs are the contract: tests assert on them, and they must
/// never be renamed once released (add new ones instead). The full catalog
/// lives in the CheckId enum below; DESIGN.md's "Verification" section
/// documents the taxonomy.
///
/// This header deliberately depends only on the IR layer so that low-level
/// libraries (align, workloads) can emit diagnostics without linking the
/// verifier passes themselves.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ANALYSIS_DIAGNOSTICS_H
#define BALIGN_ANALYSIS_DIAGNOSTICS_H

#include "ir/CFG.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace balign {

/// Diagnostic severity, ordered by increasing gravity.
enum class Severity : uint8_t {
  Note,    ///< Informational context attached to another finding.
  Warning, ///< Suspicious but not provably wrong (e.g. truncated flow).
  Error,   ///< An invariant is violated; results cannot be trusted.
};

/// Returns "note", "warning", or "error".
const char *severityName(Severity Sev);

/// Stable machine-readable identifiers for every check the verifier
/// framework performs. The printable form (checkIdName) is
/// "<pass>.<check>" and is part of the public contract: tests and
/// downstream tooling match on it.
enum class CheckId : uint16_t {
  // cfg-verify: deep CFG structural verification.
  CfgNoBlocks,        ///< cfg.no-blocks
  CfgEmptyBlock,      ///< cfg.empty-block
  CfgSuccOutOfRange,  ///< cfg.succ-out-of-range
  CfgJumpArity,       ///< cfg.jump-arity
  CfgCondArity,       ///< cfg.cond-arity
  CfgMultiArity,      ///< cfg.multi-arity
  CfgRetHasSucc,      ///< cfg.ret-has-succ
  CfgDuplicateEdge,   ///< cfg.duplicate-edge
  CfgUnreachable,     ///< cfg.unreachable-block
  CfgNoExitPath,      ///< cfg.no-exit-path
  CfgNoReturn,        ///< cfg.no-return-block

  // profile-flow: Kirchhoff flow conservation of edge profiles.
  ProfileShapeMismatch, ///< profile.shape-mismatch
  ProfileUnknownEdge,   ///< profile.unknown-edge
  ProfileFlowImbalance, ///< profile.flow-imbalance
  ProfileFlowTruncated, ///< profile.flow-truncated
  ProfileCountOverflow, ///< profile.count-overflow

  // layout-check: layout legality and materialization fidelity.
  LayoutNotPermutation,   ///< layout.not-permutation
  LayoutEntryNotFirst,    ///< layout.entry-not-first
  LayoutEdgeUnrealizable, ///< layout.edge-unrealizable
  LayoutFixupTargetWrong, ///< layout.fixup-target-wrong
  LayoutAddressDisorder,  ///< layout.address-disorder
  LayoutItemIndexBroken,  ///< layout.item-index-broken

  // matrix-audit: DTSP cost matrix and STSP transform invariants.
  MatrixNegativeCost,     ///< matrix.negative-cost
  MatrixBigMLeak,         ///< matrix.bigm-leak
  MatrixDummyRowBroken,   ///< matrix.dummy-row-broken
  MatrixCostMismatch,     ///< matrix.cost-mismatch
  MatrixTransformInexact, ///< matrix.transform-inexact
  MatrixEntryPinTooSmall, ///< matrix.entry-pin-too-small

  // tour-bounds: tour validity and lower-bound ordering.
  TourInvalid,         ///< tour.invalid
  TourCostMismatch,    ///< tour.cost-mismatch
  TourPinPaid,         ///< tour.pin-paid
  TourPenaltyMismatch, ///< tour.penalty-mismatch
  BoundHkExceedsTour,  ///< bounds.hk-exceeds-tour
  BoundApExceedsTour,  ///< bounds.ap-exceeds-tour
  BoundNegative,       ///< bounds.negative

  // determinism: cross-run replay divergence.
  DeterminismMatrixDiverged, ///< determinism.matrix-diverged
  DeterminismTourDiverged,   ///< determinism.tour-diverged
  DeterminismLayoutDiverged, ///< determinism.layout-diverged

  // pipeline: argument contracts of the alignment driver.
  PipelineProfileArity,     ///< pipeline.profile-arity
  PipelineProfileShape,     ///< pipeline.profile-shape
  PipelineLayoutArity,      ///< pipeline.layout-arity
  PipelineCacheNotAttached, ///< pipeline.cache-not-attached

  // shield: balign-shield failure isolation (surfaced as warnings — the
  // shipped layout is legal, just produced by a lower ladder rung).
  ShieldFallback, ///< shield.fallback
  ShieldSkipped,  ///< shield.skipped

  // trace: balign-scope span-stream and metric sanity.
  TraceNegativeDuration, ///< trace.negative-duration
  TraceBadNesting,       ///< trace.bad-nesting
  TraceSeqGap,           ///< trace.seq-gap
  TraceCounterRegressed, ///< trace.counter-regressed

  // lint: balign-lint static CFG/profile analysis (src/static/Lint.h).
  // Errors are profile lies (the training data cannot have come from a
  // real run); warnings are structural anomalies the aligner tolerates
  // but a build system should see; notes are advisory.
  LintUnreachableBlock,  ///< lint.unreachable-block
  LintUnreachableHot,    ///< lint.unreachable-hot
  LintCounterOverflow,   ///< lint.counter-overflow
  LintCounterSaturated,  ///< lint.counter-saturated
  LintFlowImbalance,     ///< lint.flow-imbalance
  LintFlowContradictory, ///< lint.flow-contradictory
  LintFlowRepair,        ///< lint.flow-repair
  LintIrreducibleLoop,   ///< lint.irreducible-loop
  LintDeepNest,          ///< lint.deep-nest
  LintNoLoopExit,        ///< lint.no-loop-exit
  LintSelfLoop,          ///< lint.self-loop
  LintLinearCfg,         ///< lint.linear-cfg
  LintModelSuspicious,   ///< lint.model-suspicious
  LintObjectiveWindow,   ///< lint.objective.window

  // displace-check: branch-displacement encoding soundness (pass 9,
  // analysis/DisplaceCheck.cpp). Errors mean the emitted code would not
  // execute correctly (a short-form branch cannot reach its target);
  // the minimality finding is a warning — wide-but-reachable code runs,
  // it is just not the least fixpoint the solver promises.
  DisplaceUnreachable,     ///< displace.unreachable
  DisplaceNotMinimal,      ///< displace.not-minimal
  DisplaceAddressMismatch, ///< displace.address-mismatch
};

/// Returns the stable printable ID, e.g. "cfg.unreachable-block".
const char *checkIdName(CheckId Check);

/// Where a finding is anchored: program scope (all fields empty), a
/// procedure, a block within it, or an edge Block -> EdgeTo.
struct DiagLocation {
  std::string Proc;               ///< Procedure name; empty = program scope.
  BlockId Block = InvalidBlock;   ///< Block within Proc, if any.
  BlockId EdgeTo = InvalidBlock;  ///< Set when the finding names an edge.

  static DiagLocation program() { return DiagLocation(); }
  static DiagLocation procedure(std::string Name);
  static DiagLocation block(std::string ProcName, BlockId Id);
  static DiagLocation edge(std::string ProcName, BlockId From, BlockId To);

  /// "proc 'f' block 3 -> 5" style rendering; "<program>" at top scope.
  std::string str() const;
};

/// One structured finding.
struct Diagnostic {
  Severity Sev = Severity::Error;
  CheckId Check = CheckId::CfgNoBlocks;
  std::string Pass; ///< Emitting pass name, e.g. "cfg-verify".
  DiagLocation Loc;
  std::string Message;

  /// "error: [cfg.unreachable-block] cfg-verify: proc 'f' block 3: ...".
  std::string render() const;
};

/// Collects diagnostics from verifier passes; counts by severity and
/// renders reports. Engines are cheap to construct; a fresh engine per
/// verification run keeps counters meaningful.
class DiagnosticEngine {
public:
  /// Reports a fully-formed diagnostic.
  void report(Diagnostic Diag);

  /// Convenience: builds and reports in one call.
  void report(Severity Sev, CheckId Check, std::string Pass,
              DiagLocation Loc, std::string Message);

  size_t errorCount() const { return NumErrors; }
  size_t warningCount() const { return NumWarnings; }
  size_t noteCount() const { return NumNotes; }
  bool hasErrors() const { return NumErrors != 0; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Number of collected diagnostics carrying \p Check.
  size_t count(CheckId Check) const;

  /// True if any collected diagnostic carries \p Check.
  bool has(CheckId Check) const { return count(Check) != 0; }

  /// All diagnostics rendered one per line.
  std::string renderAll() const;

  /// "3 errors, 1 warning" style summary.
  std::string summary() const;

  /// If true (default false), every report() also prints to stderr as it
  /// arrives — the -verify-each experience for command-line tools.
  void setEchoToStderr(bool Echo) { EchoToStderr = Echo; }

  void clear();

private:
  std::vector<Diagnostic> Diags;
  size_t NumErrors = 0;
  size_t NumWarnings = 0;
  size_t NumNotes = 0;
  bool EchoToStderr = false;
};

/// Renders \p Diag to stderr and aborts. The LLVM report_fatal_error
/// analogue used where continuing would compute garbage (e.g. a pipeline
/// invoked with a profile shaped for a different program).
[[noreturn]] void reportFatal(const Diagnostic &Diag);

/// If \p Diags holds any errors, renders them all to stderr (prefixed
/// with \p What) and aborts. Used by self-checking generators.
void reportFatalIfErrors(const DiagnosticEngine &Diags, const char *What);

} // namespace balign

#endif // BALIGN_ANALYSIS_DIAGNOSTICS_H
