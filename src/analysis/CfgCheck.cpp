//===- analysis/CfgCheck.cpp - Deep CFG verification ----------------------------===//
//
// Pass 1 of balign-verify: structural CFG verification. Subsumes
// Procedure::verify (which stops at the first violation) and extends it:
// every violation is reported, duplicate edges are flagged for all
// terminator kinds, and two liveness findings are added — blocks with no
// path to any return (cfg.no-exit-path) and procedures with no return
// block at all (cfg.no-return-block). Both are warnings: an infinite
// dispatch loop is legal code, but it breaks the trace generator's
// invocation model, so the author should know.
//
//===--------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include <set>

using namespace balign;

static const char PassName[] = "cfg-verify";

size_t balign::checkCfg(const Procedure &Proc, DiagnosticEngine &Diags) {
  size_t Before = Diags.errorCount();
  const std::string &Name = Proc.getName();

  if (Proc.numBlocks() == 0) {
    Diags.report(Severity::Error, CheckId::CfgNoBlocks, PassName,
                 DiagLocation::procedure(Name), "procedure has no blocks");
    return Diags.errorCount() - Before;
  }

  size_t NumReturns = 0;
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
    const BasicBlock &Block = Proc.block(Id);
    const std::vector<BlockId> &Succs = Proc.successors(Id);
    DiagLocation Here = DiagLocation::block(Name, Id);

    if (Block.InstrCount == 0)
      Diags.report(Severity::Error, CheckId::CfgEmptyBlock, PassName, Here,
                   "block has no instructions");

    bool InRange = true;
    for (BlockId Succ : Succs) {
      if (Succ >= Proc.numBlocks()) {
        Diags.report(Severity::Error, CheckId::CfgSuccOutOfRange, PassName,
                     DiagLocation::edge(Name, Id, Succ),
                     "successor " + std::to_string(Succ) +
                         " out of range (procedure has " +
                         std::to_string(Proc.numBlocks()) + " blocks)");
        InRange = false;
      }
    }

    // Duplicate successors are illegal for every terminator kind: a
    // conditional needs two distinct directions, a multiway's targets
    // are a set, and a jump/return cannot repeat by arity.
    std::set<BlockId> Unique(Succs.begin(), Succs.end());
    if (Unique.size() != Succs.size())
      Diags.report(Severity::Error, CheckId::CfgDuplicateEdge, PassName,
                   Here, "duplicate successor edge");

    switch (Block.Kind) {
    case TerminatorKind::Unconditional:
      if (Succs.size() != 1)
        Diags.report(Severity::Error, CheckId::CfgJumpArity, PassName, Here,
                     "jump needs exactly 1 successor, has " +
                         std::to_string(Succs.size()));
      break;
    case TerminatorKind::Conditional:
      if (Succs.size() != 2)
        Diags.report(Severity::Error, CheckId::CfgCondArity, PassName, Here,
                     "cond needs exactly 2 successors, has " +
                         std::to_string(Succs.size()));
      break;
    case TerminatorKind::Multiway:
      if (Succs.size() < 2)
        Diags.report(Severity::Error, CheckId::CfgMultiArity, PassName, Here,
                     "multi needs >= 2 successors, has " +
                         std::to_string(Succs.size()));
      break;
    case TerminatorKind::Return:
      ++NumReturns;
      if (!Succs.empty())
        Diags.report(Severity::Error, CheckId::CfgRetHasSucc, PassName, Here,
                     "ret must have no successors, has " +
                         std::to_string(Succs.size()));
      break;
    }
    if (!InRange)
      continue;
  }

  if (NumReturns == 0)
    Diags.report(Severity::Warning, CheckId::CfgNoReturn, PassName,
                 DiagLocation::procedure(Name),
                 "procedure has no return block; every invocation would "
                 "run forever");

  // Forward reachability from the entry (dead-block detection). Guard
  // every successor dereference: earlier findings may have left
  // out-of-range edges in place.
  std::vector<bool> FromEntry(Proc.numBlocks(), false);
  std::vector<BlockId> Work = {Proc.entry()};
  FromEntry[Proc.entry()] = true;
  while (!Work.empty()) {
    BlockId Id = Work.back();
    Work.pop_back();
    for (BlockId Succ : Proc.successors(Id)) {
      if (Succ >= Proc.numBlocks() || FromEntry[Succ])
        continue;
      FromEntry[Succ] = true;
      Work.push_back(Succ);
    }
  }
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id)
    if (!FromEntry[Id])
      Diags.report(Severity::Error, CheckId::CfgUnreachable, PassName,
                   DiagLocation::block(Name, Id),
                   "block unreachable from the entry (dead block)");

  // Backward reachability from returns (exit-path detection).
  if (NumReturns != 0) {
    std::vector<std::vector<BlockId>> Preds = Proc.computePredecessors();
    std::vector<bool> ToExit(Proc.numBlocks(), false);
    for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id)
      if (Proc.block(Id).Kind == TerminatorKind::Return) {
        ToExit[Id] = true;
        Work.push_back(Id);
      }
    while (!Work.empty()) {
      BlockId Id = Work.back();
      Work.pop_back();
      for (BlockId Pred : Preds[Id]) {
        if (ToExit[Pred])
          continue;
        ToExit[Pred] = true;
        Work.push_back(Pred);
      }
    }
    for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id)
      if (FromEntry[Id] && !ToExit[Id])
        Diags.report(Severity::Warning, CheckId::CfgNoExitPath, PassName,
                     DiagLocation::block(Name, Id),
                     "no path from this block to any return");
  }

  return Diags.errorCount() - Before;
}

size_t balign::checkCfg(const Program &Prog, DiagnosticEngine &Diags) {
  size_t Errors = 0;
  for (const Procedure &Proc : Prog.procedures())
    Errors += checkCfg(Proc, Diags);
  return Errors;
}
