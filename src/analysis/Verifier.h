//===- analysis/Verifier.h - The six balign-verify analyses ---------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The verifier-pass layer of balign-verify: six analyses covering the
/// whole reduction chain CFG -> profile -> DTSP matrix -> STSP transform
/// -> tour -> layout, in the spirit of LLVM's IR verifier and
/// Boender & Sacerdoti Coen's machine-checked branch-displacement
/// invariants. Each pass is a free function that inspects one artifact,
/// reports structured findings into a DiagnosticEngine, and returns the
/// number of *errors* it added (so callers can gate on a single pass).
///
/// The passes, their names, and their check-ID prefixes:
///
///  1. cfg-verify    (cfg.*)     deep CFG structural verification —
///                               subsumes Procedure::verify and adds
///                               exit-reachability and no-return findings.
///  2. profile-flow  (profile.*) Kirchhoff flow conservation of edge
///                               profiles with entry/exit slack; shape
///                               and overflow screens.
///  3. layout-check  (layout.*)  layout legality: permutation, entry
///                               pinning, realizability of every executed
///                               CFG edge in the materialized layout,
///                               fixup-target and address invariants.
///  4. matrix-audit  (matrix.*)  DTSP cost-matrix invariants: big-M
///                               containment, dummy-city row shape, cell
///                               exactness against the penalty model,
///                               DTSP<->STSP transform exactness.
///  5. tour-bounds   (tour.* / bounds.*) tour validity, reported-cost and
///                               reduction exactness (tour cost ==
///                               layout penalty), HK/AP bound ordering
///                               against the best tour on the directed
///                               cost scale.
///  6. determinism   (determinism.*) replays a pipeline stage with the
///                               same seed and diffs matrix, tour cost,
///                               and layout against the first run.
///
/// Passes never mutate their inputs and never abort; policy (abort, exit
/// code, test assertion) belongs to callers. PipelineVerifier.h wires
/// them into align::Pipeline as verify-each hooks.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ANALYSIS_VERIFIER_H
#define BALIGN_ANALYSIS_VERIFIER_H

#include "align/Bounds.h"
#include "align/Layout.h"
#include "align/Reduction.h"
#include "analysis/Diagnostics.h"
#include "ir/CFG.h"
#include "machine/MachineModel.h"
#include "profile/Profile.h"
#include "tsp/Instance.h"
#include "tsp/IteratedOpt.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace balign {

struct ProgramAlignment;

/// How much verification effort to spend.
enum class VerifyLevel : uint8_t {
  None,  ///< Verification disabled.
  Quick, ///< Linear-time structural checks only.
  Full,  ///< Adds O(N^2) matrix exactness audits and determinism replay.
};

/// Knobs shared by the passes.
struct VerifyOptions {
  VerifyLevel Level = VerifyLevel::Full;

  /// Allowed aggregate outflow deficit per procedure before profile-flow
  /// warns about truncated traces (each abandoned walk loses one edge).
  uint64_t TruncationSlack = 0;

  /// Counts above this are reported as overflow-suspicious: penalties
  /// multiply counts by up to 7 cycles and sum them in int64, so profile
  /// counts must stay far below the 2^63 ceiling.
  uint64_t OverflowLimit = uint64_t(1) << 56;
};

//===--------------------------------------------------------------------===//
// 1. cfg-verify
//===--------------------------------------------------------------------===//

/// Deep CFG verification of one procedure. Reports every violation (it
/// does not stop at the first, unlike Procedure::verify).
size_t checkCfg(const Procedure &Proc, DiagnosticEngine &Diags);

/// Verifies every procedure of \p Prog.
size_t checkCfg(const Program &Prog, DiagnosticEngine &Diags);

//===--------------------------------------------------------------------===//
// 2. profile-flow
//===--------------------------------------------------------------------===//

/// Flow-conservation check of \p Profile against \p Proc: shape match,
/// per-block Kirchhoff balance (inflow == block count for non-entry
/// blocks; entry absorbs invocation slack; truncated walks may lose
/// outflow up to Options.TruncationSlack), and overflow screening.
size_t checkProfileFlow(const Procedure &Proc,
                        const ProcedureProfile &Profile,
                        DiagnosticEngine &Diags,
                        const VerifyOptions &Options = {});

/// Whole-program profile check, including the program/profile arity.
size_t checkProfileFlow(const Program &Prog, const ProgramProfile &Profile,
                        DiagnosticEngine &Diags,
                        const VerifyOptions &Options = {});

//===--------------------------------------------------------------------===//
// 3. layout-check
//===--------------------------------------------------------------------===//

/// Legality of \p L for \p Proc: a permutation pinned at the entry, whose
/// materialization realizes every executed CFG edge (every edge with a
/// nonzero training count must be reachable as a fall-through, taken
/// branch, multiway target, or fixup jump), with correct fixup targets
/// and strictly increasing, gap-free item addresses.
size_t checkLayout(const Procedure &Proc, const Layout &L,
                   const ProcedureProfile &Train, const MachineModel &Model,
                   DiagnosticEngine &Diags);

//===--------------------------------------------------------------------===//
// 4. matrix-audit
//===--------------------------------------------------------------------===//

/// Audits the alignment DTSP instance \p Atsp built for \p Proc:
/// dummy-city row invariants (0 to the entry, EntryPin elsewhere),
/// non-negative real costs below the pin, EntryPin actually exceeding
/// the worst-case layout total, and — at VerifyLevel::Full — exactness
/// of every cell against blockLayoutPenalty and of the DTSP->STSP
/// transform on locked pairs, real arcs, and a probe tour.
size_t checkCostMatrix(const Procedure &Proc, const ProcedureProfile &Train,
                       const MachineModel &Model, const AlignmentTsp &Atsp,
                       DiagnosticEngine &Diags,
                       const VerifyOptions &Options = {});

//===--------------------------------------------------------------------===//
// 5. tour-bounds
//===--------------------------------------------------------------------===//

/// Checks a solved tour over \p Atsp: validity, agreement of the
/// reported cost with the instance, no entry-pin leakage into the cost,
/// and the reduction's central exactness invariant — the tour's walk
/// cost equals evaluateLayout of the derived layout on the training
/// profile.
size_t checkTour(const Procedure &Proc, const ProcedureProfile &Train,
                 const MachineModel &Model, const AlignmentTsp &Atsp,
                 const std::vector<City> &Tour, int64_t ReportedCost,
                 DiagnosticEngine &Diags);

/// Checks lower-bound ordering on the directed penalty scale:
/// 0 <= HeldKarp <= TspPenalty and 0 <= Assignment <= TspPenalty, where
/// \p TspPenalty is the best tour's penalty in cycles.
size_t checkBounds(const Procedure &Proc, const PenaltyBounds &Bounds,
                   uint64_t TspPenalty, DiagnosticEngine &Diags);

//===--------------------------------------------------------------------===//
// 6. determinism
//===--------------------------------------------------------------------===//

/// Replays the matrix-build and solve stages for \p Proc with the same
/// inputs and seed and diffs the results against the first run's
/// artifacts. Catches hidden global state, uninitialized reads that
/// happen to be stable within a run, and order-dependent accumulation.
size_t checkDeterminism(const Procedure &Proc, const ProcedureProfile &Train,
                        const MachineModel &Model,
                        const AlignmentTsp &ExpectedMatrix,
                        const IteratedOptOptions &SolverOptions,
                        const std::vector<City> &ExpectedTour,
                        int64_t ExpectedCost, const Layout &ExpectedLayout,
                        DiagnosticEngine &Diags);

//===--------------------------------------------------------------------===//
// 7. shield (balign-shield bridge)
//===--------------------------------------------------------------------===//

/// Surfaces every failure balign-shield isolated during \p Alignment as
/// a structured warning — shield.fallback for procedures degraded down
/// the ladder, shield.skipped for those kept at the original layout
/// under OnErrorPolicy::Skip — so `--verify` output shows exactly what
/// degraded and why. Warnings, not errors: the shipped layouts are
/// legal (layout-check still covers them), just not the full-path
/// result. Returns the number of findings reported.
size_t reportShieldFindings(const ProgramAlignment &Alignment,
                            DiagnosticEngine &Diags);

//===--------------------------------------------------------------------===//
// 8. trace (balign-scope bridge)
//===--------------------------------------------------------------------===//

class TraceSession;
struct TraceSpan;

/// Validates a drained balign-scope span stream: every span must have
/// EndNs >= StartNs (trace.negative-duration), the spans opened by each
/// thread must nest like a call stack — a span at depth D+1 must lie
/// inside the enclosing depth-D span's [start, end] window
/// (trace.bad-nesting) — and the per-track sequence numbers must be
/// contiguous from zero (trace.seq-gap), which is what makes the drain
/// order reproducible across thread counts. Nesting is checked per
/// *thread*, not per track: the main thread's verify hooks run on a
/// procedure's track at the main thread's depth. Returns the number of
/// errors reported.
size_t checkTraceSpans(const std::vector<TraceSpan> &Spans,
                       DiagnosticEngine &Diags);

/// Convenience wrapper: drains \p Session and validates the spans.
size_t checkTrace(const TraceSession &Session, DiagnosticEngine &Diags);

/// Checks counter monotonicity between two snapshots of the same
/// registry (e.g. taken before and after a pipeline stage): every
/// counter present in \p Before must exist in \p After with a value >=
/// its old one (trace.counter-regressed). Gauges carry no such promise
/// and are not checked. Returns the number of errors reported.
size_t checkCounterMonotonic(const std::map<std::string, uint64_t> &Before,
                             const std::map<std::string, uint64_t> &After,
                             DiagnosticEngine &Diags);

//===--------------------------------------------------------------------===//
// 9. displace-check
//===--------------------------------------------------------------------===//

/// Encoding soundness of a materialized layout (displace.*), after
/// Boender & Sacerdoti Coen: re-derives every item address from the item
/// sizes and checks they match the stored ones
/// (displace.address-mismatch), proves every short-form branch site can
/// reach its target within MachineModel::ShortBranchRange
/// (displace.unreachable — the emitted code would jump wild), and flags
/// long-form branches whose displacement would in fact fit the short
/// form (displace.not-minimal, a warning: the solver promises the least
/// fixpoint, so a fitting long branch means wasted bytes, not broken
/// code). Under BranchEncoding::Fixed the pass only asserts that no item
/// is long-form. Returns the number of errors reported.
size_t checkDisplacement(const Procedure &Proc, const MaterializedLayout &Mat,
                         const MachineModel &Model, DiagnosticEngine &Diags);

/// Convenience wrapper: materializes \p L (running the displacement
/// fixpoint under fault suppression) and audits the result.
size_t checkDisplacement(const Procedure &Proc, const Layout &L,
                         const ProcedureProfile &Train,
                         const MachineModel &Model, DiagnosticEngine &Diags);

} // namespace balign

#endif // BALIGN_ANALYSIS_VERIFIER_H
