//===- analysis/ShieldCheck.cpp - balign-shield findings bridge -----------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The bridge from balign-shield's FailureReport into balign-verify's
/// diagnostic stream: every isolated per-procedure failure becomes a
/// shield.fallback (or shield.skipped) warning naming the procedure, the
/// failure kind, and the degradation-ladder rung whose layout shipped.
///
//===--------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include "align/Pipeline.h"

using namespace balign;

size_t balign::reportShieldFindings(const ProgramAlignment &Alignment,
                                    DiagnosticEngine &Diags) {
  for (const ProcedureFailure &F : Alignment.Failures.Failures) {
    CheckId Check = F.Skipped ? CheckId::ShieldSkipped
                              : CheckId::ShieldFallback;
    std::string Message = std::string(failureKindName(F.Kind)) + ": " +
                          F.What + "; shipped rung=" +
                          ladderRungName(F.Rung);
    Diags.report(Severity::Warning, Check, "shield",
                 DiagLocation::procedure(F.ProcName), std::move(Message));
  }
  return Alignment.Failures.size();
}
