//===- analysis/DeterminismCheck.cpp - Cross-run replay checking ----------------===//
//
// Pass 6 of balign-verify: determinism by replay. The repository's
// contract is that every stage is a pure function of (inputs, seed) —
// the tables must regenerate bit-for-bit. This pass re-executes the
// matrix-build, solve, and layout-derivation stages with identical
// inputs and diffs the artifacts against the first run. Divergence
// means hidden global state, an uninitialized read that was stable
// within one run, or iteration over an address-keyed container.
//
//===--------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include "align/Penalty.h"
#include "align/Pipeline.h"
#include "robust/FaultInjector.h"

using namespace balign;

static const char PassName[] = "determinism";

size_t balign::checkDeterminism(const Procedure &Proc,
                                const ProcedureProfile &Train,
                                const MachineModel &Model,
                                const AlignmentTsp &ExpectedMatrix,
                                const IteratedOptOptions &SolverOptions,
                                const std::vector<City> &ExpectedTour,
                                int64_t ExpectedCost,
                                const Layout &ExpectedLayout,
                                DiagnosticEngine &Diags) {
  size_t Before = Diags.errorCount();
  const std::string &Name = Proc.getName();

  // The replay re-executes production stages that carry balign-shield
  // fault sites. Suppress the injector for this thread: a replay must
  // neither trip an armed fault (the pipeline proper already survived
  // this procedure) nor consume hits the pipeline's deterministic hit
  // sequence would otherwise see.
  FaultInjector::ScopedSuppress SuppressFaults;

  // Stage 1: matrix build.
  AlignmentTsp Replayed = buildAlignmentTsp(Proc, Train, Model);
  bool MatrixSame =
      Replayed.Tsp.numCities() == ExpectedMatrix.Tsp.numCities() &&
      Replayed.EntryPin == ExpectedMatrix.EntryPin &&
      Replayed.DummyCity == ExpectedMatrix.DummyCity;
  if (MatrixSame) {
    size_t N = Replayed.Tsp.numCities();
    for (City A = 0; A != N && MatrixSame; ++A)
      for (City B = 0; B != N; ++B)
        if (Replayed.Tsp.cost(A, B) != ExpectedMatrix.Tsp.cost(A, B)) {
          MatrixSame = false;
          break;
        }
  }
  if (!MatrixSame)
    Diags.report(Severity::Error, CheckId::DeterminismMatrixDiverged,
                 PassName, DiagLocation::procedure(Name),
                 "rebuilding the cost matrix from identical inputs "
                 "produced different costs");

  // Stage 2: solve, from the *expected* matrix so a stage-1 divergence
  // does not cascade. Same options, same seed, so the same tour and
  // cost must come back.
  DtspSolution Replay = solveDirectedTsp(ExpectedMatrix.Tsp, SolverOptions);
  if (Replay.Cost != ExpectedCost || Replay.Tour != ExpectedTour)
    Diags.report(Severity::Error, CheckId::DeterminismTourDiverged, PassName,
                 DiagLocation::procedure(Name),
                 "re-solving with the same seed produced cost " +
                     std::to_string(Replay.Cost) + " (expected " +
                     std::to_string(ExpectedCost) +
                     (Replay.Tour != ExpectedTour ? ") and a different tour"
                                                  : ")"));

  // Stage 3: layout derivation from the expected tour, including the
  // balign-displace refinement round (a no-op under a fixed encoding),
  // which the contract requires to be a pure function like every other
  // stage.
  if (isValidTour(ExpectedTour, ExpectedMatrix.Tsp.numCities())) {
    Layout L = layoutFromTour(Proc, ExpectedMatrix, ExpectedTour);
    uint64_t Penalty = evaluateLayout(Proc, L, Model, Train, Train);
    refineLayoutForEncoding(Proc, Train, Model, ExpectedMatrix, SolverOptions,
                            L, Penalty);
    if (L.Order != ExpectedLayout.Order)
      Diags.report(Severity::Error, CheckId::DeterminismLayoutDiverged,
                   PassName, DiagLocation::procedure(Name),
                   "deriving the layout from the same tour produced a "
                   "different block order");
  }

  return Diags.errorCount() - Before;
}
