//===- analysis/MatrixCheck.cpp - DTSP cost-matrix auditing ---------------------===//
//
// Pass 4 of balign-verify: audits the alignment DTSP instance against the
// construction contract of align/Reduction.h.
//
// Structural invariants (every level): the dummy city's outgoing row is
// exactly {0 to the entry, EntryPin elsewhere}; every real cell is
// non-negative and strictly below EntryPin (a cell at or above the pin
// means the big-M leaked into the penalty scale); and EntryPin exceeds
// the worst-case layout total recomputed from the matrix itself, so no
// feasible layout can ever be outbid by a pin-paying tour.
//
// Exactness audits (VerifyLevel::Full): every cell must equal a fresh
// blockLayoutPenalty evaluation, and the DTSP->STSP transform must be
// exact — locked pair edges at -LockBonus, real arcs carrying the
// directed costs, forbidden cells at +LockBonus, and a probe tour whose
// symmetric cost maps back to its directed cost to the cycle.
//
//===--------------------------------------------------------------------===//

#include "align/Penalty.h"
#include "analysis/Verifier.h"
#include "robust/FaultInjector.h"
#include "tsp/Transform.h"

#include <algorithm>

using namespace balign;

static const char PassName[] = "matrix-audit";

static size_t auditTransform(const Procedure &Proc, const AlignmentTsp &Atsp,
                             DiagnosticEngine &Diags) {
  size_t Before = Diags.errorCount();
  const std::string &Name = Proc.getName();
  const DirectedTsp &Dtsp = Atsp.Tsp;
  size_t N = Dtsp.numCities();
  // The audit re-runs the transform, which carries a balign-shield fault
  // site; verification must neither trip it nor consume a hit.
  FaultInjector::ScopedSuppress SuppressFaults;
  SymmetricTransform T = transformToSymmetric(Dtsp);

  if (T.DirectedN != N || T.Sym.numCities() != 2 * N) {
    Diags.report(Severity::Error, CheckId::MatrixTransformInexact, PassName,
                 DiagLocation::procedure(Name),
                 "symmetric transform has the wrong city count");
    return Diags.errorCount() - Before;
  }
  if (T.LockBonus <= Dtsp.totalAbsCost())
    Diags.report(Severity::Error, CheckId::MatrixTransformInexact, PassName,
                 DiagLocation::procedure(Name),
                 "lock bonus does not dominate the total absolute cost");

  // Cell-by-cell shape: city i splits into in-city i and out-city i + N.
  size_t CellFindings = 0;
  for (City I = 0; I != N && CellFindings < 8; ++I) {
    for (City J = 0; J != N; ++J) {
      int64_t InIn = T.Sym.dist(I, J);
      int64_t OutIn = T.Sym.dist(I + N, J);
      int64_t Expected;
      bool Bad = false;
      if (I == J) {
        // Locked pair edge; in-in diagonal is unused (0 by construction
        // of the dense matrix) and not checked.
        Bad = OutIn != -T.LockBonus;
        Expected = -T.LockBonus;
      } else {
        // Real directed arc i -> j lives on (i_out, j_in); in-in cells
        // are forbidden.
        Bad = OutIn != Dtsp.cost(I, J) || InIn != T.LockBonus;
        Expected = Dtsp.cost(I, J);
      }
      if (T.Sym.dist(I + N, J + N) != T.LockBonus && I != J)
        Bad = true; // out-out cells are forbidden too.
      if (Bad) {
        Diags.report(Severity::Error, CheckId::MatrixTransformInexact,
                     PassName, DiagLocation::edge(Name, I, J),
                     "transformed cell disagrees with the 2-city scheme "
                     "(expected arc cost " +
                         std::to_string(Expected) + ")");
        if (++CellFindings == 8)
          break; // One corruption usually smears; don't flood.
      }
    }
  }

  // Probe tour round trip: the canonical directed tour must survive
  // expansion and collapse, and its symmetric cost must map back to its
  // directed cost exactly.
  std::vector<City> Probe(N);
  for (City I = 0; I != N; ++I)
    Probe[I] = I;
  std::vector<City> SymTour = T.toSymmetricTour(Probe);
  if (T.toDirectedTour(SymTour) != Probe ||
      T.toDirectedCost(T.Sym.tourCost(SymTour)) != Dtsp.tourCost(Probe))
    Diags.report(Severity::Error, CheckId::MatrixTransformInexact, PassName,
                 DiagLocation::procedure(Name),
                 "probe tour does not round-trip through the transform");

  return Diags.errorCount() - Before;
}

size_t balign::checkCostMatrix(const Procedure &Proc,
                               const ProcedureProfile &Train,
                               const MachineModel &Model,
                               const AlignmentTsp &Atsp,
                               DiagnosticEngine &Diags,
                               const VerifyOptions &Options) {
  size_t Before = Diags.errorCount();
  const std::string &Name = Proc.getName();
  const DirectedTsp &Dtsp = Atsp.Tsp;
  size_t N = Atsp.numBlocks();

  if (Dtsp.numCities() != N + 1 || N != Proc.numBlocks()) {
    Diags.report(Severity::Error, CheckId::MatrixDummyRowBroken, PassName,
                 DiagLocation::procedure(Name),
                 "instance has " + std::to_string(Dtsp.numCities()) +
                     " cities for " + std::to_string(Proc.numBlocks()) +
                     " blocks (want blocks + 1 dummy)");
    return Diags.errorCount() - Before;
  }

  // Dummy-city row: may only be left into the entry for free; every
  // other exit pays the pin.
  for (City B = 0; B != N; ++B) {
    int64_t Cost = Dtsp.cost(Atsp.DummyCity, B);
    int64_t Want = B == Proc.entry() ? 0 : Atsp.EntryPin;
    if (Cost != Want)
      Diags.report(Severity::Error, CheckId::MatrixDummyRowBroken, PassName,
                   DiagLocation::block(Name, B),
                   "dummy -> block costs " + std::to_string(Cost) +
                       ", want " + std::to_string(Want));
  }

  // Real rows: penalties are counts times non-negative cycle charges, so
  // cells are non-negative; and the pin must dominate every real cell,
  // otherwise it has leaked into the penalty scale.
  int64_t WorstTotal = 0;
  for (City B = 0; B != N; ++B) {
    int64_t Worst = 0;
    for (City X = 0; X != N + 1; ++X) {
      if (X == B)
        continue;
      int64_t Cost = Dtsp.cost(B, X);
      if (Cost < 0)
        Diags.report(Severity::Error, CheckId::MatrixNegativeCost, PassName,
                     DiagLocation::edge(Name, B, X),
                     "negative layout-edge cost " + std::to_string(Cost));
      if (Cost >= Atsp.EntryPin && Atsp.EntryPin > 0)
        Diags.report(Severity::Error, CheckId::MatrixBigMLeak, PassName,
                     DiagLocation::edge(Name, B, X),
                     "real cell cost " + std::to_string(Cost) +
                         " reaches the entry pin " +
                         std::to_string(Atsp.EntryPin));
      Worst = std::max(Worst, Cost);
    }
    WorstTotal += Worst;
  }
  if (Atsp.EntryPin <= WorstTotal)
    Diags.report(Severity::Error, CheckId::MatrixEntryPinTooSmall, PassName,
                 DiagLocation::procedure(Name),
                 "entry pin " + std::to_string(Atsp.EntryPin) +
                     " does not exceed the worst-case layout total " +
                     std::to_string(WorstTotal));

  if (Options.Level != VerifyLevel::Full)
    return Diags.errorCount() - Before;

  // Exactness: every cell equals a fresh penalty-model evaluation.
  for (City B = 0; B != N; ++B) {
    for (City X = 0; X != N + 1; ++X) {
      if (X == B)
        continue;
      BlockId LayoutSucc = X == Atsp.DummyCity ? InvalidBlock : X;
      int64_t Want = static_cast<int64_t>(
          blockLayoutPenalty(Proc, Model, Train, Train, B, LayoutSucc));
      if (Dtsp.cost(B, X) != Want)
        Diags.report(Severity::Error, CheckId::MatrixCostMismatch, PassName,
                     DiagLocation::edge(Name, B, X),
                     "cell costs " + std::to_string(Dtsp.cost(B, X)) +
                         " but the penalty model says " +
                         std::to_string(Want));
    }
  }

  auditTransform(Proc, Atsp, Diags);
  return Diags.errorCount() - Before;
}
