//===- analysis/Diagnostics.cpp ------------------------------------------------===//

#include "analysis/Diagnostics.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace balign;

const char *balign::severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  assert(false && "unknown severity");
  return "?";
}

const char *balign::checkIdName(CheckId Check) {
  switch (Check) {
  case CheckId::CfgNoBlocks:
    return "cfg.no-blocks";
  case CheckId::CfgEmptyBlock:
    return "cfg.empty-block";
  case CheckId::CfgSuccOutOfRange:
    return "cfg.succ-out-of-range";
  case CheckId::CfgJumpArity:
    return "cfg.jump-arity";
  case CheckId::CfgCondArity:
    return "cfg.cond-arity";
  case CheckId::CfgMultiArity:
    return "cfg.multi-arity";
  case CheckId::CfgRetHasSucc:
    return "cfg.ret-has-succ";
  case CheckId::CfgDuplicateEdge:
    return "cfg.duplicate-edge";
  case CheckId::CfgUnreachable:
    return "cfg.unreachable-block";
  case CheckId::CfgNoExitPath:
    return "cfg.no-exit-path";
  case CheckId::CfgNoReturn:
    return "cfg.no-return-block";
  case CheckId::ProfileShapeMismatch:
    return "profile.shape-mismatch";
  case CheckId::ProfileUnknownEdge:
    return "profile.unknown-edge";
  case CheckId::ProfileFlowImbalance:
    return "profile.flow-imbalance";
  case CheckId::ProfileFlowTruncated:
    return "profile.flow-truncated";
  case CheckId::ProfileCountOverflow:
    return "profile.count-overflow";
  case CheckId::LayoutNotPermutation:
    return "layout.not-permutation";
  case CheckId::LayoutEntryNotFirst:
    return "layout.entry-not-first";
  case CheckId::LayoutEdgeUnrealizable:
    return "layout.edge-unrealizable";
  case CheckId::LayoutFixupTargetWrong:
    return "layout.fixup-target-wrong";
  case CheckId::LayoutAddressDisorder:
    return "layout.address-disorder";
  case CheckId::LayoutItemIndexBroken:
    return "layout.item-index-broken";
  case CheckId::MatrixNegativeCost:
    return "matrix.negative-cost";
  case CheckId::MatrixBigMLeak:
    return "matrix.bigm-leak";
  case CheckId::MatrixDummyRowBroken:
    return "matrix.dummy-row-broken";
  case CheckId::MatrixCostMismatch:
    return "matrix.cost-mismatch";
  case CheckId::MatrixTransformInexact:
    return "matrix.transform-inexact";
  case CheckId::MatrixEntryPinTooSmall:
    return "matrix.entry-pin-too-small";
  case CheckId::TourInvalid:
    return "tour.invalid";
  case CheckId::TourCostMismatch:
    return "tour.cost-mismatch";
  case CheckId::TourPinPaid:
    return "tour.pin-paid";
  case CheckId::TourPenaltyMismatch:
    return "tour.penalty-mismatch";
  case CheckId::BoundHkExceedsTour:
    return "bounds.hk-exceeds-tour";
  case CheckId::BoundApExceedsTour:
    return "bounds.ap-exceeds-tour";
  case CheckId::BoundNegative:
    return "bounds.negative";
  case CheckId::DeterminismMatrixDiverged:
    return "determinism.matrix-diverged";
  case CheckId::DeterminismTourDiverged:
    return "determinism.tour-diverged";
  case CheckId::DeterminismLayoutDiverged:
    return "determinism.layout-diverged";
  case CheckId::PipelineProfileArity:
    return "pipeline.profile-arity";
  case CheckId::PipelineProfileShape:
    return "pipeline.profile-shape";
  case CheckId::PipelineLayoutArity:
    return "pipeline.layout-arity";
  case CheckId::PipelineCacheNotAttached:
    return "pipeline.cache-not-attached";
  case CheckId::ShieldFallback:
    return "shield.fallback";
  case CheckId::ShieldSkipped:
    return "shield.skipped";
  case CheckId::TraceNegativeDuration:
    return "trace.negative-duration";
  case CheckId::TraceBadNesting:
    return "trace.bad-nesting";
  case CheckId::TraceSeqGap:
    return "trace.seq-gap";
  case CheckId::TraceCounterRegressed:
    return "trace.counter-regressed";
  case CheckId::LintUnreachableBlock:
    return "lint.unreachable-block";
  case CheckId::LintUnreachableHot:
    return "lint.unreachable-hot";
  case CheckId::LintCounterOverflow:
    return "lint.counter-overflow";
  case CheckId::LintCounterSaturated:
    return "lint.counter-saturated";
  case CheckId::LintFlowImbalance:
    return "lint.flow-imbalance";
  case CheckId::LintFlowContradictory:
    return "lint.flow-contradictory";
  case CheckId::LintFlowRepair:
    return "lint.flow-repair";
  case CheckId::LintIrreducibleLoop:
    return "lint.irreducible-loop";
  case CheckId::LintDeepNest:
    return "lint.deep-nest";
  case CheckId::LintNoLoopExit:
    return "lint.no-loop-exit";
  case CheckId::LintSelfLoop:
    return "lint.self-loop";
  case CheckId::LintLinearCfg:
    return "lint.linear-cfg";
  case CheckId::LintModelSuspicious:
    return "lint.model-suspicious";
  case CheckId::LintObjectiveWindow:
    return "lint.objective.window";
  case CheckId::DisplaceUnreachable:
    return "displace.unreachable";
  case CheckId::DisplaceNotMinimal:
    return "displace.not-minimal";
  case CheckId::DisplaceAddressMismatch:
    return "displace.address-mismatch";
  }
  assert(false && "unknown check id");
  return "?";
}

DiagLocation DiagLocation::procedure(std::string Name) {
  DiagLocation Loc;
  Loc.Proc = std::move(Name);
  return Loc;
}

DiagLocation DiagLocation::block(std::string ProcName, BlockId Id) {
  DiagLocation Loc;
  Loc.Proc = std::move(ProcName);
  Loc.Block = Id;
  return Loc;
}

DiagLocation DiagLocation::edge(std::string ProcName, BlockId From,
                                BlockId To) {
  DiagLocation Loc;
  Loc.Proc = std::move(ProcName);
  Loc.Block = From;
  Loc.EdgeTo = To;
  return Loc;
}

std::string DiagLocation::str() const {
  if (Proc.empty())
    return "<program>";
  std::string Out = "proc '" + Proc + "'";
  if (Block != InvalidBlock) {
    Out += " block " + std::to_string(Block);
    if (EdgeTo != InvalidBlock)
      Out += " -> " + std::to_string(EdgeTo);
  }
  return Out;
}

std::string Diagnostic::render() const {
  std::ostringstream Out;
  Out << severityName(Sev) << ": [" << checkIdName(Check) << "] " << Pass
      << ": " << Loc.str() << ": " << Message;
  return Out.str();
}

void DiagnosticEngine::report(Diagnostic Diag) {
  switch (Diag.Sev) {
  case Severity::Note:
    ++NumNotes;
    break;
  case Severity::Warning:
    ++NumWarnings;
    break;
  case Severity::Error:
    ++NumErrors;
    break;
  }
  if (EchoToStderr)
    std::fprintf(stderr, "%s\n", Diag.render().c_str());
  Diags.push_back(std::move(Diag));
}

void DiagnosticEngine::report(Severity Sev, CheckId Check, std::string Pass,
                              DiagLocation Loc, std::string Message) {
  Diagnostic Diag;
  Diag.Sev = Sev;
  Diag.Check = Check;
  Diag.Pass = std::move(Pass);
  Diag.Loc = std::move(Loc);
  Diag.Message = std::move(Message);
  report(std::move(Diag));
}

size_t DiagnosticEngine::count(CheckId Check) const {
  size_t Count = 0;
  for (const Diagnostic &Diag : Diags)
    if (Diag.Check == Check)
      ++Count;
  return Count;
}

std::string DiagnosticEngine::renderAll() const {
  std::string Out;
  for (const Diagnostic &Diag : Diags) {
    Out += Diag.render();
    Out += '\n';
  }
  return Out;
}

std::string DiagnosticEngine::summary() const {
  std::ostringstream Out;
  Out << NumErrors << (NumErrors == 1 ? " error, " : " errors, ")
      << NumWarnings << (NumWarnings == 1 ? " warning" : " warnings");
  if (NumNotes)
    Out << ", " << NumNotes << (NumNotes == 1 ? " note" : " notes");
  return Out.str();
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = NumWarnings = NumNotes = 0;
}

void balign::reportFatal(const Diagnostic &Diag) {
  std::fprintf(stderr, "balign fatal: %s\n", Diag.render().c_str());
  std::abort();
}

void balign::reportFatalIfErrors(const DiagnosticEngine &Diags,
                                 const char *What) {
  if (!Diags.hasErrors())
    return;
  std::fprintf(stderr, "balign fatal: %s failed verification (%s)\n%s", What,
               Diags.summary().c_str(), Diags.renderAll().c_str());
  std::abort();
}
