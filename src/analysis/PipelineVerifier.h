//===- analysis/PipelineVerifier.h - verify-each for align::Pipeline --------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Ties the balign-verify passes to the alignment pipeline's stage hooks
/// (the LLVM -verify-each idea): a PipelineVerifier installs callbacks
/// into AlignmentOptions::Hooks so every cost matrix, tour, and layout
/// the pipeline produces is checked the moment it exists, and collects
/// all findings in one DiagnosticEngine.
///
/// The verifier must outlive the alignProgram call it instruments (the
/// installed callbacks capture `this`).
///
/// The verifier is deliberately single-threaded: the pipeline's hook
/// contract (Pipeline.h) guarantees callbacks fire serialized on the
/// calling thread, in program order, with one procedure's three events
/// consecutive — even when AlignmentOptions::Threads parallelizes the
/// stage computations — so the per-procedure StageCache below needs no
/// locking at any thread count.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ANALYSIS_PIPELINEVERIFIER_H
#define BALIGN_ANALYSIS_PIPELINEVERIFIER_H

#include "align/Pipeline.h"
#include "analysis/Verifier.h"

namespace balign {

class PipelineVerifier {
public:
  explicit PipelineVerifier(DiagnosticEngine &Diags,
                            VerifyOptions Options = VerifyOptions())
      : Diags(Diags), Options(Options) {}

  /// Verifies the pipeline's inputs: every procedure's CFG and every
  /// procedure profile's flow conservation. Returns errors added.
  size_t verifyInputs(const Program &Prog, const ProgramProfile &Train);

  /// Installs verify-each callbacks into \p AlignOptions. Overwrites any
  /// hooks already present.
  void install(AlignmentOptions &AlignOptions);

  /// Verifies a finished whole-program alignment: layout legality of
  /// every produced layout and the bound ordering. For alignments
  /// produced without the hooks installed; the determinism replay needs
  /// the in-flight stage artifacts and only runs through verify-each.
  size_t verifyAlignment(const Program &Prog, const ProgramProfile &Train,
                         const MachineModel &Model,
                         const ProgramAlignment &Alignment);

  DiagnosticEngine &diags() { return Diags; }
  const VerifyOptions &options() const { return Options; }

private:
  void afterMatrix(size_t ProcIndex, const Procedure &Proc,
                   const ProcedureProfile &Train, const AlignmentTsp &Atsp);
  void afterSolve(size_t ProcIndex, const Procedure &Proc,
                  const ProcedureProfile &Train, const AlignmentTsp &Atsp,
                  const DtspSolution &Solution,
                  const IteratedOptOptions &SolverOptions);
  void afterProcedure(size_t ProcIndex, const Procedure &Proc,
                      const ProcedureProfile &Train,
                      const ProcedureAlignment &Result);

  DiagnosticEngine &Diags;
  VerifyOptions Options;
  MachineModel Model = MachineModel::alpha21164();

  /// Stage artifacts cached between hooks of the same procedure, so the
  /// AfterProcedure handler can replay the whole chain. Empty for
  /// unprofiled procedures, which skip the matrix and solve stages.
  struct StageCache {
    bool Valid = false;
    size_t ProcIndex = 0;
    AlignmentTsp Atsp;
    DtspSolution Solution;
    IteratedOptOptions SolverOptions;
  };
  StageCache Cache;
};

/// One-call verified alignment: checks the inputs, runs alignProgram
/// with verify-each installed, then checks the produced layouts and
/// bounds. All findings land in \p Diags; the alignment is returned
/// regardless (callers decide whether errors are fatal).
ProgramAlignment alignProgramVerified(const Program &Prog,
                                      const ProgramProfile &Train,
                                      AlignmentOptions Options,
                                      DiagnosticEngine &Diags,
                                      VerifyOptions Verify = VerifyOptions());

} // namespace balign

#endif // BALIGN_ANALYSIS_PIPELINEVERIFIER_H
