//===- analysis/LayoutCheck.cpp - Layout legality checking ----------------------===//
//
// Pass 3 of balign-verify: is a layout actually emittable? Following
// Boender & Sacerdoti Coen's observation that layout/branch-encoding
// code deserves machine-checked invariants, this pass re-derives the
// executable form of a layout (materializeLayout) and proves, per
// procedure:
//
//  * the permutation is total and pinned at the entry;
//  * every CFG edge the training profile saw executed is realizable in
//    the materialized code — as a fall-through, a conditional's taken
//    direction, a multiway target, or a fall-through fixup jump;
//  * inserted fixup jumps sit directly after their conditional and
//    target exactly the arranged fall-through block;
//  * item addresses are strictly increasing and gap-free (no overlapping
//    or phantom code).
//
//===--------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include "objective/Displace.h"
#include "robust/FaultInjector.h"

using namespace balign;

static const char PassName[] = "layout-check";

size_t balign::checkLayout(const Procedure &Proc, const Layout &L,
                           const ProcedureProfile &Train,
                           const MachineModel &Model,
                           DiagnosticEngine &Diags) {
  size_t Before = Diags.errorCount();
  const std::string &Name = Proc.getName();
  // Re-deriving the executable form below runs the same faultable
  // displacement fixpoint the pipeline runs; replaying it for an audit
  // must neither trip armed faults nor skew their hit counters.
  FaultInjector::ScopedSuppress SuppressFaults;

  // Permutation validity first; materialization requires it.
  bool Permutation = L.Order.size() == Proc.numBlocks();
  if (Permutation) {
    std::vector<bool> Seen(Proc.numBlocks(), false);
    for (BlockId Id : L.Order) {
      if (Id >= Proc.numBlocks() || Seen[Id]) {
        Permutation = false;
        break;
      }
      Seen[Id] = true;
    }
  }
  if (!Permutation) {
    Diags.report(Severity::Error, CheckId::LayoutNotPermutation, PassName,
                 DiagLocation::procedure(Name),
                 "layout order is not a permutation of the " +
                     std::to_string(Proc.numBlocks()) + " blocks");
    return Diags.errorCount() - Before;
  }
  if (L.Order.front() != Proc.entry()) {
    Diags.report(Severity::Error, CheckId::LayoutEntryNotFirst, PassName,
                 DiagLocation::procedure(Name),
                 "layout starts at block " + std::to_string(L.Order.front()) +
                     ", not the entry");
    return Diags.errorCount() - Before;
  }

  MaterializedLayout Mat = materializeLayout(Proc, L, Train, Model);

  // Item index and address invariants.
  size_t FixupsSeen = 0;
  uint64_t NextAddress = 0;
  for (size_t I = 0; I != Mat.Items.size(); ++I) {
    const LayoutItem &Item = Mat.Items[I];
    if (Item.isFixup())
      ++FixupsSeen;
    if (Item.Address != NextAddress)
      Diags.report(Severity::Error, CheckId::LayoutAddressDisorder, PassName,
                   DiagLocation::procedure(Name),
                   "item " + std::to_string(I) + " at address " +
                       std::to_string(Item.Address) + ", expected " +
                       std::to_string(NextAddress));
    NextAddress = Item.Address + itemBytes(Item, Model);
  }
  if (Mat.TotalBytes != NextAddress || FixupsSeen != Mat.NumFixups)
    Diags.report(Severity::Error, CheckId::LayoutAddressDisorder, PassName,
                 DiagLocation::procedure(Name),
                 "materialization totals disagree with its items");
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id)
    if (Mat.ItemOfBlock[Id] >= Mat.Items.size() ||
        Mat.Items[Mat.ItemOfBlock[Id]].Block != Id)
      Diags.report(Severity::Error, CheckId::LayoutItemIndexBroken, PassName,
                   DiagLocation::block(Name, Id),
                   "ItemOfBlock does not point at this block's item");

  // Realizability of every executed CFG edge, per terminator kind.
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
    const std::vector<BlockId> &Succs = Proc.successors(Id);
    size_t ItemIndex = Mat.ItemOfBlock[Id];
    if (ItemIndex >= Mat.Items.size())
      continue; // Already reported above.
    const LayoutItem *NextItem =
        ItemIndex + 1 < Mat.Items.size() ? &Mat.Items[ItemIndex + 1] : nullptr;

    switch (Proc.block(Id).Kind) {
    case TerminatorKind::Return:
    case TerminatorKind::Multiway:
      // Returns leave the procedure; a multiway's indirect jump reaches
      // any target by construction.
      break;

    case TerminatorKind::Unconditional:
      // The block's own terminator is (or becomes) the jump, so the edge
      // is always realizable; nothing layout-dependent to prove.
      break;

    case TerminatorKind::Conditional: {
      const BranchArrangement &Arr = Mat.Arrangements[Id];
      for (size_t S = 0; S != Succs.size(); ++S) {
        if (Train.edgeCount(Id, S) == 0)
          continue; // Unexecuted edges may be arranged arbitrarily.
        BlockId Target = Succs[S];
        if (Arr.TakenTarget != Target && Arr.FallThroughTarget != Target)
          Diags.report(Severity::Error, CheckId::LayoutEdgeUnrealizable,
                       PassName, DiagLocation::edge(Name, Id, Target),
                       "executed edge is neither the taken target nor the "
                       "fall-through of its arrangement");
      }
      if (Arr.FallThroughViaFixup) {
        // The fixup jump must sit directly after the block and transfer
        // to the arranged fall-through target.
        if (!NextItem || !NextItem->isFixup() ||
            NextItem->FixupTarget != Arr.FallThroughTarget)
          Diags.report(Severity::Error, CheckId::LayoutFixupTargetWrong,
                       PassName,
                       DiagLocation::edge(Name, Id, Arr.FallThroughTarget),
                       "fall-through-via-fixup has no correctly targeted "
                       "fixup jump directly after the block");
      } else if (!NextItem || NextItem->Block != Arr.FallThroughTarget) {
        Diags.report(Severity::Error, CheckId::LayoutEdgeUnrealizable,
                     PassName,
                     DiagLocation::edge(Name, Id, Arr.FallThroughTarget),
                     "arranged fall-through target is not the next item "
                     "in the layout");
      }
      break;
    }
    }
  }

  return Diags.errorCount() - Before;
}
