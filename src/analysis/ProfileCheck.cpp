//===- analysis/ProfileCheck.cpp - Profile flow conservation --------------------===//
//
// Pass 2 of balign-verify: Kirchhoff flow conservation of edge profiles.
//
// The trace model (profile/Trace.h) fixes the conservation law exactly:
// an invocation enters at the entry block and leaves through a return, so
// for every block B
//
//   inflow(B)  = BlockCounts[B]                    for B != entry
//   inflow(E)  = BlockCounts[E] - Invocations      for the entry E
//   outflow(B) = BlockCounts[B] - truncations(B)   for non-return B
//
// where truncations(B) counts walks abandoned while sitting in B (the
// MaxBlocksPerInvocation safety cap); a well-formed trace has none, and
// the aggregate deficit is bounded by Options.TruncationSlack before the
// pass warns. Outflow exceeding the block count, or inflow disagreeing
// with the block count at a non-entry block, can never happen in a real
// profile and is an error. Shape mismatches (rows for edges the CFG does
// not have) and overflow-suspicious magnitudes are screened first since
// the arithmetic below assumes a well-shaped profile.
//
//===--------------------------------------------------------------------===//

#include "analysis/Verifier.h"

using namespace balign;

static const char PassName[] = "profile-flow";

size_t balign::checkProfileFlow(const Procedure &Proc,
                                const ProcedureProfile &Profile,
                                DiagnosticEngine &Diags,
                                const VerifyOptions &Options) {
  size_t Before = Diags.errorCount();
  const std::string &Name = Proc.getName();

  if (Profile.BlockCounts.size() != Proc.numBlocks() ||
      Profile.EdgeCounts.size() != Proc.numBlocks()) {
    Diags.report(Severity::Error, CheckId::ProfileShapeMismatch, PassName,
                 DiagLocation::procedure(Name),
                 "profile is shaped for " +
                     std::to_string(Profile.BlockCounts.size()) +
                     " blocks but the procedure has " +
                     std::to_string(Proc.numBlocks()));
    return Diags.errorCount() - Before;
  }

  bool Shaped = true;
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
    size_t Expected = Proc.successors(Id).size();
    size_t Got = Profile.EdgeCounts[Id].size();
    if (Got == Expected)
      continue;
    Shaped = false;
    // Extra rows are counts for edges absent from the CFG — the classic
    // stale-profile corruption; missing rows are a builder bug.
    Diags.report(Severity::Error,
                 Got > Expected ? CheckId::ProfileUnknownEdge
                                : CheckId::ProfileShapeMismatch,
                 PassName, DiagLocation::block(Name, Id),
                 "profile has " + std::to_string(Got) +
                     " edge counts but the block has " +
                     std::to_string(Expected) + " successors");
  }
  if (!Shaped)
    return Diags.errorCount() - Before;

  // Overflow screen: penalties compute count * cycles (<= 7) sums in
  // int64, so any single count near 2^56 deserves a warning.
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
    if (Profile.BlockCounts[Id] > Options.OverflowLimit)
      Diags.report(Severity::Warning, CheckId::ProfileCountOverflow,
                   PassName, DiagLocation::block(Name, Id),
                   "block count " + std::to_string(Profile.BlockCounts[Id]) +
                       " is overflow-suspicious");
    for (size_t S = 0; S != Profile.EdgeCounts[Id].size(); ++S)
      if (Profile.EdgeCounts[Id][S] > Options.OverflowLimit)
        Diags.report(Severity::Warning, CheckId::ProfileCountOverflow,
                     PassName,
                     DiagLocation::edge(Name, Id, Proc.successors(Id)[S]),
                     "edge count " +
                         std::to_string(Profile.EdgeCounts[Id][S]) +
                         " is overflow-suspicious");
  }

  // Inflow per block. Counts are far below 2^56 (screened above, and the
  // screen only warns), so the uint64 sums cannot wrap meaningfully.
  std::vector<uint64_t> Inflow(Proc.numBlocks(), 0);
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id)
    for (size_t S = 0; S != Profile.EdgeCounts[Id].size(); ++S)
      Inflow[Proc.successors(Id)[S]] += Profile.EdgeCounts[Id][S];

  uint64_t OutflowDeficit = 0;
  for (BlockId Id = 0; Id != Proc.numBlocks(); ++Id) {
    uint64_t Count = Profile.BlockCounts[Id];

    // Kirchhoff inflow: exact for non-entry blocks; the entry absorbs
    // one external arrival per invocation, so its inflow may fall short
    // but never exceed the count.
    if (Id == Proc.entry()) {
      if (Inflow[Id] > Count)
        Diags.report(Severity::Error, CheckId::ProfileFlowImbalance,
                     PassName, DiagLocation::block(Name, Id),
                     "entry inflow " + std::to_string(Inflow[Id]) +
                         " exceeds block count " + std::to_string(Count));
    } else if (Inflow[Id] != Count) {
      Diags.report(Severity::Error, CheckId::ProfileFlowImbalance, PassName,
                   DiagLocation::block(Name, Id),
                   "inflow " + std::to_string(Inflow[Id]) +
                       " != block count " + std::to_string(Count));
    }

    // Kirchhoff outflow: returns exit the procedure; every other block
    // must leave through an edge, except for abandoned walk tails.
    if (Proc.block(Id).Kind == TerminatorKind::Return)
      continue;
    uint64_t OutSum = 0;
    for (uint64_t EdgeCount : Profile.EdgeCounts[Id])
      OutSum += EdgeCount;
    if (OutSum > Count)
      Diags.report(Severity::Error, CheckId::ProfileFlowImbalance, PassName,
                   DiagLocation::block(Name, Id),
                   "outflow " + std::to_string(OutSum) +
                       " exceeds block count " + std::to_string(Count));
    else
      OutflowDeficit += Count - OutSum;
  }

  if (OutflowDeficit > Options.TruncationSlack)
    Diags.report(Severity::Warning, CheckId::ProfileFlowTruncated, PassName,
                 DiagLocation::procedure(Name),
                 "aggregate outflow deficit " +
                     std::to_string(OutflowDeficit) + " exceeds slack " +
                     std::to_string(Options.TruncationSlack) +
                     " (truncated walks?)");

  return Diags.errorCount() - Before;
}

size_t balign::checkProfileFlow(const Program &Prog,
                                const ProgramProfile &Profile,
                                DiagnosticEngine &Diags,
                                const VerifyOptions &Options) {
  if (Profile.Procs.size() != Prog.numProcedures()) {
    Diags.report(Severity::Error, CheckId::ProfileShapeMismatch, PassName,
                 DiagLocation::program(),
                 "profile has " + std::to_string(Profile.Procs.size()) +
                     " procedures but the program has " +
                     std::to_string(Prog.numProcedures()));
    return 1;
  }
  size_t Errors = 0;
  for (size_t I = 0; I != Prog.numProcedures(); ++I)
    Errors +=
        checkProfileFlow(Prog.proc(I), Profile.Procs[I], Diags, Options);
  return Errors;
}
