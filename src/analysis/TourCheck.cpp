//===- analysis/TourCheck.cpp - Tour and bound consistency ----------------------===//
//
// Pass 5 of balign-verify: checks solved tours and the lower bounds
// reported next to them.
//
// The tour checks close the reduction loop end to end: a reported tour
// must be a valid permutation of the instance's cities, its reported
// cost must equal the instance's own evaluation, it must not have paid
// the entry pin (a pin-paying tour is repaired by layoutFromTour but
// signals a sick solver), and — the paper's central claim — the layout
// derived from it must evaluate to exactly the tour's cost on the
// training profile.
//
// The bound checks keep the Figure 2 "near-optimal" story honest on the
// directed penalty scale: 0 <= HeldKarp <= best-tour penalty and
// 0 <= Assignment <= best-tour penalty. A violation means a bound
// computation leaked the big-M of the symmetric transform or the entry
// pin into penalty units.
//
//===--------------------------------------------------------------------===//

#include "align/Penalty.h"
#include "analysis/Verifier.h"

using namespace balign;

static const char PassName[] = "tour-bounds";

size_t balign::checkTour(const Procedure &Proc, const ProcedureProfile &Train,
                         const MachineModel &Model, const AlignmentTsp &Atsp,
                         const std::vector<City> &Tour, int64_t ReportedCost,
                         DiagnosticEngine &Diags) {
  size_t Before = Diags.errorCount();
  const std::string &Name = Proc.getName();

  if (!isValidTour(Tour, Atsp.Tsp.numCities())) {
    Diags.report(Severity::Error, CheckId::TourInvalid, PassName,
                 DiagLocation::procedure(Name),
                 "tour is not a permutation of the " +
                     std::to_string(Atsp.Tsp.numCities()) + " cities");
    return Diags.errorCount() - Before;
  }

  int64_t ActualCost = Atsp.Tsp.tourCost(Tour);
  if (ActualCost != ReportedCost)
    Diags.report(Severity::Error, CheckId::TourCostMismatch, PassName,
                 DiagLocation::procedure(Name),
                 "reported cost " + std::to_string(ReportedCost) +
                     " != instance evaluation " +
                     std::to_string(ActualCost));

  // A tour that paid the pin left the dummy into a non-entry block; the
  // layout repair hoists the entry, but the cost is no longer a penalty.
  bool PinPaid = Atsp.EntryPin > 0 && ActualCost >= Atsp.EntryPin;
  if (PinPaid)
    Diags.report(Severity::Warning, CheckId::TourPinPaid, PassName,
                 DiagLocation::procedure(Name),
                 "tour cost " + std::to_string(ActualCost) +
                     " includes the entry pin; the heuristic left the "
                     "dummy into a non-entry block");

  // Reduction exactness: walk cost == evaluated layout penalty. Only
  // meaningful when the tour respects the pin (otherwise the hoist
  // repair legitimately changes the cost).
  if (!PinPaid) {
    Layout L = layoutFromTour(Proc, Atsp, Tour);
    uint64_t Penalty = evaluateLayout(Proc, L, Model, Train, Train);
    if (ActualCost < 0 ||
        Penalty != static_cast<uint64_t>(ActualCost))
      Diags.report(Severity::Error, CheckId::TourPenaltyMismatch, PassName,
                   DiagLocation::procedure(Name),
                   "tour cost " + std::to_string(ActualCost) +
                       " != evaluated layout penalty " +
                       std::to_string(Penalty) +
                       " (the reduction must be exact)");
  }

  return Diags.errorCount() - Before;
}

size_t balign::checkBounds(const Procedure &Proc, const PenaltyBounds &Bounds,
                           uint64_t TspPenalty, DiagnosticEngine &Diags) {
  size_t Before = Diags.errorCount();
  const std::string &Name = Proc.getName();

  if (Bounds.HeldKarp < 0.0 || Bounds.Assignment < 0)
    Diags.report(Severity::Warning, CheckId::BoundNegative, PassName,
                 DiagLocation::procedure(Name),
                 "negative lower bound survived clamping (HK " +
                     std::to_string(Bounds.HeldKarp) + ", AP " +
                     std::to_string(Bounds.Assignment) + ")");

  // Both are lower bounds on the optimum, which the best tour can only
  // overestimate; allow HK a hair of floating-point slack.
  double Tsp = static_cast<double>(TspPenalty);
  if (Bounds.HeldKarp > Tsp + 1e-6)
    Diags.report(Severity::Error, CheckId::BoundHkExceedsTour, PassName,
                 DiagLocation::procedure(Name),
                 "Held-Karp bound " + std::to_string(Bounds.HeldKarp) +
                     " exceeds the best tour's penalty " +
                     std::to_string(TspPenalty));
  if (Bounds.Assignment > static_cast<int64_t>(TspPenalty))
    Diags.report(Severity::Error, CheckId::BoundApExceedsTour, PassName,
                 DiagLocation::procedure(Name),
                 "assignment bound " + std::to_string(Bounds.Assignment) +
                     " exceeds the best tour's penalty " +
                     std::to_string(TspPenalty));

  return Diags.errorCount() - Before;
}
