//===- analysis/TraceCheck.cpp - balign-scope span/metric sanity ----------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The trace pass of balign-verify: validates a drained balign-scope span
/// stream (durations, per-thread nesting discipline, per-track sequence
/// contiguity) and counter monotonicity between registry snapshots. The
/// pass exists because the observability layer itself is part of the
/// deliverable: a trace whose spans overlap illegally or whose sequences
/// have holes would silently break the program-order drain guarantee the
/// exporters and the CI determinism diff rely on.
///
//===--------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "trace/Scope.h"

#include <algorithm>
#include <map>
#include <vector>

using namespace balign;

namespace {

const char *PassName = "trace";

std::string spanLabel(const TraceSpan &Span) {
  return std::string("span '") + Span.Name + "' (track " +
         std::to_string(Span.Track) + ", seq " + std::to_string(Span.Seq) +
         ")";
}

} // namespace

size_t balign::checkTraceSpans(const std::vector<TraceSpan> &Spans,
                               DiagnosticEngine &Diags) {
  size_t Before = Diags.errorCount();

  // 1. Durations: a monotonic clock can never run backwards.
  for (const TraceSpan &Span : Spans) {
    if (Span.EndNs < Span.StartNs)
      Diags.report(Severity::Error, CheckId::TraceNegativeDuration, PassName,
                   DiagLocation::program(),
                   spanLabel(Span) + " ends " +
                       std::to_string(Span.StartNs - Span.EndNs) +
                       "ns before it starts");
  }

  // 2. Nesting: per thread, spans must close in stack order. Scoped
  // spans record at destruction, so sorting a thread's spans by start
  // time (ties broken by depth: the outer span of a zero-width pair
  // starts "first") recovers open order; a stack then replays the
  // thread's lifetime. A span whose depth does not match the replay
  // stack, or which leaks past its parent's end, breaks the discipline.
  std::map<uint32_t, std::vector<const TraceSpan *>> ByThread;
  for (const TraceSpan &Span : Spans)
    ByThread[Span.ThreadId].push_back(&Span);
  for (auto &[ThreadId, Thread] : ByThread) {
    std::stable_sort(Thread.begin(), Thread.end(),
                     [](const TraceSpan *A, const TraceSpan *B) {
                       if (A->StartNs != B->StartNs)
                         return A->StartNs < B->StartNs;
                       return A->Depth < B->Depth;
                     });
    std::vector<const TraceSpan *> Stack;
    for (const TraceSpan *Span : Thread) {
      while (!Stack.empty() && Span->StartNs >= Stack.back()->EndNs &&
             Span->Depth <= Stack.back()->Depth)
        Stack.pop_back();
      if (Span->Depth != Stack.size()) {
        Diags.report(Severity::Error, CheckId::TraceBadNesting, PassName,
                     DiagLocation::program(),
                     spanLabel(*Span) + " on thread " +
                         std::to_string(ThreadId) + " has depth " +
                         std::to_string(Span->Depth) + " but " +
                         std::to_string(Stack.size()) +
                         " enclosing spans are open");
        continue;
      }
      if (!Stack.empty() && Span->EndNs > Stack.back()->EndNs)
        Diags.report(Severity::Error, CheckId::TraceBadNesting, PassName,
                     DiagLocation::program(),
                     spanLabel(*Span) + " on thread " +
                         std::to_string(ThreadId) + " outlives its parent '" +
                         Stack.back()->Name + "'");
      Stack.push_back(Span);
    }
  }

  // 3. Sequence contiguity: each track's seqs must be exactly
  // 0..N-1. Holes or duplicates would make the program-order drain
  // ambiguous, which is the property the thread-count determinism
  // guarantee stands on.
  std::map<int64_t, std::vector<uint64_t>> SeqsByTrack;
  for (const TraceSpan &Span : Spans)
    SeqsByTrack[Span.Track].push_back(Span.Seq);
  for (auto &[Track, Seqs] : SeqsByTrack) {
    std::sort(Seqs.begin(), Seqs.end());
    for (size_t I = 0; I != Seqs.size(); ++I) {
      if (Seqs[I] != I) {
        Diags.report(Severity::Error, CheckId::TraceSeqGap, PassName,
                     DiagLocation::program(),
                     "track " + std::to_string(Track) + " expects seq " +
                         std::to_string(I) + " but holds seq " +
                         std::to_string(Seqs[I]) +
                         " (drain order is ambiguous)");
        break;
      }
    }
  }

  return Diags.errorCount() - Before;
}

size_t balign::checkTrace(const TraceSession &Session,
                          DiagnosticEngine &Diags) {
  return checkTraceSpans(Session.drainSpans(), Diags);
}

size_t balign::checkCounterMonotonic(
    const std::map<std::string, uint64_t> &Before,
    const std::map<std::string, uint64_t> &After, DiagnosticEngine &Diags) {
  size_t Errors = Diags.errorCount();
  for (const auto &[Name, Old] : Before) {
    auto It = After.find(Name);
    if (It == After.end()) {
      Diags.report(Severity::Error, CheckId::TraceCounterRegressed, PassName,
                   DiagLocation::program(),
                   "counter '" + Name + "' (was " + std::to_string(Old) +
                       ") vanished from the registry");
      continue;
    }
    if (It->second < Old)
      Diags.report(Severity::Error, CheckId::TraceCounterRegressed, PassName,
                   DiagLocation::program(),
                   "counter '" + Name + "' regressed from " +
                       std::to_string(Old) + " to " +
                       std::to_string(It->second));
  }
  return Diags.errorCount() - Errors;
}
