//===- analysis/PipelineVerifier.cpp - verify-each for align::Pipeline ------===//

#include "analysis/PipelineVerifier.h"

#include "trace/Scope.h"

using namespace balign;

size_t PipelineVerifier::verifyInputs(const Program &Prog,
                                      const ProgramProfile &Train) {
  ScopedSpan Span("verify.inputs", SpanCat::Verify);
  size_t Errors = checkCfg(Prog, Diags);
  Errors += checkProfileFlow(Prog, Train, Diags, Options);
  return Errors;
}

void PipelineVerifier::install(AlignmentOptions &AlignOptions) {
  Model = AlignOptions.Model;
  AlignOptions.Hooks.AfterMatrix =
      [this](size_t I, const Procedure &Proc, const ProcedureProfile &Train,
             const AlignmentTsp &Atsp) { afterMatrix(I, Proc, Train, Atsp); };
  AlignOptions.Hooks.AfterSolve =
      [this](size_t I, const Procedure &Proc, const ProcedureProfile &Train,
             const AlignmentTsp &Atsp, const DtspSolution &Solution,
             const IteratedOptOptions &SolverOptions) {
        afterSolve(I, Proc, Train, Atsp, Solution, SolverOptions);
      };
  AlignOptions.Hooks.AfterProcedure =
      [this](size_t I, const Procedure &Proc, const ProcedureProfile &Train,
             const ProcedureAlignment &Result) {
        afterProcedure(I, Proc, Train, Result);
      };
}

void PipelineVerifier::afterMatrix(size_t ProcIndex, const Procedure &Proc,
                                   const ProcedureProfile &Train,
                                   const AlignmentTsp &Atsp) {
  ScopedSpan Span("verify.matrix-audit", SpanCat::Verify);
  checkCostMatrix(Proc, Train, Model, Atsp, Diags, Options);
  Cache.Valid = true;
  Cache.ProcIndex = ProcIndex;
  Cache.Atsp = Atsp;
  Cache.Solution = DtspSolution();
}

void PipelineVerifier::afterSolve(size_t ProcIndex, const Procedure &Proc,
                                  const ProcedureProfile &Train,
                                  const AlignmentTsp &Atsp,
                                  const DtspSolution &Solution,
                                  const IteratedOptOptions &SolverOptions) {
  ScopedSpan Span("verify.tour-bounds", SpanCat::Verify);
  checkTour(Proc, Train, Model, Atsp, Solution.Tour, Solution.Cost, Diags);
  if (Cache.Valid && Cache.ProcIndex == ProcIndex) {
    Cache.Solution = Solution;
    Cache.SolverOptions = SolverOptions;
  }
}

void PipelineVerifier::afterProcedure(size_t ProcIndex, const Procedure &Proc,
                                      const ProcedureProfile &Train,
                                      const ProcedureAlignment &Result) {
  ScopedSpan Span("verify.layout-check", SpanCat::Verify);
  checkLayout(Proc, Result.OriginalLayout, Train, Model, Diags);
  checkLayout(Proc, Result.GreedyLayout, Train, Model, Diags);
  checkLayout(Proc, Result.TspLayout, Train, Model, Diags);
  {
    ScopedSpan DisplaceSpan("verify.displace.reachable", SpanCat::Verify);
    checkDisplacement(Proc, Result.OriginalLayout, Train, Model, Diags);
    checkDisplacement(Proc, Result.GreedyLayout, Train, Model, Diags);
    checkDisplacement(Proc, Result.TspLayout, Train, Model, Diags);
  }
  checkBounds(Proc, Result.Bounds, Result.TspPenalty, Diags);

  bool Profiled = Cache.Valid && Cache.ProcIndex == ProcIndex &&
                  !Cache.Solution.Tour.empty();
  if (Profiled && Options.Level == VerifyLevel::Full) {
    ScopedSpan ReplaySpan("verify.determinism", SpanCat::Verify);
    checkDeterminism(Proc, Train, Model, Cache.Atsp, Cache.SolverOptions,
                     Cache.Solution.Tour, Cache.Solution.Cost,
                     Result.TspLayout, Diags);
  }
  Cache.Valid = false;
}

size_t PipelineVerifier::verifyAlignment(const Program &Prog,
                                         const ProgramProfile &Train,
                                         const MachineModel &AlignModel,
                                         const ProgramAlignment &Alignment) {
  size_t Before = Diags.errorCount();
  if (Alignment.Procs.size() != Prog.numProcedures() ||
      Train.Procs.size() != Prog.numProcedures()) {
    Diags.report(Severity::Error, CheckId::PipelineLayoutArity,
                 "pipeline-verify", DiagLocation::program(),
                 "alignment covers " + std::to_string(Alignment.Procs.size()) +
                     " procedures, profile " +
                     std::to_string(Train.Procs.size()) +
                     ", program has " + std::to_string(Prog.numProcedures()));
    return Diags.errorCount() - Before;
  }
  Model = AlignModel;
  for (size_t I = 0; I != Prog.numProcedures(); ++I) {
    const ProcedureAlignment &PA = Alignment.Procs[I];
    checkLayout(Prog.proc(I), PA.OriginalLayout, Train.Procs[I], Model, Diags);
    checkLayout(Prog.proc(I), PA.GreedyLayout, Train.Procs[I], Model, Diags);
    checkLayout(Prog.proc(I), PA.TspLayout, Train.Procs[I], Model, Diags);
    checkDisplacement(Prog.proc(I), PA.TspLayout, Train.Procs[I], Model,
                      Diags);
    checkBounds(Prog.proc(I), PA.Bounds, PA.TspPenalty, Diags);
  }
  return Diags.errorCount() - Before;
}

ProgramAlignment balign::alignProgramVerified(const Program &Prog,
                                              const ProgramProfile &Train,
                                              AlignmentOptions AlignOptions,
                                              DiagnosticEngine &Diags,
                                              VerifyOptions Verify) {
  if (Verify.Level == VerifyLevel::None)
    return alignProgram(Prog, Train, AlignOptions);
  PipelineVerifier Verifier(Diags, Verify);
  Verifier.verifyInputs(Prog, Train);
  Verifier.install(AlignOptions);
  ProgramAlignment Alignment = alignProgram(Prog, Train, AlignOptions);
  // Surface what balign-shield degraded alongside the verify findings:
  // fallback layouts are legal (layout-check above covered them), but
  // `--verify` readers should see exactly which procedures left the
  // full path and why.
  reportShieldFindings(Alignment, Diags);
  return Alignment;
}
