//===- analysis/DisplaceCheck.cpp - Branch-displacement soundness --------===//
//
// Pass 9 of balign-verify: is the branch encoding the displacement
// fixpoint chose actually executable? Boender & Sacerdoti Coen proved
// their assembler's branch-displacement pass correct in Matita; this
// pass is the testing-time analogue of their central theorem, checked
// on every layout instead of once in a proof assistant:
//
//  * item addresses are exactly the prefix sums of the item sizes the
//    chosen encodings imply (displace.address-mismatch);
//  * every branch site still encoded short can reach its target within
//    MachineModel::ShortBranchRange (displace.unreachable) — this is
//    the soundness half: a violation means the emitted code jumps wild;
//  * every branch site encoded long actually needed it
//    (displace.not-minimal) — the minimality half, a warning rather
//    than an error because wide-but-reachable code runs correctly, it
//    just is not the least fixpoint solveDisplacement promises.
//
// Under BranchEncoding::Fixed the displacement machinery must be a
// strict no-op, so the pass degenerates to "no item is long-form".
//
//===--------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include "objective/Displace.h"
#include "robust/FaultInjector.h"

using namespace balign;

static const char PassName[] = "displace-check";

size_t balign::checkDisplacement(const Procedure &Proc,
                                 const MaterializedLayout &Mat,
                                 const MachineModel &Model,
                                 DiagnosticEngine &Diags) {
  size_t Before = Diags.errorCount();
  const std::string &Name = Proc.getName();

  // Address fidelity: the stored addresses must be exactly what the
  // stored encodings imply. Recompute on a scratch copy so the audit
  // never mutates the artifact it is auditing.
  std::vector<LayoutItem> Recomputed = Mat.Items;
  uint64_t Total = assignItemAddresses(Recomputed, Model);
  for (size_t I = 0; I != Recomputed.size(); ++I)
    if (Recomputed[I].Address != Mat.Items[I].Address)
      Diags.report(Severity::Error, CheckId::DisplaceAddressMismatch, PassName,
                   DiagLocation::procedure(Name),
                   "item " + std::to_string(I) + " at address " +
                       std::to_string(Mat.Items[I].Address) +
                       ", but its encoding sizes place it at " +
                       std::to_string(Recomputed[I].Address));
  if (Total != Mat.TotalBytes)
    Diags.report(Severity::Error, CheckId::DisplaceAddressMismatch, PassName,
                 DiagLocation::procedure(Name),
                 "TotalBytes " + std::to_string(Mat.TotalBytes) +
                     " disagrees with the recomputed size " +
                     std::to_string(Total));

  if (Model.Encoding != BranchEncoding::ShortLong) {
    // Fixed encoding: the fixpoint must not have run at all.
    for (size_t I = 0; I != Mat.Items.size(); ++I)
      if (Mat.Items[I].LongForm)
        Diags.report(Severity::Error, CheckId::DisplaceAddressMismatch,
                     PassName, DiagLocation::procedure(Name),
                     "item " + std::to_string(I) +
                         " is long-form under the fixed encoding");
    return Diags.errorCount() - Before;
  }

  size_t LongSeen = 0;
  for (const BranchSite &Site : collectBranchSites(Proc, Mat)) {
    const LayoutItem &Item = Mat.Items[Site.ItemIndex];
    uint64_t Disp =
        branchDisplacement(Mat, Model, Site.ItemIndex, Site.Target);
    BlockId Anchor = Item.isFixup() ? Site.Target : Item.Block;
    if (!Item.LongForm && Disp > Model.ShortBranchRange)
      Diags.report(Severity::Error, CheckId::DisplaceUnreachable, PassName,
                   DiagLocation::block(Name, Anchor),
                   "short-form branch at item " +
                       std::to_string(Site.ItemIndex) + " spans " +
                       std::to_string(Disp) + " bytes to block " +
                       std::to_string(Site.Target) +
                       ", beyond the short range of " +
                       std::to_string(Model.ShortBranchRange));
    else if (Item.LongForm && Disp <= Model.ShortBranchRange)
      Diags.report(Severity::Warning, CheckId::DisplaceNotMinimal, PassName,
                   DiagLocation::block(Name, Anchor),
                   "long-form branch at item " +
                       std::to_string(Site.ItemIndex) + " spans only " +
                       std::to_string(Disp) +
                       " bytes; the short form would reach");
    LongSeen += Item.LongForm ? 1 : 0;
  }
  if (LongSeen != Mat.NumLongBranches)
    Diags.report(Severity::Error, CheckId::DisplaceAddressMismatch, PassName,
                 DiagLocation::procedure(Name),
                 "NumLongBranches " + std::to_string(Mat.NumLongBranches) +
                     " disagrees with the " + std::to_string(LongSeen) +
                     " long-form branch sites present");
  return Diags.errorCount() - Before;
}

size_t balign::checkDisplacement(const Procedure &Proc, const Layout &L,
                                 const ProcedureProfile &Train,
                                 const MachineModel &Model,
                                 DiagnosticEngine &Diags) {
  // Materialization is only defined on a legal layout; an illegal one
  // is the layout-legality pass's finding, not ours.
  if (!L.isValid(Proc))
    return 0;
  // Re-materializing replays the faultable fixpoint; an audit must
  // neither trip armed faults nor skew their hit counters.
  FaultInjector::ScopedSuppress SuppressFaults;
  MaterializedLayout Mat = materializeLayout(Proc, L, Train, Model);
  return checkDisplacement(Proc, Mat, Model, Diags);
}
