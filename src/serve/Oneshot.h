//===- serve/Oneshot.h - Shared one-shot report/profile building ----------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The two pieces of align_tool's one-shot behavior that balign-serve
/// must reproduce byte-for-byte: synthetic profile generation and the
/// pipeline report. They live here — linked by the CLI *and* the server
/// — so the byte-identity contract is structural, not two copies kept
/// in sync by tests alone.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SERVE_ONESHOT_H
#define BALIGN_SERVE_ONESHOT_H

#include "align/Pipeline.h"
#include "profile/Profile.h"

#include <cstdint>
#include <string>

namespace balign {

/// Simulates the seeded synthetic run align_tool performs when no
/// --profile file is given: per procedure P, a skewed branch behavior
/// seeded Seed*7919+P drives a trace seeded Seed*1000003+P with \p
/// Budget branches. The seed arithmetic is contract — changing it
/// changes every committed expectation downstream.
ProgramProfile synthesizeProfile(const Program &Prog, uint64_t Seed,
                                 uint64_t Budget);

/// Renders the pipeline-mode report exactly as align_tool prints it:
/// per-procedure "proc NAME layout: ..." lines (plus dot output under
/// \p EmitDot), then a blank line and the penalty TextTable (with the
/// hk-bound column under \p ComputeBounds). The returned string is the
/// tool's entire stdout for a pipeline run over a named file.
/// \p PrimaryName labels the primary-aligner column ("tsp" unless the
/// run used PrimaryAligner::ExtTsp); the default keeps every existing
/// caller — and the committed serve golden frames — byte-identical.
std::string renderAlignmentReport(const Program &Prog,
                                  const ProgramProfile &Counts,
                                  const ProgramAlignment &Result,
                                  bool ComputeBounds, bool EmitDot,
                                  const char *PrimaryName = "tsp");

} // namespace balign

#endif // BALIGN_SERVE_ONESHOT_H
