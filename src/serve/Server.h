//===- serve/Server.h - Long-lived alignment server -----------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The connection/threading half of balign-serve. An AlignServer owns
///
///  - one work-stealing ThreadPool every align request is multiplexed
///    onto (each request runs whole on one worker, Threads=1 inside, so
///    the repo's thread-count invariance makes responses byte-identical
///    at any pool size);
///  - one AdmissionGate bounding in-flight align requests — past the
///    budget a request is answered FrameError::Rejected immediately
///    instead of queueing without bound (backpressure, not buffering);
///  - one MetricRegistry of serve counters, exported through the
///    Metrics request type in the exact `--metrics-json` shape. The
///    server deliberately does *not* install a TraceSession: a span per
///    request would grow without bound over a server's lifetime.
///
/// Ownership/threading model: the accept loop spawns one thread per
/// connection; the connection thread reads frames in order, answers
/// ping/metrics/shutdown inline, and blocks on the pool future for each
/// align request (so one connection sees its responses in request
/// order; concurrency comes from multiple connections). A protocol
/// error on a connection closes that connection after a best-effort
/// error frame — it never touches the server or its siblings.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SERVE_SERVER_H
#define BALIGN_SERVE_SERVER_H

#include "serve/Service.h"

#include "cache/Store.h"
#include "support/ThreadPool.h"
#include "trace/Scope.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace balign {

/// Bounded admission of in-flight align requests. Budget 0 = unlimited
/// (the CLI convention). Thread-safe; public so tests can pre-saturate
/// it and observe a deterministic Rejected without racing real work.
class AdmissionGate {
public:
  explicit AdmissionGate(size_t Budget) : Budget(Budget) {}

  /// Claims a slot; false when the budget is exhausted (backpressure).
  bool tryAdmit() {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Budget != 0 && Depth >= Budget)
      return false;
    ++Depth;
    if (Depth > HighWater)
      HighWater = Depth;
    return true;
  }

  /// Returns a slot claimed by tryAdmit.
  void release() {
    std::lock_guard<std::mutex> Lock(Mutex);
    --Depth;
  }

  /// In-flight align requests right now.
  size_t depth() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Depth;
  }

  /// Deepest the gate has ever been (the serve.queue.highwater gauge).
  size_t highWater() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return HighWater;
  }

private:
  mutable std::mutex Mutex;
  size_t Budget;
  size_t Depth = 0;
  size_t HighWater = 0;
};

/// Server-level configuration.
struct ServeConfig {
  /// Pool workers align requests run on (0 = hardware threads).
  unsigned Threads = 0;

  /// Max in-flight align requests before Rejected (0 = unlimited).
  size_t QueueBudget = 0;

  /// Deadline for requests that do not carry one (0 = unlimited).
  uint64_t DefaultDeadlineMs = 0;

  /// balign-sentinel: how long a drain (SIGTERM / requestDrain) waits
  /// for in-flight connections before escalating to a forced shutdown
  /// (0 = wait forever). Measured on Clock, so tests drive the timeout
  /// from a ManualClock.
  uint64_t DrainTimeoutMs = 5000;

  /// balign-sentinel: slack past a request's deadline before the
  /// watchdog abandons it with FrameError::Stuck. The deadline itself is
  /// enforced cooperatively inside the pipeline; the watchdog only fires
  /// when a worker blew through it without returning. Requests with no
  /// deadline at all are never flagged.
  uint64_t StuckGraceMs = 1000;

  /// Real-time interval between watchdog scans of the in-flight table.
  uint64_t StuckPollMs = 20;

  /// Injectable clock for per-request deadlines (tests).
  ClockFn Clock;

  /// When set, cache counters are merged into metrics snapshots as
  /// "cache.<field>" (align_tool wires this to its CacheSession).
  std::function<CacheStats()> CacheStatsFn;

  /// Test-only: run at the start of every pooled align task. Drain and
  /// watchdog tests park a worker here (on a latch they control) to
  /// make "request in flight" a deterministic state instead of a race.
  std::function<void()> TestStallHook;
};

/// The long-lived server. Construct once over the shared
/// AlignmentOptions (whose CacheImpl is the cross-client cache), then
/// run serveUnixSocket / serveStdio — or drive serveConnection directly
/// over a socketpair, which is how the test battery attacks it without
/// filesystem paths.
class AlignServer {
public:
  AlignServer(const AlignmentOptions &Base, ServeConfig Config);
  ~AlignServer();

  /// How one connection ended.
  enum class ConnectionEnd : uint8_t {
    Eof,           ///< Clean EOF at a frame boundary.
    ProtocolError, ///< A framing error closed the connection.
    Shutdown,      ///< A Shutdown frame was answered; the server stops.
  };

  /// Serves one established connection: reads frames from \p InFd and
  /// writes responses to \p OutFd until EOF, a protocol error, or a
  /// Shutdown frame. Thread-safe; the accept loop runs it once per
  /// connection thread.
  ConnectionEnd serveConnection(int InFd, int OutFd);

  /// Listens on unix-domain socket \p Path (an existing file at Path is
  /// replaced) and accepts until a Shutdown frame or a drain request
  /// arrives. Returns 0 on clean shutdown (including a drain whose
  /// in-flight work finished inside DrainTimeoutMs), 1 on setup failure
  /// (bind/listen), 4 when the drain had to be forced — by a second
  /// drain request or by the drain timeout expiring.
  int serveUnixSocket(const std::string &Path);

  /// Serves a single connection on stdin/stdout ("--serve -"): the
  /// pipe-mode peer for driving the server from a harness without
  /// socket plumbing. Returns 0 when the stream ended cleanly or shut
  /// down, 1 when a protocol error closed it.
  int serveStdio();

  /// balign-sentinel: the drain state machine, callable from any thread.
  /// The first call begins a supervised drain — the accept loop stops,
  /// connections stop reading new frames (their read side is shut
  /// down), and in-flight requests run to completion under
  /// DrainTimeoutMs. A second call (the double-SIGTERM escalation)
  /// forces the drain: every in-flight request is answered with an
  /// Error frame immediately and connections are torn down. This is
  /// also the injectable signal-delivery hook — the SIGTERM/SIGINT
  /// self-pipe ends here, and tests call it directly.
  void requestDrain();

  /// True once a drain has been requested.
  bool draining() const { return Draining.load(); }

  /// True once the drain was escalated (second signal or timeout).
  bool drainForced() const { return ForcedDrain.load(); }

  /// Installs SIGTERM/SIGINT handlers (no SA_RESTART) whose self-pipe
  /// watcher thread calls requestDrain() per signal. Call once, from the
  /// thread that owns the server, before serving. The handlers survive
  /// the server; align_tool's serve mode is a serve-then-exit process.
  void installSignalDrain();

  /// Align requests currently in flight (admitted, not yet answered).
  size_t inFlightRequests() const;

  /// The admission gate (tests pre-saturate it for deterministic
  /// Rejected coverage).
  AdmissionGate &gate() { return Gate; }

  /// The serve counters.
  MetricRegistry &metrics() { return Metrics; }

  /// Metrics snapshot in the `--metrics-json` shape, cache counters
  /// merged in, queue high-water refreshed.
  std::string metricsJson();

private:
  /// One response slot shared by the pool worker and the watchdog:
  /// whichever calls complete() first wins, the other's frame is
  /// dropped. The connection thread blocks on the future.
  struct PendingResponse {
    std::atomic<bool> Done{false};
    std::promise<Frame> Promise;

    /// True when this call fulfilled the promise.
    bool complete(Frame Response) {
      if (Done.exchange(true))
        return false;
      Promise.set_value(std::move(Response));
      return true;
    }
  };

  /// What the watchdog scans: when did the request start, how long was
  /// it allowed, where to deliver the Stuck frame.
  struct InFlightRequest {
    uint64_t Id = 0;
    uint64_t StartMs = 0;
    uint64_t LimitMs = 0; ///< 0 = no deadline, never flagged stuck.
    std::shared_ptr<PendingResponse> Pending;
  };

  /// Dispatches one well-formed frame; returns the response to write.
  /// Sets \p SawShutdown for Shutdown frames.
  Frame dispatch(const Frame &Request, bool &SawShutdown);

  /// Runs one decoded align request on the pool and waits for its
  /// response (from the worker — or from the watchdog/forced drain).
  Frame runAlign(const AlignRequest &Request);

  /// The watchdog thread body: periodically flags in-flight requests
  /// that blew past deadline + StuckGraceMs with FrameError::Stuck.
  void watchdogLoop();

  /// Escalation: answer every in-flight request with an Error frame now
  /// and tear down registered connections.
  void forceDrain();

  uint64_t nowMs() const;

  AlignService Service;
  ServeConfig Config;
  ThreadPool Pool;
  AdmissionGate Gate;
  MetricRegistry Metrics;
  std::atomic<bool> Stopping{false};
  std::atomic<int> ListenFd{-1};

  // balign-sentinel drain/watchdog state.
  std::atomic<int> DrainSignals{0};
  std::atomic<bool> Draining{false};
  std::atomic<bool> ForcedDrain{false};
  std::atomic<uint64_t> NextRequestId{1};
  std::atomic<size_t> ActiveConnections{0};
  mutable std::mutex InFlightMutex;
  std::vector<InFlightRequest> InFlight;
  std::mutex ConnMutex;
  std::vector<int> ConnFds;
  std::thread Watchdog;
  std::mutex WatchdogMutex;
  std::condition_variable WatchdogCv;
  bool WatchdogStop = false;
  std::thread SignalWatcher;
};

} // namespace balign

#endif // BALIGN_SERVE_SERVER_H
