//===- serve/Service.h - One-request alignment service --------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The request-scoped half of balign-serve: AlignService turns one
/// decoded Align frame body into one response frame, with every failure
/// mode mapped to a structured FrameError instead of an escaping
/// exception. The server layer (Server.h) owns connections, threads,
/// and admission; the service knows nothing about file descriptors.
///
/// Determinism: handleAlign builds a per-request AlignmentOptions from
/// the shared base — Threads forced to 1 (each request already runs on
/// one pool worker; the repo's thread-count invariance does the rest),
/// hooks stripped, seed/effort/bounds/on-error taken from the request —
/// so the response body is byte-identical to one-shot align_tool stdout
/// for the same inputs, at every server thread count, hit or miss.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SERVE_SERVICE_H
#define BALIGN_SERVE_SERVICE_H

#include "serve/Protocol.h"

#include "robust/Deadline.h"

namespace balign {

/// Service-level knobs shared by every request.
struct AlignServiceConfig {
  /// Deadline applied to requests that carry DeadlineMs == 0
  /// (0 = unlimited, the CLI convention).
  uint64_t DefaultDeadlineMs = 0;

  /// Clock for per-request deadlines; empty = steadyClockMs. Tests
  /// inject a deterministic clock to force Deadline errors without
  /// sleeping.
  ClockFn Clock;
};

/// Stateless per-request handler over a shared AlignmentOptions base
/// (which carries the one CacheImpl every client shares). Thread-safe:
/// handleAlign only reads the base and builds request-local state, so
/// pool workers may call it concurrently.
class AlignService {
public:
  AlignService(const AlignmentOptions &Base, AlignServiceConfig Config = {})
      : Base(Base), Config(std::move(Config)) {}

  /// Decodes and runs one Align body. Always returns a frame — AlignOk
  /// carrying the report bytes, or Error with the code that names what
  /// went wrong (BadRequest / ParseError / ProfileError / Aborted /
  /// Deadline / Internal). Never throws.
  Frame handleAlign(const std::string &Body) const;

  /// Runs one already-decoded request (the server decodes up front so
  /// its watchdog can read the request's deadline before dispatch).
  /// Same contract and byte-identical responses as the body overload.
  Frame handleAlign(const AlignRequest &Req) const;

private:
  const AlignmentOptions &Base;
  AlignServiceConfig Config;
};

} // namespace balign

#endif // BALIGN_SERVE_SERVICE_H
