//===- serve/Protocol.cpp - balign-serve wire protocol --------------------===//

#include "serve/Protocol.h"

#include <atomic>
#include <bit>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <unistd.h>

using namespace balign;

namespace {

void putU32(std::string &Out, uint32_t Value) {
  for (int Shift = 0; Shift != 32; Shift += 8)
    Out.push_back(static_cast<char>((Value >> Shift) & 0xff));
}

void putU64(std::string &Out, uint64_t Value) {
  for (int Shift = 0; Shift != 64; Shift += 8)
    Out.push_back(static_cast<char>((Value >> Shift) & 0xff));
}

/// Bounds-checked little-endian reads over a body string. Every getter
/// fails (returns false) instead of over-reading, which is what keeps
/// arbitrary fuzz bytes crash-free.
class BodyReader {
public:
  explicit BodyReader(const std::string &Body) : Body(Body) {}

  bool u8(uint8_t &Out) {
    if (Pos + 1 > Body.size())
      return false;
    Out = static_cast<uint8_t>(Body[Pos++]);
    return true;
  }

  bool u32(uint32_t &Out) {
    if (Pos + 4 > Body.size())
      return false;
    Out = 0;
    for (int Shift = 0; Shift != 32; Shift += 8)
      Out |= static_cast<uint32_t>(static_cast<uint8_t>(Body[Pos++]))
             << Shift;
    return true;
  }

  bool u64(uint64_t &Out) {
    if (Pos + 8 > Body.size())
      return false;
    Out = 0;
    for (int Shift = 0; Shift != 64; Shift += 8)
      Out |= static_cast<uint64_t>(static_cast<uint8_t>(Body[Pos++]))
             << Shift;
    return true;
  }

  bool bytes(size_t Count, std::string &Out) {
    if (Count > Body.size() - Pos)
      return false;
    Out.assign(Body, Pos, Count);
    Pos += Count;
    return true;
  }

  bool atEnd() const { return Pos == Body.size(); }

private:
  const std::string &Body;
  size_t Pos = 0;
};

bool fail(std::string *Error, const char *Reason) {
  if (Error)
    *Error = Reason;
  return false;
}

/// The drain check of setFrameReadInterrupt (balign-sentinel).
std::atomic<bool (*)()> ReadInterruptCheck{nullptr};

/// Reads exactly \p Size bytes. Returns the byte count actually read:
/// Size on success, less on EOF, or SIZE_MAX on a read error. With
/// \p InterruptAtStart, an EINTR before the first byte consults the
/// drain check and reports 0 (a clean EOF) when it says stop — used
/// only for the length prefix, so an interrupt never tears a frame
/// already in flight.
size_t readFull(int Fd, void *Data, size_t Size,
                bool InterruptAtStart = false) {
  uint8_t *Out = static_cast<uint8_t *>(Data);
  size_t Got = 0;
  while (Got != Size) {
    ssize_t N = ::read(Fd, Out + Got, Size - Got);
    if (N > 0) {
      Got += static_cast<size_t>(N);
      continue;
    }
    if (N == 0)
      return Got; // EOF.
    if (errno == EINTR) {
      bool (*Check)() = ReadInterruptCheck.load(std::memory_order_relaxed);
      if (InterruptAtStart && Got == 0 && Check && Check())
        return 0; // Draining: end the stream at the frame boundary.
      continue;
    }
    return SIZE_MAX;
  }
  return Got;
}

} // namespace

const char *balign::frameTypeName(FrameType Type) {
  switch (Type) {
  case FrameType::Ping:
    return "ping";
  case FrameType::Align:
    return "align";
  case FrameType::Metrics:
    return "metrics";
  case FrameType::Shutdown:
    return "shutdown";
  case FrameType::Pong:
    return "pong";
  case FrameType::AlignOk:
    return "align-ok";
  case FrameType::MetricsOk:
    return "metrics-ok";
  case FrameType::ShutdownOk:
    return "shutdown-ok";
  case FrameType::Error:
    return "error";
  }
  return "?";
}

bool balign::isRequestType(uint8_t Type) {
  return Type <= static_cast<uint8_t>(FrameType::Shutdown);
}

const char *balign::frameErrorName(FrameError Code) {
  switch (Code) {
  case FrameError::None:
    return "none";
  case FrameError::BadFrame:
    return "bad-frame";
  case FrameError::BadVersion:
    return "bad-version";
  case FrameError::BadType:
    return "bad-type";
  case FrameError::TooLarge:
    return "too-large";
  case FrameError::BadRequest:
    return "bad-request";
  case FrameError::ParseError:
    return "parse-error";
  case FrameError::ProfileError:
    return "profile-error";
  case FrameError::Aborted:
    return "aborted";
  case FrameError::Deadline:
    return "deadline";
  case FrameError::Rejected:
    return "rejected";
  case FrameError::Internal:
    return "internal";
  case FrameError::Stuck:
    return "stuck";
  }
  return "?";
}

std::string balign::encodeFrame(const Frame &F) {
  assert(F.Body.size() <= MaxFramePayload - FrameHeaderBytes &&
         "frame body exceeds the protocol payload cap");
  std::string Out;
  Out.reserve(4 + FrameHeaderBytes + F.Body.size());
  putU32(Out, static_cast<uint32_t>(FrameHeaderBytes + F.Body.size()));
  Out.push_back('B');
  Out.push_back('S');
  Out.push_back(static_cast<char>(ServeProtocolVersion));
  Out.push_back(static_cast<char>(F.Type));
  Out += F.Body;
  return Out;
}

Frame balign::makeFrame(FrameType Type, std::string Body) {
  Frame F;
  F.Type = Type;
  F.Body = std::move(Body);
  return F;
}

Frame balign::makeErrorFrame(FrameError Code, const std::string &Message) {
  Frame F;
  F.Type = FrameType::Error;
  F.Body.push_back(static_cast<char>(Code));
  F.Body += Message;
  return F;
}

bool balign::decodeErrorFrame(const Frame &F, FrameError &Code,
                              std::string &Message) {
  if (F.Type != FrameType::Error || F.Body.empty())
    return false;
  Code = static_cast<FrameError>(static_cast<uint8_t>(F.Body[0]));
  Message = F.Body.substr(1);
  return true;
}

std::string balign::encodeAlignRequest(const AlignRequest &Request) {
  std::string Out;
  Out.reserve(32 + Request.CfgText.size() + Request.ProfileText.size());
  putU64(Out, Request.Seed);
  putU64(Out, Request.Budget);
  putU32(Out, Request.DeadlineMs);
  Out.push_back(static_cast<char>(Request.Effort));
  Out.push_back(static_cast<char>(Request.OnError));
  uint8_t Flags = (Request.ComputeBounds ? 1 : 0) |
                  (Request.HasProfile ? 2 : 0) |
                  (Request.HasObjective ? 4 : 0) |
                  (Request.HasEncoding ? 8 : 0);
  Out.push_back(static_cast<char>(Flags));
  Out.push_back(0); // Reserved; receivers require zero.
  putU32(Out, static_cast<uint32_t>(Request.CfgText.size()));
  Out += Request.CfgText;
  if (Request.HasProfile) {
    putU32(Out, static_cast<uint32_t>(Request.ProfileText.size()));
    Out += Request.ProfileText;
  } else {
    putU32(Out, 0);
  }
  if (Request.HasObjective) {
    Out.push_back(static_cast<char>(Request.Primary));
    Out.push_back(static_cast<char>(Request.Objective));
    putU32(Out, Request.ExtTspForwardWindow);
    putU32(Out, Request.ExtTspBackwardWindow);
    putU64(Out, std::bit_cast<uint64_t>(Request.ExtTspForwardWeight));
    putU64(Out, std::bit_cast<uint64_t>(Request.ExtTspBackwardWeight));
  }
  if (Request.HasEncoding) {
    Out.push_back(static_cast<char>(Request.Encoding));
    putU64(Out, Request.ShortBranchRange);
    putU32(Out, Request.LongBranchExtraInstrs);
    putU32(Out, Request.LongBranchPenalty);
  }
  return Out;
}

bool balign::decodeAlignRequest(const std::string &Body, AlignRequest &Out,
                                std::string *Error) {
  BodyReader In(Body);
  uint8_t Effort = 0, OnError = 0, Flags = 0, Reserved = 0;
  uint32_t CfgLen = 0, ProfLen = 0;
  if (!In.u64(Out.Seed) || !In.u64(Out.Budget) || !In.u32(Out.DeadlineMs) ||
      !In.u8(Effort) || !In.u8(OnError) || !In.u8(Flags) || !In.u8(Reserved))
    return fail(Error, "align request body shorter than its fixed fields");
  if (Reserved != 0)
    return fail(Error, "align request reserved byte is nonzero");
  if (Effort > static_cast<uint8_t>(EffortPolicy::ScaledColdGreedy))
    return fail(Error, "align request names an unknown effort policy");
  if (OnError > static_cast<uint8_t>(OnErrorPolicy::Skip))
    return fail(Error, "align request names an unknown on-error policy");
  if (Flags & ~uint8_t(15))
    return fail(Error, "align request sets unknown flag bits");
  Out.Effort = static_cast<EffortPolicy>(Effort);
  Out.OnError = static_cast<OnErrorPolicy>(OnError);
  Out.ComputeBounds = (Flags & 1) != 0;
  Out.HasProfile = (Flags & 2) != 0;
  Out.HasObjective = (Flags & 4) != 0;
  Out.HasEncoding = (Flags & 8) != 0;
  if (!In.u32(CfgLen) || !In.bytes(CfgLen, Out.CfgText))
    return fail(Error, "align request CFG text is truncated");
  if (!In.u32(ProfLen) || !In.bytes(ProfLen, Out.ProfileText))
    return fail(Error, "align request profile text is truncated");
  if (!Out.HasProfile && ProfLen != 0)
    return fail(Error, "align request carries profile bytes without the "
                       "profile flag");
  if (Out.HasObjective) {
    uint8_t Primary = 0, Objective = 0;
    uint64_t FwdBits = 0, BwdBits = 0;
    if (!In.u8(Primary) || !In.u8(Objective) ||
        !In.u32(Out.ExtTspForwardWindow) ||
        !In.u32(Out.ExtTspBackwardWindow) || !In.u64(FwdBits) ||
        !In.u64(BwdBits))
      return fail(Error, "align request objective extension is truncated");
    if (Primary > static_cast<uint8_t>(PrimaryAligner::ExtTsp))
      return fail(Error, "align request names an unknown primary aligner");
    if (Objective > static_cast<uint8_t>(ObjectiveKind::ExtTsp))
      return fail(Error, "align request names an unknown objective");
    if (Out.ExtTspForwardWindow < 1 || Out.ExtTspForwardWindow > (1u << 20) ||
        Out.ExtTspBackwardWindow < 1 || Out.ExtTspBackwardWindow > (1u << 20))
      return fail(Error, "align request Ext-TSP window is out of range");
    Out.Primary = static_cast<PrimaryAligner>(Primary);
    Out.Objective = static_cast<ObjectiveKind>(Objective);
    Out.ExtTspForwardWeight = std::bit_cast<double>(FwdBits);
    Out.ExtTspBackwardWeight = std::bit_cast<double>(BwdBits);
    // NaN fails both comparisons, so this one test rejects NaN and
    // every out-of-range (including infinite) weight at once.
    if (!(Out.ExtTspForwardWeight >= 0.0 &&
          Out.ExtTspForwardWeight <= 1024.0) ||
        !(Out.ExtTspBackwardWeight >= 0.0 &&
          Out.ExtTspBackwardWeight <= 1024.0))
      return fail(Error, "align request Ext-TSP weight is out of range");
  }
  if (Out.HasEncoding) {
    uint8_t Encoding = 0;
    if (!In.u8(Encoding) || !In.u64(Out.ShortBranchRange) ||
        !In.u32(Out.LongBranchExtraInstrs) || !In.u32(Out.LongBranchPenalty))
      return fail(Error, "align request encoding extension is truncated");
    if (Encoding > static_cast<uint8_t>(BranchEncoding::ShortLong))
      return fail(Error, "align request names an unknown branch encoding");
    if (Out.LongBranchExtraInstrs > (1u << 20) ||
        Out.LongBranchPenalty > (1u << 20))
      return fail(Error, "align request long-branch parameter is out of "
                         "range");
    Out.Encoding = static_cast<BranchEncoding>(Encoding);
  }
  if (!In.atEnd())
    return fail(Error, "align request has trailing bytes");
  return true;
}

void balign::setFrameReadInterrupt(bool (*Check)()) {
  ReadInterruptCheck.store(Check, std::memory_order_relaxed);
}

ReadStatus balign::readFrame(int Fd, Frame &Out, FrameError &Code,
                             std::string &Message) {
  uint8_t LenBytes[4];
  size_t Got = readFull(Fd, LenBytes, sizeof(LenBytes),
                        /*InterruptAtStart=*/true);
  if (Got == 0)
    return ReadStatus::Eof;
  if (Got != sizeof(LenBytes)) {
    Code = FrameError::BadFrame;
    Message = Got == SIZE_MAX ? "read error on frame length"
                              : "stream ends inside a frame length prefix";
    return ReadStatus::Error;
  }
  uint32_t Len = 0;
  for (int I = 0; I != 4; ++I)
    Len |= static_cast<uint32_t>(LenBytes[I]) << (8 * I);
  // Reject a hostile length *before* reading any payload: waiting on
  // bytes a lying prefix promised is the unbounded-time failure mode the
  // protocol tests attack.
  if (Len > MaxFramePayload) {
    Code = FrameError::TooLarge;
    Message = "frame payload of " + std::to_string(Len) +
              " bytes exceeds the cap of " + std::to_string(MaxFramePayload);
    return ReadStatus::Error;
  }
  if (Len < FrameHeaderBytes) {
    Code = FrameError::BadFrame;
    Message = "frame payload of " + std::to_string(Len) +
              " bytes cannot hold the header";
    return ReadStatus::Error;
  }
  std::string Payload(Len, '\0');
  Got = readFull(Fd, Payload.data(), Len);
  if (Got != Len) {
    Code = FrameError::BadFrame;
    Message = Got == SIZE_MAX ? "read error inside a frame"
                              : "stream ends inside a frame payload";
    return ReadStatus::Error;
  }
  if (Payload[0] != 'B' || Payload[1] != 'S') {
    Code = FrameError::BadFrame;
    Message = "frame header magic is not 'BS'";
    return ReadStatus::Error;
  }
  uint8_t Version = static_cast<uint8_t>(Payload[2]);
  if (Version != ServeProtocolVersion) {
    Code = FrameError::BadVersion;
    Message = "frame speaks protocol version " + std::to_string(Version) +
              " but this server speaks " +
              std::to_string(ServeProtocolVersion);
    return ReadStatus::Error;
  }
  Out.Type = static_cast<FrameType>(static_cast<uint8_t>(Payload[3]));
  Out.Body.assign(Payload, FrameHeaderBytes,
                  Payload.size() - FrameHeaderBytes);
  return ReadStatus::Ok;
}

bool balign::writeFull(int Fd, const void *Data, size_t Size) {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  size_t Written = 0;
  while (Written != Size) {
    ssize_t N = ::write(Fd, Bytes + Written, Size - Written);
    if (N > 0) {
      Written += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}

bool balign::writeFrame(int Fd, const Frame &F) {
  std::string Wire = encodeFrame(F);
  return writeFull(Fd, Wire.data(), Wire.size());
}
