//===- serve/Protocol.h - balign-serve wire protocol ----------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The balign-serve wire format: length-prefixed frames over a byte
/// stream (a unix-domain socket or a stdin/stdout pipe). Every frame is
///
///   [u32 LE payload length N][N payload bytes]
///
/// and every payload starts with a fixed four-byte header
///
///   [0] 'B'   [1] 'S'   [2] protocol version   [3] frame type
///
/// followed by a type-specific body. The version byte is part of the
/// public contract: a server receiving any other version must reject the
/// frame loudly (FrameError::BadVersion) rather than guess, and the
/// golden request/response corpus under examples/data/serve_* pins the
/// byte layout so accidental format drift fails a round-trip test.
///
/// Robustness contract (what tests/serve_protocol_test.cpp attacks):
/// decoding arbitrary bytes must never crash, hang, or over-read —
/// malformed input yields a structured FrameError in bounded time. The
/// length prefix is capped at MaxFramePayload; a larger claim is
/// rejected *before* any payload read, so a malicious prefix cannot make
/// the server block on bytes that will never arrive.
///
/// Strictness is deliberate everywhere: reserved bytes must be zero,
/// nested lengths must add up exactly, and trailing bytes are errors.
/// A lenient reader would turn every stray byte into silent behavior
/// the golden corpus cannot pin.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SERVE_PROTOCOL_H
#define BALIGN_SERVE_PROTOCOL_H

#include "align/Pipeline.h"
#include "static/EffortPolicy.h"

#include <cstdint>
#include <string>

namespace balign {

/// The protocol version this build speaks. Bump on any wire change.
inline constexpr uint8_t ServeProtocolVersion = 1;

/// Payload-size cap (header + body). Chosen generously above the largest
/// realistic CFG+profile request while keeping a hostile length prefix
/// from reserving gigabytes.
inline constexpr uint32_t MaxFramePayload = 16u << 20;

/// Bytes of the fixed payload header ('B', 'S', version, type).
inline constexpr size_t FrameHeaderBytes = 4;

/// Frame types. Requests live in [0, 16), responses in [16, 32); the
/// numeric values are wire contract, append-only.
enum class FrameType : uint8_t {
  // Requests.
  Ping = 0,     ///< Body echoed back in a Pong.
  Align = 1,    ///< An AlignRequest body; answered AlignOk or Error.
  Metrics = 2,  ///< Empty body; answered MetricsOk (JSON body).
  Shutdown = 3, ///< Empty body; answered ShutdownOk, then server stops.

  // Responses.
  Pong = 16,       ///< Ping echo.
  AlignOk = 17,    ///< Body: the one-shot align_tool report bytes.
  MetricsOk = 18,  ///< Body: --metrics-json-shaped JSON document.
  ShutdownOk = 19, ///< Empty body; the server is draining.
  Error = 31,      ///< Body: [u8 FrameError code][utf-8 message].
};

/// Returns a stable printable name ("align", "error", ...); "?" for
/// values outside the enum.
const char *frameTypeName(FrameType Type);

/// True for the request range [0, 16) values the server dispatches on.
bool isRequestType(uint8_t Type);

/// Structured error codes carried by FrameType::Error responses (wire
/// contract, append-only).
enum class FrameError : uint8_t {
  None = 0,         ///< Not an error (never sent).
  BadFrame = 1,     ///< Malformed frame: short payload, bad magic,
                    ///< truncated body, trailing bytes.
  BadVersion = 2,   ///< Version byte != ServeProtocolVersion.
  BadType = 3,      ///< Unknown or non-request frame type.
  TooLarge = 4,     ///< Length prefix exceeds MaxFramePayload.
  BadRequest = 5,   ///< Well-framed but semantically malformed body.
  ParseError = 6,   ///< CFG text did not parse.
  ProfileError = 7, ///< Profile text did not parse / mismatched.
  Aborted = 8,      ///< Alignment failed under OnErrorPolicy::Abort.
  Deadline = 9,     ///< The per-request deadline expired.
  Rejected = 10,    ///< Admission control: queue budget exhausted.
  Internal = 11,    ///< Anything else; the message says what.
  Stuck = 12,       ///< Watchdog: the request blew past its deadline and
                    ///< never returned; the worker was abandoned.
};

/// Returns a stable printable name ("bad-frame", "rejected", ...).
const char *frameErrorName(FrameError Code);

/// One parsed frame (type + body, header stripped).
struct Frame {
  FrameType Type = FrameType::Error;
  std::string Body;
};

/// One align request. Field-for-field this mirrors the one-shot
/// align_tool flags that affect pipeline output, so a request and a CLI
/// invocation over the same inputs produce byte-identical reports.
///
/// Flag bit 2 carries the objective extension (--aligner exttsp and its
/// knobs): when set, an extension block
///
///   [u8 primary][u8 objective][u32 fwd window][u32 bwd window]
///   [u64 fwd weight IEEE-754 bits][u64 bwd weight IEEE-754 bits]
///
/// follows the profile text. With the bit clear the body's byte layout
/// is exactly the pre-extension one, so the committed golden frames and
/// old clients keep working against a version-1 server unchanged.
///
/// Flag bit 8 carries the branch-encoding extension (--encoding and its
/// knobs, balign-displace): when set, an extension block
///
///   [u8 encoding][u64 short range][u32 long extra instrs]
///   [u32 long penalty]
///
/// follows the objective block (or the profile text when bit 2 is
/// clear). Same compatibility story: with the bit clear the layout is
/// byte-identical to the pre-extension one.
struct AlignRequest {
  uint64_t Seed = 1;         ///< --seed: root solver/profile seed.
  uint64_t Budget = 50000;   ///< --budget: synthetic-profile branches.
  uint32_t DeadlineMs = 0;   ///< Per-request deadline (0 = server default).
  EffortPolicy Effort = EffortPolicy::Uniform;
  OnErrorPolicy OnError = OnErrorPolicy::Abort;
  bool ComputeBounds = false; ///< --bounds.
  bool HasProfile = false;    ///< ProfileText is meaningful.
  bool HasObjective = false;  ///< The objective extension block is present.
  bool HasEncoding = false;   ///< The encoding extension block is present.
  std::string CfgText;        ///< The textual CFG program.
  std::string ProfileText;    ///< Optional textual profile.

  /// The extension block; meaningful only under HasObjective. Defaults
  /// mirror AlignmentOptions/MachineModel so an all-defaults block is a
  /// no-op relative to an absent one.
  PrimaryAligner Primary = PrimaryAligner::Tsp;
  ObjectiveKind Objective = ObjectiveKind::ExtTsp;
  uint32_t ExtTspForwardWindow = 1024;
  uint32_t ExtTspBackwardWindow = 640;
  double ExtTspForwardWeight = 0.1;
  double ExtTspBackwardWeight = 0.1;

  /// The encoding block; meaningful only under HasEncoding, same
  /// all-defaults-is-a-no-op convention.
  BranchEncoding Encoding = BranchEncoding::Fixed;
  uint64_t ShortBranchRange = 32768;
  uint32_t LongBranchExtraInstrs = 1;
  uint32_t LongBranchPenalty = 1;
};

/// Serializes a frame to wire bytes (length prefix + header + body).
/// The body must leave room for the header under MaxFramePayload.
std::string encodeFrame(const Frame &F);

/// Convenience constructors.
Frame makeFrame(FrameType Type, std::string Body = {});
Frame makeErrorFrame(FrameError Code, const std::string &Message);

/// Splits an Error frame body; returns false (and leaves outputs
/// untouched) when the body is empty/malformed.
bool decodeErrorFrame(const Frame &F, FrameError &Code,
                      std::string &Message);

/// Serializes an align request into a FrameType::Align body.
std::string encodeAlignRequest(const AlignRequest &Request);

/// Strictly decodes an Align body. On failure returns false and fills
/// \p Error with a one-line reason; \p Out is unspecified.
bool decodeAlignRequest(const std::string &Body, AlignRequest &Out,
                        std::string *Error = nullptr);

/// Outcome of readFrame.
enum class ReadStatus : uint8_t {
  Ok,    ///< A well-formed frame was read into Out.
  Eof,   ///< Clean end of stream at a frame boundary (before any byte).
  Error, ///< Protocol violation; Code/Message say what. The stream is
         ///< unrecoverable (no resync), the connection must close.
};

/// Reads one frame from \p Fd (blocking, EINTR-safe). Mid-frame EOF is
/// ReadStatus::Error (a truncated frame), EOF before the first length
/// byte is ReadStatus::Eof.
ReadStatus readFrame(int Fd, Frame &Out, FrameError &Code,
                     std::string &Message);

/// balign-sentinel: optional process-global drain check consulted when a
/// blocking frame read takes EINTR. When set and returning true, a read
/// that has not yet consumed any byte of the next frame ends as a clean
/// ReadStatus::Eof instead of being retried — so a non-SA_RESTART signal
/// (SIGTERM on a pipe-mode server) ends the connection at a frame
/// boundary while a partially read frame is still completed. Must be an
/// async-signal-tolerant flag check; null (the default) preserves the
/// retry-forever behavior.
void setFrameReadInterrupt(bool (*Check)());

/// Writes all of \p Data to \p Fd, retrying short writes and EINTR.
/// Returns false on any unrecoverable write error (EPIPE after the peer
/// vanished, most commonly) — never a partial frame left unreported.
bool writeFull(int Fd, const void *Data, size_t Size);

/// Encodes and writes one frame.
bool writeFrame(int Fd, const Frame &F);

} // namespace balign

#endif // BALIGN_SERVE_PROTOCOL_H
