//===- serve/Service.cpp - One-request alignment service ------------------===//

#include "serve/Service.h"

#include "ir/TextFormat.h"
#include "profile/ProfileIO.h"
#include "serve/Oneshot.h"

using namespace balign;

Frame AlignService::handleAlign(const std::string &Body) const {
  AlignRequest Req;
  std::string Error;
  if (!decodeAlignRequest(Body, Req, &Error))
    return makeErrorFrame(FrameError::BadRequest, Error);
  return handleAlign(Req);
}

Frame AlignService::handleAlign(const AlignRequest &Req) const {
  std::string Error;
  std::optional<Program> Prog = parseProgram(Req.CfgText, &Error);
  if (!Prog)
    return makeErrorFrame(FrameError::ParseError, Error);

  std::optional<ProgramProfile> Counts;
  if (Req.HasProfile) {
    Counts = parseProgramProfile(*Prog, Req.ProfileText, &Error);
    if (!Counts)
      return makeErrorFrame(FrameError::ProfileError, Error);
  } else {
    Counts = synthesizeProfile(*Prog, Req.Seed, Req.Budget);
  }

  // The per-request view of the shared base: one pool worker runs the
  // whole request (Threads = 1), verification hooks never apply, and
  // the request's own knobs replace the CLI's. CacheImpl rides along
  // from the base — that is the shared warm cache.
  AlignmentOptions Options = Base;
  Options.Threads = 1;
  Options.Hooks = {};
  Options.Solver.Seed = Req.Seed;
  Options.Effort = Req.Effort;
  Options.ComputeBounds = Req.ComputeBounds;
  Options.OnError = Req.OnError;
  if (Req.HasObjective) {
    // The objective extension mirrors --aligner exttsp and its knobs;
    // the model fields feed the cache fingerprint exactly as the CLI's.
    Options.Primary = Req.Primary;
    Options.Objective = Req.Objective;
    Options.Model.ExtTspForwardWindow = Req.ExtTspForwardWindow;
    Options.Model.ExtTspBackwardWindow = Req.ExtTspBackwardWindow;
    Options.Model.ExtTspForwardWeight = Req.ExtTspForwardWeight;
    Options.Model.ExtTspBackwardWeight = Req.ExtTspBackwardWeight;
  }
  if (Req.HasEncoding) {
    // The encoding extension mirrors --encoding and its knobs
    // (balign-displace); the fingerprint keys on these model fields only
    // under a variable encoding, exactly as for the CLI.
    Options.Model.Encoding = Req.Encoding;
    Options.Model.ShortBranchRange = Req.ShortBranchRange;
    Options.Model.LongBranchExtraInstrs = Req.LongBranchExtraInstrs;
    Options.Model.LongBranchPenalty = Req.LongBranchPenalty;
  }
  if (Config.Clock)
    Options.Clock = Config.Clock;

  uint64_t BudgetMs = Req.DeadlineMs ? Req.DeadlineMs
                                     : Config.DefaultDeadlineMs;
  Deadline RequestDeadline(BudgetMs, Config.Clock);
  Options.RunDeadline = BudgetMs ? &RequestDeadline : nullptr;

  try {
    ProgramAlignment Result = alignProgram(*Prog, *Counts, Options);
    return makeFrame(FrameType::AlignOk,
                     renderAlignmentReport(*Prog, *Counts, Result,
                                           Req.ComputeBounds,
                                           /*EmitDot=*/false,
                                           primaryAlignerName(Options.Primary)));
  } catch (const AlignmentAborted &E) {
    return makeErrorFrame(FrameError::Aborted, E.what());
  } catch (const DeadlineExceeded &E) {
    return makeErrorFrame(FrameError::Deadline, E.what());
  } catch (const std::exception &E) {
    return makeErrorFrame(FrameError::Internal, E.what());
  }
}
