//===- serve/Client.h - balign-serve client helper ------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// A small synchronous client over the serve protocol: connect (or wrap
/// an existing descriptor pair, which is how tests drive a server over
/// a socketpair), send one request frame, read one response frame. The
/// balign_client example, the throughput bench, and the test battery
/// all speak through this class so none of them re-implement framing.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SERVE_CLIENT_H
#define BALIGN_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include "robust/Retry.h"

namespace balign {

/// Stable 64-bit fingerprint over an align request's encoded wire
/// bytes: the idempotency key of alignWithRetry. Two requests with the
/// same fingerprint are byte-identical on the wire, so resending one
/// after a server restart re-asks exactly the same question — and the
/// server's content-addressed cache answers the repeat from the entry
/// the first attempt (if it got that far) already stored.
uint64_t requestFingerprint(const AlignRequest &Request);

/// One client connection. Movable, not copyable; owns its descriptors
/// unless adopted via wrap().
class ServeClient {
public:
  ServeClient() = default;
  ~ServeClient() { close(); }

  ServeClient(ServeClient &&Other) noexcept { *this = std::move(Other); }
  ServeClient &operator=(ServeClient &&Other) noexcept;
  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;

  /// Connects to the unix-domain socket at \p Path. Returns false and
  /// fills \p Error on failure.
  bool connectUnix(const std::string &Path, std::string *Error = nullptr);

  /// Adopts an existing descriptor pair without taking ownership (the
  /// socketpair tests close their own ends).
  void wrap(int InFd, int OutFd);

  /// True when a transport is attached.
  bool connected() const { return InFd >= 0 && OutFd >= 0; }

  /// Closes owned descriptors; idempotent.
  void close();

  /// Sends \p Request and reads one response into \p Response. Returns
  /// false and fills \p Error on any transport/framing failure (a
  /// server-side Error *frame* is a successful call — inspect
  /// Response.Type).
  bool call(const Frame &Request, Frame &Response,
            std::string *Error = nullptr);

  /// Convenience wrapper: one align request. On success fills
  /// \p Report with the response body. A server Error frame fails the
  /// call with "code: message" in \p Error.
  bool align(const AlignRequest &Request, std::string &Report,
             std::string *Error = nullptr);

  /// connectUnix with deterministic reconnect-with-backoff (the
  /// balign-shield doubling sequence; \p Sleep injectable for tests).
  /// The client.connect fault site fires inside each attempt.
  bool connectUnixRetry(const std::string &Path, const RetryPolicy &Policy,
                        std::string *Error = nullptr,
                        const SleepFn &Sleep = {});

  /// One align call that survives a server restart: on any *transport*
  /// failure — connect refused, the server dying mid-frame — the
  /// connection is torn down, re-established against \p Path, and the
  /// byte-identical request (see requestFingerprint) is resent, up to
  /// Policy.MaxAttempts with deterministic backoff. A server Error
  /// *frame* is a definitive answer and is never retried; it fails the
  /// call with "code: message" like align(). May be called without an
  /// existing connection.
  bool alignWithRetry(const std::string &Path, const AlignRequest &Request,
                      std::string &Report, const RetryPolicy &Policy,
                      std::string *Error = nullptr,
                      const SleepFn &Sleep = {});

private:
  int InFd = -1;
  int OutFd = -1;
  bool OwnsFds = false;
};

} // namespace balign

#endif // BALIGN_SERVE_CLIENT_H
