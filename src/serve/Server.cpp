//===- serve/Server.cpp - Long-lived alignment server ---------------------===//

#include "serve/Server.h"

#include "robust/CrashInjector.h"
#include "robust/Deadline.h"
#include "robust/FaultInjector.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <future>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace balign;

namespace {

/// Self-pipe of the drain signal handlers (write end is what the
/// handler touches — async-signal-safe, nonblocking so a full pipe
/// never wedges the handler).
int DrainPipeFds[2] = {-1, -1};

/// The server whose requestDrain() the signal watcher and the frame
/// read-interrupt check target.
std::atomic<AlignServer *> DrainServer{nullptr};

extern "C" void drainSignalHandler(int) {
  int Saved = errno;
  char C = 'd';
  [[maybe_unused]] ssize_t N = ::write(DrainPipeFds[1], &C, 1);
  errno = Saved;
}

/// setFrameReadInterrupt check: once the target server is draining, a
/// signal-interrupted frame read at a boundary ends as clean EOF.
bool drainReadInterrupt() {
  AlignServer *S = DrainServer.load(std::memory_order_relaxed);
  return S && S->draining();
}

constexpr const char *ForcedDrainMessage =
    "server is shutting down; request abandoned by forced drain";

} // namespace

AlignServer::AlignServer(const AlignmentOptions &Base, ServeConfig Config)
    : Service(Base, AlignServiceConfig{Config.DefaultDeadlineMs,
                                       Config.Clock}),
      Config(std::move(Config)), Pool(this->Config.Threads),
      Gate(this->Config.QueueBudget) {
  Watchdog = std::thread([this] { watchdogLoop(); });
}

AlignServer::~AlignServer() {
  if (SignalWatcher.joinable()) {
    char C = 'q';
    [[maybe_unused]] ssize_t N = ::write(DrainPipeFds[1], &C, 1);
    SignalWatcher.join();
    DrainServer.store(nullptr);
    setFrameReadInterrupt(nullptr);
  }
  {
    std::lock_guard<std::mutex> Lock(WatchdogMutex);
    WatchdogStop = true;
  }
  WatchdogCv.notify_all();
  if (Watchdog.joinable())
    Watchdog.join();
}

uint64_t AlignServer::nowMs() const {
  return Config.Clock ? Config.Clock() : steadyClockMs();
}

void AlignServer::installSignalDrain() {
  if (DrainPipeFds[0] < 0) {
    if (::pipe(DrainPipeFds) != 0) {
      std::fprintf(stderr, "serve: cannot create drain pipe: %s\n",
                   std::strerror(errno));
      return;
    }
    ::fcntl(DrainPipeFds[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(DrainPipeFds[1], F_SETFD, FD_CLOEXEC);
    ::fcntl(DrainPipeFds[1], F_SETFL, O_NONBLOCK);
  }
  DrainServer.store(this);
  setFrameReadInterrupt(&drainReadInterrupt);
  struct sigaction Sa;
  std::memset(&Sa, 0, sizeof(Sa));
  Sa.sa_handler = drainSignalHandler;
  sigemptyset(&Sa.sa_mask);
  Sa.sa_flags = 0; // No SA_RESTART: blocked reads/accepts must EINTR.
  ::sigaction(SIGTERM, &Sa, nullptr);
  ::sigaction(SIGINT, &Sa, nullptr);
  SignalWatcher = std::thread([this] {
    char C;
    while (true) {
      ssize_t N = ::read(DrainPipeFds[0], &C, 1);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0 || C == 'q')
        break;
      requestDrain();
    }
  });
}

void AlignServer::requestDrain() {
  int Prev = DrainSignals.fetch_add(1);
  if (Prev == 0) {
    Draining.store(true);
    Stopping.store(true);
    Metrics.counterAdd("serve.drain", 1);
    // Wake the accept loop and stop new frames on live connections;
    // in-flight requests keep running and their responses still go out
    // (only the read side closes).
    int Fd = ListenFd.load();
    if (Fd >= 0)
      ::shutdown(Fd, SHUT_RDWR);
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (int C : ConnFds)
      ::shutdown(C, SHUT_RD);
  } else if (Prev == 1) {
    // The double-SIGTERM escalation: the operator is done waiting.
    forceDrain();
  }
}

void AlignServer::forceDrain() {
  if (ForcedDrain.exchange(true))
    return;
  Metrics.counterAdd("serve.drain.forced", 1);
  {
    // Answer every in-flight request now; workers still running will
    // lose the complete() race and their results are dropped.
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    for (InFlightRequest &R : InFlight)
      R.Pending->complete(
          makeErrorFrame(FrameError::Internal, ForcedDrainMessage));
  }
  // Stop reads only: each connection thread still gets to write the
  // abandonment frame just completed above (a SHUT_RDWR here would race
  // that write and turn the structured answer into a bare EOF), then
  // sees EOF on its next read and exits.
  std::lock_guard<std::mutex> Lock(ConnMutex);
  for (int C : ConnFds)
    ::shutdown(C, SHUT_RD);
}

size_t AlignServer::inFlightRequests() const {
  std::lock_guard<std::mutex> Lock(InFlightMutex);
  return InFlight.size();
}

void AlignServer::watchdogLoop() {
  std::unique_lock<std::mutex> Lock(WatchdogMutex);
  while (!WatchdogStop) {
    WatchdogCv.wait_for(Lock,
                        std::chrono::milliseconds(Config.StuckPollMs));
    if (WatchdogStop)
      break;
    uint64_t Now = nowMs();
    std::lock_guard<std::mutex> InLock(InFlightMutex);
    for (InFlightRequest &R : InFlight) {
      if (R.LimitMs == 0 || Now < R.StartMs + R.LimitMs + Config.StuckGraceMs)
        continue;
      // The deadline is enforced cooperatively inside the pipeline; a
      // request this far past it is wedged somewhere that never polls.
      // Abandon the worker and answer the client structurally.
      if (R.Pending->complete(makeErrorFrame(
              FrameError::Stuck,
              "align request exceeded its deadline of " +
                  std::to_string(R.LimitMs) +
                  "ms and did not return; abandoned by the watchdog")))
        Metrics.counterAdd("serve.stuck", 1);
    }
  }
}

std::string AlignServer::metricsJson() {
  Metrics.gaugeMax("serve.queue.highwater",
                   static_cast<uint64_t>(Gate.highWater()));
  std::map<std::string, uint64_t> Counters = Metrics.counters();
  if (Config.CacheStatsFn) {
    CacheStats S = Config.CacheStatsFn();
    Counters["cache.hits"] = S.Hits;
    Counters["cache.misses"] = S.Misses;
    Counters["cache.stores"] = S.Stores;
    Counters["cache.entries"] = S.Entries;
  }
  return renderMetricsJson(Counters, Metrics.gauges(), /*NumSpans=*/0);
}

Frame AlignServer::runAlign(const AlignRequest &Request) {
  if (!Gate.tryAdmit()) {
    Metrics.counterAdd("serve.rejected", 1);
    return makeErrorFrame(FrameError::Rejected,
                          "align queue budget exhausted; retry later");
  }
  // Shared ownership instead of by-reference captures: the watchdog or
  // a forced drain can answer the connection thread early, after which
  // the worker must still have valid request/response state to finish
  // (and lose the complete() race) against.
  auto Pending = std::make_shared<PendingResponse>();
  auto Req = std::make_shared<AlignRequest>(Request);
  std::future<Frame> Result = Pending->Promise.get_future();
  uint64_t LimitMs =
      Req->DeadlineMs ? Req->DeadlineMs : Config.DefaultDeadlineMs;
  uint64_t Id = NextRequestId.fetch_add(1);
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    InFlight.push_back({Id, nowMs(), LimitMs, Pending});
  }
  if (ForcedDrain.load()) {
    Pending->complete(
        makeErrorFrame(FrameError::Internal, ForcedDrainMessage));
  } else {
    Pool.submit([Pending, Req, this] {
      if (Config.TestStallHook)
        Config.TestStallHook();
      try {
        Pending->complete(Service.handleAlign(*Req));
      } catch (const std::exception &E) {
        Pending->complete(makeErrorFrame(FrameError::Internal, E.what()));
      } catch (...) {
        Pending->complete(makeErrorFrame(
            FrameError::Internal, "unknown exception in align worker"));
      }
    });
  }
  Frame Response = Result.get();
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    InFlight.erase(std::find_if(InFlight.begin(), InFlight.end(),
                                [Id](const InFlightRequest &R) {
                                  return R.Id == Id;
                                }));
  }
  Gate.release();
  return Response;
}

Frame AlignServer::dispatch(const Frame &Request, bool &SawShutdown) {
  switch (Request.Type) {
  case FrameType::Ping:
    Metrics.counterAdd("serve.requests.ping", 1);
    return makeFrame(FrameType::Pong, Request.Body);
  case FrameType::Align: {
    Metrics.counterAdd("serve.requests.align", 1);
    // Decode up front (once): the watchdog needs the request's deadline
    // before dispatch, and the decode error is answered without burning
    // a pool slot.
    AlignRequest Req;
    std::string Error;
    if (!decodeAlignRequest(Request.Body, Req, &Error))
      return makeErrorFrame(FrameError::BadRequest, Error);
    return runAlign(Req);
  }
  case FrameType::Metrics:
    Metrics.counterAdd("serve.requests.metrics", 1);
    if (!Request.Body.empty())
      return makeErrorFrame(FrameError::BadRequest,
                            "metrics request carries a body");
    return makeFrame(FrameType::MetricsOk, metricsJson());
  case FrameType::Shutdown:
    Metrics.counterAdd("serve.requests.shutdown", 1);
    if (!Request.Body.empty())
      return makeErrorFrame(FrameError::BadRequest,
                            "shutdown request carries a body");
    SawShutdown = true;
    return makeFrame(FrameType::ShutdownOk);
  default:
    return makeErrorFrame(
        FrameError::BadType,
        std::string("frame type '") + frameTypeName(Request.Type) +
            "' is not a request");
  }
}

AlignServer::ConnectionEnd AlignServer::serveConnection(int InFd, int OutFd) {
  Metrics.counterAdd("serve.connections", 1);
  ActiveConnections.fetch_add(1);
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    ConnFds.push_back(InFd);
  }
  // Connection teardown bookkeeping, run on every exit path.
  struct ConnCleanup {
    AlignServer *Server;
    int Fd;
    ~ConnCleanup() {
      std::lock_guard<std::mutex> Lock(Server->ConnMutex);
      Server->ConnFds.erase(std::find(Server->ConnFds.begin(),
                                      Server->ConnFds.end(), Fd));
      Server->ActiveConnections.fetch_sub(1);
    }
  } Cleanup{this, InFd};
  ConnectionEnd End = ConnectionEnd::Eof;
  bool SawShutdown = false;
  while (!SawShutdown) {
    Frame Request;
    FrameError Code = FrameError::None;
    std::string Message;
    ReadStatus Status = readFrame(InFd, Request, Code, Message);
    if (Status == ReadStatus::Eof)
      break;
    if (Status == ReadStatus::Error) {
      // The stream cannot be resynchronized after a framing error;
      // answer once (best effort — the peer may already be gone) and
      // close this connection. The server lives on.
      Metrics.counterAdd("serve.frames.bad", 1);
      Metrics.counterAdd("serve.responses.error", 1);
      writeFrame(OutFd, makeErrorFrame(Code, Message));
      return ConnectionEnd::ProtocolError;
    }
    Frame Response;
    try {
      // balign-shield fault site: the CI serve column arms
      // BALIGN_FAULT=serve.frame:... to prove one poisoned dispatch
      // errors structurally while the connection (and server) survive.
      FaultInjector::instance().throwIfFault(FaultSite::ServeFrame);
      Response = dispatch(Request, SawShutdown);
    } catch (const FaultInjectedError &E) {
      Response = makeErrorFrame(FrameError::Internal, E.what());
    }
    if (Response.Type == FrameType::Error)
      Metrics.counterAdd("serve.responses.error", 1);
    else
      Metrics.counterAdd("serve.responses.ok", 1);
    // balign-sentinel crash site: die with the response computed (and
    // any cache effects possibly flushed) but not yet written — the
    // client sees a dead server mid-call and must resend idempotently.
    CrashInjector::instance().crashPoint(CrashSite::ServeResponse);
    if (!writeFrame(OutFd, Response))
      break; // Peer vanished mid-response.
  }
  if (SawShutdown) {
    End = ConnectionEnd::Shutdown;
    Stopping.store(true);
    // Wake the accept loop (if any) out of accept(2).
    int Fd = ListenFd.load();
    if (Fd >= 0)
      ::shutdown(Fd, SHUT_RDWR);
  }
  return End;
}

int AlignServer::serveStdio() {
  ::signal(SIGPIPE, SIG_IGN);
  if (serveConnection(STDIN_FILENO, STDOUT_FILENO) ==
      ConnectionEnd::ProtocolError)
    return 1;
  return ForcedDrain.load() ? 4 : 0;
}

int AlignServer::serveUnixSocket(const std::string &Path) {
  ::signal(SIGPIPE, SIG_IGN);
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path '%s' is too long\n",
                 Path.c_str());
    return 1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
    return 1;
  }
  ::unlink(Path.c_str()); // Replace a stale socket file.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    std::fprintf(stderr, "error: cannot listen on '%s': %s\n", Path.c_str(),
                 std::strerror(errno));
    ::close(Fd);
    return 1;
  }
  ListenFd.store(Fd);
  std::fprintf(stderr, "serve: listening on %s\n", Path.c_str());

  std::vector<std::thread> Connections;
  while (!Stopping.load()) {
    int Client = ::accept(Fd, nullptr, nullptr);
    if (Client < 0) {
      if (errno == EINTR)
        continue;
      break; // Shutdown closed the listener (or it broke for real).
    }
    Connections.emplace_back([this, Client] {
      serveConnection(Client, Client);
      ::close(Client);
    });
  }
  if (Draining.load()) {
    // Supervised drain: give in-flight connections DrainTimeoutMs to
    // finish their current requests, then escalate.
    std::fprintf(stderr, "serve: draining (%zu connections in flight)\n",
                 ActiveConnections.load());
    Deadline DrainDeadline(Config.DrainTimeoutMs, Config.Clock);
    while (ActiveConnections.load() != 0 && !ForcedDrain.load()) {
      if (DrainDeadline.expired()) {
        forceDrain();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (std::thread &T : Connections)
    T.join();
  ListenFd.store(-1);
  ::close(Fd);
  ::unlink(Path.c_str());
  if (ForcedDrain.load()) {
    std::fprintf(stderr, "serve: drain forced; abandoned in-flight work\n");
    return 4;
  }
  std::fprintf(stderr, "serve: shut down cleanly\n");
  return 0;
}
