//===- serve/Server.cpp - Long-lived alignment server ---------------------===//

#include "serve/Server.h"

#include "robust/FaultInjector.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <future>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace balign;

AlignServer::AlignServer(const AlignmentOptions &Base, ServeConfig Config)
    : Service(Base, AlignServiceConfig{Config.DefaultDeadlineMs,
                                       Config.Clock}),
      Config(std::move(Config)), Pool(this->Config.Threads),
      Gate(this->Config.QueueBudget) {}

std::string AlignServer::metricsJson() {
  Metrics.gaugeMax("serve.queue.highwater",
                   static_cast<uint64_t>(Gate.highWater()));
  std::map<std::string, uint64_t> Counters = Metrics.counters();
  if (Config.CacheStatsFn) {
    CacheStats S = Config.CacheStatsFn();
    Counters["cache.hits"] = S.Hits;
    Counters["cache.misses"] = S.Misses;
    Counters["cache.stores"] = S.Stores;
    Counters["cache.entries"] = S.Entries;
  }
  return renderMetricsJson(Counters, Metrics.gauges(), /*NumSpans=*/0);
}

Frame AlignServer::runAlign(const std::string &Body) {
  Metrics.counterAdd("serve.requests.align", 1);
  if (!Gate.tryAdmit()) {
    Metrics.counterAdd("serve.rejected", 1);
    return makeErrorFrame(FrameError::Rejected,
                          "align queue budget exhausted; retry later");
  }
  // Per-request promise/future instead of ThreadPool::wait(): wait()
  // drains *every* task and must run outside the workers, while each
  // connection thread here needs exactly its own request back.
  std::promise<Frame> Done;
  std::future<Frame> Result = Done.get_future();
  Pool.submit([&Done, &Body, this] {
    try {
      Done.set_value(Service.handleAlign(Body));
    } catch (...) {
      Done.set_exception(std::current_exception());
    }
  });
  Frame Response;
  try {
    Response = Result.get();
  } catch (const std::exception &E) {
    Response = makeErrorFrame(FrameError::Internal, E.what());
  }
  Gate.release();
  return Response;
}

Frame AlignServer::dispatch(const Frame &Request, bool &SawShutdown) {
  switch (Request.Type) {
  case FrameType::Ping:
    Metrics.counterAdd("serve.requests.ping", 1);
    return makeFrame(FrameType::Pong, Request.Body);
  case FrameType::Align:
    return runAlign(Request.Body);
  case FrameType::Metrics:
    Metrics.counterAdd("serve.requests.metrics", 1);
    if (!Request.Body.empty())
      return makeErrorFrame(FrameError::BadRequest,
                            "metrics request carries a body");
    return makeFrame(FrameType::MetricsOk, metricsJson());
  case FrameType::Shutdown:
    Metrics.counterAdd("serve.requests.shutdown", 1);
    if (!Request.Body.empty())
      return makeErrorFrame(FrameError::BadRequest,
                            "shutdown request carries a body");
    SawShutdown = true;
    return makeFrame(FrameType::ShutdownOk);
  default:
    return makeErrorFrame(
        FrameError::BadType,
        std::string("frame type '") + frameTypeName(Request.Type) +
            "' is not a request");
  }
}

AlignServer::ConnectionEnd AlignServer::serveConnection(int InFd, int OutFd) {
  Metrics.counterAdd("serve.connections", 1);
  ConnectionEnd End = ConnectionEnd::Eof;
  bool SawShutdown = false;
  while (!SawShutdown) {
    Frame Request;
    FrameError Code = FrameError::None;
    std::string Message;
    ReadStatus Status = readFrame(InFd, Request, Code, Message);
    if (Status == ReadStatus::Eof)
      break;
    if (Status == ReadStatus::Error) {
      // The stream cannot be resynchronized after a framing error;
      // answer once (best effort — the peer may already be gone) and
      // close this connection. The server lives on.
      Metrics.counterAdd("serve.frames.bad", 1);
      Metrics.counterAdd("serve.responses.error", 1);
      writeFrame(OutFd, makeErrorFrame(Code, Message));
      return ConnectionEnd::ProtocolError;
    }
    Frame Response;
    try {
      // balign-shield fault site: the CI serve column arms
      // BALIGN_FAULT=serve.frame:... to prove one poisoned dispatch
      // errors structurally while the connection (and server) survive.
      FaultInjector::instance().throwIfFault(FaultSite::ServeFrame);
      Response = dispatch(Request, SawShutdown);
    } catch (const FaultInjectedError &E) {
      Response = makeErrorFrame(FrameError::Internal, E.what());
    }
    if (Response.Type == FrameType::Error)
      Metrics.counterAdd("serve.responses.error", 1);
    else
      Metrics.counterAdd("serve.responses.ok", 1);
    if (!writeFrame(OutFd, Response))
      break; // Peer vanished mid-response.
  }
  if (SawShutdown) {
    End = ConnectionEnd::Shutdown;
    Stopping.store(true);
    // Wake the accept loop (if any) out of accept(2).
    int Fd = ListenFd.load();
    if (Fd >= 0)
      ::shutdown(Fd, SHUT_RDWR);
  }
  return End;
}

int AlignServer::serveStdio() {
  ::signal(SIGPIPE, SIG_IGN);
  return serveConnection(STDIN_FILENO, STDOUT_FILENO) ==
                 ConnectionEnd::ProtocolError
             ? 1
             : 0;
}

int AlignServer::serveUnixSocket(const std::string &Path) {
  ::signal(SIGPIPE, SIG_IGN);
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path '%s' is too long\n",
                 Path.c_str());
    return 1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
    return 1;
  }
  ::unlink(Path.c_str()); // Replace a stale socket file.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    std::fprintf(stderr, "error: cannot listen on '%s': %s\n", Path.c_str(),
                 std::strerror(errno));
    ::close(Fd);
    return 1;
  }
  ListenFd.store(Fd);
  std::fprintf(stderr, "serve: listening on %s\n", Path.c_str());

  std::vector<std::thread> Connections;
  while (!Stopping.load()) {
    int Client = ::accept(Fd, nullptr, nullptr);
    if (Client < 0) {
      if (errno == EINTR)
        continue;
      break; // Shutdown closed the listener (or it broke for real).
    }
    Connections.emplace_back([this, Client] {
      serveConnection(Client, Client);
      ::close(Client);
    });
  }
  for (std::thread &T : Connections)
    T.join();
  ListenFd.store(-1);
  ::close(Fd);
  ::unlink(Path.c_str());
  std::fprintf(stderr, "serve: shut down cleanly\n");
  return 0;
}
