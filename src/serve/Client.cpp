//===- serve/Client.cpp - balign-serve client helper ----------------------===//

#include "serve/Client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace balign;

namespace {

bool fail(std::string *Error, const std::string &Reason) {
  if (Error)
    *Error = Reason;
  return false;
}

} // namespace

ServeClient &ServeClient::operator=(ServeClient &&Other) noexcept {
  if (this != &Other) {
    close();
    InFd = Other.InFd;
    OutFd = Other.OutFd;
    OwnsFds = Other.OwnsFds;
    Other.InFd = Other.OutFd = -1;
    Other.OwnsFds = false;
  }
  return *this;
}

bool ServeClient::connectUnix(const std::string &Path, std::string *Error) {
  close();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return fail(Error, "socket path '" + Path + "' is too long");
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return fail(Error, std::string("socket: ") + std::strerror(errno));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    int Saved = errno;
    ::close(Fd);
    return fail(Error, "cannot connect to '" + Path +
                           "': " + std::strerror(Saved));
  }
  InFd = OutFd = Fd;
  OwnsFds = true;
  return true;
}

void ServeClient::wrap(int InFd, int OutFd) {
  close();
  this->InFd = InFd;
  this->OutFd = OutFd;
  OwnsFds = false;
}

void ServeClient::close() {
  if (OwnsFds && InFd >= 0) {
    ::close(InFd);
    if (OutFd != InFd)
      ::close(OutFd);
  }
  InFd = OutFd = -1;
  OwnsFds = false;
}

bool ServeClient::call(const Frame &Request, Frame &Response,
                       std::string *Error) {
  if (!connected())
    return fail(Error, "client is not connected");
  if (!writeFrame(OutFd, Request))
    return fail(Error, "write failed (server gone?)");
  FrameError Code = FrameError::None;
  std::string Message;
  ReadStatus Status = readFrame(InFd, Response, Code, Message);
  if (Status == ReadStatus::Eof)
    return fail(Error, "server closed the connection");
  if (Status == ReadStatus::Error)
    return fail(Error, std::string(frameErrorName(Code)) + ": " + Message);
  return true;
}

bool ServeClient::align(const AlignRequest &Request, std::string &Report,
                        std::string *Error) {
  Frame Response;
  if (!call(makeFrame(FrameType::Align, encodeAlignRequest(Request)),
            Response, Error))
    return false;
  if (Response.Type == FrameType::AlignOk) {
    Report = Response.Body;
    return true;
  }
  FrameError Code = FrameError::None;
  std::string Message;
  if (decodeErrorFrame(Response, Code, Message))
    return fail(Error, std::string(frameErrorName(Code)) + ": " + Message);
  return fail(Error, std::string("unexpected response frame '") +
                         frameTypeName(Response.Type) + "'");
}
