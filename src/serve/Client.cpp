//===- serve/Client.cpp - balign-serve client helper ----------------------===//

#include "serve/Client.h"

#include "robust/FaultInjector.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace balign;

namespace {

bool fail(std::string *Error, const std::string &Reason) {
  if (Error)
    *Error = Reason;
  return false;
}

} // namespace

uint64_t balign::requestFingerprint(const AlignRequest &Request) {
  // FNV-1a + splitmix64 finalizer over the exact wire bytes, so the
  // fingerprint pins what actually crosses the socket.
  std::string Wire = encodeAlignRequest(Request);
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : Wire) {
    H ^= static_cast<uint8_t>(C);
    H *= 0x100000001b3ULL;
  }
  H += 0x9e3779b97f4a7c15ULL;
  H = (H ^ (H >> 30)) * 0xbf58476d1ce4e5b9ULL;
  H = (H ^ (H >> 27)) * 0x94d049bb133111ebULL;
  return H ^ (H >> 31);
}

ServeClient &ServeClient::operator=(ServeClient &&Other) noexcept {
  if (this != &Other) {
    close();
    InFd = Other.InFd;
    OutFd = Other.OutFd;
    OwnsFds = Other.OwnsFds;
    Other.InFd = Other.OutFd = -1;
    Other.OwnsFds = false;
  }
  return *this;
}

bool ServeClient::connectUnix(const std::string &Path, std::string *Error) {
  close();
  // balign-shield fault site: a deterministic injectable connect
  // failure, so reconnect-with-backoff is testable without racing a
  // real server's lifecycle.
  if (FaultInjector::instance().shouldFail(FaultSite::ClientConnect))
    return fail(Error, "injected fault at 'client.connect'");
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return fail(Error, "socket path '" + Path + "' is too long");
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return fail(Error, std::string("socket: ") + std::strerror(errno));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    int Saved = errno;
    ::close(Fd);
    return fail(Error, "cannot connect to '" + Path +
                           "': " + std::strerror(Saved));
  }
  InFd = OutFd = Fd;
  OwnsFds = true;
  return true;
}

void ServeClient::wrap(int InFd, int OutFd) {
  close();
  this->InFd = InFd;
  this->OutFd = OutFd;
  OwnsFds = false;
}

void ServeClient::close() {
  if (OwnsFds && InFd >= 0) {
    ::close(InFd);
    if (OutFd != InFd)
      ::close(OutFd);
  }
  InFd = OutFd = -1;
  OwnsFds = false;
}

bool ServeClient::call(const Frame &Request, Frame &Response,
                       std::string *Error) {
  if (!connected())
    return fail(Error, "client is not connected");
  if (!writeFrame(OutFd, Request))
    return fail(Error, "write failed (server gone?)");
  FrameError Code = FrameError::None;
  std::string Message;
  ReadStatus Status = readFrame(InFd, Response, Code, Message);
  if (Status == ReadStatus::Eof)
    return fail(Error, "server closed the connection");
  if (Status == ReadStatus::Error)
    return fail(Error, std::string(frameErrorName(Code)) + ": " + Message);
  return true;
}

bool ServeClient::align(const AlignRequest &Request, std::string &Report,
                        std::string *Error) {
  Frame Response;
  if (!call(makeFrame(FrameType::Align, encodeAlignRequest(Request)),
            Response, Error))
    return false;
  if (Response.Type == FrameType::AlignOk) {
    Report = Response.Body;
    return true;
  }
  FrameError Code = FrameError::None;
  std::string Message;
  if (decodeErrorFrame(Response, Code, Message))
    return fail(Error, std::string(frameErrorName(Code)) + ": " + Message);
  return fail(Error, std::string("unexpected response frame '") +
                         frameTypeName(Response.Type) + "'");
}

bool ServeClient::connectUnixRetry(const std::string &Path,
                                   const RetryPolicy &Policy,
                                   std::string *Error, const SleepFn &Sleep) {
  std::string LastError;
  RetryOutcome Outcome = retryWithBackoff(
      Policy,
      [&](std::string *AttemptError) {
        return connectUnix(Path, AttemptError);
      },
      &LastError, Sleep);
  if (Outcome.Succeeded)
    return true;
  return fail(Error, LastError + " (after " +
                         std::to_string(Outcome.Attempts) + " attempts)");
}

bool ServeClient::alignWithRetry(const std::string &Path,
                                 const AlignRequest &Request,
                                 std::string &Report,
                                 const RetryPolicy &Policy,
                                 std::string *Error, const SleepFn &Sleep) {
  // Encode once: every attempt resends these exact bytes, which is what
  // makes the resend idempotent (requestFingerprint pins them).
  Frame RequestFrame =
      makeFrame(FrameType::Align, encodeAlignRequest(Request));
  Frame Response;
  std::string LastError;
  RetryOutcome Outcome = retryWithBackoff(
      Policy,
      [&](std::string *AttemptError) {
        if (!connected() && !connectUnix(Path, AttemptError))
          return false;
        if (!call(RequestFrame, Response, AttemptError)) {
          // Transport broke mid-call (server died, stream torn): drop
          // the connection so the next attempt starts fresh.
          close();
          return false;
        }
        return true;
      },
      &LastError, Sleep);
  if (!Outcome.Succeeded)
    return fail(Error, LastError + " (after " +
                           std::to_string(Outcome.Attempts) + " attempts)");
  if (Response.Type == FrameType::AlignOk) {
    Report = Response.Body;
    return true;
  }
  // A structured server answer — including Error frames — is
  // definitive; retrying it would just repeat the same answer.
  FrameError Code = FrameError::None;
  std::string Message;
  if (decodeErrorFrame(Response, Code, Message))
    return fail(Error, std::string(frameErrorName(Code)) + ": " + Message);
  return fail(Error, std::string("unexpected response frame '") +
                         frameTypeName(Response.Type) + "'");
}
