//===- serve/Oneshot.cpp - Shared one-shot report/profile building --------===//

#include "serve/Oneshot.h"

#include "ir/Dot.h"
#include "profile/Trace.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/Table.h"

using namespace balign;

namespace {

/// A seeded, skewed behavior: real branches are biased, not coin flips.
/// Moved verbatim from align_tool — the constants are part of the seeded
/// synthetic-profile contract.
BranchBehavior skewedBehavior(const Procedure &Proc, Rng &R) {
  BranchBehavior Behavior = BranchBehavior::uniform(Proc);
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    std::vector<double> &Probs = Behavior.Probs[B];
    if (Probs.size() == 2) {
      double Bias = 0.70 + 0.28 * R.nextDouble();
      size_t Hot = R.nextIndex(2);
      Probs[Hot] = Bias;
      Probs[1 - Hot] = 1.0 - Bias;
    } else if (Probs.size() > 2) {
      double Sum = 0.0;
      for (double &P : Probs) {
        P = 0.05 + R.nextDouble() * R.nextDouble() * 3.0;
        Sum += P;
      }
      for (double &P : Probs)
        P /= Sum;
    }
  }
  return Behavior;
}

} // namespace

ProgramProfile balign::synthesizeProfile(const Program &Prog, uint64_t Seed,
                                         uint64_t Budget) {
  ProgramProfile Counts;
  for (size_t P = 0; P != Prog.numProcedures(); ++P) {
    const Procedure &Proc = Prog.proc(P);
    Rng BehaviorRng(Seed * 7919 + P);
    BranchBehavior Behavior = skewedBehavior(Proc, BehaviorRng);
    Rng TraceRng(Seed * 1000003 + P);
    TraceGenOptions TraceOptions;
    TraceOptions.BranchBudget = Budget;
    Counts.Procs.push_back(collectProfile(
        Proc, generateTrace(Proc, Behavior, TraceRng, TraceOptions)));
  }
  return Counts;
}

std::string balign::renderAlignmentReport(const Program &Prog,
                                          const ProgramProfile &Counts,
                                          const ProgramAlignment &Result,
                                          bool ComputeBounds, bool EmitDot,
                                          const char *PrimaryName) {
  TextTable Report;
  Report.addColumn("procedure");
  Report.addColumn("blocks", TextTable::AlignKind::Right);
  Report.addColumn("branches", TextTable::AlignKind::Right);
  Report.addColumn("original", TextTable::AlignKind::Right);
  Report.addColumn("greedy", TextTable::AlignKind::Right);
  Report.addColumn(PrimaryName, TextTable::AlignKind::Right);
  Report.addColumn("removed", TextTable::AlignKind::Right);
  if (ComputeBounds)
    Report.addColumn("hk-bound", TextTable::AlignKind::Right);

  std::string Out;
  for (size_t P = 0; P != Prog.numProcedures(); ++P) {
    const Procedure &Proc = Prog.proc(P);
    const ProcedureProfile &Profile = Counts.Procs[P];
    const ProcedureAlignment &PA = Result.Procs[P];
    std::vector<std::string> Row = {
        Proc.getName(),
        std::to_string(Proc.numBlocks()),
        formatCount(Profile.executedBranches(Proc)),
        std::to_string(PA.OriginalPenalty),
        std::to_string(PA.GreedyPenalty),
        std::to_string(PA.TspPenalty),
        PA.OriginalPenalty > 0
            ? formatPercent(1.0 - static_cast<double>(PA.TspPenalty) /
                                      static_cast<double>(PA.OriginalPenalty))
            : "0%"};
    if (ComputeBounds)
      Row.push_back(formatFixed(PA.Bounds.HeldKarp, 1));
    Report.addRow(std::move(Row));

    Out += "proc " + Proc.getName() + " layout:";
    for (BlockId Id : PA.TspLayout.Order) {
      const BasicBlock &Block = Proc.block(Id);
      Out += " ";
      Out += Block.Name.empty() ? ("b" + std::to_string(Id)) : Block.Name;
    }
    Out += "\n";
    if (EmitDot)
      Out += printDot(Proc, &Profile.EdgeCounts);
  }
  Out += "\n";
  Out += Report.render();
  return Out;
}
