//===- robust/CrashInjector.h - Kill-based crash-point injection ----------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The crash-injection half of balign-sentinel, sibling of FaultInjector:
/// where BALIGN_FAULT makes a site *report* failure through its normal
/// error channel, BALIGN_CRASH makes the whole process die there with
/// `_exit(2)` — no destructors, no flushes, no atexit — which is the
/// closest a test can get to `kill -9` or power loss at a chosen
/// instruction. Crash points bracket the durability-critical I/O
/// sequences (the cache store's tmp write and rename, the checkpoint
/// journal's append, the serve response write, pool task execution) so a
/// fork-based chaos harness can kill a child at every site and assert
/// the survivor-side invariants: the store reopens salvageable, the
/// journal resumes exactly-once, the client retries through.
///
/// Armed from the environment (the chaos harness arms the child
/// programmatically after fork instead):
///
///   BALIGN_CRASH=<site>[:nth]
///
/// where `nth` is the 1-based hit index that dies (default 1, the first
/// hit). The site names share the dotted spelling of BALIGN_FAULT sites
/// and the same monotone per-site hit counters, so a given spec always
/// kills the same deterministic hit.
///
/// Placement contract: a crash point sits *between* the bytes of a
/// multi-part write wherever a torn artifact is physically possible
/// (cache.tmp-write fires with only half the store file written,
/// checkpoint.append with half a record), and *between* a write and its
/// matching fsync/rename wherever ordering matters — so surviving every
/// site proves the recovery code, not the luck of the buffer cache.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ROBUST_CRASHINJECTOR_H
#define BALIGN_ROBUST_CRASHINJECTOR_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace balign {

/// Every durability-critical point balign-sentinel can kill the process
/// at. The printable names (crashSiteName) are the BALIGN_CRASH spelling
/// and part of the public contract; never rename a released one.
enum class CrashSite : uint8_t {
  CacheTmpWrite,    ///< cache.tmp-write — mid-write of the store tmp file
                    ///< (a torn tmp, never renamed in).
  CachePreRename,   ///< cache.pre-rename — tmp complete and fsync'd, the
                    ///< rename not yet issued.
  CachePostRename,  ///< cache.post-rename — renamed in, the directory
                    ///< entry not yet fsync'd.
  CheckpointAppend, ///< checkpoint.append — mid-append of a journal
                    ///< record (a torn tail the reopen must truncate).
  ServeResponse,    ///< serve.response — mid-write of a serve response
                    ///< frame (the client sees a truncated frame).
  PoolTask,         ///< pool.task — inside per-procedure pipeline task
                    ///< execution (no cache flush ran for this result).
};

inline constexpr size_t NumCrashSites = 6;

/// The exit status a fired crash point dies with. Distinct from 0 so the
/// chaos harness can tell "crashed where armed" from "site never
/// reached" in the child's wait status.
inline constexpr int CrashExitCode = 2;

/// Returns the stable printable name, e.g. "cache.tmp-write".
const char *crashSiteName(CrashSite Site);

/// Parses a printable site name; nullopt for unknown names.
std::optional<CrashSite> crashSiteByName(const std::string &Name);

/// The process-wide injector. Thread-safe; the hot path (nothing armed)
/// is a single relaxed atomic load, so crash points are free to sit on
/// production I/O paths.
class CrashInjector {
public:
  /// The singleton. First use arms a site from BALIGN_CRASH if set; a
  /// malformed value is reported to stderr and aborts (a chaos sweep
  /// must never silently run without its kill).
  static CrashInjector &instance();

  /// Arms \p Site to die on its \p Nth hit (1-based), resetting that
  /// site's hit counter. At most one site is armed at a time — arming a
  /// new one disarms the previous (one kill per process life is all a
  /// crash can ever deliver).
  void arm(CrashSite Site, uint64_t Nth = 1);

  /// Disarms everything and zeroes all hit counters.
  void reset();

  /// Probes \p Site: advances its hit counter, and when the armed site
  /// reaches its fatal hit, `_exit`s with CrashExitCode. The process
  /// dies with whatever it has written so far — buffered, torn, or
  /// durable exactly as the call site left it.
  void crashPoint(CrashSite Site);

  /// Hits recorded against \p Site so far.
  uint64_t hits(CrashSite Site) const;

  /// Arms from a "<site>[:nth]" spec. Returns false and fills \p Error
  /// on malformed input.
  bool armFromSpec(const std::string &Spec, std::string *Error = nullptr);

private:
  CrashInjector() = default;
  void loadEnvOnce();

  mutable std::mutex Mutex;
  uint64_t HitCounts[NumCrashSites] = {};
  uint64_t FatalHit = 0; ///< 1-based hit that dies; 0 = disarmed.
  CrashSite ArmedSite = CrashSite::CacheTmpWrite;
  /// Whether any site is armed, readable without the mutex so an
  /// unarmed process pays one atomic load per probe.
  std::atomic<bool> Armed{false};
};

} // namespace balign

#endif // BALIGN_ROBUST_CRASHINJECTOR_H
