//===- robust/Retry.h - Bounded deterministic retry with backoff ----------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Retry-with-bounded-backoff for transient I/O faults, used around the
/// cache store's disk reads and writes so a hiccuping filesystem costs a
/// few milliseconds instead of an evicted cache or a failed run.
///
/// The backoff sequence is fully deterministic — InitialBackoffMs
/// doubling up to MaxBackoffMs, no jitter — and the sleep function is
/// injectable, so tests assert the exact sequence without sleeping.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ROBUST_RETRY_H
#define BALIGN_ROBUST_RETRY_H

#include <cstdint>
#include <functional>
#include <string>

namespace balign {

/// Tuning for retryWithBackoff.
struct RetryPolicy {
  unsigned MaxAttempts = 3;      ///< Total attempts, including the first.
  uint64_t InitialBackoffMs = 1; ///< Sleep before the first retry.
  uint64_t MaxBackoffMs = 16;    ///< Backoff cap (doubling stops here).
};

/// Sleeps for the given milliseconds; injectable for tests.
using SleepFn = std::function<void(uint64_t Ms)>;

/// The production sleep (std::this_thread::sleep_for).
void sleepMs(uint64_t Ms);

/// What one retryWithBackoff call did.
struct RetryOutcome {
  bool Succeeded = false;   ///< Some attempt returned true.
  unsigned Attempts = 0;    ///< Attempts actually made.
  uint64_t TotalBackoffMs = 0; ///< Backoff slept between them.
};

/// Runs \p Attempt (returning true on success, filling an error string
/// on failure) up to Policy.MaxAttempts times, sleeping the doubling
/// backoff between attempts via \p Sleep (empty = real sleepMs). The
/// last attempt's error is left in place for the caller to report.
RetryOutcome
retryWithBackoff(const RetryPolicy &Policy,
                 const std::function<bool(std::string *Error)> &Attempt,
                 std::string *Error = nullptr, const SleepFn &Sleep = {});

} // namespace balign

#endif // BALIGN_ROBUST_RETRY_H
