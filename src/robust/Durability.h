//===- robust/Durability.h - fsync policy and primitives ------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The balign-sentinel durability policy and the two fsync primitives
/// the persistence layers share. `rename` alone is atomic against
/// concurrent readers but not against power loss: without an fsync of
/// the source file first, the rename can land while the file's *data*
/// is still only in the page cache, leaving a torn file under the final
/// name; without an fsync of the containing directory after, the rename
/// itself can be lost. Durability::Full pays both fsyncs;
/// Durability::Relaxed skips them for throwaway stores (benchmarks,
/// tests that measure flush cost) where a crash may legitimately lose
/// the file — never a default for user data.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ROBUST_DURABILITY_H
#define BALIGN_ROBUST_DURABILITY_H

#include <cstdint>
#include <string>

namespace balign {

/// How hard persistence code must try to survive `kill -9` / power loss.
enum class Durability : uint8_t {
  Relaxed, ///< No fsync: atomic against readers, not against crashes.
  Full,    ///< fsync file data before rename and the directory after.
};

/// fsync(2) on \p Fd; returns false (leaving errno set) on failure.
bool fsyncFd(int Fd);

/// Opens and fsyncs the directory containing \p Path (or \p Path itself
/// when it already names a directory is the caller's business — this
/// always syncs the parent). Returns false on open/fsync failure.
bool fsyncParentDirectory(const std::string &Path);

} // namespace balign

#endif // BALIGN_ROBUST_DURABILITY_H
