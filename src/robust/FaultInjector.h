//===- robust/FaultInjector.h - Deterministic fault injection -------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The fault-injection half of balign-shield: a process-wide registry of
/// named fault sites threaded through the pipeline's error paths —
/// profile parsing, the DTSP->STSP transform, the iterated-3-Opt solver,
/// the greedy aligner, pipeline task execution, and the cache store's
/// disk operations — so every recovery path is drivable from tests and
/// CI instead of waiting for real disks to fill up.
///
/// Faults are armed programmatically (arm / ScopedFault) or from the
/// BALIGN_FAULT environment variable:
///
///   BALIGN_FAULT=<site>:<mode>[,<site>:<mode>...]
///
/// with modes
///
///   always        every hit fails
///   once          only the first hit fails
///   nth=K         only the K-th hit fails (1-based)
///   every=K       every K-th hit fails
///   count=K       the first K hits fail (the transient-fault shape the
///                 retry machinery must absorb)
///   rate=N/D@S    a seeded pseudo-random N-in-D failure rate: hit i
///                 fails iff splitmix64(S ^ i) % D < N, so a given seed
///                 always fails the same hit indices
///
/// Determinism: each site keeps a monotone hit counter, incremented on
/// every shouldFail call in call order; under a serial pipeline the
/// sequence of failing hits is a pure function of the spec. Sites probed
/// from parallel workers interleave nondeterministically, so tests that
/// target a specific hit either run serial or use `always`. Verifier
/// passes probe nothing: analysis code runs under ScopedSuppress, which
/// makes shouldFail return false *without consuming a hit*, so arming a
/// fault never skews verification and `--verify` runs count the same
/// hits as plain ones.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ROBUST_FAULTINJECTOR_H
#define BALIGN_ROBUST_FAULTINJECTOR_H

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

namespace balign {

/// Every named fault site balign-shield instruments. The printable names
/// (faultSiteName) are the BALIGN_FAULT spelling and part of the public
/// contract; never rename a released one.
enum class FaultSite : uint8_t {
  ProfileParse, ///< profile.parse — ProfileIO record parsing.
  TspTransform, ///< tsp.transform — the DTSP->STSP transformation.
  TspSolve,     ///< tsp.solve — solveDirectedTsp entry.
  AlignGreedy,  ///< align.greedy — the greedy (fallback-rung) aligner.
  PoolTask,     ///< pool.task — per-procedure pipeline task execution.
  CacheLoad,    ///< cache.load — cache store disk reads.
  CacheFlush,   ///< cache.flush — cache store disk writes.
  ServeFrame,   ///< serve.frame — balign-serve request dispatch.
  AlignChain,   ///< align.chain — the Ext-TSP chain-merging aligner.
  JournalAppend, ///< journal.append — checkpoint journal appends.
  ClientConnect, ///< client.connect — ServeClient socket connects.
  DisplaceFixpoint, ///< displace.fixpoint — the branch-displacement solve.
};

inline constexpr size_t NumFaultSites = 12;

/// Returns the stable printable name, e.g. "tsp.solve".
const char *faultSiteName(FaultSite Site);

/// Parses a printable site name; nullopt for unknown names.
std::optional<FaultSite> faultSiteByName(const std::string &Name);

/// When (in a site's hit sequence) an armed fault fires.
struct FaultSpec {
  enum class Mode : uint8_t { Never, Always, Once, Nth, Every, Count, Rate };

  Mode M = Mode::Never;
  uint64_t K = 0;    ///< Parameter of Nth/Every/Count; numerator of Rate.
  uint64_t D = 1;    ///< Denominator of Rate.
  uint64_t Seed = 0; ///< Seed of Rate.

  static FaultSpec never() { return {}; }
  static FaultSpec always() { return {Mode::Always, 0, 1, 0}; }
  static FaultSpec once() { return {Mode::Once, 0, 1, 0}; }
  static FaultSpec nth(uint64_t N) { return {Mode::Nth, N, 1, 0}; }
  static FaultSpec every(uint64_t N) { return {Mode::Every, N, 1, 0}; }
  static FaultSpec count(uint64_t N) { return {Mode::Count, N, 1, 0}; }
  static FaultSpec rate(uint64_t Num, uint64_t Den, uint64_t Seed) {
    return {Mode::Rate, Num, Den, Seed};
  }

  /// Whether the \p Hit-th probe (1-based) fails under this spec.
  bool fires(uint64_t Hit) const;

  /// Parses one "<mode>" spec ("always", "nth=3", "rate=1/4@7", ...).
  /// Returns nullopt and fills \p Error for malformed input.
  static std::optional<FaultSpec> parse(const std::string &Text,
                                        std::string *Error = nullptr);
};

/// Thrown by instrumented code when its site fires (sites whose natural
/// error channel is an error return — the parsers, the cache's disk
/// attempts — report failure through that channel instead).
class FaultInjectedError : public std::runtime_error {
public:
  explicit FaultInjectedError(FaultSite Site);
  FaultSite site() const { return Site; }

private:
  FaultSite Site;
};

/// The process-wide injector. All methods are thread-safe; the
/// hot path (nothing armed anywhere) is a single relaxed atomic load.
class FaultInjector {
public:
  /// The singleton. First use arms sites from BALIGN_FAULT if set; a
  /// malformed value is reported to stderr and aborts (a CI sweep must
  /// never silently run without its faults).
  static FaultInjector &instance();

  /// Arms \p Site with \p Spec (resetting its hit counter).
  void arm(FaultSite Site, FaultSpec Spec);

  /// Disarms \p Site (its hit counter keeps counting).
  void disarm(FaultSite Site);

  /// Disarms every site and zeroes all hit counters.
  void reset();

  /// Probes \p Site: advances its hit counter and reports whether an
  /// armed spec fires on this hit. Always false (and hit-free) on
  /// threads inside a ScopedSuppress.
  bool shouldFail(FaultSite Site);

  /// Probes \p Site and throws FaultInjectedError when it fires.
  void throwIfFault(FaultSite Site) {
    if (shouldFail(Site))
      throw FaultInjectedError(Site);
  }

  /// Hits recorded against \p Site so far.
  uint64_t hits(FaultSite Site) const;

  /// Arms sites from a "<site>:<mode>[,...]" spec string (';' also
  /// accepted between entries). Returns false and fills \p Error on
  /// malformed input; already-parsed entries stay armed.
  bool armFromSpec(const std::string &Spec, std::string *Error = nullptr);

  /// RAII: arms a site for a scope, restoring the previous spec (and the
  /// site's counter) on exit. The unit-test workhorse.
  class ScopedFault {
  public:
    ScopedFault(FaultSite Site, FaultSpec Spec);
    ~ScopedFault();
    ScopedFault(const ScopedFault &) = delete;
    ScopedFault &operator=(const ScopedFault &) = delete;

  private:
    FaultSite Site;
    FaultSpec Saved;
    uint64_t SavedHits;
  };

  /// RAII: while alive on this thread, every shouldFail returns false
  /// without consuming a hit. Verifier passes wrap themselves in this so
  /// replaying a stage for a determinism diff (or auditing a matrix)
  /// neither trips armed faults nor perturbs the deterministic hit
  /// sequence the pipeline proper observes.
  class ScopedSuppress {
  public:
    ScopedSuppress();
    ~ScopedSuppress();
    ScopedSuppress(const ScopedSuppress &) = delete;
    ScopedSuppress &operator=(const ScopedSuppress &) = delete;
  };

private:
  FaultInjector() = default;
  void loadEnvOnce();

  mutable std::mutex Mutex;
  std::array<FaultSpec, NumFaultSites> Specs{};
  std::array<uint64_t, NumFaultSites> Hits{};
  /// Count of armed (non-Never) sites, readable without the mutex so an
  /// unarmed process pays one atomic load per probe.
  std::atomic<unsigned> ArmedCount{0};
};

} // namespace balign

#endif // BALIGN_ROBUST_FAULTINJECTOR_H
