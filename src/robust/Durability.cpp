//===- robust/Durability.cpp ----------------------------------------------===//

#include "robust/Durability.h"

#include <cerrno>

#include <fcntl.h>
#include <unistd.h>

using namespace balign;

bool balign::fsyncFd(int Fd) {
  int Rc;
  do {
    Rc = ::fsync(Fd);
  } while (Rc != 0 && errno == EINTR);
  return Rc == 0;
}

bool balign::fsyncParentDirectory(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? std::string(".")
                                               : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (Fd < 0)
    return false;
  bool Ok = fsyncFd(Fd);
  ::close(Fd);
  return Ok;
}
