//===- robust/Retry.cpp ---------------------------------------------------===//

#include "robust/Retry.h"

#include "trace/Scope.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace balign;

void balign::sleepMs(uint64_t Ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

RetryOutcome balign::retryWithBackoff(
    const RetryPolicy &Policy,
    const std::function<bool(std::string *Error)> &Attempt,
    std::string *Error, const SleepFn &Sleep) {
  RetryOutcome Outcome;
  unsigned MaxAttempts = Policy.MaxAttempts == 0 ? 1 : Policy.MaxAttempts;
  uint64_t BackoffMs = Policy.InitialBackoffMs;
  for (unsigned A = 0; A != MaxAttempts; ++A) {
    if (A != 0) {
      // A gauge, not a counter: retry totals depend on which transient
      // faults a particular run observed, not on the inputs.
      scopeGaugeAdd("shield.retries");
      if (Sleep)
        Sleep(BackoffMs);
      else
        sleepMs(BackoffMs);
      Outcome.TotalBackoffMs += BackoffMs;
      BackoffMs = std::min(BackoffMs * 2, Policy.MaxBackoffMs);
    }
    ++Outcome.Attempts;
    if (Error)
      Error->clear();
    if (Attempt(Error)) {
      Outcome.Succeeded = true;
      return Outcome;
    }
  }
  return Outcome;
}
