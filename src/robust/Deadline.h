//===- robust/Deadline.h - Cooperative deadlines with injectable clocks ---===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Cooperative time budgets for balign-shield: a Deadline wraps a
/// monotonic millisecond clock and a budget; long-running stages (the
/// iterated 3-Opt solver) poll expired() at iteration boundaries and
/// bail out with DeadlineExceeded, which the pipeline's per-procedure
/// isolation turns into a degradation-ladder fallback instead of a lost
/// run.
///
/// The clock is injectable (ClockFn), so tests drive expiry from a
/// ManualClock deterministically — no sleeping, no flaky timing — while
/// production uses steady_clock. Deadlines chain: a per-procedure budget
/// constructed with the whole-run deadline as parent expires when either
/// does.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ROBUST_DEADLINE_H
#define BALIGN_ROBUST_DEADLINE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace balign {

/// A monotonic clock returning milliseconds since an arbitrary epoch.
using ClockFn = std::function<uint64_t()>;

/// The production clock: std::chrono::steady_clock in milliseconds.
uint64_t steadyClockMs();

/// A hand-cranked clock for deterministic tests. Atomic because a test
/// cranks it from one thread while server-side watchers (the serve
/// watchdog, a drain's deadline poll) read it from theirs.
class ManualClock {
public:
  explicit ManualClock(uint64_t StartMs = 0) : NowMs(StartMs) {}

  void advance(uint64_t Ms) { NowMs.fetch_add(Ms); }
  void set(uint64_t Ms) { NowMs.store(Ms); }
  uint64_t now() const { return NowMs.load(); }

  /// The ClockFn view; the clock must outlive it.
  ClockFn fn() {
    return [this] { return NowMs.load(); };
  }

private:
  std::atomic<uint64_t> NowMs;
};

/// Thrown by budget-aware stages when their deadline expires; caught at
/// the procedure boundary by the pipeline's failure isolation.
class DeadlineExceeded : public std::runtime_error {
public:
  explicit DeadlineExceeded(const std::string &What)
      : std::runtime_error(What) {}
};

/// A wall-clock budget. Copyable only by intent of construction;
/// stages hold `const Deadline *` and poll.
class Deadline {
public:
  /// Unlimited deadline (never expires) over \p Clock.
  Deadline() = default;

  /// Expires \p BudgetMs after construction on \p Clock (empty =
  /// steadyClockMs). BudgetMs == 0 means unlimited, mirroring the CLI
  /// convention that 0 disables a budget.
  explicit Deadline(uint64_t BudgetMs, ClockFn Clock = {},
                    const Deadline *Parent = nullptr)
      : Clock(Clock ? std::move(Clock) : ClockFn(steadyClockMs)),
        Parent(Parent), Limited(BudgetMs != 0) {
    StartMs = this->Clock();
    ExpiryMs = StartMs + BudgetMs;
  }

  /// True once the clock passes the budget (or the parent expired).
  bool expired() const {
    if (Parent && Parent->expired())
      return true;
    return Limited && Clock() >= ExpiryMs;
  }

  /// Milliseconds spent since construction (0 for the unlimited default
  /// constructor, which never read its clock).
  uint64_t elapsedMs() const { return Clock ? Clock() - StartMs : 0; }

  bool isLimited() const { return Limited || (Parent && Parent->isLimited()); }

  /// Polls and throws DeadlineExceeded naming \p What when expired.
  void check(const char *What) const {
    if (expired())
      throw DeadlineExceeded(std::string(What) + " exceeded its deadline");
  }

private:
  ClockFn Clock;
  const Deadline *Parent = nullptr;
  uint64_t StartMs = 0;
  uint64_t ExpiryMs = 0;
  bool Limited = false;
};

} // namespace balign

#endif // BALIGN_ROBUST_DEADLINE_H
