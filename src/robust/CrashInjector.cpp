//===- robust/CrashInjector.cpp -------------------------------------------===//

#include "robust/CrashInjector.h"

#include <cstdio>
#include <cstdlib>

#include <unistd.h>

using namespace balign;

namespace {

/// Strict decimal parse for the nth parameter; rejects empty, signs,
/// leading junk, and overflow (mirrors FaultInjector's spec parser).
bool parseNth(const std::string &Text, uint64_t &Out) {
  if (Text.empty() || Text.size() > 19)
    return false;
  Out = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return Out != 0; // Hits are 1-based; a 0th hit can never fire.
}

} // namespace

const char *balign::crashSiteName(CrashSite Site) {
  switch (Site) {
  case CrashSite::CacheTmpWrite:
    return "cache.tmp-write";
  case CrashSite::CachePreRename:
    return "cache.pre-rename";
  case CrashSite::CachePostRename:
    return "cache.post-rename";
  case CrashSite::CheckpointAppend:
    return "checkpoint.append";
  case CrashSite::ServeResponse:
    return "serve.response";
  case CrashSite::PoolTask:
    return "pool.task";
  }
  return "?";
}

std::optional<CrashSite> balign::crashSiteByName(const std::string &Name) {
  for (size_t I = 0; I != NumCrashSites; ++I) {
    CrashSite Site = static_cast<CrashSite>(I);
    if (Name == crashSiteName(Site))
      return Site;
  }
  return std::nullopt;
}

CrashInjector &CrashInjector::instance() {
  static CrashInjector TheInjector;
  static std::once_flag EnvOnce;
  std::call_once(EnvOnce, [] { TheInjector.loadEnvOnce(); });
  return TheInjector;
}

void CrashInjector::loadEnvOnce() {
  const char *Env = std::getenv("BALIGN_CRASH");
  if (!Env || !*Env)
    return;
  std::string Error;
  if (!armFromSpec(Env, &Error)) {
    // A mistyped chaos spec must fail the run loudly, not fake a green
    // sweep in which nothing ever died.
    std::fprintf(stderr, "balign fatal: BALIGN_CRASH: %s\n", Error.c_str());
    std::abort();
  }
}

void CrashInjector::arm(CrashSite Site, uint64_t Nth) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ArmedSite = Site;
  FatalHit = Nth;
  HitCounts[static_cast<size_t>(Site)] = 0;
  Armed.store(Nth != 0, std::memory_order_relaxed);
}

void CrashInjector::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  FatalHit = 0;
  for (uint64_t &H : HitCounts)
    H = 0;
  Armed.store(false, std::memory_order_relaxed);
}

void CrashInjector::crashPoint(CrashSite Site) {
  if (!Armed.load(std::memory_order_relaxed))
    return;
  bool Die;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    uint64_t Hit = ++HitCounts[static_cast<size_t>(Site)];
    Die = FatalHit != 0 && Site == ArmedSite && Hit == FatalHit;
  }
  if (Die) {
    // _exit, not exit/abort: no atexit handlers, no stream flushes, no
    // destructors — the process state on disk is exactly what the call
    // site had durably written when it "lost power" here.
    ::_exit(CrashExitCode);
  }
}

uint64_t CrashInjector::hits(CrashSite Site) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return HitCounts[static_cast<size_t>(Site)];
}

bool CrashInjector::armFromSpec(const std::string &Spec, std::string *Error) {
  std::string SiteName = Spec;
  uint64_t Nth = 1;
  size_t Colon = Spec.find(':');
  if (Colon != std::string::npos) {
    SiteName = Spec.substr(0, Colon);
    if (!parseNth(Spec.substr(Colon + 1), Nth)) {
      if (Error)
        *Error = "expected '<site>[:nth]' with a positive nth, got '" +
                 Spec + "'";
      return false;
    }
  }
  std::optional<CrashSite> Site = crashSiteByName(SiteName);
  if (!Site) {
    std::string Known;
    for (size_t I = 0; I != NumCrashSites; ++I) {
      if (I)
        Known += ", ";
      Known += crashSiteName(static_cast<CrashSite>(I));
    }
    if (Error)
      *Error = "unknown crash site '" + SiteName + "' (known sites: " +
               Known + ")";
    return false;
  }
  arm(*Site, Nth);
  return true;
}
