//===- robust/Deadline.cpp ------------------------------------------------===//

#include "robust/Deadline.h"

#include <chrono>

using namespace balign;

uint64_t balign::steadyClockMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
