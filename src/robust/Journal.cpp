//===- robust/Journal.cpp -------------------------------------------------===//

#include "robust/Journal.h"

#include "robust/CrashInjector.h"
#include "robust/FaultInjector.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

using namespace balign;

const char AppendJournal::Magic[8] = {'B', 'A', 'L', 'N',
                                      'J', 'R', 'N', 'L'};

namespace {

constexpr size_t HeaderBytes = sizeof(AppendJournal::Magic) +
                               2 * sizeof(uint32_t);
/// Checkpoint records are file paths; anything near this is a corrupt
/// length field, not a record.
constexpr uint32_t MaxRecordBytes = 1u << 20;
/// Bytes around one record beyond its payload (u32 size + u64 checksum).
constexpr size_t RecordOverheadBytes = sizeof(uint32_t) + sizeof(uint64_t);

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>(V >> (8 * I)));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>(V >> (8 * I)));
}

uint32_t readU32(const char *P) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(P[I])) << (8 * I);
  return V;
}

uint64_t readU64(const char *P) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(static_cast<uint8_t>(P[I])) << (8 * I);
  return V;
}

/// write(2) all of it, absorbing EINTR and short writes.
bool writeAll(int Fd, const char *Data, size_t Size) {
  while (Size != 0) {
    ssize_t N = ::write(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

std::string headerBytes() {
  std::string Out(AppendJournal::Magic, sizeof(AppendJournal::Magic));
  putU32(Out, AppendJournal::FormatVersion);
  putU32(Out, 0); // Reserved.
  return Out;
}

std::string encodeRecord(const std::string &Record) {
  std::string Out;
  putU32(Out, static_cast<uint32_t>(Record.size()));
  Out += Record;
  putU64(Out, journalChecksum(Record.data(), Record.size()));
  return Out;
}

} // namespace

uint64_t balign::journalChecksum(const void *Data, size_t Size) {
  // FNV-1a with a splitmix64 finalizer: cheap, and a single flipped bit
  // anywhere in the record flips about half the checksum.
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I != Size; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  H += 0x9e3779b97f4a7c15ULL;
  H = (H ^ (H >> 30)) * 0xbf58476d1ce4e5b9ULL;
  H = (H ^ (H >> 27)) * 0x94d049bb133111ebULL;
  return H ^ (H >> 31);
}

std::string JournalStats::summary() const {
  char Buffer[192];
  std::snprintf(Buffer, sizeof(Buffer),
                "records=%llu torn-bytes=%llu recovered=%d migrated=%d "
                "appends=%llu append-failures=%llu",
                static_cast<unsigned long long>(Records),
                static_cast<unsigned long long>(TornBytes),
                RecoveredTail ? 1 : 0, MigratedLegacy ? 1 : 0,
                static_cast<unsigned long long>(Appends),
                static_cast<unsigned long long>(AppendFailures));
  return Buffer;
}

void AppendJournal::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool AppendJournal::writeHeaderLocked(std::string *Error) {
  std::string Header = headerBytes();
  if (!writeAll(Fd, Header.data(), Header.size())) {
    if (Error)
      *Error = "cannot write journal header to '" + Path +
               "': " + std::strerror(errno);
    return false;
  }
  if (Durable == Durability::Full &&
      (!fsyncFd(Fd) || !fsyncParentDirectory(Path))) {
    if (Error)
      *Error = "cannot fsync journal '" + Path + "': " +
               std::strerror(errno);
    return false;
  }
  return true;
}

bool AppendJournal::migrateLegacy(const std::string &Contents,
                                  std::string *Error) {
  // A pre-sentinel checkpoint: raw text lines. Its entries become
  // records and the file is rewritten in journal format through the
  // same fsync'd tmp-write-then-rename discipline the cache store uses,
  // so a kill mid-migration leaves either the old file or the new one,
  // never a hybrid.
  std::istringstream In(Contents);
  std::string Line;
  std::string NewContents = headerBytes();
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    Records.push_back(Line);
    NewContents += encodeRecord(Line);
  }
  Stats.MigratedLegacy = true;
  Stats.Records = Records.size();

  std::string TmpPath = Path + ".tmp." + std::to_string(::getpid());
  int TmpFd = ::open(TmpPath.c_str(),
                     O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (TmpFd < 0 || !writeAll(TmpFd, NewContents.data(),
                             NewContents.size()) ||
      (Durable == Durability::Full && !fsyncFd(TmpFd))) {
    if (Error)
      *Error = "cannot migrate legacy checkpoint '" + Path +
               "': " + std::strerror(errno);
    if (TmpFd >= 0)
      ::close(TmpFd);
    ::unlink(TmpPath.c_str());
    return false;
  }
  ::close(TmpFd);
  if (::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    if (Error)
      *Error = "cannot replace legacy checkpoint '" + Path +
               "': " + std::strerror(errno);
    ::unlink(TmpPath.c_str());
    return false;
  }
  if (Durable == Durability::Full)
    fsyncParentDirectory(Path); // Best effort: data already renamed in.
  return true;
}

bool AppendJournal::open(const std::string &Path, std::string *Error) {
  close();
  Records.clear();
  Stats = JournalStats();
  this->Path = Path;

  std::string Contents;
  {
    std::ifstream In(Path, std::ios::binary);
    if (In)
      Contents.assign((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
  }

  bool IsLegacy =
      !Contents.empty() &&
      std::memcmp(Contents.data(), Magic,
                  std::min(Contents.size(), sizeof(Magic))) != 0;
  if (IsLegacy && !migrateLegacy(Contents, Error))
    return false;

  Fd = ::open(Path.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (Fd < 0) {
    if (Error)
      *Error = "cannot open journal '" + Path + "': " +
               std::strerror(errno);
    return false;
  }
  if (IsLegacy)
    return true; // migrateLegacy already parsed and persisted.

  if (Contents.empty())
    return writeHeaderLocked(Error) || (close(), false);

  if (Contents.size() < HeaderBytes) {
    // Our magic, cut off mid-header: a kill during journal creation.
    // Start over from scratch; there were no records to lose.
    Stats.RecoveredTail = true;
    Stats.TornBytes = Contents.size();
    if (::ftruncate(Fd, 0) != 0) {
      if (Error)
        *Error = "cannot truncate torn journal '" + Path + "': " +
                 std::strerror(errno);
      close();
      return false;
    }
    return writeHeaderLocked(Error) || (close(), false);
  }

  uint32_t Version = readU32(Contents.data() + sizeof(Magic));
  if (Version != FormatVersion) {
    // Refuse rather than guess: silently clobbering a future-format
    // journal could re-run (or skip) someone's completed work.
    if (Error)
      *Error = "journal '" + Path + "' has unsupported version " +
               std::to_string(Version);
    close();
    return false;
  }

  size_t Pos = HeaderBytes;
  size_t GoodEnd = Pos;
  while (Pos < Contents.size()) {
    if (Contents.size() - Pos < sizeof(uint32_t))
      break; // Torn mid-size.
    uint32_t Size = readU32(Contents.data() + Pos);
    if (Size > MaxRecordBytes)
      break; // Corrupt length field.
    if (Contents.size() - Pos - sizeof(uint32_t) <
        Size + sizeof(uint64_t))
      break; // Torn mid-record or mid-checksum.
    const char *Bytes = Contents.data() + Pos + sizeof(uint32_t);
    uint64_t Checksum = readU64(Bytes + Size);
    if (Checksum != journalChecksum(Bytes, Size))
      break; // Bit rot at the tail; everything before it is good.
    Records.emplace_back(Bytes, Size);
    Pos += RecordOverheadBytes + Size;
    GoodEnd = Pos;
  }
  Stats.Records = Records.size();
  if (GoodEnd < Contents.size()) {
    // Truncate-and-salvage: drop the torn tail now so the next append
    // starts at a clean record boundary.
    Stats.RecoveredTail = true;
    Stats.TornBytes = Contents.size() - GoodEnd;
    if (::ftruncate(Fd, static_cast<off_t>(GoodEnd)) != 0) {
      if (Error)
        *Error = "cannot truncate torn journal '" + Path + "': " +
                 std::strerror(errno);
      close();
      return false;
    }
    if (Durable == Durability::Full && !fsyncFd(Fd)) {
      if (Error)
        *Error = "cannot fsync journal '" + Path + "': " +
                 std::strerror(errno);
      close();
      return false;
    }
  }
  return true;
}

bool AppendJournal::append(const std::string &Record, std::string *Error) {
  if (Fd < 0) {
    if (Error)
      *Error = "journal is not open";
    ++Stats.AppendFailures;
    return false;
  }
  // balign-shield fault site: an injectable append failure, reported
  // through the error return like the cache's disk faults.
  if (FaultInjector::instance().shouldFail(FaultSite::JournalAppend)) {
    if (Error)
      *Error = "injected fault at 'journal.append'";
    ++Stats.AppendFailures;
    return false;
  }

  std::string Encoded = encodeRecord(Record);
  off_t Before = ::lseek(Fd, 0, SEEK_END);
  // balign-sentinel crash site: die with only half the record written —
  // the torn tail open()'s salvage must truncate away.
  size_t Half = Encoded.size() / 2;
  bool Ok = writeAll(Fd, Encoded.data(), Half);
  if (Ok)
    CrashInjector::instance().crashPoint(CrashSite::CheckpointAppend);
  Ok = Ok && writeAll(Fd, Encoded.data() + Half, Encoded.size() - Half);
  if (Ok && Durable == Durability::Full)
    Ok = fsyncFd(Fd);
  if (!Ok) {
    if (Error)
      *Error = "cannot append to journal '" + Path + "': " +
               std::strerror(errno);
    // A partial in-process write would poison every later record on
    // reload (the scan stops at the first bad one), so roll the file
    // back to the last clean boundary immediately.
    if (Before >= 0 && ::ftruncate(Fd, Before) == 0 &&
        Durable == Durability::Full)
      fsyncFd(Fd);
    ++Stats.AppendFailures;
    return false;
  }
  Records.push_back(Record);
  ++Stats.Appends;
  return true;
}
