//===- robust/FailureReport.cpp -------------------------------------------===//

#include "robust/FailureReport.h"

#include <cstdio>

using namespace balign;

const char *balign::ladderRungName(LadderRung Rung) {
  switch (Rung) {
  case LadderRung::Tsp:
    return "tsp";
  case LadderRung::Greedy:
    return "greedy";
  case LadderRung::Original:
    return "original";
  }
  return "?";
}

const char *balign::failureKindName(FailureKind Kind) {
  switch (Kind) {
  case FailureKind::Fault:
    return "fault";
  case FailureKind::Deadline:
    return "deadline";
  case FailureKind::ResourceCap:
    return "resource-cap";
  case FailureKind::Exception:
    return "exception";
  }
  return "?";
}

std::string ProcedureFailure::str() const {
  std::string Out = "proc '" + ProcName + "': ";
  Out += failureKindName(Kind);
  Out += ": ";
  Out += What;
  Out += Skipped ? "; skipped (rung=" : "; rung=";
  Out += ladderRungName(Rung);
  if (Skipped)
    Out += ")";
  return Out;
}

size_t FailureReport::countRung(LadderRung Rung) const {
  size_t Count = 0;
  for (const ProcedureFailure &F : Failures)
    if (F.Rung == Rung)
      ++Count;
  return Count;
}

size_t FailureReport::countSkipped() const {
  size_t Count = 0;
  for (const ProcedureFailure &F : Failures)
    if (F.Skipped)
      ++Count;
  return Count;
}

std::string FailureReport::summary(size_t TotalProcs) const {
  char Buffer[160];
  size_t Greedy = countRung(LadderRung::Greedy);
  size_t Original = countRung(LadderRung::Original);
  std::snprintf(Buffer, sizeof(Buffer),
                "procs=%zu tsp=%zu greedy=%zu original=%zu skipped=%zu "
                "failures=%zu",
                TotalProcs, TotalProcs - Failures.size(), Greedy, Original,
                countSkipped(), Failures.size());
  return Buffer;
}
