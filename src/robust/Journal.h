//===- robust/Journal.h - Crash-consistent append-only record journal -----===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The balign-sentinel append journal backing `align_tool --checkpoint`:
/// an ordered log of opaque byte records with the exactly-once recovery
/// contract the chaos harness enforces — a record whose append()
/// returned true survives any subsequent kill, and a record whose
/// append() was killed mid-write is truncated away on the next open,
/// never half-returned.
///
/// On-disk format (little-endian):
///
///   [8]   magic "BALNJRNL"
///   [u32] format version
///   [u32] reserved (0)
///   record*:
///     [u32] record size in bytes
///     [record bytes]
///     [u64] checksum over the record bytes
///
/// Recovery is truncate-and-salvage, mirroring the cache store's
/// truncation semantics: open() scans records until the first torn or
/// checksum-bad one, keeps everything before it, and ftruncates the
/// file back to the last good boundary (so one crash never compounds
/// into a permanently suspicious tail). A pre-sentinel checkpoint file
/// — raw text lines with no magic — is migrated in place: its lines
/// become records and the file is rewritten in journal format via the
/// same fsync'd tmp-write-then-rename the cache store uses.
///
/// Durability: under Durability::Full (the default) every append is
/// fsync'd before it reports success, so "returned true" means "on the
/// platter". The journal.append fault site makes append failures
/// injectable; the checkpoint.append crash site kills the process with
/// half a record written, which is exactly what open()'s salvage must
/// absorb.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ROBUST_JOURNAL_H
#define BALIGN_ROBUST_JOURNAL_H

#include "robust/Durability.h"

#include <cstdint>
#include <string>
#include <vector>

namespace balign {

/// What open() found and append() has done since; greppable one-line
/// summary() for stderr reporting.
struct JournalStats {
  uint64_t Records = 0;        ///< Records salvaged by open().
  uint64_t TornBytes = 0;      ///< Bytes truncated off a torn tail.
  bool RecoveredTail = false;  ///< open() truncated a torn/bad tail.
  bool MigratedLegacy = false; ///< open() rewrote a pre-journal file.
  uint64_t Appends = 0;        ///< Successful append() calls.
  uint64_t AppendFailures = 0; ///< append() calls that failed.

  /// "records=3 torn-bytes=7 recovered=1 ..." stable key=value form.
  std::string summary() const;
};

/// Checksum guarding one journal record (exposed so tests can craft
/// and corrupt records byte-precisely).
uint64_t journalChecksum(const void *Data, size_t Size);

/// The crash-consistent append log. Not thread-safe: the one consumer
/// (the batch driver) is serial by construction.
class AppendJournal {
public:
  static constexpr uint32_t FormatVersion = 1;

  /// Journal files start with these 8 bytes; anything else non-empty at
  /// open() is treated as a legacy line-format checkpoint and migrated.
  static const char Magic[8];

  explicit AppendJournal(Durability Durable = Durability::Full)
      : Durable(Durable) {}
  ~AppendJournal() { close(); }

  AppendJournal(const AppendJournal &) = delete;
  AppendJournal &operator=(const AppendJournal &) = delete;

  /// Opens (creating if missing) the journal at \p Path, salvaging every
  /// complete record and truncating any torn tail. Returns false and
  /// fills \p Error when the file cannot be read, repaired, or migrated;
  /// the journal is then unusable (isOpen() == false).
  bool open(const std::string &Path, std::string *Error = nullptr);

  /// Appends one record. True means the record is durable (fsync'd under
  /// Durability::Full) and will be in records() after any future open().
  /// False (with \p Error filled) means the record must be treated as
  /// never written — a torn attempt will be truncated by the next open.
  bool append(const std::string &Record, std::string *Error = nullptr);

  /// Every salvaged + successfully appended record, in append order
  /// (duplicates preserved; consumers wanting set semantics dedupe).
  const std::vector<std::string> &records() const { return Records; }

  const JournalStats &stats() const { return Stats; }

  bool isOpen() const { return Fd >= 0; }

  /// Closes the descriptor; the journal stays readable via records().
  void close();

private:
  bool writeHeaderLocked(std::string *Error);
  bool migrateLegacy(const std::string &Contents, std::string *Error);

  Durability Durable;
  int Fd = -1;
  std::string Path;
  std::vector<std::string> Records;
  JournalStats Stats;
};

} // namespace balign

#endif // BALIGN_ROBUST_JOURNAL_H
