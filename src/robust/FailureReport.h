//===- robust/FailureReport.h - Structured per-procedure failure records --===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// The record-keeping half of balign-shield: when the pipeline's
/// per-procedure isolation catches a failure — an injected fault, a real
/// exception, a deadline expiry, a resource-cap trip — it lands here as a
/// structured ProcedureFailure naming the procedure, what went wrong, and
/// which degradation-ladder rung produced the layout that shipped
/// instead. The report is part of ProgramAlignment, so callers (and the
/// balign-verify bridge) see exactly what degraded without grepping
/// stderr.
///
/// The ladder follows the literature's practice of falling back to
/// cheaper orderings when the expensive optimization is infeasible:
/// iterated 3-Opt first, Pettis-Hansen-style greedy chaining second, the
/// original compiler order last (always available, never fails).
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_ROBUST_FAILUREREPORT_H
#define BALIGN_ROBUST_FAILUREREPORT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace balign {

/// The degradation ladder, best rung first. A ProcedureAlignment's Rung
/// names the algorithm that actually produced its chosen (Tsp-slot)
/// layout.
enum class LadderRung : uint8_t {
  Tsp,      ///< Iterated 3-Opt over the DTSP reduction (the full path).
  Greedy,   ///< Pettis-Hansen-style frequency-greedy chaining.
  Original, ///< The compiler's original order (the identity layout).
};

/// Returns "tsp", "greedy", or "original".
const char *ladderRungName(LadderRung Rung);

/// Why a procedure left the full path.
enum class FailureKind : uint8_t {
  Fault,       ///< An injected FaultInjector fault fired.
  Deadline,    ///< A per-procedure or whole-run deadline expired.
  ResourceCap, ///< A city-count/memory cap on the reduction tripped.
  Exception,   ///< Any other exception escaped a stage.
};

/// Returns "fault", "deadline", "resource-cap", or "exception".
const char *failureKindName(FailureKind Kind);

/// One isolated per-procedure failure.
struct ProcedureFailure {
  size_t ProcIndex = 0;     ///< Program-order index of the procedure.
  std::string ProcName;     ///< Its name, for human-readable reports.
  FailureKind Kind = FailureKind::Exception;
  std::string What;         ///< The exception's what() / guard message.
  LadderRung Rung = LadderRung::Original; ///< Rung that shipped instead.
  bool Skipped = false;     ///< True under OnErrorPolicy::Skip.

  /// "proc 'f': deadline: ...; rung=greedy" one-line rendering.
  std::string str() const;
};

/// Every failure one alignProgram call isolated, in program order
/// (deterministic at any thread count: workers record privately and the
/// drain loop appends in order).
struct FailureReport {
  std::vector<ProcedureFailure> Failures;

  bool empty() const { return Failures.empty(); }
  size_t size() const { return Failures.size(); }

  /// Procedures that shipped \p Rung due to a failure (the full-path
  /// majority is TotalProcs minus all failures).
  size_t countRung(LadderRung Rung) const;

  /// Failures with Skipped set.
  size_t countSkipped() const;

  /// "procs=7 tsp=5 greedy=2 original=0 skipped=0 failures=2" — the
  /// --cache-stats-style counter line (stable key=value form, greppable
  /// by CI). \p TotalProcs is the program's procedure count.
  std::string summary(size_t TotalProcs) const;
};

} // namespace balign

#endif // BALIGN_ROBUST_FAILUREREPORT_H
