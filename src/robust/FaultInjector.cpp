//===- robust/FaultInjector.cpp -------------------------------------------===//

#include "robust/FaultInjector.h"

#include "trace/Scope.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace balign;

namespace {

/// SplitMix64: the seeded per-hit coin of FaultSpec::Mode::Rate.
uint64_t splitmix64(uint64_t Z) {
  Z += 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Suppression depth of the current thread (ScopedSuppress nests).
thread_local unsigned SuppressDepth = 0;

/// Strict decimal parse for spec parameters; rejects empty, signs,
/// leading junk, and overflow.
bool parseSpecInt(const std::string &Text, uint64_t &Out) {
  if (Text.empty() || Text.size() > 19)
    return false;
  Out = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

} // namespace

const char *balign::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::ProfileParse:
    return "profile.parse";
  case FaultSite::TspTransform:
    return "tsp.transform";
  case FaultSite::TspSolve:
    return "tsp.solve";
  case FaultSite::AlignGreedy:
    return "align.greedy";
  case FaultSite::PoolTask:
    return "pool.task";
  case FaultSite::CacheLoad:
    return "cache.load";
  case FaultSite::CacheFlush:
    return "cache.flush";
  case FaultSite::ServeFrame:
    return "serve.frame";
  case FaultSite::AlignChain:
    return "align.chain";
  case FaultSite::JournalAppend:
    return "journal.append";
  case FaultSite::ClientConnect:
    return "client.connect";
  case FaultSite::DisplaceFixpoint:
    return "displace.fixpoint";
  }
  return "?";
}

std::optional<FaultSite> balign::faultSiteByName(const std::string &Name) {
  for (size_t I = 0; I != NumFaultSites; ++I) {
    FaultSite Site = static_cast<FaultSite>(I);
    if (Name == faultSiteName(Site))
      return Site;
  }
  return std::nullopt;
}

bool FaultSpec::fires(uint64_t Hit) const {
  switch (M) {
  case Mode::Never:
    return false;
  case Mode::Always:
    return true;
  case Mode::Once:
    return Hit == 1;
  case Mode::Nth:
    return Hit == K;
  case Mode::Every:
    return K != 0 && Hit % K == 0;
  case Mode::Count:
    return Hit <= K;
  case Mode::Rate:
    return D != 0 && splitmix64(Seed ^ Hit) % D < K;
  }
  return false;
}

std::optional<FaultSpec> FaultSpec::parse(const std::string &Text,
                                          std::string *Error) {
  auto fail = [&](const std::string &Message) -> std::optional<FaultSpec> {
    if (Error)
      *Error = Message;
    return std::nullopt;
  };
  if (Text == "always")
    return always();
  if (Text == "once")
    return once();
  size_t Eq = Text.find('=');
  if (Eq == std::string::npos || Eq + 1 == Text.size())
    return fail("unknown fault mode '" + Text +
                "' (want always, once, nth=K, every=K, count=K, or "
                "rate=N/D@S)");
  std::string Mode = Text.substr(0, Eq);
  std::string Arg = Text.substr(Eq + 1);
  uint64_t K = 0;
  if (Mode == "nth" || Mode == "every" || Mode == "count") {
    if (!parseSpecInt(Arg, K) || K == 0)
      return fail("fault mode '" + Mode + "' wants a positive integer, got '" +
                  Arg + "'");
    if (Mode == "nth")
      return nth(K);
    if (Mode == "every")
      return every(K);
    return count(K);
  }
  if (Mode == "rate") {
    size_t Slash = Arg.find('/');
    size_t At = Arg.find('@');
    if (Slash == std::string::npos || At == std::string::npos || At < Slash)
      return fail("fault mode 'rate' wants N/D@SEED, got '" + Arg + "'");
    uint64_t Num = 0, Den = 0, Seed = 0;
    if (!parseSpecInt(Arg.substr(0, Slash), Num) ||
        !parseSpecInt(Arg.substr(Slash + 1, At - Slash - 1), Den) ||
        !parseSpecInt(Arg.substr(At + 1), Seed) || Den == 0)
      return fail("fault mode 'rate' wants N/D@SEED with D > 0, got '" + Arg +
                  "'");
    return rate(Num, Den, Seed);
  }
  return fail("unknown fault mode '" + Mode + "'");
}

FaultInjectedError::FaultInjectedError(FaultSite Site)
    : std::runtime_error(std::string("injected fault at '") +
                         faultSiteName(Site) + "'"),
      Site(Site) {}

FaultInjector &FaultInjector::instance() {
  static FaultInjector TheInjector;
  static std::once_flag EnvOnce;
  std::call_once(EnvOnce, [] { TheInjector.loadEnvOnce(); });
  return TheInjector;
}

void FaultInjector::loadEnvOnce() {
  const char *Env = std::getenv("BALIGN_FAULT");
  if (!Env || !*Env)
    return;
  std::string Error;
  if (!armFromSpec(Env, &Error)) {
    // A mistyped CI spec must fail the run loudly, not fake a green
    // sweep with no faults armed.
    std::fprintf(stderr, "balign fatal: BALIGN_FAULT: %s\n", Error.c_str());
    std::abort();
  }
}

void FaultInjector::arm(FaultSite Site, FaultSpec Spec) {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t I = static_cast<size_t>(Site);
  bool WasArmed = Specs[I].M != FaultSpec::Mode::Never;
  bool IsArmed = Spec.M != FaultSpec::Mode::Never;
  Specs[I] = Spec;
  Hits[I] = 0;
  if (IsArmed != WasArmed)
    ArmedCount.fetch_add(IsArmed ? 1 : -1, std::memory_order_relaxed);
}

void FaultInjector::disarm(FaultSite Site) { arm(Site, FaultSpec::never()); }

void FaultInjector::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Specs.fill(FaultSpec::never());
  Hits.fill(0);
  ArmedCount.store(0, std::memory_order_relaxed);
}

bool FaultInjector::shouldFail(FaultSite Site) {
  if (ArmedCount.load(std::memory_order_relaxed) == 0)
    return false;
  if (SuppressDepth != 0)
    return false;
  bool Fired;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    size_t I = static_cast<size_t>(Site);
    uint64_t Hit = ++Hits[I];
    Fired = Specs[I].fires(Hit);
  }
  // The total fired count per site is a pure function of the spec and
  // the number of probes, even when parallel workers interleave *which*
  // hit indices they consume — so this is a counter, not a gauge.
  if (Fired)
    scopeCounterAdd("shield.faults-fired");
  return Fired;
}

uint64_t FaultInjector::hits(FaultSite Site) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits[static_cast<size_t>(Site)];
}

bool FaultInjector::armFromSpec(const std::string &Spec, std::string *Error) {
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find_first_of(",;", Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Entry = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Entry.empty())
      continue;
    size_t Colon = Entry.find(':');
    if (Colon == std::string::npos) {
      if (Error)
        *Error = "expected '<site>:<mode>', got '" + Entry + "'";
      return false;
    }
    std::string SiteName = Entry.substr(0, Colon);
    std::optional<FaultSite> Site = faultSiteByName(SiteName);
    if (!Site) {
      std::string Known;
      for (size_t I = 0; I != NumFaultSites; ++I) {
        if (I)
          Known += ", ";
        Known += faultSiteName(static_cast<FaultSite>(I));
      }
      if (Error)
        *Error = "unknown fault site '" + SiteName + "' (known sites: " +
                 Known + ")";
      return false;
    }
    std::string SpecError;
    std::optional<FaultSpec> Parsed =
        FaultSpec::parse(Entry.substr(Colon + 1), &SpecError);
    if (!Parsed) {
      if (Error)
        *Error = SiteName + ": " + SpecError;
      return false;
    }
    arm(*Site, *Parsed);
  }
  return true;
}

FaultInjector::ScopedFault::ScopedFault(FaultSite Site, FaultSpec Spec)
    : Site(Site) {
  FaultInjector &Inj = FaultInjector::instance();
  {
    std::lock_guard<std::mutex> Lock(Inj.Mutex);
    Saved = Inj.Specs[static_cast<size_t>(Site)];
    SavedHits = Inj.Hits[static_cast<size_t>(Site)];
  }
  Inj.arm(Site, Spec);
}

FaultInjector::ScopedFault::~ScopedFault() {
  FaultInjector &Inj = FaultInjector::instance();
  Inj.arm(Site, Saved);
  std::lock_guard<std::mutex> Lock(Inj.Mutex);
  Inj.Hits[static_cast<size_t>(Site)] = SavedHits;
}

FaultInjector::ScopedSuppress::ScopedSuppress() { ++SuppressDepth; }

FaultInjector::ScopedSuppress::~ScopedSuppress() { --SuppressDepth; }
