//===- support/Format.h - Human-readable number formatting --------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Formatting helpers for the benchmark tables: counts with M/K suffixes
/// (matching the paper's "11.8M executed branches" style), fixed-point
/// decimals, percentages, and normalized ratios.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SUPPORT_FORMAT_H
#define BALIGN_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace balign {

/// Formats \p Value with \p Decimals digits after the point.
std::string formatFixed(double Value, unsigned Decimals);

/// Formats a count using the paper's style: "0.1M", "11.8M", "42.0M" for
/// millions, "3.4K" for thousands, plain digits below 1000.
std::string formatCount(uint64_t Value);

/// Formats \p Ratio (e.g. 0.6421) as a percentage string "64.21%".
std::string formatPercent(double Ratio, unsigned Decimals = 2);

/// Formats a normalized value relative to 1.0, e.g. "0.67".
std::string formatNormalized(double Value);

} // namespace balign

#endif // BALIGN_SUPPORT_FORMAT_H
