//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

#include "trace/Scope.h"

#include <cassert>

using namespace balign;

namespace {

/// Identifies the pool (and worker slot) the current thread belongs to,
/// so nested submit() calls can push to the submitting worker's own
/// deque instead of round-robining through a cold queue.
thread_local ThreadPool *CurrentPool = nullptr;
thread_local size_t CurrentWorker = 0;

} // namespace

unsigned ThreadPool::hardwareThreads() {
  unsigned H = std::thread::hardware_concurrency();
  return H != 0 ? H : 1u;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  unsigned N = NumThreads != 0 ? NumThreads : hardwareThreads();
  Queues.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

// NOLINTNEXTLINE(bugprone-exception-escape): join() throws only for
// self-join or joining a detached thread, neither of which the pool's
// fixed worker set can produce.
ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Guard(StateMutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(Task T) {
  assert(T && "submitted an empty task");
  size_t Target;
  bool Nested = CurrentPool == this;
  {
    std::lock_guard<std::mutex> Guard(StateMutex);
    assert(!Stopping && "submit after destruction began");
    ++QueuedTasks;
    // Gauges, not counters: serial pipelines never construct a pool, so
    // pool metrics are inherently thread-count-dependent.
    scopeGaugeAdd("pool.tasks");
    scopeGaugeMax("pool.queue-depth", QueuedTasks);
    Target = Nested ? CurrentWorker : NextQueue++ % Queues.size();
  }
  {
    std::lock_guard<std::mutex> Guard(Queues[Target]->M);
    if (Nested)
      Queues[Target]->Q.push_front(std::move(T));
    else
      Queues[Target]->Q.push_back(std::move(T));
  }
  WorkAvailable.notify_one();
}

bool ThreadPool::tryRunOneTask(size_t SelfIndex) {
  Task T;
  bool Claimed = false;
  // Own deque first (front: most recently pushed nested work, LIFO).
  {
    std::lock_guard<std::mutex> Guard(Queues[SelfIndex]->M);
    if (!Queues[SelfIndex]->Q.empty()) {
      T = std::move(Queues[SelfIndex]->Q.front());
      Queues[SelfIndex]->Q.pop_front();
      Claimed = true;
    }
  }
  // Steal from the back of a victim's deque (FIFO: the oldest work, the
  // piece the victim is least likely to want next).
  for (size_t Step = 1; !Claimed && Step != Queues.size(); ++Step) {
    size_t Victim = (SelfIndex + Step) % Queues.size();
    std::lock_guard<std::mutex> Guard(Queues[Victim]->M);
    if (!Queues[Victim]->Q.empty()) {
      T = std::move(Queues[Victim]->Q.back());
      Queues[Victim]->Q.pop_back();
      Claimed = true;
      scopeGaugeAdd("pool.steals");
    }
  }
  if (!Claimed)
    return false;

  {
    std::lock_guard<std::mutex> Guard(StateMutex);
    --QueuedTasks;
    ++RunningTasks;
  }
  try {
    T();
  } catch (...) {
    std::lock_guard<std::mutex> Guard(StateMutex);
    if (!FirstError)
      FirstError = std::current_exception();
  }
  bool Drained;
  {
    std::lock_guard<std::mutex> Guard(StateMutex);
    --RunningTasks;
    Drained = QueuedTasks == 0 && RunningTasks == 0;
  }
  if (Drained)
    AllDone.notify_all();
  return true;
}

void ThreadPool::workerLoop(size_t Index) {
  CurrentPool = this;
  CurrentWorker = Index;
  while (true) {
    if (tryRunOneTask(Index))
      continue;
    std::unique_lock<std::mutex> Lock(StateMutex);
    if (QueuedTasks > 0) {
      // A submit announced work we could not find yet (its push may still
      // be in flight) or another worker grabbed it; rescan.
      Lock.unlock();
      std::this_thread::yield();
      continue;
    }
    if (Stopping)
      break;
    WorkAvailable.wait(Lock);
  }
  CurrentPool = nullptr;
}

void ThreadPool::wait() {
  assert(CurrentPool != this && "wait() called from a pool worker");
  std::unique_lock<std::mutex> Lock(StateMutex);
  AllDone.wait(Lock,
               [this] { return QueuedTasks == 0 && RunningTasks == 0; });
  if (FirstError) {
    std::exception_ptr E = FirstError;
    FirstError = nullptr;
    Lock.unlock();
    std::rethrow_exception(E);
  }
}

void balign::parallelFor(ThreadPool &Pool, size_t Begin, size_t End,
                         const std::function<void(size_t)> &Fn) {
  for (size_t I = Begin; I < End; ++I)
    Pool.submit([&Fn, I] { Fn(I); });
  Pool.wait();
}
