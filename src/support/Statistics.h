//===- support/Statistics.h - Small numeric summaries -------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Mean / geometric-mean / percentile helpers used by the benchmark
/// harnesses when aggregating per-benchmark results into the summary rows
/// the paper reports (e.g. "greedy removes a mean of 33% of the control
/// penalty").
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SUPPORT_STATISTICS_H
#define BALIGN_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace balign {

/// Arithmetic mean; returns 0 for an empty sample.
double mean(const std::vector<double> &Values);

/// Geometric mean; all values must be positive. Returns 0 for an empty
/// sample.
double geomean(const std::vector<double> &Values);

/// Population standard deviation; returns 0 for fewer than two samples.
double stddev(const std::vector<double> &Values);

/// Median (by sorting a copy); returns 0 for an empty sample.
double median(std::vector<double> Values);

/// Exclusive percentile in [0, 100] using linear interpolation between
/// order statistics; returns 0 for an empty sample.
double percentile(std::vector<double> Values, double Pct);

} // namespace balign

#endif // BALIGN_SUPPORT_STATISTICS_H
