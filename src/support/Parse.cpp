//===- support/Parse.cpp --------------------------------------------------===//

#include "support/Parse.h"

using namespace balign;

std::optional<uint64_t> balign::parseFlagInt(std::string_view Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Value > (UINT64_MAX - Digit) / 10)
      return std::nullopt; // Would overflow uint64_t.
    Value = Value * 10 + Digit;
  }
  return Value;
}

std::optional<uint64_t> balign::parseFlagInt(std::string_view Text,
                                             uint64_t Max) {
  std::optional<uint64_t> Value = parseFlagInt(Text);
  if (Value && *Value > Max)
    return std::nullopt;
  return Value;
}

std::optional<double> balign::parseFlagDouble(std::string_view Text) {
  size_t Dot = Text.find('.');
  std::string_view Whole = Text.substr(0, Dot);
  std::optional<uint64_t> Int = parseFlagInt(Whole);
  if (!Int)
    return std::nullopt;
  double Value = static_cast<double>(*Int);
  if (Dot == std::string_view::npos)
    return Value;
  std::string_view Frac = Text.substr(Dot + 1);
  if (Frac.empty())
    return std::nullopt; // "1." is not a complete literal.
  double Scale = 1.0;
  for (char C : Frac) {
    if (C < '0' || C > '9')
      return std::nullopt;
    Scale /= 10.0;
    Value += static_cast<double>(C - '0') * Scale;
  }
  return Value;
}
