//===- support/Parse.cpp --------------------------------------------------===//

#include "support/Parse.h"

using namespace balign;

std::optional<uint64_t> balign::parseFlagInt(std::string_view Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Value > (UINT64_MAX - Digit) / 10)
      return std::nullopt; // Would overflow uint64_t.
    Value = Value * 10 + Digit;
  }
  return Value;
}

std::optional<uint64_t> balign::parseFlagInt(std::string_view Text,
                                             uint64_t Max) {
  std::optional<uint64_t> Value = parseFlagInt(Text);
  if (Value && *Value > Max)
    return std::nullopt;
  return Value;
}
