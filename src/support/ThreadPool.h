//===- support/ThreadPool.h - Work-stealing thread pool -------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the per-procedure parallelism of
/// the alignment pipeline. Each worker owns a deque: tasks submitted from
/// a worker go to the front of its own deque (LIFO, for locality), tasks
/// submitted from outside are distributed round-robin, and an idle worker
/// steals from the back of a victim's deque. The pool never affects
/// algorithmic results — it only decides *where* independent per-procedure
/// work runs; all randomness stays in per-procedure seeded streams.
///
/// Exceptions thrown by tasks are captured; the first one is rethrown by
/// wait() (the rest are dropped), so a reportFatal raised on a worker
/// surfaces on the submitting thread.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SUPPORT_THREADPOOL_H
#define BALIGN_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace balign {

/// Fixed-size work-stealing thread pool.
class ThreadPool {
public:
  using Task = std::function<void()>;

  /// Creates a pool with \p NumThreads workers; 0 means one worker per
  /// hardware thread (hardwareThreads()).
  explicit ThreadPool(unsigned NumThreads = 0);

  /// Drains all submitted tasks, then joins the workers. Exceptions left
  /// unclaimed by wait() are discarded.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p T. Safe to call from worker threads (nested submission
  /// pushes to the submitting worker's own deque).
  void submit(Task T);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task raised (if one did). Must be called from
  /// outside the pool's workers.
  void wait();

  /// max(1, std::thread::hardware_concurrency()).
  static unsigned hardwareThreads();

private:
  struct WorkerQueue {
    std::mutex M;
    std::deque<Task> Q;
  };

  void workerLoop(size_t Index);
  bool tryRunOneTask(size_t SelfIndex);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;

  /// Guards sleeping/wakeup and completion signalling.
  std::mutex StateMutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;

  size_t QueuedTasks = 0;   ///< Tasks sitting in some deque.
  size_t RunningTasks = 0;  ///< Tasks currently executing.
  size_t NextQueue = 0;     ///< Round-robin cursor for external submits.
  bool Stopping = false;

  std::exception_ptr FirstError;
};

/// Runs Fn(I) for every I in [Begin, End) on \p Pool and waits for all of
/// them (rethrowing the first task exception). Results must be written to
/// index-addressed storage by the callback; that is what keeps parallel
/// execution order-independent.
void parallelFor(ThreadPool &Pool, size_t Begin, size_t End,
                 const std::function<void(size_t)> &Fn);

} // namespace balign

#endif // BALIGN_SUPPORT_THREADPOOL_H
