//===- support/Flags.cpp --------------------------------------------------===//

#include "support/Flags.h"

#include "support/Parse.h"

#include <cstdio>
#include <optional>

using namespace balign;

const char *balign::flagValue(const char *Flag, int Argc, char **Argv,
                              int &I) {
  if (I + 1 >= Argc) {
    std::fprintf(stderr, "error: %s requires a value\n", Flag);
    return nullptr;
  }
  return Argv[++I];
}

bool balign::flagUInt(const char *Flag, int Argc, char **Argv, int &I,
                      uint64_t &Out, uint64_t Max) {
  const char *V = flagValue(Flag, Argc, Argv, I);
  if (!V)
    return false;
  std::optional<uint64_t> N = parseFlagInt(V, Max);
  if (!N) {
    std::fprintf(stderr,
                 "error: %s wants a decimal integer in [0, %llu], got '%s'\n",
                 Flag, static_cast<unsigned long long>(Max), V);
    return false;
  }
  Out = *N;
  return true;
}

bool balign::flagUIntInRange(const char *Flag, int Argc, char **Argv, int &I,
                             uint64_t &Out, uint64_t Min, uint64_t Max) {
  const char *V = flagValue(Flag, Argc, Argv, I);
  if (!V)
    return false;
  std::optional<uint64_t> N = parseFlagInt(V, Max);
  if (!N || *N < Min) {
    std::fprintf(
        stderr, "error: %s wants a decimal integer in [%llu, %llu], got '%s'\n",
        Flag, static_cast<unsigned long long>(Min),
        static_cast<unsigned long long>(Max), V);
    return false;
  }
  Out = *N;
  return true;
}

bool balign::flagDoublePair(const char *Flag, int Argc, char **Argv, int &I,
                            double &OutA, double &OutB, double Max) {
  const char *V = flagValue(Flag, Argc, Argv, I);
  if (!V)
    return false;
  std::string_view Text(V);
  size_t Comma = Text.find(',');
  std::optional<double> A, B;
  if (Comma != std::string_view::npos) {
    A = parseFlagDouble(Text.substr(0, Comma));
    B = parseFlagDouble(Text.substr(Comma + 1));
  }
  if (!A || !B || *A > Max || *B > Max) {
    std::fprintf(stderr,
                 "error: %s wants 'F,B' with decimals in [0, %g], got '%s'\n",
                 Flag, Max, V);
    return false;
  }
  OutA = *A;
  OutB = *B;
  return true;
}
