//===- support/Flags.cpp --------------------------------------------------===//

#include "support/Flags.h"

#include "support/Parse.h"

#include <cstdio>
#include <optional>

using namespace balign;

const char *balign::flagValue(const char *Flag, int Argc, char **Argv,
                              int &I) {
  if (I + 1 >= Argc) {
    std::fprintf(stderr, "error: %s requires a value\n", Flag);
    return nullptr;
  }
  return Argv[++I];
}

bool balign::flagUInt(const char *Flag, int Argc, char **Argv, int &I,
                      uint64_t &Out, uint64_t Max) {
  const char *V = flagValue(Flag, Argc, Argv, I);
  if (!V)
    return false;
  std::optional<uint64_t> N = parseFlagInt(V, Max);
  if (!N) {
    std::fprintf(stderr,
                 "error: %s wants a decimal integer in [0, %llu], got '%s'\n",
                 Flag, static_cast<unsigned long long>(Max), V);
    return false;
  }
  Out = *N;
  return true;
}
