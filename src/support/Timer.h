//===- support/Timer.h - Wall-clock stopwatch ----------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Stopwatches used only for reporting (the Table 2 compile-time harness
/// and the pipeline's per-stage accounting); all algorithmic results in
/// the reproduction are deterministic and never read the clock.
/// Stopwatch reads the wall clock; CpuStopwatch reads the calling
/// thread's CPU clock, which keeps per-stage sums meaningful when the
/// parallel pipeline oversubscribes the machine.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SUPPORT_TIMER_H
#define BALIGN_SUPPORT_TIMER_H

#include <chrono>
#include <ctime>

namespace balign {

/// Wall-clock stopwatch with millisecond-precision reporting.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double milliseconds() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Per-thread CPU-time stopwatch: measures the time the calling thread
/// actually spent executing, excluding time it sat descheduled. The
/// pipeline's stage timers use this so "CPU-seconds per stage" does not
/// inflate when workers time-share cores (e.g. Threads > hardware
/// threads). Start and read on the same thread.
class CpuStopwatch {
public:
  CpuStopwatch() : Start(now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = now(); }

  /// CPU-seconds this thread consumed since construction or reset().
  double seconds() const { return now() - Start; }

private:
  static double now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec Ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &Ts);
    return static_cast<double>(Ts.tv_sec) +
           static_cast<double>(Ts.tv_nsec) * 1e-9;
#else
    // No per-thread CPU clock on this platform; fall back to wall time.
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
#endif
  }

  double Start;
};

} // namespace balign

#endif // BALIGN_SUPPORT_TIMER_H
