//===- support/Timer.h - Wall-clock stopwatch ----------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// A simple stopwatch used only by the Table 2 compile-time harness; all
/// algorithmic results in the reproduction are deterministic and never
/// read the clock.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SUPPORT_TIMER_H
#define BALIGN_SUPPORT_TIMER_H

#include <chrono>

namespace balign {

/// Wall-clock stopwatch with millisecond-precision reporting.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double milliseconds() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace balign

#endif // BALIGN_SUPPORT_TIMER_H
