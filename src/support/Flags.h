//===- support/Flags.h - Checked CLI flag consumption ---------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Shared, checked consumption of value-taking command-line flags. Every
/// bundled tool used to hand-roll the same two moves — "take the next
/// argv slot as this flag's value" and "parse it as a strict decimal" —
/// and the copies drifted: different error texts, and loops that could
/// walk past argv when the value was missing. These helpers are the one
/// checked implementation; they print a uniform usage error to stderr
/// and report failure instead of reading out of bounds or truncating.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SUPPORT_FLAGS_H
#define BALIGN_SUPPORT_FLAGS_H

#include <cstdint>

namespace balign {

/// Consumes the value of \p Flag: advances \p I and returns Argv[I].
/// When the flag is the last argument, prints
/// "error: <flag> requires a value" to stderr and returns nullptr
/// without advancing.
const char *flagValue(const char *Flag, int Argc, char **Argv, int &I);

/// Consumes and strictly parses the numeric value of \p Flag through
/// parseFlagInt (complete decimal literal, no signs/whitespace/suffixes,
/// result <= \p Max). On failure prints
/// "error: <flag> wants a decimal integer in [0, <max>], got '<value>'"
/// (or the missing-value error) to stderr and returns false; \p Out is
/// written only on success.
bool flagUInt(const char *Flag, int Argc, char **Argv, int &I, uint64_t &Out,
              uint64_t Max = UINT64_MAX);

/// Like flagUInt with a lower bound too: values outside [Min, Max] print
/// "error: <flag> wants a decimal integer in [<min>, <max>], got '<value>'"
/// and report failure.
bool flagUIntInRange(const char *Flag, int Argc, char **Argv, int &I,
                     uint64_t &Out, uint64_t Min, uint64_t Max);

/// Consumes and strictly parses a "<a>,<b>" pair of non-negative decimal
/// numbers (parseFlagDouble literals, each <= \p Max) — the shape of
/// --exttsp-weights. On failure prints
/// "error: <flag> wants 'F,B' with decimals in [0, <max>], got '<value>'"
/// (or the missing-value error) and returns false; the outputs are
/// written only on success.
bool flagDoublePair(const char *Flag, int Argc, char **Argv, int &I,
                    double &OutA, double &OutB, double Max);

} // namespace balign

#endif // BALIGN_SUPPORT_FLAGS_H
