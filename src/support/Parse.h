//===- support/Parse.h - Strict CLI value parsing -------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Strict parsing for command-line flag values. std::strtoull silently
/// accepts trailing garbage ("12x" parses as 12), leading whitespace,
/// signs, and saturates on overflow — all of which turn a typo into a
/// quietly wrong run. Every numeric flag of the bundled tools goes
/// through parseFlagInt instead, which accepts nothing but a complete,
/// in-range decimal literal.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SUPPORT_PARSE_H
#define BALIGN_SUPPORT_PARSE_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace balign {

/// Parses \p Text as a non-negative decimal integer. The entire string
/// must consist of digits: empty strings, signs, whitespace, hex/octal
/// prefixes, suffixes ("12x"), and values that do not fit in uint64_t
/// are all rejected with std::nullopt.
std::optional<uint64_t> parseFlagInt(std::string_view Text);

/// Same, additionally rejecting parsed values above \p Max (useful for
/// flags stored in narrower types, e.g. a thread count).
std::optional<uint64_t> parseFlagInt(std::string_view Text, uint64_t Max);

/// Parses \p Text as a non-negative decimal number with an optional
/// fractional part: digits, optionally followed by '.' and more digits
/// ("0", "1.5", "0.25"). As with parseFlagInt, nothing else is accepted:
/// no signs, whitespace, exponents, leading/trailing dots, or suffixes —
/// NaN and infinity are unspellable by construction.
std::optional<double> parseFlagDouble(std::string_view Text);

} // namespace balign

#endif // BALIGN_SUPPORT_PARSE_H
