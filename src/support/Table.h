//===- support/Table.h - ASCII table rendering ---------------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// A small column-aligned ASCII table used by the benchmark harnesses to
/// print the paper's tables and figure series. Columns are left-aligned
/// for text and right-aligned for numbers; the renderer pads to the widest
/// cell per column.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SUPPORT_TABLE_H
#define BALIGN_SUPPORT_TABLE_H

#include <cstddef>
#include <string>
#include <vector>

namespace balign {

/// Column-aligned text table builder.
class TextTable {
public:
  enum class AlignKind { Left, Right };

  /// Adds a column with header \p Name. Call before any addRow.
  void addColumn(std::string Name, AlignKind Align = AlignKind::Left);

  /// Adds a data row; must have exactly as many cells as columns.
  void addRow(std::vector<std::string> Cells);

  /// Adds a horizontal separator row.
  void addSeparator();

  /// Renders the table, including the header and a separator under it.
  std::string render() const;

  size_t numColumns() const { return Columns.size(); }
  size_t numRows() const { return Rows.size(); }

private:
  struct Column {
    std::string Name;
    AlignKind Align;
  };
  struct Row {
    bool IsSeparator = false;
    std::vector<std::string> Cells;
  };

  std::vector<Column> Columns;
  std::vector<Row> Rows;
};

} // namespace balign

#endif // BALIGN_SUPPORT_TABLE_H
