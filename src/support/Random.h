//===- support/Random.h - Deterministic random number generation -------===//
//
// Part of the balign project: a reproduction of "Near-optimal
// Intraprocedural Branch Alignment" (Young, Johnson, Karger, Smith;
// PLDI 1997).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable pseudo-random number generation used everywhere
/// randomness is needed (trace generation, randomized tour construction,
/// double-bridge kicks). The whole reproduction is deterministic given the
/// seeds recorded in the workload specs, so every table and figure can be
/// regenerated bit-for-bit.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_SUPPORT_RANDOM_H
#define BALIGN_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace balign {

/// SplitMix64 step; used to expand a single seed into a full generator
/// state. Reference: Steele, Lea, Flood, "Fast splittable pseudorandom
/// number generators", OOPSLA 2014.
inline uint64_t splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// xoshiro256** generator (Blackman & Vigna). Small, fast, and high
/// quality; state seeded via SplitMix64 so that nearby seeds give
/// uncorrelated streams.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x5eedULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed.
  void reseed(uint64_t Seed) {
    uint64_t Mix = Seed;
    for (uint64_t &Word : State)
      Word = splitMix64(Mix);
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be nonzero.
  /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a nonzero bound");
    while (true) {
      uint64_t X = next();
      __uint128_t M = static_cast<__uint128_t>(X) * Bound;
      uint64_t Low = static_cast<uint64_t>(M);
      if (Low >= Bound || Low >= (0 - Bound) % Bound)
        return static_cast<uint64_t>(M >> 64);
    }
  }

  /// Returns a uniform size_t index into a container of size \p Size.
  size_t nextIndex(size_t Size) {
    return static_cast<size_t>(nextBelow(static_cast<uint64_t>(Size)));
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

  /// Fisher-Yates shuffle of \p Values.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I)
      std::swap(Values[I - 1], Values[nextIndex(I)]);
  }

  /// Derives an independent child generator; used to give each procedure /
  /// workload / solver run its own stream without coupling their draws.
  Rng fork() { return Rng(next()); }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace balign

#endif // BALIGN_SUPPORT_RANDOM_H
