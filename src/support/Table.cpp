//===- support/Table.cpp --------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cassert>

using namespace balign;

void TextTable::addColumn(std::string Name, AlignKind Align) {
  assert(Rows.empty() && "add all columns before adding rows");
  Columns.push_back({std::move(Name), Align});
}

void TextTable::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Columns.size() && "row arity mismatch");
  Rows.push_back({/*IsSeparator=*/false, std::move(Cells)});
}

void TextTable::addSeparator() {
  Rows.push_back({/*IsSeparator=*/true, {}});
}

std::string TextTable::render() const {
  std::vector<size_t> Widths(Columns.size(), 0);
  for (size_t C = 0; C != Columns.size(); ++C)
    Widths[C] = Columns[C].Name.size();
  for (const Row &R : Rows) {
    if (R.IsSeparator)
      continue;
    for (size_t C = 0; C != R.Cells.size(); ++C)
      Widths[C] = std::max(Widths[C], R.Cells[C].size());
  }

  auto renderCell = [&](const std::string &Text, size_t C) {
    std::string Pad(Widths[C] - Text.size(), ' ');
    return Columns[C].Align == AlignKind::Left ? Text + Pad : Pad + Text;
  };
  auto renderSeparator = [&] {
    std::string Line;
    for (size_t C = 0; C != Columns.size(); ++C) {
      Line += std::string(Widths[C], '-');
      Line += C + 1 == Columns.size() ? "\n" : "-+-";
    }
    return Line;
  };

  std::string Out;
  for (size_t C = 0; C != Columns.size(); ++C) {
    Out += renderCell(Columns[C].Name, C);
    Out += C + 1 == Columns.size() ? "\n" : " | ";
  }
  Out += renderSeparator();
  for (const Row &R : Rows) {
    if (R.IsSeparator) {
      Out += renderSeparator();
      continue;
    }
    for (size_t C = 0; C != R.Cells.size(); ++C) {
      Out += renderCell(R.Cells[C], C);
      Out += C + 1 == Columns.size() ? "\n" : " | ";
    }
  }
  return Out;
}
