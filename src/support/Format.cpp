//===- support/Format.cpp -------------------------------------------------===//

#include "support/Format.h"

#include <cmath>
#include <cstdio>

using namespace balign;

std::string balign::formatFixed(double Value, unsigned Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

std::string balign::formatCount(uint64_t Value) {
  if (Value >= 1000000)
    return formatFixed(static_cast<double>(Value) / 1e6, 1) + "M";
  if (Value >= 1000)
    return formatFixed(static_cast<double>(Value) / 1e3, 1) + "K";
  return std::to_string(Value);
}

std::string balign::formatPercent(double Ratio, unsigned Decimals) {
  return formatFixed(Ratio * 100.0, Decimals) + "%";
}

std::string balign::formatNormalized(double Value) {
  return formatFixed(Value, 3);
}
