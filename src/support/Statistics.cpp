//===- support/Statistics.cpp --------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace balign;

double balign::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double balign::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double balign::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double SquareSum = 0.0;
  for (double V : Values)
    SquareSum += (V - M) * (V - M);
  return std::sqrt(SquareSum / static_cast<double>(Values.size()));
}

double balign::median(std::vector<double> Values) {
  return percentile(std::move(Values), 50.0);
}

double balign::percentile(std::vector<double> Values, double Pct) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values.front();
  double Rank = (Pct / 100.0) * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] + (Values[Hi] - Values[Lo]) * Frac;
}
