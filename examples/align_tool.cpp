//===- examples/align_tool.cpp - Command-line branch aligner ----------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Reads a program in the textual CFG format, profiles it with a seeded
// synthetic run, aligns every procedure with the requested method, and
// prints a per-procedure penalty report plus the aligned block orders.
//
// Usage:
//   align_tool <program.cfg> [--aligner greedy|tsp|cg|original|exttsp]
//              [--objective fallthrough|exttsp] [--exttsp-window N]
//              [--exttsp-weights F,B]
//              [--budget N] [--seed N] [--threads N] [--dot] [--bounds]
//              [--profile FILE] [--emit-profile FILE]
//              [--cache DIR] [--cache-stats] [--batch FILE]
//              [--on-error abort|fallback|skip] [--time-budget MS]
//              [--deadline MS] [--checkpoint FILE]
//              [--trace FILE] [--metrics] [--metrics-json FILE]
//              [--lint[=warn|err]] [--lint-json FILE]
//              [--effort-policy uniform|scaled|scaled-cold-greedy]
//              [--serve SOCK|-] [--serve-queue N] [--drain-timeout MS]
//
// With no file argument a built-in demo program is used, so the tool is
// runnable out of the box.
//
// --cache DIR persists per-procedure alignment results under DIR keyed
// by a content fingerprint of their inputs; a second run over unchanged
// inputs replays them without invoking the solver. --batch FILE aligns
// many programs (one "prog.cfg [profile.prof]" per line) through one
// shared cache session. Both run the full alignment pipeline, so
// --aligner is ignored there (the report shows greedy and TSP side by
// side). --cache-stats prints the hit/miss counters to stderr, keeping
// stdout byte-comparable between cold and warm runs.
//
// The balign-shield flags (--on-error, --time-budget, --deadline) also
// run the full pipeline. Exit-code contract:
//
//   0  success (including runs that degraded procedures under
//      --on-error=fallback/skip — degradations are reported on stderr)
//   1  usage error, unreadable/unparsable input, --verify errors, or
//      error-severity lint findings under --lint / --lint=err
//   2  alignment aborted: a procedure failed under --on-error=abort
//      (the default policy)
//   3  --batch finished, but some entries failed and were skipped past
//      (including entries failing --lint=err)
//   4  --serve shut down by a forced drain: a second SIGTERM/SIGINT or
//      an expired --drain-timeout abandoned in-flight requests (the
//      cache session still flushed)
//
// --lint runs the balign-lint static CFG/profile checks before aligning.
// All lint output goes to stderr (and --lint-json FILE), so stdout stays
// byte-identical with unlinted runs. --lint=warn reports without gating;
// --lint (or --lint=err) fails on error-severity findings — exit 1 for a
// single program, a counted failure (exit 3) per batch entry, with the
// rest of the batch still processed. --effort-policy feeds the same
// static analyses forward into per-procedure solver effort.
//
//===--------------------------------------------------------------------===//

#include "align/Aligners.h"
#include "align/Bounds.h"
#include "align/Penalty.h"
#include "analysis/PipelineVerifier.h"
#include "cache/Store.h"
#include "ir/Dot.h"
#include "ir/TextFormat.h"
#include "machine/MachineModel.h"
#include "profile/ProfileIO.h"
#include "profile/Trace.h"
#include "robust/FaultInjector.h"
#include "robust/Journal.h"
#include "serve/Oneshot.h"
#include "serve/Server.h"
#include "static/EffortPolicy.h"
#include "static/Lint.h"
#include "support/Flags.h"
#include "support/Format.h"
#include "support/Parse.h"
#include "support/Table.h"
#include "trace/Scope.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

using namespace balign;

namespace {

const char *DemoProgram = R"(program demo
proc tokenize {
  entry:  size 4 jump -> header
  header: size 2 cond -> fill scan
  fill:   size 8 jump -> scan
  scan:   size 3 cond -> header done
  done:   size 2 ret
}
proc dispatch {
  entry:  size 3 jump -> loop
  loop:   size 2 cond -> op exit
  op:     size 2 multi -> add sub mul
  add:    size 4 jump -> loop
  sub:    size 4 jump -> loop
  mul:    size 9 jump -> loop
  exit:   size 1 ret
}
)";

/// What --lint gates on.
enum class LintMode : uint8_t {
  Off,  ///< Lint does not run (unless --lint-json asks for the report).
  Warn, ///< Report findings on stderr; never changes the exit code.
  Err,  ///< Error-severity findings fail the run / the batch entry.
};

struct ToolOptions {
  std::string File;
  std::string AlignerName = "tsp";
  bool AlignerGiven = false;   ///< Whether --aligner appeared at all.

  // balign-objective flags. The window/weight knobs write into the
  // MachineModel's Ext-TSP parameters; the objective picks what the
  // exttsp aligner maximizes.
  ObjectiveKind Objective = ObjectiveKind::ExtTsp;
  bool ObjectiveGiven = false; ///< Whether --objective appeared at all.
  uint64_t ExtTspWindow = 0;   ///< --exttsp-window; 0 = model defaults.
  bool WeightsGiven = false;   ///< Whether --exttsp-weights appeared.
  double ExtTspForwardWeight = 0.0;
  double ExtTspBackwardWeight = 0.0;

  // balign-displace flags. The encoding knobs write into the machine
  // model; fingerprints absorb them only under a variable encoding.
  BranchEncoding Encoding = BranchEncoding::Fixed;
  bool EncodingGiven = false;   ///< Whether --encoding appeared at all.
  uint64_t ShortRange = 0;      ///< --short-range value when given.
  bool ShortRangeGiven = false; ///< Whether --short-range appeared.
  std::string ProfileFile;     ///< Read counts instead of simulating.
  std::string EmitProfileFile; ///< Dump the counts used.
  std::string CacheDir;        ///< Non-empty enables the disk cache.
  std::string BatchFile;       ///< Non-empty selects batch mode.
  bool CacheStats = false;     ///< Print cache counters to stderr.
  uint64_t Budget = 50000;
  uint64_t Seed = 1;
  unsigned Threads = 1; ///< Pipeline workers; 0 = hardware concurrency.
  bool EmitDot = false;
  bool ComputeBounds = false;
  VerifyLevel Verify = VerifyLevel::None;

  // balign-shield flags.
  OnErrorPolicy OnError = OnErrorPolicy::Abort;
  bool OnErrorGiven = false;   ///< Whether --on-error appeared at all.
  uint64_t TimeBudgetMs = 0;   ///< --time-budget: per-procedure budget.
  uint64_t DeadlineMs = 0;     ///< --deadline: whole-run budget.
  std::string CheckpointFile;  ///< --checkpoint: batch resume journal.

  // balign-scope flags. All trace output goes to files or stderr, so
  // stdout stays byte-identical with untraced runs.
  std::string TraceFile;       ///< --trace: Chrome trace_event JSON.
  std::string MetricsJsonFile; ///< --metrics-json: machine counters.
  bool Metrics = false;        ///< --metrics: text summary on stderr.

  // balign-lint flags. Lint output goes to stderr and --lint-json only.
  LintMode Lint = LintMode::Off;
  std::string LintJsonFile; ///< --lint-json: JSON report (implies lint).
  EffortPolicy Effort = EffortPolicy::Uniform; ///< --effort-policy.

  // balign-serve flags.
  std::string ServePath;    ///< --serve: socket path, or "-" for stdio.
  uint64_t ServeQueue = 0;  ///< --serve-queue: align budget (0 = inf).
  uint64_t DrainTimeoutMs = 5000; ///< --drain-timeout: graceful budget.

  /// True when any shield flag was given; forces the pipeline path and
  /// enables the stderr shield report.
  bool shieldActive() const {
    return OnErrorGiven || TimeBudgetMs != 0 || DeadlineMs != 0;
  }

  /// True when any balign-scope flag was given; installs the session.
  bool traceActive() const {
    return !TraceFile.empty() || !MetricsJsonFile.empty() || Metrics;
  }

  /// True when the lint checks should run at all.
  bool lintActive() const {
    return Lint != LintMode::Off || !LintJsonFile.empty();
  }
};

bool parseOnErrorPolicy(const char *Text, OnErrorPolicy &Out) {
  if (std::strcmp(Text, "abort") == 0)
    Out = OnErrorPolicy::Abort;
  else if (std::strcmp(Text, "fallback") == 0)
    Out = OnErrorPolicy::Fallback;
  else if (std::strcmp(Text, "skip") == 0)
    Out = OnErrorPolicy::Skip;
  else {
    std::fprintf(stderr, "error: unknown --on-error policy '%s' "
                 "(want abort, fallback, or skip)\n", Text);
    return false;
  }
  return true;
}

bool parseArgs(int Argc, char **Argv, ToolOptions &Options) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      return flagValue(Flag, Argc, Argv, I);
    };
    // Strict numeric parsing: "12x", "", " 12", "+12", and out-of-range
    // values are errors, never silent truncations.
    auto needInt = [&](const char *Flag, uint64_t &Out,
                       uint64_t Max = UINT64_MAX) -> bool {
      return flagUInt(Flag, Argc, Argv, I, Out, Max);
    };
    if (Arg == "--aligner") {
      const char *V = needValue("--aligner");
      if (!V)
        return false;
      Options.AlignerName = V;
      Options.AlignerGiven = true;
    } else if (Arg == "--objective") {
      const char *V = needValue("--objective");
      if (!V)
        return false;
      if (!parseObjectiveKind(V, Options.Objective)) {
        std::fprintf(stderr, "error: unknown --objective '%s' (want "
                     "fallthrough or exttsp)\n", V);
        return false;
      }
      Options.ObjectiveGiven = true;
    } else if (Arg == "--exttsp-window") {
      // A zero window would make every jump worthless and a huge one
      // makes the linear decay meaningless; both are almost certainly
      // typos, so the established exit-code contract rejects them.
      if (!flagUIntInRange("--exttsp-window", Argc, Argv, I,
                           Options.ExtTspWindow, 1, 1 << 20))
        return false;
    } else if (Arg == "--exttsp-weights") {
      if (!flagDoublePair("--exttsp-weights", Argc, Argv, I,
                          Options.ExtTspForwardWeight,
                          Options.ExtTspBackwardWeight, 1024.0))
        return false;
      Options.WeightsGiven = true;
    } else if (Arg == "--encoding") {
      const char *V = needValue("--encoding");
      if (!V)
        return false;
      if (!parseBranchEncoding(V, Options.Encoding)) {
        std::fprintf(stderr, "error: unknown --encoding '%s' (want "
                     "fixed or short-long)\n", V);
        return false;
      }
      Options.EncodingGiven = true;
    } else if (Arg == "--short-range") {
      // 0 is legal and meaningful: it forces every branch long, the
      // degenerate case the displacement tests pin.
      if (!needInt("--short-range", Options.ShortRange))
        return false;
      Options.ShortRangeGiven = true;
    } else if (Arg == "--budget") {
      if (!needInt("--budget", Options.Budget))
        return false;
    } else if (Arg == "--seed") {
      if (!needInt("--seed", Options.Seed))
        return false;
    } else if (Arg == "--threads") {
      uint64_t N = 0;
      if (!needInt("--threads", N, UINT32_MAX))
        return false;
      Options.Threads = static_cast<unsigned>(N);
    } else if (Arg == "--profile") {
      const char *V = needValue("--profile");
      if (!V)
        return false;
      Options.ProfileFile = V;
    } else if (Arg == "--emit-profile") {
      const char *V = needValue("--emit-profile");
      if (!V)
        return false;
      Options.EmitProfileFile = V;
    } else if (Arg == "--cache") {
      const char *V = needValue("--cache");
      if (!V)
        return false;
      Options.CacheDir = V;
    } else if (Arg.rfind("--cache=", 0) == 0) {
      Options.CacheDir = Arg.substr(std::strlen("--cache="));
      if (Options.CacheDir.empty()) {
        std::fprintf(stderr, "error: --cache= wants a directory\n");
        return false;
      }
    } else if (Arg == "--cache-stats") {
      Options.CacheStats = true;
    } else if (Arg == "--batch") {
      const char *V = needValue("--batch");
      if (!V)
        return false;
      Options.BatchFile = V;
    } else if (Arg == "--on-error") {
      const char *V = needValue("--on-error");
      if (!V || !parseOnErrorPolicy(V, Options.OnError))
        return false;
      Options.OnErrorGiven = true;
    } else if (Arg.rfind("--on-error=", 0) == 0) {
      if (!parseOnErrorPolicy(Arg.c_str() + std::strlen("--on-error="),
                              Options.OnError))
        return false;
      Options.OnErrorGiven = true;
    } else if (Arg == "--time-budget") {
      if (!needInt("--time-budget", Options.TimeBudgetMs))
        return false;
    } else if (Arg == "--deadline") {
      if (!needInt("--deadline", Options.DeadlineMs))
        return false;
    } else if (Arg == "--checkpoint") {
      const char *V = needValue("--checkpoint");
      if (!V)
        return false;
      Options.CheckpointFile = V;
    } else if (Arg == "--trace") {
      const char *V = needValue("--trace");
      if (!V)
        return false;
      Options.TraceFile = V;
    } else if (Arg == "--metrics-json") {
      const char *V = needValue("--metrics-json");
      if (!V)
        return false;
      Options.MetricsJsonFile = V;
    } else if (Arg == "--metrics") {
      Options.Metrics = true;
    } else if (Arg == "--lint" || Arg == "--lint=err") {
      Options.Lint = LintMode::Err;
    } else if (Arg == "--lint=warn") {
      Options.Lint = LintMode::Warn;
    } else if (Arg.rfind("--lint=", 0) == 0) {
      std::fprintf(stderr, "error: unknown lint mode '%s' "
                   "(want warn or err)\n",
                   Arg.c_str() + std::strlen("--lint="));
      return false;
    } else if (Arg == "--lint-json") {
      const char *V = needValue("--lint-json");
      if (!V)
        return false;
      Options.LintJsonFile = V;
    } else if (Arg == "--effort-policy") {
      const char *V = needValue("--effort-policy");
      if (!V)
        return false;
      if (!parseEffortPolicy(V, Options.Effort)) {
        std::fprintf(stderr, "error: unknown --effort-policy '%s' (want "
                     "uniform, scaled, or scaled-cold-greedy)\n", V);
        return false;
      }
    } else if (Arg == "--serve") {
      const char *V = needValue("--serve");
      if (!V)
        return false;
      Options.ServePath = V;
    } else if (Arg.rfind("--serve=", 0) == 0) {
      Options.ServePath = Arg.substr(std::strlen("--serve="));
      if (Options.ServePath.empty()) {
        std::fprintf(stderr, "error: --serve= wants a socket path "
                     "(or - for stdio)\n");
        return false;
      }
    } else if (Arg == "--serve-queue") {
      if (!needInt("--serve-queue", Options.ServeQueue))
        return false;
    } else if (Arg == "--drain-timeout") {
      if (!needInt("--drain-timeout", Options.DrainTimeoutMs))
        return false;
    } else if (Arg == "--dot") {
      Options.EmitDot = true;
    } else if (Arg == "--bounds") {
      Options.ComputeBounds = true;
    } else if (Arg == "--verify" || Arg == "--verify=full") {
      Options.Verify = VerifyLevel::Full;
    } else if (Arg == "--verify=quick") {
      Options.Verify = VerifyLevel::Quick;
    } else if (Arg == "--verify=none") {
      Options.Verify = VerifyLevel::None;
    } else if (Arg.rfind("--verify=", 0) == 0) {
      std::fprintf(stderr, "error: unknown verify level '%s' "
                   "(want quick, full, or none)\n",
                   Arg.c_str() + std::strlen("--verify="));
      return false;
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf("usage: align_tool [file.cfg] [--aligner "
                  "greedy|tsp|cg|original|exttsp] [--budget N] [--seed N] "
                  "[--threads N] [--dot] [--bounds] "
                  "[--verify[=quick|full|none]] "
                  "[--profile FILE] [--emit-profile FILE]\n"
                  "                  [--cache DIR] [--cache-stats] "
                  "[--batch FILE]\n"
                  "  --aligner exttsp  chain-merge on the Ext-TSP locality "
                  "objective instead of\n"
                  "                solving the DTSP (works in the pipeline "
                  "modes too)\n"
                  "  --objective O fallthrough|exttsp: what the exttsp "
                  "aligner maximizes\n"
                  "                (default exttsp)\n"
                  "  --exttsp-window N  Ext-TSP forward/backward window in "
                  "bytes, in\n"
                  "                [1, 1048576] (defaults 1024 forward / "
                  "640 backward)\n"
                  "  --exttsp-weights F,B  Ext-TSP forward,backward jump "
                  "weights as\n"
                  "                decimals in [0, 1024] (default 0.1,0.1)\n"
                  "  --encoding E  branch encoding: fixed (default; every "
                  "branch is one\n"
                  "                instruction) or short-long (branches "
                  "beyond the short\n"
                  "                range grow and are re-priced by the "
                  "displacement fixpoint)\n"
                  "  --short-range N  short-form branch reach in bytes "
                  "under --encoding\n"
                  "                short-long (default 32768; 0 forces "
                  "every branch long)\n"
                  "  --threads N   pipeline worker threads "
                  "(0 = all hardware threads, 1 = serial;\n"
                  "                results are identical at every "
                  "setting)\n"
                  "  --cache DIR   persist per-procedure results under "
                  "DIR; unchanged inputs are\n"
                  "                replayed without re-solving "
                  "(bit-identical, validated hits)\n"
                  "  --cache-stats print hit/miss counters to stderr "
                  "after the run\n"
                  "  --batch FILE  align every program listed in FILE "
                  "('prog.cfg [profile.prof]'\n"
                  "                per line, '#' comments) through one "
                  "shared cache session;\n"
                  "                malformed entries are skipped with an "
                  "error line (exit 3)\n"
                  "  --on-error P  per-procedure failure policy: abort "
                  "(default, exit 2),\n"
                  "                fallback (degrade greedy -> original, "
                  "exit 0), or skip\n"
                  "                (keep the original layout, exit 0)\n"
                  "  --time-budget MS  per-procedure solver budget; a "
                  "trip is handled per\n"
                  "                --on-error (tripped results are never "
                  "cached)\n"
                  "  --deadline MS whole-run budget; once expired, "
                  "remaining procedures\n"
                  "                degrade per --on-error\n"
                  "  --checkpoint FILE  batch resume journal: completed "
                  "programs are appended\n"
                  "                and skipped on the next run\n"
                  "  --trace FILE  write a Chrome trace_event JSON of "
                  "every pipeline stage\n"
                  "                (load in chrome://tracing or Perfetto); "
                  "stdout is unchanged\n"
                  "  --metrics     print the balign-scope counter/gauge "
                  "summary to stderr\n"
                  "  --metrics-json FILE  write the counters and gauges "
                  "as machine JSON\n"
                  "  --lint[=warn|err]  run the balign-lint static "
                  "CFG/profile checks before\n"
                  "                aligning (stderr only): err (the "
                  "default) fails the run on\n"
                  "                error-severity findings, warn only "
                  "reports\n"
                  "  --lint-json FILE  write the lint report as JSON "
                  "(a per-entry array in\n"
                  "                --batch mode); implies --lint=warn "
                  "unless --lint was given\n"
                  "  --effort-policy P  spread solver effort per "
                  "procedure: uniform (default),\n"
                  "                scaled (kicks follow loop nesting and "
                  "hotness), or\n"
                  "                scaled-cold-greedy (cold procedures "
                  "skip the solver)\n"
                  "  --serve PATH  run as a persistent alignment server "
                  "on unix socket PATH\n"
                  "                (or - for stdin/stdout): clients send "
                  "length-prefixed align\n"
                  "                requests (see balign_client) through "
                  "one shared cache\n"
                  "                session; --threads sizes the request "
                  "pool and --deadline\n"
                  "                sets the default per-request deadline\n"
                  "  --serve-queue N  answer align requests beyond N "
                  "in flight with a\n"
                  "                structured rejection instead of "
                  "queueing (0 = no limit)\n"
                  "  --drain-timeout MS  on SIGTERM/SIGINT wait MS for "
                  "in-flight requests\n"
                  "                before forcing shutdown (default "
                  "5000); a second signal\n"
                  "                forces it immediately\n"
                  "exit codes: 0 success, 1 usage/input/verify/lint "
                  "error, 2 aborted under\n"
                  "--on-error=abort, 3 batch finished with failed "
                  "entries, 4 a serve drain\n"
                  "was forced (in-flight work abandoned; the cache was "
                  "still flushed)\n");
      return false;
    } else if (!Arg.empty() && Arg[0] != '-') {
      Options.File = Arg;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<Aligner> makeAligner(const std::string &Name,
                                     ObjectiveKind Objective) {
  if (Name == "greedy")
    return std::make_unique<GreedyAligner>();
  if (Name == "tsp")
    return std::make_unique<TspAligner>();
  if (Name == "cg")
    return std::make_unique<CalderGrunwaldAligner>();
  if (Name == "original")
    return std::make_unique<OriginalAligner>();
  if (Name == "exttsp")
    return std::make_unique<ExtTspAligner>(Objective);
  return nullptr;
}

std::optional<Program> loadProgram(const std::string &File,
                                   bool AnnounceDemo) {
  std::string Text;
  if (File.empty()) {
    Text = DemoProgram;
    if (AnnounceDemo)
      std::printf("(no input file given; using the built-in demo "
                  "program)\n");
  } else {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return std::nullopt;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Text = Buffer.str();
  }
  std::string Error;
  std::optional<Program> Prog = parseProgram(Text, &Error);
  if (!Prog)
    std::fprintf(stderr, "error: parse failed: %s\n", Error.c_str());
  return Prog;
}

/// Reads \p ProfileFile if given, otherwise simulates a seeded run.
std::optional<ProgramProfile> obtainProfile(const Program &Prog,
                                            const std::string &ProfileFile,
                                            const ToolOptions &Options) {
  if (!ProfileFile.empty()) {
    std::ifstream ProfIn(ProfileFile);
    if (!ProfIn) {
      std::fprintf(stderr, "error: cannot open '%s'\n", ProfileFile.c_str());
      return std::nullopt;
    }
    std::ostringstream ProfBuffer;
    ProfBuffer << ProfIn.rdbuf();
    std::string Error;
    std::optional<ProgramProfile> Parsed =
        parseProgramProfile(Prog, ProfBuffer.str(), &Error);
    if (!Parsed)
      std::fprintf(stderr, "error: profile parse failed: %s\n",
                   Error.c_str());
    return Parsed;
  }
  // The seeded synthetic run is shared with balign-serve (the server
  // must reproduce it bit-for-bit), so it lives in serve/Oneshot.h.
  return synthesizeProfile(Prog, Options.Seed, Options.Budget);
}

/// The pipeline-based report used in cache and batch modes: all three
/// layouts come from alignProgram (so warm caches replay them), with
/// greedy and TSP side by side instead of one --aligner column.
void reportPipelineAlignment(const Program &Prog,
                             const ProgramProfile &Counts,
                             const ProgramAlignment &Result,
                             const ToolOptions &Options,
                             const AlignmentOptions &AlignOptions) {
  // Shared with balign-serve: an AlignOk response body must be
  // byte-identical to this stdout, so both render through one function.
  std::string Report = renderAlignmentReport(
      Prog, Counts, Result, Options.ComputeBounds, Options.EmitDot,
      primaryAlignerName(AlignOptions.Primary));
  std::fwrite(Report.data(), 1, Report.size(), stdout);
}

/// Runs --verify over one program; returns false when errors were found.
bool runVerified(const Program &Prog, const ProgramProfile &Counts,
                 const ToolOptions &Options,
                 const AlignmentOptions &AlignOptions) {
  DiagnosticEngine Diags;
  Diags.setEchoToStderr(true);
  VerifyOptions Verify;
  Verify.Level = Options.Verify;
  alignProgramVerified(Prog, Counts, AlignOptions, Diags, Verify);
  std::printf("verify (%s): %s\n",
              Options.Verify == VerifyLevel::Full ? "full" : "quick",
              Diags.summary().c_str());
  return !Diags.hasErrors();
}

/// Runs the balign-lint checks over one program, rendering every finding
/// plus a per-program summary line to stderr (stdout stays byte-identical
/// with unlinted runs). \p Label names the program in the summary.
LintResult runLintChecks(const Program &Prog, const ProgramProfile &Counts,
                         const AlignmentOptions &AlignOptions,
                         const std::string &Label) {
  LintResult Result = lintProgram(Prog, &Counts, &AlignOptions.Model);
  for (const Diagnostic &D : Result.Diags.diagnostics())
    std::fprintf(stderr, "%s\n", D.render().c_str());
  std::fprintf(stderr,
               "lint: %s: %s (%zu checks, worst profile class: %s)\n",
               Label.c_str(), Result.Diags.summary().c_str(),
               Result.ChecksRun, profileClassName(Result.worstClass()));
  return Result;
}

/// Minimal JSON string escaping for file names in the batch lint array.
std::string jsonEscaped(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

bool writeTextFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path, std::ios::binary);
  if (Out)
    Out << Contents;
  if (!Out)
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
  return static_cast<bool>(Out);
}

/// The balign-shield stderr report: one line per degraded procedure
/// plus the greppable counter summary. stderr only, so stdout stays
/// byte-comparable with unshielded runs.
void reportShieldOutcome(const ProgramAlignment &Result, size_t NumProcs) {
  for (const ProcedureFailure &F : Result.Failures.Failures)
    std::fprintf(stderr, "shield: %s\n", F.str().c_str());
  std::fprintf(stderr, "shield: %s\n",
               Result.Failures.summary(NumProcs).c_str());
}

/// Cache/batch-mode alignment of one program: verify first when asked
/// (which also warms the cache through the store path), then the
/// pipeline report. \p AnySkipped (when given) reports whether any
/// procedure kept its original layout under --on-error skip — the
/// checkpoint journal must not record such a program as done, or a
/// resumed batch would never revisit the skipped work.
bool alignOneProgram(const Program &Prog, const ProgramProfile &Counts,
                     const ToolOptions &Options,
                     const AlignmentOptions &AlignOptions,
                     bool *AnySkipped = nullptr) {
  if (Options.Verify != VerifyLevel::None &&
      !runVerified(Prog, Counts, Options, AlignOptions))
    return false;
  ProgramAlignment Result = alignProgram(Prog, Counts, AlignOptions);
  reportPipelineAlignment(Prog, Counts, Result, Options, AlignOptions);
  if (Options.shieldActive())
    reportShieldOutcome(Result, Prog.numProcedures());
  if (AnySkipped)
    *AnySkipped = Result.Failures.countSkipped() != 0;
  return true;
}

/// Parses one batch line into "program [profile]"; returns false for
/// blank/comment lines.
bool parseBatchLine(const std::string &Line, std::string &ProgramFile,
                    std::string &ProfileFile) {
  std::istringstream Fields(Line);
  ProgramFile.clear();
  ProfileFile.clear();
  Fields >> ProgramFile >> ProfileFile;
  return !ProgramFile.empty() && ProgramFile[0] != '#';
}

int runBatch(const ToolOptions &Options, AlignmentOptions &AlignOptions) {
  std::ifstream In(Options.BatchFile);
  if (!In) {
    std::fprintf(stderr, "error: cannot open batch file '%s'\n",
                 Options.BatchFile.c_str());
    return 1;
  }

  // Checkpointed resume: programs recorded by a previous run are skipped
  // up front, and every completed program is appended as it finishes, so
  // a killed batch restarts where it left off. The file is deliberately
  // kept on success — rerunning a finished batch is then a cheap no-op,
  // and removing it is the explicit way to force a full rerun. The
  // journal is checksummed and fsync'd per record: a kill -9 (or power
  // loss) mid-append leaves at most one torn tail record, which open()
  // salvages by truncation — never a half-recorded program counted as
  // done. Pre-sentinel plain-line checkpoints are migrated in place.
  AppendJournal Checkpoint;
  std::set<std::string> Done;
  if (!Options.CheckpointFile.empty()) {
    std::string JournalError;
    if (!Checkpoint.open(Options.CheckpointFile, &JournalError)) {
      std::fprintf(stderr, "error: cannot open checkpoint '%s': %s\n",
                   Options.CheckpointFile.c_str(), JournalError.c_str());
      return 1;
    }
    const JournalStats &Stats = Checkpoint.stats();
    if (Stats.RecoveredTail || Stats.MigratedLegacy)
      std::fprintf(stderr, "note: checkpoint '%s' recovered (%s)\n",
                   Options.CheckpointFile.c_str(),
                   Stats.summary().c_str());
    // Duplicate records (a crash between append and the next run's
    // resume check) are harmless: the set dedupes them.
    for (const std::string &Record : Checkpoint.records())
      if (!Record.empty())
        Done.insert(Record);
  }

  size_t Printed = 0, Attempted = 0, Failed = 0, Resumed = 0;
  // balign-lint batch bookkeeping: every entry's findings are surfaced
  // in the end-of-batch summary (not just the first bad one), the JSON
  // report becomes a per-entry array, and under --lint (=err) an entry
  // with error findings is a counted failure the batch continues past.
  size_t Linted = 0, LintDirty = 0;
  std::string LintJson = "[";
  std::vector<std::string> LintSummaries;
  std::string Line;
  while (std::getline(In, Line)) {
    std::string ProgramFile, ProfileFile;
    if (!parseBatchLine(Line, ProgramFile, ProfileFile))
      continue;
    if (Done.count(ProgramFile)) {
      ++Resumed;
      std::fprintf(stderr, "note: skipping '%s' (already in checkpoint "
                   "'%s')\n",
                   ProgramFile.c_str(), Options.CheckpointFile.c_str());
      continue;
    }
    ++Attempted;
    // A malformed entry must not sink the rest of the batch: report it,
    // count it, move on (the batch exits 3 instead of 0).
    std::optional<Program> Prog = loadProgram(ProgramFile, false);
    if (!Prog) {
      ++Failed;
      std::fprintf(stderr, "error: batch entry '%s': unreadable or "
                   "unparsable program; continuing\n",
                   ProgramFile.c_str());
      continue;
    }
    std::optional<ProgramProfile> Counts =
        obtainProfile(*Prog, ProfileFile, Options);
    if (!Counts) {
      ++Failed;
      std::fprintf(stderr, "error: batch entry '%s': bad profile '%s'; "
                   "continuing\n",
                   ProgramFile.c_str(), ProfileFile.c_str());
      continue;
    }
    if (Options.lintActive()) {
      LintResult LR = runLintChecks(*Prog, *Counts, AlignOptions,
                                    ProgramFile);
      ++Linted;
      if (!LR.Diags.diagnostics().empty())
        ++LintDirty;
      LintSummaries.push_back(ProgramFile + ": " + LR.Diags.summary() +
                              " (worst profile class: " +
                              profileClassName(LR.worstClass()) + ")");
      if (Linted > 1)
        LintJson += ",";
      LintJson += "{\"file\":\"" + jsonEscaped(ProgramFile) +
                  "\",\"report\":" + lintReportJson(LR) + "}";
      if (Options.Lint == LintMode::Err && LR.failedAt(Severity::Error)) {
        ++Failed;
        std::fprintf(stderr, "error: batch entry '%s': lint found "
                     "errors; continuing\n",
                     ProgramFile.c_str());
        continue;
      }
    }
    if (Printed++)
      std::printf("\n");
    std::printf("== %s ==\n", ProgramFile.c_str());
    bool AnySkipped = false;
    if (!alignOneProgram(*Prog, *Counts, Options, AlignOptions,
                         &AnySkipped)) {
      ++Failed;
      std::fprintf(stderr, "error: batch entry '%s': verification "
                   "failed; continuing\n",
                   ProgramFile.c_str());
      continue;
    }
    if (Checkpoint.isOpen()) {
      // Under --on-error skip a program whose procedures were skipped
      // is *not* done: journaling it would make the resume skip work
      // that was never performed.
      if (AnySkipped)
        std::fprintf(stderr, "note: '%s' had skipped procedures; not "
                     "checkpointing it as done\n",
                     ProgramFile.c_str());
      else {
        std::string AppendError;
        if (!Checkpoint.append(ProgramFile, &AppendError))
          std::fprintf(stderr, "warning: cannot append to checkpoint "
                       "'%s': %s\n",
                       Options.CheckpointFile.c_str(),
                       AppendError.c_str());
      }
    }
  }
  if (Attempted == 0 && Resumed == 0)
    std::fprintf(stderr, "warning: batch file '%s' lists no programs\n",
                 Options.BatchFile.c_str());
  if (Options.lintActive()) {
    std::fprintf(stderr, "lint summary: %zu of %zu linted entries had "
                 "findings\n",
                 LintDirty, Linted);
    for (const std::string &S : LintSummaries)
      std::fprintf(stderr, "lint summary:   %s\n", S.c_str());
    LintJson += "]";
    if (!Options.LintJsonFile.empty() &&
        !writeTextFile(Options.LintJsonFile, LintJson + "\n"))
      return 1;
  }
  if (Failed) {
    std::fprintf(stderr, "error: %zu of %zu batch entries failed\n",
                 Failed, Attempted);
    return 3;
  }
  return 0;
}

int runAlignment(const ToolOptions &Options, AlignmentOptions &AlignOptions,
                 bool UsePipeline);

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Options;
  if (!parseArgs(Argc, Argv, Options))
    return 1;

  // The balign-scope session outlives the whole run (including the
  // cache session's final flush) and exports after everything else has
  // unwound. When no trace flag was given it is never installed, and
  // every probe in the pipeline reduces to one relaxed atomic load.
  TraceSession Scope;
  if (Options.traceActive())
    Scope.install();

  int Exit = 0;
  {
    // The shield flags run through alignProgram, so they force the
    // pipeline path just like --cache/--batch.
    bool UsePipeline = !Options.CacheDir.empty() ||
                       !Options.BatchFile.empty() || Options.shieldActive();
    if (UsePipeline && Options.AlignerGiven && Options.AlignerName != "tsp" &&
        Options.AlignerName != "exttsp")
      std::fprintf(stderr,
                   "warning: --aligner %s is ignored with "
                   "--cache/--batch/--on-error (the full pipeline reports "
                   "greedy and tsp)\n",
                   Options.AlignerName.c_str());
    if (Options.ObjectiveGiven && Options.AlignerName != "exttsp")
      std::fprintf(stderr,
                   "warning: --objective only affects --aligner exttsp; "
                   "ignored\n");
    if (Options.ShortRangeGiven &&
        Options.Encoding != BranchEncoding::ShortLong)
      std::fprintf(stderr,
                   "warning: --short-range only affects --encoding "
                   "short-long; ignored\n");
    if (!Options.CheckpointFile.empty() && Options.BatchFile.empty())
      std::fprintf(stderr,
                   "warning: --checkpoint is only meaningful with --batch; "
                   "ignored\n");
    if (!Options.ServePath.empty() && !Options.BatchFile.empty()) {
      std::fprintf(stderr, "error: --serve and --batch are mutually "
                   "exclusive\n");
      return 1;
    }

    AlignmentOptions AlignOptions;
    AlignOptions.Model = MachineModel::alpha21164();
    // The Ext-TSP knobs live on the machine model (and --aligner exttsp
    // selects the pipeline's primary aligner), so they must be applied
    // before the cache session is built: fingerprints absorb them.
    if (Options.AlignerName == "exttsp")
      AlignOptions.Primary = PrimaryAligner::ExtTsp;
    AlignOptions.Objective = Options.Objective;
    if (Options.ExtTspWindow) {
      AlignOptions.Model.ExtTspForwardWindow =
          static_cast<uint32_t>(Options.ExtTspWindow);
      AlignOptions.Model.ExtTspBackwardWindow =
          static_cast<uint32_t>(Options.ExtTspWindow);
    }
    if (Options.WeightsGiven) {
      AlignOptions.Model.ExtTspForwardWeight = Options.ExtTspForwardWeight;
      AlignOptions.Model.ExtTspBackwardWeight = Options.ExtTspBackwardWeight;
    }
    // The branch-encoding knobs (balign-displace) likewise live on the
    // model and must precede the cache session: fingerprints absorb
    // them under a variable encoding.
    if (Options.EncodingGiven)
      AlignOptions.Model.Encoding = Options.Encoding;
    if (Options.ShortRangeGiven)
      AlignOptions.Model.ShortBranchRange = Options.ShortRange;
    AlignOptions.Solver.Seed = Options.Seed;
    AlignOptions.ComputeBounds = Options.ComputeBounds;
    AlignOptions.Threads = Options.Threads;
    AlignOptions.Effort = Options.Effort;
    AlignOptions.OnError = Options.OnError;
    AlignOptions.ProcBudgetMs = Options.TimeBudgetMs;
    Deadline RunDeadline(Options.DeadlineMs);
    if (Options.DeadlineMs)
      AlignOptions.RunDeadline = &RunDeadline;
    if (!Options.CacheDir.empty()) {
      AlignOptions.Cache = CacheMode::Disk;
      AlignOptions.CachePath = Options.CacheDir;
    } else if (!Options.BatchFile.empty() || !Options.ServePath.empty()) {
      // Batch without a directory still shares an in-process cache, so
      // duplicate procedures across the list are solved once; a server
      // likewise shares one cache across every client it ever talks to.
      AlignOptions.Cache = CacheMode::Memory;
    }
    AlignmentCacheConfig CacheConfig;
    if (!Options.ServePath.empty()) {
      // A long-lived server may never reach the session's destructor
      // flush (kill -9, OOM); losing at most 32 stores bounds the
      // damage without paying a disk write per request.
      CacheConfig.FlushEveryStores = 32;
    }
    CacheSession Cache(AlignOptions, CacheConfig);

    try {
      if (!Options.ServePath.empty()) {
        // balign-serve: a long-lived server over the shared cache
        // session. --threads sizes the request pool, --serve-queue
        // bounds in-flight aligns, --deadline becomes the default
        // per-request deadline. Requests carry their own seed/budget/
        // effort/bounds/on-error, so most CLI knobs do not apply here.
        if (!Options.File.empty())
          std::fprintf(stderr, "warning: positional input '%s' is "
                       "ignored in --serve mode\n", Options.File.c_str());
        ServeConfig Serve;
        Serve.Threads = Options.Threads;
        Serve.QueueBudget = Options.ServeQueue;
        Serve.DefaultDeadlineMs = Options.DeadlineMs;
        Serve.DrainTimeoutMs = Options.DrainTimeoutMs;
        Serve.CacheStatsFn = [&Cache] { return Cache.stats(); };
        AlignServer Server(AlignOptions, Serve);
        // balign-sentinel: SIGTERM/SIGINT request a graceful drain
        // (in-flight requests finish, cache flushes below); a second
        // signal or an expired --drain-timeout forces it (exit 4).
        Server.installSignalDrain();
        Exit = Options.ServePath == "-"
                   ? Server.serveStdio()
                   : Server.serveUnixSocket(Options.ServePath);
      } else {
        Exit = runAlignment(Options, AlignOptions, UsePipeline);
      }
    } catch (const AlignmentAborted &E) {
      // Exit 2 contract: a procedure failure under OnErrorPolicy::Abort
      // (the default policy) aborts alignment.
      std::fprintf(stderr, "error: alignment aborted: %s\n", E.what());
      Exit = 2;
    } catch (const FaultInjectedError &E) {
      // The legacy single-aligner path has no per-procedure isolation;
      // an injected fault escaping it is the same abort.
      std::fprintf(stderr, "error: alignment aborted: %s\n", E.what());
      Exit = 2;
    } catch (const DeadlineExceeded &E) {
      std::fprintf(stderr, "error: alignment aborted: %s\n", E.what());
      Exit = 2;
    }

    if (Options.CacheStats) {
      std::string Error;
      if (!Cache.flush(&Error))
        std::fprintf(stderr, "warning: cache flush failed: %s\n",
                     Error.c_str());
      std::fprintf(stderr, "cache: %s\n", Cache.stats().summary().c_str());
    }
  } // CacheSession's destructor flush is the last recorded span.

  if (Options.traceActive()) {
    Scope.uninstall();
    // The trace itself is a verified artifact: a broken span stream
    // would silently invalidate the exporters' nesting and the CI
    // determinism diff, so it fails the run like any verify error.
    DiagnosticEngine Diags;
    Diags.setEchoToStderr(true);
    if (checkTrace(Scope, Diags) != 0 && Exit == 0)
      Exit = 1;
    auto writeFile = [&](const std::string &Path, std::string Contents) {
      std::ofstream Out(Path, std::ios::binary);
      if (Out)
        Out << Contents;
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
        if (Exit == 0)
          Exit = 1;
      }
    };
    if (!Options.TraceFile.empty())
      writeFile(Options.TraceFile, Scope.chromeTraceJson());
    if (!Options.MetricsJsonFile.empty())
      writeFile(Options.MetricsJsonFile, Scope.metricsJson());
    if (Options.Metrics)
      std::fprintf(stderr, "%s", Scope.metricsSummary().c_str());
  }
  return Exit;
}

namespace {

int runAlignment(const ToolOptions &Options, AlignmentOptions &AlignOptions,
                 bool UsePipeline) {
  if (!Options.BatchFile.empty()) {
    if (!Options.File.empty())
      std::fprintf(stderr,
                   "warning: positional input '%s' is ignored in --batch "
                   "mode\n",
                   Options.File.c_str());
    return runBatch(Options, AlignOptions);
  } else {
    std::optional<Program> Prog = loadProgram(Options.File, true);
    if (!Prog)
      return 1;
    std::optional<ProgramProfile> Counts =
        obtainProfile(*Prog, Options.ProfileFile, Options);
    if (!Counts)
      return 1;
    if (!Options.EmitProfileFile.empty()) {
      std::ofstream ProfOut(Options.EmitProfileFile);
      if (!ProfOut) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     Options.EmitProfileFile.c_str());
        return 1;
      }
      ProfOut << printProgramProfile(*Prog, *Counts);
      std::printf("wrote profile to %s\n", Options.EmitProfileFile.c_str());
    }

    if (Options.lintActive()) {
      LintResult LR = runLintChecks(
          *Prog, *Counts, AlignOptions,
          Options.File.empty() ? std::string("<demo>") : Options.File);
      if (!Options.LintJsonFile.empty() &&
          !writeTextFile(Options.LintJsonFile, lintReportJson(LR) + "\n"))
        return 1;
      if (Options.Lint == LintMode::Err && LR.failedAt(Severity::Error)) {
        std::fprintf(stderr, "error: lint found errors; not aligning "
                     "(use --lint=warn to report without gating)\n");
        return 1;
      }
    }

    if (UsePipeline) {
      // --bounds changes the fingerprint (bounds are part of the cached
      // artifact), and --verify always computes them; align the two so
      // a verified run warms the cache the report then hits.
      return alignOneProgram(*Prog, *Counts, Options, AlignOptions) ? 0 : 1;
    } else {
      // Legacy single-aligner path, byte-compatible with prior releases.
      std::unique_ptr<Aligner> TheAligner =
          makeAligner(Options.AlignerName, Options.Objective);
      if (!TheAligner) {
        std::fprintf(stderr, "error: unknown aligner '%s'\n",
                     Options.AlignerName.c_str());
        return 1;
      }
      MachineModel Model = AlignOptions.Model;

      if (Options.Verify != VerifyLevel::None) {
        AlignmentOptions VerifyAlign = AlignOptions;
        VerifyAlign.ComputeBounds = true;
        if (!runVerified(*Prog, *Counts, Options, VerifyAlign))
          return 1;
      }

      TextTable Report;
      Report.addColumn("procedure");
      Report.addColumn("blocks", TextTable::AlignKind::Right);
      Report.addColumn("branches", TextTable::AlignKind::Right);
      Report.addColumn("original", TextTable::AlignKind::Right);
      Report.addColumn(TheAligner->name(), TextTable::AlignKind::Right);
      Report.addColumn("removed", TextTable::AlignKind::Right);
      if (Options.ComputeBounds)
        Report.addColumn("hk-bound", TextTable::AlignKind::Right);

      for (size_t P = 0; P != Prog->numProcedures(); ++P) {
        const Procedure &Proc = Prog->proc(P);
        const ProcedureProfile &Profile = Counts->Procs[P];

        Layout Aligned = TheAligner->align(Proc, Profile, Model);
        uint64_t Original = evaluateLayout(Proc, Layout::original(Proc),
                                           Model, Profile, Profile);
        uint64_t After =
            evaluateLayout(Proc, Aligned, Model, Profile, Profile);

        std::vector<std::string> Row = {
            Proc.getName(),
            std::to_string(Proc.numBlocks()),
            formatCount(Profile.executedBranches(Proc)),
            std::to_string(Original),
            std::to_string(After),
            Original > 0
                ? formatPercent(1.0 - static_cast<double>(After) /
                                          static_cast<double>(Original))
                : "0%"};
        if (Options.ComputeBounds) {
          PenaltyBounds Bounds =
              computePenaltyBounds(Proc, Profile, Model, After);
          Row.push_back(formatFixed(Bounds.HeldKarp, 1));
        }
        Report.addRow(std::move(Row));

        std::printf("proc %s layout:", Proc.getName().c_str());
        for (BlockId Id : Aligned.Order) {
          const BasicBlock &Block = Proc.block(Id);
          std::printf(" %s", Block.Name.empty()
                                 ? ("b" + std::to_string(Id)).c_str()
                                 : Block.Name.c_str());
        }
        std::printf("\n");
        if (Options.EmitDot)
          std::printf("%s", printDot(Proc, &Profile.EdgeCounts).c_str());
      }
      std::printf("\n%s", Report.render().c_str());
    }
  }
  return 0;
}

} // namespace
