//===- examples/align_tool.cpp - Command-line branch aligner ----------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Reads a program in the textual CFG format, profiles it with a seeded
// synthetic run, aligns every procedure with the requested method, and
// prints a per-procedure penalty report plus the aligned block orders.
//
// Usage:
//   align_tool <program.cfg> [--aligner greedy|tsp|cg|original]
//              [--budget N] [--seed N] [--threads N] [--dot] [--bounds]
//              [--profile FILE] [--emit-profile FILE]
//
// With no file argument a built-in demo program is used, so the tool is
// runnable out of the box.
//
//===--------------------------------------------------------------------===//

#include "align/Aligners.h"
#include "align/Bounds.h"
#include "align/Penalty.h"
#include "analysis/PipelineVerifier.h"
#include "ir/Dot.h"
#include "ir/TextFormat.h"
#include "machine/MachineModel.h"
#include "profile/ProfileIO.h"
#include "profile/Trace.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

using namespace balign;

namespace {

const char *DemoProgram = R"(program demo
proc tokenize {
  entry:  size 4 jump -> header
  header: size 2 cond -> fill scan
  fill:   size 8 jump -> scan
  scan:   size 3 cond -> header done
  done:   size 2 ret
}
proc dispatch {
  entry:  size 3 jump -> loop
  loop:   size 2 cond -> op exit
  op:     size 2 multi -> add sub mul
  add:    size 4 jump -> loop
  sub:    size 4 jump -> loop
  mul:    size 9 jump -> loop
  exit:   size 1 ret
}
)";

struct ToolOptions {
  std::string File;
  std::string AlignerName = "tsp";
  std::string ProfileFile;     ///< Read counts instead of simulating.
  std::string EmitProfileFile; ///< Dump the counts used.
  uint64_t Budget = 50000;
  uint64_t Seed = 1;
  unsigned Threads = 1; ///< Pipeline workers; 0 = hardware concurrency.
  bool EmitDot = false;
  bool ComputeBounds = false;
  VerifyLevel Verify = VerifyLevel::None;
};

bool parseArgs(int Argc, char **Argv, ToolOptions &Options) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 == Argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "--aligner") {
      const char *V = needValue("--aligner");
      if (!V)
        return false;
      Options.AlignerName = V;
    } else if (Arg == "--budget") {
      const char *V = needValue("--budget");
      if (!V)
        return false;
      Options.Budget = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--seed") {
      const char *V = needValue("--seed");
      if (!V)
        return false;
      Options.Seed = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--threads") {
      const char *V = needValue("--threads");
      if (!V)
        return false;
      // 0 legitimately means "all hardware threads", so garbage must not
      // silently parse to it the way it would with a null endptr.
      char *End = nullptr;
      Options.Threads = static_cast<unsigned>(std::strtoul(V, &End, 10));
      if (End == V || *End != '\0') {
        std::fprintf(stderr, "error: --threads wants a number, got '%s'\n", V);
        return false;
      }
    } else if (Arg == "--profile") {
      const char *V = needValue("--profile");
      if (!V)
        return false;
      Options.ProfileFile = V;
    } else if (Arg == "--emit-profile") {
      const char *V = needValue("--emit-profile");
      if (!V)
        return false;
      Options.EmitProfileFile = V;
    } else if (Arg == "--dot") {
      Options.EmitDot = true;
    } else if (Arg == "--bounds") {
      Options.ComputeBounds = true;
    } else if (Arg == "--verify" || Arg == "--verify=full") {
      Options.Verify = VerifyLevel::Full;
    } else if (Arg == "--verify=quick") {
      Options.Verify = VerifyLevel::Quick;
    } else if (Arg == "--verify=none") {
      Options.Verify = VerifyLevel::None;
    } else if (Arg.rfind("--verify=", 0) == 0) {
      std::fprintf(stderr, "error: unknown verify level '%s' "
                   "(want quick, full, or none)\n",
                   Arg.c_str() + std::strlen("--verify="));
      return false;
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf("usage: align_tool [file.cfg] [--aligner "
                  "greedy|tsp|cg|original] [--budget N] [--seed N] "
                  "[--threads N] [--dot] [--bounds] "
                  "[--verify[=quick|full|none]] "
                  "[--profile FILE] [--emit-profile FILE]\n"
                  "  --threads N   pipeline worker threads for --verify's "
                  "full alignment\n                (0 = all hardware "
                  "threads, 1 = serial; results are\n                "
                  "identical at every setting)\n");
      return false;
    } else if (!Arg.empty() && Arg[0] != '-') {
      Options.File = Arg;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

/// A seeded, skewed behavior: real branches are biased, not coin flips.
BranchBehavior skewedBehavior(const Procedure &Proc, Rng &R) {
  BranchBehavior Behavior = BranchBehavior::uniform(Proc);
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    std::vector<double> &Probs = Behavior.Probs[B];
    if (Probs.size() == 2) {
      double Bias = 0.70 + 0.28 * R.nextDouble();
      size_t Hot = R.nextIndex(2);
      Probs[Hot] = Bias;
      Probs[1 - Hot] = 1.0 - Bias;
    } else if (Probs.size() > 2) {
      double Sum = 0.0;
      for (double &P : Probs) {
        P = 0.05 + R.nextDouble() * R.nextDouble() * 3.0;
        Sum += P;
      }
      for (double &P : Probs)
        P /= Sum;
    }
  }
  return Behavior;
}

std::unique_ptr<Aligner> makeAligner(const std::string &Name) {
  if (Name == "greedy")
    return std::make_unique<GreedyAligner>();
  if (Name == "tsp")
    return std::make_unique<TspAligner>();
  if (Name == "cg")
    return std::make_unique<CalderGrunwaldAligner>();
  if (Name == "original")
    return std::make_unique<OriginalAligner>();
  return nullptr;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Options;
  if (!parseArgs(Argc, Argv, Options))
    return 1;

  std::string Text;
  if (Options.File.empty()) {
    Text = DemoProgram;
    std::printf("(no input file given; using the built-in demo program)\n");
  } else {
    std::ifstream In(Options.File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   Options.File.c_str());
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Text = Buffer.str();
  }

  std::string Error;
  std::optional<Program> Prog = parseProgram(Text, &Error);
  if (!Prog) {
    std::fprintf(stderr, "error: parse failed: %s\n", Error.c_str());
    return 1;
  }

  std::unique_ptr<Aligner> TheAligner = makeAligner(Options.AlignerName);
  if (!TheAligner) {
    std::fprintf(stderr, "error: unknown aligner '%s'\n",
                 Options.AlignerName.c_str());
    return 1;
  }

  // Obtain the profile: read it from disk or simulate a seeded run.
  ProgramProfile Counts;
  if (!Options.ProfileFile.empty()) {
    std::ifstream ProfIn(Options.ProfileFile);
    if (!ProfIn) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   Options.ProfileFile.c_str());
      return 1;
    }
    std::ostringstream ProfBuffer;
    ProfBuffer << ProfIn.rdbuf();
    std::optional<ProgramProfile> Parsed =
        parseProgramProfile(*Prog, ProfBuffer.str(), &Error);
    if (!Parsed) {
      std::fprintf(stderr, "error: profile parse failed: %s\n",
                   Error.c_str());
      return 1;
    }
    Counts = std::move(*Parsed);
  } else {
    for (size_t P = 0; P != Prog->numProcedures(); ++P) {
      const Procedure &Proc = Prog->proc(P);
      Rng BehaviorRng(Options.Seed * 7919 + P);
      BranchBehavior Behavior = skewedBehavior(Proc, BehaviorRng);
      Rng TraceRng(Options.Seed * 1000003 + P);
      TraceGenOptions TraceOptions;
      TraceOptions.BranchBudget = Options.Budget;
      Counts.Procs.push_back(collectProfile(
          Proc, generateTrace(Proc, Behavior, TraceRng, TraceOptions)));
    }
  }
  if (!Options.EmitProfileFile.empty()) {
    std::ofstream ProfOut(Options.EmitProfileFile);
    if (!ProfOut) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Options.EmitProfileFile.c_str());
      return 1;
    }
    ProfOut << printProgramProfile(*Prog, Counts);
    std::printf("wrote profile to %s\n", Options.EmitProfileFile.c_str());
  }

  MachineModel Model = MachineModel::alpha21164();

  // --verify: run the whole alignment pipeline under balign-verify
  // (CFG + profile-flow input checks, then verify-each on every matrix,
  // tour, and layout; Full adds the exactness audits and the
  // determinism replay). Orthogonal to the report below, which uses
  // whatever aligner was requested.
  if (Options.Verify != VerifyLevel::None) {
    DiagnosticEngine Diags;
    Diags.setEchoToStderr(true);
    VerifyOptions Verify;
    Verify.Level = Options.Verify;
    AlignmentOptions AlignOptions;
    AlignOptions.Model = Model;
    AlignOptions.Solver.Seed = Options.Seed;
    AlignOptions.ComputeBounds = true;
    AlignOptions.Threads = Options.Threads;
    alignProgramVerified(*Prog, Counts, AlignOptions, Diags, Verify);
    std::printf("verify (%s): %s\n",
                Options.Verify == VerifyLevel::Full ? "full" : "quick",
                Diags.summary().c_str());
    if (Diags.hasErrors())
      return 1;
  }

  TextTable Report;
  Report.addColumn("procedure");
  Report.addColumn("blocks", TextTable::AlignKind::Right);
  Report.addColumn("branches", TextTable::AlignKind::Right);
  Report.addColumn("original", TextTable::AlignKind::Right);
  Report.addColumn(TheAligner->name(), TextTable::AlignKind::Right);
  Report.addColumn("removed", TextTable::AlignKind::Right);
  if (Options.ComputeBounds)
    Report.addColumn("hk-bound", TextTable::AlignKind::Right);

  for (size_t P = 0; P != Prog->numProcedures(); ++P) {
    const Procedure &Proc = Prog->proc(P);
    const ProcedureProfile &Profile = Counts.Procs[P];

    Layout Aligned = TheAligner->align(Proc, Profile, Model);
    uint64_t Original = evaluateLayout(Proc, Layout::original(Proc), Model,
                                       Profile, Profile);
    uint64_t After = evaluateLayout(Proc, Aligned, Model, Profile, Profile);

    std::vector<std::string> Row = {
        Proc.getName(),
        std::to_string(Proc.numBlocks()),
        formatCount(Profile.executedBranches(Proc)),
        std::to_string(Original),
        std::to_string(After),
        Original > 0
            ? formatPercent(1.0 - static_cast<double>(After) /
                                      static_cast<double>(Original))
            : "0%"};
    if (Options.ComputeBounds) {
      PenaltyBounds Bounds =
          computePenaltyBounds(Proc, Profile, Model, After);
      Row.push_back(formatFixed(Bounds.HeldKarp, 1));
    }
    Report.addRow(std::move(Row));

    std::printf("proc %s layout:", Proc.getName().c_str());
    for (BlockId Id : Aligned.Order) {
      const BasicBlock &Block = Proc.block(Id);
      std::printf(" %s", Block.Name.empty()
                             ? ("b" + std::to_string(Id)).c_str()
                             : Block.Name.c_str());
    }
    std::printf("\n");
    if (Options.EmitDot)
      std::printf("%s", printDot(Proc, &Profile.EdgeCounts).c_str());
  }
  std::printf("\n%s", Report.render().c_str());
  return 0;
}
