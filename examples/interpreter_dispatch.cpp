//===- examples/interpreter_dispatch.cpp - Aligning a bytecode VM ----------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// The motivating scenario behind the paper's xli benchmark: a bytecode
// interpreter whose hot loop is a multiway dispatch over opcode handlers.
// The source order lists the handlers alphabetically, but the dynamic
// opcode mix is heavily skewed, so the original layout scatters the hot
// handlers across the instruction cache and pays taken-branch penalties
// on every dispatch.
//
// This example builds that interpreter CFG, profiles two "bytecode
// programs" (one arithmetic-heavy, one comparison-heavy), aligns with
// greedy and TSP, and reports both computed control penalties and
// simulated cycles including instruction-cache behaviour.
//
//===--------------------------------------------------------------------===//

#include "align/Aligners.h"
#include "align/Penalty.h"
#include "ir/CFGBuilder.h"
#include "machine/MachineModel.h"
#include "profile/Trace.h"
#include "sim/Simulator.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace balign;

namespace {

constexpr unsigned NumOpcodes = 16;

/// Builds the interpreter: fetch -> dispatch(multiway over handlers);
/// each handler does work and loops back to fetch; HALT leaves.
struct Interpreter {
  Procedure Proc{"interp"};
  BlockId Fetch, Dispatch, Halt;
  std::vector<BlockId> Handlers;

  Interpreter() {
    CFGBuilder B("interp");
    BlockId Entry = B.jump(3, "entry");
    Fetch = B.cond(2, "fetch"); // Continue or halt.
    Dispatch = B.multi(3, "dispatch");
    Halt = B.ret(1, "halt");
    for (unsigned Op = 0; Op != NumOpcodes; ++Op)
      Handlers.push_back(
          B.jump(4 + (Op * 5) % 9, "op" + std::to_string(Op)));
    B.edge(Entry, Fetch);
    B.branches(Fetch, Dispatch, Halt);
    for (BlockId H : Handlers) {
      B.edge(Dispatch, H);
      B.edge(H, Fetch);
    }
    Proc = B.take();
  }

  /// An opcode mix: weights over handlers (normalized internally).
  BranchBehavior behaviorFor(const std::vector<double> &OpcodeMix,
                             double HaltProb) const {
    BranchBehavior Behavior = BranchBehavior::uniform(Proc);
    Behavior.Probs[Fetch] = {1.0 - HaltProb, HaltProb};
    double Sum = 0.0;
    for (double W : OpcodeMix)
      Sum += W;
    Behavior.Probs[Dispatch].clear();
    for (double W : OpcodeMix)
      Behavior.Probs[Dispatch].push_back(W / Sum);
    return Behavior;
  }
};

} // namespace

int main() {
  Interpreter VM;
  MachineModel Model = MachineModel::alpha21164();

  // Arithmetic-heavy program: opcodes 3, 7, 12 dominate.
  std::vector<double> Mix(NumOpcodes, 0.5);
  Mix[3] = 30;
  Mix[7] = 22;
  Mix[12] = 14;
  BranchBehavior Behavior = VM.behaviorFor(Mix, 1.0 / 5000.0);

  Rng TraceRng(2024);
  TraceGenOptions TraceOptions;
  TraceOptions.BranchBudget = 200000;
  ExecutionTrace Trace =
      generateTrace(VM.Proc, Behavior, TraceRng, TraceOptions);
  ProcedureProfile Profile = collectProfile(VM.Proc, Trace);
  std::printf("interpreted %s dispatches\n",
              formatCount(Profile.blockCount(VM.Dispatch)).c_str());

  Program Prog("vm");
  Prog.addProcedure(VM.Proc);
  ProgramProfile ProgProfile;
  ProgProfile.Procs.push_back(Profile);

  TextTable T;
  T.addColumn("layout");
  T.addColumn("penalty cycles", TextTable::AlignKind::Right);
  T.addColumn("sim cycles", TextTable::AlignKind::Right);
  T.addColumn("icache misses", TextTable::AlignKind::Right);
  T.addColumn("speedup", TextTable::AlignKind::Right);

  SimConfig Sim;
  Sim.Cache.SizeBytes = 2048; // Small cache: the handler set must fit.
  double BaselineCycles = 0.0;

  auto evaluate = [&](const Aligner &A) {
    Layout L = A.align(VM.Proc, Profile, Model);
    uint64_t Penalty = evaluateLayout(VM.Proc, L, Model, Profile, Profile);
    MaterializedLayout Mat = materializeLayout(VM.Proc, L, Profile, Model);
    SimResult R = simulateProgram(Prog, {Mat}, {Trace}, Sim);
    if (A.name() == "original")
      BaselineCycles = static_cast<double>(R.Cycles);
    T.addRow({A.name(), std::to_string(Penalty), std::to_string(R.Cycles),
              std::to_string(R.CacheMisses),
              formatFixed(BaselineCycles / static_cast<double>(R.Cycles),
                          3) +
                  "x"});
  };

  OriginalAligner Original;
  GreedyAligner Greedy;
  TspAligner Tsp;
  CalderGrunwaldAligner Cg;
  evaluate(Original);
  evaluate(Greedy);
  evaluate(Cg);
  evaluate(Tsp);
  std::printf("%s", T.render().c_str());

  std::printf("\nhot handlers (op3, op7, op12) sit adjacent to the "
              "dispatch block in the TSP layout,\nso the common "
              "dispatch->handler->fetch cycle stays within a couple of "
              "cache lines.\n");
  return 0;
}
