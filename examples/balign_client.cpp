//===- examples/balign_client.cpp - balign-serve client --------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Talks to an `align_tool --serve SOCK` server: sends align requests
// over the length-prefixed wire protocol and prints the report bytes —
// byte-identical to running align_tool one-shot on the same inputs —
// to stdout. Also exposes the service frames (ping, metrics, shutdown)
// so a shell script can health-check, scrape, and stop a server.
//
// Usage:
//   balign_client SOCK [file.cfg] [--profile FILE] [--seed N]
//                 [--budget N] [--bounds] [--deadline MS]
//                 [--on-error abort|fallback|skip]
//                 [--effort-policy uniform|scaled|scaled-cold-greedy]
//                 [--ping] [--metrics] [--shutdown]
//
// Request order on one connection: ping first (when asked), then the
// align for file.cfg (when given), then metrics, then shutdown. Exit
// codes: 0 success, 1 usage/connect/transport error, 2 the server
// answered an align with a structured error frame.
//
//===--------------------------------------------------------------------===//

#include "serve/Client.h"
#include "static/EffortPolicy.h"
#include "support/Flags.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace balign;

namespace {

struct ClientOptions {
  std::string Socket;
  std::string File;
  std::string ProfileFile;
  AlignRequest Request;
  bool Ping = false;
  bool Metrics = false;
  bool Shutdown = false;
};

bool parseArgs(int Argc, char **Argv, ClientOptions &Options) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      return flagValue(Flag, Argc, Argv, I);
    };
    auto needInt = [&](const char *Flag, uint64_t &Out,
                       uint64_t Max = UINT64_MAX) -> bool {
      return flagUInt(Flag, Argc, Argv, I, Out, Max);
    };
    if (Arg == "--seed") {
      if (!needInt("--seed", Options.Request.Seed))
        return false;
    } else if (Arg == "--budget") {
      if (!needInt("--budget", Options.Request.Budget))
        return false;
    } else if (Arg == "--deadline") {
      uint64_t Ms = 0;
      if (!needInt("--deadline", Ms, UINT32_MAX))
        return false;
      Options.Request.DeadlineMs = static_cast<uint32_t>(Ms);
    } else if (Arg == "--profile") {
      const char *V = needValue("--profile");
      if (!V)
        return false;
      Options.ProfileFile = V;
    } else if (Arg == "--on-error") {
      const char *V = needValue("--on-error");
      if (!V)
        return false;
      if (std::strcmp(V, "abort") == 0)
        Options.Request.OnError = OnErrorPolicy::Abort;
      else if (std::strcmp(V, "fallback") == 0)
        Options.Request.OnError = OnErrorPolicy::Fallback;
      else if (std::strcmp(V, "skip") == 0)
        Options.Request.OnError = OnErrorPolicy::Skip;
      else {
        std::fprintf(stderr, "error: unknown --on-error policy '%s' "
                     "(want abort, fallback, or skip)\n", V);
        return false;
      }
    } else if (Arg == "--effort-policy") {
      const char *V = needValue("--effort-policy");
      if (!V)
        return false;
      if (!parseEffortPolicy(V, Options.Request.Effort)) {
        std::fprintf(stderr, "error: unknown --effort-policy '%s' (want "
                     "uniform, scaled, or scaled-cold-greedy)\n", V);
        return false;
      }
    } else if (Arg == "--bounds") {
      Options.Request.ComputeBounds = true;
    } else if (Arg == "--aligner") {
      const char *V = needValue("--aligner");
      if (!V)
        return false;
      if (std::strcmp(V, "tsp") == 0)
        Options.Request.Primary = PrimaryAligner::Tsp;
      else if (std::strcmp(V, "exttsp") == 0)
        Options.Request.Primary = PrimaryAligner::ExtTsp;
      else {
        std::fprintf(stderr, "error: unknown --aligner '%s' (the server "
                     "only runs tsp or exttsp)\n", V);
        return false;
      }
      Options.Request.HasObjective = true;
    } else if (Arg == "--objective") {
      const char *V = needValue("--objective");
      if (!V)
        return false;
      if (!parseObjectiveKind(V, Options.Request.Objective)) {
        std::fprintf(stderr, "error: unknown --objective '%s' (want "
                     "fallthrough or exttsp)\n", V);
        return false;
      }
      Options.Request.HasObjective = true;
    } else if (Arg == "--exttsp-window") {
      uint64_t Window = 0;
      if (!flagUIntInRange("--exttsp-window", Argc, Argv, I, Window, 1,
                           1u << 20))
        return false;
      Options.Request.ExtTspForwardWindow = static_cast<uint32_t>(Window);
      Options.Request.ExtTspBackwardWindow = static_cast<uint32_t>(Window);
      Options.Request.HasObjective = true;
    } else if (Arg == "--exttsp-weights") {
      if (!flagDoublePair("--exttsp-weights", Argc, Argv, I,
                          Options.Request.ExtTspForwardWeight,
                          Options.Request.ExtTspBackwardWeight, 1024.0))
        return false;
      Options.Request.HasObjective = true;
    } else if (Arg == "--ping") {
      Options.Ping = true;
    } else if (Arg == "--metrics") {
      Options.Metrics = true;
    } else if (Arg == "--shutdown") {
      Options.Shutdown = true;
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf("usage: balign_client SOCK [file.cfg] [--profile FILE] "
                  "[--seed N] [--budget N]\n"
                  "                     [--bounds] [--deadline MS] "
                  "[--on-error abort|fallback|skip]\n"
                  "                     [--effort-policy P] "
                  "[--aligner tsp|exttsp]\n"
                  "                     [--objective fallthrough|exttsp] "
                  "[--exttsp-window N]\n"
                  "                     [--exttsp-weights F,B] [--ping] "
                  "[--metrics] [--shutdown]\n"
                  "Sends requests to an `align_tool --serve SOCK` server; "
                  "align reports go to\n"
                  "stdout byte-identical to one-shot align_tool. Exit: 0 "
                  "ok, 1 usage/transport\n"
                  "error, 2 the server answered align with an error "
                  "frame.\n");
      return false;
    } else if (!Arg.empty() && Arg[0] != '-') {
      if (Options.Socket.empty())
        Options.Socket = Arg;
      else if (Options.File.empty())
        Options.File = Arg;
      else {
        std::fprintf(stderr, "error: unexpected argument '%s'\n",
                     Arg.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return false;
    }
  }
  if (Options.Socket.empty()) {
    std::fprintf(stderr, "error: no server socket given (see --help)\n");
    return false;
  }
  if (Options.File.empty() && !Options.Ping && !Options.Metrics &&
      !Options.Shutdown) {
    std::fprintf(stderr, "error: nothing to do: give a file.cfg, --ping, "
                 "--metrics, or --shutdown\n");
    return false;
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  ClientOptions Options;
  if (!parseArgs(Argc, Argv, Options))
    return 1;

  ServeClient Client;
  std::string Error;
  if (!Client.connectUnix(Options.Socket, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  if (Options.Ping) {
    Frame Response;
    if (!Client.call(makeFrame(FrameType::Ping, "balign"), Response,
                     &Error) ||
        Response.Type != FrameType::Pong || Response.Body != "balign") {
      std::fprintf(stderr, "error: ping failed: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "pong\n");
  }

  if (!Options.File.empty()) {
    if (!readFile(Options.File, Options.Request.CfgText))
      return 1;
    if (!Options.ProfileFile.empty()) {
      if (!readFile(Options.ProfileFile, Options.Request.ProfileText))
        return 1;
      Options.Request.HasProfile = true;
    }
    Frame Response;
    if (!Client.call(makeFrame(FrameType::Align,
                               encodeAlignRequest(Options.Request)),
                     Response, &Error)) {
      std::fprintf(stderr, "error: align failed: %s\n", Error.c_str());
      return 1;
    }
    if (Response.Type != FrameType::AlignOk) {
      FrameError Code = FrameError::None;
      std::string Message;
      if (decodeErrorFrame(Response, Code, Message))
        std::fprintf(stderr, "error: server: %s: %s\n",
                     frameErrorName(Code), Message.c_str());
      else
        std::fprintf(stderr, "error: unexpected response frame '%s'\n",
                     frameTypeName(Response.Type));
      return 2;
    }
    std::fwrite(Response.Body.data(), 1, Response.Body.size(), stdout);
  }

  if (Options.Metrics) {
    Frame Response;
    if (!Client.call(makeFrame(FrameType::Metrics), Response, &Error) ||
        Response.Type != FrameType::MetricsOk) {
      std::fprintf(stderr, "error: metrics failed: %s\n", Error.c_str());
      return 1;
    }
    std::fwrite(Response.Body.data(), 1, Response.Body.size(), stdout);
  }

  if (Options.Shutdown) {
    Frame Response;
    if (!Client.call(makeFrame(FrameType::Shutdown), Response, &Error) ||
        Response.Type != FrameType::ShutdownOk) {
      std::fprintf(stderr, "error: shutdown failed: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "server shutting down\n");
  }
  return 0;
}
