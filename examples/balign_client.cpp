//===- examples/balign_client.cpp - balign-serve client --------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Talks to an `align_tool --serve SOCK` server: sends align requests
// over the length-prefixed wire protocol and prints the report bytes —
// byte-identical to running align_tool one-shot on the same inputs —
// to stdout. Also exposes the service frames (ping, metrics, shutdown)
// so a shell script can health-check, scrape, and stop a server.
//
// Usage:
//   balign_client SOCK [file.cfg] [--profile FILE] [--seed N]
//                 [--budget N] [--bounds] [--deadline MS]
//                 [--on-error abort|fallback|skip]
//                 [--effort-policy uniform|scaled|scaled-cold-greedy]
//                 [--batch LIST] [--retry N] [--retry-backoff MS]
//                 [--ping] [--metrics] [--shutdown]
//
// Request order on one connection: ping first (when asked), then the
// align for file.cfg (or each line of --batch LIST), then metrics,
// then shutdown. --retry N resends transport-failed requests up to N
// attempts with deterministic doubling backoff — align resends are
// idempotent (byte-identical on the wire), so a server restart
// mid-batch is invisible. Exit codes: 0 success, 1 usage or local
// file error, 2 a connect/transport failure or a structured server
// error frame (one-line diagnostic on stderr either way).
//
//===--------------------------------------------------------------------===//

#include "serve/Client.h"
#include "static/EffortPolicy.h"
#include "support/Flags.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace balign;

namespace {

struct ClientOptions {
  std::string Socket;
  std::string File;
  std::string ProfileFile;
  std::string BatchFile;
  AlignRequest Request;
  uint64_t Retry = 1;          ///< Total attempts per request.
  uint64_t RetryBackoffMs = 50;
  bool Ping = false;
  bool Metrics = false;
  bool Shutdown = false;
};

bool parseArgs(int Argc, char **Argv, ClientOptions &Options) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      return flagValue(Flag, Argc, Argv, I);
    };
    auto needInt = [&](const char *Flag, uint64_t &Out,
                       uint64_t Max = UINT64_MAX) -> bool {
      return flagUInt(Flag, Argc, Argv, I, Out, Max);
    };
    if (Arg == "--seed") {
      if (!needInt("--seed", Options.Request.Seed))
        return false;
    } else if (Arg == "--budget") {
      if (!needInt("--budget", Options.Request.Budget))
        return false;
    } else if (Arg == "--deadline") {
      uint64_t Ms = 0;
      if (!needInt("--deadline", Ms, UINT32_MAX))
        return false;
      Options.Request.DeadlineMs = static_cast<uint32_t>(Ms);
    } else if (Arg == "--profile") {
      const char *V = needValue("--profile");
      if (!V)
        return false;
      Options.ProfileFile = V;
    } else if (Arg == "--on-error") {
      const char *V = needValue("--on-error");
      if (!V)
        return false;
      if (std::strcmp(V, "abort") == 0)
        Options.Request.OnError = OnErrorPolicy::Abort;
      else if (std::strcmp(V, "fallback") == 0)
        Options.Request.OnError = OnErrorPolicy::Fallback;
      else if (std::strcmp(V, "skip") == 0)
        Options.Request.OnError = OnErrorPolicy::Skip;
      else {
        std::fprintf(stderr, "error: unknown --on-error policy '%s' "
                     "(want abort, fallback, or skip)\n", V);
        return false;
      }
    } else if (Arg == "--effort-policy") {
      const char *V = needValue("--effort-policy");
      if (!V)
        return false;
      if (!parseEffortPolicy(V, Options.Request.Effort)) {
        std::fprintf(stderr, "error: unknown --effort-policy '%s' (want "
                     "uniform, scaled, or scaled-cold-greedy)\n", V);
        return false;
      }
    } else if (Arg == "--bounds") {
      Options.Request.ComputeBounds = true;
    } else if (Arg == "--aligner") {
      const char *V = needValue("--aligner");
      if (!V)
        return false;
      if (std::strcmp(V, "tsp") == 0)
        Options.Request.Primary = PrimaryAligner::Tsp;
      else if (std::strcmp(V, "exttsp") == 0)
        Options.Request.Primary = PrimaryAligner::ExtTsp;
      else {
        std::fprintf(stderr, "error: unknown --aligner '%s' (the server "
                     "only runs tsp or exttsp)\n", V);
        return false;
      }
      Options.Request.HasObjective = true;
    } else if (Arg == "--objective") {
      const char *V = needValue("--objective");
      if (!V)
        return false;
      if (!parseObjectiveKind(V, Options.Request.Objective)) {
        std::fprintf(stderr, "error: unknown --objective '%s' (want "
                     "fallthrough or exttsp)\n", V);
        return false;
      }
      Options.Request.HasObjective = true;
    } else if (Arg == "--exttsp-window") {
      uint64_t Window = 0;
      if (!flagUIntInRange("--exttsp-window", Argc, Argv, I, Window, 1,
                           1u << 20))
        return false;
      Options.Request.ExtTspForwardWindow = static_cast<uint32_t>(Window);
      Options.Request.ExtTspBackwardWindow = static_cast<uint32_t>(Window);
      Options.Request.HasObjective = true;
    } else if (Arg == "--exttsp-weights") {
      if (!flagDoublePair("--exttsp-weights", Argc, Argv, I,
                          Options.Request.ExtTspForwardWeight,
                          Options.Request.ExtTspBackwardWeight, 1024.0))
        return false;
      Options.Request.HasObjective = true;
    } else if (Arg == "--batch") {
      const char *V = needValue("--batch");
      if (!V)
        return false;
      Options.BatchFile = V;
    } else if (Arg == "--retry") {
      if (!flagUIntInRange("--retry", Argc, Argv, I, Options.Retry, 1, 100))
        return false;
    } else if (Arg == "--retry-backoff") {
      if (!needInt("--retry-backoff", Options.RetryBackoffMs, 60000))
        return false;
    } else if (Arg == "--ping") {
      Options.Ping = true;
    } else if (Arg == "--metrics") {
      Options.Metrics = true;
    } else if (Arg == "--shutdown") {
      Options.Shutdown = true;
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf("usage: balign_client SOCK [file.cfg] [--profile FILE] "
                  "[--seed N] [--budget N]\n"
                  "                     [--bounds] [--deadline MS] "
                  "[--on-error abort|fallback|skip]\n"
                  "                     [--effort-policy P] "
                  "[--aligner tsp|exttsp]\n"
                  "                     [--objective fallthrough|exttsp] "
                  "[--exttsp-window N]\n"
                  "                     [--exttsp-weights F,B] "
                  "[--batch LIST] [--retry N]\n"
                  "                     [--retry-backoff MS] [--ping] "
                  "[--metrics] [--shutdown]\n"
                  "Sends requests to an `align_tool --serve SOCK` server; "
                  "align reports go to\n"
                  "stdout byte-identical to one-shot align_tool. --batch "
                  "LIST aligns every .cfg\n"
                  "named in LIST (one path per line); --retry N resends "
                  "transport-failed\n"
                  "requests idempotently. Exit: 0 ok, 1 usage or local "
                  "file error, 2 a\n"
                  "connect/transport failure or a server error frame.\n");
      return false;
    } else if (!Arg.empty() && Arg[0] != '-') {
      if (Options.Socket.empty())
        Options.Socket = Arg;
      else if (Options.File.empty())
        Options.File = Arg;
      else {
        std::fprintf(stderr, "error: unexpected argument '%s'\n",
                     Arg.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return false;
    }
  }
  if (Options.Socket.empty()) {
    std::fprintf(stderr, "error: no server socket given (see --help)\n");
    return false;
  }
  if (Options.File.empty() && Options.BatchFile.empty() && !Options.Ping &&
      !Options.Metrics && !Options.Shutdown) {
    std::fprintf(stderr, "error: nothing to do: give a file.cfg, --batch, "
                 "--ping, --metrics, or --shutdown\n");
    return false;
  }
  if (!Options.File.empty() && !Options.BatchFile.empty()) {
    std::fprintf(stderr, "error: give either a file.cfg or --batch, "
                 "not both\n");
    return false;
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  ClientOptions Options;
  if (!parseArgs(Argc, Argv, Options))
    return 1;

  RetryPolicy Policy;
  Policy.MaxAttempts = static_cast<unsigned>(Options.Retry);
  Policy.InitialBackoffMs = Options.RetryBackoffMs;
  Policy.MaxBackoffMs = Options.RetryBackoffMs * 16;

  ServeClient Client;
  std::string Error;
  // ECONNREFUSED (and every other connect failure) is exit code 2 with
  // a one-line diagnostic: the distinct code lets a batch driver tell
  // "server unreachable" from its own usage errors.
  if (!Client.connectUnixRetry(Options.Socket, Policy, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }

  if (Options.Ping) {
    Frame Response;
    if (!Client.call(makeFrame(FrameType::Ping, "balign"), Response,
                     &Error) ||
        Response.Type != FrameType::Pong || Response.Body != "balign") {
      std::fprintf(stderr, "error: ping failed: %s\n", Error.c_str());
      return 2;
    }
    std::fprintf(stderr, "pong\n");
  }

  // Collect the align workload: the single positional file, or every
  // line of --batch LIST.
  std::vector<std::string> AlignFiles;
  if (!Options.File.empty())
    AlignFiles.push_back(Options.File);
  if (!Options.BatchFile.empty()) {
    std::ifstream List(Options.BatchFile);
    if (!List) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   Options.BatchFile.c_str());
      return 1;
    }
    std::string Line;
    while (std::getline(List, Line))
      if (!Line.empty())
        AlignFiles.push_back(Line);
  }

  for (const std::string &File : AlignFiles) {
    AlignRequest Request = Options.Request;
    if (!readFile(File, Request.CfgText))
      return 1;
    if (!Options.ProfileFile.empty()) {
      if (!readFile(Options.ProfileFile, Request.ProfileText))
        return 1;
      Request.HasProfile = true;
    }
    std::string Report;
    // Transport failures mid-call (the server died under us) reconnect
    // and resend the byte-identical request; a structured server error
    // is final either way.
    if (!Client.alignWithRetry(Options.Socket, Request, Report, Policy,
                               &Error)) {
      std::fprintf(stderr, "error: align '%s' failed: %s\n", File.c_str(),
                   Error.c_str());
      return 2;
    }
    std::fwrite(Report.data(), 1, Report.size(), stdout);
  }

  if (Options.Metrics) {
    Frame Response;
    if (!Client.call(makeFrame(FrameType::Metrics), Response, &Error) ||
        Response.Type != FrameType::MetricsOk) {
      std::fprintf(stderr, "error: metrics failed: %s\n", Error.c_str());
      return 2;
    }
    std::fwrite(Response.Body.data(), 1, Response.Body.size(), stdout);
  }

  if (Options.Shutdown) {
    Frame Response;
    if (!Client.call(makeFrame(FrameType::Shutdown), Response, &Error) ||
        Response.Type != FrameType::ShutdownOk) {
      std::fprintf(stderr, "error: shutdown failed: %s\n", Error.c_str());
      return 2;
    }
    std::fprintf(stderr, "server shutting down\n");
  }
  return 0;
}
