//===- examples/quickstart.cpp - 60-second tour of the library -------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Builds a small procedure by hand, profiles it with a synthetic trace,
// aligns it with the greedy and TSP-based methods, and prints the control
// penalties of every layout next to the provable Held-Karp lower bound.
//
//===--------------------------------------------------------------------===//

#include "align/Aligners.h"
#include "align/Bounds.h"
#include "align/Penalty.h"
#include "ir/CFGBuilder.h"
#include "machine/MachineModel.h"
#include "profile/Trace.h"
#include "support/Random.h"

#include <cstdio>

using namespace balign;

int main() {
  // A procedure with a hot loop whose hot path zig-zags through the
  // source order — exactly the situation branch alignment fixes:
  //
  //   entry -> header; header -> {body | exit}; body -> {rare | tail};
  //   rare -> tail; tail -> header
  CFGBuilder B("hot_loop");
  BlockId Entry = B.jump(4, "entry");
  BlockId Header = B.cond(2, "header");
  BlockId Rare = B.jump(6, "rare");     // Placed hot-path-hostile.
  BlockId Body = B.cond(5, "body");
  BlockId Tail = B.jump(3, "tail");
  BlockId Exit = B.ret(1, "exit");
  B.edge(Entry, Header);
  B.branches(Header, Body, Exit); // Taken = stay in loop.
  B.branches(Body, Rare, Tail);
  B.edge(Rare, Tail);
  B.edge(Tail, Header);
  Procedure Proc = B.take();

  // "Run" the procedure: a seeded random walk with a 97%-stay loop and a
  // 2%-rare path stands in for an instrumented profiling run.
  BranchBehavior Behavior = BranchBehavior::uniform(Proc);
  Behavior.Probs[Header] = {0.97, 0.03};
  Behavior.Probs[Body] = {0.02, 0.98};
  Rng TraceRng(42);
  TraceGenOptions TraceOptions;
  TraceOptions.BranchBudget = 100000;
  ExecutionTrace Trace = generateTrace(Proc, Behavior, TraceRng,
                                       TraceOptions);
  ProcedureProfile Profile = collectProfile(Proc, Trace);
  std::printf("profiled %llu branch executions over %llu invocations\n",
              static_cast<unsigned long long>(Profile.executedBranches(Proc)),
              static_cast<unsigned long long>(Trace.Invocations));

  // Align three ways and evaluate under the Alpha 21164 model (Table 3).
  MachineModel Model = MachineModel::alpha21164();
  OriginalAligner Original;
  GreedyAligner Greedy;
  TspAligner Tsp;

  auto report = [&](const Aligner &A) {
    Layout L = A.align(Proc, Profile, Model);
    uint64_t Penalty = evaluateLayout(Proc, L, Model, Profile, Profile);
    std::printf("%-8s penalty %10llu cycles | layout:", A.name().c_str(),
                static_cast<unsigned long long>(Penalty));
    for (BlockId Id : L.Order)
      std::printf(" %s", Proc.block(Id).Name.c_str());
    std::printf("\n");
    return Penalty;
  };

  report(Original);
  report(Greedy);
  uint64_t TspPenalty = report(Tsp);

  // How good is that? Ask the Held-Karp bound.
  PenaltyBounds Bounds = computePenaltyBounds(Proc, Profile, Model,
                                              TspPenalty);
  std::printf("held-karp lower bound: %.1f cycles (tsp is within %.2f%%)\n",
              Bounds.HeldKarp,
              Bounds.HeldKarp > 0
                  ? 100.0 * (static_cast<double>(TspPenalty) -
                             Bounds.HeldKarp) /
                        Bounds.HeldKarp
                  : 0.0);
  return 0;
}
