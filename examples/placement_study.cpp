//===- examples/placement_study.cpp - Two-level placement walkthrough -------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Demonstrates the full two-level code-placement pipeline the paper's
// conclusion sketches: first align basic blocks *within* each procedure
// (the paper's contribution), then order the procedures themselves with
// the same TSP machinery (the Section 6 interprocedural future-work
// direction), and show how each level contributes to simulated cycles.
//
// Usage: placement_study [benchmark] [--threads N] (default xli)
//
//===--------------------------------------------------------------------===//

#include "align/Pipeline.h"
#include "interproc/Interleave.h"
#include "interproc/Placement.h"
#include "interproc/ProcOrder.h"
#include "support/Flags.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdint>
#include <string>

using namespace balign;

int main(int Argc, char **Argv) {
  std::string Benchmark = "xli";
  unsigned Threads = 1;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--threads") {
      uint64_t N = 0;
      if (!flagUInt("--threads", Argc, Argv, I, N, UINT32_MAX))
        return 1;
      Threads = static_cast<unsigned>(N);
    } else if (!Arg.empty() && Arg[0] != '-') {
      Benchmark = Arg;
    } else {
      std::fprintf(stderr, "usage: placement_study [benchmark] "
                   "[--threads N]\n");
      return 1;
    }
  }
  bool Known = false;
  for (const WorkloadSpec &Spec : benchmarkSuite())
    Known |= Spec.Benchmark == Benchmark;
  if (!Known) {
    std::fprintf(stderr,
                 "unknown benchmark '%s' (try com dod eqn esp su2 xli)\n",
                 Benchmark.c_str());
    return 1;
  }

  std::printf("building %s and aligning every procedure ...\n",
              Benchmark.c_str());
  WorkloadInstance W = buildWorkloadByName(Benchmark);
  const WorkloadDataSet &Ds = W.DataSets[1]; // The larger data set.
  AlignmentOptions Options;
  Options.ComputeBounds = false;
  Options.Threads = Threads; // Bit-identical results at every setting.
  ProgramAlignment A = alignProgram(W.Prog, Ds.Profile, Options);

  // Materialize both block-layout variants.
  auto materializeAll = [&](const std::vector<Layout> &Layouts) {
    std::vector<MaterializedLayout> Mats;
    for (size_t P = 0; P != W.Prog.numProcedures(); ++P)
      Mats.push_back(materializeLayout(W.Prog.proc(P), Layouts[P],
                                       Ds.Profile.Procs[P], Options.Model));
    return Mats;
  };
  std::vector<MaterializedLayout> OriginalBlocks =
      materializeAll(A.originalLayouts());
  std::vector<MaterializedLayout> AlignedBlocks =
      materializeAll(A.tspLayouts());

  // One interleaved call sequence shared by every configuration.
  std::vector<uint64_t> Counts = invocationCounts(W.Prog, Ds.Traces);
  InterleaveOptions IOptions;
  CallSequence Sequence = generateCallSequence(Counts, IOptions);
  auto Affinity =
      computeAffinity(Sequence, W.Prog.numProcedures(), /*Window=*/4);
  ProcOrder Ordered = tspOrder(Affinity);
  ProcOrder Identity = originalProcOrder(W.Prog.numProcedures());

  SimConfig Config;
  Config.Model = Options.Model;

  TextTable T;
  T.addColumn("configuration");
  T.addColumn("penalty cycles", TextTable::AlignKind::Right);
  T.addColumn("icache misses", TextTable::AlignKind::Right);
  T.addColumn("total cycles", TextTable::AlignKind::Right);
  T.addColumn("speedup", TextTable::AlignKind::Right);

  double Base = 0.0;
  auto Row = [&](const char *Name,
                 const std::vector<MaterializedLayout> &Mats,
                 const ProcOrder &Order) {
    SimResult R =
        simulatePlacement(W.Prog, Mats, Ds.Traces, Sequence, Order, Config);
    if (Base == 0.0)
      Base = static_cast<double>(R.Cycles);
    T.addRow({Name, formatCount(R.ControlPenaltyCycles),
              std::to_string(R.CacheMisses), formatCount(R.Cycles),
              formatFixed(Base / static_cast<double>(R.Cycles), 4) + "x"});
  };

  Row("original blocks, original order", OriginalBlocks, Identity);
  Row("aligned blocks,  original order", AlignedBlocks, Identity);
  Row("original blocks, tsp order", OriginalBlocks, Ordered);
  Row("aligned blocks,  tsp order", AlignedBlocks, Ordered);

  std::printf("\n%s.%s over %zu procedures:\n%s", Benchmark.c_str(),
              Ds.Name.c_str(), W.Prog.numProcedures(), T.render().c_str());
  std::printf("\nblock alignment removes control-penalty cycles; "
              "procedure ordering removes\ninstruction-cache conflict "
              "misses — the two compose.\n");
  return 0;
}
