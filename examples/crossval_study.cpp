//===- examples/crossval_study.cpp - Train/test data-set study --------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Reproduces the paper's Section 4.2 methodology on one benchmark: align
// with the profile of one data set (training) and evaluate the resulting
// layouts under the other (testing). Prints the four normalized penalty
// numbers the Figure 3 bars are made of — self-trained and cross-trained,
// for greedy and TSP — so you can see the dilution directly.
//
//===--------------------------------------------------------------------===//

#include "align/Penalty.h"
#include "align/Pipeline.h"
#include "support/Flags.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdint>
#include <string>

using namespace balign;

int main(int Argc, char **Argv) {
  std::string Benchmark = "xli";
  unsigned Threads = 1;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--threads") {
      uint64_t N = 0;
      if (!flagUInt("--threads", Argc, Argv, I, N, UINT32_MAX))
        return 1;
      Threads = static_cast<unsigned>(N);
    } else if (!Arg.empty() && Arg[0] != '-') {
      Benchmark = Arg;
    } else {
      std::fprintf(stderr, "usage: crossval_study [benchmark] "
                   "[--threads N]\n");
      return 1;
    }
  }
  bool Known = false;
  for (const WorkloadSpec &Spec : benchmarkSuite())
    Known |= Spec.Benchmark == Benchmark;
  if (!Known) {
    std::fprintf(stderr,
                 "unknown benchmark '%s' (try com dod eqn esp su2 xli)\n",
                 Benchmark.c_str());
    return 1;
  }

  std::printf("building workload %s ...\n", Benchmark.c_str());
  WorkloadInstance W = buildWorkloadByName(Benchmark);
  AlignmentOptions Options;
  Options.ComputeBounds = false;
  Options.Threads = Threads; // Bit-identical results at every setting.

  TextTable T;
  T.addColumn("test set");
  T.addColumn("trained on");
  T.addColumn("greedy", TextTable::AlignKind::Right);
  T.addColumn("tsp", TextTable::AlignKind::Right);

  for (size_t TestIdx = 0; TestIdx != 2; ++TestIdx) {
    const ProgramProfile &Test = W.DataSets[TestIdx].Profile;
    std::vector<Layout> Original;
    for (size_t P = 0; P != W.Prog.numProcedures(); ++P)
      Original.push_back(Layout::original(W.Prog.proc(P)));

    for (size_t TrainIdx = 0; TrainIdx != 2; ++TrainIdx) {
      const ProgramProfile &Train = W.DataSets[TrainIdx].Profile;
      // Baseline: original layout on the testing counts with this row's
      // (training-profile) static predictions, so the ratio isolates
      // the layout effect.
      uint64_t Base = evaluateProgramPenalty(W.Prog, Original,
                                             Options.Model, Train, Test);
      ProgramAlignment Result = alignProgram(W.Prog, Train, Options);
      uint64_t Greedy = evaluateProgramPenalty(
          W.Prog, Result.greedyLayouts(), Options.Model, Train, Test);
      uint64_t Tsp = evaluateProgramPenalty(
          W.Prog, Result.tspLayouts(), Options.Model, Train, Test);
      std::string Kind = TrainIdx == TestIdx ? " (self)" : " (cross)";
      T.addRow({W.dataSetLabel(TestIdx),
                W.dataSetLabel(TrainIdx) + Kind,
                formatNormalized(static_cast<double>(Greedy) /
                                 static_cast<double>(Base)),
                formatNormalized(static_cast<double>(Tsp) /
                                 static_cast<double>(Base))});
    }
    T.addSeparator();
  }
  std::printf("\ncontrol penalties, normalized to the original layout "
              "evaluated on the same test set:\n%s",
              T.render().c_str());
  std::printf("\nself rows reproduce Figure 2; cross rows reproduce "
              "Figure 3's dilution.\n");
  return 0;
}
