//===- examples/exttsp_study.cpp - Objective-diversity study ----------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Compares every registered aligner (original, greedy, cg, tsp, exttsp)
// on three metrics per workload data set, self-trained:
//
//   * the paper's Section 2.2 control penalty (lower is better),
//   * the Ext-TSP locality score (higher is better),
//   * the degenerate fall-through score — Ext-TSP with windows of 1,
//     i.e. pure weighted adjacency (higher is better),
//
// plus simulated I-cache misses from replaying the data set's traces over
// the materialized layouts. The Ext-TSP score of any layout is >= its
// fall-through score by construction (windowed credits only add), which
// the CI round-trip step asserts on this harness's JSON output.
//
// Usage: exttsp_study [benchmark ...] [--json PATH]
//   benchmarks default to the whole six-benchmark suite; --json writes
//   the same schema bench/exttsp_compare emits as BENCH_exttsp.json.
//
//===--------------------------------------------------------------------===//

#include "align/Aligners.h"
#include "objective/Objective.h"
#include "objective/Penalty.h"
#include "sim/Simulator.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace balign;

namespace {

/// All metrics of one aligner on one (workload, data set) cell.
struct AlignerRow {
  std::string Name;
  uint64_t Penalty = 0;
  double ExtTspScore = 0.0;
  double FallthroughScore = 0.0;
  uint64_t CacheMisses = 0;
  double AlignMs = 0.0;
  std::vector<double> ProcScores; ///< Per-procedure Ext-TSP score.
};

/// One (workload, data set) cell: every aligner's metrics plus the
/// per-procedure exttsp-vs-greedy comparison.
struct DataSetResult {
  std::string Label;
  size_t Procedures = 0;
  std::vector<AlignerRow> Rows;
  size_t Wins = 0, Ties = 0, Losses = 0;
};

AlignerRow evaluateAligner(const Aligner &A, const WorkloadInstance &W,
                           size_t Ds, const MachineModel &Model) {
  const ProgramProfile &Prof = W.DataSets[Ds].Profile;
  AlignerRow Row;
  Row.Name = A.name();

  std::vector<Layout> Layouts;
  Layouts.reserve(W.Prog.numProcedures());
  auto Start = std::chrono::steady_clock::now();
  for (size_t P = 0; P != W.Prog.numProcedures(); ++P)
    Layouts.push_back(A.align(W.Prog.proc(P), Prof.Procs[P], Model));
  Row.AlignMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  ExtTspObjective Ext(Model);
  MachineModel Degenerate = Model;
  Degenerate.ExtTspForwardWindow = 1;
  Degenerate.ExtTspBackwardWindow = 1;
  ExtTspObjective Fallthrough(Degenerate);
  for (size_t P = 0; P != W.Prog.numProcedures(); ++P) {
    const Procedure &Proc = W.Prog.proc(P);
    Row.Penalty += evaluateLayout(Proc, Layouts[P], Model, Prof.Procs[P],
                                  Prof.Procs[P]);
    double Score = Ext.scoreLayout(Proc, Prof.Procs[P], Layouts[P]);
    Row.ProcScores.push_back(Score);
    Row.ExtTspScore += Score;
    Row.FallthroughScore +=
        Fallthrough.scoreLayout(Proc, Prof.Procs[P], Layouts[P]);
  }

  std::vector<MaterializedLayout> Mats;
  Mats.reserve(W.Prog.numProcedures());
  for (size_t P = 0; P != W.Prog.numProcedures(); ++P)
    Mats.push_back(
        materializeLayout(W.Prog.proc(P), Layouts[P], Prof.Procs[P], Model));
  SimConfig Config;
  Config.Model = Model;
  SimResult Sim =
      simulateProgram(W.Prog, Mats, W.DataSets[Ds].Traces, Config);
  Row.CacheMisses = Sim.CacheMisses;
  return Row;
}

DataSetResult evaluateDataSet(const WorkloadInstance &W, size_t Ds,
                              const MachineModel &Model) {
  DataSetResult Result;
  Result.Label = W.dataSetLabel(Ds);
  Result.Procedures = W.Prog.numProcedures();

  std::vector<std::unique_ptr<Aligner>> Aligners;
  Aligners.push_back(std::make_unique<OriginalAligner>());
  Aligners.push_back(std::make_unique<GreedyAligner>());
  Aligners.push_back(std::make_unique<CalderGrunwaldAligner>());
  Aligners.push_back(std::make_unique<TspAligner>());
  Aligners.push_back(std::make_unique<ExtTspAligner>());
  for (const std::unique_ptr<Aligner> &A : Aligners)
    Result.Rows.push_back(evaluateAligner(*A, W, Ds, Model));

  const AlignerRow *Greedy = nullptr, *ExtTsp = nullptr;
  for (const AlignerRow &Row : Result.Rows) {
    if (Row.Name == "greedy")
      Greedy = &Row;
    if (Row.Name == "exttsp")
      ExtTsp = &Row;
  }
  for (size_t P = 0; P != Result.Procedures; ++P) {
    double Diff = ExtTsp->ProcScores[P] - Greedy->ProcScores[P];
    if (Diff > 1e-9)
      ++Result.Wins;
    else if (Diff < -1e-9)
      ++Result.Losses;
    else
      ++Result.Ties;
  }
  return Result;
}

/// Writes the BENCH_exttsp.json schema (shared with bench/exttsp_compare;
/// the CI round-trip step diffs the key structure of the two outputs).
void writeJson(std::FILE *Out, const std::vector<DataSetResult> &Cells,
               const MachineModel &Model) {
  size_t Procs = 0, Wins = 0, Ties = 0;
  uint64_t ExtTspPenalty = 0, TspPenalty = 0;
  for (const DataSetResult &Cell : Cells) {
    Procs += Cell.Procedures;
    Wins += Cell.Wins;
    Ties += Cell.Ties;
    for (const AlignerRow &Row : Cell.Rows) {
      if (Row.Name == "exttsp")
        ExtTspPenalty += Row.Penalty;
      if (Row.Name == "tsp")
        TspPenalty += Row.Penalty;
    }
  }
  std::fprintf(Out, "{\n  \"schema\": \"balign-exttsp-v1\",\n");
  std::fprintf(Out,
               "  \"objective\": {\"forward_window\": %u, "
               "\"backward_window\": %u, \"forward_weight\": %.6f, "
               "\"backward_weight\": %.6f},\n",
               Model.ExtTspForwardWindow, Model.ExtTspBackwardWindow,
               Model.ExtTspForwardWeight, Model.ExtTspBackwardWeight);
  std::fprintf(Out, "  \"datasets\": [\n");
  for (size_t C = 0; C != Cells.size(); ++C) {
    const DataSetResult &Cell = Cells[C];
    std::fprintf(Out,
                 "    {\"dataset\": \"%s\", \"procedures\": %zu,\n"
                 "     \"exttsp_vs_greedy\": {\"wins\": %zu, \"ties\": %zu, "
                 "\"losses\": %zu},\n     \"aligners\": [\n",
                 Cell.Label.c_str(), Cell.Procedures, Cell.Wins, Cell.Ties,
                 Cell.Losses);
    for (size_t R = 0; R != Cell.Rows.size(); ++R) {
      const AlignerRow &Row = Cell.Rows[R];
      std::fprintf(Out,
                   "      {\"name\": \"%s\", \"penalty\": %llu, "
                   "\"exttsp_score\": %.4f, \"fallthrough_score\": %.4f, "
                   "\"icache_misses\": %llu, \"align_ms\": %.3f}%s\n",
                   Row.Name.c_str(),
                   static_cast<unsigned long long>(Row.Penalty),
                   Row.ExtTspScore, Row.FallthroughScore,
                   static_cast<unsigned long long>(Row.CacheMisses),
                   Row.AlignMs, R + 1 == Cell.Rows.size() ? "" : ",");
    }
    std::fprintf(Out, "     ]}%s\n", C + 1 == Cells.size() ? "" : ",");
  }
  std::fprintf(Out, "  ],\n");
  // Strict wins and no-worse separately: on cold, near-deterministic
  // procedures the greedy chains already attain the optimum score (no
  // layout beats them), so ties there are a property of the workload,
  // not the aligner; the floor guarantees losses stay at zero.
  std::fprintf(
      Out,
      "  \"summary\": {\"procedures\": %zu, \"exttsp_vs_greedy_wins\": %zu, "
      "\"exttsp_vs_greedy_ties\": %zu, \"exttsp_strict_win_rate\": %.4f, "
      "\"exttsp_no_worse_rate\": %.4f, "
      "\"exttsp_tsp_penalty_ratio\": %.4f}\n}\n",
      Procs, Wins, Ties,
      Procs ? static_cast<double>(Wins) / static_cast<double>(Procs) : 0.0,
      Procs ? static_cast<double>(Wins + Ties) / static_cast<double>(Procs)
            : 0.0,
      TspPenalty ? static_cast<double>(ExtTspPenalty) /
                       static_cast<double>(TspPenalty)
                 : 0.0);
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Benchmarks;
  std::string JsonPath;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json") {
      if (I + 1 == Argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return 1;
      }
      JsonPath = Argv[++I];
    } else if (!Arg.empty() && Arg[0] != '-') {
      Benchmarks.push_back(Arg);
    } else {
      std::fprintf(stderr,
                   "usage: exttsp_study [benchmark ...] [--json PATH]\n");
      return 1;
    }
  }
  if (Benchmarks.empty())
    for (const WorkloadSpec &Spec : benchmarkSuite())
      Benchmarks.push_back(Spec.Benchmark);
  for (const std::string &B : Benchmarks) {
    bool Known = false;
    for (const WorkloadSpec &Spec : benchmarkSuite())
      Known |= Spec.Benchmark == B;
    if (!Known) {
      std::fprintf(stderr,
                   "unknown benchmark '%s' (try com dod eqn esp su2 xli)\n",
                   B.c_str());
      return 1;
    }
  }

  MachineModel Model = MachineModel::alpha21164();
  std::vector<DataSetResult> Cells;
  for (const std::string &B : Benchmarks) {
    std::fprintf(stderr, "[setup] building workload %s ...\n", B.c_str());
    WorkloadInstance W = buildWorkloadByName(B);
    for (size_t Ds = 0; Ds != W.DataSets.size(); ++Ds) {
      std::fprintf(stderr, "[setup] evaluating %s ...\n",
                   W.dataSetLabel(Ds).c_str());
      Cells.push_back(evaluateDataSet(W, Ds, Model));
    }
  }

  for (const DataSetResult &Cell : Cells) {
    TextTable T;
    T.addColumn("aligner");
    T.addColumn("penalty", TextTable::AlignKind::Right);
    T.addColumn("exttsp score", TextTable::AlignKind::Right);
    T.addColumn("fallthru score", TextTable::AlignKind::Right);
    T.addColumn("icache misses", TextTable::AlignKind::Right);
    T.addColumn("align ms", TextTable::AlignKind::Right);
    for (const AlignerRow &Row : Cell.Rows)
      T.addRow({Row.Name, formatCount(Row.Penalty),
                formatFixed(Row.ExtTspScore, 1),
                formatFixed(Row.FallthroughScore, 1),
                formatCount(Row.CacheMisses), formatFixed(Row.AlignMs, 2)});
    std::printf("\n=== %s (%zu procedures; exttsp vs greedy on Ext-TSP "
                "score: %zu wins, %zu ties, %zu losses) ===\n%s",
                Cell.Label.c_str(), Cell.Procedures, Cell.Wins, Cell.Ties,
                Cell.Losses, T.render().c_str());
  }

  size_t Procs = 0, Wins = 0;
  for (const DataSetResult &Cell : Cells) {
    Procs += Cell.Procedures;
    Wins += Cell.Wins;
  }
  std::printf("\nsummary: exttsp never scores below greedy and strictly "
              "beats it on %zu of %zu procedure cells (%.0f%%).\n",
              Wins, Procs,
              Procs ? 100.0 * static_cast<double>(Wins) /
                          static_cast<double>(Procs)
                    : 0.0);

  if (!JsonPath.empty()) {
    std::FILE *Out = std::fopen(JsonPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "cannot open %s for writing\n", JsonPath.c_str());
      return 1;
    }
    writeJson(Out, Cells, Model);
    std::fclose(Out);
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
