//===- bench/ablation_models.cpp - Design-choice ablations ------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Ablations for the design choices DESIGN.md calls out and the paper's
// Section 6 future-work directions:
//
//  1. Machine-model sensitivity ("we would like to investigate applying
//     our method to other machine models"): penalty removal under the
//     Alpha 21164, a deep speculative pipeline, and a cheap-branch core.
//  2. BTFNT hardware prediction (footnote 3's excluded case): how much
//     of the computed benefit survives when the hardware ignores the
//     compiler's predictions.
//  3. Aligner ladder: frequency-greedy vs cost-model greedy
//     (Calder-Grunwald) vs TSP.
//  4. Solver budget: runs x iterations sweep of iterated 3-Opt against
//     the Held-Karp bound (is the paper's 10x2N protocol overkill?).
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "align/Aligners.h"
#include "align/OutcomeCosts.h"
#include "tsp/IteratedOpt.h"
#include "support/Format.h"
#include "support/Statistics.h"
#include "support/Table.h"

using namespace balign;
using namespace balign::bench;

namespace {

/// Penalty of aligning \p W's data set \p Ds with \p A under \p Model,
/// normalized to the original layout.
double normalizedPenalty(const WorkloadInstance &W, size_t Ds,
                         const Aligner &A, const MachineModel &Model) {
  const ProgramProfile &Train = W.DataSets[Ds].Profile;
  uint64_t Aligned = 0, Original = 0;
  for (size_t P = 0; P != W.Prog.numProcedures(); ++P) {
    const Procedure &Proc = W.Prog.proc(P);
    Layout L = A.align(Proc, Train.Procs[P], Model);
    Aligned += evaluateLayout(Proc, L, Model, Train.Procs[P],
                              Train.Procs[P]);
    Original += evaluateLayout(Proc, Layout::original(Proc), Model,
                               Train.Procs[P], Train.Procs[P]);
  }
  return Original ? static_cast<double>(Aligned) /
                        static_cast<double>(Original)
                  : 1.0;
}

} // namespace

int main() {
  std::printf("=== Ablations: machine models, prediction hardware, "
              "aligners, solver budget ===\n\n");
  // eqn + dod: one loop-dominated and one branch-unfriendly benchmark.
  WorkloadInstance Eqn = buildWorkloadByName("eqn");
  WorkloadInstance Dod = buildWorkloadByName("dod");

  // --- 1. Machine-model sensitivity -------------------------------------
  {
    TextTable T;
    T.addColumn("model");
    T.addColumn("eqn.fx tsp pen", TextTable::AlignKind::Right);
    T.addColumn("dod.re tsp pen", TextTable::AlignKind::Right);
    for (const MachineModel &Model :
         {MachineModel::alpha21164(), MachineModel::deepPipeline(),
          MachineModel::cheapBranch()}) {
      TspAligner Tsp;
      T.addRow({Model.Name,
                formatNormalized(normalizedPenalty(Eqn, 0, Tsp, Model)),
                formatNormalized(normalizedPenalty(Dod, 0, Tsp, Model))});
    }
    std::printf("-- machine models (normalized TSP penalty; lower = more "
                "headroom exploited) --\n%s\n",
                T.render().c_str());
  }

  // --- 2. BTFNT hardware prediction -------------------------------------
  {
    AlignmentOptions Options;
    Options.ComputeBounds = false;
    ProgramAlignment A = alignProgram(Dod.Prog, Dod.DataSets[0].Profile,
                                      Options);
    TextTable T;
    T.addColumn("prediction");
    T.addColumn("orig cycles", TextTable::AlignKind::Right);
    T.addColumn("tsp cycles", TextTable::AlignKind::Right);
    T.addColumn("tsp speedup", TextTable::AlignKind::Right);
    for (PredictorKind Kind :
         {PredictorKind::ProfileStatic, PredictorKind::Btfnt,
          PredictorKind::Bimodal2Bit}) {
      std::vector<MaterializedLayout> MatsOrig, MatsTsp;
      for (size_t P = 0; P != Dod.Prog.numProcedures(); ++P) {
        MatsOrig.push_back(materializeLayout(
            Dod.Prog.proc(P), Layout::original(Dod.Prog.proc(P)),
            Dod.DataSets[0].Profile.Procs[P], Options.Model));
        MatsTsp.push_back(materializeLayout(
            Dod.Prog.proc(P), A.Procs[P].TspLayout,
            Dod.DataSets[0].Profile.Procs[P], Options.Model));
      }
      SimConfig Config;
      Config.Predictor = Kind;
      SimResult Orig = simulateProgram(Dod.Prog, MatsOrig,
                                       Dod.DataSets[0].Traces, Config);
      SimResult Tsp = simulateProgram(Dod.Prog, MatsTsp,
                                      Dod.DataSets[0].Traces, Config);
      const char *Name = Kind == PredictorKind::ProfileStatic
                             ? "profile-trained"
                             : Kind == PredictorKind::Btfnt ? "btfnt"
                                                            : "bimodal-2bit";
      T.addRow({Name, formatCount(Orig.Cycles), formatCount(Tsp.Cycles),
                formatPercent(1.0 - static_cast<double>(Tsp.Cycles) /
                                        static_cast<double>(Orig.Cycles))});
    }
    std::printf("-- prediction-hardware ablation (dod.re; the DTSP model "
                "assumes the hardware\nhonors static predictions — "
                "footnotes 3 and 6) --\n%s\n",
                T.render().c_str());
  }

  // --- 2b. Branch target buffer -----------------------------------------
  {
    AlignmentOptions Options;
    Options.ComputeBounds = false;
    ProgramAlignment A = alignProgram(Eqn.Prog, Eqn.DataSets[0].Profile,
                                      Options);
    TextTable T;
    T.addColumn("frontend");
    T.addColumn("orig cycles", TextTable::AlignKind::Right);
    T.addColumn("tsp cycles", TextTable::AlignKind::Right);
    T.addColumn("tsp speedup", TextTable::AlignKind::Right);
    for (bool UseBtb : {false, true}) {
      std::vector<MaterializedLayout> MatsOrig, MatsTsp;
      for (size_t P = 0; P != Eqn.Prog.numProcedures(); ++P) {
        MatsOrig.push_back(materializeLayout(
            Eqn.Prog.proc(P), Layout::original(Eqn.Prog.proc(P)),
            Eqn.DataSets[0].Profile.Procs[P], Options.Model));
        MatsTsp.push_back(materializeLayout(
            Eqn.Prog.proc(P), A.Procs[P].TspLayout,
            Eqn.DataSets[0].Profile.Procs[P], Options.Model));
      }
      SimConfig Config;
      Config.UseBtb = UseBtb;
      SimResult Orig = simulateProgram(Eqn.Prog, MatsOrig,
                                       Eqn.DataSets[0].Traces, Config);
      SimResult Tsp = simulateProgram(Eqn.Prog, MatsTsp,
                                      Eqn.DataSets[0].Traces, Config);
      T.addRow({UseBtb ? "512-entry btb" : "no btb",
                formatCount(Orig.Cycles), formatCount(Tsp.Cycles),
                formatPercent(1.0 - static_cast<double>(Tsp.Cycles) /
                                        static_cast<double>(Orig.Cycles))});
    }
    std::printf("-- branch-target-buffer ablation (eqn.fx): a BTB hides "
                "the misfetch bubbles\nbranch alignment also removes, so "
                "it shrinks the software benefit --\n%s\n",
                T.render().c_str());
  }

  // --- 3. Aligner ladder --------------------------------------------------
  {
    MachineModel Alpha = MachineModel::alpha21164();
    TextTable T;
    T.addColumn("aligner");
    T.addColumn("eqn.fx pen", TextTable::AlignKind::Right);
    T.addColumn("dod.re pen", TextTable::AlignKind::Right);
    GreedyAligner Greedy;
    CalderGrunwaldAligner Cg;
    TspAligner Tsp;
    for (const Aligner *A :
         std::initializer_list<const Aligner *>{&Greedy, &Cg, &Tsp}) {
      T.addRow({A->name(),
                formatNormalized(normalizedPenalty(Eqn, 0, *A, Alpha)),
                formatNormalized(normalizedPenalty(Dod, 0, *A, Alpha))});
    }
    std::printf("-- aligner ladder (normalized penalty, alpha21164) "
                "--\n%s\n",
                T.render().c_str());
  }

  // --- 3b. Trace-driven prediction-outcome costs (Section 6) -------------
  {
    // Align dod.re twice: with the static cost model and with costs
    // derived from a trace-driven bimodal-predictor simulation (the
    // paper's proposed refinement); judge both under the bimodal
    // simulator.
    AlignmentOptions Options;
    Options.ComputeBounds = false;
    const WorkloadDataSet &Ds = Dod.DataSets[0];
    ProgramAlignment Static = alignProgram(Dod.Prog, Ds.Profile, Options);

    std::vector<MaterializedLayout> MatsStatic, MatsDynamic;
    for (size_t P = 0; P != Dod.Prog.numProcedures(); ++P) {
      const Procedure &Proc = Dod.Prog.proc(P);
      const ProcedureProfile &Profile = Ds.Profile.Procs[P];
      MatsStatic.push_back(materializeLayout(
          Proc, Static.Procs[P].TspLayout, Profile, Options.Model));
      // Dynamic costs: measure outcomes on the original layout, build
      // the generalized Section 2.2 matrix, re-solve.
      MaterializedLayout OrigMat = materializeLayout(
          Proc, Layout::original(Proc), Profile, Options.Model);
      OutcomeCounts Outcomes =
          collectOutcomeCounts(Proc, OrigMat, Ds.Traces[P]);
      AlignmentTsp Atsp = buildOutcomeTsp(Proc, Outcomes, Options.Model);
      IteratedOptOptions SolverOptions = Options.Solver;
      SolverOptions.Seed = 0xd15c + P;
      DtspSolution Solution = solveDirectedTsp(Atsp.Tsp, SolverOptions);
      MatsDynamic.push_back(materializeLayout(
          Proc, layoutFromTour(Proc, Atsp, Solution.Tour), Profile,
          Options.Model));
    }
    SimConfig Config;
    Config.Predictor = PredictorKind::Bimodal2Bit;
    SimResult RStatic =
        simulateProgram(Dod.Prog, MatsStatic, Ds.Traces, Config);
    SimResult RDynamic =
        simulateProgram(Dod.Prog, MatsDynamic, Ds.Traces, Config);
    TextTable T;
    T.addColumn("cost model");
    T.addColumn("penalty cycles under bimodal hw", TextTable::AlignKind::Right);
    T.addColumn("total cycles", TextTable::AlignKind::Right);
    T.addRow({"static (paper main model)",
              formatCount(RStatic.ControlPenaltyCycles),
              formatCount(RStatic.Cycles)});
    T.addRow({"trace-driven outcomes (Section 6)",
              formatCount(RDynamic.ControlPenaltyCycles),
              formatCount(RDynamic.Cycles)});
    std::printf("-- trace-driven cost model (dod.re, judged under bimodal "
                "prediction hardware) --\n%s\n",
                T.render().c_str());
  }

  // --- 4. Solver budget sweep ----------------------------------------------
  {
    TextTable T;
    T.addColumn("protocol");
    T.addColumn("eqn.fx tsp pen", TextTable::AlignKind::Right);
    T.addColumn("solver sec", TextTable::AlignKind::Right);
    struct Budget {
      const char *Name;
      unsigned GreedyStarts, NnStarts;
      double Factor;
    };
    for (const Budget &B :
         {Budget{"1 run, 0.5N iters", 1, 0, 0.5},
          Budget{"3 runs, 1N iters", 2, 1, 1.0},
          Budget{"10 runs, 2N iters (paper)", 5, 4, 2.0},
          Budget{"10 runs, 8N iters", 5, 4, 8.0}}) {
      AlignmentOptions Options;
      Options.ComputeBounds = false;
      Options.Solver.GreedyStarts = B.GreedyStarts;
      Options.Solver.NearestNeighborStarts = B.NnStarts;
      Options.Solver.IterationsFactor = B.Factor;
      Options.Solver.MinIterationsPerRun =
          B.Factor < 1.0 ? 5 : Options.Solver.MinIterationsPerRun;
      ProgramAlignment A = alignProgram(Eqn.Prog, Eqn.DataSets[0].Profile,
                                        Options);
      double Norm = static_cast<double>(A.totalTspPenalty()) /
                    static_cast<double>(A.totalOriginalPenalty());
      T.addRow({B.Name, formatNormalized(Norm),
                formatFixed(A.SolverSeconds, 3)});
    }
    std::printf("-- iterated 3-Opt budget sweep (eqn.fx) --\n%s\n",
                T.render().c_str());
  }
  return 0;
}
