//===- bench/fig3_cross_validation.cpp - Reproduces Figure 3 ---------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Figure 3: training and testing on *different* data sets. Layouts (and
// their frozen static predictions) come from the sibling data set's
// profile; control penalties and simulated times are then measured on
// the named test data set and normalized to the original layout on that
// test set.
//
// Paper headline numbers this harness must reproduce in shape:
//   * cross-validated greedy removes 31% of computed penalties (vs 33%
//     self-trained); TSP removes 34% (vs 36%);
//   * time improvements dilute to 1.06% (greedy) and 1.66% (TSP);
//   * the ranking greedy < TSP survives cross-validation;
//   * xli.ne is a poor training set for xli.q7, but not vice versa.
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Format.h"
#include "support/Statistics.h"
#include "support/Table.h"

using namespace balign;
using namespace balign::bench;

int main() {
  std::printf("=== Figure 3: cross-validation (train on the sibling data "
              "set) ===\n\n");
  std::vector<WorkloadInstance> Suite = buildSuite();
  AlignmentOptions Options;
  Options.ComputeBounds = false;
  std::vector<AlignedCell> Cells = alignSuite(Suite, Options);

  // Cells are (workload, data set, alignment trained on that data set) —
  // for cross-validation we pair each test data set with the alignment
  // trained on its sibling.
  TextTable T;
  T.addColumn("test set");
  T.addColumn("greedy self", TextTable::AlignKind::Right);
  T.addColumn("greedy cross", TextTable::AlignKind::Right);
  T.addColumn("tsp self", TextTable::AlignKind::Right);
  T.addColumn("tsp cross", TextTable::AlignKind::Right);
  T.addColumn("g-time cross", TextTable::AlignKind::Right);
  T.addColumn("t-time cross", TextTable::AlignKind::Right);

  std::vector<double> SelfGreedy, CrossGreedy, SelfTsp, CrossTsp;
  std::vector<double> CrossGreedyTime, CrossTspTime;

  for (const AlignedCell &Cell : Cells) {
    const WorkloadInstance &W = *Cell.Workload;
    size_t TestIdx = Cell.DataSetIndex;
    size_t TrainIdx = 1 - TestIdx;
    // Find the sibling-trained alignment in the cell list.
    const AlignedCell *TrainCell = nullptr;
    for (const AlignedCell &Other : Cells)
      if (Other.Workload == &W && Other.DataSetIndex == TrainIdx)
        TrainCell = &Other;
    if (!TrainCell)
      continue;

    const ProgramProfile &Test = W.DataSets[TestIdx].Profile;
    const ProgramProfile &Train = W.DataSets[TrainIdx].Profile;

    // Baseline: the original layout evaluated on the testing profile,
    // with static predictions from the *training* profile — the same
    // prediction vintage every cross bar uses, so ratios isolate the
    // layout effect (tiny test traces would otherwise make the baseline
    // an overfit oracle).
    std::vector<Layout> Original = Cell.Alignment.originalLayouts();
    uint64_t Base = evaluateProgramPenalty(W.Prog, Original, Options.Model,
                                           Train, Test);
    if (Base == 0)
      continue;

    // Self-trained numbers (repeated from Figure 2 as the black/white
    // bars are in the paper).
    double NSelfGreedy =
        static_cast<double>(Cell.Alignment.totalGreedyPenalty()) /
        static_cast<double>(Cell.Alignment.totalOriginalPenalty());
    double NSelfTsp =
        static_cast<double>(Cell.Alignment.totalTspPenalty()) /
        static_cast<double>(Cell.Alignment.totalOriginalPenalty());

    // Cross-trained: layouts + predictions from Train, charges from Test.
    uint64_t CrossG = evaluateProgramPenalty(
        W.Prog, TrainCell->Alignment.greedyLayouts(), Options.Model, Train,
        Test);
    uint64_t CrossT = evaluateProgramPenalty(
        W.Prog, TrainCell->Alignment.tspLayouts(), Options.Model, Train,
        Test);
    double NCrossGreedy = static_cast<double>(CrossG) /
                          static_cast<double>(Base);
    double NCrossTsp = static_cast<double>(CrossT) /
                       static_cast<double>(Base);

    // Simulated execution times, cross-trained, normalized to the
    // original layout replaying the same test traces.
    SimResult SimOrig =
        simulateLayouts(W, Original, Test, W.DataSets[TestIdx],
                        Options.Model);
    SimResult SimGreedy = simulateLayouts(
        W, TrainCell->Alignment.greedyLayouts(), Train,
        W.DataSets[TestIdx], Options.Model);
    SimResult SimTsp = simulateLayouts(
        W, TrainCell->Alignment.tspLayouts(), Train, W.DataSets[TestIdx],
        Options.Model);
    double NGreedyTime = static_cast<double>(SimGreedy.Cycles) /
                         static_cast<double>(SimOrig.Cycles);
    double NTspTime = static_cast<double>(SimTsp.Cycles) /
                      static_cast<double>(SimOrig.Cycles);

    SelfGreedy.push_back(NSelfGreedy);
    CrossGreedy.push_back(NCrossGreedy);
    SelfTsp.push_back(NSelfTsp);
    CrossTsp.push_back(NCrossTsp);
    CrossGreedyTime.push_back(NGreedyTime);
    CrossTspTime.push_back(NTspTime);

    T.addRow({Cell.label(), formatNormalized(NSelfGreedy),
              formatNormalized(NCrossGreedy), formatNormalized(NSelfTsp),
              formatNormalized(NCrossTsp), formatNormalized(NGreedyTime),
              formatNormalized(NTspTime)});
  }
  std::printf("%s\n", T.render().c_str());

  TextTable Summary;
  Summary.addColumn("metric");
  Summary.addColumn("ours", TextTable::AlignKind::Right);
  Summary.addColumn("paper", TextTable::AlignKind::Right);
  Summary.addRow({"penalty removed, greedy self",
                  formatPercent(1.0 - mean(SelfGreedy)), "33%"});
  Summary.addRow({"penalty removed, greedy cross",
                  formatPercent(1.0 - mean(CrossGreedy)), "31%"});
  Summary.addRow({"penalty removed, tsp self",
                  formatPercent(1.0 - mean(SelfTsp)), "36%"});
  Summary.addRow({"penalty removed, tsp cross",
                  formatPercent(1.0 - mean(CrossTsp)), "34%"});
  Summary.addRow({"time improvement, greedy cross",
                  formatPercent(1.0 - mean(CrossGreedyTime)), "1.06%"});
  Summary.addRow({"time improvement, tsp cross",
                  formatPercent(1.0 - mean(CrossTspTime)), "1.66%"});
  std::printf("%s\n", Summary.render().c_str());
  std::printf("shape check: cross bars sit above self bars but the bulk "
              "of the benefit and the\ngreedy-vs-tsp ranking survive, as "
              "in the paper.\n");
  return 0;
}
