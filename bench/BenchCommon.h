//===- bench/BenchCommon.h - Shared harness utilities ----------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
//===--------------------------------------------------------------------===//
///
/// \file
/// Utilities shared by the per-table/figure harnesses: building the suite,
/// running whole-program alignment per data set, and simulating execution
/// times. Every harness prints its table to stdout and exits 0 so the
/// whole directory can be run with `for b in build/bench/*; do $b; done`.
///
//===--------------------------------------------------------------------===//

#ifndef BALIGN_BENCH_BENCHCOMMON_H
#define BALIGN_BENCH_BENCHCOMMON_H

#include "align/Penalty.h"
#include "align/Pipeline.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <string>
#include <vector>

namespace balign {
namespace bench {

/// One benchmark x data-set cell of the evaluation: the workload, which
/// data set is under test, and the alignment trained on it.
struct AlignedCell {
  const WorkloadInstance *Workload = nullptr;
  size_t DataSetIndex = 0;
  ProgramAlignment Alignment;

  std::string label() const {
    return Workload->dataSetLabel(DataSetIndex);
  }
  const WorkloadDataSet &dataSet() const {
    return Workload->DataSets[DataSetIndex];
  }
};

/// Builds all six workloads once. Expensive (tens of millions of traced
/// blocks); harnesses share the result across their data sets.
inline std::vector<WorkloadInstance> buildSuite() {
  std::vector<WorkloadInstance> Suite;
  for (const WorkloadSpec &Spec : benchmarkSuite()) {
    std::fprintf(stderr, "[setup] building workload %s ...\n",
                 Spec.Benchmark.c_str());
    Suite.push_back(buildWorkload(Spec));
  }
  return Suite;
}

/// Aligns every data set of every workload with the given options.
inline std::vector<AlignedCell>
alignSuite(const std::vector<WorkloadInstance> &Suite,
           const AlignmentOptions &Options) {
  std::vector<AlignedCell> Cells;
  for (const WorkloadInstance &W : Suite) {
    for (size_t Ds = 0; Ds != W.DataSets.size(); ++Ds) {
      std::fprintf(stderr, "[setup] aligning %s ...\n",
                   W.dataSetLabel(Ds).c_str());
      AlignedCell Cell;
      Cell.Workload = &W;
      Cell.DataSetIndex = Ds;
      Cell.Alignment =
          alignProgram(W.Prog, W.DataSets[Ds].Profile, Options);
      Cells.push_back(std::move(Cell));
    }
  }
  return Cells;
}

/// Simulates \p Layouts against one data set's traces; arrangements and
/// predictions come from \p Train (the training profile).
inline SimResult simulateLayouts(const WorkloadInstance &W,
                                 const std::vector<Layout> &Layouts,
                                 const ProgramProfile &Train,
                                 const WorkloadDataSet &TestDs,
                                 const MachineModel &Model) {
  std::vector<MaterializedLayout> Mats;
  Mats.reserve(W.Prog.numProcedures());
  for (size_t P = 0; P != W.Prog.numProcedures(); ++P)
    Mats.push_back(
        materializeLayout(W.Prog.proc(P), Layouts[P], Train.Procs[P],
                          Model));
  SimConfig Config;
  Config.Model = Model;
  return simulateProgram(W.Prog, Mats, TestDs.Traces, Config);
}

} // namespace bench
} // namespace balign

#endif // BALIGN_BENCH_BENCHCOMMON_H
