//===- bench/fig2_same_dataset.cpp - Reproduces Figure 2 -------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Figure 2: training and testing on the same data set. Left graph:
// compiler-computed control penalties of the greedy and TSP layouts and
// the Held-Karp lower bound, normalized to the original layout. Right
// graph: execution times (simulated here) under the same normalization.
//
// Paper headline numbers this harness must reproduce in shape:
//   * greedy removes a mean of 33% of control penalties, TSP 36%, and
//     the lower bound shows 36% is the best possible;
//   * the TSP tours are within 0.3% of the HK bounds on average;
//   * execution time improves 1.19% (greedy) and 2.01% (TSP) — TSP wins
//     by more in time than in penalties (unmodeled cache effects);
//   * doduc loses ~2/3 of its penalties; su2cor is essentially
//     unchanged, and may even slow down slightly under TSP layout.
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Format.h"
#include "support/Statistics.h"
#include "support/Table.h"

using namespace balign;
using namespace balign::bench;

int main() {
  std::printf("=== Figure 2: train and test on the same data set ===\n\n");
  std::vector<WorkloadInstance> Suite = buildSuite();
  AlignmentOptions Options;
  std::vector<AlignedCell> Cells = alignSuite(Suite, Options);

  TextTable T;
  T.addColumn("data set");
  T.addColumn("greedy pen", TextTable::AlignKind::Right);
  T.addColumn("tsp pen", TextTable::AlignKind::Right);
  T.addColumn("hk bound", TextTable::AlignKind::Right);
  T.addColumn("greedy time", TextTable::AlignKind::Right);
  T.addColumn("tsp time", TextTable::AlignKind::Right);

  std::vector<double> GreedyPen, TspPen, BoundPen, GreedyTime, TspTime;
  std::vector<double> TspVsBound;

  for (const AlignedCell &Cell : Cells) {
    const WorkloadInstance &W = *Cell.Workload;
    const ProgramAlignment &A = Cell.Alignment;
    double Original = static_cast<double>(A.totalOriginalPenalty());
    if (Original == 0.0)
      continue;

    double NGreedy = static_cast<double>(A.totalGreedyPenalty()) / Original;
    double NTsp = static_cast<double>(A.totalTspPenalty()) / Original;
    double NBound = A.totalHeldKarpBound() / Original;

    const ProgramProfile &Train = Cell.dataSet().Profile;
    SimResult SimOrig = simulateLayouts(W, A.originalLayouts(), Train,
                                        Cell.dataSet(), Options.Model);
    SimResult SimGreedy = simulateLayouts(W, A.greedyLayouts(), Train,
                                          Cell.dataSet(), Options.Model);
    SimResult SimTsp = simulateLayouts(W, A.tspLayouts(), Train,
                                       Cell.dataSet(), Options.Model);
    double NGreedyTime = static_cast<double>(SimGreedy.Cycles) /
                         static_cast<double>(SimOrig.Cycles);
    double NTspTime = static_cast<double>(SimTsp.Cycles) /
                      static_cast<double>(SimOrig.Cycles);

    GreedyPen.push_back(NGreedy);
    TspPen.push_back(NTsp);
    BoundPen.push_back(NBound);
    GreedyTime.push_back(NGreedyTime);
    TspTime.push_back(NTspTime);
    if (A.totalHeldKarpBound() > 0.0)
      TspVsBound.push_back(static_cast<double>(A.totalTspPenalty()) /
                           A.totalHeldKarpBound());

    T.addRow({Cell.label(), formatNormalized(NGreedy),
              formatNormalized(NTsp), formatNormalized(NBound),
              formatNormalized(NGreedyTime), formatNormalized(NTspTime)});
  }
  std::printf("%s\n", T.render().c_str());

  TextTable Summary;
  Summary.addColumn("metric");
  Summary.addColumn("ours", TextTable::AlignKind::Right);
  Summary.addColumn("paper", TextTable::AlignKind::Right);
  Summary.addRow({"mean penalty removed, greedy",
                  formatPercent(1.0 - mean(GreedyPen)), "33%"});
  Summary.addRow({"mean penalty removed, tsp",
                  formatPercent(1.0 - mean(TspPen)), "36%"});
  Summary.addRow({"mean penalty removable (bound)",
                  formatPercent(1.0 - mean(BoundPen)), "36%"});
  Summary.addRow({"mean tsp gap above hk bound",
                  formatPercent(mean(TspVsBound) - 1.0), "0.3%"});
  Summary.addRow({"mean exec time improvement, greedy",
                  formatPercent(1.0 - mean(GreedyTime)), "1.19%"});
  Summary.addRow({"mean exec time improvement, tsp",
                  formatPercent(1.0 - mean(TspTime)), "2.01%"});
  std::printf("%s\n", Summary.render().c_str());
  return 0;
}
