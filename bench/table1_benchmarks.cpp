//===- bench/table1_benchmarks.cpp - Reproduces Table 1 --------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Table 1 of the paper lists each benchmark and data set with the number
// of branch sites touched and executed branch instructions. Our traces
// are scaled to 1/1000 of the paper's executed-branch counts (DESIGN.md,
// Section 2), so the "ours" executed column should track paper/1000 and
// the touched-sites column should land in the same ballpark as the
// paper's counts.
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Format.h"
#include "support/Table.h"

using namespace balign;
using namespace balign::bench;

namespace {

struct PaperRow {
  const char *DataSet;
  unsigned SitesTouched;
  double ExecutedMillions;
};

const PaperRow PaperRows[] = {
    {"com.in", 56, 11.8},   {"com.st", 56, 135.4},  {"dod.re", 657, 77.6},
    {"dod.sm", 651, 13.4},  {"eqn.fx", 309, 46.5},  {"eqn.ip", 303, 335.8},
    {"esp.ti", 1458, 87.0}, {"esp.tl", 1440, 157.2},{"su2.re", 318, 168.3},
    {"su2.sh", 316, 13.1},  {"xli.ne", 295, 0.1},   {"xli.q7", 367, 42.0},
};

const PaperRow *findPaperRow(const std::string &Label) {
  for (const PaperRow &Row : PaperRows)
    if (Label == Row.DataSet)
      return &Row;
  return nullptr;
}

} // namespace

int main() {
  std::printf("=== Table 1: benchmarks and data sets ===\n");
  std::printf("(executed branches scaled 1/1000 vs the paper; see "
              "DESIGN.md)\n\n");
  std::vector<WorkloadInstance> Suite = buildSuite();

  TextTable T;
  T.addColumn("data set");
  T.addColumn("description");
  T.addColumn("procs", TextTable::AlignKind::Right);
  T.addColumn("sites touched", TextTable::AlignKind::Right);
  T.addColumn("paper", TextTable::AlignKind::Right);
  T.addColumn("executed", TextTable::AlignKind::Right);
  T.addColumn("paper/1000", TextTable::AlignKind::Right);

  for (const WorkloadInstance &W : Suite) {
    for (size_t Ds = 0; Ds != W.DataSets.size(); ++Ds) {
      std::string Label = W.dataSetLabel(Ds);
      const PaperRow *Paper = findPaperRow(Label);
      const ProgramProfile &Profile = W.DataSets[Ds].Profile;
      T.addRow({Label, W.Spec.Description,
                std::to_string(W.Prog.numProcedures()),
                std::to_string(Profile.branchSitesTouched(W.Prog)),
                Paper ? std::to_string(Paper->SitesTouched) : "-",
                formatCount(Profile.executedBranches(W.Prog)),
                Paper ? formatCount(static_cast<uint64_t>(
                            Paper->ExecutedMillions * 1e3))
                      : "-"});
    }
    T.addSeparator();
  }
  std::printf("%s\n", T.render().c_str());
  return 0;
}
