//===- bench/appendix_bounds.cpp - Reproduces the appendix statistics ------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// The paper's appendix studies the quality of the two lower bounds on
// branch-alignment DTSP instances:
//
//  * AP bound: for esp.tl, 71 of 179 procedures have AP = optimal tour;
//    the median gap for the remaining 108 is 30%, and for 15 instances
//    the optimum exceeds 10x the AP bound.
//  * HK bound: per program, the sum of HK bounds is never more than 0.9%
//    below the total tour length found; the average is < 0.3%; the worst
//    single-procedure gap is 14%.
//  * Solver reproducibility: on 128 of esp.tl's 179 procedures the best
//    tour was found by all 10 runs.
//
// This harness recomputes every statistic. Where the true optimum is
// needed, the exact Held-Karp DP supplies it for instances of <= 18
// cities and the best tour found stands in above that (as in the paper,
// which could not solve every instance exactly either).
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Format.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "tsp/Exact.h"

using namespace balign;
using namespace balign::bench;

int main() {
  std::printf("=== Appendix: bound quality and solver reproducibility "
              "===\n\n");
  std::vector<WorkloadInstance> Suite = buildSuite();
  AlignmentOptions Options;
  std::vector<AlignedCell> Cells = alignSuite(Suite, Options);

  TextTable T;
  T.addColumn("data set");
  T.addColumn("procs", TextTable::AlignKind::Right);
  T.addColumn("hk gap (sum)", TextTable::AlignKind::Right);
  T.addColumn("worst proc hk gap", TextTable::AlignKind::Right);
  T.addColumn("ap=opt", TextTable::AlignKind::Right);
  T.addColumn("median ap gap", TextTable::AlignKind::Right);
  T.addColumn("opt>10x ap", TextTable::AlignKind::Right);
  T.addColumn("all-runs-tie", TextTable::AlignKind::Right);

  for (const AlignedCell &Cell : Cells) {
    const WorkloadInstance &W = *Cell.Workload;
    double TourSum = 0.0, BoundSum = 0.0, WorstGap = 0.0;
    size_t ApEqualsOpt = 0, ApBlowups = 0, AllRunsTie = 0, Active = 0;
    std::vector<double> ApGaps;

    for (size_t P = 0; P != W.Prog.numProcedures(); ++P) {
      const ProcedureAlignment &PA = Cell.Alignment.Procs[P];
      if (PA.OriginalPenalty == 0)
        continue; // Untouched procedure: no instance to speak of.
      ++Active;

      // Reference "optimal": exact DP when feasible, else the TSP tour.
      double Opt = static_cast<double>(PA.TspPenalty);
      if (W.Prog.proc(P).numBlocks() + 1 <= MaxExactCities) {
        AlignmentTsp Atsp = buildAlignmentTsp(
            W.Prog.proc(P), Cell.dataSet().Profile.Procs[P], Options.Model);
        Opt = static_cast<double>(solveExactDirected(Atsp.Tsp));
      }

      TourSum += static_cast<double>(PA.TspPenalty);
      BoundSum += PA.Bounds.HeldKarp;
      if (PA.TspPenalty > 0) {
        double Gap = (static_cast<double>(PA.TspPenalty) -
                      PA.Bounds.HeldKarp) /
                     static_cast<double>(PA.TspPenalty);
        WorstGap = std::max(WorstGap, Gap);
      }

      double Ap = static_cast<double>(PA.Bounds.Assignment);
      if (Ap >= Opt - 0.5) {
        ++ApEqualsOpt;
      } else if (Ap > 0.0) {
        ApGaps.push_back((Opt - Ap) / Ap);
        if (Opt > 10.0 * Ap)
          ++ApBlowups;
      } else if (Opt > 0.0) {
        ++ApBlowups; // AP bound of zero against a positive optimum.
        ApGaps.push_back(10.0);
      }
      if (PA.RunsFindingBest == PA.SolverRuns)
        ++AllRunsTie;
    }

    double SumGap =
        TourSum > 0.0 ? (TourSum - BoundSum) / TourSum : 0.0;
    T.addRow({Cell.label(), std::to_string(Active),
              formatPercent(SumGap), formatPercent(WorstGap),
              std::to_string(ApEqualsOpt) + "/" + std::to_string(Active),
              ApGaps.empty() ? "-" : formatPercent(median(ApGaps)),
              std::to_string(ApBlowups),
              std::to_string(AllRunsTie) + "/" + std::to_string(Active)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("paper reference: esp.tl had 71/179 procedures with AP = "
              "optimum, median AP gap 30%%\nfor the rest, 15 instances "
              "with optimum > 10x AP, HK sum gap <= 0.9%% per program\n"
              "(avg < 0.3%%, worst single-procedure gap 14%%), and "
              "128/179 procedures where all\n10 solver runs tied the "
              "best tour.\n");
  return 0;
}
