//===- bench/solver_micro.cpp - google-benchmark solver microbenchmarks -----===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Microbenchmarks for the combinatorial kernels backing Section 3.2's
// compile-time discussion: tour construction, local search, the full
// iterated 3-Opt protocol, the Held-Karp bound, and the Hungarian
// assignment bound, across instance sizes typical of branch-alignment
// DTSPs (tens to hundreds of basic blocks).
//
//===--------------------------------------------------------------------===//

#include "support/Random.h"
#include "tsp/Assignment.h"
#include "tsp/Construct.h"
#include "tsp/HeldKarp.h"
#include "tsp/Instance.h"
#include "tsp/IteratedOpt.h"
#include "tsp/LocalSearch.h"
#include "tsp/Transform.h"

#include <benchmark/benchmark.h>

using namespace balign;

namespace {

/// Alignment-like random instance: every city has a couple of cheap
/// arcs (hot CFG edges) over an expensive background.
DirectedTsp alignmentLikeInstance(size_t N, uint64_t Seed) {
  Rng R(Seed);
  DirectedTsp D(N);
  for (City I = 0; I != N; ++I)
    for (City J = 0; J != N; ++J)
      if (I != J)
        D.setCost(I, J, 200 + static_cast<int64_t>(R.nextBelow(800)));
  for (City I = 0; I != N; ++I) {
    for (int Hot = 0; Hot != 2; ++Hot) {
      City J = static_cast<City>(R.nextIndex(N));
      if (J != I)
        D.setCost(I, J, static_cast<int64_t>(R.nextBelow(40)));
    }
  }
  return D;
}

void BM_GreedyConstruction(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  DirectedTsp D = alignmentLikeInstance(N, 42);
  Rng R(7);
  for (auto _ : State)
    benchmark::DoNotOptimize(greedyEdgeTour(D, R));
}
BENCHMARK(BM_GreedyConstruction)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_NearestNeighborConstruction(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  DirectedTsp D = alignmentLikeInstance(N, 42);
  Rng R(7);
  for (auto _ : State)
    benchmark::DoNotOptimize(nearestNeighborTour(D, R));
}
BENCHMARK(BM_NearestNeighborConstruction)->Arg(16)->Arg(64)->Arg(256);

void BM_LocalSearch(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  DirectedTsp D = alignmentLikeInstance(N, 42);
  SymmetricTransform T = transformToSymmetric(D);
  NeighborLists Neighbors(T.Sym, 12);
  Rng R(3);
  for (auto _ : State) {
    State.PauseTiming();
    std::vector<City> Dir = canonicalTour(N);
    R.shuffle(Dir);
    std::vector<City> Sym = T.toSymmetricTour(Dir);
    State.ResumeTiming();
    benchmark::DoNotOptimize(localSearchSymmetric(T.Sym, Neighbors, Sym));
  }
}
BENCHMARK(BM_LocalSearch)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_IteratedThreeOptFull(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  DirectedTsp D = alignmentLikeInstance(N, 42);
  IteratedOptOptions Options;
  for (auto _ : State)
    benchmark::DoNotOptimize(solveDirectedTsp(D, Options));
}
BENCHMARK(BM_IteratedThreeOptFull)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_HeldKarpBound(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  DirectedTsp D = alignmentLikeInstance(N, 42);
  IteratedOptOptions Options;
  Options.GreedyStarts = 1;
  Options.NearestNeighborStarts = 0;
  Options.CanonicalStart = false;
  Options.IterationsFactor = 0.25;
  int64_t Ub = solveDirectedTsp(D, Options).Cost;
  for (auto _ : State)
    benchmark::DoNotOptimize(heldKarpBoundDirected(D, Ub));
}
BENCHMARK(BM_HeldKarpBound)
    ->Arg(16)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_AssignmentBound(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  DirectedTsp D = alignmentLikeInstance(N, 42);
  for (auto _ : State)
    benchmark::DoNotOptimize(assignmentBound(D));
}
BENCHMARK(BM_AssignmentBound)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

} // namespace

BENCHMARK_MAIN();
