//===- bench/interproc_placement.cpp - Section 6 interprocedural extension --===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// The paper's closing future-work item: "we would like to try to
// generalize our method to the interprocedural code placement problem."
// This harness does so on the synthetic suite: per-procedure layouts are
// first aligned with the TSP method (the paper's contribution), then the
// procedures themselves are placed in one address space by four orderers
// — original, random, Pettis-Hansen chain merging, and a TSP-based order
// using the same iterated 3-Opt solver — and the whole-program call
// sequence is replayed over a shared instruction cache.
//
// Expected shape: adjacent-affinity rises original < PH <= TSP, and
// instruction-cache misses fall accordingly; control penalties are
// identical across orders (procedure placement cannot change them).
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "interproc/Interleave.h"
#include "interproc/Placement.h"
#include "interproc/ProcOrder.h"
#include "support/Format.h"
#include "support/Table.h"

using namespace balign;
using namespace balign::bench;

int main() {
  std::printf("=== Interprocedural placement (Section 6 future work) "
              "===\n\n");
  AlignmentOptions Options;
  Options.ComputeBounds = false;

  for (const char *Benchmark : {"com", "xli", "esp"}) {
    WorkloadInstance W = buildWorkloadByName(Benchmark);
    const WorkloadDataSet &Ds = W.DataSets[1]; // The larger data set.
    ProgramAlignment A = alignProgram(W.Prog, Ds.Profile, Options);

    std::vector<MaterializedLayout> Mats;
    for (size_t P = 0; P != W.Prog.numProcedures(); ++P)
      Mats.push_back(materializeLayout(W.Prog.proc(P),
                                       A.Procs[P].TspLayout,
                                       Ds.Profile.Procs[P], Options.Model));

    std::vector<uint64_t> Counts = invocationCounts(W.Prog, Ds.Traces);
    InterleaveOptions IOptions;
    IOptions.Seed = 0x1e11 + W.Prog.numProcedures();
    CallSequence Sequence = generateCallSequence(Counts, IOptions);
    auto Affinity =
        computeAffinity(Sequence, W.Prog.numProcedures(), /*Window=*/4);

    SimConfig Config;
    Config.Model = Options.Model;

    TextTable T;
    T.addColumn("order");
    T.addColumn("adjacent affinity", TextTable::AlignKind::Right);
    T.addColumn("icache misses", TextTable::AlignKind::Right);
    T.addColumn("cycles", TextTable::AlignKind::Right);
    T.addColumn("vs original", TextTable::AlignKind::Right);

    double BaseCycles = 0.0;
    auto Row = [&](const char *Name, const ProcOrder &Order) {
      SimResult R = simulatePlacement(W.Prog, Mats, Ds.Traces, Sequence,
                                      Order, Config);
      if (BaseCycles == 0.0)
        BaseCycles = static_cast<double>(R.Cycles);
      T.addRow({Name, std::to_string(adjacentAffinity(Order, Affinity)),
                std::to_string(R.CacheMisses), formatCount(R.Cycles),
                formatNormalized(static_cast<double>(R.Cycles) /
                                 BaseCycles)});
    };

    size_t N = W.Prog.numProcedures();
    Row("original", originalProcOrder(N));
    Row("random", randomProcOrder(N, 17));
    Row("pettis-hansen", pettisHansenOrder(Affinity));
    Row("tsp", tspOrder(Affinity));

    std::printf("-- %s.%s (%zu procedures; per-procedure blocks already "
                "TSP-aligned) --\n%s\n",
                Benchmark, Ds.Name.c_str(), N, T.render().c_str());
  }
  return 0;
}
