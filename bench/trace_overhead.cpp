//===- bench/trace_overhead.cpp - balign-scope zero-overhead-off check ------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Measures the cost of the balign-scope probes and holds the layer to
// its contract:
//
//  1. With no session installed, a probe is one relaxed atomic load.
//     A tight loop measures that unit cost; multiplied by the number of
//     probes a real alignment executes (counted by installing a session
//     and draining it), the total tracing-off tax must stay below the
//     run-to-run noise of the workload itself.
//  2. Tracing must observe, never perturb: a traced and an untraced run
//     of the same alignment produce identical penalties.
//
// Prints a small table, emits BENCH_trace.json for the trajectory, and
// exits nonzero if either assertion fails.
//
//===--------------------------------------------------------------------===//

#include "align/Pipeline.h"
#include "profile/Trace.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "trace/Scope.h"
#include "workloads/Generator.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace balign;

namespace {

/// A mid-sized synthetic program: big enough that alignment takes real
/// time (so noise is measurable), small enough for a benchmark harness.
Program makeProgram(size_t NumProcs, uint64_t Seed) {
  Program Prog("trace_overhead");
  for (size_t P = 0; P != NumProcs; ++P) {
    Rng R(Seed + P);
    GenParams Params;
    Params.TargetBranchSites = 10;
    Prog.addProcedure(
        generateProcedure("p" + std::to_string(P), Params, R).Proc);
  }
  return Prog;
}

ProgramProfile makeProfile(const Program &Prog, uint64_t Seed) {
  ProgramProfile Train;
  for (size_t P = 0; P != Prog.numProcedures(); ++P) {
    Rng TraceRng(Seed + P);
    TraceGenOptions Options;
    Options.BranchBudget = 1000;
    Train.Procs.push_back(collectProfile(
        Prog.proc(P), generateTrace(Prog.proc(P),
                                    BranchBehavior::uniform(Prog.proc(P)),
                                    TraceRng, Options)));
  }
  return Train;
}

/// Nanoseconds per probe when no session is installed. The empty
/// ScopedSpan must not be optimized away: the relaxed atomic load in
/// TraceSession::active() is real work the compiler keeps, and the
/// barrier pins the loop structure.
double measureOffProbeNs(size_t Iterations) {
  Stopwatch Timer;
  for (size_t I = 0; I != Iterations; ++I) {
    ScopedSpan Probe("bench.probe", SpanCat::Stage);
    asm volatile("" ::: "memory");
  }
  return Timer.seconds() * 1e9 / static_cast<double>(Iterations);
}

} // namespace

int main() {
  std::printf("=== balign-scope probe overhead ===\n");
  Program Prog = makeProgram(16, 1234);
  ProgramProfile Train = makeProfile(Prog, 5678);
  AlignmentOptions Options;
  Options.ComputeBounds = true;
  Options.Threads = 1;

  // Unit cost of a probe with tracing off.
  const size_t ProbeIterations = 1 << 24;
  double OffProbeNs = measureOffProbeNs(ProbeIterations);

  // Count the probes one alignment actually executes, and check the
  // traced run reproduces the untraced penalties exactly.
  ProgramAlignment Untraced = alignProgram(Prog, Train, Options);
  TraceSession Session;
  Session.install();
  ProgramAlignment Traced = alignProgram(Prog, Train, Options);
  Session.uninstall();
  size_t ProbeCount = Session.numSpans();
  bool SameResults = Untraced.totalTspPenalty() == Traced.totalTspPenalty() &&
                     Untraced.totalGreedyPenalty() ==
                         Traced.totalGreedyPenalty();

  // Workload wall time and its run-to-run noise, tracing off.
  const size_t Repeats = 7;
  std::vector<double> WallSeconds;
  for (size_t I = 0; I != Repeats; ++I) {
    Stopwatch Wall;
    alignProgram(Prog, Train, Options);
    WallSeconds.push_back(Wall.seconds());
  }
  double MeanWall = mean(WallSeconds);
  double NoiseSeconds = stddev(WallSeconds);
  double OffTaxSeconds =
      OffProbeNs * static_cast<double>(ProbeCount) / 1e9;
  // The bound is a-priori generous: the whole tracing-off tax of a run
  // must sit below the run's own noise floor (plus an epsilon so a
  // perfectly quiet machine cannot fail on a ~100ns tax).
  double Budget = NoiseSeconds + 1e-4;
  bool WithinNoise = OffTaxSeconds < Budget;

  TextTable T;
  T.addColumn("quantity");
  T.addColumn("value", TextTable::AlignKind::Right);
  T.addRow({"off-probe cost (ns)", formatFixed(OffProbeNs, 2)});
  T.addRow({"probes per alignment", std::to_string(ProbeCount)});
  T.addRow({"tracing-off tax (us)", formatFixed(OffTaxSeconds * 1e6, 3)});
  T.addRow({"alignment wall mean (ms)", formatFixed(MeanWall * 1e3, 3)});
  T.addRow({"alignment wall noise (ms)", formatFixed(NoiseSeconds * 1e3, 3)});
  T.addRow({"tax within noise", WithinNoise ? "yes" : "NO"});
  T.addRow({"traced == untraced", SameResults ? "yes" : "NO"});
  std::printf("%s", T.render().c_str());

  std::ofstream Json("BENCH_trace.json");
  Json << "{\n"
       << "  \"off_probe_ns\": " << OffProbeNs << ",\n"
       << "  \"probes_per_alignment\": " << ProbeCount << ",\n"
       << "  \"off_tax_seconds\": " << OffTaxSeconds << ",\n"
       << "  \"wall_mean_seconds\": " << MeanWall << ",\n"
       << "  \"wall_noise_seconds\": " << NoiseSeconds << ",\n"
       << "  \"within_noise\": " << (WithinNoise ? "true" : "false") << ",\n"
       << "  \"traced_matches_untraced\": "
       << (SameResults ? "true" : "false") << "\n"
       << "}\n";
  std::printf("(wrote BENCH_trace.json)\n");

  if (!WithinNoise)
    std::fprintf(stderr, "error: tracing-off tax %.3fus exceeds the noise "
                         "budget %.3fus\n",
                 OffTaxSeconds * 1e6, Budget * 1e6);
  if (!SameResults)
    std::fprintf(stderr, "error: tracing perturbed the alignment result\n");
  return WithinNoise && SameResults ? 0 : 1;
}
