//===- bench/table4_baselines.cpp - Reproduces Table 4 ---------------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Table 4 reports, per benchmark/data set: the control penalties of the
// original layout, the theoretical (Held-Karp) lower bound on control
// penalties, and the running time of the original program. Our running
// time is simulated cycles (DESIGN.md, Section 2); the paper's is
// wall-clock seconds on the AlphaStation, so we compare the *ratio* of
// penalty cycles to total run cycles — the quantity the paper uses to
// explain why su2cor cannot benefit from alignment.
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Format.h"
#include "support/Table.h"

using namespace balign;
using namespace balign::bench;

namespace {

/// The legible Table 4 rows from the paper (original penalty, HK bound,
/// in millions of cycles). Entries <= 0 were illegible in our source.
struct PaperRow {
  const char *DataSet;
  double OriginalM;
  double BoundM;
};

const PaperRow PaperRows[] = {
    {"esp.tl", 250.6, 186.8}, {"su2.re", 217.8, 206.1},
    {"su2.sh", 15.5, 14.8},   {"xli.ne", 0.2, 0.1},
    {"xli.q7", 57.6, 22.7},
};

} // namespace

int main() {
  std::printf("=== Table 4: original penalties, lower bounds, running "
              "times ===\n\n");
  std::vector<WorkloadInstance> Suite = buildSuite();
  AlignmentOptions Options;
  std::vector<AlignedCell> Cells = alignSuite(Suite, Options);

  TextTable T;
  T.addColumn("data set");
  T.addColumn("orig penalty", TextTable::AlignKind::Right);
  T.addColumn("hk bound", TextTable::AlignKind::Right);
  T.addColumn("bound/orig", TextTable::AlignKind::Right);
  T.addColumn("paper b/o", TextTable::AlignKind::Right);
  T.addColumn("sim cycles", TextTable::AlignKind::Right);
  T.addColumn("penalty/cycles", TextTable::AlignKind::Right);

  for (const AlignedCell &Cell : Cells) {
    const WorkloadInstance &W = *Cell.Workload;
    uint64_t Original = Cell.Alignment.totalOriginalPenalty();
    double Bound = Cell.Alignment.totalHeldKarpBound();
    SimResult Sim = simulateLayouts(W, Cell.Alignment.originalLayouts(),
                                    Cell.dataSet().Profile, Cell.dataSet(),
                                    Options.Model);
    const PaperRow *Paper = nullptr;
    for (const PaperRow &Row : PaperRows)
      if (Cell.label() == Row.DataSet)
        Paper = &Row;
    T.addRow(
        {Cell.label(), formatCount(Original), formatFixed(Bound, 0),
         Original ? formatNormalized(Bound / static_cast<double>(Original))
                  : "-",
         Paper ? formatNormalized(Paper->BoundM / Paper->OriginalM) : "-",
         formatCount(Sim.Cycles),
         formatPercent(static_cast<double>(Sim.ControlPenaltyCycles) /
                       static_cast<double>(Sim.Cycles))});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("shape check: su2 rows should show bound/orig near 1 (no "
              "headroom) and the lowest\npenalty/cycles ratio; xli.q7 "
              "should show large headroom, as in the paper.\n");
  return 0;
}
