//===- bench/table2_compile_times.cpp - Reproduces Table 2 -----------------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Table 2 reports per-stage compile/profile times for the worst data set
// of each benchmark. Our toolchain's analogous stages:
//
//   paper stage              ours
//   Intermediate Repr.    -> workload CFG generation
//   Instrumented Program  -> trace generation (the "profiling run")
//   Greedy Program        -> greedy alignment
//   TSP Matrix            -> DTSP cost-matrix construction
//   TSP Solver            -> iterated 3-Opt over all procedures
//   TSP Program           -> layout materialization
//
// Absolute seconds are incomparable (1997 SUIF on an AlphaStation vs
// this machine); the *shape* to check is that the TSP solver dominates
// the alignment stages without being out of line with the rest of the
// toolchain (paper, Section 3.2).
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "cache/Store.h"
#include "support/Format.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <filesystem>
#include <fstream>

using namespace balign;
using namespace balign::bench;

namespace {

/// Paper Table 2 (seconds; IR / instrumented / greedy / matrix / solver /
/// tsp-program / profiling-run), worst data set per benchmark.
struct PaperRow {
  const char *Benchmark;
  double Ir, Instrumented, Greedy, Matrix, Solver, TspProgram, ProfileRun;
};

const PaperRow PaperRows[] = {
    {"com", 33.4, 12.5, 7.5, 4.4, 36.5, 7.7, 86.5},
    {"dod", 1288.8, 507.1, 185.2, 100.0, 418.0, 190.3, 72.5},
    {"eqn", 89.9, 42.4, 31.0, 16.6, 141.9, 34.1, 210.0},
    {"esp", 520.8, 241.1, 164.1, 98.9, 634.9, 162.7, 98.2},
    {"su2", 210.1, 85.9, 40.9, 25.1, 178.3, 40.8, 218.6},
    {"xli", 163.4, 83.9, 58.4, 36.8, 314.1, 58.3, 29.4},
};

} // namespace

namespace {

/// Serial-vs-parallel alignProgram on the largest benchmark: the
/// scaling lever that decides whether TSP alignment can run on every
/// build. Emits BENCH_parallel.json so the speedup is a tracked
/// trajectory point. Determinism is asserted here too: every thread
/// count must reproduce the serial penalties exactly.
void runParallelScaling(const WorkloadInstance &W, size_t DataSet) {
  AlignmentOptions Options;
  Options.ComputeBounds = false;
  const ProgramProfile &Profile = W.DataSets[DataSet].Profile;

  std::printf("\n=== Parallel alignment scaling (%s, %zu procedures, "
              "%u hardware threads) ===\n",
              W.Spec.Benchmark.c_str(), W.Prog.numProcedures(),
              ThreadPool::hardwareThreads());

  TextTable T;
  T.addColumn("threads", TextTable::AlignKind::Right);
  T.addColumn("wall-s", TextTable::AlignKind::Right);
  T.addColumn("solver-cpu-s", TextTable::AlignKind::Right);
  T.addColumn("speedup", TextTable::AlignKind::Right);
  T.addColumn("identical", TextTable::AlignKind::Right);

  unsigned Hw = ThreadPool::hardwareThreads();
  std::vector<unsigned> Counts = {1, 2, 4};
  if (Hw > 4)
    Counts.push_back(Hw);

  double SerialWall = 0.0;
  double SerialSolverCpu = 0.0;
  uint64_t SerialPenalty = 0;
  double BestSpeedup = 1.0;
  unsigned BestThreads = 1;

  for (unsigned Threads : Counts) {
    Options.Threads = Threads;
    Stopwatch Wall;
    ProgramAlignment Result = alignProgram(W.Prog, Profile, Options);
    double WallSeconds = Wall.seconds();
    bool Identical = true;
    if (Threads == 1) {
      SerialWall = WallSeconds;
      SerialSolverCpu = Result.SolverSeconds;
      SerialPenalty = Result.totalTspPenalty();
    } else {
      Identical = Result.totalTspPenalty() == SerialPenalty;
    }
    double Speedup = WallSeconds > 0.0 ? SerialWall / WallSeconds : 1.0;
    if (Threads > 1 && Speedup > BestSpeedup) {
      BestSpeedup = Speedup;
      BestThreads = Threads;
    }
    T.addRow({std::to_string(Threads), formatFixed(WallSeconds, 3),
              formatFixed(Result.SolverSeconds, 3), formatFixed(Speedup, 2),
              Identical ? "yes" : "NO"});
    if (!Identical)
      std::fprintf(stderr,
                   "error: %u-thread run diverged from the serial run\n",
                   Threads);
  }
  std::printf("%s", T.render().c_str());

  std::ofstream Json("BENCH_parallel.json");
  Json << "{\n"
       << "  \"benchmark\": \"" << W.Spec.Benchmark << "\",\n"
       << "  \"procedures\": " << W.Prog.numProcedures() << ",\n"
       << "  \"hardware_threads\": " << Hw << ",\n"
       << "  \"serial_wall_seconds\": " << SerialWall << ",\n"
       << "  \"serial_solver_cpu_seconds\": " << SerialSolverCpu << ",\n"
       << "  \"best_speedup\": " << BestSpeedup << ",\n"
       << "  \"best_speedup_threads\": " << BestThreads << "\n"
       << "}\n";
  std::printf("(wrote BENCH_parallel.json; speedup is bounded by the "
              "machine's %u hardware threads)\n", Hw);
}

/// Cold-vs-warm alignProgram through the balign-cache disk store on the
/// same workload: in a realistic build loop most procedures do not
/// change between compiles, so the warm path is the compile time a
/// developer actually sees. Emits BENCH_cache.json. Correctness is
/// asserted inline: the warm runs must hit on every profiled procedure,
/// perform zero solver work, and reproduce the cold penalties exactly.
void runCacheColdWarm(const WorkloadInstance &W, size_t DataSet) {
  const ProgramProfile &Profile = W.DataSets[DataSet].Profile;
  std::string Dir =
      (std::filesystem::temp_directory_path() / "balign_bench_cache")
          .string();
  std::filesystem::remove_all(Dir);

  std::printf("\n=== Cache cold vs. warm (%s, %zu procedures) ===\n",
              W.Spec.Benchmark.c_str(), W.Prog.numProcedures());

  AlignmentOptions Base;
  Base.ComputeBounds = false;
  Base.Cache = CacheMode::Disk;
  Base.CachePath = Dir;

  TextTable T;
  T.addColumn("run");
  T.addColumn("threads", TextTable::AlignKind::Right);
  T.addColumn("wall-s", TextTable::AlignKind::Right);
  T.addColumn("solver-cpu-s", TextTable::AlignKind::Right);
  T.addColumn("hits", TextTable::AlignKind::Right);
  T.addColumn("misses", TextTable::AlignKind::Right);
  T.addColumn("identical", TextTable::AlignKind::Right);

  double ColdWall = 0.0;
  double WarmWall = 0.0;
  uint64_t ColdPenalty = 0;
  uint64_t WarmHits = 0;
  bool AllIdentical = true;

  struct Run {
    const char *Label;
    unsigned Threads;
  };
  for (const Run &R : {Run{"cold", 1}, Run{"warm", 1}, Run{"warm", 8}}) {
    AlignmentOptions Options = Base;
    Options.Threads = R.Threads;
    // A fresh session per run: warm runs reload the store from disk the
    // way a new compiler process would.
    CacheSession Session(Options);
    Stopwatch Wall;
    ProgramAlignment Result = alignProgram(W.Prog, Profile, Options);
    double WallSeconds = Wall.seconds();
    std::string Error;
    if (!Session.flush(&Error))
      std::fprintf(stderr, "error: cache flush failed: %s\n", Error.c_str());
    CacheStats Stats = Session.stats();

    bool Identical = true;
    bool IsCold = std::string(R.Label) == "cold";
    if (IsCold) {
      ColdWall = WallSeconds;
      ColdPenalty = Result.totalTspPenalty();
    } else {
      if (R.Threads == 1) {
        WarmWall = WallSeconds;
        WarmHits = Stats.Hits;
      }
      Identical = Result.totalTspPenalty() == ColdPenalty &&
                  Result.SolverSeconds == 0.0 && Stats.Misses == 0;
      AllIdentical &= Identical;
      if (!Identical)
        std::fprintf(stderr,
                     "error: warm %u-thread run diverged (penalty %llu vs "
                     "%llu, solver %.3fs, misses %llu)\n",
                     R.Threads,
                     static_cast<unsigned long long>(
                         Result.totalTspPenalty()),
                     static_cast<unsigned long long>(ColdPenalty),
                     Result.SolverSeconds,
                     static_cast<unsigned long long>(Stats.Misses));
    }
    T.addRow({R.Label, std::to_string(R.Threads),
              formatFixed(WallSeconds, 3),
              formatFixed(Result.SolverSeconds, 3),
              std::to_string(Stats.Hits), std::to_string(Stats.Misses),
              Identical ? "yes" : "NO"});
  }
  std::printf("%s", T.render().c_str());

  double Speedup = WarmWall > 0.0 ? ColdWall / WarmWall : 0.0;
  std::ofstream Json("BENCH_cache.json");
  Json << "{\n"
       << "  \"benchmark\": \"" << W.Spec.Benchmark << "\",\n"
       << "  \"procedures\": " << W.Prog.numProcedures() << ",\n"
       << "  \"cold_wall_seconds\": " << ColdWall << ",\n"
       << "  \"warm_wall_seconds\": " << WarmWall << ",\n"
       << "  \"warm_speedup\": " << Speedup << ",\n"
       << "  \"warm_hits\": " << WarmHits << ",\n"
       << "  \"identical\": " << (AllIdentical ? "true" : "false") << "\n"
       << "}\n";
  std::printf("(wrote BENCH_cache.json; warm runs replay validated cached "
              "results —\n %.1fx faster end to end with zero solver "
              "invocations)\n", Speedup);
  std::filesystem::remove_all(Dir);
}

} // namespace

int main() {
  std::printf("=== Table 2: compilation and profiling times (seconds) "
              "===\n");
  std::printf("(worst data set per benchmark; paper columns from SUIF on "
              "an AlphaStation 500/266)\n\n");

  TextTable T;
  T.addColumn("bench");
  T.addColumn("cfg-gen", TextTable::AlignKind::Right);
  T.addColumn("trace-gen", TextTable::AlignKind::Right);
  T.addColumn("greedy", TextTable::AlignKind::Right);
  T.addColumn("tsp-matrix", TextTable::AlignKind::Right);
  T.addColumn("tsp-solver", TextTable::AlignKind::Right);
  T.addColumn("materialize", TextTable::AlignKind::Right);
  T.addColumn("paper solver", TextTable::AlignKind::Right);
  T.addColumn("paper greedy", TextTable::AlignKind::Right);

  // The benchmark with the most solver work hosts the parallel-scaling
  // study after the table.
  WorkloadInstance Largest;
  size_t LargestWorstDs = 0;
  double LargestSolverSeconds = -1.0;

  for (const WorkloadSpec &Spec : benchmarkSuite()) {
    // Time the CFG + data-set construction.
    Stopwatch BuildTimer;
    WorkloadInstance W = buildWorkload(Spec);
    double BuildSeconds = BuildTimer.seconds();

    // The worst (larger-budget) data set.
    size_t Worst =
        W.DataSets[0].BranchBudget >= W.DataSets[1].BranchBudget ? 0 : 1;

    // Re-time trace generation alone for the worst data set.
    Stopwatch TraceTimer;
    for (size_t P = 0; P != W.Prog.numProcedures(); ++P) {
      Rng TraceRng(P + 1);
      TraceGenOptions TraceOptions;
      TraceOptions.BranchBudget =
          W.DataSets[Worst].Profile.Procs[P].executedBranches(W.Prog.proc(P));
      if (TraceOptions.BranchBudget == 0)
        continue;
      generateTrace(W.Prog.proc(P), W.DataSets[Worst].Behaviors[P],
                    TraceRng, TraceOptions);
    }
    double TraceSeconds = TraceTimer.seconds();

    AlignmentOptions Options;
    Options.ComputeBounds = false; // Bounds excluded, as in the paper.
    ProgramAlignment Result =
        alignProgram(W.Prog, W.DataSets[Worst].Profile, Options);

    Stopwatch MaterializeTimer;
    for (size_t P = 0; P != W.Prog.numProcedures(); ++P)
      materializeLayout(W.Prog.proc(P), Result.Procs[P].TspLayout,
                        W.DataSets[Worst].Profile.Procs[P], Options.Model);
    double MaterializeSeconds = MaterializeTimer.seconds();

    const PaperRow *Paper = nullptr;
    for (const PaperRow &Row : PaperRows)
      if (Spec.Benchmark == Row.Benchmark)
        Paper = &Row;

    T.addRow({Spec.Benchmark, formatFixed(BuildSeconds, 3),
              formatFixed(TraceSeconds, 3),
              formatFixed(Result.GreedySeconds, 3),
              formatFixed(Result.MatrixSeconds, 3),
              formatFixed(Result.SolverSeconds, 3),
              formatFixed(MaterializeSeconds, 3),
              Paper ? formatFixed(Paper->Solver, 1) : "-",
              Paper ? formatFixed(Paper->Greedy, 1) : "-"});

    if (Result.SolverSeconds > LargestSolverSeconds) {
      LargestSolverSeconds = Result.SolverSeconds;
      Largest = std::move(W);
      LargestWorstDs = Worst;
    }
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("shape check: the TSP solver should be the most expensive "
              "alignment stage,\nyet comparable to the rest of the "
              "toolchain — as in the paper.\n");

  runParallelScaling(Largest, LargestWorstDs);
  runCacheColdWarm(Largest, LargestWorstDs);
  return 0;
}
