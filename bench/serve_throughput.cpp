//===- bench/serve_throughput.cpp - balign-serve request throughput --------===//
//
// Part of the balign project (PLDI 1997 branch-alignment reproduction).
//
// Measures the serve path end to end, in process, over socketpairs: a
// corpus of generated programs is pushed through a live AlignServer by
// several concurrent clients, once against a cold shared cache (every
// procedure solved) and again warm (every procedure served from the
// cross-client cache). Prints a small table, checks warm responses stay
// byte-identical to cold ones, and emits BENCH_serve.json with the
// cold/warm requests-per-second trajectory.
//
//===--------------------------------------------------------------------===//

#include "serve/Server.h"

#include "cache/Store.h"
#include "ir/TextFormat.h"
#include "serve/Client.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "workloads/Generator.h"

#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace balign;

namespace {

constexpr uint64_t ProfileBudget = 3000;
constexpr size_t NumClients = 4;
constexpr size_t WarmPasses = 3;

struct CorpusItem {
  std::string CfgText;
  uint64_t Seed = 0;
};

std::vector<CorpusItem> buildCorpus() {
  std::vector<CorpusItem> Corpus;
  for (uint64_t I = 0; I != 12; ++I) {
    Program Prog("serve" + std::to_string(I));
    Rng R(9000 + I * 31);
    GenParams Params;
    Params.TargetBranchSites = 8 + static_cast<unsigned>(I % 5);
    size_t NumProcs = 2 + I % 3;
    for (size_t P = 0; P != NumProcs; ++P)
      Prog.addProcedure(
          generateProcedure("p" + std::to_string(P), Params, R).Proc);
    Corpus.push_back({printProgram(Prog), 100 + I});
  }
  return Corpus;
}

AlignRequest requestFor(const CorpusItem &Item) {
  AlignRequest Req;
  Req.Seed = Item.Seed;
  Req.Budget = ProfileBudget;
  Req.CfgText = Item.CfgText;
  return Req;
}

/// One client connection bound to a server-side connection thread.
struct Connection {
  int Fds[2] = {-1, -1};
  std::thread Server;
  ServeClient Client;
  bool Ok = false;

  Connection(AlignServer &S) {
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0)
      return;
    Ok = true;
    Server = std::thread([&S, Fd = Fds[1]] { S.serveConnection(Fd, Fd); });
    Client.wrap(Fds[0], Fds[0]);
  }
  ~Connection() {
    if (!Ok)
      return;
    Client.close();
    ::close(Fds[0]);
    Server.join();
    ::close(Fds[1]);
  }
};

/// Pushes the whole corpus through the server once from each of
/// NumClients concurrent connections; returns wall seconds, collecting
/// every response body (indexed client-major) into \p Responses.
double runPass(AlignServer &Server, const std::vector<CorpusItem> &Corpus,
               std::vector<std::string> &Responses, bool &AllOk) {
  Responses.assign(NumClients * Corpus.size(), {});
  std::vector<char> ClientOk(NumClients, 1);
  std::vector<std::unique_ptr<Connection>> Conns;
  for (size_t C = 0; C != NumClients; ++C)
    Conns.push_back(std::make_unique<Connection>(Server));

  Stopwatch Wall;
  std::vector<std::thread> Clients;
  for (size_t C = 0; C != NumClients; ++C) {
    Clients.emplace_back([&, C] {
      for (size_t I = 0; I != Corpus.size(); ++I) {
        const CorpusItem &Item = Corpus[(I + C) % Corpus.size()];
        std::string Report, Error;
        if (!Conns[C]->Client.align(requestFor(Item), Report, &Error)) {
          std::fprintf(stderr, "error: client %zu: %s\n", C,
                       Error.c_str());
          ClientOk[C] = 0;
          return;
        }
        Responses[C * Corpus.size() + (I + C) % Corpus.size()] =
            std::move(Report);
      }
    });
  }
  for (std::thread &T : Clients)
    T.join();
  double Seconds = Wall.seconds();
  for (char Ok : ClientOk)
    AllOk = AllOk && Ok;
  return Seconds;
}

} // namespace

int main() {
  ::signal(SIGPIPE, SIG_IGN);
  std::printf("=== balign-serve throughput (cold vs warm cache) ===\n");
  std::vector<CorpusItem> Corpus = buildCorpus();
  size_t RequestsPerPass = NumClients * Corpus.size();

  AlignmentOptions Base;
  Base.Cache = CacheMode::Memory;
  AlignmentCache Cache;
  Base.CacheImpl = &Cache;
  ServeConfig Config; // Threads = 0: one worker per hardware thread.
  Config.CacheStatsFn = [&Cache] { return Cache.stats(); };
  AlignServer Server(Base, Config);

  bool AllOk = true;
  std::vector<std::string> ColdResponses;
  double ColdSeconds = runPass(Server, Corpus, ColdResponses, AllOk);

  double WarmSeconds = 0;
  bool WarmIdentical = true;
  for (size_t Pass = 0; Pass != WarmPasses && AllOk; ++Pass) {
    std::vector<std::string> WarmResponses;
    WarmSeconds += runPass(Server, Corpus, WarmResponses, AllOk);
    WarmIdentical = WarmIdentical && WarmResponses == ColdResponses;
  }
  WarmSeconds /= static_cast<double>(WarmPasses);
  if (!AllOk) {
    std::fprintf(stderr, "error: a client failed; aborting\n");
    return 1;
  }

  double ColdRps = static_cast<double>(RequestsPerPass) / ColdSeconds;
  double WarmRps = static_cast<double>(RequestsPerPass) / WarmSeconds;
  CacheStats Stats = Cache.stats();

  TextTable T;
  T.addColumn("quantity");
  T.addColumn("value", TextTable::AlignKind::Right);
  T.addRow({"corpus programs", std::to_string(Corpus.size())});
  T.addRow({"client connections", std::to_string(NumClients)});
  T.addRow({"requests per pass", std::to_string(RequestsPerPass)});
  T.addRow({"cold requests/sec", formatFixed(ColdRps, 1)});
  T.addRow({"warm requests/sec", formatFixed(WarmRps, 1)});
  T.addRow({"warm speedup", formatFixed(WarmRps / ColdRps, 2) + "x"});
  T.addRow({"cache hits", std::to_string(Stats.Hits)});
  T.addRow({"cache misses", std::to_string(Stats.Misses)});
  T.addRow({"warm == cold bytes", WarmIdentical ? "yes" : "NO"});
  std::printf("%s", T.render().c_str());

  std::ofstream Json("BENCH_serve.json");
  Json << "{\n"
       << "  \"corpus_programs\": " << Corpus.size() << ",\n"
       << "  \"client_connections\": " << NumClients << ",\n"
       << "  \"requests_per_pass\": " << RequestsPerPass << ",\n"
       << "  \"cold_seconds\": " << ColdSeconds << ",\n"
       << "  \"warm_seconds\": " << WarmSeconds << ",\n"
       << "  \"cold_requests_per_sec\": " << ColdRps << ",\n"
       << "  \"warm_requests_per_sec\": " << WarmRps << ",\n"
       << "  \"warm_speedup\": " << WarmRps / ColdRps << ",\n"
       << "  \"cache_hits\": " << Stats.Hits << ",\n"
       << "  \"cache_misses\": " << Stats.Misses << ",\n"
       << "  \"warm_matches_cold\": " << (WarmIdentical ? "true" : "false")
       << "\n"
       << "}\n";
  std::printf("(wrote BENCH_serve.json)\n");

  if (!WarmIdentical) {
    std::fprintf(stderr,
                 "error: warm responses diverged from cold responses\n");
    return 1;
  }
  return 0;
}
