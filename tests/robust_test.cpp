//===- tests/robust_test.cpp - balign-shield primitive unit tests -----------===//
//
// Unit tests for the robustness primitives: FaultSpec parsing and firing
// semantics, the FaultInjector registry (arming, scoping, suppression,
// hit accounting), deterministic Deadlines over a ManualClock, and the
// bounded-backoff retry helper. The pipeline-level behavior these enable
// is covered in shield_pipeline_test and shield_cache_test.
//
//===--------------------------------------------------------------------===//

#include "robust/Deadline.h"
#include "robust/FailureReport.h"
#include "robust/FaultInjector.h"
#include "robust/Retry.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

/// Collects the firing pattern of \p Spec over the first \p N hits.
std::vector<bool> firePattern(const FaultSpec &Spec, uint64_t N) {
  std::vector<bool> Fires;
  for (uint64_t Hit = 1; Hit <= N; ++Hit)
    Fires.push_back(Spec.fires(Hit));
  return Fires;
}

} // namespace

//===--------------------------------------------------------------------===//
// FaultSpec
//===--------------------------------------------------------------------===//

TEST(FaultSpecTest, ModesFireOnTheDocumentedHits) {
  EXPECT_EQ(firePattern(FaultSpec::never(), 4),
            (std::vector<bool>{false, false, false, false}));
  EXPECT_EQ(firePattern(FaultSpec::always(), 3),
            (std::vector<bool>{true, true, true}));
  EXPECT_EQ(firePattern(FaultSpec::once(), 3),
            (std::vector<bool>{true, false, false}));
  EXPECT_EQ(firePattern(FaultSpec::nth(3), 5),
            (std::vector<bool>{false, false, true, false, false}));
  EXPECT_EQ(firePattern(FaultSpec::every(2), 6),
            (std::vector<bool>{false, true, false, true, false, true}));
  EXPECT_EQ(firePattern(FaultSpec::count(2), 4),
            (std::vector<bool>{true, true, false, false}));
}

TEST(FaultSpecTest, RateIsSeedDeterministicAndSeedSensitive) {
  FaultSpec Half = FaultSpec::rate(1, 2, 7);
  // Same seed, same hits: the pattern is a pure function of (spec, hit).
  EXPECT_EQ(firePattern(Half, 64), firePattern(Half, 64));
  // Roughly half the hits fail (the exact set is seed-defined; a 1/2
  // rate drifting outside [16, 48] of 64 would mean a broken mix).
  std::vector<bool> P = firePattern(Half, 64);
  size_t Fails = 0;
  for (bool B : P)
    Fails += B;
  EXPECT_GT(Fails, 16u);
  EXPECT_LT(Fails, 48u);
  // A different seed reshuffles which hits fail.
  EXPECT_NE(firePattern(FaultSpec::rate(1, 2, 8), 64), P);
  // rate=0/D never fires; rate=D/D always fires.
  EXPECT_EQ(firePattern(FaultSpec::rate(0, 4, 3), 8),
            firePattern(FaultSpec::never(), 8));
  EXPECT_EQ(firePattern(FaultSpec::rate(4, 4, 3), 8),
            firePattern(FaultSpec::always(), 8));
}

TEST(FaultSpecTest, ParseAcceptsEveryDocumentedMode) {
  struct Case {
    const char *Text;
    FaultSpec::Mode M;
    uint64_t K, D, Seed;
  } Cases[] = {
      {"always", FaultSpec::Mode::Always, 0, 1, 0},
      {"once", FaultSpec::Mode::Once, 0, 1, 0},
      {"nth=3", FaultSpec::Mode::Nth, 3, 1, 0},
      {"every=4", FaultSpec::Mode::Every, 4, 1, 0},
      {"count=2", FaultSpec::Mode::Count, 2, 1, 0},
      {"rate=1/8@42", FaultSpec::Mode::Rate, 1, 8, 42},
  };
  for (const Case &C : Cases) {
    std::optional<FaultSpec> Spec = FaultSpec::parse(C.Text);
    ASSERT_TRUE(Spec.has_value()) << C.Text;
    EXPECT_EQ(Spec->M, C.M) << C.Text;
    EXPECT_EQ(Spec->K, C.K) << C.Text;
    EXPECT_EQ(Spec->D, C.D) << C.Text;
    EXPECT_EQ(Spec->Seed, C.Seed) << C.Text;
  }
}

TEST(FaultSpecTest, ParseRejectsMalformedSpecs) {
  for (const char *Bad : {"", "sometimes", "nth=", "nth=0", "every=0",
                          "count=", "rate=1/0@3", "rate=5@3", "rate=1/2",
                          "nth=abc"}) {
    std::string Error;
    EXPECT_FALSE(FaultSpec::parse(Bad, &Error).has_value()) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
  }
}

//===--------------------------------------------------------------------===//
// FaultInjector
//===--------------------------------------------------------------------===//

TEST(FaultInjectorTest, ArmedSiteFiresAndCountsHits) {
  FaultInjector &FI = FaultInjector::instance();
  FI.reset();
  uint64_t Before = FI.hits(FaultSite::TspSolve);
  EXPECT_EQ(Before, 0u);

  FI.arm(FaultSite::TspSolve, FaultSpec::nth(2));
  EXPECT_FALSE(FI.shouldFail(FaultSite::TspSolve)); // Hit 1.
  EXPECT_TRUE(FI.shouldFail(FaultSite::TspSolve));  // Hit 2 fires.
  EXPECT_FALSE(FI.shouldFail(FaultSite::TspSolve)); // Hit 3.
  EXPECT_EQ(FI.hits(FaultSite::TspSolve), 3u);

  // Other sites are untouched.
  EXPECT_EQ(FI.hits(FaultSite::CacheFlush), 0u);
  EXPECT_FALSE(FI.shouldFail(FaultSite::CacheFlush));
  FI.reset();
}

TEST(FaultInjectorTest, ThrowIfFaultCarriesTheSite) {
  FaultInjector &FI = FaultInjector::instance();
  FI.reset();
  FaultInjector::ScopedFault Armed(FaultSite::AlignGreedy,
                                   FaultSpec::always());
  try {
    FI.throwIfFault(FaultSite::AlignGreedy);
    FAIL() << "expected FaultInjectedError";
  } catch (const FaultInjectedError &E) {
    EXPECT_EQ(E.site(), FaultSite::AlignGreedy);
    EXPECT_NE(std::string(E.what()).find("align.greedy"), std::string::npos);
  }
  FI.reset();
}

TEST(FaultInjectorTest, ScopedFaultRestoresSpecAndCounter) {
  FaultInjector &FI = FaultInjector::instance();
  FI.reset();
  FI.arm(FaultSite::PoolTask, FaultSpec::nth(10));
  EXPECT_FALSE(FI.shouldFail(FaultSite::PoolTask)); // Hit 1 of nth=10.
  {
    FaultInjector::ScopedFault Inner(FaultSite::PoolTask,
                                     FaultSpec::always());
    EXPECT_TRUE(FI.shouldFail(FaultSite::PoolTask));
  }
  // The outer nth=10 spec and its hit counter are back: hits 2..9 pass.
  for (int I = 0; I != 8; ++I)
    EXPECT_FALSE(FI.shouldFail(FaultSite::PoolTask)) << "hit " << I + 2;
  EXPECT_TRUE(FI.shouldFail(FaultSite::PoolTask)); // Hit 10.
  FI.reset();
}

TEST(FaultInjectorTest, ScopedSuppressNeitherFiresNorConsumesHits) {
  FaultInjector &FI = FaultInjector::instance();
  FI.reset();
  FaultInjector::ScopedFault Armed(FaultSite::TspTransform,
                                   FaultSpec::nth(2));
  EXPECT_FALSE(FI.shouldFail(FaultSite::TspTransform)); // Hit 1.
  {
    FaultInjector::ScopedSuppress Suppress;
    // Probes inside the suppressed scope see no fault and leave the
    // counter alone — this is what keeps --verify replays from skewing
    // the pipeline's deterministic hit sequence.
    for (int I = 0; I != 5; ++I)
      EXPECT_FALSE(FI.shouldFail(FaultSite::TspTransform));
    EXPECT_EQ(FI.hits(FaultSite::TspTransform), 1u);
  }
  EXPECT_TRUE(FI.shouldFail(FaultSite::TspTransform)); // Still hit 2.
  FI.reset();
}

TEST(FaultInjectorTest, ArmFromSpecParsesListsAndReportsErrors) {
  FaultInjector &FI = FaultInjector::instance();
  FI.reset();
  std::string Error;
  ASSERT_TRUE(
      FI.armFromSpec("tsp.solve:once,cache.flush:count=2", &Error))
      << Error;
  EXPECT_TRUE(FI.shouldFail(FaultSite::TspSolve));
  EXPECT_FALSE(FI.shouldFail(FaultSite::TspSolve));
  EXPECT_TRUE(FI.shouldFail(FaultSite::CacheFlush));
  EXPECT_TRUE(FI.shouldFail(FaultSite::CacheFlush));
  EXPECT_FALSE(FI.shouldFail(FaultSite::CacheFlush));

  EXPECT_FALSE(FI.armFromSpec("nosuch.site:always", &Error));
  EXPECT_NE(Error.find("nosuch.site"), std::string::npos);
  EXPECT_FALSE(FI.armFromSpec("tsp.solve", &Error)); // Missing ':mode'.
  EXPECT_FALSE(FI.armFromSpec("tsp.solve:sometimes", &Error));
  FI.reset();
}

TEST(FaultInjectorTest, SiteNamesRoundTrip) {
  for (size_t I = 0; I != NumFaultSites; ++I) {
    FaultSite Site = static_cast<FaultSite>(I);
    const char *Name = faultSiteName(Site);
    ASSERT_NE(Name, nullptr);
    std::optional<FaultSite> Back = faultSiteByName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, Site) << Name;
  }
  EXPECT_FALSE(faultSiteByName("not.a.site").has_value());
}

//===--------------------------------------------------------------------===//
// Deadline
//===--------------------------------------------------------------------===//

TEST(DeadlineTest, UnlimitedDeadlinesNeverExpire) {
  Deadline Unlimited;
  EXPECT_FALSE(Unlimited.expired());
  EXPECT_FALSE(Unlimited.isLimited());
  EXPECT_NO_THROW(Unlimited.check("anything"));

  ManualClock Clock;
  Deadline ZeroBudget(0, Clock.fn()); // 0 = unlimited, the CLI convention.
  Clock.advance(1000000);
  EXPECT_FALSE(ZeroBudget.expired());
  EXPECT_FALSE(ZeroBudget.isLimited());
}

TEST(DeadlineTest, ExpiresExactlyAtTheBudgetOnAManualClock) {
  ManualClock Clock(100);
  Deadline D(50, Clock.fn());
  EXPECT_TRUE(D.isLimited());
  EXPECT_FALSE(D.expired());
  Clock.advance(49);
  EXPECT_FALSE(D.expired());
  EXPECT_EQ(D.elapsedMs(), 49u);
  Clock.advance(1); // Exactly at the budget: expired.
  EXPECT_TRUE(D.expired());
  EXPECT_THROW(D.check("solver"), DeadlineExceeded);
  try {
    D.check("iterated 3-Opt");
  } catch (const DeadlineExceeded &E) {
    EXPECT_NE(std::string(E.what()).find("iterated 3-Opt"),
              std::string::npos);
  }
}

TEST(DeadlineTest, ParentExpiryPropagatesToChildren) {
  ManualClock Clock;
  Deadline Run(100, Clock.fn());
  Clock.advance(10);
  // A generous per-procedure budget chained under the run deadline.
  Deadline Proc(1000, Clock.fn(), &Run);
  EXPECT_TRUE(Proc.isLimited());
  EXPECT_FALSE(Proc.expired());
  Clock.advance(90); // Run deadline (100ms) trips; proc budget has 910ms.
  EXPECT_TRUE(Run.expired());
  EXPECT_TRUE(Proc.expired()) << "child must observe parent expiry";

  // And an unlimited child under a limited parent is limited.
  ManualClock Clock2;
  Deadline Run2(5, Clock2.fn());
  Deadline Proc2(0, Clock2.fn(), &Run2);
  EXPECT_TRUE(Proc2.isLimited());
  Clock2.advance(5);
  EXPECT_TRUE(Proc2.expired());
}

//===--------------------------------------------------------------------===//
// retryWithBackoff
//===--------------------------------------------------------------------===//

TEST(RetryTest, FirstAttemptSuccessNeitherSleepsNorRetries) {
  std::vector<uint64_t> Sleeps;
  RetryOutcome Outcome = retryWithBackoff(
      RetryPolicy{}, [](std::string *) { return true; }, nullptr,
      [&](uint64_t Ms) { Sleeps.push_back(Ms); });
  EXPECT_TRUE(Outcome.Succeeded);
  EXPECT_EQ(Outcome.Attempts, 1u);
  EXPECT_EQ(Outcome.TotalBackoffMs, 0u);
  EXPECT_TRUE(Sleeps.empty());
}

TEST(RetryTest, TransientFailureIsAbsorbedWithDoublingBackoff) {
  unsigned Calls = 0;
  std::vector<uint64_t> Sleeps;
  RetryPolicy Policy;
  Policy.MaxAttempts = 4;
  Policy.InitialBackoffMs = 2;
  Policy.MaxBackoffMs = 100;
  std::string Error;
  RetryOutcome Outcome = retryWithBackoff(
      Policy,
      [&](std::string *E) {
        if (++Calls < 3) {
          *E = "transient";
          return false;
        }
        return true;
      },
      &Error, [&](uint64_t Ms) { Sleeps.push_back(Ms); });
  EXPECT_TRUE(Outcome.Succeeded);
  EXPECT_EQ(Outcome.Attempts, 3u);
  EXPECT_EQ(Sleeps, (std::vector<uint64_t>{2, 4})) << "doubling backoff";
  EXPECT_EQ(Outcome.TotalBackoffMs, 6u);
}

TEST(RetryTest, PersistentFailureStopsAtMaxAttemptsAndKeepsLastError) {
  unsigned Calls = 0;
  std::vector<uint64_t> Sleeps;
  RetryPolicy Policy;
  Policy.MaxAttempts = 5;
  Policy.InitialBackoffMs = 1;
  Policy.MaxBackoffMs = 4; // Cap inside the sequence: 1, 2, 4, 4.
  std::string Error;
  RetryOutcome Outcome = retryWithBackoff(
      Policy,
      [&](std::string *E) {
        *E = "attempt " + std::to_string(++Calls) + " failed";
        return false;
      },
      &Error, [&](uint64_t Ms) { Sleeps.push_back(Ms); });
  EXPECT_FALSE(Outcome.Succeeded);
  EXPECT_EQ(Outcome.Attempts, 5u);
  EXPECT_EQ(Calls, 5u);
  EXPECT_EQ(Sleeps, (std::vector<uint64_t>{1, 2, 4, 4}))
      << "backoff doubles then clamps at MaxBackoffMs";
  EXPECT_EQ(Error, "attempt 5 failed") << "the last error is reported";
}

//===--------------------------------------------------------------------===//
// FailureReport
//===--------------------------------------------------------------------===//

TEST(FailureReportTest, SummaryCountsRungsInTheStableKeyValueForm) {
  FailureReport Report;
  ProcedureFailure Greedy;
  Greedy.ProcIndex = 1;
  Greedy.ProcName = "f";
  Greedy.Kind = FailureKind::Fault;
  Greedy.What = "injected fault at 'tsp.solve'";
  Greedy.Rung = LadderRung::Greedy;
  ProcedureFailure Skipped;
  Skipped.ProcIndex = 3;
  Skipped.ProcName = "g";
  Skipped.Kind = FailureKind::Deadline;
  Skipped.What = "iterated 3-Opt exceeded its deadline";
  Skipped.Rung = LadderRung::Original;
  Skipped.Skipped = true;
  Report.Failures = {Greedy, Skipped};

  EXPECT_EQ(Report.countRung(LadderRung::Greedy), 1u);
  EXPECT_EQ(Report.countRung(LadderRung::Original), 1u);
  EXPECT_EQ(Report.countRung(LadderRung::Tsp), 0u);
  EXPECT_EQ(Report.countSkipped(), 1u);
  EXPECT_EQ(Report.summary(7),
            "procs=7 tsp=5 greedy=1 original=1 skipped=1 failures=2");

  EXPECT_NE(Greedy.str().find("proc 'f'"), std::string::npos);
  EXPECT_NE(Greedy.str().find("fault"), std::string::npos);
  EXPECT_NE(Greedy.str().find("rung=greedy"), std::string::npos);
  EXPECT_NE(Skipped.str().find("skipped"), std::string::npos);
}
