//===- tests/cache_pipeline_test.cpp - Cache/pipeline integration tests ---===//
//
// End-to-end contracts of alignProgram with a CacheSession attached: a
// warm cache must produce bit-identical results with zero solver work,
// at any thread count, through any disk round-trip, with hooks and
// unprofiled procedures behaving exactly as without a cache.
//
//===--------------------------------------------------------------------===//

#include "cache/Store.h"

#include "align/Pipeline.h"
#include "analysis/PipelineVerifier.h"
#include "profile/Trace.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

using namespace balign;

namespace {

constexpr size_t NumProcs = 5;
constexpr size_t UnprofiledIndex = 2; ///< This procedure gets zero counts.
constexpr size_t ProfiledCount = NumProcs - 1;

struct Workload {
  Program Prog{"cache_pipeline"};
  ProgramProfile Train;
};

Workload makeWorkload(uint64_t Seed = 7) {
  Workload W;
  for (size_t P = 0; P != NumProcs; ++P) {
    Rng R(Seed + P);
    GenParams Params;
    Params.TargetBranchSites = 4 + P % 3;
    W.Prog.addProcedure(
        generateProcedure("p" + std::to_string(P), Params, R).Proc);
  }
  for (size_t P = 0; P != NumProcs; ++P) {
    const Procedure &Proc = W.Prog.proc(P);
    Rng TraceRng(Seed * 131 + P);
    TraceGenOptions TraceOptions;
    TraceOptions.BranchBudget = P == UnprofiledIndex ? 0 : 350;
    W.Train.Procs.push_back(collectProfile(
        Proc, generateTrace(Proc, BranchBehavior::uniform(Proc), TraceRng,
                            TraceOptions)));
  }
  return W;
}

void expectProgramEq(const ProgramAlignment &A, const ProgramAlignment &B) {
  ASSERT_EQ(A.Procs.size(), B.Procs.size());
  for (size_t P = 0; P != A.Procs.size(); ++P) {
    const ProcedureAlignment &X = A.Procs[P];
    const ProcedureAlignment &Y = B.Procs[P];
    EXPECT_EQ(X.OriginalLayout.Order, Y.OriginalLayout.Order) << "proc " << P;
    EXPECT_EQ(X.GreedyLayout.Order, Y.GreedyLayout.Order) << "proc " << P;
    EXPECT_EQ(X.TspLayout.Order, Y.TspLayout.Order) << "proc " << P;
    EXPECT_EQ(X.OriginalPenalty, Y.OriginalPenalty) << "proc " << P;
    EXPECT_EQ(X.GreedyPenalty, Y.GreedyPenalty) << "proc " << P;
    EXPECT_EQ(X.TspPenalty, Y.TspPenalty) << "proc " << P;
    EXPECT_EQ(0, std::memcmp(&X.Bounds.HeldKarp, &Y.Bounds.HeldKarp,
                             sizeof(X.Bounds.HeldKarp)))
        << "proc " << P;
    EXPECT_EQ(X.Bounds.Assignment, Y.Bounds.Assignment) << "proc " << P;
    EXPECT_EQ(X.Bounds.AssignmentCycles, Y.Bounds.AssignmentCycles)
        << "proc " << P;
    EXPECT_EQ(X.SolverRuns, Y.SolverRuns) << "proc " << P;
    EXPECT_EQ(X.RunsFindingBest, Y.RunsFindingBest) << "proc " << P;
  }
}

std::string freshDir(const char *Name) {
  std::string Dir = ::testing::TempDir() + "balign_cachepipe_" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

} // namespace

TEST(CachePipelineTest, WarmMemoryRunDoesZeroSolverWork) {
  Workload W = makeWorkload();
  AlignmentOptions Options;
  Options.Cache = CacheMode::Memory;
  CacheSession Session(Options);
  ASSERT_NE(Session.cache(), nullptr);

  ProgramAlignment Cold = alignProgram(W.Prog, W.Train, Options);
  CacheStats ColdStats = Session.stats();
  EXPECT_EQ(ColdStats.Hits, 0u);
  EXPECT_EQ(ColdStats.Misses, ProfiledCount); // Unprofiled never looked up.
  EXPECT_EQ(ColdStats.Stores, ProfiledCount);
  EXPECT_GT(Cold.SolverSeconds, 0.0);

  ProgramAlignment Warm = alignProgram(W.Prog, W.Train, Options);
  CacheStats WarmStats = Session.stats();
  EXPECT_EQ(WarmStats.Hits, ProfiledCount);
  EXPECT_EQ(WarmStats.Misses, ProfiledCount); // Unchanged from the cold run.

  // The acceptance bar: a warm run performs zero solver invocations, so
  // every stage timer stays exactly zero.
  EXPECT_EQ(Warm.GreedySeconds, 0.0);
  EXPECT_EQ(Warm.MatrixSeconds, 0.0);
  EXPECT_EQ(Warm.SolverSeconds, 0.0);
  EXPECT_EQ(Warm.BoundsSeconds, 0.0);

  expectProgramEq(Cold, Warm);
}

TEST(CachePipelineTest, OffModeSessionIsInert) {
  Workload W = makeWorkload();
  AlignmentOptions Options; // Cache == Off.
  CacheSession Session(Options);
  EXPECT_EQ(Session.cache(), nullptr);
  EXPECT_EQ(Options.CacheImpl, nullptr);
  ProgramAlignment Result = alignProgram(W.Prog, W.Train, Options);
  EXPECT_EQ(Result.Procs.size(), NumProcs);
  CacheStats S = Session.stats();
  EXPECT_EQ(S.Hits + S.Misses + S.Stores, 0u);
  EXPECT_TRUE(Session.flush());
}

TEST(CachePipelineTest, EnablingCacheWithoutSessionIsFatal) {
  Workload W = makeWorkload();
  AlignmentOptions Options;
  Options.Cache = CacheMode::Memory; // But no CacheSession attached.
  EXPECT_DEATH(alignProgram(W.Prog, W.Train, Options),
               "pipeline.cache-not-attached");
}

TEST(CachePipelineTest, ColdWarmSerialParallelAllBitIdentical) {
  Workload W = makeWorkload();
  std::string Dir = freshDir("matrix");

  AlignmentOptions Baseline; // No cache, serial: the reference result.
  ProgramAlignment Reference = alignProgram(W.Prog, W.Train, Baseline);

  // Cold disk run, serial; the session destructor flushes the store.
  {
    AlignmentOptions Options;
    Options.Cache = CacheMode::Disk;
    Options.CachePath = Dir;
    CacheSession Session(Options);
    ProgramAlignment Cold = alignProgram(W.Prog, W.Train, Options);
    expectProgramEq(Reference, Cold);
  }
  ASSERT_TRUE(std::filesystem::exists(
      Dir + "/" + AlignmentCache::StoreFileName));

  // Warm runs from a fresh process-equivalent (new session, reloaded
  // store), serial and parallel.
  for (unsigned Threads : {1u, 8u}) {
    AlignmentOptions Options;
    Options.Cache = CacheMode::Disk;
    Options.CachePath = Dir;
    Options.Threads = Threads;
    CacheSession Session(Options);
    ProgramAlignment Warm = alignProgram(W.Prog, W.Train, Options);
    CacheStats S = Session.stats();
    EXPECT_EQ(S.Hits, ProfiledCount) << "threads=" << Threads;
    EXPECT_EQ(S.Misses, 0u) << "threads=" << Threads;
    EXPECT_EQ(Warm.SolverSeconds, 0.0) << "threads=" << Threads;
    expectProgramEq(Reference, Warm);
  }

  // And a parallel *cold* run into a fresh directory matches too.
  {
    std::string Dir2 = freshDir("matrix_par");
    AlignmentOptions Options;
    Options.Cache = CacheMode::Disk;
    Options.CachePath = Dir2;
    Options.Threads = 8;
    CacheSession Session(Options);
    ProgramAlignment Cold = alignProgram(W.Prog, W.Train, Options);
    EXPECT_EQ(Session.stats().Misses, ProfiledCount);
    expectProgramEq(Reference, Cold);
  }
}

TEST(CachePipelineTest, VerificationHooksBypassLookupsButWarmTheCache) {
  Workload W = makeWorkload();
  AlignmentOptions Options;
  Options.Cache = CacheMode::Memory;
  CacheSession Session(Options);

  size_t SolveHookCalls = 0;
  Options.Hooks.AfterSolve =
      [&](size_t, const Procedure &, const ProcedureProfile &,
          const AlignmentTsp &, const DtspSolution &,
          const IteratedOptOptions &) { ++SolveHookCalls; };

  ProgramAlignment First = alignProgram(W.Prog, W.Train, Options);
  EXPECT_EQ(SolveHookCalls, ProfiledCount);
  ProgramAlignment Second = alignProgram(W.Prog, W.Train, Options);
  EXPECT_EQ(SolveHookCalls, 2 * ProfiledCount); // Hooks saw real solves twice.
  CacheStats Hooked = Session.stats();
  EXPECT_EQ(Hooked.Hits, 0u); // Lookups were bypassed...
  EXPECT_EQ(Hooked.Stores, 2 * ProfiledCount); // ...but stores refreshed.
  expectProgramEq(First, Second);

  // Dropping the artifact hooks re-enables lookups against the store the
  // verified runs populated.
  Options.Hooks = PipelineStageHooks();
  ProgramAlignment Warm = alignProgram(W.Prog, W.Train, Options);
  EXPECT_EQ(Session.stats().Hits, ProfiledCount);
  EXPECT_EQ(Warm.SolverSeconds, 0.0);
  expectProgramEq(First, Warm);
}

TEST(CachePipelineTest, AfterProcedureHookStillFiresOnHits) {
  Workload W = makeWorkload();
  AlignmentOptions Options;
  Options.Cache = CacheMode::Memory;
  CacheSession Session(Options);

  alignProgram(W.Prog, W.Train, Options); // Cold run warms the cache.

  std::vector<size_t> SeenIndices;
  Options.Hooks.AfterProcedure =
      [&](size_t ProcIndex, const Procedure &, const ProcedureProfile &,
          const ProcedureAlignment &) { SeenIndices.push_back(ProcIndex); };
  ProgramAlignment Warm = alignProgram(W.Prog, W.Train, Options);
  EXPECT_EQ(Session.stats().Hits, ProfiledCount); // AfterProcedure alone
                                                  // does not bypass.
  EXPECT_EQ(Warm.SolverSeconds, 0.0);
  ASSERT_EQ(SeenIndices.size(), NumProcs); // Fires for every procedure,
  for (size_t P = 0; P != NumProcs; ++P)   // hit or not, in program order.
    EXPECT_EQ(SeenIndices[P], P);
}

TEST(CachePipelineTest, CorruptStoreFallsBackToIdenticalRecompute) {
  Workload W = makeWorkload();
  std::string Dir = freshDir("corrupt");

  AlignmentOptions Baseline;
  ProgramAlignment Reference = alignProgram(W.Prog, W.Train, Baseline);

  {
    AlignmentOptions Options;
    Options.Cache = CacheMode::Disk;
    Options.CachePath = Dir;
    CacheSession Session(Options);
    alignProgram(W.Prog, W.Train, Options);
  }

  // Flip one byte somewhere in the first entry's payload.
  std::string Path = Dir + "/" + AlignmentCache::StoreFileName;
  std::vector<uint8_t> File;
  {
    std::ifstream In(Path, std::ios::binary);
    ASSERT_TRUE(In.good());
    File.assign((std::istreambuf_iterator<char>(In)),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(File.size(), 64u);
  File[40] ^= 0x55;
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(reinterpret_cast<const char *>(File.data()),
              static_cast<std::streamsize>(File.size()));
  }

  AlignmentOptions Options;
  Options.Cache = CacheMode::Disk;
  Options.CachePath = Dir;
  CacheSession Session(Options);
  ProgramAlignment Warm = alignProgram(W.Prog, W.Train, Options);
  CacheStats S = Session.stats();
  EXPECT_GE(S.Invalidations, 1u);
  EXPECT_GE(S.Misses, 1u); // The corrupted entry was recomputed...
  EXPECT_EQ(S.Hits + S.Misses, ProfiledCount);
  expectProgramEq(Reference, Warm); // ...to a bit-identical result.

  // The recompute was re-stored; a fresh session sees a repaired store.
  ASSERT_TRUE(Session.flush());
  {
    AlignmentOptions Options2;
    Options2.Cache = CacheMode::Disk;
    Options2.CachePath = Dir;
    CacheSession Session2(Options2);
    ProgramAlignment Repaired = alignProgram(W.Prog, W.Train, Options2);
    EXPECT_EQ(Session2.stats().Hits, ProfiledCount);
    EXPECT_EQ(Session2.stats().Invalidations, 0u);
    expectProgramEq(Reference, Repaired);
  }
}

TEST(CachePipelineTest, VerifiedPipelineAgreesWithWarmCache) {
  Workload W = makeWorkload();
  AlignmentOptions Options;
  Options.Cache = CacheMode::Memory;
  CacheSession Session(Options);

  // alignProgramVerified installs artifact hooks, so it always observes
  // (and fully checks) real solves while still warming the cache.
  DiagnosticEngine Diags;
  ProgramAlignment Verified =
      alignProgramVerified(W.Prog, W.Train, Options, Diags);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Session.stats().Hits, 0u);
  EXPECT_EQ(Session.stats().Stores, ProfiledCount);

  ProgramAlignment Warm = alignProgram(W.Prog, W.Train, Options);
  EXPECT_EQ(Session.stats().Hits, ProfiledCount);
  expectProgramEq(Verified, Warm);
}

TEST(CachePipelineTest, ProfileChangeInvalidatesExactlyThatProcedure) {
  Workload W = makeWorkload();
  AlignmentOptions Options;
  Options.Cache = CacheMode::Memory;
  CacheSession Session(Options);
  alignProgram(W.Prog, W.Train, Options);

  // Perturb one profiled procedure's hottest edge count.
  ProgramProfile Retrained = W.Train;
  for (auto &Edges : Retrained.Procs[0].EdgeCounts)
    for (auto &C : Edges)
      C += 1;
  for (auto &C : Retrained.Procs[0].BlockCounts)
    C += 1;

  CacheStats Before = Session.stats();
  alignProgram(W.Prog, Retrained, Options);
  CacheStats After = Session.stats();
  EXPECT_EQ(After.Hits - Before.Hits, ProfiledCount - 1);
  EXPECT_EQ(After.Misses - Before.Misses, 1u);
}
