//===- tests/serve_shield_test.cpp - faults & deadlines through serve -----===//
//
// The balign-shield machinery exercised through the server: armed fault
// sites and injectable-clock deadlines must surface as structured error
// frames on exactly the poisoned request — sibling requests on the same
// connection stay clean, the connection stays open, and degraded
// (fallback-rung) results are never cached, so a retry after the fault
// clears gets the full-effort bytes.
//
//===--------------------------------------------------------------------===//

#include "serve/Server.h"

#include "cache/Store.h"
#include "ir/TextFormat.h"
#include "robust/FaultInjector.h"
#include "serve/Client.h"
#include "serve/Oneshot.h"
#include "support/Random.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace balign;
using ScopedFault = FaultInjector::ScopedFault;

namespace {

struct IgnoreSigpipe {
  IgnoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }
} IgnoreSigpipeInit;

constexpr uint64_t ProfileBudget = 1500;
constexpr uint64_t RequestSeed = 13;

/// A small generated two-procedure program in wire (text) form.
std::string demoProgramText() {
  Program Prog("shield");
  Rng R(4242);
  GenParams Params;
  Params.TargetBranchSites = 5;
  Prog.addProcedure(generateProcedure("alpha", Params, R).Proc);
  Prog.addProcedure(generateProcedure("beta", Params, R).Proc);
  return printProgram(Prog);
}

/// The bytes one-shot align_tool would print for demoProgramText() with
/// no faults armed — computed through the shared one-shot code.
std::string expectedCleanReport(size_t *ProfiledProcs = nullptr) {
  std::string Error;
  std::optional<Program> Prog = parseProgram(demoProgramText(), &Error);
  EXPECT_TRUE(Prog.has_value()) << Error;
  ProgramProfile Counts =
      synthesizeProfile(*Prog, RequestSeed, ProfileBudget);
  if (ProfiledProcs) {
    *ProfiledProcs = 0;
    for (size_t P = 0; P != Prog->numProcedures(); ++P)
      if (Counts.Procs[P].executedBranches(Prog->proc(P)) > 0)
        ++*ProfiledProcs;
  }
  AlignmentOptions Options;
  Options.Solver.Seed = RequestSeed;
  ProgramAlignment Result = alignProgram(*Prog, Counts, Options);
  return renderAlignmentReport(*Prog, Counts, Result,
                               /*ComputeBounds=*/false, /*EmitDot=*/false);
}

AlignRequest demoRequest() {
  AlignRequest Req;
  Req.Seed = RequestSeed;
  Req.Budget = ProfileBudget;
  Req.CfgText = demoProgramText();
  return Req;
}

/// One client connection bound to a server-side connection thread.
struct Connection {
  int Fds[2] = {-1, -1};
  std::thread Server;
  ServeClient Client;

  Connection(AlignServer &S) {
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
    Server = std::thread([&S, Fd = Fds[1]] { S.serveConnection(Fd, Fd); });
    Client.wrap(Fds[0], Fds[0]);
  }
  ~Connection() {
    Client.close();
    ::close(Fds[0]);
    Server.join();
    ::close(Fds[1]);
  }
};

/// Sends one align request and decodes the Error frame it must produce.
void expectAlignError(ServeClient &Client, const AlignRequest &Req,
                      FrameError &Code, std::string &Message) {
  Frame Response;
  std::string Error;
  ASSERT_TRUE(Client.call(
      makeFrame(FrameType::Align, encodeAlignRequest(Req)), Response,
      &Error))
      << Error;
  ASSERT_EQ(FrameType::Error, Response.Type)
      << "expected an error frame, got type "
      << frameTypeName(Response.Type);
  ASSERT_TRUE(decodeErrorFrame(Response, Code, Message));
}

} // namespace

TEST(ServeShieldTest, FaultedAlignIsIsolatedToItsRequest) {
  std::string Expected = expectedCleanReport();

  AlignmentOptions Base;
  ServeConfig Config;
  Config.Threads = 1;
  AlignServer Server(Base, Config);
  Connection Conn(Server);

  {
    // First solve hit faults; under OnError=Abort the request surfaces
    // the failure as a structured Aborted frame.
    ScopedFault Fault(FaultSite::TspSolve, FaultSpec::once());
    FrameError Code = FrameError::None;
    std::string Message;
    expectAlignError(Conn.Client, demoRequest(), Code, Message);
    EXPECT_EQ(FrameError::Aborted, Code);
    EXPECT_FALSE(Message.empty());
  }

  // The sibling request on the very same connection is untouched.
  std::string Report, Error;
  ASSERT_TRUE(Conn.Client.align(demoRequest(), Report, &Error)) << Error;
  EXPECT_EQ(Expected, Report);
  EXPECT_EQ(1u, Server.metrics().counter("serve.responses.error"));
  EXPECT_EQ(1u, Server.metrics().counter("serve.responses.ok"));
}

TEST(ServeShieldTest, ServeFrameFaultSiteErrorsOneDispatch) {
  // The site is part of the BALIGN_FAULT contract the CI serve column
  // arms by name.
  EXPECT_STREQ("serve.frame", faultSiteName(FaultSite::ServeFrame));
  EXPECT_EQ(FaultSite::ServeFrame, faultSiteByName("serve.frame"));

  AlignmentOptions Base;
  ServeConfig Config;
  Config.Threads = 1;
  AlignServer Server(Base, Config);
  Connection Conn(Server);

  ScopedFault Fault(FaultSite::ServeFrame, FaultSpec::once());
  // First dispatch — even a ping — is poisoned and answered Internal.
  Frame Response;
  std::string Error;
  ASSERT_TRUE(Conn.Client.call(makeFrame(FrameType::Ping, "hello"),
                               Response, &Error))
      << Error;
  ASSERT_EQ(FrameType::Error, Response.Type);
  FrameError Code = FrameError::None;
  std::string Message;
  ASSERT_TRUE(decodeErrorFrame(Response, Code, Message));
  EXPECT_EQ(FrameError::Internal, Code);

  // The connection survived; the second ping is clean.
  ASSERT_TRUE(Conn.Client.call(makeFrame(FrameType::Ping, "hello"),
                               Response, &Error))
      << Error;
  EXPECT_EQ(FrameType::Pong, Response.Type);
  EXPECT_EQ("hello", Response.Body);
}

TEST(ServeShieldTest, DeadlineExpiryIsAStructuredFrame) {
  // An injectable clock that jumps 10ms per reading: any 5ms request
  // deadline has expired by its first poll — no sleeping, no flakes.
  auto Now = std::make_shared<std::atomic<uint64_t>>(0);
  AlignmentOptions Base;
  ServeConfig Config;
  Config.Threads = 1;
  Config.Clock = [Now] { return Now->fetch_add(10); };
  AlignServer Server(Base, Config);
  Connection Conn(Server);

  AlignRequest Req = demoRequest();
  Req.DeadlineMs = 5;
  FrameError Code = FrameError::None;
  std::string Message;
  expectAlignError(Conn.Client, Req, Code, Message);
  // alignProgram folds a tripped run deadline into per-procedure
  // failures, so under OnError=Abort the request surfaces as Aborted;
  // a trip outside procedure scope surfaces as Deadline. Both are the
  // structured deadline contract.
  EXPECT_TRUE(Code == FrameError::Aborted || Code == FrameError::Deadline)
      << "code " << static_cast<int>(Code) << ": " << Message;
  EXPECT_NE(std::string::npos, Message.find("deadline")) << Message;

  // The same request without a deadline, on the same wild clock,
  // completes — expiry came from the budget, not the clock.
  Req.DeadlineMs = 0;
  std::string Report, Error;
  ASSERT_TRUE(Conn.Client.align(Req, Report, &Error)) << Error;
  EXPECT_EQ(expectedCleanReport(), Report);
}

TEST(ServeShieldTest, FallbackRungResultsAreNeverCached) {
  size_t ProfiledProcs = 0;
  std::string Expected = expectedCleanReport(&ProfiledProcs);
  ASSERT_GT(ProfiledProcs, 0u);

  AlignmentOptions Base;
  Base.Cache = CacheMode::Memory;
  AlignmentCache Cache;
  Base.CacheImpl = &Cache;
  ServeConfig Config;
  Config.Threads = 1;
  AlignServer Server(Base, Config);
  Connection Conn(Server);

  AlignRequest Req = demoRequest();
  Req.OnError = OnErrorPolicy::Fallback;
  {
    // Every solve faults: each procedure degrades to the greedy rung
    // and the request still answers AlignOk.
    ScopedFault Fault(FaultSite::TspSolve, FaultSpec::always());
    std::string Report, Error;
    ASSERT_TRUE(Conn.Client.align(Req, Report, &Error)) << Error;
  }
  // Degraded results must not have been stored — a cached fallback
  // would freeze low-effort bytes into every later warm response.
  CacheStats AfterFault = Cache.stats();
  EXPECT_EQ(0u, AfterFault.Stores);
  EXPECT_EQ(0u, AfterFault.Entries);

  // Fault cleared: the same request now yields the full-effort bytes
  // (and only now populates the cache).
  std::string Report, Error;
  ASSERT_TRUE(Conn.Client.align(Req, Report, &Error)) << Error;
  EXPECT_EQ(Expected, Report);
  CacheStats AfterClean = Cache.stats();
  EXPECT_EQ(ProfiledProcs, AfterClean.Stores);

  // And the warm retry serves those bytes straight from cache.
  ASSERT_TRUE(Conn.Client.align(Req, Report, &Error)) << Error;
  EXPECT_EQ(Expected, Report);
  EXPECT_EQ(AfterClean.Stores, Cache.stats().Stores);
  EXPECT_GT(Cache.stats().Hits, 0u);
}
