//===- tests/align_penalty_test.cpp - Penalty model and reduction tests -------===//

#include "align/Penalty.h"
#include "align/Reduction.h"
#include "ir/CFGBuilder.h"
#include "machine/MachineModel.h"
#include "profile/Trace.h"
#include "support/Random.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

/// cond entry with successors {taken=1, fall=2}, both returning.
struct CondFixture {
  Procedure Proc;
  ProcedureProfile Profile;

  CondFixture(uint64_t CountTaken, uint64_t CountFall)
      : Proc([] {
          CFGBuilder B("cond");
          BlockId C = B.cond(4);
          BlockId T = B.ret(2);
          BlockId F = B.ret(2);
          B.branches(C, T, F);
          return B.take();
        }()) {
    Profile = ProcedureProfile::zeroed(Proc);
    Profile.EdgeCounts[0] = {CountTaken, CountFall};
    Profile.BlockCounts = {CountTaken + CountFall, CountTaken, CountFall};
  }
};

const MachineModel Alpha = MachineModel::alpha21164();

} // namespace

TEST(PenaltyTest, ReturnBlocksCostNothing) {
  CondFixture F(10, 5);
  EXPECT_EQ(blockLayoutPenalty(F.Proc, Alpha, F.Profile, F.Profile, 1, 2),
            0u);
  EXPECT_EQ(blockLayoutPenalty(F.Proc, Alpha, F.Profile, F.Profile, 2,
                               InvalidBlock),
            0u);
}

TEST(PenaltyTest, UnconditionalBlock) {
  CFGBuilder B("uncond");
  BlockId J = B.jump(3);
  BlockId R = B.ret(1);
  B.edge(J, R);
  Procedure Proc = B.take();
  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  Profile.EdgeCounts[0] = {42};
  Profile.BlockCounts = {42, 42};
  // Falls through: free.
  EXPECT_EQ(blockLayoutPenalty(Proc, Alpha, Profile, Profile, J, R), 0u);
  // Anything else: a 2-cycle jump per execution.
  EXPECT_EQ(
      blockLayoutPenalty(Proc, Alpha, Profile, Profile, J, InvalidBlock),
      42u * 2);
}

TEST(PenaltyTest, ConditionalAllLayoutCases) {
  // Taken edge hotter: 100 vs 30; prediction = successor 0 (block 1).
  CondFixture F(100, 30);
  // Predicted successor (block 1) follows: only the cold edge
  // mispredicts: 30 * 5.
  EXPECT_EQ(blockLayoutPenalty(F.Proc, Alpha, F.Profile, F.Profile, 0, 1),
            30u * 5);
  // Other successor follows: hot edge pays the misfetch (100 * 1) plus
  // cold mispredicts (30 * 5).
  EXPECT_EQ(blockLayoutPenalty(F.Proc, Alpha, F.Profile, F.Profile, 0, 2),
            100u * 1 + 30u * 5);
  // Neither follows: fixup. Orientation (a): 100*1 + 30*(5+2) = 310.
  // Orientation (b): 100*(0+2) + 30*5 = 350. Min = 310.
  EXPECT_EQ(blockLayoutPenalty(F.Proc, Alpha, F.Profile, F.Profile, 0,
                               InvalidBlock),
            310u);
  EXPECT_TRUE(fixupTakenToPredicted(F.Proc, Alpha, F.Profile, 0));
}

TEST(PenaltyTest, FixupOrientationFlipsWhenFallThroughCheaper) {
  // With a nearly-balanced branch the inverted orientation wins:
  // (a) = 55*1 + 45*7 = 370; (b) = 55*2 + 45*5 = 335.
  CondFixture F(55, 45);
  EXPECT_FALSE(fixupTakenToPredicted(F.Proc, Alpha, F.Profile, 0));
  EXPECT_EQ(blockLayoutPenalty(F.Proc, Alpha, F.Profile, F.Profile, 0,
                               InvalidBlock),
            335u);
}

TEST(PenaltyTest, PredictionTieBreaksTowardLowerIndex) {
  CondFixture F(50, 50);
  // Tie: successor 0 predicted. Laying out successor 0 next pays only
  // the 50 mispredicts of edge 1.
  EXPECT_EQ(blockLayoutPenalty(F.Proc, Alpha, F.Profile, F.Profile, 0, 1),
            50u * 5);
  EXPECT_EQ(blockLayoutPenalty(F.Proc, Alpha, F.Profile, F.Profile, 0, 2),
            50u * 1 + 50u * 5);
}

TEST(PenaltyTest, CrossProfileChargesTestCounts) {
  // Train predicts successor 0 (hot in training); the test profile flips
  // the direction, so the formerly-cold edge now mispredicts en masse.
  CondFixture Train(90, 10);
  CondFixture Test(20, 80);
  // Layout puts block 1 (trained-predicted) next: test charges 80 * 5.
  EXPECT_EQ(blockLayoutPenalty(Train.Proc, Alpha, Train.Profile,
                               Test.Profile, 0, 1),
            80u * 5);
  // Same-data-set evaluation would have charged 10 * 5.
  EXPECT_EQ(blockLayoutPenalty(Train.Proc, Alpha, Train.Profile,
                               Train.Profile, 0, 1),
            10u * 5);
}

TEST(PenaltyTest, MultiwayIsLayoutIndependent) {
  CFGBuilder B("multi");
  BlockId M = B.multi(4);
  BlockId A0 = B.ret(1);
  BlockId A1 = B.ret(1);
  BlockId A2 = B.ret(1);
  B.edge(M, A0).edge(M, A1).edge(M, A2);
  Procedure Proc = B.take();
  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  Profile.EdgeCounts[0] = {10, 70, 20};
  Profile.BlockCounts = {100, 10, 70, 20};
  // Predicted arm = successor 1 (70): 70*1 + (10+20)*3 = 160.
  uint64_t Expected = 70 * 1 + 30 * 3;
  for (BlockId X : {A0, A1, A2, InvalidBlock})
    EXPECT_EQ(blockLayoutPenalty(Proc, Alpha, Profile, Profile, 0, X),
              Expected);
}

TEST(ReductionTest, DummyRowPinsEntry) {
  CondFixture F(100, 30);
  AlignmentTsp Atsp = buildAlignmentTsp(F.Proc, F.Profile, Alpha);
  EXPECT_EQ(Atsp.Tsp.numCities(), 4u);
  EXPECT_EQ(Atsp.DummyCity, 3u);
  EXPECT_EQ(Atsp.Tsp.cost(Atsp.DummyCity, 0), 0);
  EXPECT_EQ(Atsp.Tsp.cost(Atsp.DummyCity, 1), Atsp.EntryPin);
  EXPECT_EQ(Atsp.Tsp.cost(Atsp.DummyCity, 2), Atsp.EntryPin);
  EXPECT_GT(Atsp.EntryPin, 0);
}

TEST(ReductionTest, MatrixEntriesMatchPenaltyModel) {
  CondFixture F(100, 30);
  AlignmentTsp Atsp = buildAlignmentTsp(F.Proc, F.Profile, Alpha);
  EXPECT_EQ(Atsp.Tsp.cost(0, 1), 150);          // 30 * 5.
  EXPECT_EQ(Atsp.Tsp.cost(0, 2), 250);          // 100 + 150.
  EXPECT_EQ(Atsp.Tsp.cost(0, Atsp.DummyCity), 310); // Fixup case.
  EXPECT_EQ(Atsp.Tsp.cost(1, 2), 0);            // Returns are free.
}

TEST(ReductionTest, LayoutFromTourRotatesAndRepairs) {
  CondFixture F(100, 30);
  AlignmentTsp Atsp = buildAlignmentTsp(F.Proc, F.Profile, Alpha);
  Layout L = layoutFromTour(F.Proc, Atsp, {1, Atsp.DummyCity, 0, 2});
  EXPECT_TRUE(L.isValid(F.Proc));
  EXPECT_EQ(L.Order, (std::vector<BlockId>{0, 2, 1}));
  // A tour where the dummy exits into a non-entry block gets repaired.
  Layout Repaired = layoutFromTour(F.Proc, Atsp, {Atsp.DummyCity, 1, 0, 2});
  EXPECT_TRUE(Repaired.isValid(F.Proc));
  EXPECT_EQ(Repaired.Order.front(), F.Proc.entry());
}

/// The central reduction invariant, swept over random procedures: for
/// every layout, the DTSP walk cost equals the evaluator's penalty.
class ReductionEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReductionEquivalence, WalkCostEqualsEvaluatedPenalty) {
  uint64_t Seed = GetParam();
  Rng StructureRng(Seed * 91 + 1);
  GenParams Params;
  Params.TargetBranchSites = 3 + Seed % 8;
  Params.MultiwayFraction = 0.1;
  GeneratedProcedure Gen =
      generateProcedure("rand", Params, StructureRng);
  const Procedure &Proc = Gen.Proc;

  Rng TraceRng(Seed * 77 + 2);
  TraceGenOptions TraceOptions;
  TraceOptions.BranchBudget = 300;
  ExecutionTrace Trace = generateTrace(
      Proc, BranchBehavior::uniform(Proc), TraceRng, TraceOptions);
  ProcedureProfile Profile = collectProfile(Proc, Trace);

  AlignmentTsp Atsp = buildAlignmentTsp(Proc, Profile, Alpha);
  Rng LayoutRng(Seed * 13 + 3);
  for (int Trial = 0; Trial != 10; ++Trial) {
    Layout L = Layout::original(Proc);
    // Random layout keeping the entry first.
    for (size_t I = L.Order.size() - 1; I > 1; --I)
      std::swap(L.Order[I], L.Order[1 + LayoutRng.nextIndex(I)]);
    ASSERT_TRUE(L.isValid(Proc));

    // Walk: dummy -> blocks in order (entry first, so pin cost is 0).
    std::vector<City> Walk;
    Walk.push_back(Atsp.DummyCity);
    for (BlockId B : L.Order)
      Walk.push_back(B);
    int64_t WalkCost = Atsp.Tsp.tourCost(Walk);
    EXPECT_EQ(static_cast<uint64_t>(WalkCost),
              evaluateLayout(Proc, L, Alpha, Profile, Profile))
        << "seed " << Seed << " trial " << Trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionEquivalence,
                         ::testing::Range<uint64_t>(1, 16));
