//===- tests/align_aligners_test.cpp - Aligner algorithm tests ----------------===//

#include "align/Aligners.h"
#include "align/Penalty.h"
#include "align/Reduction.h"
#include "ir/CFGBuilder.h"
#include "machine/MachineModel.h"
#include "profile/Trace.h"
#include "support/Random.h"
#include "tsp/Exact.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

const MachineModel Alpha = MachineModel::alpha21164();

/// A random procedure plus a random-behavior profile.
struct RandomCase {
  Procedure Proc{"empty"};
  ProcedureProfile Profile;

  explicit RandomCase(uint64_t Seed, unsigned Sites = 6) {
    Rng StructureRng(Seed * 3 + 1);
    GenParams Params;
    Params.TargetBranchSites = Sites;
    Params.MultiwayFraction = 0.08;
    GeneratedProcedure Gen =
        generateProcedure("rand", Params, StructureRng);
    Proc = std::move(Gen.Proc);
    Rng TraceRng(Seed * 5 + 2);
    TraceGenOptions Options;
    Options.BranchBudget = 500;
    ExecutionTrace Trace = generateTrace(
        Proc, BranchBehavior::uniform(Proc), TraceRng, Options);
    Profile = collectProfile(Proc, Trace);
  }
};

} // namespace

TEST(OriginalAlignerTest, IdentityLayout) {
  RandomCase C(1);
  OriginalAligner Aligner;
  Layout L = Aligner.align(C.Proc, C.Profile, Alpha);
  EXPECT_EQ(L.Order, Layout::original(C.Proc).Order);
  EXPECT_EQ(Aligner.name(), "original");
}

TEST(GreedyAlignerTest, ProducesValidLayouts) {
  for (uint64_t Seed = 1; Seed != 12; ++Seed) {
    RandomCase C(Seed);
    GreedyAligner Aligner;
    Layout L = Aligner.align(C.Proc, C.Profile, Alpha);
    EXPECT_TRUE(L.isValid(C.Proc)) << "seed " << Seed;
  }
}

TEST(GreedyAlignerTest, HotEdgeBecomesAdjacent) {
  // entry(cond) -> {hot, cold}; hot -> join, cold -> join; join -> ret.
  CFGBuilder B("hot");
  BlockId C = B.cond(4);
  BlockId Cold = B.jump(4); // Created first: original fall-through.
  BlockId Hot = B.jump(4);
  BlockId Join = B.jump(2);
  BlockId Exit = B.ret(1);
  B.branches(C, Cold, Hot);
  B.edge(Cold, Join).edge(Hot, Join).edge(Join, Exit);
  Procedure Proc = B.take();
  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  Profile.EdgeCounts[C] = {5, 95};
  Profile.EdgeCounts[Cold] = {5};
  Profile.EdgeCounts[Hot] = {95};
  Profile.EdgeCounts[Join] = {100};
  Profile.BlockCounts = {100, 5, 95, 100, 100};

  GreedyAligner Aligner;
  Layout L = Aligner.align(Proc, Profile, Alpha);
  ASSERT_TRUE(L.isValid(Proc));
  // The hot successor must directly follow the conditional.
  size_t PosC = 0;
  for (size_t I = 0; I != L.Order.size(); ++I)
    if (L.Order[I] == C)
      PosC = I;
  ASSERT_LT(PosC + 1, L.Order.size());
  EXPECT_EQ(L.Order[PosC + 1], Hot);
}

TEST(GreedyAlignerTest, NeverWorseThanHalfOfOriginalOnSkewedCode) {
  // Sanity: on random procedures with skewed profiles, greedy should
  // never *increase* the penalty dramatically; check it at least ties
  // the original layout in aggregate.
  uint64_t GreedyTotal = 0, OriginalTotal = 0;
  for (uint64_t Seed = 1; Seed != 15; ++Seed) {
    RandomCase C(Seed);
    GreedyAligner Aligner;
    Layout L = Aligner.align(C.Proc, C.Profile, Alpha);
    GreedyTotal += evaluateLayout(C.Proc, L, Alpha, C.Profile, C.Profile);
    OriginalTotal += evaluateLayout(C.Proc, Layout::original(C.Proc), Alpha,
                                    C.Profile, C.Profile);
  }
  EXPECT_LE(GreedyTotal, OriginalTotal);
}

/// Property sweep: on small procedures the TSP aligner is exactly
/// optimal (verified against exact DP on the reduction), and therefore
/// no worse than greedy.
class TspAlignerOptimality : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TspAlignerOptimality, MatchesExactOptimumAndBeatsGreedy) {
  uint64_t Seed = GetParam();
  RandomCase C(Seed, /*Sites=*/4); // Small: DTSP stays <= 18 cities.
  if (C.Proc.numBlocks() + 1 > MaxExactCities)
    GTEST_SKIP() << "instance too large for the exact oracle";

  TspAligner Aligner;
  TspAligner::Result R = Aligner.alignWithStats(C.Proc, C.Profile, Alpha);
  ASSERT_TRUE(R.L.isValid(C.Proc));
  uint64_t TspPenalty =
      evaluateLayout(C.Proc, R.L, Alpha, C.Profile, C.Profile);
  EXPECT_EQ(static_cast<int64_t>(TspPenalty), R.TourCost);

  AlignmentTsp Atsp = buildAlignmentTsp(C.Proc, C.Profile, Alpha);
  int64_t Optimal = solveExactDirected(Atsp.Tsp);
  EXPECT_EQ(R.TourCost, Optimal) << "seed " << Seed;

  GreedyAligner Greedy;
  Layout G = Greedy.align(C.Proc, C.Profile, Alpha);
  EXPECT_LE(TspPenalty,
            evaluateLayout(C.Proc, G, Alpha, C.Profile, C.Profile));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TspAlignerOptimality,
                         ::testing::Range<uint64_t>(1, 16));

TEST(TspAlignerTest, ReportsRunStatistics) {
  RandomCase C(3);
  TspAligner Aligner;
  TspAligner::Result R = Aligner.alignWithStats(C.Proc, C.Profile, Alpha);
  EXPECT_GE(R.NumRuns, 1u);
  EXPECT_GE(R.RunsFindingBest, 1u);
  EXPECT_LE(R.RunsFindingBest, R.NumRuns);
}

TEST(CalderGrunwaldTest, ValidAndCompetitiveWithGreedy) {
  uint64_t CgTotal = 0, GreedyTotal = 0;
  for (uint64_t Seed = 1; Seed != 12; ++Seed) {
    RandomCase C(Seed);
    CalderGrunwaldAligner Cg;
    GreedyAligner Greedy;
    Layout LCg = Cg.align(C.Proc, C.Profile, Alpha);
    Layout LG = Greedy.align(C.Proc, C.Profile, Alpha);
    ASSERT_TRUE(LCg.isValid(C.Proc));
    CgTotal += evaluateLayout(C.Proc, LCg, Alpha, C.Profile, C.Profile);
    GreedyTotal += evaluateLayout(C.Proc, LG, Alpha, C.Profile, C.Profile);
  }
  // Cost-model-guided greedy with exhaustive chain ordering should not
  // lose to frequency greedy in aggregate.
  EXPECT_LE(CgTotal, GreedyTotal);
}

TEST(AlignersTest, EntryAlwaysFirst) {
  for (uint64_t Seed = 20; Seed != 26; ++Seed) {
    RandomCase C(Seed);
    for (const Aligner *A :
         std::initializer_list<const Aligner *>{
             new OriginalAligner, new GreedyAligner, new TspAligner,
             new CalderGrunwaldAligner}) {
      Layout L = A->align(C.Proc, C.Profile, Alpha);
      EXPECT_EQ(L.Order.front(), C.Proc.entry()) << A->name();
      delete A;
    }
  }
}
