//===- tests/trace_test.cpp - balign-scope tracing & metrics tests ----------===//
//
// Tests for the balign-scope observability layer: session lifecycle and
// zero-overhead-off behavior, span recording with tracks/sequences/
// depths, the program-order drain determinism contract (same
// (name, track, seq) stream and same counter map at every thread
// count), the MetricRegistry counter/gauge split, the TraceCheck verify
// pass on synthetic corruption, and the exporters.
//
//===--------------------------------------------------------------------===//

#include "align/Pipeline.h"
#include "analysis/Verifier.h"
#include "ir/CFGBuilder.h"
#include "profile/Trace.h"
#include "support/Random.h"
#include "trace/Scope.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

using namespace balign;

namespace {

Program smallProgram(uint64_t Seed, size_t NumProcs = 3) {
  Program Prog("traced");
  for (size_t P = 0; P != NumProcs; ++P) {
    Rng R(Seed + P);
    GenParams Params;
    Params.TargetBranchSites = 5;
    Prog.addProcedure(
        generateProcedure("p" + std::to_string(P), Params, R).Proc);
  }
  return Prog;
}

ProgramProfile profileAll(const Program &Prog, uint64_t Seed) {
  ProgramProfile Train;
  for (size_t P = 0; P != Prog.numProcedures(); ++P) {
    Rng TraceRng(Seed + P);
    TraceGenOptions Options;
    Options.BranchBudget = 300;
    Train.Procs.push_back(collectProfile(
        Prog.proc(P), generateTrace(Prog.proc(P),
                                    BranchBehavior::uniform(Prog.proc(P)),
                                    TraceRng, Options)));
  }
  return Train;
}

/// The thread-count-invariant projection of a drained span stream.
std::vector<std::tuple<std::string, int64_t, uint64_t>>
spanKeys(const TraceSession &Session) {
  std::vector<std::tuple<std::string, int64_t, uint64_t>> Keys;
  for (const TraceSpan &S : Session.drainSpans())
    Keys.emplace_back(S.Name, S.Track, S.Seq);
  return Keys;
}

} // namespace

//===--------------------------------------------------------------------===//
// MetricRegistry
//===--------------------------------------------------------------------===//

TEST(MetricRegistryTest, CountersAccumulate) {
  MetricRegistry M;
  EXPECT_EQ(M.counter("cache.hits"), 0u);
  M.counterAdd("cache.hits", 1);
  M.counterAdd("cache.hits", 2);
  M.counterAdd("cache.misses", 5);
  EXPECT_EQ(M.counter("cache.hits"), 3u);
  EXPECT_EQ(M.counter("cache.misses"), 5u);
  auto Snapshot = M.counters();
  ASSERT_EQ(Snapshot.size(), 2u);
  EXPECT_EQ(Snapshot.begin()->first, "cache.hits"); // Sorted by name.
}

TEST(MetricRegistryTest, GaugesAddAndMax) {
  MetricRegistry M;
  M.gaugeAdd("pool.steals", 4);
  M.gaugeMax("pool.queue-depth", 7);
  M.gaugeMax("pool.queue-depth", 3); // Lower value must not shrink it.
  EXPECT_EQ(M.gauge("pool.steals"), 4u);
  EXPECT_EQ(M.gauge("pool.queue-depth"), 7u);
  EXPECT_TRUE(M.counters().empty()); // Gauges never leak into counters.
}

//===--------------------------------------------------------------------===//
// Session lifecycle and span recording
//===--------------------------------------------------------------------===//

TEST(TraceSessionTest, ProbesAreInertWithoutSession) {
  ASSERT_EQ(TraceSession::active(), nullptr);
  {
    ScopedSpan Span("orphan", SpanCat::Stage);
    TrackScope Track(7);
    scopeCounterAdd("nobody.home");
  } // Must not crash, allocate into a session, or leave state behind.
  EXPECT_EQ(TraceSession::active(), nullptr);
}

TEST(TraceSessionTest, InstallUninstallBracketsRecording) {
  TraceSession Session;
  EXPECT_EQ(TraceSession::active(), nullptr);
  Session.install();
  EXPECT_EQ(TraceSession::active(), &Session);
  { ScopedSpan Span("while-on", SpanCat::Pipeline); }
  Session.uninstall();
  EXPECT_EQ(TraceSession::active(), nullptr);
  { ScopedSpan Span("while-off", SpanCat::Pipeline); }
  EXPECT_EQ(Session.numSpans(), 1u);
  EXPECT_STREQ(Session.drainSpans()[0].Name, "while-on");
}

TEST(TraceSessionTest, SpansCarryTrackSeqAndDepth) {
  TraceSession Session;
  Session.install();
  {
    ScopedSpan Outer("outer", SpanCat::Pipeline); // Program track, seq 0.
    TrackScope Track(2);
    ScopedSpan Inner("inner", SpanCat::Stage); // Track 2, seq 0, depth 1.
    ScopedSpan Nested("nested", SpanCat::Solver); // Track 2, seq 1, depth 2.
  }
  Session.uninstall();

  std::vector<TraceSpan> Spans = Session.drainSpans();
  ASSERT_EQ(Spans.size(), 3u);
  // Drain order is (Track, Seq): program track first, then track 2.
  EXPECT_STREQ(Spans[0].Name, "outer");
  EXPECT_EQ(Spans[0].Track, ProgramTrack);
  EXPECT_EQ(Spans[0].Seq, 0u);
  EXPECT_EQ(Spans[0].Depth, 0u);
  EXPECT_STREQ(Spans[1].Name, "inner");
  EXPECT_EQ(Spans[1].Track, 2);
  EXPECT_EQ(Spans[1].Seq, 0u);
  EXPECT_EQ(Spans[1].Depth, 1u);
  EXPECT_STREQ(Spans[2].Name, "nested");
  EXPECT_EQ(Spans[2].Track, 2);
  EXPECT_EQ(Spans[2].Seq, 1u);
  EXPECT_EQ(Spans[2].Depth, 2u);
  for (const TraceSpan &S : Spans)
    EXPECT_GE(S.EndNs, S.StartNs);
}

//===--------------------------------------------------------------------===//
// Pipeline integration: the determinism contract
//===--------------------------------------------------------------------===//

TEST(TraceSessionTest, PipelineDrainIsThreadCountInvariant) {
  Program Prog = smallProgram(11, 4);
  ProgramProfile Train = profileAll(Prog, 17);

  auto traced = [&](unsigned Threads) {
    auto Session = std::make_unique<TraceSession>();
    Session->install();
    AlignmentOptions Options;
    Options.ComputeBounds = true;
    Options.Threads = Threads;
    alignProgram(Prog, Train, Options);
    Session->uninstall();
    return Session;
  };

  auto S1 = traced(1);
  auto S4 = traced(4);
  EXPECT_GT(S1->numSpans(), 0u);

  // The (name, track, seq) stream and the counter map are pure
  // functions of the inputs; gauges (pool.*) are explicitly exempt.
  EXPECT_EQ(spanKeys(*S1), spanKeys(*S4));
  EXPECT_EQ(S1->metrics().counters(), S4->metrics().counters());

  // Both sessions satisfy the TraceCheck verify pass.
  DiagnosticEngine Diags;
  EXPECT_EQ(checkTrace(*S1, Diags), 0u) << Diags.renderAll();
  EXPECT_EQ(checkTrace(*S4, Diags), 0u) << Diags.renderAll();

  // And tracing never perturbs the computation it observes: a traced
  // and an untraced run produce identical alignments.
  AlignmentOptions Options;
  Options.ComputeBounds = true;
  Options.Threads = 1;
  ProgramAlignment Plain = alignProgram(Prog, Train, Options);
  TraceSession Session;
  Session.install();
  ProgramAlignment Traced = alignProgram(Prog, Train, Options);
  Session.uninstall();
  ASSERT_EQ(Plain.Procs.size(), Traced.Procs.size());
  for (size_t I = 0; I != Plain.Procs.size(); ++I) {
    EXPECT_EQ(Plain.Procs[I].TspLayout.Order, Traced.Procs[I].TspLayout.Order);
    EXPECT_EQ(Plain.Procs[I].TspPenalty, Traced.Procs[I].TspPenalty);
  }
}

//===--------------------------------------------------------------------===//
// TraceCheck: the balign-verify pass over span streams
//===--------------------------------------------------------------------===//

namespace {

TraceSpan makeSpan(const char *Name, int64_t Track, uint64_t Seq,
                   uint32_t Depth, uint32_t ThreadId, uint64_t StartNs,
                   uint64_t EndNs) {
  TraceSpan S;
  S.Name = Name;
  S.Track = Track;
  S.Seq = Seq;
  S.Depth = Depth;
  S.ThreadId = ThreadId;
  S.StartNs = StartNs;
  S.EndNs = EndNs;
  return S;
}

} // namespace

TEST(TraceCheckTest, CleanStreamPasses) {
  std::vector<TraceSpan> Spans{
      makeSpan("align", ProgramTrack, 0, 0, 0, 0, 100),
      makeSpan("task", 0, 0, 1, 0, 10, 50),
      makeSpan("task", 1, 0, 1, 0, 55, 90),
  };
  DiagnosticEngine Diags;
  EXPECT_EQ(checkTraceSpans(Spans, Diags), 0u) << Diags.renderAll();
}

TEST(TraceCheckTest, FlagsNegativeDuration) {
  std::vector<TraceSpan> Spans{
      makeSpan("bad", ProgramTrack, 0, 0, 0, 100, 40),
  };
  DiagnosticEngine Diags;
  EXPECT_GT(checkTraceSpans(Spans, Diags), 0u);
  EXPECT_TRUE(Diags.has(CheckId::TraceNegativeDuration));
}

TEST(TraceCheckTest, FlagsBadNesting) {
  // The depth-1 span pokes outside its depth-0 parent's window.
  std::vector<TraceSpan> Spans{
      makeSpan("outer", ProgramTrack, 0, 0, 0, 0, 50),
      makeSpan("inner", ProgramTrack, 1, 1, 0, 10, 80),
  };
  DiagnosticEngine Diags;
  EXPECT_GT(checkTraceSpans(Spans, Diags), 0u);
  EXPECT_TRUE(Diags.has(CheckId::TraceBadNesting));
}

TEST(TraceCheckTest, FlagsSeqGap) {
  // Track 3 jumps from seq 0 to seq 2: the drain order would not be
  // reproducible, so the stream is rejected.
  std::vector<TraceSpan> Spans{
      makeSpan("a", 3, 0, 0, 0, 0, 10),
      makeSpan("b", 3, 2, 0, 0, 20, 30),
  };
  DiagnosticEngine Diags;
  EXPECT_GT(checkTraceSpans(Spans, Diags), 0u);
  EXPECT_TRUE(Diags.has(CheckId::TraceSeqGap));
}

TEST(TraceCheckTest, CounterMonotonicity) {
  std::map<std::string, uint64_t> Before{{"cache.hits", 5},
                                         {"solver.runs", 10}};
  std::map<std::string, uint64_t> Same = Before;
  std::map<std::string, uint64_t> Grown{{"cache.hits", 9},
                                        {"solver.runs", 10}};
  std::map<std::string, uint64_t> Regressed{{"cache.hits", 4},
                                            {"solver.runs", 10}};
  std::map<std::string, uint64_t> Vanished{{"solver.runs", 10}};
  DiagnosticEngine Diags;
  EXPECT_EQ(checkCounterMonotonic(Before, Same, Diags), 0u);
  EXPECT_EQ(checkCounterMonotonic(Before, Grown, Diags), 0u);
  EXPECT_GT(checkCounterMonotonic(Before, Regressed, Diags), 0u);
  EXPECT_GT(checkCounterMonotonic(Before, Vanished, Diags), 0u);
  EXPECT_TRUE(Diags.has(CheckId::TraceCounterRegressed));
}

//===--------------------------------------------------------------------===//
// Exporters
//===--------------------------------------------------------------------===//

TEST(TraceExportTest, ChromeTraceJsonShape) {
  TraceSession Session;
  Session.install();
  {
    ScopedSpan Outer("outer", SpanCat::Pipeline);
    ScopedSpan Inner("inner", SpanCat::Stage);
  }
  Session.uninstall();
  std::string Json = Session.chromeTraceJson();
  EXPECT_EQ(Json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(Json.back(), '\n');
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat\":\"stage\""), std::string::npos);
}

TEST(TraceExportTest, MetricsJsonAndSummary) {
  TraceSession Session;
  Session.install();
  scopeCounterAdd("cache.hits", 3);
  scopeGaugeAdd("pool.steals", 2);
  { ScopedSpan Span("one", SpanCat::Cache); }
  Session.uninstall();

  std::string Json = Session.metricsJson();
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"cache.hits\":3"), std::string::npos);
  EXPECT_NE(Json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(Json.find("\"pool.steals\":2"), std::string::npos);
  EXPECT_NE(Json.find("\"spans\":1"), std::string::npos);

  std::string Text = Session.metricsSummary();
  EXPECT_NE(Text.find("scope:"), std::string::npos);
  EXPECT_NE(Text.find("cache.hits"), std::string::npos);
}
