//===- tests/threadpool_test.cpp - Work-stealing pool unit + stress tests -----===//

#include "support/Random.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace balign;

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPoolTest, EmptyPoolConstructsAndDestructs) {
  for (unsigned N : {1u, 2u, 8u}) {
    ThreadPool Pool(N);
    EXPECT_EQ(Pool.numWorkers(), N);
  }
  // Zero resolves to the hardware thread count.
  ThreadPool Default(0);
  EXPECT_EQ(Default.numWorkers(), ThreadPool::hardwareThreads());
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool Pool(4);
  Pool.wait();
  Pool.wait(); // And is repeatable.
}

TEST(ThreadPoolTest, MoreTasksThanThreadsAllRun) {
  ThreadPool Pool(3);
  constexpr size_t NumTasks = 1000;
  std::vector<int> Ran(NumTasks, 0);
  std::atomic<size_t> Count{0};
  for (size_t I = 0; I != NumTasks; ++I)
    Pool.submit([&Ran, &Count, I] {
      Ran[I] = 1;
      Count.fetch_add(1, std::memory_order_relaxed);
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), NumTasks);
  EXPECT_EQ(std::accumulate(Ran.begin(), Ran.end(), size_t(0)), NumTasks);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool Pool(2);
  std::mutex M;
  std::set<std::thread::id> Ids;
  for (int I = 0; I != 64; ++I)
    Pool.submit([&M, &Ids] {
      std::lock_guard<std::mutex> G(M);
      Ids.insert(std::this_thread::get_id());
    });
  Pool.wait();
  EXPECT_FALSE(Ids.empty());
  EXPECT_EQ(Ids.count(std::this_thread::get_id()), 0u)
      << "tasks must not run on the submitting thread";
}

TEST(ThreadPoolTest, NestedSubmissionFromWorkers) {
  ThreadPool Pool(4);
  std::atomic<size_t> Count{0};
  for (int I = 0; I != 16; ++I)
    Pool.submit([&Pool, &Count] {
      Count.fetch_add(1);
      for (int J = 0; J != 8; ++J)
        Pool.submit([&Count] { Count.fetch_add(1); });
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), 16u + 16u * 8u);
}

TEST(ThreadPoolTest, ExceptionPropagatesOutOfWait) {
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // The pool survives a throwing task and keeps executing work.
  std::atomic<int> After{0};
  Pool.submit([&After] { After = 1; });
  Pool.wait();
  EXPECT_EQ(After.load(), 1);
}

TEST(ThreadPoolTest, FirstOfManyExceptionsIsReported) {
  ThreadPool Pool(4);
  for (int I = 0; I != 32; ++I)
    Pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // Claimed errors are cleared; the next wait is clean.
  Pool.wait();
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<size_t> Count{0};
  {
    ThreadPool Pool(2);
    for (size_t I = 0; I != 200; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
    // No wait(): the destructor must finish every submitted task.
  }
  EXPECT_EQ(Count.load(), 200u);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(257);
  parallelFor(Pool, 3, 257, [&Hits](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), (I >= 3 && I < 257) ? 1 : 0) << "index " << I;
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool Pool(2);
  parallelFor(Pool, 5, 5, [](size_t) { FAIL() << "must not be called"; });
  parallelFor(Pool, 7, 3, [](size_t) { FAIL() << "must not be called"; });
}

/// Randomized submit/steal stress: several submitter rounds racing with
/// nested fan-out from the workers themselves, across pool sizes. The
/// accumulated sum must equal the deterministic expectation.
TEST(ThreadPoolTest, RandomizedSubmitStealStress) {
  Rng R(0xbeef);
  for (unsigned Workers : {1u, 2u, 5u, 8u}) {
    ThreadPool Pool(Workers);
    std::atomic<uint64_t> Sum{0};
    uint64_t Expected = 0;
    for (int Round = 0; Round != 20; ++Round) {
      size_t Batch = 1 + R.nextIndex(40);
      for (size_t I = 0; I != Batch; ++I) {
        uint64_t V = R.nextBelow(1000);
        size_t Children = R.nextIndex(4);
        Expected += V * (1 + Children);
        Pool.submit([&Pool, &Sum, V, Children] {
          Sum.fetch_add(V, std::memory_order_relaxed);
          for (size_t C = 0; C != Children; ++C)
            Pool.submit([&Sum, V] {
              Sum.fetch_add(V, std::memory_order_relaxed);
            });
        });
      }
      if (R.nextBool(0.5))
        Pool.wait();
    }
    Pool.wait();
    EXPECT_EQ(Sum.load(), Expected) << Workers << " workers";
  }
}
